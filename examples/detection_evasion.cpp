// Detection evasion demo: the same counter HT inserted (a) naively on top
// of the circuit and (b) via TrojanZero, evaluated against all three
// power-based detection baselines.
#include <iomanip>
#include <iostream>

#include "core/report.hpp"
#include "detect/gate_characterization.hpp"
#include "detect/power_trace.hpp"
#include "detect/statistical_learning.hpp"
#include "verify/verify.hpp"

namespace {

void report(const char* label, const tz::DetectionResult& r) {
  std::cout << "  " << std::left << std::setw(26) << label
            << (r.detected ? "DETECTED" : "evaded  ") << "  (overhead "
            << std::fixed << std::setprecision(3) << r.overhead_percent
            << "%)\n";
}

}  // namespace

namespace {

int run() {
  using namespace tz;
  const PowerModel pm(CellLibrary::tsmc65_like());
  const Netlist golden = make_benchmark("c499");

  // (a) Naive additive HT: counter + trigger + payload bolted on.
  Netlist naive = golden;
  {
    SignalProb sp(naive);
    const auto locs = payload_locations(naive, 1);
    const auto pool = trigger_pool(naive, sp, 0.05, locs[0]);
    build_trojan(naive, counter_trojan(3), pool, locs[0]);
  }
  std::cout << "naive additive counter-3bit HT on c499:\n";
  report("dynamic power [10]", detect_dynamic_power(golden, naive, pm));
  report("leakage GLC [11]", detect_leakage_glc(golden, naive, pm));
  report("statistical learning [12]",
         detect_statistical_learning(golden, naive, pm));

  // (b) TrojanZero insertion of the same HT class.
  const FlowResult r = run_trojanzero_flow("c499");
  if (!r.insertion.success) {
    std::cout << "TrojanZero insertion failed\n";
    return 1;
  }
  std::cout << "\nTrojanZero " << r.insertion.ht_name << " on c499:\n";
  report("dynamic power [10]",
         detect_dynamic_power(golden, r.insertion.infected, pm));
  report("leakage GLC [11]",
         detect_leakage_glc(golden, r.insertion.infected, pm));
  report("statistical learning [12]",
         detect_statistical_learning(golden, r.insertion.infected, pm));
  std::cout << "\nSame Trojan class; the difference is Algorithm 1 paying "
               "for it out of the circuit's own budget.\n";
  return 0;
}

}  // namespace

int main() {
  try {
    return run();
  } catch (const tz::VerifyError& e) {
    // TZ_CHECK boundary check tripped: name the corrupted invariant instead
    // of dying with an unexplained exception message.
    std::cerr << "invariant check failed at " << e.phase() << ":\n"
              << e.report().format();
    return 1;
  }
}
