// ATPG substrate demo: fault universe, PODEM, fault simulation, compaction
// and coverage — the defender-side tooling on its own.
#include <iomanip>
#include <iostream>

#include "atpg/test_set.hpp"
#include "gen/iscas.hpp"

int main(int argc, char** argv) {
  using namespace tz;
  const std::string name = argc > 1 ? argv[1] : "c880";
  const Netlist nl = make_benchmark(name);
  std::cout << "ATPG demo on " << name << " (" << nl.gate_count()
            << " gates)\n";

  const auto universe = fault_universe(nl);
  const auto faults = collapse_faults(nl, universe);
  std::cout << "fault universe: " << universe.size() << " -> "
            << faults.size() << " after collapsing\n";

  // Random grading.
  const PatternSet rnd = random_patterns(nl.inputs().size(), 64, 1);
  std::cout << "64 random patterns cover "
            << 100.0 * grade_patterns(nl, faults, rnd).coverage() << "%\n";

  // A single PODEM run, narrated.
  for (const Fault& f : faults) {
    const PodemResult r = podem(nl, f);
    if (r.status == PodemStatus::Detected && !detects(nl, f, rnd)) {
      std::cout << "PODEM targets random-resistant fault "
                << to_string(nl, f) << " in " << r.backtracks
                << " backtracks; pattern:";
      for (std::size_t i = 0; i < std::min<std::size_t>(16, r.pattern.size());
           ++i) {
        std::cout << (i ? "" : " ") << r.pattern[i];
      }
      std::cout << (r.pattern.size() > 16 ? "...\n" : "\n");
      break;
    }
  }

  // The full defender flow.
  TestGenOptions opt;
  opt.random_patterns = 64;
  opt.max_patterns = 96;
  const DefenderTestSet ts = generate_atpg_tests(nl, opt);
  std::cout << "defender set: " << ts.patterns.num_patterns()
            << " compacted patterns, coverage " << std::fixed
            << std::setprecision(1) << 100.0 * ts.coverage.coverage()
            << "% (" << ts.untestable << " proven untestable, " << ts.aborted
            << " aborted)\n";
  std::cout << "functional self-test passes: "
            << (functional_test(nl, ts) ? "yes" : "NO") << "\n";
  return 0;
}
