// ATPG substrate demo: fault universe, PODEM, fault simulation, compaction
// and coverage — the defender-side tooling on its own.
#include <iomanip>
#include <iostream>

#include "atpg/fault_sim_backend.hpp"
#include "atpg/test_set.hpp"
#include "gen/iscas.hpp"
#include "verify/verify.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace tz;
  const std::string name = argc > 1 ? argv[1] : "c880";
  const Netlist nl = make_benchmark(name);
  std::cout << "ATPG demo on " << name << " (" << nl.gate_count()
            << " gates)\n";

  const auto universe = fault_universe(nl);
  const auto faults = collapse_faults(nl, universe);
  std::cout << "fault universe: " << universe.size() << " -> "
            << faults.size() << " after collapsing\n";

  // Random grading through a reusable backend (TZ_FAULT_MODE picks between
  // the event-driven and word-packed engines; Auto measures the workload):
  // the good machine is simulated once and shared by every fault, and the
  // same backend answers the per-fault queries below without re-running it.
  const PatternSet rnd = random_patterns(nl.inputs().size(), 64, 1);
  const auto engine = make_fault_sim_backend(nl);
  engine->set_patterns(rnd);
  std::cout << "fault-sim backend: " << engine->name() << "\n";
  const std::vector<bool> rnd_det = engine->simulate(faults);
  std::size_t rnd_covered = 0;
  for (const bool d : rnd_det) rnd_covered += d ? 1 : 0;
  std::cout << "64 random patterns cover "
            << 100.0 * static_cast<double>(rnd_covered) /
                   static_cast<double>(faults.size())
            << "%\n";

  // A single PODEM run, narrated: target the first random-resistant fault.
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (rnd_det[i]) continue;
    const Fault& f = faults[i];
    const PodemResult r = podem(nl, f);
    if (r.status == PodemStatus::Detected) {
      std::cout << "PODEM targets random-resistant fault "
                << to_string(nl, f) << " in " << r.backtracks
                << " backtracks; pattern:";
      for (std::size_t b = 0; b < std::min<std::size_t>(16, r.pattern.size());
           ++b) {
        std::cout << (b ? "" : " ") << r.pattern[b];
      }
      std::cout << (r.pattern.size() > 16 ? "...\n" : "\n");
      break;
    }
  }

  // The full defender flow.
  TestGenOptions opt;
  opt.random_patterns = 64;
  opt.max_patterns = 96;
  const DefenderTestSet ts = generate_atpg_tests(nl, opt);
  std::cout << "defender set: " << ts.patterns.num_patterns()
            << " compacted patterns, coverage " << std::fixed
            << std::setprecision(1) << 100.0 * ts.coverage.coverage()
            << "% (" << ts.untestable << " proven untestable, " << ts.aborted
            << " aborted)\n";
  std::cout << "functional self-test passes: "
            << (functional_test(nl, ts) ? "yes" : "NO") << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const tz::VerifyError& e) {
    // TZ_CHECK boundary check tripped: name the corrupted invariant instead
    // of dying with an unexplained exception message.
    std::cerr << "invariant check failed at " << e.phase() << ":\n"
              << e.report().format();
    return 1;
  }
}
