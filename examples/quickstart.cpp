// Quickstart: run the complete TrojanZero flow on one benchmark and walk
// through every artifact the library produces.
//
//   $ ./example_quickstart [c432|c499|c880|c1908|c3540]
#include <iostream>

#include "core/report.hpp"
#include "netlist/bench_io.hpp"
#include "verify/verify.hpp"

namespace {

int run(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "c432";
  std::cout << "TrojanZero quickstart on " << name << "\n\n";

  // 1. Get a victim circuit (ISCAS85-class functional reproduction).
  const tz::Netlist victim = tz::make_benchmark(name);
  std::cout << "circuit: " << victim.gate_count() << " gates, "
            << victim.inputs().size() << " inputs, "
            << victim.outputs().size() << " outputs\n";

  // 2. One call runs Fig. 2 end to end: defender ATPG, thresholds,
  //    Algorithm 1 (salvage) and Algorithm 2 (insertion).
  const tz::FlowResult r = tz::run_trojanzero_flow(name);

  std::cout << "defender: "
            << r.suite.algorithms.front().patterns.num_patterns()
            << " stuck-at patterns, " << 100.0 * r.atpg_coverage
            << "% coverage\n";
  std::cout << "salvage:  " << r.salvage.expendable_gates
            << " gates freed -> " << r.salvage.delta_power_uw() << " uW, "
            << r.salvage.delta_area_ge() << " GE budget\n";
  if (r.insertion.success) {
    std::cout << "trojan:   " << r.insertion.ht_name << " on net '"
              << r.insertion.victim_name << "'\n";
    std::cout << "result:   P(N)=" << r.p_n.total_uw() << " uW vs P(N'')="
              << r.p_npp.total_uw() << " uW; A(N)=" << r.p_n.area_ge
              << " GE vs A(N'')=" << r.p_npp.area_ge << " GE\n";
    std::cout << "exposure: trigger seen with prob " << r.pft
              << " during the whole test session\n\n";
    // 3. The infected netlist is a normal netlist: write it out.
    std::cout << "--- infected netlist (.bench), first lines ---\n";
    const std::string text = tz::write_bench_string(r.insertion.infected);
    std::cout << text.substr(0, 400) << "...\n";
  } else {
    std::cout << "insertion failed for this configuration\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const tz::VerifyError& e) {
    // TZ_CHECK boundary check tripped: name the corrupted invariant instead
    // of dying with an unexplained exception message.
    std::cerr << "invariant check failed at " << e.phase() << ":\n"
              << e.report().format();
    return 1;
  }
}
