// The Sec. III case study as a library walk-through: manual, step-by-step
// use of the public API on the 8-bit ALU (no run_trojanzero_flow sugar).
#include <iostream>

#include "atpg/test_set.hpp"
#include "core/insertion.hpp"
#include "core/salvage.hpp"
#include "core/trigger_prob.hpp"
#include "gen/iscas.hpp"
#include "prob/signal_prob.hpp"
#include "tech/power_model.hpp"
#include "verify/verify.hpp"

namespace {

int run() {
  using namespace tz;
  // The victim: 8-bit ALU (c880 class).
  const Netlist alu = make_benchmark("c880");
  const PowerModel pm(CellLibrary::tsmc65_like());

  // Defender: stuck-at ATPG with a production pattern budget.
  TestGenOptions tg;
  tg.with_random_validation = false;
  tg.random_patterns = 64;
  tg.max_patterns = 80;
  const DefenderSuite suite = make_defender_suite(alu, tg);
  std::cout << "defender TPs: "
            << suite.algorithms.front().patterns.num_patterns()
            << ", coverage "
            << 100.0 * suite.algorithms.front().coverage.coverage() << "%\n";

  // Attacker step 1: where is the circuit quiet? (signal probabilities)
  const SignalProb sp(alu);
  const auto cands = find_candidates(alu, sp, 0.992);
  std::cout << "candidates at Pth=0.992: " << cands.size() << "\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, cands.size()); ++i) {
    std::cout << "  " << alu.node(cands[i].node).name << "  P="
              << cands[i].probability << " tie->" << cands[i].tie_value
              << "\n";
  }

  // Attacker step 2: Algorithm 1.
  const SalvageResult sal = salvage_power_area(alu, suite, pm, {.pth = 0.992});
  std::cout << "salvaged " << sal.expendable_gates << " gates, dP="
            << sal.delta_power_uw() << " uW, dA=" << sal.delta_area_ge()
            << " GE\n";

  // Attacker step 3: Algorithm 2 with the Fig. 4 counter HT.
  InsertionOptions iopt;
  iopt.library = {counter_trojan(3)};
  const InsertionResult ins = insert_trojan(alu, sal, suite, pm, iopt);
  if (!ins.success) {
    std::cout << "insertion failed\n";
    return 1;
  }
  std::cout << "payload on '" << ins.victim_name << "' (paper: carry-in), "
            << "counter-3bit, " << ins.dummy_gates << " dummy gate(s)\n";
  std::cout << "P(N'')=" << ins.power.total_uw() << " vs cap "
            << ins.threshold.total_uw() << " uW; A(N'')=" << ins.power.area_ge
            << " vs cap " << ins.threshold.area_ge << " GE\n";

  // Defender's view: every algorithm still passes.
  std::cout << "defender suite passes on N'': "
            << (functional_test(ins.infected, suite) ? "yes" : "NO") << "\n";

  // Attacker's view: the payload is real — Monte-Carlo the trigger.
  const double mc = monte_carlo_pft(ins.infected, ins.ht.fire,
                                    /*test_length=*/2048, /*trials=*/200, 7);
  std::cout << "payload fired in " << 100.0 * mc
            << "% of 2048-cycle random sessions (rare by design)\n";
  return 0;
}

}  // namespace

int main() {
  try {
    return run();
  } catch (const tz::VerifyError& e) {
    // TZ_CHECK boundary check tripped: name the corrupted invariant instead
    // of dying with an unexplained exception message.
    std::cerr << "invariant check failed at " << e.phase() << ":\n"
              << e.report().format();
    return 1;
  }
}
