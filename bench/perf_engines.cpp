// google-benchmark microbenchmarks for the engine kernels: bit-parallel
// simulation, signal probability, fault simulation, PODEM, SAT equivalence
// and the two TrojanZero algorithms.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "atpg/fault_sim_backend.hpp"
#include "atpg/fault_sim_engine.hpp"
#include "atpg/test_set.hpp"
#include "campaign/driver.hpp"
#include "core/flow_engine.hpp"
#include "core/report.hpp"
#include "gen/iscas.hpp"
#include "prob/signal_prob.hpp"
#include "sat/equivalence.hpp"
#include "sat/legacy_solver.hpp"
#include "sat/miter.hpp"
#include "sim/eval_plan.hpp"
#include "sim/simulator.hpp"
#include "verify/verify.hpp"

namespace {

const tz::Netlist& circuit(const std::string& name) {
  static std::map<std::string, tz::Netlist> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, tz::make_benchmark(name)).first;
  }
  return it->second;
}

void BM_BitSimulator(benchmark::State& state) {
  const tz::Netlist& nl = circuit("c3540");
  const tz::PatternSet ps =
      tz::random_patterns(nl.inputs().size(), state.range(0), 1);
  tz::BitSimulator sim(nl);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.outputs(ps));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BitSimulator)->Arg(64)->Arg(1024)->Arg(8192);

// 100k-gate proof of the stripe-major + SIMD evaluation path: the pair below
// is a same-run A/B on the mult96 array multiplier (108,960 gates) over
// 32,768 patterns — a 512-word row width whose value matrix (~427 MB) falls
// far out of LLC, exactly the regime the layout targets. run_into() reuses
// one warm matrix so the pair times the evaluation walk itself; a fresh
// allocation per iteration would add ~400 MB of kernel page-fault zeroing to
// both sides equally and compress the ratio.
//
// Machine context for the checked-in numbers (single-core container,
// ~16.6 GB/s DRAM read+write roofline): the contiguous slot-major walk moves
// ~3.3 GB/s effective (row-stride TLB misses on 4 KB pages), stripe-major +
// AVX2 ~14 GB/s — a 2.2-2.3x same-run ratio, which IS this machine's
// ceiling: with the baseline already at >3.2 GB/s, a 4x win would need
// >26 GB/s of bandwidth. The gap widens with the memory system.
void BM_BitSimulator100k(benchmark::State& state, tz::ValueLayout layout) {
  const tz::Netlist& nl = circuit("mult96");
  const tz::PatternSet ps =
      tz::random_patterns(nl.inputs().size(), 64 * 512, 1);
  tz::BitSimulator sim(nl);
  tz::NodeValues vals;
  sim.run_into(vals, ps, nullptr, layout);  // warm-up: allocate + fault in
  for (auto _ : state) {
    sim.run_into(vals, ps, nullptr, layout);
    benchmark::DoNotOptimize(vals.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 64 * 512);
}
BENCHMARK_CAPTURE(BM_BitSimulator100k, contiguous,
                  tz::ValueLayout::Contiguous)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BitSimulator100k, striped, tz::ValueLayout::Striped)
    ->Unit(benchmark::kMillisecond);

// Regression guard for the quadratic PatternSet::append: one pattern at a
// time into an initially empty set, the ATPG top-up access pattern. With
// geometric capacity growth each append is amortized O(signals) words; the
// old full-matrix relayout per pattern made the loop O(P^2) and this row
// blows up superlinearly between its two args if that ever comes back.
void BM_PatternSetAppend(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kSignals = 64;
  std::unique_ptr<bool[]> bits(new bool[n * kSignals]);
  std::mt19937_64 rng(42);
  for (std::size_t i = 0; i < n * kSignals; ++i) bits[i] = rng() & 1;
  for (auto _ : state) {
    tz::PatternSet acc(kSignals, 0);
    for (std::size_t p = 0; p < n; ++p) {
      acc.append({bits.get() + p * kSignals, kSignals});
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PatternSetAppend)->ArgName("patterns")->Arg(1024)->Arg(16384);

// One-time cost of compiling a netlist into the flat SoA evaluation plan
// (opcode stream + fanin/fanout CSR) every bit-parallel engine now walks.
void BM_EvalPlanCompile(benchmark::State& state) {
  const tz::Netlist& nl = circuit("c6288");
  for (auto _ : state) {
    tz::EvalPlan plan(nl);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_EvalPlanCompile);

// The SuiteOracle's fused cone pass at defender-suite widths of 1/4/16
// words (64/256/1024 patterns): one tie verdict per combinational gate, the
// steady-state cost of an Algorithm 1 candidate screen.
void BM_ConePassWords(benchmark::State& state) {
  const tz::Netlist& nl = circuit("c3540");
  const std::size_t words = static_cast<std::size_t>(state.range(0));
  tz::DefenderSuite suite;
  tz::DefenderTestSet ts;
  ts.name = "random";
  ts.patterns = tz::random_patterns(nl.inputs().size(), 64 * words, 11);
  ts.golden = tz::BitSimulator(nl).outputs(ts.patterns);
  suite.algorithms.push_back(std::move(ts));
  tz::SuiteOracle oracle(nl, suite);
  std::vector<tz::NodeId> gates;
  for (tz::NodeId id = 0; id < nl.raw_size(); ++id) {
    if (nl.is_alive(id) && tz::is_combinational(nl.node(id).type)) {
      gates.push_back(id);
    }
  }
  for (auto _ : state) {
    std::size_t visible = 0;
    for (tz::NodeId g : gates) visible += oracle.tie_visible(g, true) ? 1 : 0;
    benchmark::DoNotOptimize(visible);
  }
  state.SetItemsProcessed(state.iterations() * gates.size());
}
BENCHMARK(BM_ConePassWords)->ArgName("words")->Arg(1)->Arg(4)->Arg(16);

void BM_SignalProb(benchmark::State& state) {
  const tz::Netlist& nl = circuit("c3540");
  for (auto _ : state) {
    benchmark::DoNotOptimize(tz::SignalProb(nl));
  }
}
BENCHMARK(BM_SignalProb);

void BM_MonteCarloProb(benchmark::State& state) {
  const tz::Netlist& nl = circuit("c3540");
  for (auto _ : state) {
    benchmark::DoNotOptimize(tz::monte_carlo_p1(nl, state.range(0), 7));
  }
}
BENCHMARK(BM_MonteCarloProb)->Arg(1024)->Arg(16384);

void BM_FaultSimulation(benchmark::State& state) {
  const tz::Netlist& nl = circuit("c880");
  const auto faults = tz::collapse_faults(nl, tz::fault_universe(nl));
  const tz::PatternSet ps = tz::random_patterns(nl.inputs().size(), 64, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tz::fault_simulate(nl, faults, ps));
  }
  state.SetItemsProcessed(state.iterations() * faults.size());
}
BENCHMARK(BM_FaultSimulation);

// Engine reuse: good machine and static analyses amortised over iterations,
// the steady-state cost of grading inside a salvage/ATPG loop.
void BM_FaultSimEngineReuse(benchmark::State& state) {
  const tz::Netlist& nl = circuit("c880");
  const auto faults = tz::collapse_faults(nl, tz::fault_universe(nl));
  const tz::PatternSet ps = tz::random_patterns(nl.inputs().size(), 64, 3);
  tz::FaultSimEngine engine(nl, ps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.simulate(faults));
  }
  state.SetItemsProcessed(state.iterations() * faults.size());
}
BENCHMARK(BM_FaultSimEngineReuse);

// Word-packed fault simulation at 100k-gate scale: a same-run A/B between
// the event-driven and packed backends on the mult96 array multiplier
// (108,960 gates), whose fault cones are dense — the regime where walking
// each fault's fanout cone event-by-event loses to one SoA sweep carrying 64
// fault machines per word. The sample is the 2,048 topologically earliest
// faults — input, partial-product and early carry-chain sites whose fanout
// cones span most of the array, the regime the Auto selector routes to the
// packed engine — over 1,024 grading patterns in flag mode (the random
// fault-grading shape): the event walk pays the whole cone per fault, while
// the packed sweep pays one slot sweep per 64 faults and retires a batch as
// soon as every lane has detected, typically within the first 64-pattern
// block. The selector row shows Auto's measured cone/slot cost model
// picking the packed engine here; see BENCH_perf_engines.json for the
// checked-in same-run ratio.
void BM_FaultSimPacked100k(benchmark::State& state, tz::FaultSimMode mode) {
  const tz::Netlist& nl = circuit("mult96");
  static const std::vector<tz::Fault> faults = [&nl] {
    auto universe = tz::fault_universe(nl);
    universe.resize(std::min<std::size_t>(universe.size(), 2048));
    return universe;
  }();
  const tz::PatternSet ps =
      tz::random_patterns(nl.inputs().size(), 1024, 3);
  const auto backend = tz::make_fault_sim_backend(nl, mode);
  backend->set_patterns(ps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend->simulate(faults));
  }
  state.SetItemsProcessed(state.iterations() * faults.size());
  state.SetLabel(std::string(backend->name()));
}
BENCHMARK_CAPTURE(BM_FaultSimPacked100k, event, tz::FaultSimMode::Event)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FaultSimPacked100k, packed, tz::FaultSimMode::Packed)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FaultSimPacked100k, selector, tz::FaultSimMode::Auto)
    ->Unit(benchmark::kMillisecond);

// Incremental drop-sim: stream single patterns through one engine, dropping
// detected faults — the ATPG phase-2 access pattern.
void BM_FaultSimDropSim(benchmark::State& state) {
  const tz::Netlist& nl = circuit("c880");
  const auto faults = tz::collapse_faults(nl, tz::fault_universe(nl));
  const tz::PatternSet ps = tz::random_patterns(nl.inputs().size(), 64, 3);
  tz::FaultSimEngine engine(nl);
  for (auto _ : state) {
    std::vector<bool> detected(faults.size(), false);
    for (std::size_t p = 0; p < ps.num_patterns(); ++p) {
      engine.set_patterns(ps.slice(p, 1));
      benchmark::DoNotOptimize(engine.drop_sim(faults, detected));
    }
  }
  state.SetItemsProcessed(state.iterations() * faults.size());
}
BENCHMARK(BM_FaultSimDropSim);

void BM_PodemPerFault(benchmark::State& state) {
  const tz::Netlist& nl = circuit("c880");
  const auto faults = tz::fault_universe(nl);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tz::podem(nl, faults[i % faults.size()]));
    ++i;
  }
}
BENCHMARK(BM_PodemPerFault);

void BM_AtpgFlow(benchmark::State& state) {
  const tz::Netlist& nl = circuit("c432");
  for (auto _ : state) {
    benchmark::DoNotOptimize(tz::generate_atpg_tests(nl));
  }
}
BENCHMARK(BM_AtpgFlow)->Unit(benchmark::kMillisecond);

// Same-run A/B between the retired monolithic SAT core (kept verbatim under
// sat::legacy) and the arena CDCL solver driving the incremental cone-sliced
// miter, both proving the c880 self-miter UNSAT. The `search` row keeps the
// comparison honest: structural matching and the simulation pre-pass are
// disabled, so every output pair is proved by actual CDCL search over the
// same Tseitin structure the legacy monolithic miter solves in one shot —
// the win measured is the solver core (watched literals with blockers,
// dedicated binary lists, VSIDS heap, first-UIP + minimization, restarts,
// LBD-kept learnts) plus the per-output slicing, not the shortcuts. The
// `production` row is the default check_equivalence configuration with all
// accelerations on.
void BM_SatEquivalence(benchmark::State& state, int mode) {
  const tz::Netlist& nl = circuit("c880");
  for (auto _ : state) {
    if (mode == 0) {
      benchmark::DoNotOptimize(tz::sat::legacy::check_equivalence(nl, nl));
    } else {
      tz::sat::MiterOptions opts;
      opts.prepass = mode == 2;
      opts.structural_match = mode == 2;
      tz::sat::IncrementalMiter miter(nl, nl, opts);
      benchmark::DoNotOptimize(miter.check());
    }
  }
  state.SetLabel("self-miter UNSAT");
}
BENCHMARK_CAPTURE(BM_SatEquivalence, legacy, 0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SatEquivalence, search, 1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SatEquivalence, production, 2)
    ->Unit(benchmark::kMillisecond);

// Equivalence checking at 100k-gate scale, the regime the monolithic miter
// could not touch (its one-shot CNF over two full copies never returns).
//
// `rewritten_unsat` is the salvage-shaped UNSAT case: rand100k against a
// copy with 32 local DeMorgan rewrites (And(a,b) -> Nor(~a,~b)) spread
// through the circuit. Structural matching shares everything outside the
// rewrite cones, the bounded sweep queries re-merge the frontiers just
// above each rewrite, and the per-output checks ride the shared variables —
// the whole proof is a few thousand tiny UNSAT calls instead of one
// monolithic solve.
//
// `edited_sat` is the witness case: one mid-circuit gate negated. The
// simulation pre-pass is disabled so the row times the SAT path — cones are
// encoded output by output in topo order until the first affected output
// yields a model, which becomes the replayable counterexample.
const tz::Netlist& rand100k_rewritten() {
  static const tz::Netlist rewritten = [] {
    tz::Netlist nl = circuit("rand100k");
    std::vector<tz::NodeId> ands;
    for (const tz::NodeId id : nl.topo_order()) {
      if (nl.node(id).type == tz::GateType::And &&
          nl.node(id).fanin.size() == 2) {
        ands.push_back(id);
      }
    }
    const std::size_t step = std::max<std::size_t>(1, ands.size() / 32);
    int done = 0;
    for (std::size_t i = 0; i < ands.size() && done < 32; i += step, ++done) {
      const tz::NodeId g = ands[i];
      const auto fan = nl.node(g).fanin;
      const std::string tag = "dm" + std::to_string(done);
      const tz::NodeId na =
          nl.add_gate(tz::GateType::Not, tag + "_a", {fan[0]});
      const tz::NodeId nb =
          nl.add_gate(tz::GateType::Not, tag + "_b", {fan[1]});
      const tz::NodeId ng =
          nl.add_gate(tz::GateType::Nor, tag + "_g", {na, nb});
      nl.replace_uses(g, ng);
      nl.remove_node(g);
    }
    return nl;
  }();
  return rewritten;
}

const tz::Netlist& rand100k_edited() {
  static const tz::Netlist edited = [] {
    tz::Netlist nl = circuit("rand100k");
    const std::vector<tz::NodeId> order = nl.topo_order();
    for (std::size_t i = order.size() / 2; i < order.size(); ++i) {
      if (nl.node(order[i]).type == tz::GateType::And) {
        nl.retype(order[i], tz::GateType::Nand);
        break;
      }
    }
    return nl;
  }();
  return edited;
}

void BM_SatEquivalence100k(benchmark::State& state, bool unsat_case) {
  const tz::Netlist& nl = circuit("rand100k");
  const tz::Netlist& other =
      unsat_case ? rand100k_rewritten() : rand100k_edited();
  for (auto _ : state) {
    tz::sat::MiterOptions opts;
    opts.prepass = false;  // time the SAT path, not the simulator
    tz::sat::IncrementalMiter miter(nl, other, opts);
    const tz::sat::EquivalenceResult res = miter.check();
    if (res.equivalent != unsat_case || !res.decided) {
      state.SkipWithError("wrong verdict");
      break;
    }
    benchmark::DoNotOptimize(res);
  }
  state.SetLabel(unsat_case ? "32 DeMorgan rewrites proved equal"
                            : "1 negated gate, witness found");
}
BENCHMARK_CAPTURE(BM_SatEquivalence100k, rewritten_unsat, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SatEquivalence100k, edited_sat, false)
    ->Unit(benchmark::kMillisecond);

// ---- TrojanZero flow phases on the incremental FlowEngine ----
// The defender suite and salvage result are built once per circuit so the
// benchmarks time Algorithm 1/2 themselves, not the ATPG setup.

struct FlowFixture {
  tz::Netlist nl;
  tz::DefenderSuite suite;
  tz::PowerModel pm{tz::CellLibrary::tsmc65_like()};
  tz::SalvageOptions sopt;
  tz::SalvageResult salvage;
};

const FlowFixture& flow_fixture(const std::string& name) {
  static std::map<std::string, FlowFixture> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    FlowFixture f;
    f.nl = tz::make_benchmark(name);
    f.suite =
        tz::make_defender_suite(f.nl, tz::FlowOptions::atpg_only_defender());
    f.sopt.pth = tz::spec_for(name).pth;
    f.salvage = tz::salvage_power_area(f.nl, f.suite, f.pm, f.sopt);
    it = cache.emplace(name, std::move(f)).first;
  }
  return it->second;
}

void BM_SalvageFlow(benchmark::State& state, const std::string& name) {
  const FlowFixture& f = flow_fixture(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tz::salvage_power_area(f.nl, f.suite, f.pm, f.sopt));
  }
}
BENCHMARK_CAPTURE(BM_SalvageFlow, c880, "c880")
    ->Unit(benchmark::kMillisecond);
// >2k-gate array-multiplier stress: dense arithmetic where the defender's
// coverage leaves almost nothing salvageable — the oracle still has to judge
// every candidate cone.
BENCHMARK_CAPTURE(BM_SalvageFlow, c6288, "c6288")
    ->Unit(benchmark::kMillisecond);

// Same salvage with the tz::verify flow-boundary checks forced on: every
// accepted tie re-proves the netlist invariants and the patched-plan
// equivalence diff (one O(V+E) recompile per commit). Compare against
// BM_SalvageFlow/c6288 in the same run for the TZ_CHECK=1 overhead —
// documented in README (a few percent: commits are rare next to judging).
void BM_SalvageFlowChecked(benchmark::State& state, const std::string& name) {
  const FlowFixture& f = flow_fixture(name);
  tz::set_check_enabled(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tz::salvage_power_area(f.nl, f.suite, f.pm, f.sopt));
  }
  tz::set_check_enabled(-1);
}
BENCHMARK_CAPTURE(BM_SalvageFlowChecked, c6288, "c6288")
    ->Unit(benchmark::kMillisecond);
// c880 actually accepts removals under its Table I threshold, so this is the
// commit-heavy case where the per-commit checks genuinely run.
BENCHMARK_CAPTURE(BM_SalvageFlowChecked, c880, "c880")
    ->Unit(benchmark::kMillisecond);

void BM_InsertTrojan(benchmark::State& state, const std::string& name,
                     tz::InsertionOptions iopt) {
  const FlowFixture& f = flow_fixture(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tz::insert_trojan(f.nl, f.salvage, f.suite, f.pm, iopt));
  }
}
BENCHMARK_CAPTURE(BM_InsertTrojan, c880, "c880",
                  tz::InsertionOptions{.library = {tz::counter_trojan(3),
                                                  tz::counter_trojan(2)}})
    ->Unit(benchmark::kMillisecond);
// The multiplier's signal probabilities hug 0.5, so the rare-net cut is
// relaxed to give the trigger search a real pool to walk.
BENCHMARK_CAPTURE(BM_InsertTrojan, c6288, "c6288",
                  tz::InsertionOptions{.library = {tz::counter_trojan(5),
                                                  tz::counter_trojan(3)},
                                       .rare_p1 = 0.25})
    ->Unit(benchmark::kMillisecond);

// Parallel per-victim screening scan on the multiplier stress: the suite
// verdicts for every payload location are judged concurrently on the shared
// oracle core (one ConeScratch per worker), then reduced in canonical order.
// threads:1 is the sequential baseline; results are bit-identical at every
// row (see flow_engine_test ParallelScan).
void BM_InsertTrojanParallel(benchmark::State& state) {
  const FlowFixture& f = flow_fixture("c6288");
  tz::InsertionOptions iopt{.library = {tz::counter_trojan(5),
                                        tz::counter_trojan(3)},
                            .rare_p1 = 0.25};
  iopt.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tz::insert_trojan(f.nl, f.salvage, f.suite, f.pm, iopt));
  }
}
BENCHMARK(BM_InsertTrojanParallel)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Parallel speculative tie screening on the same circuit: batches of
// upcoming Algorithm 1 candidates are judged concurrently, consumed in
// canonical order up to the first accept.
void BM_SalvageFlowParallel(benchmark::State& state) {
  const FlowFixture& f = flow_fixture("c6288");
  tz::SalvageOptions sopt = f.sopt;
  sopt.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tz::salvage_power_area(f.nl, f.suite, f.pm, sopt));
  }
}
BENCHMARK(BM_SalvageFlowParallel)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_FullTrojanZeroFlow(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(tz::run_trojanzero_flow("c432"));
  }
}
BENCHMARK(BM_FullTrojanZeroFlow)->Unit(benchmark::kMillisecond);

// Campaign artifact sharing, same-run A/B: the same 8-job grid (c432+c499,
// counter_bits {2,3} × trigger_widths {2,4}) run cold — a fresh ArtifactStore
// per job, so every job re-parses the netlist, re-analyzes power, regenerates
// the defender suite and rebuilds the oracle rows — versus shared, one store
// for the whole grid (2 circuit entries + 2 suite entries amortized over 8
// jobs, which is the campaign driver's steady state). The shared/cold ratio
// is the artifact layer's win; the checked-in BENCH_perf_engines.json rows
// document it at >=2x.
const std::vector<tz::JobSpec>& campaign_grid_jobs() {
  static const std::vector<tz::JobSpec> jobs = [] {
    tz::CampaignGrid g;
    g.circuits = {"c432", "c499"};
    g.counter_bits = {2, 3};
    g.trigger_widths = {2, 4};
    return g.expand();
  }();
  return jobs;
}

void BM_Campaign(benchmark::State& state, bool shared) {
  const std::vector<tz::JobSpec>& jobs = campaign_grid_jobs();
  for (auto _ : state) {
    tz::ArtifactStore store;
    for (const tz::JobSpec& spec : jobs) {
      if (shared) {
        benchmark::DoNotOptimize(tz::run_flow_job(spec, store));
      } else {
        tz::ArtifactStore cold;
        benchmark::DoNotOptimize(tz::run_flow_job(spec, cold));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * jobs.size());
}
BENCHMARK_CAPTURE(BM_Campaign, cold, false)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Campaign, shared, true)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
