// Reproduces Fig. 7: area, leakage power and dynamic power of the HT-free
// (N), modified (N') and TZ-infected (N'') circuits across the benchmarks,
// plus the paper's three observations (X, Y, Z).
//
// Default mode sources the rows from the campaign engine ("fig7" grid via
// run_campaign_in_memory, JSON round-tripped); `--legacy` keeps the original
// direct run_trojanzero_flow loop. CI diffs the two outputs.
#include <cstring>
#include <iomanip>
#include <iostream>
#include <vector>

#include "campaign/driver.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace tz;
  const bool legacy = argc > 1 && std::strcmp(argv[1], "--legacy") == 0;
  std::cout << "=== Fig. 7: N vs N' vs N'' (per benchmark) ===\n";
  std::cout << std::fixed << std::setprecision(2);

  std::vector<FlowResult> results;
  if (legacy) {
    for (const BenchmarkSpec& spec : iscas85_specs()) {
      results.push_back(run_trojanzero_flow(spec.name));
    }
  } else {
    results = run_campaign_in_memory(CampaignGrid::preset("fig7"));
  }

  double worst_leak_margin = 1e9, worst_dyn_margin = 1e9, worst_area_margin = 1e9;
  std::string leak_at, dyn_at, area_at;
  std::size_t i = 0;
  for (const BenchmarkSpec& spec : iscas85_specs()) {
    const FlowResult& r = results[i++];
    print_power_triple(std::cout, r, spec);
    if (!r.insertion.success) continue;
    const double leak_margin =
        100.0 * (r.p_n.leakage_uw - r.p_npp.leakage_uw) / r.p_n.leakage_uw;
    const double dyn_margin =
        100.0 * (r.p_n.dynamic_uw - r.p_npp.dynamic_uw) / r.p_n.dynamic_uw;
    const double area_margin =
        100.0 * (r.p_n.area_ge - r.p_npp.area_ge) / r.p_n.area_ge;
    std::cout << "  margins to cap: leakage " << leak_margin << "%  dynamic "
              << dyn_margin << "%  area " << area_margin << "%\n";
    if (leak_margin < worst_leak_margin) { worst_leak_margin = leak_margin; leak_at = spec.name; }
    if (dyn_margin < worst_dyn_margin) { worst_dyn_margin = dyn_margin; dyn_at = spec.name; }
    if (area_margin < worst_area_margin) { worst_area_margin = area_margin; area_at = spec.name; }
  }
  std::cout << "\nObservation X (leakage runs closest to its cap): tightest "
            << worst_leak_margin << "% on " << leak_at << "\n";
  std::cout << "Observation Y (dynamic stays below the bound): tightest "
            << worst_dyn_margin << "% on " << dyn_at << "\n";
  std::cout << "Observation Z (area is sometimes the binding cap): tightest "
            << worst_area_margin << "% on " << area_at << "\n";
  return 0;
}
