// Reproduces Table I: TrojanZero analysis for the five ISCAS85 benchmarks.
//
// For each circuit: run the full flow at the paper's Pth / counter size and
// print measured values next to the published ones. Absolute power/area
// differ (synthetic 65nm library vs the authors' TSMC kit); the claims to
// check are the *relationships*: P(N') < P(N'') <= P(N), A(N'') ~= A(N),
// non-empty candidate/expendable sets, and rare trigger exposure.
//
// By default the rows come from the campaign engine (the "table1" grid run
// through run_campaign_in_memory, which round-trips every result through the
// JSON wire format — so this output is exactly what a merged campaign
// artifact reproduces). `--legacy` runs the original per-circuit
// run_trojanzero_flow loop instead; CI diffs the two modes byte-for-byte.
#include <cstring>
#include <iostream>
#include <vector>

#include "campaign/driver.hpp"
#include "core/report.hpp"

namespace {

void print_row(std::ostream& os, const tz::FlowResult& r,
               const tz::BenchmarkSpec& spec) {
  tz::print_table1_row(os, r, spec);
  if (!r.insertion.success) {
    os << "  !! insertion failed (" << r.insertion.fail_build << "/"
       << r.insertion.fail_test << "/" << r.insertion.fail_caps
       << " build/test/cap rejections)\n";
    return;
  }
  os << "  inserted " << r.insertion.ht_name << " at "
     << r.insertion.victim_name << " with " << r.insertion.dummy_gates
     << " dummy gate(s); "
     << "ATPG coverage " << 100.0 * r.atpg_coverage << "% over "
     << r.meta.suite_patterns.front() << " TPs; payload-fire Pft "
     << r.pft_payload << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool legacy = argc > 1 && std::strcmp(argv[1], "--legacy") == 0;
  std::cout << "=== Table I: TrojanZero analysis (measured vs paper) ===\n";
  if (legacy) {
    for (const tz::BenchmarkSpec& spec : tz::iscas85_specs()) {
      print_row(std::cout, tz::run_trojanzero_flow(spec.name), spec);
    }
  } else {
    // Grid order == iscas85_specs() order, so results line up with specs.
    const std::vector<tz::FlowResult> results =
        tz::run_campaign_in_memory(tz::CampaignGrid::preset("table1"));
    std::size_t i = 0;
    for (const tz::BenchmarkSpec& spec : tz::iscas85_specs()) {
      print_row(std::cout, results[i++], spec);
    }
  }
  std::cout << "\nColumns: C = candidate gates at Pth, Eg = gates salvaged,\n"
               "P/A triples = HT-free / modified / TZ-infected, Pft = trigger\n"
               "exposure probability during the defender's test session.\n";
  return 0;
}
