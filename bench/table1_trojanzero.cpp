// Reproduces Table I: TrojanZero analysis for the five ISCAS85 benchmarks.
//
// For each circuit: run the full flow at the paper's Pth / counter size and
// print measured values next to the published ones. Absolute power/area
// differ (synthetic 65nm library vs the authors' TSMC kit); the claims to
// check are the *relationships*: P(N') < P(N'') <= P(N), A(N'') ~= A(N),
// non-empty candidate/expendable sets, and rare trigger exposure.
#include <iostream>

#include "core/report.hpp"

int main() {
  std::cout << "=== Table I: TrojanZero analysis (measured vs paper) ===\n";
  for (const tz::BenchmarkSpec& spec : tz::iscas85_specs()) {
    const tz::FlowResult r = tz::run_trojanzero_flow(spec.name);
    tz::print_table1_row(std::cout, r, spec);
    if (!r.insertion.success) {
      std::cout << "  !! insertion failed (" << r.insertion.fail_build << "/"
                << r.insertion.fail_test << "/" << r.insertion.fail_caps
                << " build/test/cap rejections)\n";
      continue;
    }
    std::cout << "  inserted " << r.insertion.ht_name << " at "
              << r.insertion.victim_name << " with "
              << r.insertion.dummy_gates << " dummy gate(s); "
              << "ATPG coverage " << 100.0 * r.atpg_coverage << "% over "
              << r.suite.algorithms.front().patterns.num_patterns()
              << " TPs; payload-fire Pft " << r.pft_payload << "\n";
  }
  std::cout << "\nColumns: C = candidate gates at Pth, Eg = gates salvaged,\n"
               "P/A triples = HT-free / modified / TZ-infected, Pft = trigger\n"
               "exposure probability during the defender's test session.\n";
  return 0;
}
