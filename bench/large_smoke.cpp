// Large-circuit CI smoke: generate a 100k-gate netlist, simulate a pattern
// sample through every evaluator mode and value-matrix layout, and fail on
// any cross-mode response difference; then diff the event-driven and
// word-packed fault-simulation backends' detection matrices on a fault
// sample. Bounded to a few seconds — this is a correctness gate for the
// stripe-major + SIMD path and the packed fault sweep at the scale the
// microbenchmarks measure, not a performance run.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "atpg/fault_sim_backend.hpp"
#include "gen/iscas.hpp"
#include "sim/eval_plan.hpp"
#include "sim/simulator.hpp"

namespace {

long long ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace tz;
  auto t0 = std::chrono::steady_clock::now();
  const Netlist nl = make_benchmark("rand100k");
  std::printf("rand100k: %zu gates, generated in %lld ms\n", nl.gate_count(),
              ms_since(t0));
  if (nl.gate_count() != 100000) {
    std::fprintf(stderr, "FAIL: expected exactly 100000 gates\n");
    return 1;
  }

  // 6400 patterns = 100 words: wide enough that the plan path splits the row
  // width and the Auto layout goes stripe-major at this slot count.
  const PatternSet ps = random_patterns(nl.inputs().size(), 6400, 17);
  PatternSet reference;
  {
    set_eval_plan_enabled(0);
    BitSimulator sim(nl);
    t0 = std::chrono::steady_clock::now();
    reference = sim.outputs(ps);
    std::printf("legacy node-walk:      %5lld ms\n", ms_since(t0));
  }
  set_eval_plan_enabled(1);
  BitSimulator sim(nl);
  if (!sim.plan() ||
      sim.plan()->block_words(ps.num_words()) >= ps.num_words()) {
    std::fprintf(stderr, "FAIL: sample width does not exercise striping\n");
    return 1;
  }
  struct Case {
    const char* name;
    ValueLayout layout;
  };
  const Case cases[] = {{"plan contiguous", ValueLayout::Contiguous},
                        {"plan stripe-major", ValueLayout::Striped}};
  NodeValues vals;
  for (const Case& c : cases) {
    t0 = std::chrono::steady_clock::now();
    sim.run_into(vals, ps, nullptr, c.layout);
    const long long elapsed = ms_since(t0);
    PatternSet out(nl.outputs().size(), ps.num_patterns());
    for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
      auto dst = out.words(o);
      vals.copy_row(nl.outputs()[o], dst.data());
      if (!dst.empty()) dst.back() &= out.tail_mask();
    }
    std::printf("%-22s %5lld ms\n", c.name, elapsed);
    if (!BitSimulator::responses_equal(reference, out)) {
      std::fprintf(stderr, "FAIL: %s diverges from the legacy responses\n",
                   c.name);
      return 1;
    }
  }
  set_eval_plan_enabled(-1);
  std::printf("OK: all modes and layouts bit-identical on %zu patterns\n",
              ps.num_patterns());

  // Packed-vs-event fault-simulation parity at the same scale: detection
  // matrices over a fault sample must be word-identical between the two
  // backends. CI runs this binary under TZ_SIMD=1 and TZ_SIMD=0, so the
  // parity also covers both kernel families the packed sweep dispatches to.
  const auto universe = fault_universe(nl);
  std::vector<Fault> faults;
  const std::size_t stride = std::max<std::size_t>(1, universe.size() / 256);
  for (std::size_t i = 0; i < universe.size(); i += stride) {
    faults.push_back(universe[i]);
  }
  const PatternSet fps = random_patterns(nl.inputs().size(), 128, 23);
  std::vector<std::vector<std::uint64_t>> matrices[2];
  const FaultSimMode modes[] = {FaultSimMode::Event, FaultSimMode::Packed};
  for (int m = 0; m < 2; ++m) {
    t0 = std::chrono::steady_clock::now();
    const auto backend = make_fault_sim_backend(nl, modes[m]);
    backend->set_patterns(fps);
    matrices[m] = backend->detection_matrix(faults);
    std::printf("%-6s fault-sim:      %5lld ms (%zu faults)\n",
                std::string(backend->name()).c_str(), ms_since(t0),
                faults.size());
  }
  if (matrices[0] != matrices[1]) {
    std::fprintf(stderr,
                 "FAIL: packed detection matrices diverge from event\n");
    return 1;
  }
  std::printf("OK: packed and event detection matrices bit-identical\n");
  return 0;
}
