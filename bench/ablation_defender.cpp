// Ablation bench (DESIGN.md Sec. 4): how defender strength and candidate
// ordering change what Algorithm 1 can salvage. This quantifies the
// soundness boundary the paper leaves implicit — against a complete
// single-stuck-at test set, only redundant gates are expendable.
#include <iomanip>
#include <iostream>

#include "core/report.hpp"

int main() {
  using namespace tz;
  std::cout << "=== Ablation: defender strength vs salvaged gates ===\n";
  std::cout << std::left << std::setw(28) << "defender configuration"
            << " | circuit |  C  | Eg | dP(uW) | dA(GE)\n";
  struct Config {
    const char* name;
    TestGenOptions tg;
  };
  std::vector<Config> configs;
  {
    Config c{"budgeted ATPG (paper model)", FlowOptions::atpg_only_defender()};
    configs.push_back(c);
  }
  {
    Config c{"+ random validation", FlowOptions::atpg_only_defender()};
    c.tg.with_random_validation = true;
    configs.push_back(c);
  }
  {
    Config c{"+ walking bits", FlowOptions::atpg_only_defender()};
    c.tg.with_random_validation = true;
    c.tg.with_walking = true;
    configs.push_back(c);
  }
  {
    Config c{"full-coverage ATPG", FlowOptions::atpg_only_defender()};
    c.tg.coverage_target = 1.0;
    c.tg.max_patterns = 100000;
    c.tg.random_patterns = 256;
    configs.push_back(c);
  }
  for (const char* name : {"c432", "c880"}) {
    for (const Config& cfg : configs) {
      FlowOptions opt;
      opt.pth = spec_for(name).pth;
      opt.counter_bits = spec_for(name).counter_bits;
      opt.testgen = cfg.tg;
      const FlowResult r = run_trojanzero_flow(name, opt);
      std::cout << std::left << std::setw(28) << cfg.name << " | "
                << std::setw(7) << name << " | " << std::setw(3)
                << r.salvage.candidates << " | " << std::setw(2)
                << r.salvage.expendable_gates << " | " << std::fixed
                << std::setprecision(2) << std::setw(6)
                << r.salvage.delta_power_uw() << " | "
                << r.salvage.delta_area_ge() << "\n";
    }
  }

  std::cout << "\n=== Ablation: candidate visit order (c3540) ===\n";
  for (auto order : {SalvageOptions::Order::ByProbability,
                     SalvageOptions::Order::ByLeakage}) {
    FlowOptions opt;
    opt.pth = spec_for("c3540").pth;
    opt.counter_bits = spec_for("c3540").counter_bits;
    opt.order = order;
    const FlowResult r = run_trojanzero_flow("c3540", opt);
    std::cout << (order == SalvageOptions::Order::ByProbability
                      ? "most-certain-first (paper)"
                      : "highest-leakage-first     ")
              << " : Eg = " << r.salvage.expendable_gates << ", dP = "
              << std::fixed << std::setprecision(2)
              << r.salvage.delta_power_uw() << " uW, dA = "
              << r.salvage.delta_area_ge() << " GE\n";
  }
  return 0;
}
