// Release-build flow smoke for CI: run the complete TrojanZero flow on c880
// and hard-fail unless the TrojanZero property held — the HT was inserted,
// every defender algorithm passes on N'' and no power/area component
// exceeds the HT-free threshold. Exercises the FlowEngine (suite oracle,
// incremental power tracker, undo-log reverts) under the optimizer, where
// ASan/UBSan debug runs would not catch codegen-only regressions.
#include <cstdio>
#include <iostream>

#include "core/report.hpp"

int main() {
  const tz::FlowResult r = tz::run_trojanzero_flow("c880");
  tz::print_table1_row(std::cout, r, tz::spec_for("c880"));

  bool ok = true;
  auto expect = [&](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      ok = false;
    }
  };
  expect(r.salvage.expendable_gates > 0, "salvage freed gates");
  expect(r.insertion.success, "HT inserted");
  if (r.insertion.success) {
    const tz::PowerReport& p = r.insertion.power;
    const tz::PowerReport& t = r.insertion.threshold;
    expect(p.total_uw() <= t.total_uw(), "total power cap");
    expect(p.dynamic_uw <= t.dynamic_uw, "dynamic power cap");
    expect(p.leakage_uw <= t.leakage_uw, "leakage power cap");
    expect(p.area_ge <= t.area_ge, "area cap");
    expect(tz::functional_test(r.insertion.infected, r.suite),
           "defender suite passes on N''");
  }
  if (!ok) return 1;
  std::puts("flow smoke OK");
  return 0;
}
