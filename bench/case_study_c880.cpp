// Reproduces the Sec. III case study: intruding the c880-class 8-bit ALU.
//
// Paper numbers: N = 77.2 uW / 365.4 GE; Pth = 0.992 gives |C| = 27; 11
// gates salvaged -> N' = 70.2 uW / 329.7 GE; a 3-bit counter HT on the ALU
// carry-in yields N'' = 76.4 uW / 362.8 GE, i.e. dPT = 0.8 uW, dA = 2.6 GE.
#include <iomanip>
#include <iostream>

#include "core/report.hpp"
#include "core/trigger_prob.hpp"
#include "sat/equivalence.hpp"

int main() {
  using namespace tz;
  std::cout << std::fixed << std::setprecision(2);
  std::cout << "=== Case study: TrojanZero on the 8-bit ALU (c880 class) ===\n\n";
  const FlowResult r = run_trojanzero_flow("c880");

  std::cout << "Step 1 - thresholds of the HT-free circuit N:\n"
            << "  total " << r.p_n.total_uw() << " uW (paper 77.2), dynamic "
            << r.p_n.dynamic_uw << " uW (paper 70.35), leakage "
            << r.p_n.leakage_uw << " uW (paper 6.87), area " << r.p_n.area_ge
            << " GE (paper 365.4)\n";
  std::cout << "  defender: " << r.suite.algorithms.front().patterns.num_patterns()
            << " stuck-at ATPG patterns, coverage "
            << 100.0 * r.atpg_coverage << "%\n\n";

  std::cout << "Step 2 - Algorithm 1 at Pth = 0.992:\n"
            << "  |C| = " << r.salvage.candidates << " candidates (paper 27), "
            << r.salvage.accepted.size() << " accepted, Eg = "
            << r.salvage.expendable_gates << " gates salvaged (paper 11)\n";
  for (const SalvageRecord& rec : r.salvage.accepted) {
    std::cout << "    tied " << rec.node_name << " to " << rec.tie_value
              << " (P = " << std::setprecision(4) << rec.probability
              << std::setprecision(2) << "), cone of " << rec.gates_removed
              << " gate(s)\n";
  }
  std::cout << "  N' = " << r.p_np.total_uw() << " uW / " << r.p_np.area_ge
            << " GE (paper 70.2 uW / 329.7 GE)\n\n";

  std::cout << "Step 3 - Algorithm 2 (counter HT, Fig. 4):\n";
  if (r.insertion.success) {
    std::cout << "  inserted " << r.insertion.ht_name << " with payload on "
              << r.insertion.victim_name << " (paper: carry-in N261), "
              << r.insertion.dummy_gates << " dummy gate(s)\n"
              << "  N'' = " << r.p_npp.total_uw() << " uW / " << r.p_npp.area_ge
              << " GE (paper 76.4 uW / 362.8 GE)\n"
              << "  dP(TZ) = " << r.insertion.delta_power_uw()
              << " uW (paper 0.8), dA(TZ) = " << r.insertion.delta_area_ge()
              << " GE (paper 2.6)\n"
              << "  trigger exposure Pft = " << std::scientific << r.pft
              << " (paper 8.0e-06), payload-fire " << r.pft_payload << "\n";
    const auto eq = sat::check_equivalence(r.original, r.insertion.infected,
                                           500000);
    std::cout << std::fixed << "  SAT reset-frame check: "
              << (eq.equivalent ? "no combinational difference at reset "
                                  "(HT is sequential-only)"
                                : "difference witness found (salvage effect)")
              << "\n";
  } else {
    std::cout << "  insertion FAILED\n";
  }
  return 0;
}
