// Reproduces Fig. 3: the minimum power/area overhead each state-of-the-art
// detector assumes in order to flag a single HT in a c499-class circuit,
// contrasted with the overhead a TrojanZero insertion actually leaves.
//
// Paper reference points: X  = 0.265% dynamic power (Rad et al. [10]),
// Y1/Y2 = leakage thresholds (Potkonjak [11] / Chen [12]),
// A1/A2/A3 = 0.7% / 1.95% / 0.58% area.
//
// The detector-threshold half runs directly on the golden netlist. The
// TrojanZero half sources its FlowResult from the campaign engine ("fig3"
// grid, JSON round-tripped) by default, or from a direct
// run_trojanzero_flow call with `--legacy`; CI diffs the two outputs.
#include <cmath>
#include <cstring>
#include <iomanip>
#include <iostream>

#include "campaign/driver.hpp"
#include "core/report.hpp"
#include "detect/gate_characterization.hpp"
#include "detect/power_trace.hpp"
#include "detect/statistical_learning.hpp"

int main(int argc, char** argv) {
  using namespace tz;
  const bool legacy = argc > 1 && std::strcmp(argv[1], "--legacy") == 0;
  const Netlist golden = make_benchmark("c499");
  const PowerModel pm(CellLibrary::tsmc65_like());
  std::cout << std::fixed << std::setprecision(3);
  std::cout << "=== Fig. 3: minimum additive-HT overhead for detection (c499) ===\n";

  const double dyn = min_detectable_dynamic_overhead(golden, pm);
  std::cout << "Rad et al. [10]    dynamic-power analysis : " << dyn
            << "% dynamic overhead needed (paper point X: 0.265%)\n";

  const double leak = min_detectable_leakage_overhead(golden, pm);
  std::cout << "Potkonjak [11]     gate-level leakage GLC : " << leak
            << "% leakage overhead needed (paper points Y1/A1: ~0.9%/0.7%)\n";

  const double area = min_detectable_area_overhead(golden, pm);
  std::cout << "Chen et al. [12]   statistical learning   : " << area
            << "% area-equivalent overhead needed (paper A2/A3: 1.95%/0.58%)\n";

  std::cout << "\n--- TrojanZero leaves no overhead to find ---\n";
  const FlowResult r =
      legacy ? run_trojanzero_flow("c499")
             : run_campaign_in_memory(CampaignGrid::preset("fig3")).front();
  if (r.insertion.success) {
    const double d_dyn = 100.0 * (r.p_npp.dynamic_uw - r.p_n.dynamic_uw) /
                         r.p_n.dynamic_uw;
    const double d_leak = 100.0 * (r.p_npp.leakage_uw - r.p_n.leakage_uw) /
                          r.p_n.leakage_uw;
    const double d_area =
        100.0 * (r.p_npp.area_ge - r.p_n.area_ge) / r.p_n.area_ge;
    std::cout << "TZ-infected c499 overhead: dynamic " << d_dyn
              << "%  leakage " << d_leak << "%  area " << d_area << "%\n";
    std::cout << "All are <= 0: every detector above is blind to it.\n";
  } else {
    std::cout << "insertion failed -- see table1 bench\n";
  }
  return 0;
}
