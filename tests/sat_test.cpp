// Tests for the CDCL solver, Tseitin encoding and equivalence checking.
#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>

#include "core/ht_library.hpp"
#include "core/trigger_prob.hpp"
#include "gen/iscas.hpp"
#include "gen/random_circuit.hpp"
#include "sat/equivalence.hpp"
#include "sat/exact_pft.hpp"
#include "sat/miter.hpp"
#include "sat/solver.hpp"
#include "sat/tseitin.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"

namespace tz {
namespace {

using sat::Lit;
using sat::Solver;
using sat::SolveResult;
using sat::Var;

TEST(Solver, TrivialSat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(Lit::make(a));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Solver, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(Lit::make(a));
  s.add_unit(~Lit::make(a));
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Solver, PropagationChain) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_binary(~Lit::make(a), Lit::make(b));  // a -> b
  s.add_binary(~Lit::make(b), Lit::make(c));  // b -> c
  s.add_unit(Lit::make(a));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_TRUE(s.model_value(c));
}

TEST(Solver, RequiresConflictDrivenLearning) {
  // XOR chain forcing contradiction: x1^x2=1, x2^x3=1, x1^x3=1 is UNSAT.
  Solver s;
  const Var x1 = s.new_var(), x2 = s.new_var(), x3 = s.new_var();
  auto add_xor1 = [&](Var u, Var v) {  // u XOR v = 1
    s.add_binary(Lit::make(u), Lit::make(v));
    s.add_binary(~Lit::make(u), ~Lit::make(v));
  };
  add_xor1(x1, x2);
  add_xor1(x2, x3);
  add_xor1(x1, x3);
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Solver, PigeonHole3Into2IsUnsat) {
  // PHP(3,2): 3 pigeons, 2 holes. p[i][j] = pigeon i in hole j.
  Solver s;
  Var p[3][2];
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < 3; ++i) {
    s.add_binary(Lit::make(p[i][0]), Lit::make(p[i][1]));
  }
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i < 3; ++i) {
      for (int k = i + 1; k < 3; ++k) {
        s.add_binary(~Lit::make(p[i][j]), ~Lit::make(p[k][j]));
      }
    }
  }
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Solver, AssumptionsRestrictModels) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_binary(Lit::make(a), Lit::make(b));  // a OR b
  EXPECT_EQ(s.solve({~Lit::make(a)}), SolveResult::Sat);
  EXPECT_TRUE(s.model_value(b));
  EXPECT_EQ(s.solve({~Lit::make(a), ~Lit::make(b)}), SolveResult::Unsat);
  // Solver stays reusable after assumption-UNSAT.
  EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Solver, ConflictLimitReturnsUnknown) {
  // A hard-ish pigeonhole with a conflict limit of 1.
  Solver s;
  Var p[5][4];
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < 5; ++i) {
    std::vector<Lit> c;
    for (int j = 0; j < 4; ++j) c.push_back(Lit::make(p[i][j]));
    s.add_clause(c);
  }
  for (int j = 0; j < 4; ++j) {
    for (int i = 0; i < 5; ++i) {
      for (int k = i + 1; k < 5; ++k) {
        s.add_binary(~Lit::make(p[i][j]), ~Lit::make(p[k][j]));
      }
    }
  }
  EXPECT_EQ(s.solve({}, 1), SolveResult::Unknown);
  EXPECT_EQ(s.solve({}, -1), SolveResult::Unsat);
}

/// Property: the Tseitin encoding agrees with simulation — for a random
/// circuit, pin the PIs to a random vector and check the implied PO values.
class TseitinAgrees : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TseitinAgrees, PinnedInputsImplySimulatedOutputs) {
  RandomCircuitSpec spec;
  spec.seed = GetParam();
  spec.num_gates = 60;
  const Netlist nl = random_circuit(spec);
  Solver s;
  const auto var = sat::encode_netlist(s, nl);
  const PatternSet ps = random_patterns(nl.inputs().size(), 4, spec.seed + 1);
  const PatternSet out = BitSimulator(nl).outputs(ps);
  for (std::size_t p = 0; p < ps.num_patterns(); ++p) {
    std::vector<Lit> assume;
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      assume.push_back(Lit::make(var[nl.inputs()[i]], !ps.get(p, i)));
    }
    ASSERT_EQ(s.solve(assume), SolveResult::Sat);
    for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
      EXPECT_EQ(s.model_value(var[nl.outputs()[o]]), out.get(p, o))
          << "pattern " << p << " output " << o;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TseitinAgrees,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707));

TEST(Equivalence, CircuitEqualsItself) {
  const Netlist nl = make_benchmark("c432");
  const auto r = sat::check_equivalence(nl, nl);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.decided);
}

TEST(Equivalence, StructurallyDifferentButEqual) {
  // DeMorgan: NAND(a,b) == OR(NOT a, NOT b).
  Netlist x;
  {
    const NodeId a = x.add_input("a");
    const NodeId b = x.add_input("b");
    x.mark_output(x.add_gate(GateType::Nand, "g", {a, b}));
  }
  Netlist y;
  {
    const NodeId a = y.add_input("a");
    const NodeId b = y.add_input("b");
    const NodeId na = y.add_gate(GateType::Not, "na", {a});
    const NodeId nb = y.add_gate(GateType::Not, "nb", {b});
    y.mark_output(y.add_gate(GateType::Or, "g", {na, nb}));
  }
  EXPECT_TRUE(sat::check_equivalence(x, y).equivalent);
}

TEST(Equivalence, CounterexampleIsReal) {
  Netlist x;
  {
    const NodeId a = x.add_input("a");
    const NodeId b = x.add_input("b");
    x.mark_output(x.add_gate(GateType::And, "g", {a, b}));
  }
  Netlist y;
  {
    const NodeId a = y.add_input("a");
    const NodeId b = y.add_input("b");
    y.mark_output(y.add_gate(GateType::Or, "g", {a, b}));
  }
  const auto r = sat::check_equivalence(x, y);
  ASSERT_FALSE(r.equivalent);
  ASSERT_EQ(r.counterexample.size(), 2u);
  // Verify by simulation that the witness distinguishes the circuits.
  PatternSet ps(2, 1);
  ps.set(0, 0, r.counterexample[0]);
  ps.set(0, 1, r.counterexample[1]);
  const PatternSet ox = BitSimulator(x).outputs(ps);
  const PatternSet oy = BitSimulator(y).outputs(ps);
  EXPECT_NE(ox.get(0, 0), oy.get(0, 0));
}

TEST(Equivalence, InterfaceMismatchThrows) {
  const Netlist a = make_benchmark("c17");
  const Netlist b = make_benchmark("c432");
  EXPECT_THROW(sat::check_equivalence(a, b), std::invalid_argument);
}

/// Property: a random single-gate mutation is either caught by the checker
/// with a verified counterexample, or truly equivalent under simulation.
class MutationCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationCheck, MutantsAreDistinguishedOrEquivalent) {
  RandomCircuitSpec spec;
  spec.seed = GetParam();
  spec.num_gates = 50;
  const Netlist original = random_circuit(spec);
  Netlist mutant = original;
  // Flip the type of the first AND/OR gate found.
  for (NodeId id = 0; id < mutant.raw_size(); ++id) {
    if (!mutant.is_alive(id)) continue;
    if (mutant.node(id).type == GateType::And) {
      mutant.retype(id, GateType::Or);
      break;
    }
    if (mutant.node(id).type == GateType::Or) {
      mutant.retype(id, GateType::And);
      break;
    }
  }
  const auto r = sat::check_equivalence(original, mutant);
  ASSERT_TRUE(r.decided);
  const PatternSet ps = random_patterns(original.inputs().size(), 512, 77);
  const PatternSet oa = BitSimulator(original).outputs(ps);
  const PatternSet ob = BitSimulator(mutant).outputs(ps);
  if (r.equivalent) {
    EXPECT_TRUE(BitSimulator::responses_equal(oa, ob));
  } else {
    PatternSet w(original.inputs().size(), 1);
    for (std::size_t i = 0; i < r.counterexample.size(); ++i) {
      w.set(0, i, r.counterexample[i]);
    }
    EXPECT_FALSE(BitSimulator::responses_equal(
        BitSimulator(original).outputs(w), BitSimulator(mutant).outputs(w)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationCheck,
                         ::testing::Values(9, 18, 27, 36, 45, 54, 63, 72));

TEST(Equivalence, SequentialWitnessReplaysThroughSimulator) {
  // Two sequential circuits that agree for dff=0 but differ for dff=1 on
  // some input: the witness must carry the DFF assignment, and replaying
  // (counterexample, dff_values) through the simulator must show the two
  // outputs differing at failing_output.
  Netlist x;
  {
    const NodeId a = x.add_input("a");
    const NodeId q = x.add_gate(GateType::Dff, "q", {a});
    x.mark_output(x.add_gate(GateType::And, "o", {a, q}));
  }
  Netlist y;
  {
    const NodeId a = y.add_input("a");
    const NodeId q = y.add_gate(GateType::Dff, "q", {a});
    y.mark_output(y.add_gate(GateType::Or, "o", {a, q}));
  }
  const auto r = sat::check_equivalence(x, y);
  ASSERT_TRUE(r.decided);
  ASSERT_FALSE(r.equivalent);
  ASSERT_EQ(r.counterexample.size(), 1u);
  ASSERT_EQ(r.dff_values.size(), 1u);
  ASSERT_EQ(r.failing_output, 0);

  PatternSet ps(1, 1);
  ps.set(0, 0, r.counterexample[0]);
  const std::vector<std::uint64_t> state = {r.dff_values[0] ? ~0ULL : 0ULL};
  const NodeValues vx = BitSimulator(x).run(ps, &state);
  const NodeValues vy = BitSimulator(y).run(ps, &state);
  EXPECT_NE(vx.bit(x.outputs()[static_cast<std::size_t>(r.failing_output)], 0),
            vy.bit(y.outputs()[static_cast<std::size_t>(r.failing_output)], 0));
}

TEST(Equivalence, MiterOptionMatrixAgrees) {
  // The prepass and structural-matching accelerations must never change a
  // verdict, only the route to it.
  const Netlist nl = make_benchmark("c880");
  Netlist mutant = nl;
  for (NodeId id = 0; id < mutant.raw_size(); ++id) {
    if (mutant.is_alive(id) && mutant.node(id).type == GateType::And) {
      mutant.retype(id, GateType::Nand);
      break;
    }
  }
  for (const bool prepass : {false, true}) {
    for (const bool structural : {false, true}) {
      sat::MiterOptions opts;
      opts.prepass = prepass;
      opts.structural_match = structural;
      sat::IncrementalMiter same(nl, nl, opts);
      EXPECT_TRUE(same.check().equivalent)
          << "prepass=" << prepass << " structural=" << structural;
      sat::IncrementalMiter diff(nl, mutant, opts);
      EXPECT_FALSE(diff.check().equivalent)
          << "prepass=" << prepass << " structural=" << structural;
    }
  }
}

TEST(Equivalence, StructuralMatchingShortCircuitsSelfMiter) {
  const Netlist nl = make_benchmark("c432");
  sat::IncrementalMiter m(nl, nl, {});
  ASSERT_TRUE(m.check().equivalent);
  const sat::MiterStats& st = m.stats();
  EXPECT_EQ(st.outputs_shared, st.outputs_total);
  EXPECT_EQ(st.sat_calls, 0) << "self-miter should be free by sharing";
}

TEST(ExactPft, MatchesAnalyticOnIndependentTrigger) {
  // AND over k independent PIs: SignalProb's independence assumption is
  // exact here, so the SAT-exact q must equal 2^-k bit-for-bit and the Pft
  // must match analytic_pft on the same saturating-counter tail.
  constexpr int kWidth = 6;
  Netlist nl;
  std::vector<NodeId> pis;
  for (int i = 0; i < kWidth; ++i) {
    pis.push_back(nl.add_input("x" + std::to_string(i)));
  }
  const NodeId trig = nl.add_gate(GateType::And, "trig", pis);
  nl.mark_output(trig);

  const std::size_t test_len = 100000;
  const int counter_bits = 4;
  const auto res = sat::exact_trigger_pft(nl, trig, test_len, counter_bits);
  ASSERT_TRUE(res.decided);
  EXPECT_EQ(res.support_width, kWidth);
  EXPECT_EQ(res.models, 1u);
  EXPECT_DOUBLE_EQ(res.q, std::ldexp(1.0, -kWidth));
  EXPECT_NEAR(res.pft, analytic_pft(res.q, test_len, counter_bits), 1e-12);
}

TEST(ExactPft, SeesThroughReconvergence) {
  // trig = AND(AND(a,b), AND(a,c)): treating the two AND cones as
  // independent (the SignalProb estimate) gives 1/4 * 1/4 = 1/16, but the
  // shared literal a makes the true probability P(a & b & c) = 1/8. The
  // SAT-exact count must return the correlated value.
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId l = nl.add_gate(GateType::And, "l", {a, b});
  const NodeId r = nl.add_gate(GateType::And, "r", {a, c});
  const NodeId trig = nl.add_gate(GateType::And, "trig", {l, r});
  nl.mark_output(trig);

  const auto res = sat::exact_trigger_pft(nl, trig, 1000, 0);
  ASSERT_TRUE(res.decided);
  EXPECT_DOUBLE_EQ(res.q, 1.0 / 8.0);

  // Contradictory reconvergence: AND(a, NOT a) never fires — exact q is 0
  // where an independence model would report 1/4.
  Netlist dead;
  const NodeId da = dead.add_input("a");
  const NodeId dn = dead.add_gate(GateType::Not, "n", {da});
  const NodeId dt = dead.add_gate(GateType::And, "trig", {da, dn});
  dead.mark_output(dt);
  const auto zero = sat::exact_trigger_pft(dead, dt, 1000, 0);
  ASSERT_TRUE(zero.decided);
  EXPECT_EQ(zero.models, 0u);
  EXPECT_EQ(zero.q, 0.0);
  EXPECT_EQ(zero.pft, 0.0);
}

TEST(ExactPft, AgreesWithExhaustiveSimulationOnC17Trojan) {
  // Insert the counter HT into c17 and cross-check the SAT-exact per-cycle
  // trigger probability against exhaustive simulation of the trigger net
  // over all 2^5 input vectors.
  Netlist nl = make_benchmark("c17");
  const NodeId n1 = nl.find("10");
  const NodeId n2 = nl.find("16");
  ASSERT_NE(n1, kNoNode);
  ASSERT_NE(n2, kNoNode);
  // Victim must lie outside the trigger cone: payload rewiring inside the
  // cone would pull the counter DFFs into the trigger's support and change
  // what q means. Net 19 feeds only output 23, disjoint from 10 and 16.
  const NodeId victim = nl.find("19");
  ASSERT_NE(victim, kNoNode);
  const std::vector<NodeId> rare = {n1, n2};
  const InsertedHT ht = build_trojan(nl, counter_trojan(2, 2), rare, victim);
  ASSERT_NE(ht.trigger_in, kNoNode);

  const std::size_t test_len = 4096;
  const auto res = sat::exact_trigger_pft(nl, ht.trigger_in, test_len, 2);
  ASSERT_TRUE(res.decided);

  const std::size_t num_pis = nl.inputs().size();
  ASSERT_LE(num_pis, 12u);
  const PatternSet ps = exhaustive_patterns(num_pis);
  // The trigger cone may also read DFFs (the counter's own bits do not feed
  // the trigger AND, but be explicit: zero state, like the cone's pinning).
  const std::vector<std::uint64_t> state(nl.dffs().size(), 0);
  const NodeValues vals = BitSimulator(nl).run(ps, &state);
  std::size_t fires = 0;
  for (std::size_t p = 0; p < ps.num_patterns(); ++p) {
    fires += vals.bit(ht.trigger_in, p) ? 1 : 0;
  }
  // The cone's support excludes PIs the trigger does not read; q is still
  // the same fraction because the missing PIs halve both count and space.
  const double q_sim =
      static_cast<double>(fires) / static_cast<double>(ps.num_patterns());
  EXPECT_DOUBLE_EQ(res.q, q_sim);
  EXPECT_NEAR(res.pft, analytic_pft(q_sim, test_len, 2), 1e-12);
}

TEST(ExactPft, WideSupportIsUndecidedNotWrong) {
  RandomCircuitSpec spec;
  spec.seed = 5;
  spec.num_inputs = 40;
  spec.num_gates = 120;
  const Netlist nl = random_circuit(spec);
  // Pick an output whose cone reads more PIs than the cap allows.
  sat::ExactPftOptions opts;
  opts.max_support = 4;
  NodeId wide = kNoNode;
  for (const NodeId o : nl.outputs()) {
    const NodeId roots[1] = {o};
    int support = 0;
    for (const NodeId id : nl.fanin_cone(roots)) {
      const GateType t = nl.node(id).type;
      support += (t == GateType::Input || t == GateType::Dff) ? 1 : 0;
    }
    if (support > opts.max_support) {
      wide = o;
      break;
    }
  }
  ASSERT_NE(wide, kNoNode);
  const auto res = sat::exact_trigger_pft(nl, wide, 1000, 2, opts);
  EXPECT_FALSE(res.decided);
}

}  // namespace
}  // namespace tz
