// Tests for the CDCL solver, Tseitin encoding and equivalence checking.
#include <cstdint>
#include <gtest/gtest.h>

#include "gen/iscas.hpp"
#include "gen/random_circuit.hpp"
#include "sat/equivalence.hpp"
#include "sat/solver.hpp"
#include "sat/tseitin.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"

namespace tz {
namespace {

using sat::Lit;
using sat::Solver;
using sat::SolveResult;
using sat::Var;

TEST(Solver, TrivialSat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(Lit::make(a));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Solver, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(Lit::make(a));
  s.add_unit(~Lit::make(a));
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Solver, PropagationChain) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_binary(~Lit::make(a), Lit::make(b));  // a -> b
  s.add_binary(~Lit::make(b), Lit::make(c));  // b -> c
  s.add_unit(Lit::make(a));
  EXPECT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_TRUE(s.model_value(c));
}

TEST(Solver, RequiresConflictDrivenLearning) {
  // XOR chain forcing contradiction: x1^x2=1, x2^x3=1, x1^x3=1 is UNSAT.
  Solver s;
  const Var x1 = s.new_var(), x2 = s.new_var(), x3 = s.new_var();
  auto add_xor1 = [&](Var u, Var v) {  // u XOR v = 1
    s.add_binary(Lit::make(u), Lit::make(v));
    s.add_binary(~Lit::make(u), ~Lit::make(v));
  };
  add_xor1(x1, x2);
  add_xor1(x2, x3);
  add_xor1(x1, x3);
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Solver, PigeonHole3Into2IsUnsat) {
  // PHP(3,2): 3 pigeons, 2 holes. p[i][j] = pigeon i in hole j.
  Solver s;
  Var p[3][2];
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < 3; ++i) {
    s.add_binary(Lit::make(p[i][0]), Lit::make(p[i][1]));
  }
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i < 3; ++i) {
      for (int k = i + 1; k < 3; ++k) {
        s.add_binary(~Lit::make(p[i][j]), ~Lit::make(p[k][j]));
      }
    }
  }
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Solver, AssumptionsRestrictModels) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_binary(Lit::make(a), Lit::make(b));  // a OR b
  EXPECT_EQ(s.solve({~Lit::make(a)}), SolveResult::Sat);
  EXPECT_TRUE(s.model_value(b));
  EXPECT_EQ(s.solve({~Lit::make(a), ~Lit::make(b)}), SolveResult::Unsat);
  // Solver stays reusable after assumption-UNSAT.
  EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Solver, ConflictLimitReturnsUnknown) {
  // A hard-ish pigeonhole with a conflict limit of 1.
  Solver s;
  Var p[5][4];
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < 5; ++i) {
    std::vector<Lit> c;
    for (int j = 0; j < 4; ++j) c.push_back(Lit::make(p[i][j]));
    s.add_clause(c);
  }
  for (int j = 0; j < 4; ++j) {
    for (int i = 0; i < 5; ++i) {
      for (int k = i + 1; k < 5; ++k) {
        s.add_binary(~Lit::make(p[i][j]), ~Lit::make(p[k][j]));
      }
    }
  }
  EXPECT_EQ(s.solve({}, 1), SolveResult::Unknown);
  EXPECT_EQ(s.solve({}, -1), SolveResult::Unsat);
}

/// Property: the Tseitin encoding agrees with simulation — for a random
/// circuit, pin the PIs to a random vector and check the implied PO values.
class TseitinAgrees : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TseitinAgrees, PinnedInputsImplySimulatedOutputs) {
  RandomCircuitSpec spec;
  spec.seed = GetParam();
  spec.num_gates = 60;
  const Netlist nl = random_circuit(spec);
  Solver s;
  const auto var = sat::encode_netlist(s, nl);
  const PatternSet ps = random_patterns(nl.inputs().size(), 4, spec.seed + 1);
  const PatternSet out = BitSimulator(nl).outputs(ps);
  for (std::size_t p = 0; p < ps.num_patterns(); ++p) {
    std::vector<Lit> assume;
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      assume.push_back(Lit::make(var[nl.inputs()[i]], !ps.get(p, i)));
    }
    ASSERT_EQ(s.solve(assume), SolveResult::Sat);
    for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
      EXPECT_EQ(s.model_value(var[nl.outputs()[o]]), out.get(p, o))
          << "pattern " << p << " output " << o;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TseitinAgrees,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707));

TEST(Equivalence, CircuitEqualsItself) {
  const Netlist nl = make_benchmark("c432");
  const auto r = sat::check_equivalence(nl, nl);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.decided);
}

TEST(Equivalence, StructurallyDifferentButEqual) {
  // DeMorgan: NAND(a,b) == OR(NOT a, NOT b).
  Netlist x;
  {
    const NodeId a = x.add_input("a");
    const NodeId b = x.add_input("b");
    x.mark_output(x.add_gate(GateType::Nand, "g", {a, b}));
  }
  Netlist y;
  {
    const NodeId a = y.add_input("a");
    const NodeId b = y.add_input("b");
    const NodeId na = y.add_gate(GateType::Not, "na", {a});
    const NodeId nb = y.add_gate(GateType::Not, "nb", {b});
    y.mark_output(y.add_gate(GateType::Or, "g", {na, nb}));
  }
  EXPECT_TRUE(sat::check_equivalence(x, y).equivalent);
}

TEST(Equivalence, CounterexampleIsReal) {
  Netlist x;
  {
    const NodeId a = x.add_input("a");
    const NodeId b = x.add_input("b");
    x.mark_output(x.add_gate(GateType::And, "g", {a, b}));
  }
  Netlist y;
  {
    const NodeId a = y.add_input("a");
    const NodeId b = y.add_input("b");
    y.mark_output(y.add_gate(GateType::Or, "g", {a, b}));
  }
  const auto r = sat::check_equivalence(x, y);
  ASSERT_FALSE(r.equivalent);
  ASSERT_EQ(r.counterexample.size(), 2u);
  // Verify by simulation that the witness distinguishes the circuits.
  PatternSet ps(2, 1);
  ps.set(0, 0, r.counterexample[0]);
  ps.set(0, 1, r.counterexample[1]);
  const PatternSet ox = BitSimulator(x).outputs(ps);
  const PatternSet oy = BitSimulator(y).outputs(ps);
  EXPECT_NE(ox.get(0, 0), oy.get(0, 0));
}

TEST(Equivalence, InterfaceMismatchThrows) {
  const Netlist a = make_benchmark("c17");
  const Netlist b = make_benchmark("c432");
  EXPECT_THROW(sat::check_equivalence(a, b), std::invalid_argument);
}

/// Property: a random single-gate mutation is either caught by the checker
/// with a verified counterexample, or truly equivalent under simulation.
class MutationCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationCheck, MutantsAreDistinguishedOrEquivalent) {
  RandomCircuitSpec spec;
  spec.seed = GetParam();
  spec.num_gates = 50;
  const Netlist original = random_circuit(spec);
  Netlist mutant = original;
  // Flip the type of the first AND/OR gate found.
  for (NodeId id = 0; id < mutant.raw_size(); ++id) {
    if (!mutant.is_alive(id)) continue;
    if (mutant.node(id).type == GateType::And) {
      mutant.retype(id, GateType::Or);
      break;
    }
    if (mutant.node(id).type == GateType::Or) {
      mutant.retype(id, GateType::And);
      break;
    }
  }
  const auto r = sat::check_equivalence(original, mutant);
  ASSERT_TRUE(r.decided);
  const PatternSet ps = random_patterns(original.inputs().size(), 512, 77);
  const PatternSet oa = BitSimulator(original).outputs(ps);
  const PatternSet ob = BitSimulator(mutant).outputs(ps);
  if (r.equivalent) {
    EXPECT_TRUE(BitSimulator::responses_equal(oa, ob));
  } else {
    PatternSet w(original.inputs().size(), 1);
    for (std::size_t i = 0; i < r.counterexample.size(); ++i) {
      w.set(0, i, r.counterexample[i]);
    }
    EXPECT_FALSE(BitSimulator::responses_equal(
        BitSimulator(original).outputs(w), BitSimulator(mutant).outputs(w)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationCheck,
                         ::testing::Values(9, 18, 27, 36, 45, 54, 63, 72));

}  // namespace
}  // namespace tz
