// Tests for the power-based detection baselines ([10], [11], [12]).
#include <gtest/gtest.h>

#include "core/ht_library.hpp"
#include "core/report.hpp"
#include "detect/gate_characterization.hpp"
#include "detect/power_trace.hpp"
#include "detect/statistical_learning.hpp"
#include "gen/iscas.hpp"

namespace tz {
namespace {

PowerModel model() { return PowerModel(CellLibrary::tsmc65_like()); }

/// A crude additive HT: extra always-powered gates bolted onto the circuit,
/// the attack model every baseline detector assumes.
Netlist additive_ht(const Netlist& golden, int gates) {
  Netlist dut = golden;
  for (int g = 0; g < gates; ++g) {
    add_dummy_gate(dut, dut.inputs()[g % dut.inputs().size()], GateType::Xor,
                   "add_ht");
  }
  return dut;
}

TEST(PowerTrace, CleanDutNotFlagged) {
  const Netlist nl = make_benchmark("c499");
  const PowerModel pm = model();
  const DetectionResult r = detect_dynamic_power(nl, nl, pm);
  EXPECT_FALSE(r.detected);
  EXPECT_NEAR(r.overhead_percent, 0.0, 3.0);
}

TEST(PowerTrace, LargeAdditiveHtFlagged) {
  const Netlist nl = make_benchmark("c499");
  const PowerModel pm = model();
  const Netlist dut = additive_ht(nl, 40);
  const DetectionResult r = detect_dynamic_power(nl, dut, pm);
  EXPECT_TRUE(r.detected);
  EXPECT_GT(r.overhead_percent, 0.0);
}

TEST(PowerTrace, TotalPowerVariantWorks) {
  const Netlist nl = make_benchmark("c432");
  const PowerModel pm = model();
  EXPECT_FALSE(detect_total_power(nl, nl, pm).detected);
  EXPECT_TRUE(detect_total_power(nl, additive_ht(nl, 60), pm).detected);
}

TEST(PowerTrace, MinimumDetectableOverheadIsSmallButPositive) {
  const Netlist nl = make_benchmark("c499");
  const PowerModel pm = model();
  const double pct = min_detectable_dynamic_overhead(nl, pm);
  EXPECT_GT(pct, 0.0);
  EXPECT_LT(pct, 20.0);  // the detector is useful, not omniscient
}

TEST(Glc, CleanDutNotFlagged) {
  const Netlist nl = make_benchmark("c880");
  const DetectionResult r = detect_leakage_glc(nl, nl, model());
  EXPECT_FALSE(r.detected);
}

TEST(Glc, AdditiveLeakageFlagged) {
  const Netlist nl = make_benchmark("c880");
  const PowerModel pm = model();
  const DetectionResult r = detect_leakage_glc(nl, additive_ht(nl, 50), pm);
  EXPECT_TRUE(r.detected);
}

TEST(Glc, CharacterizationBeatsRawTotalOnLeakage) {
  // GLC normalizes out the die corner, so its minimum detectable leakage
  // overhead must not be worse than a couple of per-gate leakages.
  const Netlist nl = make_benchmark("c499");
  const PowerModel pm = model();
  const double pct = min_detectable_leakage_overhead(nl, pm);
  EXPECT_GT(pct, 0.0);
  EXPECT_LT(pct, 15.0);
}

TEST(Learning, CleanPopulationInsideBoundary) {
  const Netlist nl = make_benchmark("c432");
  const DetectionResult r = detect_statistical_learning(nl, nl, model());
  EXPECT_FALSE(r.detected);
}

TEST(Learning, GrossAdditiveHtOutsideBoundary) {
  const Netlist nl = make_benchmark("c432");
  const PowerModel pm = model();
  const DetectionResult r =
      detect_statistical_learning(nl, additive_ht(nl, 80), pm);
  EXPECT_TRUE(r.detected);
}

TEST(Learning, MinAreaOverheadBounded) {
  const Netlist nl = make_benchmark("c499");
  const double pct = min_detectable_area_overhead(nl, model());
  EXPECT_GT(pct, 0.0);
  EXPECT_LT(pct, 25.0);
}

// ---- The headline claim: TrojanZero evades all three baselines ----

class TrojanZeroEvades : public ::testing::TestWithParam<const char*> {};

TEST_P(TrojanZeroEvades, AllThreeDetectors) {
  const FlowResult flow = run_trojanzero_flow(GetParam());
  ASSERT_TRUE(flow.insertion.success) << GetParam();
  const PowerModel pm = model();
  const Netlist& golden = flow.original;
  const Netlist& infected = flow.insertion.infected;

  EXPECT_FALSE(detect_dynamic_power(golden, infected, pm).detected);
  EXPECT_FALSE(detect_total_power(golden, infected, pm).detected);
  EXPECT_FALSE(detect_leakage_glc(golden, infected, pm).detected);
  EXPECT_FALSE(detect_statistical_learning(golden, infected, pm).detected);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, TrojanZeroEvades,
                         ::testing::Values("c432", "c499", "c880"));

TEST(Contrast, SameTrojanWithoutSalvageIsDetected) {
  // The zero-footprint property comes from Algorithm 1, not from the HT
  // being small: inserting the identical HT additively (no salvage) must
  // push the totals up enough for at least one baseline to fire.
  const Netlist nl = make_benchmark("c432");
  const PowerModel pm = model();
  const DefenderSuite suite =
      make_defender_suite(nl, FlowOptions::atpg_only_defender());
  // Fake a "no salvage" result: N' = N.
  SalvageResult no_salvage;
  no_salvage.modified = nl.compact();
  no_salvage.power_before = pm.analyze(nl).totals;
  no_salvage.power_after = no_salvage.power_before;
  InsertionOptions opt;
  opt.library = {counter_trojan(3)};
  const InsertionResult ins = insert_trojan(nl, no_salvage, suite, pm, opt);
  // Algorithm 2 itself refuses the additive insertion (caps exceeded) —
  // the paper's point that naive HTs are power/area-visible.
  EXPECT_FALSE(ins.success);
  EXPECT_GT(ins.fail_caps, 0);
}

}  // namespace
}  // namespace tz
