// Tests for the power-based detection baselines ([10], [11], [12]).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/ht_library.hpp"
#include "core/report.hpp"
#include "detect/gate_characterization.hpp"
#include "detect/power_trace.hpp"
#include "detect/statistical_learning.hpp"
#include "gen/iscas.hpp"

namespace tz {
namespace {

PowerModel model() { return PowerModel(CellLibrary::tsmc65_like()); }

/// A crude additive HT: extra always-powered gates bolted onto the circuit,
/// the attack model every baseline detector assumes.
Netlist additive_ht(const Netlist& golden, int gates) {
  Netlist dut = golden;
  for (int g = 0; g < gates; ++g) {
    add_dummy_gate(dut, dut.inputs()[g % dut.inputs().size()], GateType::Xor,
                   "add_ht");
  }
  return dut;
}

TEST(PowerTrace, CleanDutNotFlagged) {
  const Netlist nl = make_benchmark("c499");
  const PowerModel pm = model();
  const DetectionResult r = detect_dynamic_power(nl, nl, pm);
  EXPECT_FALSE(r.detected);
  EXPECT_NEAR(r.overhead_percent, 0.0, 3.0);
}

TEST(PowerTrace, LargeAdditiveHtFlagged) {
  const Netlist nl = make_benchmark("c499");
  const PowerModel pm = model();
  const Netlist dut = additive_ht(nl, 40);
  const DetectionResult r = detect_dynamic_power(nl, dut, pm);
  EXPECT_TRUE(r.detected);
  EXPECT_GT(r.overhead_percent, 0.0);
}

TEST(PowerTrace, TotalPowerVariantWorks) {
  const Netlist nl = make_benchmark("c432");
  const PowerModel pm = model();
  EXPECT_FALSE(detect_total_power(nl, nl, pm).detected);
  EXPECT_TRUE(detect_total_power(nl, additive_ht(nl, 60), pm).detected);
}

TEST(PowerTrace, MinimumDetectableOverheadIsSmallButPositive) {
  const Netlist nl = make_benchmark("c499");
  const PowerModel pm = model();
  const double pct = min_detectable_dynamic_overhead(nl, pm);
  EXPECT_GT(pct, 0.0);
  EXPECT_LT(pct, 20.0);  // the detector is useful, not omniscient
}

// ---- degenerate die populations (the detector-math bugfixes) --------------

VariationSpec zero_variation() {
  VariationSpec v;
  v.leakage_sigma = 0.0;
  v.dynamic_sigma = 0.0;
  v.die_sigma = 0.0;
  v.measurement_sigma = 0.0;
  return v;
}

TEST(PowerTrace, ZeroVariationStillFlagsBlatantHt) {
  // With no process variation every die measures identically, the SEM is 0,
  // and the old statistic collapsed to 0.0 — a blatant additive trojan was
  // reported undetected. The sem == 0 path now falls back to a direct
  // mean-difference test.
  const Netlist nl = make_benchmark("c432");
  const PowerModel pm = model();
  PowerDetectOptions opt;
  opt.variation = zero_variation();
  const DetectionResult dirty = detect_dynamic_power(nl, additive_ht(nl, 40), pm, opt);
  EXPECT_TRUE(dirty.detected);
  EXPECT_FALSE(std::isnan(dirty.statistic));
  const DetectionResult total = detect_total_power(nl, additive_ht(nl, 40), pm, opt);
  EXPECT_TRUE(total.detected);
}

TEST(PowerTrace, ZeroVariationCleanDutStaysClean) {
  const Netlist nl = make_benchmark("c432");
  const PowerModel pm = model();
  PowerDetectOptions opt;
  opt.variation = zero_variation();
  const DetectionResult r = detect_dynamic_power(nl, nl, pm, opt);
  EXPECT_FALSE(r.detected);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_FALSE(std::isnan(r.overhead_percent));
}

TEST(PowerTrace, ZeroDiePopulationsThrow) {
  // 0-die populations used to divide into NaN, and NaN > threshold silently
  // read as "not detected".
  const Netlist nl = make_benchmark("c17");
  const PowerModel pm = model();
  PowerDetectOptions opt;
  opt.golden_dies = 0;
  EXPECT_THROW(detect_dynamic_power(nl, nl, pm, opt), std::invalid_argument);
  EXPECT_THROW(detect_leakage_glc(nl, nl, pm, opt), std::invalid_argument);
  opt.golden_dies = 8;
  opt.dut_dies = 0;
  EXPECT_THROW(detect_total_power(nl, nl, pm, opt), std::invalid_argument);
  EXPECT_THROW(detect_leakage_glc(nl, nl, pm, opt), std::invalid_argument);
}

TEST(Glc, ZeroVariationDegeneratePopulations) {
  // Same sem == 0 fallback as the power-trace detectors: a blatant additive
  // HT stays flagged with identical dies, a clean DUT stays clean on exact
  // rounding residue.
  const Netlist nl = make_benchmark("c432");
  const PowerModel pm = model();
  PowerDetectOptions opt;
  opt.variation = zero_variation();
  const DetectionResult clean = detect_leakage_glc(nl, nl, pm, opt);
  EXPECT_FALSE(clean.detected);
  EXPECT_DOUBLE_EQ(clean.statistic, 0.0);
  const DetectionResult dirty = detect_leakage_glc(nl, additive_ht(nl, 50), pm, opt);
  EXPECT_TRUE(dirty.detected);
  EXPECT_FALSE(std::isnan(dirty.statistic));
}

TEST(Learning, DegenerateOptionsThrow) {
  // golden_dies < 2 breaks the n-1 covariance fit (inf/NaN inverse
  // covariance); dut_dies == 0 divides the per-die averages by zero.
  const Netlist nl = make_benchmark("c17");
  const PowerModel pm = model();
  LearningDetectOptions opt;
  opt.base.golden_dies = 1;
  EXPECT_THROW(detect_statistical_learning(nl, nl, pm, opt),
               std::invalid_argument);
  opt.base.golden_dies = 0;
  EXPECT_THROW(detect_statistical_learning(nl, nl, pm, opt),
               std::invalid_argument);
  opt.base.golden_dies = 8;
  opt.base.dut_dies = 0;
  EXPECT_THROW(detect_statistical_learning(nl, nl, pm, opt),
               std::invalid_argument);
}

TEST(Learning, ZeroVariationHasNoNanStatistics) {
  // Identical training dies give a singular covariance; the clamped inverse
  // keeps the distances finite and a clean population inside the boundary.
  const Netlist nl = make_benchmark("c432");
  const PowerModel pm = model();
  LearningDetectOptions opt;
  opt.base.variation = zero_variation();
  const DetectionResult clean = detect_statistical_learning(nl, nl, pm, opt);
  EXPECT_FALSE(clean.detected);
  EXPECT_FALSE(std::isnan(clean.statistic));
  EXPECT_FALSE(std::isnan(clean.overhead_percent));
  // A singular (zero-spread) training covariance degrades the classifier's
  // distances to zero — a known blind spot, but finite and deterministic,
  // never NaN.
  const DetectionResult dirty =
      detect_statistical_learning(nl, additive_ht(nl, 80), pm, opt);
  EXPECT_FALSE(std::isnan(dirty.statistic));
  EXPECT_FALSE(std::isnan(dirty.overhead_percent));
}

TEST(MinOverheadSweeps, NoPrimaryInputsThrows) {
  // `gates % dut.inputs().size()` was a modulo-by-zero crash on a netlist
  // with no PIs.
  Netlist nl("pi_free");
  nl.mark_output(nl.const_node(true));
  const PowerModel pm = model();
  EXPECT_THROW(min_detectable_dynamic_overhead(nl, pm), std::invalid_argument);
  EXPECT_THROW(min_detectable_leakage_overhead(nl, pm), std::invalid_argument);
  EXPECT_THROW(min_detectable_area_overhead(nl, pm), std::invalid_argument);
}

TEST(Glc, CleanDutNotFlagged) {
  const Netlist nl = make_benchmark("c880");
  const DetectionResult r = detect_leakage_glc(nl, nl, model());
  EXPECT_FALSE(r.detected);
}

TEST(Glc, AdditiveLeakageFlagged) {
  const Netlist nl = make_benchmark("c880");
  const PowerModel pm = model();
  const DetectionResult r = detect_leakage_glc(nl, additive_ht(nl, 50), pm);
  EXPECT_TRUE(r.detected);
}

TEST(Glc, CharacterizationBeatsRawTotalOnLeakage) {
  // GLC normalizes out the die corner, so its minimum detectable leakage
  // overhead must not be worse than a couple of per-gate leakages.
  const Netlist nl = make_benchmark("c499");
  const PowerModel pm = model();
  const double pct = min_detectable_leakage_overhead(nl, pm);
  EXPECT_GT(pct, 0.0);
  EXPECT_LT(pct, 15.0);
}

TEST(Learning, CleanPopulationInsideBoundary) {
  const Netlist nl = make_benchmark("c432");
  const DetectionResult r = detect_statistical_learning(nl, nl, model());
  EXPECT_FALSE(r.detected);
}

TEST(Learning, GrossAdditiveHtOutsideBoundary) {
  const Netlist nl = make_benchmark("c432");
  const PowerModel pm = model();
  const DetectionResult r =
      detect_statistical_learning(nl, additive_ht(nl, 80), pm);
  EXPECT_TRUE(r.detected);
}

TEST(Learning, MinAreaOverheadBounded) {
  const Netlist nl = make_benchmark("c499");
  const double pct = min_detectable_area_overhead(nl, model());
  EXPECT_GT(pct, 0.0);
  EXPECT_LT(pct, 25.0);
}

// ---- The headline claim: TrojanZero evades all three baselines ----

class TrojanZeroEvades : public ::testing::TestWithParam<const char*> {};

TEST_P(TrojanZeroEvades, AllThreeDetectors) {
  const FlowResult flow = run_trojanzero_flow(GetParam());
  ASSERT_TRUE(flow.insertion.success) << GetParam();
  const PowerModel pm = model();
  const Netlist& golden = flow.original;
  const Netlist& infected = flow.insertion.infected;

  EXPECT_FALSE(detect_dynamic_power(golden, infected, pm).detected);
  EXPECT_FALSE(detect_total_power(golden, infected, pm).detected);
  EXPECT_FALSE(detect_leakage_glc(golden, infected, pm).detected);
  EXPECT_FALSE(detect_statistical_learning(golden, infected, pm).detected);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, TrojanZeroEvades,
                         ::testing::Values("c432", "c499", "c880"));

TEST(CachedAnalysis, BreakdownOverloadsMatchAnalyzingOverloads) {
  // The precomputed-breakdown overloads must reproduce the analyzing
  // overloads bit for bit: same variation stream, same statistics.
  const Netlist golden = make_benchmark("c432");
  Netlist dut = golden;
  add_dummy_gate(dut, dut.inputs()[0], GateType::Xor, "extra");
  const PowerModel pm = model();
  const PowerBreakdown gnom = pm.analyze(golden);
  const PowerBreakdown dnom = pm.analyze(dut);
  const auto same = [](const DetectionResult& a, const DetectionResult& b) {
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.statistic, b.statistic);
    EXPECT_EQ(a.threshold, b.threshold);
    EXPECT_EQ(a.overhead_percent, b.overhead_percent);
  };
  same(detect_dynamic_power(golden, dut, pm),
       detect_dynamic_power(golden, dut, gnom, dnom));
  same(detect_total_power(golden, dut, pm),
       detect_total_power(golden, dut, gnom, dnom));
  same(detect_leakage_glc(golden, dut, pm),
       detect_leakage_glc(golden, dut, gnom, dnom));
  same(detect_statistical_learning(golden, dut, pm),
       detect_statistical_learning(golden, dut, gnom, dnom));
}

TEST(CachedAnalysis, TrackerSweepMatchesFreshAnalysisSweep) {
  // min_detectable_dynamic_overhead now drives the sweep off one golden
  // analysis plus incremental PowerTracker deltas; the result must be
  // bit-identical to the original per-step analyze implementation.
  const Netlist golden = make_benchmark("c432");
  const PowerModel pm = model();
  const PowerDetectOptions opt;
  Netlist dut = golden;
  const double base = pm.analyze(golden).totals.dynamic_uw;
  double reference = 100.0;
  for (int gates = 1; gates <= 256; ++gates) {
    const NodeId pi = dut.inputs()[gates % dut.inputs().size()];
    add_dummy_gate(dut, pi, GateType::Xor, "add_ht");
    PowerDetectOptions o = opt;
    o.seed = opt.seed + static_cast<std::uint64_t>(gates);
    if (detect_dynamic_power(golden, dut, pm, o).detected) {
      const double now = pm.analyze(dut).totals.dynamic_uw;
      reference = 100.0 * (now - base) / base;
      break;
    }
  }
  EXPECT_EQ(min_detectable_dynamic_overhead(golden, pm, opt), reference);
}

TEST(CachedAnalysis, TrackerSweepMatchesFreshAnalysisSweepLeakageAndArea) {
  // Same parity check for the other two rewritten sweeps: GLC exercises the
  // per-node leakage rows (Nand dummies), the learning detector the area
  // rows plus the 2-feature Gaussian fit (Xor dummies).
  const Netlist golden = make_benchmark("c432");
  const PowerModel pm = model();
  {
    const PowerDetectOptions opt;
    Netlist dut = golden;
    const double base = pm.analyze(golden).totals.leakage_uw;
    double reference = 100.0;
    for (int gates = 1; gates <= 256; ++gates) {
      const NodeId pi = dut.inputs()[gates % dut.inputs().size()];
      add_dummy_gate(dut, pi, GateType::Nand, "add_ht");
      PowerDetectOptions o = opt;
      o.seed = opt.seed + static_cast<std::uint64_t>(gates);
      if (detect_leakage_glc(golden, dut, pm, o).detected) {
        const double now = pm.analyze(dut).totals.leakage_uw;
        reference = 100.0 * (now - base) / base;
        break;
      }
    }
    EXPECT_EQ(min_detectable_leakage_overhead(golden, pm, opt), reference);
  }
  {
    const LearningDetectOptions opt;
    Netlist dut = golden;
    const double base = pm.analyze(golden).totals.area_ge;
    double reference = 100.0;
    for (int gates = 1; gates <= 256; ++gates) {
      const NodeId pi = dut.inputs()[gates % dut.inputs().size()];
      add_dummy_gate(dut, pi, GateType::Xor, "add_ht");
      LearningDetectOptions o = opt;
      o.base.seed = opt.base.seed + static_cast<std::uint64_t>(gates);
      if (detect_statistical_learning(golden, dut, pm, o).detected) {
        const double now = pm.analyze(dut).totals.area_ge;
        reference = 100.0 * (now - base) / base;
        break;
      }
    }
    EXPECT_EQ(min_detectable_area_overhead(golden, pm, opt), reference);
  }
}

TEST(Contrast, SameTrojanWithoutSalvageIsDetected) {
  // The zero-footprint property comes from Algorithm 1, not from the HT
  // being small: inserting the identical HT additively (no salvage) must
  // push the totals up enough for at least one baseline to fire.
  const Netlist nl = make_benchmark("c432");
  const PowerModel pm = model();
  const DefenderSuite suite =
      make_defender_suite(nl, FlowOptions::atpg_only_defender());
  // Fake a "no salvage" result: N' = N.
  SalvageResult no_salvage;
  no_salvage.modified = nl.compact();
  no_salvage.power_before = pm.analyze(nl).totals;
  no_salvage.power_after = no_salvage.power_before;
  InsertionOptions opt;
  opt.library = {counter_trojan(3)};
  const InsertionResult ins = insert_trojan(nl, no_salvage, suite, pm, opt);
  // Algorithm 2 itself refuses the additive insertion (caps exceeded) —
  // the paper's point that naive HTs are power/area-visible.
  EXPECT_FALSE(ins.success);
  EXPECT_GT(ins.fail_caps, 0);
}

}  // namespace
}  // namespace tz
