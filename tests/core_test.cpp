// Tests for Algorithm 1 (salvage), Algorithm 2 (insertion), the HT library
// and trigger-probability analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "core/insertion.hpp"
#include "core/ht_library.hpp"
#include "core/salvage.hpp"
#include "core/trigger_prob.hpp"
#include "core/report.hpp"
#include "gen/iscas.hpp"
#include "sat/equivalence.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"

namespace tz {
namespace {

using test::add_inputs;
using test::payload_testbed;

PowerModel model() { return PowerModel(CellLibrary::tsmc65_like()); }

TestGenOptions FlowOptions_test_defaults() {
  return FlowOptions::atpg_only_defender();
}

TEST(Salvage, RemovesRedundantGatesOnC432) {
  const Netlist nl = make_benchmark("c432");
  const DefenderSuite suite =
      make_defender_suite(nl, FlowOptions_test_defaults());
  const PowerModel pm = model();
  SalvageOptions opt;
  opt.pth = spec_for("c432").pth;
  const SalvageResult r = salvage_power_area(nl, suite, pm, opt);
  EXPECT_GT(r.candidates, 0u);
  EXPECT_GT(r.expendable_gates, 0u);
  EXPECT_GT(r.delta_power_uw(), 0.0);
  EXPECT_GT(r.delta_area_ge(), 0.0);
  // N' still passes every defender algorithm.
  EXPECT_TRUE(functional_test(r.modified, suite));
  r.modified.check();
}

TEST(Salvage, InterfacePreserved) {
  const Netlist nl = make_benchmark("c880");
  const DefenderSuite suite =
      make_defender_suite(nl, FlowOptions_test_defaults());
  const SalvageResult r = salvage_power_area(nl, suite, model(),
                                             {.pth = 0.992});
  EXPECT_EQ(r.modified.inputs().size(), nl.inputs().size());
  EXPECT_EQ(r.modified.outputs().size(), nl.outputs().size());
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    EXPECT_EQ(r.modified.node(r.modified.inputs()[i]).name,
              nl.node(nl.inputs()[i]).name);
  }
}

TEST(Salvage, StrongDefenderBlocksEverythingTestable) {
  // With an exhaustive-coverage defender only *redundant* gates survive
  // Algorithm 1 — the soundness boundary the paper leaves implicit.
  const Netlist nl = make_benchmark("c880");
  TestGenOptions tg;
  tg.coverage_target = 1.0;
  tg.max_patterns = 100000;
  tg.random_patterns = 512;
  tg.with_random_validation = true;
  tg.validation_patterns = 512;
  const DefenderSuite strong = make_defender_suite(nl, tg);
  const SalvageResult r =
      salvage_power_area(nl, strong, model(), {.pth = 0.992});
  // Every accepted removal under a full-coverage defender must be a
  // functional no-op (redundant logic).
  if (!r.accepted.empty()) {
    const auto eq = sat::check_equivalence(nl, r.modified);
    EXPECT_TRUE(eq.equivalent);
  }
}

TEST(Salvage, LeakageOrderAblationRuns) {
  const Netlist nl = make_benchmark("c432");
  const DefenderSuite suite =
      make_defender_suite(nl, FlowOptions_test_defaults());
  SalvageOptions opt;
  opt.pth = 0.975;
  opt.order = SalvageOptions::Order::ByLeakage;
  const SalvageResult r = salvage_power_area(nl, suite, model(), opt);
  EXPECT_TRUE(functional_test(r.modified, suite));
}

TEST(HtLibrary, DefaultLibraryShapes) {
  const auto lib = default_ht_library();
  ASSERT_GE(lib.size(), 4u);
  EXPECT_EQ(lib.front().counter_bits, 0);  // comparator first (smallest)
  EXPECT_EQ(counter_trojan(3).counter_bits, 3);
  EXPECT_EQ(counter_trojan(0).name, "cmp-trigger");
}

TEST(BuildTrojan, CounterStructure) {
  NodeId victim;
  std::vector<NodeId> rare;
  Netlist nl = payload_testbed(&victim, &rare);
  const std::size_t gates_before = nl.gate_count();
  const InsertedHT ht = build_trojan(nl, counter_trojan(3, 2), rare, victim);
  EXPECT_EQ(nl.dffs().size(), 3u);
  EXPECT_GT(nl.gate_count(), gates_before);
  EXPECT_NE(ht.payload_mux, kNoNode);
  EXPECT_NE(ht.fire, kNoNode);
  nl.check();
}

TEST(BuildTrojan, PayloadFlipsVictimWhenCounterSaturates) {
  NodeId victim;
  std::vector<NodeId> rare;
  Netlist nl = payload_testbed(&victim, &rare);
  build_trojan(nl, counter_trojan(2, 2), rare, victim);
  CycleSimulator cs(nl);
  // Trigger = AND(r0, r1) = i0..i3 all 1. Output o = v XOR i6 with
  // v = i4 XOR i5. Drive i4=1 so clean o = 1.
  std::vector<bool> quiet(8, false);
  quiet[4] = true;
  std::vector<bool> trig(8, true);
  trig[4] = true;
  trig[5] = false;
  trig[6] = false;
  EXPECT_TRUE(cs.step(quiet)[0]);   // clean behaviour
  cs.step(trig);                    // counter 0 -> 1
  cs.step(trig);                    // counter 1 -> 2
  cs.step(trig);                    // counter 2 -> 3
  // Counter is at 3 (saturated) now: payload inverts v.
  EXPECT_FALSE(cs.step(quiet)[0]);  // corrupted output
}

TEST(BuildTrojan, DormantTrojanIsInvisibleFunctionally) {
  NodeId victim;
  std::vector<NodeId> rare;
  Netlist clean = payload_testbed(&victim, &rare);
  Netlist infected = clean;
  build_trojan(infected, counter_trojan(3, 2), rare, victim);
  // At reset (counter zero) the infected circuit is I/O-equivalent.
  const auto eq = sat::check_equivalence(clean, infected);
  EXPECT_TRUE(eq.equivalent);
}

TEST(BuildTrojan, RejectsBadVictims) {
  NodeId victim;
  std::vector<NodeId> rare;
  Netlist nl = payload_testbed(&victim, &rare);
  // Victim = i0 with a *combinational* trigger tapping gates fed by i0:
  // the payload loops through its own trigger and the structural check
  // rejects it. (A counter trigger would be legal — DFFs break the loop.)
  EXPECT_ANY_THROW(build_trojan(nl, counter_trojan(0, 2), rare, nl.inputs()[0]));
  EXPECT_THROW(build_trojan(nl, counter_trojan(2, 5), rare, victim),
               std::invalid_argument);  // pool too small
}

TEST(AddDummyGate, UnconnectedOutput) {
  Netlist nl = make_benchmark("c17");
  const std::size_t before = nl.gate_count();
  const NodeId d = add_dummy_gate(nl, nl.inputs()[0], GateType::Xor, "dmy");
  EXPECT_EQ(nl.gate_count(), before + 1);
  EXPECT_TRUE(nl.node(d).fanout.empty());
  nl.check();
}

TEST(Insertion, EndToEndOnC880) {
  const Netlist nl = make_benchmark("c880");
  const DefenderSuite suite =
      make_defender_suite(nl, FlowOptions_test_defaults());
  const PowerModel pm = model();
  const SalvageResult sal =
      salvage_power_area(nl, suite, pm, {.pth = 0.992});
  InsertionOptions opt;
  opt.library = {counter_trojan(3), counter_trojan(2)};
  const InsertionResult ins = insert_trojan(nl, sal, suite, pm, opt);
  ASSERT_TRUE(ins.success);
  // The infected circuit passes the defender suite...
  EXPECT_TRUE(functional_test(ins.infected, suite));
  // ...and honours the power/area caps of the HT-free circuit.
  EXPECT_LE(ins.power.total_uw(), ins.threshold.total_uw() + 1e-9);
  EXPECT_LE(ins.power.area_ge, ins.threshold.area_ge + 1e-9);
  // But it is NOT the original circuit: SAT finds no reset-state difference
  // (counter at zero), which is exactly why power-based detection is the
  // paper's last line of defence.
  ins.infected.check();
}

TEST(Insertion, TriggerProbabilityIsRare) {
  const Netlist nl = make_benchmark("c880");
  const DefenderSuite suite =
      make_defender_suite(nl, FlowOptions_test_defaults());
  const PowerModel pm = model();
  const SalvageResult sal =
      salvage_power_area(nl, suite, pm, {.pth = 0.992});
  InsertionOptions opt;
  opt.library = {counter_trojan(3)};
  const InsertionResult ins = insert_trojan(nl, sal, suite, pm, opt);
  ASSERT_TRUE(ins.success);
  EXPECT_GT(ins.trigger_p1, 0.0);
  EXPECT_LT(ins.trigger_p1, 1e-3);  // paper: < 1e-4 class rarity
}

TEST(PayloadLocations, DeepNetsFirstAndValid) {
  const Netlist nl = make_benchmark("c499");
  const auto locs = payload_locations(nl, 6);
  ASSERT_FALSE(locs.empty());
  const auto depth = nl.depths();
  for (std::size_t i = 1; i < locs.size(); ++i) {
    EXPECT_GE(depth[locs[i - 1]], depth[locs[i]]);
  }
  for (NodeId v : locs) {
    EXPECT_FALSE(nl.node(v).fanout.empty());
    EXPECT_FALSE(nl.is_output(v));
  }
}

TEST(TriggerPool, ExcludesVictimFanout) {
  const Netlist nl = make_benchmark("c499");
  const SignalProb sp(nl);
  const auto locs = payload_locations(nl, 1);
  ASSERT_FALSE(locs.empty());
  const auto pool = trigger_pool(nl, sp, 0.05, locs[0]);
  // No pool member may be reachable from the victim.
  std::vector<char> down(nl.raw_size(), 0);
  std::vector<NodeId> stack{locs[0]};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (down[id]) continue;
    down[id] = 1;
    for (NodeId r : nl.node(id).fanout) stack.push_back(r);
  }
  for (NodeId p : pool) EXPECT_FALSE(down[p]);
}

TEST(AnalyticPft, ClosedFormEdgeCases) {
  EXPECT_DOUBLE_EQ(analytic_pft(0.0, 100, 3), 0.0);
  EXPECT_DOUBLE_EQ(analytic_pft(1.0, 100, 3), 1.0);
  EXPECT_DOUBLE_EQ(analytic_pft(0.5, 2, 3), 0.0);  // needs 7 hits, only 2 cycles
  // Combinational trigger: 1 - (1-q)^L.
  EXPECT_NEAR(analytic_pft(0.01, 100, 0), 1 - std::pow(0.99, 100), 1e-12);
  // Monotone in q and L.
  EXPECT_LT(analytic_pft(1e-4, 100, 2), analytic_pft(1e-3, 100, 2));
  EXPECT_LT(analytic_pft(1e-3, 100, 2), analytic_pft(1e-3, 1000, 2));
  // Larger counters are strictly harder to fill.
  EXPECT_GT(analytic_pft(0.05, 200, 2), analytic_pft(0.05, 200, 4));
}

TEST(AnalyticPft, WideCountersAreWellDefined) {
  // `(1 << counter_bits) - 1` in int was UB from 31 bits up; the saturation
  // count is now computed in 64 bits, so any wide counter simply needs more
  // hits than the test stream has cycles.
  EXPECT_DOUBLE_EQ(analytic_pft(0.5, 1000, 31), 0.0);
  EXPECT_DOUBLE_EQ(analytic_pft(0.5, 1000, 32), 0.0);
  EXPECT_DOUBLE_EQ(analytic_pft(0.5, 1000, 63), 0.0);
  // Out-of-range counter widths fail loudly instead of shifting into UB.
  EXPECT_THROW(analytic_pft(0.5, 1000, -1), std::invalid_argument);
  EXPECT_THROW(analytic_pft(0.5, 1000, 64), std::invalid_argument);
}

TEST(AnalyticPft, MatchesMonteCarloOnTestbed) {
  NodeId victim;
  std::vector<NodeId> rare;
  Netlist nl = payload_testbed(&victim, &rare);
  const InsertedHT ht = build_trojan(nl, counter_trojan(2, 2), rare, victim);
  // Trigger fires when i0..i3 all 1: q = 1/16 per random cycle.
  const double analytic = analytic_pft(1.0 / 16.0, 64, 2);
  const double mc = monte_carlo_pft(nl, ht.fire, 64, 600, 11);
  EXPECT_NEAR(mc, analytic, 0.08);
}

TEST(UntargetedProbability, ExactAndSampledAgree) {
  // Modified circuit that differs on exactly one input combination.
  Netlist a;
  {
    const std::vector<NodeId> ins = add_inputs(a, 6);
    const NodeId wide = a.add_gate(GateType::And, "wide", ins);
    const NodeId o = a.add_gate(GateType::Or, "o", {wide, ins[0]});
    a.mark_output(o);
  }
  Netlist b;
  {
    const std::vector<NodeId> ins = add_inputs(b, 6);
    const NodeId o = b.add_gate(GateType::Buf, "o", {ins[0]});
    b.mark_output(o);
  }
  // a differs from b only on the all-ones vector... which is absorbed:
  // wide=1 implies ins[0]=1 so OR is identical. Pu = 0.
  EXPECT_DOUBLE_EQ(exact_untargeted_probability(a, b), 0.0);
  // Now make a real difference: wide excludes i1, so OR(wide, i1) deviates
  // from BUF(i1) exactly when i0,i2..i5 = 1 and i1 = 0 (one minterm).
  Netlist c;
  {
    const std::vector<NodeId> ins = add_inputs(c, 6);
    const std::vector<NodeId> others{ins[0], ins[2], ins[3], ins[4], ins[5]};
    const NodeId wide = c.add_gate(GateType::And, "wide", others);
    const NodeId o = c.add_gate(GateType::Or, "o", {wide, ins[1]});
    c.mark_output(o);
  }
  Netlist d;
  {
    const std::vector<NodeId> ins = add_inputs(d, 6);
    const NodeId o = d.add_gate(GateType::Buf, "o", {ins[1]});
    d.mark_output(o);
  }
  // Differs exactly when wide=1 and i1=0: one minterm of 64 -> Pu = 1/64.
  EXPECT_NEAR(exact_untargeted_probability(c, d), 1.0 / 64.0, 1e-12);
  const double sampled = sampled_untargeted_probability(c, d, 1 << 14, 5);
  EXPECT_NEAR(sampled, 1.0 / 64.0, 0.01);
}

TEST(TriggerProb, ZeroTrialsThrowsInsteadOfNaN) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::Buf, "g", {a});
  nl.mark_output(g);
  EXPECT_THROW(monte_carlo_pft(nl, g, 16, /*trials=*/0, 1),
               std::invalid_argument);
}

TEST(TriggerProb, ZeroSamplesThrowsInsteadOfNaN) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::Buf, "g", {a});
  nl.mark_output(g);
  EXPECT_THROW(sampled_untargeted_probability(nl, nl, /*samples=*/0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace tz
