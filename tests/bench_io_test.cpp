// Tests for the .bench reader/writer.
#include <gtest/gtest.h>

#include "gen/iscas.hpp"
#include "netlist/bench_io.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"

namespace tz {
namespace {

TEST(BenchIO, ParsesC17) {
  const Netlist c17 = gen_c17();
  EXPECT_EQ(c17.inputs().size(), 5u);
  EXPECT_EQ(c17.outputs().size(), 2u);
  EXPECT_EQ(c17.gate_count(), 6u);
  const auto h = c17.type_histogram();
  EXPECT_EQ(h[static_cast<std::size_t>(GateType::Nand)], 6u);
}

TEST(BenchIO, C17TruthSpotChecks) {
  const Netlist c17 = gen_c17();
  // With all inputs 0: 10=NAND(0,0)=1, 11=1, 16=NAND(0,1)=1, 19=1,
  // 22=NAND(1,1)=0, 23=0.
  PatternSet ps(5, 1);
  const PatternSet out = BitSimulator(c17).outputs(ps);
  EXPECT_FALSE(out.get(0, 0));
  EXPECT_FALSE(out.get(0, 1));
}

TEST(BenchIO, CommentsAndBlanksIgnored) {
  const Netlist nl = read_bench_string(
      "# header\n\nINPUT(x)\n  # indented comment\nOUTPUT(y)\ny = NOT(x) # eol\n");
  EXPECT_EQ(nl.gate_count(), 1u);
}

TEST(BenchIO, ForwardReferencesResolve) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(z)\nz = AND(m, a)\nm = NOT(a)\n");
  EXPECT_EQ(nl.gate_count(), 2u);
}

TEST(BenchIO, UndeclaredSignalFails) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)\n"),
               std::runtime_error);
}

TEST(BenchIO, RedefinitionFails) {
  EXPECT_THROW(
      read_bench_string("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\nz = BUF(a)\n"),
      std::runtime_error);
}

TEST(BenchIO, UndefinedOutputFails) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(zz)\nq = NOT(a)\n"),
               std::runtime_error);
}

TEST(BenchIO, CombinationalLoopFails) {
  EXPECT_THROW(read_bench_string(
                   "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = NOT(x)\n"),
               std::runtime_error);
}

TEST(BenchIO, UnknownGateFails) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(z)\nz = BLORB(a)\n"),
               std::runtime_error);
}

TEST(BenchIO, MalformedDirectiveFails) {
  // Directive without parentheses.
  EXPECT_THROW(read_bench_string("INPUT a\n"), std::runtime_error);
  // Unknown directive keyword.
  EXPECT_THROW(read_bench_string("WIRE(a)\n"), std::runtime_error);
  // Close-paren before open-paren.
  EXPECT_THROW(read_bench_string("INPUT)a(\n"), std::runtime_error);
}

TEST(BenchIO, EmptyNamesFail) {
  EXPECT_THROW(read_bench_string("INPUT()\n"), std::runtime_error);
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(z)\n = NOT(a)\n"),
               std::runtime_error);
}

TEST(BenchIO, MalformedAssignmentFails) {
  // RHS without parentheses.
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(z)\nz = NOT a\n"),
               std::runtime_error);
  // INPUT is not a legal gate mnemonic on an assignment.
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(z)\nz = INPUT(a)\n"),
               std::runtime_error);
}

TEST(BenchIO, UnresolvedDffInputFails) {
  EXPECT_THROW(
      read_bench_string("INPUT(a)\nOUTPUT(o)\nq = DFF(ghost)\no = BUF(q)\n"),
      std::runtime_error);
}

TEST(BenchIO, ErrorsCarryLineNumbers) {
  try {
    read_bench_string("INPUT(a)\nOUTPUT(z)\n\nz = BLORB(a)\n");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bench:4"), std::string::npos)
        << e.what();
  }
}

TEST(BenchIO, MissingFileFails) {
  EXPECT_THROW(read_bench_file("/nonexistent/no_such_circuit.bench"),
               std::runtime_error);
}

TEST(BenchIO, ConstantTiesRoundTrip) {
  // The TrojanZero rewrites introduce CONST0/CONST1 cells; the writer must
  // emit them re-parseably.
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId c1 = nl.const_node(true);
  const NodeId g = nl.add_gate(GateType::And, "g", {a, c1});
  nl.mark_output(g);
  const Netlist again = read_bench_string(write_bench_string(nl));
  EXPECT_EQ(again.gate_count(), nl.gate_count());
  EXPECT_EQ(again.inputs().size(), 1u);
  EXPECT_EQ(again.outputs().size(), 1u);
}

TEST(BenchIO, DffNetlistsRoundTrip) {
  const std::string text =
      "INPUT(en)\nOUTPUT(o)\nq = DFF(d)\nd = XOR(q, en)\no = BUF(q)\n";
  const Netlist nl = read_bench_string(text);
  EXPECT_EQ(nl.dffs().size(), 1u);
  const Netlist again = read_bench_string(write_bench_string(nl));
  EXPECT_EQ(again.dffs().size(), 1u);
  EXPECT_EQ(again.gate_count(), nl.gate_count());
}

class BenchRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchRoundTrip, WriteParseAgree) {
  const Netlist nl = make_benchmark(GetParam());
  const Netlist again = read_bench_string(write_bench_string(nl));
  EXPECT_EQ(again.inputs().size(), nl.inputs().size());
  EXPECT_EQ(again.outputs().size(), nl.outputs().size());
  EXPECT_EQ(again.gate_count(), nl.gate_count());
  // Functional identity on random vectors.
  const PatternSet ps = random_patterns(nl.inputs().size(), 192, test::kTestSeed);
  const PatternSet a = BitSimulator(nl).outputs(ps);
  const PatternSet b = BitSimulator(again).outputs(ps);
  EXPECT_TRUE(BitSimulator::responses_equal(a, b));
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchRoundTrip,
                         ::testing::Values("c17", "c432", "c499", "c880",
                                           "c1908", "c3540"));

}  // namespace
}  // namespace tz
