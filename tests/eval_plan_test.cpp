// Tests for the compiled evaluation plan (sim/eval_plan.hpp): structural
// compile invariants, randomized bit-parity of the plan kernels against the
// eval_gate_row reference across the full gate alphabet and arity range,
// cross-mode equality of the engines that consume plans, and the incremental
// plan patch applied by SuiteOracle::resync_structure after committed ties.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <random>
#include <string>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim_engine.hpp"
#include "atpg/test_set.hpp"
#include "core/flow_engine.hpp"
#include "core/ht_library.hpp"
#include "core/insertion.hpp"
#include "core/report.hpp"
#include "core/salvage.hpp"
#include "gen/iscas.hpp"
#include "netlist/rewrite.hpp"
#include "prob/signal_prob.hpp"
#include "sim/eval_plan.hpp"
#include "sim/simd.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"

namespace tz {
namespace {

using test::PlanModeGuard;

/// Random netlist over the full combinational alphabet: Buf/Not (arity 1),
/// the four AND/OR families and XOR/XNOR at arities 2..8, MUX, and both tie
/// cells feeding real logic — the edge shapes the plan compiler specializes.
Netlist random_full_alphabet(std::uint64_t seed, int num_gates) {
  std::mt19937_64 rng(seed);
  Netlist nl("rand_" + std::to_string(seed));
  std::vector<NodeId> pool;
  for (int i = 0; i < 6; ++i) {
    pool.push_back(nl.add_input("i" + std::to_string(i)));
  }
  pool.push_back(nl.const_node(false));
  pool.push_back(nl.const_node(true));
  const auto pick = [&] { return pool[rng() % pool.size()]; };
  static constexpr GateType kTypes[] = {
      GateType::Buf, GateType::Not,  GateType::And, GateType::Nand,
      GateType::Or,  GateType::Nor,  GateType::Xor, GateType::Xnor,
      GateType::Mux};
  for (int g = 0; g < num_gates; ++g) {
    const GateType t = kTypes[rng() % std::size(kTypes)];
    std::vector<NodeId> fi;
    if (t == GateType::Buf || t == GateType::Not) {
      fi = {pick()};
    } else if (t == GateType::Mux) {
      fi = {pick(), pick(), pick()};
    } else {
      const std::size_t arity = 2 + rng() % 7;  // 2..8
      for (std::size_t k = 0; k < arity; ++k) fi.push_back(pick());
    }
    pool.push_back(nl.add_gate(t, "g" + std::to_string(g), fi));
  }
  for (std::size_t k = 0; k < 8 && k < pool.size(); ++k) {
    nl.mark_output(pool[pool.size() - 1 - k]);
  }
  return nl;
}

TEST(EvalPlan, CompileInvariants) {
  const Netlist nl = random_full_alphabet(3, 80);
  const EvalPlan plan(nl);
  ASSERT_EQ(plan.num_slots(), nl.live_count());
  for (SlotId s = 0; s < plan.num_slots(); ++s) {
    const NodeId id = plan.node_of(s);
    ASSERT_TRUE(nl.is_alive(id));
    EXPECT_EQ(plan.slot_of(id), s);
    const Node& n = nl.node(id);
    if (n.type == GateType::Input || n.type == GateType::Dff) {
      EXPECT_EQ(plan.op(s), EvalOp::Source);
      EXPECT_TRUE(plan.fanins(s).empty());
      continue;
    }
    // Fanin CSR preserves order and respects topological slot numbering.
    const auto fanins = plan.fanins(s);
    ASSERT_EQ(fanins.size(), n.fanin.size());
    for (std::size_t k = 0; k < fanins.size(); ++k) {
      EXPECT_EQ(fanins[k], plan.slot_of(n.fanin[k]));
      EXPECT_LT(fanins[k], s);  // slot order is the topo order
    }
    // Fanout CSR is the transpose of the fanin CSR.
    for (SlotId f : fanins) {
      const auto fo = plan.fanout(f);
      EXPECT_NE(std::find(fo.begin(), fo.end(), s), fo.end());
    }
  }
  // Arity-2 specialization picked for every 2-input gate.
  for (SlotId s = 0; s < plan.num_slots(); ++s) {
    const Node& n = nl.node(plan.node_of(s));
    if (n.type == GateType::And) {
      EXPECT_EQ(plan.op(s),
                n.fanin.size() == 2 ? EvalOp::And2 : EvalOp::AndN);
    }
  }
}

TEST(EvalPlan, RandomizedParityWithGateEvalRow) {
  // The compiled walk must be bit-identical to the legacy eval_gate_row
  // evaluator on every node row — including the 1-word register fast path
  // and the tail-mask boundaries at 63/64/65 patterns.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const Netlist nl = random_full_alphabet(seed, 120);
    for (std::size_t patterns : {1u, 63u, 64u, 65u, 200u}) {
      const PatternSet ps =
          random_patterns(nl.inputs().size(), patterns, seed * 97 + patterns);
      NodeValues legacy, plan;
      {
        PlanModeGuard guard(0);
        legacy = BitSimulator(nl).run(ps);
      }
      {
        PlanModeGuard guard(1);
        plan = BitSimulator(nl).run(ps);
      }
      for (NodeId id = 0; id < nl.raw_size(); ++id) {
        if (!nl.is_alive(id)) continue;
        const std::uint64_t* a = legacy.row(id);
        const std::uint64_t* b = plan.row(id);
        for (std::size_t w = 0; w < ps.num_words(); ++w) {
          ASSERT_EQ(a[w], b[w])
              << "seed " << seed << " patterns " << patterns << " node "
              << nl.node(id).name << " word " << w;
        }
      }
    }
  }
}

TEST(EvalPlan, DffStateRowsMatchAcrossModes) {
  // DFF outputs are plan sources; both the explicit-state and the
  // reset-to-zero fills must match the legacy path bit for bit.
  Netlist nl("seq");
  const NodeId a = nl.add_input("a");
  const NodeId q0 = nl.add_gate(GateType::Dff, "q0", {a});
  const NodeId x = nl.add_gate(GateType::Xor, "x", {a, q0});
  const NodeId q1 = nl.add_gate(GateType::Dff, "q1", {x});
  const NodeId o = nl.add_gate(GateType::Nand, "o", {x, q1});
  nl.mark_output(o);
  const PatternSet ps = random_patterns(1, 130, 9);
  const std::vector<std::uint64_t> state = {~std::uint64_t{0}, 0};
  for (const std::vector<std::uint64_t>* st :
       {static_cast<const std::vector<std::uint64_t>*>(nullptr), &state}) {
    NodeValues legacy, plan;
    {
      PlanModeGuard guard(0);
      legacy = BitSimulator(nl).run(ps, st);
    }
    {
      PlanModeGuard guard(1);
      plan = BitSimulator(nl).run(ps, st);
    }
    for (NodeId id : {a, q0, x, q1, o}) {
      for (std::size_t w = 0; w < ps.num_words(); ++w) {
        ASSERT_EQ(legacy.row(id)[w], plan.row(id)[w]);
      }
    }
  }
}

TEST(EvalPlan, FaultSimEngineMatchesAcrossModes) {
  const Netlist nl = make_benchmark("c880");
  const auto faults = collapse_faults(nl, fault_universe(nl));
  for (std::size_t patterns : {63u, 64u, 65u, 128u}) {
    const PatternSet ps = random_patterns(nl.inputs().size(), patterns, 5);
    std::vector<bool> legacy_det, plan_det;
    std::vector<std::vector<std::uint64_t>> legacy_bits, plan_bits;
    {
      PlanModeGuard guard(0);
      FaultSimEngine engine(nl, ps);
      legacy_det = engine.simulate(faults);
      for (std::size_t i = 0; i < faults.size(); i += 97) {
        legacy_bits.push_back(engine.detection_bits(faults[i]));
      }
    }
    {
      PlanModeGuard guard(1);
      FaultSimEngine engine(nl, ps);
      plan_det = engine.simulate(faults);
      for (std::size_t i = 0; i < faults.size(); i += 97) {
        plan_bits.push_back(engine.detection_bits(faults[i]));
      }
    }
    EXPECT_EQ(legacy_det, plan_det) << patterns << " patterns";
    EXPECT_EQ(legacy_bits, plan_bits) << patterns << " patterns";
  }
}

TEST(EvalPlan, PlanPatchAfterCommitMatchesRecompile) {
  // Committing ties patches the plan in place (tie cell appended as a
  // source, reader fanin CSR rewritten, swept cone tombstoned). After every
  // commit the patched oracle must judge exactly like a from-scratch oracle
  // compiled on the mutated netlist — and like the full functional test.
  PlanModeGuard guard(1);
  const Netlist original = make_benchmark("c880");
  const DefenderSuite suite =
      make_defender_suite(original, FlowOptions::atpg_only_defender());
  Netlist work = original.compact();
  const SignalProb sp(work);
  const auto cands = find_candidates(work, sp, 0.992, false);
  ASSERT_GE(cands.size(), 5u);
  SuiteOracle oracle(work, suite);
  ASSERT_FALSE(oracle.sequential());
  std::size_t committed = 0;
  for (const Candidate& c : cands) {
    if (!work.is_alive(c.node)) continue;
    const bool visible = oracle.tie_visible(c.node, c.tie_value);
    {
      SuiteOracle recompiled(work, suite);
      EXPECT_EQ(recompiled.tie_visible(c.node, c.tie_value), visible)
          << "patched plan diverged from recompile at " << work.node(c.node).name;
    }
    Netlist reference = work;
    tie_to_constant(reference, c.node, c.tie_value);
    EXPECT_EQ(visible, !functional_test(reference, suite));
    if (!visible) {
      oracle.commit_tie(c.node, c.tie_value);
      tie_to_constant(work, c.node, c.tie_value);
      oracle.resync_structure();
      ++committed;
    }
  }
  EXPECT_GT(committed, 0u);
  EXPECT_TRUE(functional_test(work, suite));
  // HT judging on the patched plan agrees with a recompile too.
  const SignalProb sp2(work);
  SuiteOracle recompiled(work, suite);
  int checked = 0;
  for (NodeId victim : payload_locations(work, 6)) {
    const auto pool = trigger_pool(work, sp2, 0.05, victim);
    if (pool.size() < 2) continue;
    const std::span<const NodeId> trig(pool.data(), 2);
    EXPECT_EQ(oracle.ht_visible(trig, 3, victim),
              recompiled.ht_visible(trig, 3, victim));
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(EvalPlan, ToggleAndProbabilityOverloadsReuseRuns) {
  const Netlist nl = make_benchmark("c432");
  const PatternSet ps = random_patterns(nl.inputs().size(), 130, 21);
  // One simulator + one run feeding both reductions must equal the
  // construct-and-rerun convenience forms.
  BitSimulator sim(nl);
  const NodeValues vals = sim.run(ps);
  EXPECT_EQ(count_toggles(nl, vals, ps.num_patterns()), count_toggles(nl, ps));
  EXPECT_EQ(simulated_one_probability(nl, vals, ps.num_patterns()),
            simulated_one_probability(nl, ps));
}

TEST(StripeLayout, StripedRunMatchesContiguous) {
  // A netlist large enough that block_words splits the row width, so the
  // Auto/Striped layouts actually go stripe-major. Every accessor the
  // engines use (bit, segment, copy_row, copy_slot_row) must read the same
  // values as a contiguous run; row() must refuse to hand out a pointer into
  // a split row.
  PlanModeGuard guard(1);
  const Netlist nl = random_full_alphabet(11, 2000);
  BitSimulator sim(nl);
  ASSERT_NE(sim.plan(), nullptr);
  const std::size_t words = sim.plan()->block_words(1u << 20) * 2 + 3;
  const PatternSet ps =
      random_patterns(nl.inputs().size(), 64 * words - 17, 0x57717E);
  const NodeValues contig = sim.run(ps, nullptr, ValueLayout::Contiguous);
  const NodeValues striped = sim.run(ps, nullptr, ValueLayout::Striped);
  const NodeValues autoed = sim.run(ps, nullptr, ValueLayout::Auto);
  ASSERT_FALSE(contig.striped());
  ASSERT_TRUE(striped.striped());
  ASSERT_TRUE(autoed.striped());
  EXPECT_EQ(striped.stripe_words(), sim.plan()->block_words(ps.num_words()));
  EXPECT_THROW(striped.row(nl.outputs()[0]), std::logic_error);
  std::vector<std::uint64_t> gathered(ps.num_words());
  for (NodeId id : nl.live_nodes()) {
    const std::uint64_t* ref = contig.row(id);
    striped.copy_row(id, gathered.data());
    for (std::size_t w = 0; w < ps.num_words(); ++w) {
      ASSERT_EQ(gathered[w], ref[w]) << nl.node(id).name << " word " << w;
    }
    // segment() walk covers the row exactly once.
    std::size_t covered = 0;
    for (std::size_t w = 0; w < ps.num_words();) {
      const auto seg = striped.segment(id, w);
      ASSERT_GT(seg.size(), 0u);
      for (std::size_t k = 0; k < seg.size(); ++k) {
        ASSERT_EQ(seg[k], ref[w + k]);
      }
      covered += seg.size();
      w += seg.size();
    }
    ASSERT_EQ(covered, ps.num_words());
  }
  // bit() spot checks across stripe boundaries.
  for (std::size_t p : {std::size_t{0}, 64 * striped.stripe_words() - 1,
                        64 * striped.stripe_words(), ps.num_patterns() - 1}) {
    for (NodeId po : nl.outputs()) {
      ASSERT_EQ(striped.bit(po, p), contig.bit(po, p)) << p;
      ASSERT_EQ(autoed.bit(po, p), contig.bit(po, p)) << p;
    }
  }
}

TEST(StripeLayout, GenericKernelMatchesDispatched) {
  // Re-evaluating a striped matrix in place with the portable 4x64 kernel
  // must reproduce what the dispatched kernel (AVX2 where available) wrote:
  // the evaluation only reads source rows, so running it twice is idempotent
  // and any SIMD-vs-scalar divergence shows as a diff.
  PlanModeGuard guard(1);
  const Netlist nl = random_full_alphabet(23, 1500);
  BitSimulator sim(nl);
  ASSERT_NE(sim.plan(), nullptr);
  const EvalPlan& plan = *sim.plan();
  const std::size_t words = plan.block_words(1u << 20) * 2 + 9;
  const PatternSet ps = random_patterns(nl.inputs().size(), 64 * words, 0xD1);
  NodeValues vals = sim.run(ps, nullptr, ValueLayout::Striped);
  ASSERT_TRUE(vals.striped());
  const std::size_t total = plan.num_slots() * words;
  const std::vector<std::uint64_t> dispatched(vals.data(),
                                              vals.data() + total);
  const std::size_t bw = plan.block_words(words);
  for (std::size_t w0 = 0; w0 < words; w0 += bw) {
    detail::eval_plan_stripe_generic(
        plan, vals.data() + plan.num_slots() * w0, std::min(bw, words - w0), 0,
        static_cast<std::uint32_t>(plan.num_slots()));
  }
  for (std::size_t i = 0; i < total; ++i) {
    ASSERT_EQ(vals.data()[i], dispatched[i]) << "flat index " << i;
  }
}

TEST(StripeLayout, RunIntoReusesStorageAndMatchesRun) {
  PlanModeGuard guard(1);
  const Netlist nl = make_benchmark("c3540");
  BitSimulator sim(nl);
  const PatternSet a = random_patterns(nl.inputs().size(), 640, 1);
  const PatternSet b = random_patterns(nl.inputs().size(), 640, 2);
  NodeValues vals;
  sim.run_into(vals, a);
  const std::uint64_t* storage = vals.data();
  const NodeValues fresh_b = sim.run(b);
  sim.run_into(vals, b);
  EXPECT_EQ(vals.data(), storage);  // same-shape rerun reuses the buffer
  for (NodeId po : nl.outputs()) {
    for (std::size_t w = 0; w < b.num_words(); ++w) {
      ASSERT_EQ(vals.row(po)[w], fresh_b.row(po)[w]);
    }
  }
  // Shape changes reallocate instead of reinterpreting the old buffer.
  const PatternSet wide = random_patterns(nl.inputs().size(), 1280, 3);
  sim.run_into(vals, wide);
  EXPECT_EQ(vals.num_words(), wide.num_words());
  const NodeValues fresh_wide = sim.run(wide);
  for (NodeId po : nl.outputs()) {
    ASSERT_EQ(vals.row(po)[wide.num_words() - 1],
              fresh_wide.row(po)[wide.num_words() - 1]);
  }
}

TEST(StripeLayout, RunIntoReseedsDffRowsOnLegacyPath) {
  // Regression: the legacy path used to rely on the fresh matrix being
  // zeroed for the no-state DFF fill; a reused matrix must not leak the
  // previous run's DFF state.
  PlanModeGuard guard(0);
  Netlist nl("seq");
  const NodeId in = nl.add_input("in");
  const NodeId q = nl.add_gate(GateType::Dff, "q", {in});
  const NodeId o = nl.add_gate(GateType::Or, "o", {in, q});
  nl.mark_output(o);
  BitSimulator sim(nl);
  PatternSet ps(1, 64);  // all-zero inputs: output == DFF state
  const std::vector<std::uint64_t> ones = {~std::uint64_t{0}};
  NodeValues vals;
  sim.run_into(vals, ps, &ones);
  ASSERT_EQ(vals.row(o)[0], ~std::uint64_t{0});
  sim.run_into(vals, ps);  // reset state: must read 0, not stale ones
  EXPECT_EQ(vals.row(o)[0], 0u);
}

TEST(EvalPlan, CycleSimulatorStepScratchKeepsSemantics) {
  // step() now returns a reference into member scratch; consecutive calls
  // must keep producing the per-cycle outputs (regression for the hoisted
  // next_state/out buffers).
  Netlist nl("cnt");
  const NodeId en = nl.add_input("en");
  const NodeId q = nl.add_gate(GateType::Dff, "q", {en});
  const NodeId o = nl.add_gate(GateType::Xor, "o", {en, q});
  nl.mark_output(o);
  CycleSimulator cs(nl);
  EXPECT_TRUE(cs.step({true})[0]);    // q=0, en=1
  EXPECT_FALSE(cs.step({true})[0]);   // q=1, en=1
  EXPECT_TRUE(cs.step({false})[0]);   // q=1, en=0
  EXPECT_FALSE(cs.step({false})[0]);  // q=0, en=0
  EXPECT_EQ(cs.cycles(), 4u);
}

}  // namespace
}  // namespace tz
