// Integration tests: the complete TrojanZero flow of Fig. 2 / Fig. 6.
#include <gtest/gtest.h>

#include <sstream>
#include "core/report.hpp"
#include "core/trigger_prob.hpp"
#include "gen/iscas.hpp"
#include "sat/equivalence.hpp"

namespace tz {
namespace {

class FullFlow : public ::testing::TestWithParam<const char*> {};

TEST_P(FullFlow, TableIInvariantsHold) {
  const FlowResult r = run_trojanzero_flow(GetParam());
  const BenchmarkSpec& spec = spec_for(GetParam());

  // Algorithm 1 produced a candidate set and salvaged real cost.
  EXPECT_GT(r.salvage.candidates, 0u);
  EXPECT_GT(r.salvage.expendable_gates, 0u);
  EXPECT_LT(r.p_np.total_uw(), r.p_n.total_uw());
  EXPECT_LT(r.p_np.area_ge, r.p_n.area_ge);

  // Algorithm 2 succeeded within the caps: the TrojanZero property.
  ASSERT_TRUE(r.insertion.success);
  EXPECT_LE(r.p_npp.total_uw(), r.p_n.total_uw() + 1e-9);
  EXPECT_LE(r.p_npp.area_ge, r.p_n.area_ge + 1e-9);
  // The differential is *zero-ish*, not just negative: within the slack
  // band of the insertion options (2% default).
  EXPECT_LE(r.insertion.delta_power_uw(), 0.05 * r.p_n.total_uw());
  EXPECT_LE(r.insertion.delta_area_ge(), 0.05 * r.p_n.area_ge);

  // The infected netlist still passes every defender algorithm.
  EXPECT_TRUE(functional_test(r.insertion.infected, r.suite));

  // Trigger exposure is rare (Table I's Pft column: < 1e-3 class).
  EXPECT_LT(r.pft, 1e-2);
  EXPECT_LE(r.pft_payload, r.pft);

  // Sanity of the reported coverage.
  EXPECT_GT(r.atpg_coverage, 0.5);
  EXPECT_LE(r.atpg_coverage, 1.0);
  (void)spec;
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, FullFlow,
                         ::testing::Values("c432", "c499", "c880", "c1908",
                                           "c3540"));

TEST(Flow, SalvageIsAFunctionalChangeOffTheTestSet) {
  // On c880 the accepted removals include testable-but-untested gates:
  // SAT must find an input where N and N' differ, while the defender's
  // pattern set sees no difference — the paper's untargeted-HT effect.
  const FlowResult r = run_trojanzero_flow("c880");
  ASSERT_GT(r.salvage.accepted.size(), 0u);
  EXPECT_TRUE(functional_test(r.salvage.modified, r.suite));
  const auto eq = sat::check_equivalence(r.original, r.salvage.modified);
  ASSERT_TRUE(eq.decided);
  if (!eq.equivalent) {
    // Quantify Eq. 1 on the witness path: Pu must be small but non-zero.
    const double pu = sampled_untargeted_probability(
        r.original, r.salvage.modified, 1 << 14, 23);
    EXPECT_GT(pu, 0.0);
    EXPECT_LT(pu, 0.2);
  }
}

TEST(Flow, InfectedDiffersFromOriginalOnlyViaTrigger) {
  const FlowResult r = run_trojanzero_flow("c880");
  ASSERT_TRUE(r.insertion.success);
  // At reset the HT is dormant; differences between N and N'' come from the
  // salvage rewrites only. Streaming the defender patterns keeps the
  // counter at/near zero, so the suite passes (checked in TableIInvariants)
  // while the attacker can still fire the payload by saturating the
  // counter (checked in core_test's PayloadFlips test on the testbed).
  const double pu = sampled_untargeted_probability(
      r.original, r.insertion.infected, 1 << 12, 99);
  EXPECT_LT(pu, 0.2);
}

TEST(Flow, DefenderStrengthAblation) {
  // Strengthening the defender monotonically shrinks what Algorithm 1 can
  // salvage — the attack degrades gracefully rather than failing silently.
  FlowOptions weak;
  weak.pth = 0.992;
  weak.counter_bits = 3;
  FlowOptions strong = weak;
  strong.testgen.coverage_target = 1.0;
  strong.testgen.max_patterns = 4096;
  strong.testgen.random_patterns = 512;
  strong.testgen.with_random_validation = true;
  const FlowResult rw = run_trojanzero_flow("c880", weak);
  const FlowResult rs = run_trojanzero_flow("c880", strong);
  EXPECT_GE(rw.salvage.expendable_gates, rs.salvage.expendable_gates);
}

TEST(Flow, SalvageOrderAblationBothPass) {
  FlowOptions by_prob;
  FlowOptions by_leak;
  by_leak.order = SalvageOptions::Order::ByLeakage;
  const FlowResult a = run_trojanzero_flow("c432", by_prob);
  const FlowResult b = run_trojanzero_flow("c432", by_leak);
  EXPECT_TRUE(functional_test(a.salvage.modified, a.suite));
  EXPECT_TRUE(functional_test(b.salvage.modified, b.suite));
}

TEST(Flow, ReportPrintersProduceOutput) {
  const FlowResult r = run_trojanzero_flow("c432");
  std::ostringstream os;
  print_table1_row(os, r, spec_for("c432"));
  print_power_triple(os, r, spec_for("c432"));
  EXPECT_NE(os.str().find("c432"), std::string::npos);
  EXPECT_NE(os.str().find("Pft"), std::string::npos);
}

TEST(Flow, C17SmokeRun) {
  // The tiny real ISCAS circuit exercises the full pipeline even though it
  // has no rare nodes: salvage finds nothing and insertion is refused.
  FlowOptions opt;
  opt.pth = 0.9;
  opt.counter_bits = 2;
  const FlowResult r = run_trojanzero_flow("c17", opt);
  EXPECT_EQ(r.salvage.expendable_gates, 0u);
  EXPECT_FALSE(r.insertion.success);
}

TEST(Flow, FailedInsertionReportsNoHtInsteadOfFabricatedRow) {
  // A suite the insertion cannot beat: c17 has no rare-net pool, so every
  // HT/location pair is structurally rejected. The flow must report zero
  // trigger exposure (not Pft numbers computed from a default-constructed
  // descriptor) and the Table I printer must say so.
  FlowOptions opt;
  opt.pth = 0.9;
  opt.counter_bits = 2;
  const FlowResult r = run_trojanzero_flow("c17", opt);
  ASSERT_FALSE(r.insertion.success);
  EXPECT_EQ(r.pft, 0.0);
  EXPECT_EQ(r.pft_payload, 0.0);
  EXPECT_EQ(r.p_npp.total_uw(), 0.0);
  std::ostringstream os;
  BenchmarkSpec spec;
  spec.name = "c17";
  print_table1_row(os, r, spec);
  EXPECT_NE(os.str().find("no HT"), std::string::npos);
  EXPECT_EQ(os.str().find("counter-"), std::string::npos);
}

TEST(Flow, StressBenchmarkC6288Runs) {
  // The >2k-gate array multiplier: dense, fully testable arithmetic where
  // the defender wins — salvage accepts nothing and the rare-net pool is too
  // thin for a trigger — but the whole engine path must run cleanly.
  const FlowResult r = run_trojanzero_flow("c6288");
  EXPECT_GT(r.original.gate_count(), 2000u);
  EXPECT_GT(r.atpg_coverage, 0.9);
  EXPECT_FALSE(r.insertion.success);
  EXPECT_EQ(r.pft, 0.0);
  EXPECT_TRUE(functional_test(r.salvage.modified, r.suite));
}

}  // namespace
}  // namespace tz
