// Tests for pattern sets and the simulators.
#include <cstdint>
#include <functional>
#include <gtest/gtest.h>
#include <set>

#include "gen/random_circuit.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"

namespace tz {
namespace {

TEST(PatternSet, SetGetRoundTrip) {
  PatternSet ps(3, 130);  // crosses word boundaries
  ps.set(0, 0, true);
  ps.set(64, 1, true);
  ps.set(129, 2, true);
  EXPECT_TRUE(ps.get(0, 0));
  EXPECT_TRUE(ps.get(64, 1));
  EXPECT_TRUE(ps.get(129, 2));
  EXPECT_FALSE(ps.get(1, 0));
  EXPECT_THROW(ps.get(130, 0), std::out_of_range);
  EXPECT_THROW(ps.set(0, 3, true), std::out_of_range);
}

TEST(PatternSet, TailMask) {
  EXPECT_EQ(PatternSet(1, 64).tail_mask(), ~std::uint64_t{0});
  EXPECT_EQ(PatternSet(1, 1).tail_mask(), 1u);
  EXPECT_EQ(PatternSet(1, 3).tail_mask(), 7u);
}

TEST(PatternSet, AppendGrows) {
  PatternSet ps(2, 1);
  ps.set(0, 1, true);
  const bool bits[] = {true, false};
  ps.append(std::span<const bool>(bits, 2));
  EXPECT_EQ(ps.num_patterns(), 2u);
  EXPECT_TRUE(ps.get(0, 1));
  EXPECT_TRUE(ps.get(1, 0));
  EXPECT_FALSE(ps.get(1, 1));
}

TEST(PatternSet, AppendAllConcatenates) {
  PatternSet a(2, 65);
  a.set(64, 0, true);
  PatternSet b(2, 2);
  b.set(1, 1, true);
  a.append_all(b);
  EXPECT_EQ(a.num_patterns(), 67u);
  EXPECT_TRUE(a.get(64, 0));
  EXPECT_TRUE(a.get(66, 1));
}

TEST(PatternSet, ExhaustiveCoversAll) {
  const PatternSet ps = exhaustive_patterns(3);
  EXPECT_EQ(ps.num_patterns(), 8u);
  std::set<int> seen;
  for (std::size_t p = 0; p < 8; ++p) {
    int v = 0;
    for (int s = 0; s < 3; ++s) v |= ps.get(p, s) << s;
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(PatternSet, RandomIsDeterministicPerSeed) {
  EXPECT_EQ(random_patterns(4, 100, 9), random_patterns(4, 100, 9));
  EXPECT_NE(random_patterns(4, 100, 9), random_patterns(4, 100, 10));
}

TEST(PatternSet, WalkingShape) {
  const PatternSet ps = walking_patterns(4);
  EXPECT_EQ(ps.num_patterns(), 8u);
  for (int i = 0; i < 4; ++i) {
    int ones = 0;
    for (int s = 0; s < 4; ++s) ones += ps.get(i, s);
    EXPECT_EQ(ones, 1);  // walking one
    ones = 0;
    for (int s = 0; s < 4; ++s) ones += ps.get(4 + i, s);
    EXPECT_EQ(ones, 3);  // walking zero
  }
}

/// Every gate type agrees with its truth table, exercised exhaustively.
TEST(BitSimulator, GateTruthTables) {
  struct Case {
    GateType t;
    int arity;
    std::function<bool(unsigned)> expect;  // input bits packed in unsigned
  };
  const std::vector<Case> cases = {
      {GateType::Buf, 1, [](unsigned v) { return v & 1; }},
      {GateType::Not, 1, [](unsigned v) { return !(v & 1); }},
      {GateType::And, 3, [](unsigned v) { return v == 7; }},
      {GateType::Nand, 3, [](unsigned v) { return v != 7; }},
      {GateType::Or, 3, [](unsigned v) { return v != 0; }},
      {GateType::Nor, 3, [](unsigned v) { return v == 0; }},
      {GateType::Xor, 3, [](unsigned v) { return __builtin_popcount(v) & 1; }},
      {GateType::Xnor, 3,
       [](unsigned v) { return !(__builtin_popcount(v) & 1); }},
      {GateType::Mux, 3,
       [](unsigned v) {
         const bool sel = v & 1, a = v & 2, b = v & 4;
         return sel ? b : a;
       }},
  };
  for (const Case& c : cases) {
    Netlist nl;
    const std::vector<NodeId> ins = test::add_inputs(nl, c.arity);
    const NodeId g = nl.add_gate(c.t, "g", ins);
    nl.mark_output(g);
    const PatternSet ps = exhaustive_patterns(c.arity);
    const PatternSet out = BitSimulator(nl).outputs(ps);
    for (std::size_t p = 0; p < ps.num_patterns(); ++p) {
      EXPECT_EQ(out.get(p, 0), c.expect(static_cast<unsigned>(p)))
          << to_string(c.t) << " pattern " << p;
    }
  }
}

TEST(BitSimulator, ConstantsEvaluate) {
  Netlist nl;
  nl.add_input("a");
  const NodeId c0 = nl.const_node(false);
  const NodeId c1 = nl.const_node(true);
  const NodeId x = nl.add_gate(GateType::Xor, "x", {c0, c1});
  nl.mark_output(x);
  const PatternSet out = BitSimulator(nl).outputs(PatternSet(1, 3));
  for (int p = 0; p < 3; ++p) EXPECT_TRUE(out.get(p, 0));
}

TEST(BitSimulator, WidthMismatchThrows) {
  Netlist nl;
  nl.add_input("a");
  nl.add_input("b");
  BitSimulator sim(nl);
  EXPECT_THROW(sim.run(PatternSet(1, 4)), std::invalid_argument);
}

TEST(ResponsesEqual, DetectsAnyBitDifference) {
  PatternSet a(2, 70), b(2, 70);
  EXPECT_TRUE(BitSimulator::responses_equal(a, b));
  b.set(69, 1, true);
  EXPECT_FALSE(BitSimulator::responses_equal(a, b));
  EXPECT_FALSE(BitSimulator::responses_equal(a, PatternSet(2, 69)));
}

TEST(CountToggles, CountsTransitions) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId n = nl.add_gate(GateType::Not, "n", {a});
  nl.mark_output(n);
  PatternSet ps(1, 4);  // a = 0,1,0,0 -> 2 toggles on both nets
  ps.set(1, 0, true);
  const auto t = count_toggles(nl, ps);
  EXPECT_EQ(t[a], 2u);
  EXPECT_EQ(t[n], 2u);
}

TEST(CountToggles, WordBoundaryCarry) {
  // A single 1 at pattern 64: the 63->64 rise is only visible if the carry
  // of the last bit crosses the word boundary, and the 64->65 fall sits in
  // the second word.
  Netlist nl;
  const NodeId a = nl.add_input("a");
  nl.mark_output(a);
  PatternSet ps(1, 130);
  ps.set(64, 0, true);
  EXPECT_EQ(count_toggles(nl, ps)[a], 2u);
  // Exactly 64 patterns, last bit set: one rise and no phantom pair (63,64).
  PatternSet exact(1, 64);
  exact.set(63, 0, true);
  EXPECT_EQ(count_toggles(nl, exact)[a], 1u);
}

TEST(CountToggles, MatchesScalarReferenceAcrossWords) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId n = nl.add_gate(GateType::Not, "n", {a});
  nl.mark_output(n);
  const PatternSet ps = random_patterns(1, 200, 77);
  std::uint64_t expect = 0;
  for (std::size_t p = 1; p < ps.num_patterns(); ++p) {
    expect += ps.get(p, 0) != ps.get(p - 1, 0) ? 1 : 0;
  }
  const auto t = count_toggles(nl, ps);
  EXPECT_EQ(t[a], expect);
  EXPECT_EQ(t[n], expect);  // the inverter toggles exactly with its input
}

TEST(PatternSet, AppendCrossesWordBoundary) {
  PatternSet ps(2, 64);
  ps.set(63, 1, true);
  const bool bits[] = {true, false};
  ps.append(std::span<const bool>(bits, 2));
  EXPECT_EQ(ps.num_patterns(), 65u);
  EXPECT_EQ(ps.num_words(), 2u);
  EXPECT_TRUE(ps.get(63, 1));
  EXPECT_TRUE(ps.get(64, 0));
  EXPECT_FALSE(ps.get(64, 1));
  // Tail hygiene: positions past the last pattern stay zero.
  for (std::size_t s = 0; s < ps.num_signals(); ++s) {
    EXPECT_EQ(ps.words(s).back() & ~ps.tail_mask(), 0u) << "signal " << s;
  }
}

TEST(PatternSet, SliceCopiesRangeAcrossWordBoundary) {
  const PatternSet ps = random_patterns(3, 150, 13);
  const PatternSet cut = ps.slice(60, 70);  // spans words 0..2 of the source
  ASSERT_EQ(cut.num_patterns(), 70u);
  for (std::size_t p = 0; p < cut.num_patterns(); ++p) {
    for (std::size_t s = 0; s < cut.num_signals(); ++s) {
      ASSERT_EQ(cut.get(p, s), ps.get(60 + p, s)) << p << "," << s;
    }
  }
  for (std::size_t s = 0; s < cut.num_signals(); ++s) {
    EXPECT_EQ(cut.words(s).back() & ~cut.tail_mask(), 0u);
  }
  EXPECT_THROW(ps.slice(100, 51), std::out_of_range);
  // Subtraction-underflow counts must throw, not wrap past the guard.
  EXPECT_THROW(ps.slice(151, 0), std::out_of_range);
  EXPECT_THROW(ps.slice(10, static_cast<std::size_t>(-5)), std::out_of_range);
}

TEST(PatternSet, AppendAllCrossesWordBoundary) {
  PatternSet a(1, 60);
  a.set(59, 0, true);
  PatternSet b(1, 10);
  b.set(0, 0, true);
  b.set(9, 0, true);
  a.append_all(b);
  EXPECT_EQ(a.num_patterns(), 70u);
  EXPECT_EQ(a.num_words(), 2u);
  EXPECT_TRUE(a.get(59, 0));
  EXPECT_TRUE(a.get(60, 0));   // b's pattern 0 lands at 60, same word
  EXPECT_TRUE(a.get(69, 0));   // b's pattern 9 crosses into word 1
  EXPECT_FALSE(a.get(61, 0));
  EXPECT_EQ(a.words(0).back() & ~a.tail_mask(), 0u);
}

TEST(PatternSet, ManyAppendsMatchBulkConstruction) {
  // Equivalence regression for the geometric-capacity append: building a set
  // one pattern at a time (the ATPG top-up loop) must produce exactly the
  // set built in one shot, across several capacity doublings, with clean
  // padding after every growth step.
  const PatternSet src = random_patterns(5, 1000, 9);
  PatternSet acc(5, 0);
  bool bits[5];
  for (std::size_t p = 0; p < src.num_patterns(); ++p) {
    for (std::size_t s = 0; s < 5; ++s) bits[s] = src.get(p, s);
    acc.append(std::span<const bool>(bits, 5));
  }
  EXPECT_TRUE(acc == src);
  for (std::size_t s = 0; s < acc.num_signals(); ++s) {
    EXPECT_EQ(acc.words(s).back() & ~acc.tail_mask(), 0u) << "signal " << s;
  }
  // reserve() must change neither content nor equality.
  PatternSet reserved(5, 0);
  reserved.reserve(1000);
  for (std::size_t p = 0; p < src.num_patterns(); ++p) {
    for (std::size_t s = 0; s < 5; ++s) bits[s] = src.get(p, s);
    reserved.append(std::span<const bool>(bits, 5));
  }
  EXPECT_TRUE(reserved == src);
}

TEST(PatternSet, EqualityIsSemantic) {
  // operator== compares logical content only: capacity headroom and the
  // padding lanes past the last pattern must not distinguish sets.
  const PatternSet a = random_patterns(3, 130, 4);
  PatternSet b(3, 0);
  b.reserve(4096);  // very different capacity stride
  bool bits[3];
  for (std::size_t p = 0; p < a.num_patterns(); ++p) {
    for (std::size_t s = 0; s < 3; ++s) bits[s] = a.get(p, s);
    b.append(std::span<const bool>(bits, 3));
  }
  EXPECT_TRUE(a == b);
  PatternSet c = a;
  c.set(129, 2, !c.get(129, 2));
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == a.slice(0, 129));              // different pattern count
  EXPECT_FALSE(a == random_patterns(4, 130, 4));   // different signal count
}

TEST(PatternSet, SliceAppendAllRoundTrip) {
  // Splitting at an unaligned boundary and re-concatenating is the identity
  // (slice's funnel shifts and append_all's splice are inverses).
  const PatternSet src = random_patterns(4, 300, 77);
  for (std::size_t cut : {1u, 63u, 64u, 65u, 200u, 299u}) {
    PatternSet joined = src.slice(0, cut);
    joined.append_all(src.slice(cut, src.num_patterns() - cut));
    EXPECT_TRUE(joined == src) << "cut at " << cut;
  }
}

TEST(SimulatedProbability, MatchesCounts) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::And, "g", {a, b});
  nl.mark_output(g);
  const auto p = simulated_one_probability(nl, exhaustive_patterns(2));
  EXPECT_DOUBLE_EQ(p[a], 0.5);
  EXPECT_DOUBLE_EQ(p[g], 0.25);
}

TEST(CycleSimulator, DffDelaysByOneCycle) {
  Netlist nl;
  const NodeId d = nl.add_input("d");
  const NodeId q = nl.add_gate(GateType::Dff, "q", {d});
  const NodeId o = nl.add_gate(GateType::Buf, "o", {q});
  nl.mark_output(o);
  CycleSimulator cs(nl);
  EXPECT_FALSE(cs.step({true})[0]);   // reset state visible
  EXPECT_TRUE(cs.step({false})[0]);   // captured 1 appears
  EXPECT_FALSE(cs.step({false})[0]);
}

TEST(CycleSimulator, EnabledCounterCounts) {
  // 2-bit synchronous counter with enable, built by hand like the HT's.
  Netlist nl;
  const NodeId en = nl.add_input("en");
  const NodeId tie = nl.const_node(false);
  const NodeId q0 = nl.add_gate(GateType::Dff, "q0", {tie});
  const NodeId q1 = nl.add_gate(GateType::Dff, "q1", {tie});
  const NodeId d0 = nl.add_gate(GateType::Xor, "d0", {q0, en});
  const NodeId c0 = nl.add_gate(GateType::And, "c0", {q0, en});
  const NodeId d1 = nl.add_gate(GateType::Xor, "d1", {q1, c0});
  nl.relink_fanin(q0, 0, d0);
  nl.relink_fanin(q1, 0, d1);
  nl.sweep_dead_gates();
  const NodeId full = nl.add_gate(GateType::And, "full", {q0, q1});
  nl.mark_output(full);
  CycleSimulator cs(nl);
  // Count 3 enabled cycles: state goes 0,1,2,3 -> full asserted on the
  // cycle where q=3.
  EXPECT_FALSE(cs.step({true})[0]);  // q was 0
  EXPECT_FALSE(cs.step({true})[0]);  // q was 1
  EXPECT_FALSE(cs.step({true})[0]);  // q was 2
  EXPECT_TRUE(cs.step({false})[0]);  // q is 3 and holds (enable low)
  EXPECT_TRUE(cs.step({false})[0]);
  EXPECT_TRUE(cs.step({true})[0]);   // q still 3 this cycle, wraps after
  EXPECT_FALSE(cs.step({false})[0]); // wrapped to 0
}

TEST(CycleSimulator, TogglesAccumulate) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId n = nl.add_gate(GateType::Not, "n", {a});
  nl.mark_output(n);
  CycleSimulator cs(nl);
  cs.step({false});
  cs.step({true});
  cs.step({false});
  EXPECT_EQ(cs.toggles()[n], 2u);
  EXPECT_EQ(cs.cycles(), 3u);
  cs.reset();
  EXPECT_EQ(cs.toggles()[n], 0u);
}

/// Property: bit-parallel and cycle-based simulators agree on combinational
/// circuits pattern-by-pattern.
class SimAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimAgreement, BitParallelMatchesCycleBased) {
  RandomCircuitSpec spec;
  spec.seed = GetParam();
  const Netlist nl = random_circuit(spec);
  const PatternSet ps = random_patterns(nl.inputs().size(), 100, spec.seed);
  const PatternSet fast = BitSimulator(nl).outputs(ps);
  CycleSimulator cs(nl);
  for (std::size_t p = 0; p < ps.num_patterns(); ++p) {
    std::vector<bool> in(nl.inputs().size());
    for (std::size_t s = 0; s < in.size(); ++s) in[s] = ps.get(p, s);
    const auto out = cs.step(in);
    for (std::size_t o = 0; o < out.size(); ++o) {
      ASSERT_EQ(out[o], fast.get(p, o)) << "pattern " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimAgreement,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace tz
