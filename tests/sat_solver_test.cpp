// Direct tests for the arena CDCL core (sat/solver.hpp) — previously the
// solver was only exercised through the equivalence miter.
#include <cstdint>
#include <random>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "sat/solver.hpp"

namespace tz {
namespace {

using sat::Lit;
using sat::Solver;
using sat::SolveResult;
using sat::Var;

/// PHP(pigeons, holes): each pigeon in some hole, no hole with two pigeons.
/// UNSAT whenever pigeons > holes, with no short resolution proof — the
/// classic workout for conflict learning and the learnt-DB policy.
Solver pigeonhole(int pigeons, int holes) {
  Solver s;
  std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> c;
    c.reserve(holes);
    for (int j = 0; j < holes; ++j) c.push_back(Lit::make(p[i][j]));
    s.add_clause(c);
  }
  for (int j = 0; j < holes; ++j) {
    for (int i = 0; i < pigeons; ++i) {
      for (int k = i + 1; k < pigeons; ++k) {
        s.add_binary(~Lit::make(p[i][j]), ~Lit::make(p[k][j]));
      }
    }
  }
  return s;
}

TEST(SatSolver, PigeonHoleUnsat) {
  Solver s = pigeonhole(6, 5);
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
  EXPECT_GT(s.stats().conflicts, 0);
}

/// Random 3-SAT cross-checked against brute-force enumeration. Instances
/// straddle the satisfiability threshold (ratio ~4.3), so both verdicts are
/// exercised; SAT models are additionally verified clause by clause.
class Random3Sat : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Random3Sat, AgreesWithBruteForce) {
  std::mt19937_64 rng(GetParam());
  const int num_vars = 8 + static_cast<int>(rng() % 13);  // 8 .. 20
  const int num_clauses = static_cast<int>(4.3 * num_vars);
  std::vector<std::vector<Lit>> clauses;
  Solver s;
  for (int v = 0; v < num_vars; ++v) s.new_var();
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> lits;
    while (lits.size() < 3) {
      const Var v = static_cast<Var>(rng() % num_vars);
      const Lit l = Lit::make(v, (rng() & 1) != 0);
      bool dup = false;
      for (const Lit e : lits) dup = dup || e.var() == l.var();
      if (!dup) lits.push_back(l);
    }
    clauses.push_back(lits);
    s.add_clause(lits);
  }

  bool brute_sat = false;
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << num_vars); ++m) {
    bool all = true;
    for (const auto& c : clauses) {
      bool any = false;
      for (const Lit l : c) {
        any = any || (((m >> l.var()) & 1) != 0) != l.neg();
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) {
      brute_sat = true;
      break;
    }
  }

  const SolveResult r = s.solve();
  ASSERT_NE(r, SolveResult::Unknown);
  EXPECT_EQ(r == SolveResult::Sat, brute_sat);
  if (r == SolveResult::Sat) {
    for (const auto& c : clauses) {
      bool any = false;
      for (const Lit l : c) any = any || s.model_value(l.var()) != l.neg();
      EXPECT_TRUE(any) << "model violates a clause";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Random3Sat,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99,
                                           110, 121, 132));

TEST(SatSolver, IncrementalAssumptionReuse) {
  // One persistent solver, many solves under different assumptions — the
  // incremental-miter usage pattern. Clause DB and learnts carry across.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  s.add_ternary(Lit::make(a), Lit::make(b), Lit::make(c));
  s.add_binary(~Lit::make(a), ~Lit::make(b));

  EXPECT_EQ(s.solve({Lit::make(a)}), SolveResult::Sat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_FALSE(s.model_value(b));
  EXPECT_EQ(s.solve({Lit::make(a), Lit::make(b)}), SolveResult::Unsat);
  EXPECT_EQ(s.solve({~Lit::make(a), ~Lit::make(b)}), SolveResult::Sat);
  EXPECT_TRUE(s.model_value(c));
  // Still satisfiable with no assumptions: nothing was permanently asserted.
  EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(SatSolver, ConflictLimitReturnsUnknown) {
  Solver s = pigeonhole(6, 5);
  EXPECT_EQ(s.solve({}, 1), SolveResult::Unknown);
  // The solver stays usable after an Unknown and finishes without a limit.
  EXPECT_EQ(s.solve({}, -1), SolveResult::Unsat);
}

TEST(SatSolver, UnitLearntUnderAssumptionsPersists) {
  // Regression for the seed solver's dead duplicated unit-learnt branch:
  // under assumption ~x the clauses (x|y), (x|~y) conflict and first-UIP
  // learning derives the unit (x). The arena solver backtracks past the
  // assumption level and asserts it at level 0, so it survives the solve.
  Solver s;
  const Var x = s.new_var();
  const Var y = s.new_var();
  s.add_binary(Lit::make(x), Lit::make(y));
  s.add_binary(Lit::make(x), ~Lit::make(y));

  EXPECT_EQ(s.solve({~Lit::make(x)}), SolveResult::Unsat);
  EXPECT_GT(s.stats().conflicts, 0);

  // The learnt unit (x) is now a level-0 fact: re-solving under the same
  // assumption fails at assumption placement, before any search conflict.
  EXPECT_EQ(s.solve({~Lit::make(x)}), SolveResult::Unsat);
  EXPECT_EQ(s.conflicts(), 0) << "unit learnt was forgotten and re-derived";

  EXPECT_EQ(s.solve(), SolveResult::Sat);
  EXPECT_TRUE(s.model_value(x));
}

TEST(SatSolver, ReduceDbFiresUnderAssumptions) {
  // Regression for the seed's reduce_learnts(), which only ran at decision
  // level 0 and therefore never under assumptions — the learnt DB grew
  // without bound across an assumption-heavy incremental session. The
  // assumption literal here is a fresh variable, so it stays on the trail
  // for the entire search and the seed policy would never fire.
  Solver s = pigeonhole(8, 7);
  const Var fresh = s.new_var();
  EXPECT_EQ(s.solve({Lit::make(fresh)}), SolveResult::Unsat);
  EXPECT_GT(s.stats().conflicts, 2000);
  EXPECT_GT(s.stats().reduces, 0) << "learnt DB never reduced";
  EXPECT_GT(s.stats().removed_learnts, 0);
  EXPECT_LT(static_cast<std::int64_t>(s.num_learnts()),
            s.stats().conflicts) << "every learnt clause was retained";
}

TEST(SatSolver, WriteDimacsRoundTrips) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  // Ternary first: add_clause simplifies against level-0 facts, so adding
  // the unit up front would shrink the clause before it reached the arena.
  // The unit satisfies the clause without falsifying a watched literal, so
  // propagation leaves the arena's literal order untouched.
  s.add_ternary(~Lit::make(a), Lit::make(b), Lit::make(c));
  s.add_unit(Lit::make(b));
  std::ostringstream os;
  s.write_dimacs(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("p cnf 3 2"), std::string::npos);
  EXPECT_NE(text.find("2 0"), std::string::npos);   // the unit fact
  EXPECT_NE(text.find("-1 2 3 0"), std::string::npos);
}

TEST(SatSolver, StatsAccumulateAcrossSolves) {
  Solver s = pigeonhole(5, 4);
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
  const std::int64_t first = s.stats().conflicts;
  EXPECT_GT(first, 0);
  // Already UNSAT at level 0 — no further conflicts, lifetime stats keep.
  EXPECT_EQ(s.solve(), SolveResult::Unsat);
  EXPECT_EQ(s.stats().conflicts, first);
}

}  // namespace
}  // namespace tz
