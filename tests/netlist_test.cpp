// Unit tests for the netlist IR.
#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/netlist.hpp"
#include "testutil.hpp"

namespace tz {
namespace {

using test::two_gate;

TEST(GateType, RoundTripStrings) {
  for (int i = 0; i < kGateTypeCount; ++i) {
    const auto t = static_cast<GateType>(i);
    const auto parsed = gate_type_from_string(to_string(t));
    ASSERT_TRUE(parsed.has_value()) << to_string(t);
    EXPECT_EQ(*parsed, t);
  }
}

TEST(GateType, ParseIsCaseInsensitive) {
  EXPECT_EQ(gate_type_from_string("nand"), GateType::Nand);
  EXPECT_EQ(gate_type_from_string("NaNd"), GateType::Nand);
  EXPECT_EQ(gate_type_from_string("BUFF"), GateType::Buf);
}

TEST(GateType, UnknownMnemonicRejected) {
  EXPECT_FALSE(gate_type_from_string("FROB").has_value());
  EXPECT_FALSE(gate_type_from_string("").has_value());
}

TEST(GateType, Classification) {
  EXPECT_TRUE(is_source(GateType::Input));
  EXPECT_TRUE(is_source(GateType::Const0));
  EXPECT_TRUE(is_const(GateType::Const1));
  EXPECT_FALSE(is_const(GateType::Input));
  EXPECT_TRUE(is_sequential(GateType::Dff));
  EXPECT_TRUE(is_combinational(GateType::Nand));
  EXPECT_FALSE(is_combinational(GateType::Dff));
  EXPECT_FALSE(is_combinational(GateType::Input));
}

TEST(Netlist, BuildAndQuery) {
  Netlist nl = two_gate();
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.gate_count(), 2u);
  EXPECT_EQ(nl.live_count(), 4u);
  EXPECT_NE(nl.find("g"), kNoNode);
  EXPECT_EQ(nl.find("nope"), kNoNode);
  EXPECT_TRUE(nl.is_output(nl.find("h")));
  EXPECT_FALSE(nl.is_output(nl.find("g")));
  nl.check();
}

TEST(Netlist, DuplicateNameThrows) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(nl.add_input("a"), std::runtime_error);
  EXPECT_THROW(nl.add_gate(GateType::Not, "a", {nl.find("a")}),
               std::runtime_error);
}

TEST(Netlist, ArityChecked) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateType::And, "g", {a}), std::runtime_error);
  EXPECT_THROW(nl.add_gate(GateType::Not, "g", {a, a}), std::runtime_error);
  EXPECT_THROW(nl.add_gate(GateType::Mux, "g", {a, a}), std::runtime_error);
  EXPECT_NO_THROW(nl.add_gate(GateType::Mux, "m", {a, a, a}));
}

TEST(Netlist, FanoutTracksFanin) {
  Netlist nl = two_gate();
  const NodeId a = nl.find("a");
  const NodeId g = nl.find("g");
  ASSERT_EQ(nl.node(a).fanout.size(), 1u);
  EXPECT_EQ(nl.node(a).fanout[0], g);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl = two_gate();
  const auto order = nl.topo_order();
  EXPECT_EQ(order.size(), nl.live_count());
  std::vector<int> pos(nl.raw_size(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = int(i);
  for (NodeId id : order) {
    for (NodeId f : nl.node(id).fanin) {
      if (!is_sequential(nl.node(id).type)) {
        EXPECT_LT(pos[f], pos[id]);
      }
    }
  }
}

TEST(Netlist, RemoveNodeRequiresNoReaders) {
  Netlist nl = two_gate();
  EXPECT_THROW(nl.remove_node(nl.find("g")), std::runtime_error);
  const NodeId h = nl.find("h");
  EXPECT_THROW(nl.remove_node(h), std::runtime_error);  // primary output
}

TEST(Netlist, RewireAndRemove) {
  Netlist nl = two_gate();
  const NodeId g = nl.find("g");
  const NodeId tie = nl.const_node(false);
  nl.rewire_and_remove(g, tie);
  EXPECT_EQ(nl.find("g"), kNoNode);
  const NodeId h = nl.find("h");
  EXPECT_EQ(nl.node(h).fanin[0], tie);
  nl.check();
}

TEST(Netlist, SweepRemovesDeadCone) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g1 = nl.add_gate(GateType::And, "g1", {a, b});
  const NodeId g2 = nl.add_gate(GateType::Or, "g2", {g1, a});
  (void)g2;  // g2 is unused and not an output: whole cone dies
  const NodeId keep = nl.add_gate(GateType::Not, "keep", {a});
  nl.mark_output(keep);
  EXPECT_EQ(nl.sweep_dead_gates(), 2u);
  EXPECT_EQ(nl.find("g1"), kNoNode);
  EXPECT_EQ(nl.find("g2"), kNoNode);
  EXPECT_NE(nl.find("keep"), kNoNode);
  EXPECT_EQ(nl.inputs().size(), 2u);  // PIs always survive
  nl.check();
}

TEST(Netlist, ConstNodeIsCached) {
  Netlist nl;
  nl.add_input("a");
  const NodeId c0 = nl.const_node(false);
  EXPECT_EQ(nl.const_node(false), c0);
  EXPECT_NE(nl.const_node(true), c0);
}

TEST(Netlist, ReplaceUsesMovesOutputs) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::Not, "g", {a});
  const NodeId h = nl.add_gate(GateType::Buf, "h", {a});
  nl.mark_output(g);
  nl.replace_uses(g, h);
  EXPECT_TRUE(nl.is_output(h));
  EXPECT_FALSE(nl.is_output(g));
}

TEST(Netlist, RelinkFanin) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::Not, "g", {a});
  nl.relink_fanin(g, 0, b);
  EXPECT_EQ(nl.node(g).fanin[0], b);
  EXPECT_TRUE(nl.node(a).fanout.empty());
  ASSERT_EQ(nl.node(b).fanout.size(), 1u);
  nl.check();
}

TEST(Netlist, CompactRenumbersDensely) {
  Netlist nl = two_gate();
  const NodeId tie = nl.const_node(true);
  nl.rewire_and_remove(nl.find("g"), tie);
  const Netlist packed = nl.compact();
  EXPECT_EQ(packed.live_count(), packed.raw_size());
  EXPECT_EQ(packed.live_count(), nl.live_count());
  EXPECT_NE(packed.find("h"), kNoNode);
  EXPECT_EQ(packed.outputs().size(), 1u);
  packed.check();
}

TEST(Netlist, CompactPreservesDffs) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId q = nl.add_gate(GateType::Dff, "q", {a});
  const NodeId x = nl.add_gate(GateType::Xor, "x", {q, a});
  nl.mark_output(x);
  const Netlist packed = nl.compact();
  ASSERT_EQ(packed.dffs().size(), 1u);
  EXPECT_EQ(packed.node(packed.dffs()[0]).name, "q");
  packed.check();
}

TEST(Netlist, DffBreaksCycles) {
  Netlist nl;
  const NodeId a = nl.add_input("en");
  const NodeId tie = nl.const_node(false);
  const NodeId q = nl.add_gate(GateType::Dff, "q", {tie});
  const NodeId d = nl.add_gate(GateType::Xor, "d", {q, a});
  nl.relink_fanin(q, 0, d);  // q <- d <- q: sequential loop, fine
  nl.sweep_dead_gates();
  nl.mark_output(d);
  EXPECT_NO_THROW(nl.topo_order());
  nl.check();
}

TEST(Netlist, DepthsIncreaseAlongPaths) {
  Netlist nl = two_gate();
  const auto d = nl.depths();
  EXPECT_EQ(d[nl.find("a")], 0);
  EXPECT_EQ(d[nl.find("g")], 1);
  EXPECT_EQ(d[nl.find("h")], 2);
}

TEST(Netlist, FaninCone) {
  Netlist nl = two_gate();
  const NodeId h = nl.find("h");
  const auto cone = nl.fanin_cone(std::vector<NodeId>{h});
  EXPECT_EQ(cone.size(), 4u);  // h, g, a, b
}

TEST(Netlist, TypeHistogram) {
  Netlist nl = two_gate();
  const auto h = nl.type_histogram();
  EXPECT_EQ(h[static_cast<std::size_t>(GateType::Input)], 2u);
  EXPECT_EQ(h[static_cast<std::size_t>(GateType::And)], 1u);
  EXPECT_EQ(h[static_cast<std::size_t>(GateType::Not)], 1u);
}

TEST(Netlist, RetypeChecksArityAndClass) {
  Netlist nl = two_gate();
  const NodeId g = nl.find("g");
  nl.retype(g, GateType::Or);
  EXPECT_EQ(nl.node(g).type, GateType::Or);
  EXPECT_THROW(nl.retype(g, GateType::Not), std::runtime_error);   // arity
  EXPECT_THROW(nl.retype(g, GateType::Dff), std::runtime_error);   // class
}

}  // namespace
}  // namespace tz
