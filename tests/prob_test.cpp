// Tests for the signal-probability engine.
#include <cstdint>
#include <gtest/gtest.h>

#include <cmath>

#include "gen/iscas.hpp"
#include "gen/random_circuit.hpp"
#include "prob/signal_prob.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"

namespace tz {
namespace {

using test::add_inputs;

TEST(SignalProb, InputsDefaultToHalf) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  nl.mark_output(nl.add_gate(GateType::Buf, "b", {a}));
  const SignalProb sp(nl);
  EXPECT_DOUBLE_EQ(sp.p1(a), 0.5);
}

TEST(SignalProb, GateFormulas) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId and3 = nl.add_gate(GateType::And, "and3", {a, b, c});
  const NodeId nor2 = nl.add_gate(GateType::Nor, "nor2", {a, b});
  const NodeId xor3 = nl.add_gate(GateType::Xor, "xor3", {a, b, c});
  const NodeId mux = nl.add_gate(GateType::Mux, "mux", {a, and3, nor2});
  nl.mark_output(xor3);
  nl.mark_output(mux);
  const SignalProb sp(nl);
  EXPECT_NEAR(sp.p1(and3), 0.125, 1e-12);
  EXPECT_NEAR(sp.p1(nor2), 0.25, 1e-12);
  EXPECT_NEAR(sp.p1(xor3), 0.5, 1e-12);
  EXPECT_NEAR(sp.p1(mux), 0.5 * 0.125 + 0.5 * 0.25, 1e-12);
}

TEST(SignalProb, ConstantsArePinned) {
  Netlist nl;
  nl.add_input("a");
  const NodeId c0 = nl.const_node(false);
  const NodeId c1 = nl.const_node(true);
  const NodeId g = nl.add_gate(GateType::Or, "g", {c0, c1});
  nl.mark_output(g);
  const SignalProb sp(nl);
  EXPECT_DOUBLE_EQ(sp.p1(c0), 0.0);
  EXPECT_DOUBLE_EQ(sp.p1(c1), 1.0);
  EXPECT_DOUBLE_EQ(sp.p1(g), 1.0);
}

TEST(SignalProb, CustomInputProbability) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::And, "g", {a, b});
  nl.mark_output(g);
  SignalProbOptions opt;
  opt.input_p1 = 0.9;
  const SignalProb sp(nl, opt);
  EXPECT_NEAR(sp.p1(g), 0.81, 1e-12);
}

TEST(SignalProb, ActivityPeaksAtHalf) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId rare = nl.add_gate(GateType::And, "rare", {a, b});
  nl.mark_output(rare);
  const SignalProb sp(nl);
  EXPECT_DOUBLE_EQ(sp.activity(a), 0.5);
  EXPECT_NEAR(sp.activity(rare), 2 * 0.25 * 0.75, 1e-12);
  EXPECT_GT(sp.activity(a), sp.activity(rare));
}

TEST(SignalProb, DffFixpointConverges) {
  // q' = q XOR 1 (free-running toggle): steady state P(q)=0.5.
  Netlist nl;
  nl.add_input("unused");
  const NodeId one = nl.const_node(true);
  const NodeId q = nl.add_gate(GateType::Dff, "q", {one});
  const NodeId d = nl.add_gate(GateType::Xor, "d", {q, one});
  nl.relink_fanin(q, 0, d);
  nl.mark_output(d);
  const SignalProb sp(nl);
  EXPECT_TRUE(sp.dff_converged());
  EXPECT_NEAR(sp.p1(q), 0.5, 1e-6);
}

TEST(FindCandidates, ThresholdAndPolarity) {
  Netlist nl;
  const std::vector<NodeId> ins = add_inputs(nl, 8);
  const NodeId rare1 = nl.add_gate(GateType::And, "rare1", ins);   // P1=2^-8
  const NodeId rare0 = nl.add_gate(GateType::Or, "rare0", ins);    // P0=2^-8
  const NodeId mid = nl.add_gate(GateType::Xor, "mid", {ins[0], ins[1]});
  const NodeId sink =
      nl.add_gate(GateType::Xor, "sink", {rare1, rare0, mid});
  nl.mark_output(sink);
  const SignalProb sp(nl);
  const auto cands = find_candidates(nl, sp, 0.99);
  ASSERT_EQ(cands.size(), 2u);
  for (const Candidate& c : cands) {
    if (c.node == rare1) {
      EXPECT_FALSE(c.tie_value);  // ties to 0
    }
    if (c.node == rare0) {
      EXPECT_TRUE(c.tie_value);  // ties to 1
    }
    EXPECT_GE(c.probability, 0.99);
  }
}

TEST(FindCandidates, OutputsExcludedByDefault) {
  Netlist nl;
  const std::vector<NodeId> ins = add_inputs(nl, 8);
  const NodeId rare = nl.add_gate(GateType::And, "rare", ins);
  nl.mark_output(rare);
  const SignalProb sp(nl);
  EXPECT_TRUE(find_candidates(nl, sp, 0.99).empty());
  EXPECT_EQ(find_candidates(nl, sp, 0.99, /*include_outputs=*/true).size(), 1u);
}

TEST(FindCandidates, SortedByProbability) {
  const Netlist nl = make_benchmark("c3540");
  const SignalProb sp(nl);
  const auto cands = find_candidates(nl, sp, 0.99);
  for (std::size_t i = 1; i < cands.size(); ++i) {
    EXPECT_GE(cands[i - 1].probability, cands[i].probability);
  }
}

/// Property: analytic probabilities track Monte-Carlo within sampling noise
/// on shallow random circuits (reconvergent fanout makes the independence
/// model approximate, so the tolerance is loose but bounded).
class ProbVsMonteCarlo : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProbVsMonteCarlo, WithinTolerance) {
  RandomCircuitSpec spec;
  spec.seed = GetParam();
  spec.num_gates = 40;
  spec.num_inputs = 10;
  const Netlist nl = random_circuit(spec);
  const SignalProb sp(nl);
  const auto mc = monte_carlo_p1(nl, 1 << 14, spec.seed);
  double sum = 0.0, worst = 0.0;
  std::size_t n = 0;
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id)) continue;
    const double err = std::abs(sp.p1(id) - mc[id]);
    sum += err;
    worst = std::max(worst, err);
    ++n;
  }
  // Reconvergent fanout can push individual nodes far off (up to ~0.5),
  // but the model must be right on average and never out of range.
  EXPECT_LT(sum / static_cast<double>(n), 0.10);
  EXPECT_LE(worst, 0.5 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProbVsMonteCarlo,
                         ::testing::Values(3, 7, 12, 19, 42, 64, 91, 107));

TEST(ProbVsMonteCarlo, ExactOnFanoutFreeTrees) {
  // Without reconvergence the independence model is exact.
  Netlist nl;
  const std::vector<NodeId> ins = add_inputs(nl, 8, "x");
  const NodeId a = nl.add_gate(GateType::And, "a", {ins[0], ins[1]});
  const NodeId b = nl.add_gate(GateType::Or, "b", {ins[2], ins[3]});
  const NodeId c = nl.add_gate(GateType::Xor, "c", {ins[4], ins[5]});
  const NodeId d = nl.add_gate(GateType::Nand, "d", {ins[6], ins[7]});
  const NodeId e = nl.add_gate(GateType::Or, "e", {a, b});
  const NodeId f = nl.add_gate(GateType::And, "f", {c, d});
  const NodeId g = nl.add_gate(GateType::Xor, "g", {e, f});
  nl.mark_output(g);
  const SignalProb sp(nl);
  const auto mc = monte_carlo_p1(nl, 1 << 8, 5);  // exhaustive-equivalent
  // Compare against exhaustive simulation instead of sampling.
  const auto exact = simulated_one_probability(nl, exhaustive_patterns(8));
  for (NodeId id : {a, b, c, d, e, f, g}) {
    EXPECT_NEAR(sp.p1(id), exact[id], 1e-12) << nl.node(id).name;
  }
  (void)mc;
}

TEST(Benchmarks, RareNodesExistAtTableIPth) {
  // The mechanism the paper exploits must exist in every benchmark: at its
  // Table I threshold each circuit exposes a non-empty candidate set.
  for (const BenchmarkSpec& spec : iscas85_specs()) {
    const Netlist nl = make_benchmark(spec.name);
    const SignalProb sp(nl);
    EXPECT_FALSE(find_candidates(nl, sp, spec.pth).empty()) << spec.name;
  }
}

}  // namespace
}  // namespace tz
