// Adversarial tests for tz::verify: every CheckId has a corruption test that
// plants exactly that defect (via the friend test peers) and asserts the
// checker names it, plus zero-violation gates over the real benchmarks and a
// checked-vs-unchecked salvage A/B proving the TZ_CHECK hooks are pure
// observers (bit-identical flow results). The Camp* CheckIds are covered by
// their own corruption tests in campaign_test.cpp next to the driver tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "atpg/fault_sim_backend.hpp"
#include "core/flow_engine.hpp"
#include "core/report.hpp"
#include "gen/iscas.hpp"
#include "netlist/bench_io.hpp"
#include "sat/solver.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"
#include "verify/verify.hpp"

namespace tz {

// The corruption hatches. Declared friends of Netlist/EvalPlan so the tests
// can plant a single targeted defect without the public API repairing the
// bookkeeping around it.
struct NetlistTestPeer {
  static std::vector<Node>& nodes(Netlist& nl) { return nl.nodes_; }
  static std::vector<NodeId>& inputs(Netlist& nl) { return nl.inputs_; }
  static std::vector<NodeId>& outputs(Netlist& nl) { return nl.outputs_; }
  static std::vector<NodeId>& dffs(Netlist& nl) { return nl.dffs_; }
  static std::unordered_map<std::string, NodeId>& by_name(Netlist& nl) {
    return nl.by_name_;
  }
  static std::size_t& live_count(Netlist& nl) { return nl.live_count_; }
};

struct PlanTestPeer {
  static std::vector<EvalOp>& ops(EvalPlan& p) { return p.ops_; }
  static std::vector<NodeId>& node_of(EvalPlan& p) { return p.node_of_; }
  static std::vector<SlotId>& slot_of(EvalPlan& p) { return p.slot_of_; }
  static std::vector<std::uint32_t>& fanin_offset(EvalPlan& p) {
    return p.fanin_offset_;
  }
  static std::vector<SlotId>& fanin_slots(EvalPlan& p) {
    return p.fanin_slots_;
  }
  static std::vector<std::uint32_t>& fanout_offset(EvalPlan& p) {
    return p.fanout_offset_;
  }
  static std::vector<SlotId>& fanout_slots(EvalPlan& p) {
    return p.fanout_slots_;
  }
  static std::vector<SlotId>& input_slots(EvalPlan& p) {
    return p.input_slots_;
  }
  static std::vector<SlotId>& output_slots(EvalPlan& p) {
    return p.output_slots_;
  }
};

namespace sat {

struct SatTestPeer {
  static ClauseArena& arena(Solver& s) { return s.arena_; }
  static std::vector<ClauseRef>& clauses(Solver& s) { return s.clauses_; }
  static std::vector<ClauseRef>& learnts(Solver& s) { return s.learnts_; }
  static std::vector<std::vector<Solver::Watcher>>& watches(Solver& s) {
    return s.watches_;
  }
  static std::vector<std::vector<Solver::BinWatcher>>& bin_watches(Solver& s) {
    return s.bin_watches_;
  }
};

}  // namespace sat

namespace {

using test::two_gate;

// Restores the TZ_CHECK env default on scope exit so a fatal assertion in
// one test cannot leak a forced mode into the aggregated runner.
struct CheckGuard {
  explicit CheckGuard(int mode) { set_check_enabled(mode); }
  ~CheckGuard() { set_check_enabled(-1); }
  CheckGuard(const CheckGuard&) = delete;
  CheckGuard& operator=(const CheckGuard&) = delete;
};

void erase_one(std::vector<NodeId>& v, NodeId x) {
  const auto it = std::find(v.begin(), v.end(), x);
  ASSERT_NE(it, v.end());
  v.erase(it);
}

// ---- zero-violation gates ---------------------------------------------------

TEST(VerifyGate, BenchmarksAreClean) {
  for (const char* name : {"c880", "c1908", "c6288"}) {
    const Netlist nl = make_benchmark(name);
    const VerifyReport nrep = NetlistChecker::run(nl);  // strict: no orphans
    EXPECT_TRUE(nrep.ok()) << name << "\n" << nrep.format();
    const EvalPlan plan(nl);
    const VerifyReport prep = PlanChecker::run(plan, nl);
    EXPECT_TRUE(prep.ok()) << name << "\n" << prep.format();
  }
}

TEST(VerifyGate, Rand100kIsClean) {
  const Netlist nl = make_benchmark("rand100k");
  const VerifyReport nrep = NetlistChecker::run(nl);
  EXPECT_TRUE(nrep.ok()) << nrep.format();
  const EvalPlan plan(nl);
  const VerifyReport prep = PlanChecker::run(plan, nl);
  EXPECT_TRUE(prep.ok()) << prep.format();
}

TEST(VerifyGate, ReportFormatNamesTheCheck) {
  Netlist nl = two_gate();
  ++NetlistTestPeer::live_count(nl);
  const VerifyReport r = NetlistChecker::run(nl);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.format().find("net-live-count"), std::string::npos)
      << r.format();
  EXPECT_EQ(r.count(CheckId::NetLiveCount), 1u);
}

// ---- NetlistChecker corruption tests (one per check id) --------------------

TEST(NetlistCheckerCorrupt, DanglingFanin) {
  Netlist nl = two_gate();
  const NodeId h = nl.find("h");
  NetlistTestPeer::nodes(nl)[h].fanin[0] = 999;  // far out of range
  const VerifyReport r = NetlistChecker::run(nl);
  EXPECT_TRUE(r.has(CheckId::NetDanglingFanin)) << r.format();
}

TEST(NetlistCheckerCorrupt, DuplicateName) {
  Netlist nl = two_gate();
  NetlistTestPeer::by_name(nl).erase("g");  // live node lost from the index
  const VerifyReport r = NetlistChecker::run(nl);
  EXPECT_TRUE(r.has(CheckId::NetDuplicateName)) << r.format();

  Netlist nl2 = two_gate();
  // Stale entry: the name maps to a different node than the one carrying it.
  NetlistTestPeer::by_name(nl2)["g"] = nl2.find("h");
  const VerifyReport r2 = NetlistChecker::run(nl2);
  EXPECT_TRUE(r2.has(CheckId::NetDuplicateName)) << r2.format();
}

TEST(NetlistCheckerCorrupt, BadArity) {
  Netlist nl = two_gate();
  const NodeId g = nl.find("g");
  const NodeId b = nl.find("b");
  // Drop one leg of the AND (and its fanout record, so only arity is wrong).
  NetlistTestPeer::nodes(nl)[g].fanin.pop_back();
  erase_one(NetlistTestPeer::nodes(nl)[b].fanout, g);
  const VerifyReport r = NetlistChecker::run(nl);
  EXPECT_TRUE(r.has(CheckId::NetBadArity)) << r.format();
}

TEST(NetlistCheckerCorrupt, InputList) {
  Netlist nl = two_gate();
  NetlistTestPeer::inputs(nl).pop_back();  // live Input no longer listed
  const VerifyReport r = NetlistChecker::run(nl);
  EXPECT_TRUE(r.has(CheckId::NetInputList)) << r.format();
}

TEST(NetlistCheckerCorrupt, OutputList) {
  Netlist nl = two_gate();
  NetlistTestPeer::outputs(nl).push_back(nl.outputs()[0]);  // duplicate PO
  const VerifyReport r = NetlistChecker::run(nl);
  EXPECT_TRUE(r.has(CheckId::NetOutputList)) << r.format();
}

TEST(NetlistCheckerCorrupt, DffList) {
  Netlist nl = two_gate();
  const NodeId q = nl.add_gate(GateType::Dff, "q", {nl.find("g")});
  nl.mark_output(q);
  ASSERT_TRUE(NetlistChecker::run(nl).ok());
  NetlistTestPeer::dffs(nl).clear();  // live DFF no longer listed
  const VerifyReport r = NetlistChecker::run(nl);
  EXPECT_TRUE(r.has(CheckId::NetDffList)) << r.format();
}

TEST(NetlistCheckerCorrupt, FanoutSync) {
  Netlist nl = two_gate();
  const NodeId g = nl.find("g");
  const NodeId h = nl.find("h");
  erase_one(NetlistTestPeer::nodes(nl)[g].fanout, h);  // h still reads g
  const VerifyReport r = NetlistChecker::run(nl);
  EXPECT_TRUE(r.has(CheckId::NetFanoutSync)) << r.format();
}

TEST(NetlistCheckerCorrupt, PhantomFanout) {
  Netlist nl = two_gate();
  // 'a' records reader h, but h reads only g.
  NetlistTestPeer::nodes(nl)[nl.find("a")].fanout.push_back(nl.find("h"));
  const VerifyReport r = NetlistChecker::run(nl);
  EXPECT_TRUE(r.has(CheckId::NetPhantomFanout)) << r.format();
}

TEST(NetlistCheckerCorrupt, Cycle) {
  Netlist nl = two_gate();
  const NodeId a = nl.find("a");
  const NodeId g = nl.find("g");
  const NodeId h = nl.find("h");
  // Rewire g's first leg from a to h (edge-consistent: both fanin and fanout
  // are updated), creating the combinational loop g -> h -> g.
  NetlistTestPeer::nodes(nl)[g].fanin[0] = h;
  erase_one(NetlistTestPeer::nodes(nl)[a].fanout, g);
  NetlistTestPeer::nodes(nl)[h].fanout.push_back(g);
  const VerifyReport r = NetlistChecker::run(nl);
  EXPECT_TRUE(r.has(CheckId::NetCycle)) << r.format();
  EXPECT_FALSE(r.has(CheckId::NetFanoutSync)) << r.format();
}

TEST(NetlistCheckerCorrupt, OrphanStrictOnly) {
  Netlist nl = two_gate();
  nl.add_gate(GateType::And, "orph", {nl.find("a"), nl.find("b")});
  const VerifyReport strict = NetlistChecker::run(nl);
  EXPECT_TRUE(strict.has(CheckId::NetOrphan)) << strict.format();
  // The FlowEngine boundary option accepts mid-surgery unread gates.
  const VerifyReport lax =
      NetlistChecker::run(nl, {.allow_unread_gates = true});
  EXPECT_FALSE(lax.has(CheckId::NetOrphan)) << lax.format();
}

TEST(NetlistCheckerCorrupt, LiveCount) {
  Netlist nl = two_gate();
  ++NetlistTestPeer::live_count(nl);
  const VerifyReport r = NetlistChecker::run(nl);
  EXPECT_TRUE(r.has(CheckId::NetLiveCount)) << r.format();
}

// ---- PlanChecker corruption tests (one per check id) -----------------------

TEST(PlanCheckerCorrupt, SlotBijection) {
  const Netlist nl = two_gate();
  EvalPlan p(nl);
  PlanTestPeer::slot_of(p)[nl.find("g")] = kNoSlot;
  const VerifyReport r = PlanChecker::run(p, nl);
  EXPECT_TRUE(r.has(CheckId::PlanSlotBijection)) << r.format();
}

TEST(PlanCheckerCorrupt, Opcode) {
  const Netlist nl = two_gate();
  EvalPlan p(nl);
  const SlotId sg = p.slot_of(nl.find("g"));
  ASSERT_EQ(p.op(sg), EvalOp::And2);
  PlanTestPeer::ops(p)[sg] = EvalOp::Or2;  // same arity, wrong function
  const VerifyReport r = PlanChecker::run(p, nl);
  EXPECT_TRUE(r.has(CheckId::PlanOpcode)) << r.format();
}

TEST(PlanCheckerCorrupt, CsrBounds) {
  const Netlist nl = two_gate();
  EvalPlan p(nl);
  PlanTestPeer::fanin_offset(p).back() += 3;  // closes past the edge array
  const VerifyReport r = PlanChecker::run(p, nl);
  EXPECT_TRUE(r.has(CheckId::PlanCsrBounds)) << r.format();
}

TEST(PlanCheckerCorrupt, CsrStale) {
  const Netlist nl = two_gate();
  EvalPlan p(nl);
  const SlotId sh = p.slot_of(nl.find("h"));
  // h's single fanin row now reads 'a'; the netlist still reads 'g'.
  PlanTestPeer::fanin_slots(p)[PlanTestPeer::fanin_offset(p)[sh]] =
      p.slot_of(nl.find("a"));
  const VerifyReport r = PlanChecker::run(p, nl);
  EXPECT_TRUE(r.has(CheckId::PlanCsrStale)) << r.format();
}

TEST(PlanCheckerCorrupt, FanoutSync) {
  const Netlist nl = two_gate();
  EvalPlan p(nl);
  const SlotId sg = p.slot_of(nl.find("g"));
  ASSERT_EQ(p.fanout(sg).size(), 1u);  // schedules h
  // g's fanout row now schedules 'a' instead of its real reader h.
  PlanTestPeer::fanout_slots(p)[PlanTestPeer::fanout_offset(p)[sg]] =
      p.slot_of(nl.find("a"));
  const VerifyReport r = PlanChecker::run(p, nl);
  EXPECT_TRUE(r.has(CheckId::PlanFanoutSync)) << r.format();
}

TEST(PlanCheckerCorrupt, TopoOrder) {
  // NOT-chain so both swapped slots carry identical 1-entry fanin rows: the
  // swap leaves every pointwise netlist agreement intact and violates only
  // the slot-order-is-topo-order rule.
  Netlist nl("chain");
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_gate(GateType::Not, "g1", {a});
  const NodeId g2 = nl.add_gate(GateType::Not, "g2", {g1});
  nl.mark_output(g2);
  EvalPlan p(nl);
  const SlotId sa = p.slot_of(a);
  const SlotId s1 = p.slot_of(g1);
  const SlotId s2 = p.slot_of(g2);
  ASSERT_LT(s1, s2);
  // Relabel the two NOT slots completely — node maps, fanin rows, fanout CSR
  // and the output list all agree on the swapped placement, so the one
  // remaining defect is that g2's fanin slot no longer precedes it.
  std::swap(PlanTestPeer::node_of(p)[s1], PlanTestPeer::node_of(p)[s2]);
  std::swap(PlanTestPeer::slot_of(p)[g1], PlanTestPeer::slot_of(p)[g2]);
  PlanTestPeer::fanin_slots(p)[PlanTestPeer::fanin_offset(p)[s1]] = s2;
  PlanTestPeer::fanin_slots(p)[PlanTestPeer::fanin_offset(p)[s2]] = sa;
  PlanTestPeer::fanout_offset(p) = {0, 1, 1, 2};
  PlanTestPeer::fanout_slots(p) = {s2, s1};
  PlanTestPeer::output_slots(p)[0] = s1;
  const VerifyReport r = PlanChecker::run(p, nl);
  EXPECT_TRUE(r.has(CheckId::PlanTopoOrder)) << r.format();
  EXPECT_EQ(r.violations.size(), 1u) << r.format();
}

TEST(PlanCheckerCorrupt, IoLists) {
  const Netlist nl = two_gate();
  EvalPlan p(nl);
  PlanTestPeer::output_slots(p).pop_back();
  const VerifyReport r = PlanChecker::run(p, nl);
  EXPECT_TRUE(r.has(CheckId::PlanIoLists)) << r.format();

  EvalPlan p2(nl);
  PlanTestPeer::input_slots(p2)[0] = p2.slot_of(nl.find("g"));  // wrong slot
  const VerifyReport r2 = PlanChecker::run(p2, nl);
  EXPECT_TRUE(r2.has(CheckId::PlanIoLists)) << r2.format();
}

TEST(PlanCheckerCorrupt, BlockLayout) {
  const Netlist nl = two_gate();
  auto plan = std::make_shared<EvalPlan>(nl);
  NodeValues vals(plan, 4);
  EXPECT_TRUE(check_values_layout(vals).ok());
  // Grow the plan under the matrix: a consistent extra Dead slot, so only
  // the rows-vs-slots contract is broken.
  PlanTestPeer::ops(*plan).push_back(EvalOp::Dead);
  PlanTestPeer::node_of(*plan).push_back(kNoNode);
  PlanTestPeer::fanin_offset(*plan).push_back(
      PlanTestPeer::fanin_offset(*plan).back());
  PlanTestPeer::fanout_offset(*plan).push_back(
      PlanTestPeer::fanout_offset(*plan).back());
  const VerifyReport r = check_values_layout(vals);
  EXPECT_TRUE(r.has(CheckId::PlanBlockLayout)) << r.format();
}

TEST(PlanCheckerCorrupt, Equivalence) {
  const Netlist nl = two_gate();
  EvalPlan p(nl);
  const SlotId sg = p.slot_of(nl.find("g"));
  // Swap the AND's fanin row order: fanin order is semantic (MUX), so the
  // canonical per-node diff against a fresh recompile must flag it.
  auto& row = PlanTestPeer::fanin_slots(p);
  const std::uint32_t off = PlanTestPeer::fanin_offset(p)[sg];
  std::swap(row[off], row[off + 1]);
  const VerifyReport r = PlanChecker::run(p, nl);
  EXPECT_TRUE(r.has(CheckId::PlanEquivalence)) << r.format();
  // The diff is skippable for hot boundaries that only need local checks.
  const VerifyReport local = PlanChecker::run(p, nl, {.equivalence = false});
  EXPECT_FALSE(local.has(CheckId::PlanEquivalence));
}

// ---- FaultPackChecker corruption tests (one per check id) ------------------

// A healthy two-lane packed batch over the two_gate plan: lane 0 = g
// stuck-at-0, lane 1 = h stuck-at-1. The vectors own the storage the
// FaultPackBatch spans alias, so each test corrupts one field and re-runs
// the checker on the same fixture.
struct PackBatchFixture {
  Netlist nl = two_gate();
  EvalPlan plan{nl};
  std::uint64_t lanes_mask = 0b11;
  std::uint64_t sa1_lanes = 0b10;
  std::vector<NodeId> lane_node;
  std::vector<std::size_t> lane_fault{0, 1};
  std::vector<SlotId> site_slot;
  std::vector<std::uint64_t> site_mask{0b01, 0b10};
  std::vector<std::uint64_t> site_force_one{0b00, 0b10};
  std::vector<char> dropped;

  PackBatchFixture() {
    const NodeId g = nl.find("g");
    const NodeId h = nl.find("h");
    lane_node = {g, h};
    site_slot = {plan.slot_of(g), plan.slot_of(h)};
  }

  FaultPackBatch batch() const {
    return {.plan = &plan,
            .lanes_mask = lanes_mask,
            .sa1_lanes = sa1_lanes,
            .lane_node = lane_node,
            .lane_fault = lane_fault,
            .site_slot = site_slot,
            .site_mask = site_mask,
            .site_force_one = site_force_one,
            .dropped = dropped};
  }
};

TEST(FaultPackCorrupt, HealthyBatchPasses) {
  const PackBatchFixture f;
  const VerifyReport r = FaultPackChecker::run(f.batch());
  EXPECT_TRUE(r.ok()) << r.format();
}

TEST(FaultPackCorrupt, SiteSlot) {
  // Move lane 0's forcing mask to the slot of input `a`: still a valid,
  // ascending site list, but the lane is now forced somewhere that is not
  // its fault site (and never at its own site).
  PackBatchFixture f;
  f.site_slot[0] = f.plan.slot_of(f.nl.find("a"));
  const VerifyReport r = FaultPackChecker::run(f.batch());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.has(CheckId::PackSiteSlot)) << r.format();

  // Polarity flavor: forcing a one on a stuck-at-0 lane.
  PackBatchFixture g;
  g.site_force_one[0] = 0b01;
  const VerifyReport r2 = FaultPackChecker::run(g.batch());
  EXPECT_TRUE(r2.has(CheckId::PackSiteSlot)) << r2.format();
}

TEST(FaultPackCorrupt, LaneBleed) {
  // Forcing a padding lane would overwrite the good machine that padding
  // lanes carry.
  PackBatchFixture f;
  f.site_mask[1] = 0b110;
  const VerifyReport r = FaultPackChecker::run(f.batch());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.has(CheckId::PackLaneBleed)) << r.format();
  EXPECT_FALSE(r.has(CheckId::PackSiteSlot)) << r.format();

  // Overlap flavor: two sites forcing the same lane is cross-fault bleed.
  PackBatchFixture g;
  g.site_mask[1] = 0b11;
  g.site_force_one[1] = 0b10;
  const VerifyReport r2 = FaultPackChecker::run(g.batch());
  EXPECT_TRUE(r2.has(CheckId::PackLaneBleed)) << r2.format();
}

TEST(FaultPackCorrupt, LaneBijection) {
  // One fault occupying two lanes breaks the drop-list <-> lane bijection.
  PackBatchFixture f;
  f.lane_fault = {0, 0};
  const VerifyReport r = FaultPackChecker::run(f.batch());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.has(CheckId::PackLaneBijection)) << r.format();

  // A lane simulating an already-dropped fault wastes the lane and lets a
  // stale detection flag alias a live one.
  PackBatchFixture g;
  g.dropped = {1, 0};
  const VerifyReport r2 = FaultPackChecker::run(g.batch());
  EXPECT_TRUE(r2.has(CheckId::PackLaneBijection)) << r2.format();

  // Non-dense live lanes: the packed sweep assumes low bits.
  PackBatchFixture h;
  h.lanes_mask = 0b101;
  const VerifyReport r3 = FaultPackChecker::run(h.batch());
  EXPECT_TRUE(r3.has(CheckId::PackLaneBijection)) << r3.format();
}

TEST(FaultPackChecked, EngineBatchesPassUnderCheck) {
  // The packed engine builds a FaultPackBatch per 64-fault batch when
  // TZ_CHECK is armed; on a clean benchmark every batch must satisfy the
  // checker (no throw) and the checked run must be bit-identical to the
  // unchecked one — the hook is an observer.
  const Netlist nl = make_benchmark("c880");
  const auto faults = collapse_faults(nl, fault_universe(nl));
  const PatternSet ps = random_patterns(nl.inputs().size(), 96, 5);

  std::vector<bool> plain_flags;
  std::vector<std::vector<std::uint64_t>> plain_matrix;
  {
    CheckGuard off(0);
    const auto backend = make_fault_sim_backend(nl, FaultSimMode::Packed);
    backend->set_patterns(ps);
    plain_flags = backend->simulate(faults);
    plain_matrix = backend->detection_matrix(faults);
  }
  CheckGuard on(1);
  const auto backend = make_fault_sim_backend(nl, FaultSimMode::Packed);
  backend->set_patterns(ps);
  EXPECT_EQ(backend->simulate(faults), plain_flags);
  EXPECT_EQ(backend->detection_matrix(faults), plain_matrix);
  std::vector<bool> detected(faults.size(), false);
  EXPECT_GT(backend->drop_sim(faults, detected), 0u);
  EXPECT_EQ(detected, plain_flags);
}

// ---- structured JSON report -------------------------------------------------

/// A small solver with one ternary and one binary clause, plus a solved
/// pigeonhole instance for the "battle-worn" clean check (reduce_db and
/// arena GC have both had a chance to run by then).
sat::Solver small_sat_fixture() {
  sat::Solver s;
  const sat::Var a = s.new_var();
  const sat::Var b = s.new_var();
  const sat::Var c = s.new_var();
  s.add_ternary(sat::Lit::make(a), sat::Lit::make(b), sat::Lit::make(c));
  s.add_binary(~sat::Lit::make(a), ~sat::Lit::make(b));
  return s;
}

TEST(SatCheckerCorrupt, CleanSolverPasses) {
  sat::Solver s = small_sat_fixture();
  EXPECT_TRUE(SatChecker::run(s).ok());

  // After a learning-heavy solve the watch structures have been rebuilt by
  // propagation swaps, clause-DB reduction and possibly arena GC.
  sat::Solver hard;
  std::vector<std::vector<sat::Var>> p(7, std::vector<sat::Var>(6));
  for (auto& row : p) {
    for (sat::Var& v : row) v = hard.new_var();
  }
  for (int i = 0; i < 7; ++i) {
    std::vector<sat::Lit> cl;
    for (int j = 0; j < 6; ++j) cl.push_back(sat::Lit::make(p[i][j]));
    hard.add_clause(cl);
  }
  for (int j = 0; j < 6; ++j) {
    for (int i = 0; i < 7; ++i) {
      for (int k = i + 1; k < 7; ++k) {
        hard.add_binary(~sat::Lit::make(p[i][j]), ~sat::Lit::make(p[k][j]));
      }
    }
  }
  EXPECT_EQ(hard.solve(), sat::SolveResult::Unsat);
  const VerifyReport r = SatChecker::run(hard);
  EXPECT_TRUE(r.ok()) << r.format();
}

TEST(SatCheckerCorrupt, ArenaBounds) {
  sat::Solver s = small_sat_fixture();
  sat::SatTestPeer::clauses(s).push_back(
      sat::SatTestPeer::arena(s).size_words() + 17);
  const VerifyReport r = SatChecker::run(s);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.has(CheckId::SatArenaBounds)) << r.format();
}

TEST(SatCheckerCorrupt, WatchBijection) {
  // Drop one watcher of the ternary clause: a propagation on that literal
  // will silently skip the clause.
  sat::Solver s = small_sat_fixture();
  auto& watches = sat::SatTestPeer::watches(s);
  for (auto& list : watches) {
    if (!list.empty()) {
      list.clear();
      break;
    }
  }
  const VerifyReport r = SatChecker::run(s);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.has(CheckId::SatWatchBijection)) << r.format();

  // Blocker flavor: a blocker that is not even a literal of the clause.
  sat::Solver s2 = small_sat_fixture();
  for (auto& list : sat::SatTestPeer::watches(s2)) {
    if (!list.empty()) {
      list[0].blocker = sat::Lit::make(s2.new_var());
      break;
    }
  }
  const VerifyReport r2 = SatChecker::run(s2);
  EXPECT_TRUE(r2.has(CheckId::SatWatchBijection)) << r2.format();
}

TEST(SatCheckerCorrupt, BinaryWatch) {
  // Flip the implied literal of one binary watcher: propagation would then
  // enqueue the falsified literal instead of the implied one.
  sat::Solver s = small_sat_fixture();
  for (auto& list : sat::SatTestPeer::bin_watches(s)) {
    if (!list.empty()) {
      list[0].other = ~list[0].other;
      break;
    }
  }
  const VerifyReport r = SatChecker::run(s);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.has(CheckId::SatBinaryWatch)) << r.format();
}

TEST(VerifyReportJson, GoldenOutput) {
  // tz_check --json embeds to_json() verbatim; the exact shape (stable
  // kebab-case check ids, null for unset node/slot, escaped messages) is the
  // machine-readable contract CI diffs against.
  VerifyReport r;
  EXPECT_EQ(r.to_json(), "{\"ok\": true, \"violations\": []}");
  r.add(CheckId::PackSiteSlot, "say \"hi\"\n", 3, 7);
  r.add(CheckId::NetCycle, "loop");
  EXPECT_EQ(r.to_json(),
            "{\"ok\": false, \"violations\": ["
            "{\"check\": \"pack-site-slot\", \"node\": 3, \"slot\": 7, "
            "\"message\": \"say \\\"hi\\\"\\n\"}, "
            "{\"check\": \"net-cycle\", \"node\": null, \"slot\": null, "
            "\"message\": \"loop\"}]}");
}

// ---- values-layout positive coverage ---------------------------------------

TEST(ValuesLayout, CleanLayoutsPass) {
  EXPECT_TRUE(check_values_layout(NodeValues(10, 4)).ok());  // legacy
  const Netlist nl = make_benchmark("c880");
  auto plan = std::make_shared<EvalPlan>(nl);
  EXPECT_TRUE(check_values_layout(NodeValues(plan, 64)).ok());
  const NodeValues striped(plan, 4096, ValueLayout::Striped);
  EXPECT_TRUE(check_values_layout(striped).ok());
}

// ---- verify_or_throw / flow integration ------------------------------------

TEST(VerifyOrThrow, CarriesPhaseAndReport) {
  Netlist nl = two_gate();
  ++NetlistTestPeer::live_count(nl);
  try {
    verify_or_throw(nl, nullptr, "unit test");
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.phase(), "unit test");
    EXPECT_TRUE(e.report().has(CheckId::NetLiveCount));
    EXPECT_NE(std::string(e.what()).find("net-live-count"),
              std::string::npos);
  }
}

TEST(VerifyFlow, C6288SalvageCheckedBitIdentical) {
  // The acceptance run: salvage on the c6288-class multiplier with the
  // per-commit checkers (including the plan-equivalence diff) enabled must
  // produce the bit-identical result of the unchecked run — the hooks are
  // observers, not participants.
  const Netlist original = make_benchmark("c6288");
  const DefenderSuite suite =
      make_defender_suite(original, FlowOptions::atpg_only_defender());
  const PowerModel pm(CellLibrary::tsmc65_like());
  SalvageOptions sopt;
  sopt.pth = spec_for("c6288").pth;

  SalvageResult plain, checked;
  {
    CheckGuard off(0);
    FlowEngine engine(original, suite, pm);
    plain = engine.salvage(sopt);
  }
  {
    CheckGuard on(1);
    FlowEngine engine(original, suite, pm);
    checked = engine.salvage(sopt);  // throws VerifyError on any violation
  }
  EXPECT_EQ(plain.candidates, checked.candidates);
  EXPECT_EQ(plain.rejected, checked.rejected);
  EXPECT_EQ(plain.expendable_gates, checked.expendable_gates);
  ASSERT_EQ(plain.accepted.size(), checked.accepted.size());
  for (std::size_t i = 0; i < plain.accepted.size(); ++i) {
    EXPECT_EQ(plain.accepted[i].node_name, checked.accepted[i].node_name);
    EXPECT_EQ(plain.accepted[i].tie_value, checked.accepted[i].tie_value);
  }
  EXPECT_EQ(write_bench_string(plain.modified),
            write_bench_string(checked.modified));
}

TEST(VerifyFlow, C880CommitsAreChecked) {
  // c880 accepts removals under its Table I threshold, so this run proves
  // the commit hook actually fires on accepted ties (not just a no-op pass).
  const Netlist original = make_benchmark("c880");
  const DefenderSuite suite =
      make_defender_suite(original, FlowOptions::atpg_only_defender());
  const PowerModel pm(CellLibrary::tsmc65_like());
  SalvageOptions sopt;
  sopt.pth = spec_for("c880").pth;
  CheckGuard on(1);
  FlowEngine engine(original, suite, pm);
  const SalvageResult r = engine.salvage(sopt);
  EXPECT_GT(r.accepted.size(), 0u);
  EXPECT_TRUE(NetlistChecker::run(r.modified).ok());
}

}  // namespace
}  // namespace tz
