// Shared fixtures for the TrojanZero test suites: tiny helper netlists and
// deterministic RNG seeding. Keep helpers here instead of copy-pasting them
// across suite files.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atpg/fault_sim_backend.hpp"
#include "netlist/netlist.hpp"
#include "sim/eval_plan.hpp"

namespace tz::test {

// Canonical seed for tests that need an arbitrary-but-fixed RNG stream.
inline constexpr std::uint64_t kTestSeed = 0xC0FFEE;

// Forces the compiled-plan path on (1) / off (0) for the guarded scope and
// restores the TZ_EVAL_PLAN environment default afterwards — RAII so a throw
// or fatal assertion cannot leak a forced mode into later tests of the
// aggregated runner.
struct PlanModeGuard {
  explicit PlanModeGuard(int mode) { set_eval_plan_enabled(mode); }
  ~PlanModeGuard() { set_eval_plan_enabled(-1); }
  PlanModeGuard(const PlanModeGuard&) = delete;
  PlanModeGuard& operator=(const PlanModeGuard&) = delete;
};

// Forces the fault-simulation backend (0 = Auto, 1 = Event, 2 = Packed) for
// the guarded scope and restores the TZ_FAULT_MODE environment default
// afterwards — same RAII discipline as PlanModeGuard.
struct FaultModeGuard {
  explicit FaultModeGuard(int mode) { set_fault_sim_mode(mode); }
  ~FaultModeGuard() { set_fault_sim_mode(-1); }
  FaultModeGuard(const FaultModeGuard&) = delete;
  FaultModeGuard& operator=(const FaultModeGuard&) = delete;
};

// Adds `n` primary inputs named <prefix>0 .. <prefix>{n-1}.
inline std::vector<NodeId> add_inputs(Netlist& nl, int n,
                                      const std::string& prefix = "i") {
  std::vector<NodeId> ins;
  ins.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ins.push_back(nl.add_input(prefix + std::to_string(i)));
  }
  return ins;
}

// Minimal two-gate netlist: h = NOT(g), g = AND(a, b), output h.
inline Netlist two_gate() {
  Netlist nl("two");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::And, "g", {a, b});
  const NodeId h = nl.add_gate(GateType::Not, "h", {g});
  nl.mark_output(h);
  return nl;
}

// Eight-input testbed with two rare AND triggers (r0, r1), a XOR victim `v`
// feeding output o, and a second output o2 keeping the triggers alive.
inline Netlist payload_testbed(NodeId* victim, std::vector<NodeId>* rare) {
  Netlist nl;
  const std::vector<NodeId> ins = add_inputs(nl, 8);
  const NodeId r0 = nl.add_gate(GateType::And, "r0", {ins[0], ins[1]});
  const NodeId r1 = nl.add_gate(GateType::And, "r1", {ins[2], ins[3]});
  const NodeId v = nl.add_gate(GateType::Xor, "v", {ins[4], ins[5]});
  const NodeId o = nl.add_gate(GateType::Xor, "o", {v, ins[6]});
  const NodeId o2 = nl.add_gate(GateType::Or, "o2", {r0, r1, ins[7]});
  nl.mark_output(o);
  nl.mark_output(o2);
  *victim = v;
  *rare = {r0, r1};
  return nl;
}

}  // namespace tz::test
