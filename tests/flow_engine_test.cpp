// Tests for the incremental FlowEngine layer: SuiteOracle equivalence with
// full functional_test, PowerTracker parity with from-scratch analysis,
// tie undo logs, and the dummy-balancing loop's cap discipline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/flow_engine.hpp"
#include "core/ht_library.hpp"
#include "core/insertion.hpp"
#include "core/report.hpp"
#include "gen/iscas.hpp"
#include "netlist/rewrite.hpp"
#include "prob/signal_prob.hpp"
#include "sim/simulator.hpp"
#include "tech/power_tracker.hpp"
#include "testutil.hpp"
#include "util/thread_pool.hpp"

namespace tz {
namespace {

PowerModel model() { return PowerModel(CellLibrary::tsmc65_like()); }

TestGenOptions defender_defaults() { return FlowOptions::atpg_only_defender(); }

// ---- SuiteOracle -----------------------------------------------------------

TEST(SuiteOracle, TieVerdictMatchesFullFunctionalTest) {
  // For every Algorithm 1 candidate, the oracle's cone re-simulation must
  // agree with streaming the whole suite over the tied netlist.
  for (const char* name : {"c432", "c880"}) {
    const Netlist original = make_benchmark(name);
    const DefenderSuite suite = make_defender_suite(original, defender_defaults());
    const Netlist work = original.compact();
    const SignalProb sp(work);
    const auto cands = find_candidates(work, sp, spec_for(name).pth, false);
    ASSERT_FALSE(cands.empty());
    SuiteOracle oracle(work, suite);
    ASSERT_FALSE(oracle.sequential());
    for (const Candidate& c : cands) {
      Netlist reference = work;
      tie_to_constant(reference, c.node, c.tie_value);
      const bool expect_visible = !functional_test(reference, suite);
      EXPECT_EQ(oracle.tie_visible(c.node, c.tie_value), expect_visible)
          << name << " candidate " << work.node(c.node).name;
    }
  }
}

TEST(SuiteOracle, CommittedTiesKeepLaterVerdictsExact) {
  // Accepted ties must leave the cache describing the updated netlist, so a
  // later candidate in the same run is judged against the right baseline.
  const Netlist original = make_benchmark("c880");
  const DefenderSuite suite = make_defender_suite(original, defender_defaults());
  Netlist work = original.compact();
  const SignalProb sp(work);
  const auto cands = find_candidates(work, sp, 0.992, false);
  SuiteOracle oracle(work, suite);
  for (const Candidate& c : cands) {
    if (!work.is_alive(c.node)) continue;
    Netlist reference = work;
    tie_to_constant(reference, c.node, c.tie_value);
    const bool expect_visible = !functional_test(reference, suite);
    ASSERT_EQ(oracle.tie_visible(c.node, c.tie_value), expect_visible);
    if (!expect_visible) {
      oracle.commit_tie(c.node, c.tie_value);
      tie_to_constant(work, c.node, c.tie_value);
      oracle.resync_structure();
    }
  }
  EXPECT_TRUE(functional_test(work, suite));
}

TEST(SuiteOracle, HtVerdictMatchesMaterializedFunctionalTest) {
  // The pre-materialisation replay (trigger AND + counter + masked payload
  // deviation) must agree with building the HT and streaming the suite.
  const Netlist original = make_benchmark("c880");
  const DefenderSuite suite = make_defender_suite(original, defender_defaults());
  const PowerModel pm = model();
  const SalvageResult sal = salvage_power_area(original, suite, pm, {.pth = 0.992});
  const Netlist& nprime = sal.modified;
  const SignalProb sp(nprime);
  const auto locations = payload_locations(nprime, 6);
  SuiteOracle oracle(nprime, suite);
  ASSERT_FALSE(oracle.sequential());
  int checked = 0;
  for (const TrojanDesc& desc :
       {counter_trojan(2), counter_trojan(3), counter_trojan(0, 2)}) {
    for (NodeId victim : locations) {
      const auto pool = trigger_pool(nprime, sp, 0.05, victim);
      if (pool.size() < static_cast<std::size_t>(desc.trigger_width)) continue;
      Netlist reference = nprime;
      build_trojan(reference, desc, pool, victim);
      const bool expect_visible = !functional_test(reference, suite);
      EXPECT_EQ(oracle.ht_visible(
                    std::span<const NodeId>(
                        pool.data(),
                        static_cast<std::size_t>(desc.trigger_width)),
                    desc.counter_bits, victim),
                expect_visible)
          << desc.name << " at " << nprime.node(victim).name;
      ++checked;
    }
  }
  EXPECT_GT(checked, 5);
}

// ---- TieUndo ---------------------------------------------------------------

TEST(TieUndo, RevertRestoresStructureAndFunction) {
  const Netlist original = make_benchmark("c432").compact();
  const DefenderSuite suite = make_defender_suite(original, defender_defaults());
  Netlist work = original;
  const SignalProb sp(work);
  const auto cands = find_candidates(work, sp, 0.975, false);
  ASSERT_GE(cands.size(), 3u);
  const PatternSet probe = random_patterns(work.inputs().size(), 128, 7);
  const PatternSet golden = BitSimulator(original).outputs(probe);
  for (const Candidate& c : cands) {
    TieUndo undo;
    const TieResult tie = tie_to_constant(work, c.node, c.tie_value, &undo);
    EXPECT_EQ(undo.removed.size(), tie.gates_removed);
    undo_tie(work, undo);
    work.check();
  }
  // After every tie was reverted the netlist computes the original function
  // and carries the original cell population.
  EXPECT_EQ(work.live_count(), original.live_count());
  EXPECT_EQ(work.gate_count(), original.gate_count());
  EXPECT_TRUE(BitSimulator::responses_equal(BitSimulator(work).outputs(probe),
                                            golden));
}

TEST(TieUndo, RevertHandlesTiedPrimaryOutput) {
  // include_outputs salvage ties an output: the tie cell takes over the PO
  // slot; the revert must hand it back.
  Netlist nl("po");
  const auto ins = test::add_inputs(nl, 2);
  const NodeId g = nl.add_gate(GateType::And, "g", {ins[0], ins[1]});
  const NodeId o = nl.add_gate(GateType::Or, "o", {g, ins[0]});
  nl.mark_output(o);
  TieUndo undo;
  tie_to_constant(nl, o, true, &undo);
  EXPECT_NE(nl.outputs()[0], o);
  undo_tie(nl, undo);
  nl.check();
  ASSERT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.outputs()[0], o);
  EXPECT_EQ(nl.find("g"), g);
}

// ---- PowerTracker ----------------------------------------------------------

TEST(PowerTracker, MatchesAnalyzeThroughHtInsertionAndDummies) {
  const Netlist original = make_benchmark("c880");
  const DefenderSuite suite = make_defender_suite(original, defender_defaults());
  const PowerModel pm = model();
  const SalvageResult sal = salvage_power_area(original, suite, pm, {.pth = 0.992});
  Netlist work = sal.modified;
  PowerTracker tracker(work, pm);
  {
    const PowerReport full = pm.analyze(work).totals;
    const PowerReport inc = tracker.totals();
    EXPECT_NEAR(inc.dynamic_uw, full.dynamic_uw, 1e-9);
    EXPECT_NEAR(inc.leakage_uw, full.leakage_uw, 1e-9);
    EXPECT_NEAR(inc.area_ge, full.area_ge, 1e-9);
  }
  // Materialise a counter HT and resync: the tracker must agree with a
  // from-scratch analysis including the DFF probability fixpoint.
  const SignalProb sp(work);
  const auto locations = payload_locations(work, 4);
  ASSERT_FALSE(locations.empty());
  const NodeId victim = locations[0];
  const auto pool = trigger_pool(work, sp, 0.05, victim);
  ASSERT_GE(pool.size(), 2u);
  const std::size_t size_before = work.raw_size();
  build_trojan(work, counter_trojan(3), pool, victim);
  std::vector<NodeId> fresh;
  for (NodeId id = static_cast<NodeId>(size_before); id < work.raw_size(); ++id) {
    fresh.push_back(id);
  }
  std::vector<NodeId> cap_changed(pool.begin(), pool.begin() + 2);
  cap_changed.push_back(victim);
  tracker.resync(fresh, cap_changed);
  {
    const PowerReport full = pm.analyze(work).totals;
    const PowerReport inc = tracker.totals();
    EXPECT_NEAR(inc.dynamic_uw, full.dynamic_uw, 1e-9);
    EXPECT_NEAR(inc.leakage_uw, full.leakage_uw, 1e-9);
    EXPECT_NEAR(inc.area_ge, full.area_ge, 1e-9);
  }
  // And through a handful of dummy gates (tie-fed and PI-fed flavours).
  for (int k = 0; k < 4; ++k) {
    const std::size_t before = work.raw_size();
    const NodeId src =
        k % 2 ? work.const_node(false) : work.inputs()[k % work.inputs().size()];
    add_dummy_gate(work, src, k % 2 ? GateType::Nand : GateType::Buf, "tz_dummy");
    fresh.clear();
    for (NodeId id = static_cast<NodeId>(before); id < work.raw_size(); ++id) {
      fresh.push_back(id);
    }
    tracker.resync(fresh, {{src}});
  }
  const PowerReport full = pm.analyze(work).totals;
  const PowerReport inc = tracker.totals();
  EXPECT_NEAR(inc.dynamic_uw, full.dynamic_uw, 1e-9);
  EXPECT_NEAR(inc.leakage_uw, full.leakage_uw, 1e-9);
  EXPECT_NEAR(inc.area_ge, full.area_ge, 1e-9);
}

TEST(PowerTracker, RollbackRestoresRowsBitExact) {
  Netlist nl = make_benchmark("c432");
  const PowerModel pm = model();
  PowerTracker tracker(nl, pm);
  const PowerReport before = tracker.totals();
  tracker.begin();
  const std::size_t size_before = nl.raw_size();
  const NodeId src = nl.inputs()[0];
  add_dummy_gate(nl, src, GateType::Xor, "tz_dummy");
  std::vector<NodeId> fresh;
  for (NodeId id = static_cast<NodeId>(size_before); id < nl.raw_size(); ++id) {
    fresh.push_back(id);
  }
  tracker.resync(fresh, {{src}});
  EXPECT_GT(tracker.totals().total_uw(), before.total_uw());
  tracker.rollback();
  for (NodeId id = static_cast<NodeId>(nl.raw_size()); id-- > size_before;) {
    if (nl.is_alive(id)) nl.remove_node(id);
  }
  const PowerReport after = tracker.totals();
  EXPECT_EQ(after.dynamic_uw, before.dynamic_uw);  // bit-exact, not NEAR
  EXPECT_EQ(after.leakage_uw, before.leakage_uw);
  EXPECT_EQ(after.area_ge, before.area_ge);
}

// ---- balance_with_dummies --------------------------------------------------

TEST(BalanceWithDummies, NeverExceedsAnyComponentCap) {
  const Netlist original = make_benchmark("c880");
  const DefenderSuite suite = make_defender_suite(original, defender_defaults());
  const PowerModel pm = model();
  const PowerReport threshold = pm.analyze(original).totals;
  const SalvageResult sal = salvage_power_area(original, suite, pm, {.pth = 0.992});
  Netlist work = sal.modified;
  PowerTracker tracker(work, pm);
  InsertionOptions opt;
  const std::size_t added = balance_with_dummies(work, tracker, threshold, opt);
  EXPECT_GT(added, 0u);
  const PowerReport p = pm.analyze(work).totals;
  EXPECT_LE(p.total_uw(), threshold.total_uw());
  EXPECT_LE(p.dynamic_uw, threshold.dynamic_uw);
  EXPECT_LE(p.leakage_uw, threshold.leakage_uw);
  EXPECT_LE(p.area_ge, threshold.area_ge);
  // Tracker stayed in sync through the whole loop.
  EXPECT_NEAR(tracker.totals().total_uw(), p.total_uw(), 1e-9);
}

TEST(BalanceWithDummies, PicksFlavourByDeficitShape) {
  const PowerModel pm = model();
  auto first_dummy_fed_by_tie = [&](const PowerReport& threshold) {
    Netlist nl = make_benchmark("c432");
    PowerTracker tracker(nl, pm);
    const std::size_t size_before = nl.raw_size();
    InsertionOptions opt;
    const std::size_t added = balance_with_dummies(nl, tracker, threshold, opt);
    EXPECT_GT(added, 0u);
    for (NodeId id = static_cast<NodeId>(size_before); id < nl.raw_size();
         ++id) {
      if (!nl.is_alive(id) || is_const(nl.node(id).type)) continue;
      return is_const(nl.node(nl.node(id).fanin[0]).type);
    }
    ADD_FAILURE() << "no dummy placed";
    return false;
  };
  const PowerReport base = pm.analyze(make_benchmark("c432")).totals;
  // Leakage-shaped deficit (dp == dl): tie-fed gates top up leakage without
  // burning the dynamic budget.
  PowerReport leak_shape = base;
  leak_shape.leakage_uw += 0.5;
  leak_shape.area_ge += 50.0;
  EXPECT_TRUE(first_dummy_fed_by_tie(leak_shape));
  // Dynamic-shaped deficit (dp >> dl): PI-fed gates burn switching power.
  // (A little leakage headroom is required — every cell leaks — but the
  // dominant gap is dynamic, so the PI-fed menu leads.)
  PowerReport dyn_shape = base;
  dyn_shape.dynamic_uw += 1.0;
  dyn_shape.leakage_uw += 0.1;
  dyn_shape.area_ge += 50.0;
  EXPECT_FALSE(first_dummy_fed_by_tie(dyn_shape));
}

// ---- Algorithm 2 cap regression (the headline bugfix) ----------------------

TEST(Insertion, SuccessImpliesComponentwisePowerCaps) {
  // The TrojanZero contract: N'' never exceeds N on total, dynamic or
  // leakage power, or area. The pre-fix code let leakage drift to 1.02x and
  // never checked dynamic at all.
  for (const char* name : {"c432", "c499", "c880", "c1908", "c3540"}) {
    const FlowResult r = run_trojanzero_flow(name);
    ASSERT_TRUE(r.insertion.success) << name;
    const PowerReport& p = r.insertion.power;
    const PowerReport& t = r.insertion.threshold;
    EXPECT_LE(p.total_uw(), t.total_uw()) << name;
    EXPECT_LE(p.dynamic_uw, t.dynamic_uw) << name;
    EXPECT_LE(p.leakage_uw, t.leakage_uw) << name;
    EXPECT_LE(p.area_ge, t.area_ge) << name;
  }
}

// ---- trigger pool invariants after the rewrite -----------------------------

TEST(TriggerPool, RareListFilterMatchesAndStaysLoopFree) {
  const Netlist original = make_benchmark("c880");
  const DefenderSuite suite = make_defender_suite(original, defender_defaults());
  const PowerModel pm = model();
  const SalvageResult sal = salvage_power_area(original, suite, pm, {.pth = 0.992});
  const Netlist& nprime = sal.modified;
  const SignalProb sp(nprime);
  const auto rare = rare_net_list(nprime, sp, 0.05);
  ASSERT_FALSE(rare.empty());
  for (std::size_t i = 1; i < rare.size(); ++i) {
    EXPECT_LE(sp.p1(rare[i - 1]), sp.p1(rare[i]));
  }
  for (NodeId victim : payload_locations(nprime, 8)) {
    const auto mask = downstream_mask(nprime, victim);
    const auto pool = trigger_pool(nprime, sp, 0.05, victim);
    // Never a net in the victim's transitive fanout (loop freedom)...
    for (NodeId p : pool) EXPECT_FALSE(mask[p]);
    // ...and exactly the rare list minus the masked nets, order preserved.
    std::vector<NodeId> expect;
    for (NodeId id : rare) {
      if (!mask[id]) expect.push_back(id);
    }
    EXPECT_EQ(pool, expect);
  }
}

// ---- parallel candidate scans: bit-identical to the sequential engine ------

void expect_same_salvage(const SalvageResult& a, const SalvageResult& b,
                         const std::string& label) {
  EXPECT_EQ(a.candidates, b.candidates) << label;
  EXPECT_EQ(a.rejected, b.rejected) << label;
  EXPECT_EQ(a.expendable_gates, b.expendable_gates) << label;
  ASSERT_EQ(a.accepted.size(), b.accepted.size()) << label;
  for (std::size_t i = 0; i < a.accepted.size(); ++i) {
    EXPECT_EQ(a.accepted[i].node_name, b.accepted[i].node_name) << label;
    EXPECT_EQ(a.accepted[i].tie_value, b.accepted[i].tie_value) << label;
    EXPECT_EQ(a.accepted[i].probability, b.accepted[i].probability) << label;
    EXPECT_EQ(a.accepted[i].gates_removed, b.accepted[i].gates_removed)
        << label;
  }
  // Reported power must be bit-identical, not merely close.
  EXPECT_EQ(a.power_after.dynamic_uw, b.power_after.dynamic_uw) << label;
  EXPECT_EQ(a.power_after.leakage_uw, b.power_after.leakage_uw) << label;
  EXPECT_EQ(a.power_after.area_ge, b.power_after.area_ge) << label;
}

void expect_same_insertion(const InsertionResult& a, const InsertionResult& b,
                           const std::string& label) {
  EXPECT_EQ(a.success, b.success) << label;
  EXPECT_EQ(a.ht_name, b.ht_name) << label;
  EXPECT_EQ(a.victim_name, b.victim_name) << label;
  EXPECT_EQ(a.dummy_gates, b.dummy_gates) << label;
  EXPECT_EQ(a.tried_hts, b.tried_hts) << label;
  EXPECT_EQ(a.tried_locations, b.tried_locations) << label;
  EXPECT_EQ(a.fail_build, b.fail_build) << label;
  EXPECT_EQ(a.fail_test, b.fail_test) << label;
  EXPECT_EQ(a.fail_caps, b.fail_caps) << label;
  EXPECT_EQ(a.trigger_p1, b.trigger_p1) << label;
  EXPECT_EQ(a.power.dynamic_uw, b.power.dynamic_uw) << label;
  EXPECT_EQ(a.power.leakage_uw, b.power.leakage_uw) << label;
  EXPECT_EQ(a.power.area_ge, b.power.area_ge) << label;
  if (a.success && b.success) {
    EXPECT_EQ(a.infected.live_count(), b.infected.live_count()) << label;
    EXPECT_EQ(a.infected.gate_count(), b.infected.gate_count()) << label;
  }
}

TEST(ParallelScan, BitIdenticalAcrossThreadCounts) {
  // The ordered reduction promises: accepted candidates, HT/victim/dummy
  // choices and reported power never depend on the worker count. c6288 is
  // the >2k-gate array-multiplier stress (rare cut relaxed as in the bench,
  // so the trigger search walks a real pool).
  struct Case {
    const char* name;
    double rare_p1;
    std::vector<TrojanDesc> library;
  };
  const Case cases[] = {
      {"c880", 0.05, {}},
      {"c1908", 0.05, {}},
      {"c6288", 0.25, {counter_trojan(5), counter_trojan(3)}},
  };
  for (const Case& c : cases) {
    const Netlist original = make_benchmark(c.name);
    const DefenderSuite suite =
        make_defender_suite(original, defender_defaults());
    const PowerModel pm = model();
    SalvageOptions sopt;
    sopt.pth = spec_for(c.name).pth;
    InsertionOptions iopt;
    iopt.rare_p1 = c.rare_p1;
    iopt.library = c.library;

    sopt.threads = 1;
    iopt.threads = 1;
    const SalvageResult s1 = salvage_power_area(original, suite, pm, sopt);
    const InsertionResult r1 = insert_trojan(original, s1, suite, pm, iopt);

    for (const std::size_t t : {std::size_t{2}, std::size_t{8}}) {
      const std::string label =
          std::string(c.name) + " threads=" + std::to_string(t);
      sopt.threads = t;
      iopt.threads = t;
      const SalvageResult st = salvage_power_area(original, suite, pm, sopt);
      expect_same_salvage(s1, st, label);
      const InsertionResult rt = insert_trojan(original, st, suite, pm, iopt);
      expect_same_insertion(r1, rt, label);
    }
  }
}

TEST(EvalPlanFlow, BitIdenticalToLegacyEnginesAcrossThreadCounts) {
  // The compiled-plan engines must reproduce the legacy Node-walking flow
  // exactly — accepted/rejected ties, HT/victim/dummy choices and reported
  // power — sequentially and at every thread count (the TZ_EVAL_PLAN=0/1 CI
  // smoke diffs the same property on the Table-1 output).
  struct Case {
    const char* name;
    double rare_p1;
    std::vector<TrojanDesc> library;
  };
  const Case cases[] = {
      {"c880", 0.05, {}},
      {"c1908", 0.05, {}},
      {"c6288", 0.25, {counter_trojan(5), counter_trojan(3)}},
  };
  for (const Case& c : cases) {
    const Netlist original = make_benchmark(c.name);
    const DefenderSuite suite =
        make_defender_suite(original, defender_defaults());
    const PowerModel pm = model();
    SalvageOptions sopt;
    sopt.pth = spec_for(c.name).pth;
    InsertionOptions iopt;
    iopt.rare_p1 = c.rare_p1;
    iopt.library = c.library;

    SalvageResult s_legacy;
    InsertionResult r_legacy;
    {
      const test::PlanModeGuard legacy(0);
      sopt.threads = 1;
      iopt.threads = 1;
      s_legacy = salvage_power_area(original, suite, pm, sopt);
      r_legacy = insert_trojan(original, s_legacy, suite, pm, iopt);
    }

    const test::PlanModeGuard plan(1);
    for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      const std::string label =
          std::string(c.name) + " plan threads=" + std::to_string(t);
      sopt.threads = t;
      iopt.threads = t;
      const SalvageResult st = salvage_power_area(original, suite, pm, sopt);
      expect_same_salvage(s_legacy, st, label);
      const InsertionResult rt = insert_trojan(original, st, suite, pm, iopt);
      expect_same_insertion(r_legacy, rt, label);
    }
  }
}

TEST(EvalPlanFlow, FaultBackendBitIdenticalThroughFlow) {
  // The fault-simulation backend must be invisible end to end: the defender
  // suite ATPG generates and every downstream flow verdict (accepted ties,
  // HT/victim choices, power numbers) are bit-identical across Event/Packed
  // x TZ_EVAL_PLAN=0/1 x threads {1, 2, 8}.
  const Netlist original = make_benchmark("c880");
  const PowerModel pm = model();
  SalvageOptions sopt;
  sopt.pth = spec_for("c880").pth;
  InsertionOptions iopt;
  iopt.rare_p1 = 0.05;

  const auto expect_same_suite = [](const DefenderSuite& a,
                                    const DefenderSuite& b,
                                    const std::string& label) {
    ASSERT_EQ(a.algorithms.size(), b.algorithms.size()) << label;
    for (std::size_t i = 0; i < a.algorithms.size(); ++i) {
      EXPECT_TRUE(BitSimulator::responses_equal(a.algorithms[i].patterns,
                                                b.algorithms[i].patterns))
          << label << " algorithm " << a.algorithms[i].name;
      EXPECT_TRUE(BitSimulator::responses_equal(a.algorithms[i].golden,
                                                b.algorithms[i].golden))
          << label << " algorithm " << a.algorithms[i].name;
    }
  };

  // Baseline: event backend, legacy simulation path, sequential.
  DefenderSuite base_suite;
  SalvageResult s_base;
  InsertionResult r_base;
  {
    const test::FaultModeGuard event(1);
    const test::PlanModeGuard legacy(0);
    base_suite = make_defender_suite(original, defender_defaults());
    sopt.threads = 1;
    iopt.threads = 1;
    s_base = salvage_power_area(original, base_suite, pm, sopt);
    r_base = insert_trojan(original, s_base, base_suite, pm, iopt);
  }

  struct Combo {
    int fault_mode;
    int plan_mode;
    std::vector<std::size_t> threads;
  };
  const Combo combos[] = {
      {2, 0, {1}},        // packed on the legacy path
      {2, 1, {1, 2, 8}},  // packed on the compiled plan, every worker count
      {1, 1, {8}},        // event on the compiled plan, parallel
  };
  for (const Combo& c : combos) {
    const test::FaultModeGuard fguard(c.fault_mode);
    const test::PlanModeGuard pguard(c.plan_mode);
    const std::string base_label = "fault_mode=" + std::to_string(c.fault_mode) +
                                   " plan=" + std::to_string(c.plan_mode);
    const DefenderSuite suite =
        make_defender_suite(original, defender_defaults());
    expect_same_suite(suite, base_suite, base_label);
    for (const std::size_t t : c.threads) {
      const std::string label = base_label + " threads=" + std::to_string(t);
      sopt.threads = t;
      iopt.threads = t;
      const SalvageResult st = salvage_power_area(original, suite, pm, sopt);
      expect_same_salvage(s_base, st, label);
      const InsertionResult rt = insert_trojan(original, st, suite, pm, iopt);
      expect_same_insertion(r_base, rt, label);
    }
  }
}

TEST(EvalPlanFlow, HundredKGateBitIdentityAcrossModesAndThreads) {
  // The 100k-gate scale proof for the compiled-plan engines on a generated
  // circuit: a fixed random DAG ("rand100k", 100,000 gates) with a bounded
  // random defender suite (full ATPG is out of the tier-1 budget at this
  // size). Three layers of bit-identity across TZ_EVAL_PLAN=0/1, the second
  // also across threads {1, 2, 8}:
  //  1. raw simulation: primary-output responses at a row width wide enough
  //     that the plan path goes stripe-major;
  //  2. a bounded Algorithm 1 walk (first 32 invisible ties, committed
  //     through the oracle's incremental plan patch) must accept the same
  //     ties and produce the same salvaged netlist;
  //  3. Algorithm 2 into that salvaged slack must pick the same HT, victim
  //     and power numbers at every mode x thread combination.
  const Netlist nl = make_benchmark("rand100k");
  ASSERT_EQ(nl.gate_count(), 100000u);
  DefenderSuite suite;
  {
    DefenderTestSet ts;
    ts.name = "random";
    ts.patterns = random_patterns(nl.inputs().size(), 256, 11);
    ts.golden = BitSimulator(nl).outputs(ts.patterns);
    suite.algorithms.push_back(std::move(ts));
  }

  // Layer 1: outputs at 6400 patterns (100 words) — block_words splits this
  // width at 100k slots, so the plan run is genuinely stripe-major.
  const PatternSet wide = random_patterns(nl.inputs().size(), 6400, 3);
  PatternSet legacy_out, plan_out;
  {
    const test::PlanModeGuard legacy(0);
    legacy_out = BitSimulator(nl).outputs(wide);
  }
  {
    const test::PlanModeGuard plan(1);
    BitSimulator sim(nl);
    ASSERT_NE(sim.plan(), nullptr);
    ASSERT_LT(sim.plan()->block_words(wide.num_words()), wide.num_words());
    plan_out = sim.outputs(wide);
  }
  ASSERT_TRUE(BitSimulator::responses_equal(legacy_out, plan_out));

  // Layer 2: bounded salvage walk per mode.
  const auto mini_salvage = [&](int mode) {
    const test::PlanModeGuard guard(mode);
    Netlist work = nl;
    const SignalProb sp(work);
    const auto cands = find_candidates(work, sp, 0.99999999, false);
    SuiteOracle oracle(work, suite);
    std::vector<std::string> accepted;
    for (const Candidate& c : cands) {
      if (accepted.size() >= 32) break;
      if (!work.is_alive(c.node)) continue;
      if (oracle.tie_visible(c.node, c.tie_value)) continue;
      accepted.push_back(work.node(c.node).name);
      oracle.commit_tie(c.node, c.tie_value);
      tie_to_constant(work, c.node, c.tie_value);
      oracle.resync_structure();
    }
    work.sweep_dead_gates();
    EXPECT_TRUE(functional_test(work, suite)) << "mode " << mode;
    return std::pair(std::move(accepted), work.compact());
  };
  auto [acc_legacy, salvaged_legacy] = mini_salvage(0);
  auto [acc_plan, salvaged_plan] = mini_salvage(1);
  ASSERT_GE(acc_legacy.size(), 16u);
  EXPECT_EQ(acc_legacy, acc_plan);
  EXPECT_EQ(salvaged_legacy.gate_count(), salvaged_plan.gate_count());

  // Layer 3: insertion into the salvaged slack, every mode x thread combo.
  SalvageResult sr;
  sr.modified = std::move(salvaged_legacy);
  const PowerModel pm = model();
  InsertionOptions iopt;
  iopt.rare_p1 = 0.05;
  iopt.library = {counter_trojan(3), counter_trojan(2)};
  InsertionResult baseline;
  {
    const test::PlanModeGuard legacy(0);
    iopt.threads = 1;
    baseline = insert_trojan(nl, sr, suite, pm, iopt);
  }
  EXPECT_TRUE(baseline.success);
  for (const int mode : {0, 1}) {
    const test::PlanModeGuard guard(mode);
    for (const std::size_t t : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}}) {
      if (mode == 0 && t == 1) continue;  // the baseline itself
      iopt.threads = t;
      const InsertionResult r = insert_trojan(nl, sr, suite, pm, iopt);
      expect_same_insertion(baseline, r,
                            "rand100k mode=" + std::to_string(mode) +
                                " threads=" + std::to_string(t));
    }
  }
}

TEST(ParallelScan, ConcurrentOracleMatchesBuiltinScratch) {
  // The const judging API on per-thread scratch must agree verdict-for-
  // verdict with the single-threaded convenience overloads.
  const Netlist original = make_benchmark("c880");
  const DefenderSuite suite =
      make_defender_suite(original, defender_defaults());
  const Netlist work = original.compact();
  const SignalProb sp(work);
  const auto cands = find_candidates(work, sp, 0.992, false);
  ASSERT_FALSE(cands.empty());
  SuiteOracle oracle(work, suite);
  ASSERT_FALSE(oracle.sequential());
  std::vector<char> expected(cands.size(), 0);
  for (std::size_t i = 0; i < cands.size(); ++i) {
    expected[i] = oracle.tie_visible(cands[i].node, cands[i].tie_value);
  }
  ThreadPool pool(4);
  std::vector<ConeScratch> scratch;
  for (std::size_t w = 0; w < pool.size(); ++w) scratch.emplace_back(oracle);
  std::vector<char> got(cands.size(), 0);
  const SuiteOracle& shared = oracle;
  pool.parallel_for(cands.size(), [&](std::size_t i, std::size_t w) {
    got[i] =
        shared.tie_visible(cands[i].node, cands[i].tie_value, scratch[w]);
  });
  EXPECT_EQ(got, expected);
}

// ---- consolidated collision-avoidance naming -------------------------------

TEST(UniqueName, SharedSchemeHandlesCollisions) {
  Netlist nl("names");
  const NodeId a = nl.add_input("g");
  EXPECT_EQ(nl.unique_name("h"), "h");
  EXPECT_EQ(nl.unique_name("g"), "g_1");
  nl.add_gate(GateType::Not, "g_1", {a});
  EXPECT_EQ(nl.unique_name("g"), "g_2");
  // build_trojan and add_dummy_gate derive names through the same utility:
  // pre-existing collisions must not throw.
  NodeId victim;
  std::vector<NodeId> rare;
  Netlist tb = test::payload_testbed(&victim, &rare);
  tb.add_gate(GateType::Not, "ht_payload", {tb.inputs()[0]});
  tb.mark_output(tb.find("ht_payload"));
  const InsertedHT ht = build_trojan(tb, counter_trojan(2, 2), rare, victim);
  EXPECT_EQ(tb.node(ht.payload_mux).name, "ht_payload_1");
  const NodeId d1 = add_dummy_gate(tb, tb.inputs()[0], GateType::Buf, "dmy");
  const NodeId d2 = add_dummy_gate(tb, tb.inputs()[0], GateType::Buf, "dmy");
  EXPECT_EQ(tb.node(d1).name, "dmy");
  EXPECT_EQ(tb.node(d2).name, "dmy_1");
}

}  // namespace
}  // namespace tz
