// Tests for the rewrite passes (constant tying / folding).
#include <cstdint>
#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "netlist/rewrite.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"

namespace tz {
namespace {

TEST(TieToConstant, RemovesDeadCone) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId inner = nl.add_gate(GateType::And, "inner", {a, b});
  const NodeId mid = nl.add_gate(GateType::Or, "mid", {inner, a});
  const NodeId out = nl.add_gate(GateType::Xor, "out", {mid, b});
  nl.mark_output(out);
  const TieResult r = tie_to_constant(nl, mid, true);
  // mid itself plus inner (now unread) are gone.
  EXPECT_EQ(r.gates_removed, 2u);
  EXPECT_EQ(nl.find("mid"), kNoNode);
  EXPECT_EQ(nl.find("inner"), kNoNode);
  EXPECT_EQ(nl.node(out).fanin[0], r.tie);
  nl.check();
}

TEST(TieToConstant, SharedFaninSurvives) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId shared = nl.add_gate(GateType::Not, "shared", {a});
  const NodeId victim = nl.add_gate(GateType::Buf, "victim", {shared});
  const NodeId keeper = nl.add_gate(GateType::Buf, "keeper", {shared});
  nl.mark_output(victim);
  nl.mark_output(keeper);
  // victim is an output: tying it retargets the output to the tie cell.
  tie_to_constant(nl, victim, false);
  EXPECT_NE(nl.find("shared"), kNoNode);  // still read by keeper
  EXPECT_NE(nl.find("keeper"), kNoNode);
  nl.check();
}

TEST(TieToConstant, RejectsNonGates) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::Not, "g", {a});
  nl.mark_output(g);
  EXPECT_THROW(tie_to_constant(nl, a, false), std::runtime_error);
}

TEST(PropagateConstants, FoldsBasicIdentities) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId zero = nl.const_node(false);
  const NodeId one = nl.const_node(true);
  const NodeId and0 = nl.add_gate(GateType::And, "and0", {a, zero});
  const NodeId or1 = nl.add_gate(GateType::Or, "or1", {a, one});
  const NodeId xor1 = nl.add_gate(GateType::Xor, "xor1", {a, one});
  const NodeId res = nl.add_gate(GateType::Or, "res", {and0, or1});
  nl.mark_output(res);
  nl.mark_output(xor1);
  propagate_constants(nl);
  // and0 -> 0, or1 -> 1, so res -> 1; xor1 -> NOT a.
  const NodeId res_now = nl.outputs()[0];
  EXPECT_EQ(nl.node(res_now).type, GateType::Const1);
  const NodeId x_now = nl.outputs()[1];
  EXPECT_EQ(nl.node(x_now).type, GateType::Not);
  nl.check();
}

TEST(PropagateConstants, MuxSelectFolds) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId one = nl.const_node(true);
  const NodeId m = nl.add_gate(GateType::Mux, "m", {one, a, b});
  nl.mark_output(m);
  propagate_constants(nl);
  EXPECT_EQ(nl.outputs()[0], b);  // sel=1 selects the second data input
  nl.check();
}

/// Folding never changes functional behaviour.
class FoldEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FoldEquivalence, RandomCircuitWithInjectedConstants) {
  RandomCircuitSpec spec;
  spec.seed = GetParam();
  spec.num_gates = 80;
  Netlist nl = random_circuit(spec);
  // Inject ties into a few gate fanins to give the folder work.
  const NodeId zero = nl.const_node(false);
  const NodeId one = nl.const_node(true);
  int injected = 0;
  for (NodeId id = 0; id < nl.raw_size() && injected < 6; ++id) {
    if (!nl.is_alive(id) || !is_combinational(nl.node(id).type)) continue;
    if (is_const(nl.node(id).type) || nl.node(id).fanin.size() < 2) continue;
    nl.relink_fanin(id, 0, injected % 2 ? one : zero);
    ++injected;
  }
  nl.sweep_dead_gates();
  const Netlist before = nl.compact();
  propagate_constants(nl);
  nl.check();
  const PatternSet ps = random_patterns(nl.inputs().size(), 256, spec.seed);
  const PatternSet a = BitSimulator(before).outputs(ps);
  const PatternSet b = BitSimulator(nl).outputs(ps);
  EXPECT_TRUE(BitSimulator::responses_equal(a, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(TieCellCount, CountsLiveTies) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_EQ(tie_cell_count(nl), 0u);
  nl.const_node(false);
  nl.const_node(true);
  EXPECT_EQ(tie_cell_count(nl), 2u);
}

}  // namespace
}  // namespace tz
