// Tests for the SCOAP testability metrics.
#include <algorithm>
#include <cstdint>
#include <gtest/gtest.h>

#include "gen/iscas.hpp"
#include "prob/scoap.hpp"
#include "prob/signal_prob.hpp"
#include "testutil.hpp"

namespace tz {
namespace {

using test::add_inputs;

TEST(Scoap, PrimaryInputsAreUnitControllable) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  nl.mark_output(nl.add_gate(GateType::Buf, "b", {a}));
  const Scoap sc(nl);
  EXPECT_EQ(sc.cc0(a), 1u);
  EXPECT_EQ(sc.cc1(a), 1u);
}

TEST(Scoap, AndGateControllability) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::And, "g", {a, b});
  nl.mark_output(g);
  const Scoap sc(nl);
  EXPECT_EQ(sc.cc1(g), 3u);  // both inputs to 1: 1+1+1
  EXPECT_EQ(sc.cc0(g), 2u);  // cheapest single input to 0: 1+1
  EXPECT_EQ(sc.co(g), 0u);   // primary output
  // Observing `a` needs b=1: CO(g) + CC1(b) + 1 = 2.
  EXPECT_EQ(sc.co(a), 2u);
}

TEST(Scoap, OrNorNandDuality) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId o = nl.add_gate(GateType::Or, "o", {a, b});
  const NodeId nr = nl.add_gate(GateType::Nor, "nr", {a, b});
  const NodeId nd = nl.add_gate(GateType::Nand, "nd", {a, b});
  nl.mark_output(o);
  nl.mark_output(nr);
  nl.mark_output(nd);
  const Scoap sc(nl);
  EXPECT_EQ(sc.cc0(o), 3u);
  EXPECT_EQ(sc.cc1(o), 2u);
  EXPECT_EQ(sc.cc1(nr), sc.cc0(o));  // NOR1 == OR0
  EXPECT_EQ(sc.cc0(nr), sc.cc1(o));
  EXPECT_EQ(sc.cc0(nd), 3u);
  EXPECT_EQ(sc.cc1(nd), 2u);
}

TEST(Scoap, XorBothPolaritiesCheap) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId x = nl.add_gate(GateType::Xor, "x", {a, b});
  nl.mark_output(x);
  const Scoap sc(nl);
  EXPECT_EQ(sc.cc0(x), 3u);  // 00 or 11: 1+1, plus gate level
  EXPECT_EQ(sc.cc1(x), 3u);
}

TEST(Scoap, ConstantsAreOneSided) {
  Netlist nl;
  nl.add_input("a");
  const NodeId c0 = nl.const_node(false);
  const NodeId g = nl.add_gate(GateType::Buf, "g", {c0});
  nl.mark_output(g);
  const Scoap sc(nl);
  EXPECT_EQ(sc.cc0(c0), 0u);
  EXPECT_EQ(sc.cc1(c0), kScoapInf);
  EXPECT_EQ(sc.cc1(g), kScoapInf);  // saturates through logic
}

TEST(Scoap, DeepChainsCostMore) {
  // AND tree over 8 inputs: CC1 grows with width, CO of a leaf grows too.
  Netlist nl;
  const std::vector<NodeId> ins = add_inputs(nl, 8);
  const NodeId wide = nl.add_gate(GateType::And, "wide", ins);
  const NodeId narrow = nl.add_gate(GateType::And, "narrow", {ins[0], ins[1]});
  nl.mark_output(wide);
  nl.mark_output(narrow);
  const Scoap sc(nl);
  EXPECT_GT(sc.cc1(wide), sc.cc1(narrow));
  EXPECT_EQ(sc.cc1(wide), 9u);  // 8 ones + level
}

TEST(Scoap, MuxSelectObservability) {
  Netlist nl;
  const NodeId s = nl.add_input("s");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId m = nl.add_gate(GateType::Mux, "m", {s, a, b});
  nl.mark_output(m);
  const Scoap sc(nl);
  // Select observable when a != b (cost 2), through one level: 0+2+1.
  EXPECT_EQ(sc.co(s), 3u);
  // Data a observable when s=0: 0+1+1.
  EXPECT_EQ(sc.co(a), 2u);
  EXPECT_EQ(sc.co(b), 2u);
}

TEST(Scoap, DetectCostCombinesControlAndObserve) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::And, "g", {a, b});
  nl.mark_output(g);
  const Scoap sc(nl);
  // sa0 at g: control g to 1 (3) + observe (0) = 3.
  EXPECT_EQ(sc.detect_cost(g, /*stuck_at_one=*/false), 3u);
  // sa1 at g: control g to 0 (2) + observe (0) = 2.
  EXPECT_EQ(sc.detect_cost(g, /*stuck_at_one=*/true), 2u);
}

TEST(Scoap, UnobservableDanglingGate) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId dead = nl.add_gate(GateType::Not, "dead", {a});
  const NodeId live = nl.add_gate(GateType::Buf, "live", {a});
  nl.mark_output(live);
  const Scoap sc(nl);
  EXPECT_EQ(sc.co(dead), kScoapInf);
  EXPECT_LT(sc.co(live), kScoapInf);
}

TEST(Scoap, RareCandidatesAreHardToDetect) {
  // The TrojanZero connection: nodes whose signal probability clears the
  // Table I thresholds must rank among the hardest-to-detect nets by SCOAP
  // too — that is *why* the budgeted defender misses them.
  const Netlist nl = make_benchmark("c880");
  const SignalProb sp(nl);
  const Scoap sc(nl);
  const auto cands = find_candidates(nl, sp, 0.992);
  ASSERT_FALSE(cands.empty());
  // Median detect-cost of candidate ties vs the whole circuit.
  std::vector<std::uint32_t> cand_cost, all_cost;
  for (const Candidate& c : cands) {
    cand_cost.push_back(sc.detect_cost(c.node, c.tie_value));
  }
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (nl.is_alive(id) && is_combinational(nl.node(id).type)) {
      all_cost.push_back(sc.detect_cost(id, false));
    }
  }
  auto median = [](std::vector<std::uint32_t> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  EXPECT_GT(median(cand_cost), median(all_cost));
}

TEST(Scoap, DffChainAccumulatesSequentialDepth) {
  // Two DFFs in series: each stage costs its d-input plus one clock, so the
  // deeper flop must be strictly harder to control than the seed value.
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId q1 = nl.add_gate(GateType::Dff, "q1", {a});
  const NodeId q2 = nl.add_gate(GateType::Dff, "q2", {q1});
  const NodeId o = nl.add_gate(GateType::Buf, "o", {q2});
  nl.mark_output(o);
  const Scoap sc(nl);
  EXPECT_EQ(sc.cc0(q1), 2u);  // PI (1) + one clock
  EXPECT_EQ(sc.cc1(q1), 2u);
  EXPECT_EQ(sc.cc0(q2), 3u);  // q1 (2) + one clock — needs the fixpoint
  EXPECT_EQ(sc.cc1(q2), 3u);
}

TEST(Scoap, DffRefinementSeesLogicCost) {
  // The d-input is a wide AND, created after the DFF in the topological
  // order; the seed of 2 must be replaced by the real cost of the cone.
  Netlist nl;
  const std::vector<NodeId> ins = add_inputs(nl, 4);
  const NodeId tie = nl.const_node(false);
  const NodeId q = nl.add_gate(GateType::Dff, "q", {tie});
  const NodeId d = nl.add_gate(GateType::And, "d", ins);
  nl.relink_fanin(q, 0, d);
  const NodeId o = nl.add_gate(GateType::Buf, "o", {q});
  nl.mark_output(o);
  const Scoap sc(nl);
  EXPECT_EQ(sc.cc1(q), 6u);  // CC1(AND4) = 4 + 1, plus one clock
  EXPECT_EQ(sc.cc0(q), 3u);  // CC0(AND4) = 1 + 1, plus one clock
}

TEST(Scoap, DffFeedbackLoopStaysFiniteAndTerminates) {
  // Toggle flop q' = NOT q: the fixpoint never stabilises, so the bounded
  // iteration must stop on its own and leave finite costs.
  Netlist nl;
  const NodeId tie = nl.const_node(false);
  const NodeId q = nl.add_gate(GateType::Dff, "q", {tie});
  const NodeId n = nl.add_gate(GateType::Not, "n", {q});
  nl.relink_fanin(q, 0, n);
  nl.mark_output(n);
  const Scoap sc(nl);
  EXPECT_LT(sc.cc0(q), kScoapInf);
  EXPECT_LT(sc.cc1(q), kScoapInf);
  EXPECT_GT(sc.cc0(q), 2u);  // refinement did run past the seed
}

TEST(Scoap, AllBenchmarksFinite) {
  for (const BenchmarkSpec& spec : iscas85_specs()) {
    const Netlist nl = make_benchmark(spec.name);
    const Scoap sc(nl);
    // Every primary output must be controllable both ways (the generators
    // produce no stuck outputs) and trivially observable.
    for (NodeId po : nl.outputs()) {
      EXPECT_EQ(sc.co(po), 0u) << spec.name;
      EXPECT_LT(sc.cc0(po), kScoapInf) << spec.name;
      EXPECT_LT(sc.cc1(po), kScoapInf) << spec.name;
    }
  }
}

TEST(Scoap, SaturatingAddNeverOverflows) {
  EXPECT_EQ(Scoap::sat_add(kScoapInf, kScoapInf), kScoapInf);
  EXPECT_EQ(Scoap::sat_add(kScoapInf, 1), kScoapInf);
  EXPECT_EQ(Scoap::sat_add(3, 4), 7u);
}

}  // namespace
}  // namespace tz
