// Tests for the technology library, power model and variation model.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/iscas.hpp"
#include "tech/power_model.hpp"
#include "tech/variation.hpp"
#include "testutil.hpp"

namespace tz {
namespace {

TEST(CellLibrary, ArityScalesAreaAndLeakage) {
  const CellLibrary lib = CellLibrary::tsmc65_like();
  Netlist nl;
  const std::vector<NodeId> ins = test::add_inputs(nl, 4);
  const NodeId n2 = nl.add_gate(GateType::Nand, "n2", {ins[0], ins[1]});
  const NodeId n4 = nl.add_gate(GateType::Nand, "n4", ins);
  nl.mark_output(n2);
  nl.mark_output(n4);
  EXPECT_GT(lib.area_ge(nl.node(n4)), lib.area_ge(nl.node(n2)));
  EXPECT_GT(lib.leakage_nw(nl.node(n4)), lib.leakage_nw(nl.node(n2)));
  EXPECT_DOUBLE_EQ(lib.area_ge(nl.node(n2)), 1.0);  // NAND2 = 1 GE by definition
}

TEST(CellLibrary, SourcesAreFree) {
  const CellLibrary lib = CellLibrary::tsmc65_like();
  Netlist nl;
  const NodeId a = nl.add_input("a");
  EXPECT_DOUBLE_EQ(lib.area_ge(nl.node(a)), 0.0);
  EXPECT_DOUBLE_EQ(lib.leakage_nw(nl.node(a)), 0.0);
}

TEST(PowerModel, LoadCapSumsReaders) {
  const PowerModel pm(CellLibrary::tsmc65_like());
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId g1 = nl.add_gate(GateType::Not, "g1", {a});
  const NodeId g2 = nl.add_gate(GateType::Not, "g2", {a});
  nl.mark_output(g1);
  nl.mark_output(g2);
  const double one_reader = pm.load_cap_ff(nl, g1);   // no readers
  const double two_readers = pm.load_cap_ff(nl, a);
  EXPECT_DOUBLE_EQ(one_reader, 0.0);
  EXPECT_GT(two_readers, 0.0);
}

TEST(PowerModel, AddingGatesIncreasesEverything) {
  const PowerModel pm(CellLibrary::tsmc65_like());
  Netlist nl = make_benchmark("c17");
  const PowerReport before = pm.analyze(nl).totals;
  const NodeId a = nl.inputs()[0];
  nl.add_gate(GateType::Xor, "extra", {a, a});
  const PowerReport after = pm.analyze(nl).totals;
  EXPECT_GT(after.total_uw(), before.total_uw());
  EXPECT_GT(after.leakage_uw, before.leakage_uw);
  EXPECT_GT(after.area_ge, before.area_ge);
}

TEST(PowerModel, DffBurnsClockPowerEvenWhenIdle) {
  const PowerModel pm(CellLibrary::tsmc65_like());
  Netlist nl;
  nl.add_input("a");
  const NodeId zero = nl.const_node(false);
  const NodeId q = nl.add_gate(GateType::Dff, "q", {zero});
  nl.mark_output(q);
  const PowerBreakdown b = pm.analyze(nl);
  EXPECT_GT(b.dynamic_uw[q], 0.0);  // clock pin toggles regardless of data
}

TEST(PowerModel, BreakdownSumsToTotals) {
  const PowerModel pm(CellLibrary::tsmc65_like());
  const Netlist nl = make_benchmark("c432");
  const PowerBreakdown b = pm.analyze(nl);
  double dyn = 0, leak = 0, area = 0;
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    dyn += b.dynamic_uw[id];
    leak += b.leakage_uw[id];
    area += b.area_ge[id];
  }
  EXPECT_NEAR(dyn, b.totals.dynamic_uw, 1e-9);
  EXPECT_NEAR(leak, b.totals.leakage_uw, 1e-9);
  EXPECT_NEAR(area, b.totals.area_ge, 1e-9);
}

TEST(PowerModel, SimulatedActivityTracksAnalytic) {
  const PowerModel pm(CellLibrary::tsmc65_like());
  const Netlist nl = make_benchmark("c880");
  const PowerReport analytic = pm.analyze(nl).totals;
  const PatternSet stim = random_patterns(nl.inputs().size(), 4096, 17);
  const PowerReport simulated = pm.analyze_simulated(nl, stim).totals;
  // Same leakage/area by construction; dynamic within 30% (the analytic
  // model ignores glitching and spatial correlation).
  EXPECT_DOUBLE_EQ(simulated.leakage_uw, analytic.leakage_uw);
  EXPECT_DOUBLE_EQ(simulated.area_ge, analytic.area_ge);
  EXPECT_NEAR(simulated.dynamic_uw / analytic.dynamic_uw, 1.0, 0.3);
}

TEST(PowerModel, BenchmarksLandInPaperRange) {
  // Absolute calibration: HT-free totals within ~3x of Table I's numbers
  // (we match shape, not the authors' testbed).
  const PowerModel pm(CellLibrary::tsmc65_like());
  for (const BenchmarkSpec& spec : iscas85_specs()) {
    if (spec.paper_power_n == 0) continue;  // stress rows outside Table I
    const PowerReport r = pm.analyze(make_benchmark(spec.name)).totals;
    EXPECT_GT(r.total_uw(), spec.paper_power_n / 3.0) << spec.name;
    EXPECT_LT(r.total_uw(), spec.paper_power_n * 3.0) << spec.name;
    EXPECT_GT(r.area_ge, spec.paper_area_n / 3.0) << spec.name;
    EXPECT_LT(r.area_ge, spec.paper_area_n * 3.0) << spec.name;
  }
}

TEST(Variation, DieScalesAreCentered) {
  VariationModel vm(VariationSpec{}, 42);
  double mean = 0;
  const int kDies = 400;
  for (int i = 0; i < kDies; ++i) {
    const DieSample die = vm.sample_die(50);
    double m = 0;
    for (double s : die.leakage_scale) m += s / die.leakage_scale.size();
    mean += m / kDies;
  }
  EXPECT_NEAR(mean, 1.0, 0.02);  // lognormal mean ~ exp(sigma^2/2) ~ 1.003
}

TEST(Variation, MeasurementsJitterAroundNominal) {
  const PowerModel pm(CellLibrary::tsmc65_like());
  const Netlist nl = make_benchmark("c17");
  const PowerBreakdown nom = pm.analyze(nl);
  VariationModel vm(VariationSpec{}, 7);
  double mean = 0;
  const int kDies = 300;
  for (int i = 0; i < kDies; ++i) {
    const DieSample die = vm.sample_die(nl.raw_size());
    mean += vm.measure(nl, nom, die).total_uw() / kDies;
  }
  EXPECT_NEAR(mean / nom.totals.total_uw(), 1.0, 0.05);
}

TEST(Variation, NoisyLeakagePerGateIsPositive) {
  const PowerModel pm(CellLibrary::tsmc65_like());
  const Netlist nl = make_benchmark("c17");
  const PowerBreakdown nom = pm.analyze(nl);
  VariationModel vm(VariationSpec{}, 3);
  const DieSample die = vm.sample_die(nl.raw_size());
  const auto leak = vm.noisy_leakage(nl, nom, die);
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (nl.is_alive(id) && is_combinational(nl.node(id).type)) {
      EXPECT_GT(leak[id], 0.0);
    }
  }
}

TEST(Variation, ZeroSigmaIsDeterministic) {
  VariationSpec spec;
  spec.leakage_sigma = 0;
  spec.dynamic_sigma = 0;
  spec.die_sigma = 0;
  spec.measurement_sigma = 0;
  VariationModel vm(spec, 1);
  const DieSample die = vm.sample_die(10);
  for (double s : die.leakage_scale) EXPECT_DOUBLE_EQ(s, 1.0);
  for (double s : die.dynamic_scale) EXPECT_DOUBLE_EQ(s, 1.0);
  EXPECT_DOUBLE_EQ(die.die_scale, 1.0);
}

}  // namespace
}  // namespace tz
