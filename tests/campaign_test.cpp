// Campaign engine tests (src/campaign/): the deterministic JSON wire
// format, JobSpec identity/resolution, the artifact layer's shared-vs-cold
// bit-identity, grid expansion + sharding, the checkpoint/resume/merge
// byte-identity contract across shard and thread counts (including a
// simulated mid-shard kill with a torn trailing line), the CampaignChecker
// corruption tests (one per Camp* CheckId), and the cgroup CPU-quota
// parsers behind ThreadPool's thread resolution.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/artifacts.hpp"
#include "campaign/driver.hpp"
#include "campaign/job.hpp"
#include "campaign/json.hpp"
#include "core/report.hpp"
#include "gen/iscas.hpp"
#include "util/thread_pool.hpp"
#include "verify/verify.hpp"

namespace tz {
namespace {

namespace fs = std::filesystem;

// Fresh per-test scratch directory under the gtest temp root.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("tz_campaign_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The small multi-circuit grid the scheduler tests sweep: two circuits so
// multi-shard runs exercise both populated and empty shards, two seeds so
// the suite tier of the ArtifactStore holds more than one entry.
CampaignGrid small_grid() {
  CampaignGrid g;
  g.name = "test";
  g.circuits = {"c17", "c432"};
  g.seeds = {0, 11};
  return g;
}

// ------------------------------------------------------------------- JSON

TEST(CampaignJson, DumpIsDeterministicAndParseRoundTrips) {
  Json obj = Json(JsonObject{});
  obj.set("b", 1);
  obj.set("a", Json(JsonArray{Json(true), Json(nullptr), Json("x\"\n")}));
  obj.set("d", 0.1);
  const std::string text = obj.dump();
  // Insertion order, not sorted order; to_chars shortest double.
  EXPECT_EQ(text, "{\"b\":1,\"a\":[true,null,\"x\\\"\\n\"],\"d\":0.1}");
  EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(CampaignJson, NumbersRoundTripExactly) {
  // Shortest-round-trip doubles re-parse to the same bits.
  for (const double v : {0.992, 1.0 / 3.0, 1e-17, 123456.789, -0.0078125}) {
    const std::string text = Json(v).dump();
    EXPECT_EQ(Json::parse(text).as_double(), v) << text;
    EXPECT_EQ(Json::parse(text).dump(), text);
  }
  EXPECT_EQ(Json::parse("9223372036854775807").as_int(),
            INT64_C(9223372036854775807));
}

TEST(CampaignJson, MalformedInputThrowsWithOffset) {
  EXPECT_THROW(Json::parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,2"), std::runtime_error);
  EXPECT_THROW(Json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
  // Typed accessors fail loudly on mismatches.
  EXPECT_THROW(Json::parse("[1]").as_object(), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\":1}").get("b"), std::runtime_error);
}

// ---------------------------------------------------------------- JobSpec

TEST(CampaignJob, SpecResolvesTableDefaultsAndId) {
  JobSpec s;
  s.circuit = "c432";
  const JobSpec r = s.resolved();
  EXPECT_EQ(r.pth, spec_for("c432").pth);
  EXPECT_EQ(r.counter_bits, spec_for("c432").counter_bits);
  EXPECT_EQ(r.seed, TestGenOptions{}.seed);
  EXPECT_EQ(r.trigger_width, 2);
  // threads is intentionally not part of the identity.
  JobSpec t = s;
  t.threads = 8;
  EXPECT_EQ(s.id(), t.id());
  EXPECT_NE(s.id().find("c432|pth="), std::string::npos);
}

TEST(CampaignJob, SpecJsonRoundTripPreservesIdentity) {
  JobSpec s;
  s.circuit = "c880";
  s.seed = 42;
  s.counter_bits = 2;
  s.trigger_width = 4;
  s.defender = "atpg+rand";
  s.order = 'l';
  const JobSpec back = JobSpec::from_json(s.to_json());
  EXPECT_EQ(back.id(), s.id());
  EXPECT_EQ(s.to_json().dump(), back.to_json().dump());
}

TEST(CampaignJob, UnknownDefenderThrows) {
  JobSpec s;
  s.circuit = "c17";
  s.defender = "bogus";
  EXPECT_THROW(s.testgen(), std::runtime_error);
}

// ----------------------------------------------------- FlowResult wire fmt

TEST(CampaignJob, FlowResultJsonRoundTripsByteIdentically) {
  JobSpec s;
  s.circuit = "c17";
  ArtifactStore store;
  const FlowResult r = run_flow_job(s, store);

  // The FlowMeta stamp is populated by the flow itself.
  EXPECT_EQ(r.meta.circuit, "c17");
  EXPECT_EQ(r.meta.seed, TestGenOptions{}.seed);
  EXPECT_GT(r.meta.gates, 0u);
  EXPECT_GT(r.meta.inputs, 0u);
  EXPECT_FALSE(r.meta.suite_patterns.empty());
  EXPECT_GT(r.meta.total_patterns(), 0u);
  EXPECT_FALSE(r.meta.fault_mode.empty());
  EXPECT_GE(r.meta.threads, 1u);
  EXPECT_GT(r.meta.wall_ms, 0.0);

  const std::string wire = flow_result_to_json(r).dump();
  const FlowResult back = flow_result_from_json(Json::parse(wire));
  EXPECT_EQ(flow_result_to_json(back).dump(), wire);
  EXPECT_EQ(back.meta.gates, r.meta.gates);
  EXPECT_EQ(back.meta.suite_patterns, r.meta.suite_patterns);
  EXPECT_EQ(back.atpg_coverage, r.atpg_coverage);
  EXPECT_EQ(back.insertion.success, r.insertion.success);
}

// ---------------------------------------------------------- artifact layer

TEST(CampaignArtifacts, StoreBuildsOnceAndSharesAcrossJobs) {
  ArtifactStore store;
  JobSpec a;
  a.circuit = "c17";
  JobSpec b = a;
  b.counter_bits = 3;  // different HT shape, same circuit + defender suite
  run_flow_job(a, store);
  run_flow_job(b, store);
  EXPECT_EQ(store.circuit_count(), 1u);
  EXPECT_EQ(store.suite_count(), 1u);
  JobSpec c = a;
  c.seed = 7;  // new suite tier entry, same circuit tier entry
  run_flow_job(c, store);
  EXPECT_EQ(store.circuit_count(), 1u);
  EXPECT_EQ(store.suite_count(), 2u);
}

TEST(CampaignArtifacts, SharedJobBitIdenticalToColdFlow) {
  // The core artifact-layer contract: a job run against the shared store
  // (seeded oracle, cached suite/netlist/power) produces byte-for-byte the
  // same wire row as the legacy cold path with the same resolved options.
  for (const char* name : {"c17", "c432"}) {
    JobSpec s;
    s.circuit = name;
    ArtifactStore store;
    run_flow_job(s, store);  // warm the store so the second run shares
    FlowResult shared = run_flow_job(s, store);
    FlowResult cold = run_trojanzero_flow(name, s.flow_options());
    shared.meta.wall_ms = 0.0;
    cold.meta.wall_ms = 0.0;
    EXPECT_EQ(flow_result_to_json(shared).dump(),
              flow_result_to_json(cold).dump())
        << name;
  }
}

TEST(CampaignArtifacts, FingerprintSeparatesSuiteConfigs) {
  TestGenOptions a = FlowOptions::atpg_only_defender();
  TestGenOptions b = a;
  EXPECT_EQ(testgen_fingerprint(a), testgen_fingerprint(b));
  b.seed = 99;
  EXPECT_NE(testgen_fingerprint(a), testgen_fingerprint(b));
  b = a;
  b.random_patterns = 128;
  EXPECT_NE(testgen_fingerprint(a), testgen_fingerprint(b));
}

// ------------------------------------------------------------------- grid

TEST(CampaignGridTest, ExpansionIsCanonicalCrossProduct) {
  CampaignGrid g = small_grid();
  g.counter_bits = {2, 3};
  const std::vector<JobSpec> jobs = g.expand();
  ASSERT_EQ(jobs.size(), 2u * 2u * 2u);
  // Circuits outermost, then seeds, then counter_bits.
  EXPECT_EQ(jobs[0].circuit, "c17");
  EXPECT_EQ(jobs[0].seed, 0u);
  EXPECT_EQ(jobs[0].counter_bits, 2);
  EXPECT_EQ(jobs[1].counter_bits, 3);
  EXPECT_EQ(jobs[2].seed, 11u);
  EXPECT_EQ(jobs[4].circuit, "c432");
  // Expansion is deterministic and ids are unique.
  std::vector<std::string> ids;
  for (const JobSpec& j : jobs) ids.push_back(j.id());
  std::vector<std::string> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(CampaignGridTest, GridJsonRoundTrip) {
  CampaignGrid g = small_grid();
  g.counter_bits = {2, 3};
  g.trigger_widths = {2, 4};
  g.job_threads = 2;
  const CampaignGrid back = CampaignGrid::from_json(g.to_json());
  EXPECT_EQ(back.to_json().dump(), g.to_json().dump());
  EXPECT_EQ(back.expand().size(), g.expand().size());
}

TEST(CampaignGridTest, PresetsExpandToDocumentedSizes) {
  EXPECT_EQ(CampaignGrid::preset("table1").expand().size(),
            iscas85_specs().size());
  EXPECT_EQ(CampaignGrid::preset("fig3").expand().size(), 1u);
  EXPECT_EQ(CampaignGrid::preset("smoke").expand().size(), 8u);
  // The committed >=1k-job campaign config.
  EXPECT_EQ(CampaignGrid::preset("campaign1k").expand().size(), 1024u);
  EXPECT_THROW(CampaignGrid::preset("nope"), std::runtime_error);
}

TEST(CampaignGridTest, ShardingIsByCircuitAndInRange) {
  const std::vector<JobSpec> jobs = CampaignGrid::preset("smoke").expand();
  for (const std::size_t n : {1u, 2u, 4u, 7u}) {
    for (const JobSpec& j : jobs) {
      const std::size_t s = shard_of(j, n);
      EXPECT_LT(s, n);
      // Circuit affinity: every job of a circuit lands on the same shard.
      JobSpec other = j;
      other.seed = j.seed + 1;
      EXPECT_EQ(shard_of(other, n), s);
    }
  }
}

// -------------------------------------------------------- scheduler layer

// Run every shard of `grid` into `dir` and return the merged artifact.
std::string run_and_merge(const CampaignGrid& grid, const fs::path& dir,
                          std::size_t shards, std::size_t threads) {
  for (std::size_t s = 0; s < shards; ++s) {
    CampaignOptions opt;
    opt.out_dir = dir.string();
    opt.shard_index = s;
    opt.shard_count = shards;
    opt.threads = threads;
    const CampaignRunStats stats = run_campaign(grid, opt);
    EXPECT_EQ(stats.failed, 0u);
  }
  return merge_campaign(grid, dir.string(), shards);
}

TEST(CampaignDriver, MergedArtifactByteIdenticalAcrossShardsAndThreads) {
  const CampaignGrid grid = small_grid();
  const fs::path ref_dir = scratch_dir("ref");
  const std::string reference = run_and_merge(grid, ref_dir, 1, 1);
  ASSERT_FALSE(reference.empty());

  // The acceptance matrix: shard counts {2, 4} x thread counts {1, 8} all
  // reproduce the single-shard single-thread bytes (1x8 covers the
  // remaining cell).
  int config = 0;
  for (const std::size_t shards : {2u, 4u}) {
    for (const std::size_t threads : {1u, 8u}) {
      const fs::path dir = scratch_dir("cfg" + std::to_string(config++));
      EXPECT_EQ(run_and_merge(grid, dir, shards, threads), reference)
          << shards << " shards, " << threads << " threads";
    }
  }
  const fs::path dir = scratch_dir("t8");
  EXPECT_EQ(run_and_merge(grid, dir, 1, 8), reference);

  // The artifact parses back into rows in canonical grid order.
  const std::vector<CampaignRow> rows = parse_campaign_artifact(reference);
  const std::vector<JobSpec> jobs = grid.expand();
  ASSERT_EQ(rows.size(), jobs.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].id, jobs[i].id());
    EXPECT_TRUE(rows[i].error.empty());
    EXPECT_EQ(rows[i].result.meta.wall_ms, 0.0);  // zeroed by the merge
  }
}

TEST(CampaignDriver, ResumeAfterInterruptReproducesBytes) {
  const CampaignGrid grid = small_grid();
  const fs::path ref_dir = scratch_dir("resume_ref");
  const std::string reference = run_and_merge(grid, ref_dir, 1, 1);

  // "Kill" the run after two jobs (max_jobs is the interrupt hook), then
  // tear the checkpoint tail the way an interrupted write would.
  const fs::path dir = scratch_dir("resume");
  CampaignOptions opt;
  opt.out_dir = dir.string();
  opt.threads = 1;
  opt.max_jobs = 2;
  CampaignRunStats stats = run_campaign(grid, opt);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.skipped, 0u);
  {
    std::ofstream out(shard_file(dir.string(), 0, 1),
                      std::ios::binary | std::ios::app);
    out << "{\"id\":\"torn-partial-row";  // no newline: a torn tail
  }

  // Not complete yet; status says so.
  std::ostringstream status;
  EXPECT_FALSE(campaign_status(grid, dir.string(), 1, status));
  EXPECT_NE(status.str().find("2/4"), std::string::npos);

  // Restart: the torn tail is truncated, completed jobs are skipped, the
  // remaining jobs run, and the merged bytes match the uninterrupted run.
  opt.max_jobs = 0;
  stats = run_campaign(grid, opt);
  EXPECT_EQ(stats.skipped, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(merge_campaign(grid, dir.string(), 1), reference);

  std::ostringstream done;
  EXPECT_TRUE(campaign_status(grid, dir.string(), 1, done));
}

TEST(CampaignDriver, FailedJobsBecomeErrorRows) {
  CampaignGrid grid;
  grid.name = "err";
  grid.circuits = {"c17"};
  grid.defenders = {"bogus"};  // testgen() throws inside the job
  const fs::path dir = scratch_dir("err");
  CampaignOptions opt;
  opt.out_dir = dir.string();
  opt.threads = 1;
  const CampaignRunStats stats = run_campaign(grid, opt);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 0u);
  const std::vector<CampaignRow> rows =
      parse_campaign_artifact(merge_campaign(grid, dir.string(), 1));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_NE(rows[0].error.find("bogus"), std::string::npos);
}

TEST(CampaignDriver, MergeRequiresEveryShardFile) {
  const CampaignGrid grid = small_grid();
  const fs::path dir = scratch_dir("missing");
  CampaignOptions opt;
  opt.out_dir = dir.string();
  opt.shard_count = 2;
  opt.shard_index = 0;
  opt.threads = 1;
  run_campaign(grid, opt);
  EXPECT_THROW(merge_campaign(grid, dir.string(), 2), std::runtime_error);
}

TEST(CampaignDriver, MergeOfIncompleteCampaignFailsTheChecker) {
  const CampaignGrid grid = small_grid();
  const fs::path dir = scratch_dir("incomplete");
  CampaignOptions opt;
  opt.out_dir = dir.string();
  opt.threads = 1;
  opt.max_jobs = 1;
  run_campaign(grid, opt);
  try {
    merge_campaign(grid, dir.string(), 1);
    FAIL() << "merge of an incomplete campaign must throw";
  } catch (const VerifyError& e) {
    EXPECT_FALSE(e.report().ok());
    bool missing = false;
    for (const auto& v : e.report().violations) {
      missing |= v.id == CheckId::CampMergeMissing;
    }
    EXPECT_TRUE(missing);
  }
}

TEST(CampaignDriver, InMemoryCampaignMatchesCheckpointedRows) {
  const CampaignGrid grid = small_grid();
  const std::vector<FlowResult> mem = run_campaign_in_memory(grid, 2);
  const fs::path dir = scratch_dir("inmem");
  const std::vector<CampaignRow> rows =
      parse_campaign_artifact(run_and_merge(grid, dir, 1, 1));
  ASSERT_EQ(mem.size(), rows.size());
  for (std::size_t i = 0; i < mem.size(); ++i) {
    FlowResult a = mem[i];
    a.meta.wall_ms = 0.0;  // the merge zeroes it; in-memory keeps it
    EXPECT_EQ(flow_result_to_json(a).dump(),
              flow_result_to_json(rows[i].result).dump());
  }
}

// ------------------------------------------- CampaignChecker corruption

// Baseline healthy view the corruption tests perturb: 4 jobs over 2 shards,
// fully checkpointed and merged.
struct CheckerFixture {
  std::vector<std::string> ids{"a", "b", "c", "d"};
  std::vector<std::size_t> assign{0, 1, 0, 1};
  std::vector<std::vector<std::string>> shard_rows{{"a", "c"}, {"b", "d"}};
  std::vector<std::string> merged{"a", "b", "c", "d"};

  CampaignView view() {
    CampaignView v;
    v.num_shards = 2;
    v.job_ids = ids;
    v.job_shard = assign;
    v.shard_rows = shard_rows;
    v.merged_ids = merged;
    v.check_merged = true;
    return v;
  }
};

bool names(const VerifyReport& report, CheckId id) {
  for (const auto& v : report.violations) {
    if (v.id == id) return true;
  }
  return false;
}

TEST(CampaignChecker, HealthyViewPasses) {
  CheckerFixture f;
  EXPECT_TRUE(CampaignChecker::run(f.view()).ok());
}

TEST(CampaignChecker, CorruptPartition) {
  CheckerFixture f;
  f.assign[2] = 5;  // out of range for 2 shards
  EXPECT_TRUE(names(CampaignChecker::run(f.view()), CheckId::CampPartition));
  CheckerFixture dup;
  dup.ids[3] = "a";  // same job expanded twice
  EXPECT_TRUE(names(CampaignChecker::run(dup.view()), CheckId::CampPartition));
}

TEST(CampaignChecker, CorruptShardRows) {
  CheckerFixture f;
  f.shard_rows[0].push_back("b");  // b is assigned to shard 1
  EXPECT_TRUE(names(CampaignChecker::run(f.view()), CheckId::CampShardRows));
  CheckerFixture unparseable;
  unparseable.shard_rows[1].emplace_back();  // "" = row that failed to parse
  EXPECT_TRUE(
      names(CampaignChecker::run(unparseable.view()), CheckId::CampShardRows));
  CheckerFixture twice;
  twice.shard_rows[0].push_back("a");  // same job recorded twice
  EXPECT_TRUE(
      names(CampaignChecker::run(twice.view()), CheckId::CampShardRows));
}

TEST(CampaignChecker, CorruptMergeDuplicate) {
  CheckerFixture f;
  f.merged.push_back("c");
  EXPECT_TRUE(
      names(CampaignChecker::run(f.view()), CheckId::CampMergeDuplicate));
}

TEST(CampaignChecker, CorruptMergeMissing) {
  CheckerFixture f;
  f.merged.pop_back();
  EXPECT_TRUE(
      names(CampaignChecker::run(f.view()), CheckId::CampMergeMissing));
}

// --------------------------------------------------- cgroup quota parsing

TEST(ThreadResolve, ParseCpuQuota) {
  using detail::parse_cpu_quota;
  EXPECT_EQ(parse_cpu_quota("max", "100000"), 0u);       // v2 unlimited
  EXPECT_EQ(parse_cpu_quota("-1", "100000"), 0u);        // v1 unlimited
  EXPECT_EQ(parse_cpu_quota("100000", "100000"), 1u);    // exactly 1 CPU
  EXPECT_EQ(parse_cpu_quota("200000", "100000"), 2u);
  EXPECT_EQ(parse_cpu_quota("150000", "100000"), 2u);    // ceil
  EXPECT_EQ(parse_cpu_quota("150000\n", "100000\n"), 2u);  // kernel newlines
  EXPECT_EQ(parse_cpu_quota("", "100000"), 0u);
  EXPECT_EQ(parse_cpu_quota("garbage", "100000"), 0u);
  EXPECT_EQ(parse_cpu_quota("100000", "0"), 0u);
}

TEST(ThreadResolve, ParseCpuMaxLine) {
  using detail::parse_cpu_max_line;
  EXPECT_EQ(parse_cpu_max_line("max 100000\n"), 0u);
  EXPECT_EQ(parse_cpu_max_line("400000 100000\n"), 4u);
  EXPECT_EQ(parse_cpu_max_line("50000 100000"), 1u);  // half a CPU -> 1
  EXPECT_EQ(parse_cpu_max_line("no-space"), 0u);
}

TEST(ThreadResolve, EffectiveCountBoundsResolution) {
  EXPECT_GE(effective_cpu_count(), 1u);
  // Explicit request always wins.
  EXPECT_EQ(resolve_threads(3), 3u);
  // Default resolution is at most the effective count (or TZ_THREADS).
  EXPECT_GE(resolve_threads(0), 1u);
}

}  // namespace
}  // namespace tz
