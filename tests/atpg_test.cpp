// Tests for the stuck-at fault model, PODEM and fault simulation.
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <gtest/gtest.h>

#include "atpg/fault_sim_backend.hpp"
#include "atpg/fault_sim_engine.hpp"
#include "atpg/fault_sim_packed.hpp"
#include "atpg/test_set.hpp"
#include "gen/iscas.hpp"
#include "gen/random_circuit.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"

namespace tz {
namespace {

/// Independent serial reference for fault simulation: materialise the faulty
/// machine as a netlist copy whose fault site is replaced by a tie cell,
/// simulate both machines in full, and OR the per-output differences into a
/// per-pattern bitmap. Shares no code with FaultSimEngine's event-driven
/// cone evaluation.
std::vector<std::uint64_t> reference_detection_bits(const Netlist& nl,
                                                    const Fault& f,
                                                    const PatternSet& ps) {
  Netlist faulty = nl;
  const NodeId tie = faulty.const_node(f.value == StuckAt::One);
  faulty.replace_uses(f.node, tie);
  const PatternSet good = BitSimulator(nl).outputs(ps);
  const PatternSet bad = BitSimulator(faulty).outputs(ps);
  std::vector<std::uint64_t> bits(ps.num_words(), 0);
  for (std::size_t o = 0; o < good.num_signals(); ++o) {
    auto g = good.words(o);
    auto b = bad.words(o);
    for (std::size_t w = 0; w < bits.size(); ++w) bits[w] |= g[w] ^ b[w];
  }
  if (!bits.empty()) bits.back() &= ps.tail_mask();
  return bits;
}

TEST(FaultUniverse, TwoFaultsPerSite) {
  const Netlist nl = gen_c17();
  const auto faults = fault_universe(nl);
  EXPECT_EQ(faults.size(), 2 * (5 + 6));  // PIs + gates
}

TEST(FaultUniverse, SkipsTiesAndDffs) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  nl.const_node(false);
  const NodeId q = nl.add_gate(GateType::Dff, "q", {a});
  const NodeId g = nl.add_gate(GateType::Xor, "g", {q, a});
  nl.mark_output(g);
  const auto faults = fault_universe(nl);
  EXPECT_EQ(faults.size(), 4u);  // a and g only
}

TEST(FaultCollapse, DropsDominatedInverterFaults) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId n = nl.add_gate(GateType::Not, "n", {a});
  nl.mark_output(n);
  const auto collapsed = collapse_faults(nl, fault_universe(nl));
  EXPECT_EQ(collapsed.size(), 2u);  // only the PI faults remain
}

TEST(FaultToString, Readable) {
  const Netlist nl = gen_c17();
  const Fault f{nl.find("10"), StuckAt::One};
  EXPECT_EQ(to_string(nl, f), "10/sa1");
}

TEST(Podem, FindsTestsForEveryC17Fault) {
  // c17 is fully testable; PODEM must find a pattern for every fault, and
  // the pattern must actually detect it under fault simulation.
  const Netlist nl = gen_c17();
  for (const Fault& f : fault_universe(nl)) {
    const PodemResult r = podem(nl, f);
    ASSERT_EQ(r.status, PodemStatus::Detected) << to_string(nl, f);
    PatternSet one(nl.inputs().size(), 1);
    for (std::size_t s = 0; s < r.pattern.size(); ++s) {
      one.set(0, s, r.pattern[s]);
    }
    EXPECT_TRUE(detects(nl, f, one)) << to_string(nl, f);
  }
}

TEST(Podem, ProvesRedundantFaultUntestable) {
  // f = OR(x, AND(x, y)): the AND is absorbed, its sa0 is undetectable.
  Netlist nl;
  const NodeId x = nl.add_input("x");
  const NodeId y = nl.add_input("y");
  const NodeId a = nl.add_gate(GateType::And, "a", {x, y});
  const NodeId f = nl.add_gate(GateType::Or, "f", {x, a});
  nl.mark_output(f);
  const PodemResult r = podem(nl, Fault{a, StuckAt::Zero});
  EXPECT_EQ(r.status, PodemStatus::Untestable);
  // sa1 on the same node IS testable (x=0, y arbitrary exposes it? x=0,a=1
  // forces f=1 vs good f=0 when y picked right).
  const PodemResult r1 = podem(nl, Fault{a, StuckAt::One});
  EXPECT_EQ(r1.status, PodemStatus::Detected);
}

TEST(Podem, C432ConsensusCoversAreUntestable) {
  // The generator's hazard-cover redundancy must be invisible to any test.
  const Netlist nl = make_benchmark("c432");
  const auto faults = fault_universe(nl);
  int untestable = 0;
  PodemOptions opt;
  opt.backtrack_limit = 2000;
  for (const Fault& f : faults) {
    if (podem(nl, f, opt).status == PodemStatus::Untestable) ++untestable;
  }
  EXPECT_GT(untestable, 5);  // the injected consensus covers at minimum
}


TEST(PodemEngine, ReusedEngineMatchesOneShotPodem) {
  // One engine across an entire fault universe must return exactly what the
  // one-shot wrapper does for each fault (status, pattern, don't-care mask,
  // backtrack count) — the scratch reuse and event-driven implication are
  // pure optimisations.
  const Netlist nl = make_benchmark("c432");
  const auto faults = collapse_faults(nl, fault_universe(nl));
  PodemEngine engine(nl);
  for (const Fault& f : faults) {
    const PodemResult fresh = podem(nl, f);
    const PodemResult reused = engine.run(f);
    ASSERT_EQ(reused.status, fresh.status) << to_string(nl, f);
    EXPECT_EQ(reused.backtracks, fresh.backtracks) << to_string(nl, f);
    EXPECT_EQ(reused.pattern, fresh.pattern) << to_string(nl, f);
    EXPECT_EQ(reused.assigned, fresh.assigned) << to_string(nl, f);
  }
}

TEST(FaultSim, AgreesWithPodemOnDetection) {
  const Netlist nl = make_benchmark("c17");
  const auto faults = fault_universe(nl);
  const PatternSet ps = exhaustive_patterns(nl.inputs().size());
  const auto det = fault_simulate(nl, faults, ps);
  // Exhaustive patterns detect exactly the testable faults.
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const bool testable =
        podem(nl, faults[i]).status == PodemStatus::Detected;
    EXPECT_EQ(det[i], testable) << to_string(nl, faults[i]);
  }
}

TEST(FaultSim, DetectionMatrixMatchesScalarDetects) {
  const Netlist nl = gen_c17();
  const auto faults = fault_universe(nl);
  const PatternSet ps = random_patterns(nl.inputs().size(), 20, 5);
  const auto matrix = detection_matrix(nl, faults, ps);
  const auto det = fault_simulate(nl, faults, ps);
  for (std::size_t f = 0; f < faults.size(); ++f) {
    bool any = false;
    for (auto w : matrix[f]) any |= w != 0;
    EXPECT_EQ(any, det[f]);
  }
}

TEST(FaultSim, CompactionPreservesCoverage) {
  const Netlist nl = make_benchmark("c432");
  const auto faults = collapse_faults(nl, fault_universe(nl));
  const PatternSet ps = random_patterns(nl.inputs().size(), 128, 21);
  const auto matrix = detection_matrix(nl, faults, ps);
  const auto kept = compact_patterns(matrix, ps.num_patterns());
  EXPECT_LT(kept.size(), ps.num_patterns());  // compaction bites
  PatternSet compacted(nl.inputs().size(), kept.size());
  for (std::size_t k = 0; k < kept.size(); ++k) {
    for (std::size_t s = 0; s < nl.inputs().size(); ++s) {
      compacted.set(k, s, ps.get(kept[k], s));
    }
  }
  EXPECT_EQ(grade_patterns(nl, faults, compacted).detected,
            grade_patterns(nl, faults, ps).detected);
}

TEST(TestGen, CoverageAndGoldenResponses) {
  const Netlist nl = make_benchmark("c880");
  TestGenOptions opt;
  opt.random_patterns = 64;
  opt.max_patterns = 96;
  const DefenderTestSet ts = generate_atpg_tests(nl, opt);
  EXPECT_GT(ts.coverage.coverage(), 0.80);
  EXPECT_LE(ts.patterns.num_patterns(), 97u);
  // Golden responses must match a fresh simulation.
  const PatternSet again = BitSimulator(nl).outputs(ts.patterns);
  EXPECT_TRUE(BitSimulator::responses_equal(again, ts.golden));
}

TEST(TestGen, PatternBudgetBinds) {
  const Netlist nl = make_benchmark("c1908");
  TestGenOptions opt;
  opt.random_patterns = 64;
  opt.max_patterns = 40;
  opt.coverage_target = 1.0;
  const DefenderTestSet ts = generate_atpg_tests(nl, opt);
  EXPECT_LE(ts.patterns.num_patterns(), 41u);
  EXPECT_LT(ts.coverage.coverage(), 1.0);
}

TEST(TestGen, HigherBudgetNeverLowersCoverage) {
  const Netlist nl = make_benchmark("c432");
  TestGenOptions small, big;
  small.max_patterns = 32;
  big.max_patterns = 256;
  big.coverage_target = 0.999;
  const auto cs = generate_atpg_tests(nl, small);
  const auto cb = generate_atpg_tests(nl, big);
  EXPECT_GE(cb.coverage.coverage(), cs.coverage.coverage());
}

TEST(FunctionalTest, CleanCircuitPasses) {
  const Netlist nl = make_benchmark("c432");
  const DefenderSuite suite = make_defender_suite(nl);
  EXPECT_TRUE(functional_test(nl, suite));
}

TEST(FunctionalTest, MutatedCircuitFails) {
  const Netlist nl = make_benchmark("c17");
  DefenderSuite suite = make_defender_suite(nl);
  Netlist broken = nl;
  // Retype one NAND to NOR: a gross functional change.
  const NodeId g = broken.find("10");
  broken.retype(g, GateType::Nor);
  EXPECT_FALSE(functional_test(broken, suite));
}

TEST(FunctionalTest, InterfaceMismatchFails) {
  const Netlist nl = make_benchmark("c17");
  const DefenderSuite suite = make_defender_suite(nl);
  const Netlist other = make_benchmark("c432");
  EXPECT_FALSE(functional_test(other, suite));
}

/// Property: on random circuits every PODEM-detected fault is confirmed by
/// fault simulation of the produced pattern.
class PodemSound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PodemSound, PatternsConfirmedByFaultSim) {
  RandomCircuitSpec spec;
  spec.seed = GetParam();
  spec.num_gates = 40;
  const Netlist nl = random_circuit(spec);
  int checked = 0;
  for (const Fault& f : fault_universe(nl)) {
    const PodemResult r = podem(nl, f);
    if (r.status != PodemStatus::Detected) continue;
    PatternSet one(nl.inputs().size(), 1);
    for (std::size_t s = 0; s < r.pattern.size(); ++s) {
      one.set(0, s, r.pattern[s]);
    }
    ASSERT_TRUE(detects(nl, f, one)) << to_string(nl, f);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PodemSound,
                         ::testing::Values(2, 4, 6, 8, 10, 12));

/// Property: PODEM "untestable" verdicts are genuine — exhaustive simulation
/// finds no detecting pattern either (small circuits only).
class PodemComplete : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PodemComplete, UntestableMeansUndetectable) {
  RandomCircuitSpec spec;
  spec.seed = GetParam();
  spec.num_inputs = 8;
  spec.num_gates = 25;
  const Netlist nl = random_circuit(spec);
  const PatternSet all = exhaustive_patterns(8);
  for (const Fault& f : fault_universe(nl)) {
    const PodemResult r = podem(nl, f);
    if (r.status == PodemStatus::Untestable) {
      EXPECT_FALSE(detects(nl, f, all)) << to_string(nl, f);
    } else if (r.status == PodemStatus::Detected) {
      EXPECT_TRUE(detects(nl, f, all)) << to_string(nl, f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PodemComplete,
                         ::testing::Values(31, 37, 41, 43, 47));

/// Property: on random circuits the engine's per-fault detect bitmaps match
/// the tie-and-resimulate serial reference bit for bit, across a pattern
/// count that crosses the 64-pattern word boundary.
class FaultSimEquiv : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultSimEquiv, EngineMatchesSerialReference) {
  RandomCircuitSpec spec;
  spec.seed = GetParam();
  spec.num_gates = 60;
  const Netlist nl = random_circuit(spec);
  const auto faults = fault_universe(nl);
  const PatternSet ps = random_patterns(nl.inputs().size(), 70, GetParam());
  FaultSimEngine engine(nl, ps);
  const std::vector<bool> det = engine.simulate(faults);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const auto ref = reference_detection_bits(nl, faults[i], ps);
    EXPECT_EQ(engine.detection_bits(faults[i]), ref)
        << to_string(nl, faults[i]);
    bool ref_any = false;
    for (const std::uint64_t w : ref) ref_any |= w != 0;
    EXPECT_EQ(det[i], ref_any) << to_string(nl, faults[i]);
  }
}

TEST_P(FaultSimEquiv, DropSimOverSplitsMatchesFullSim) {
  RandomCircuitSpec spec;
  spec.seed = GetParam();
  spec.num_gates = 60;
  const Netlist nl = random_circuit(spec);
  const auto faults = fault_universe(nl);
  const PatternSet ps = random_patterns(nl.inputs().size(), 70, GetParam());
  // Split the set in two and drop-simulate incrementally with one engine.
  const PatternSet first = ps.slice(0, 37);
  const PatternSet second = ps.slice(37, 33);
  FaultSimEngine engine(nl);
  std::vector<bool> dropped(faults.size(), false);
  engine.set_patterns(first);
  std::size_t covered = engine.drop_sim(faults, dropped);
  engine.set_patterns(second);
  covered += engine.drop_sim(faults, dropped);
  const std::vector<bool> full = fault_simulate(nl, faults, ps);
  EXPECT_EQ(dropped, full);
  std::size_t full_covered = 0;
  for (const bool d : full) full_covered += d ? 1 : 0;
  EXPECT_EQ(covered, full_covered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSimEquiv,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

TEST(FaultSimEngine, UnreachableSiteSkippedStatically) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId dead = nl.add_gate(GateType::Not, "dead", {a});
  const NodeId live = nl.add_gate(GateType::Buf, "live", {a});
  nl.mark_output(live);
  FaultSimEngine engine(nl, exhaustive_patterns(1));
  EXPECT_FALSE(engine.po_reachable(dead));
  EXPECT_TRUE(engine.po_reachable(a));
  EXPECT_FALSE(engine.detects(Fault{dead, StuckAt::One}));
  EXPECT_TRUE(engine.detects(Fault{a, StuckAt::One}));
}

// ---- pluggable backend layer -----------------------------------------------

TEST(FaultBackend, ModeSelectionAndFactoryNames) {
  EXPECT_EQ(to_string(FaultSimMode::Auto), "auto");
  EXPECT_EQ(to_string(FaultSimMode::Event), "event");
  EXPECT_EQ(to_string(FaultSimMode::Packed), "packed");

  const Netlist nl = gen_c17();
  EXPECT_EQ(make_fault_sim_backend(nl, FaultSimMode::Event)->name(), "event");
  EXPECT_EQ(make_fault_sim_backend(nl, FaultSimMode::Packed)->name(),
            "packed");
  EXPECT_EQ(make_fault_sim_backend(nl, FaultSimMode::Auto)->name(), "auto");

  // The process-wide override follows the TZ_EVAL_PLAN hook idiom: 0/1/2
  // force a mode (out-of-range clamps), -1 restores the env default.
  {
    const test::FaultModeGuard packed(2);
    EXPECT_EQ(fault_sim_mode(), FaultSimMode::Packed);
    EXPECT_EQ(make_fault_sim_backend(nl)->name(), "packed");
    set_fault_sim_mode(1);
    EXPECT_EQ(fault_sim_mode(), FaultSimMode::Event);
    set_fault_sim_mode(0);
    EXPECT_EQ(fault_sim_mode(), FaultSimMode::Auto);
    set_fault_sim_mode(99);
    EXPECT_EQ(fault_sim_mode(), FaultSimMode::Packed);
  }

  // Both engines bind to one shared context: the static analyses and the
  // good machine are computed once no matter how many backends consume them.
  const auto ctx = std::make_shared<FaultSimContext>(nl);
  const auto event = make_fault_sim_backend(ctx, FaultSimMode::Event);
  const auto packed = make_fault_sim_backend(ctx, FaultSimMode::Packed);
  EXPECT_EQ(&event->context(), &packed->context());
}

TEST(FaultBackend, PackedMatchesEventAcrossPlanModes) {
  // The packed engine must be bit-identical to the event engine on every
  // query of the backend contract, on both the compiled-plan and legacy
  // simulation paths.
  for (const char* name : {"c432", "c880"}) {
    const Netlist nl = make_benchmark(name);
    const auto faults = collapse_faults(nl, fault_universe(nl));
    const PatternSet ps = random_patterns(nl.inputs().size(), 150, 9);
    for (const int plan_mode : {0, 1}) {
      const test::PlanModeGuard guard(plan_mode);
      const std::string label =
          std::string(name) + " plan=" + std::to_string(plan_mode);
      const auto event = make_fault_sim_backend(nl, FaultSimMode::Event);
      const auto packed = make_fault_sim_backend(nl, FaultSimMode::Packed);
      event->set_patterns(ps);
      packed->set_patterns(ps);

      const std::vector<bool> eflags = event->simulate(faults);
      EXPECT_EQ(packed->simulate(faults), eflags) << label;
      EXPECT_EQ(packed->detection_matrix(faults),
                event->detection_matrix(faults))
          << label;
      for (std::size_t i = 0; i < faults.size(); i += 17) {
        EXPECT_EQ(packed->detects(faults[i]), event->detects(faults[i]))
            << label << " fault " << to_string(nl, faults[i]);
      }
      std::vector<bool> edrop(faults.size(), false);
      std::vector<bool> pdrop(faults.size(), false);
      EXPECT_EQ(packed->drop_sim(faults, pdrop),
                event->drop_sim(faults, edrop))
          << label;
      EXPECT_EQ(pdrop, edrop) << label;
    }
  }
}

TEST(FaultBackend, DetectionMatrixWordBoundaries) {
  // The packed engine packs 64 faults per word and 64 patterns per block;
  // the event engine packs 64 patterns per word. Exercise every off-by-one
  // around both boundaries: fault counts and pattern counts one below, at,
  // and one above a full word.
  const Netlist nl = make_benchmark("c432");
  const auto universe = fault_universe(nl);
  ASSERT_GE(universe.size(), 65u);
  for (const std::size_t nf : {63u, 64u, 65u}) {
    const std::span<const Fault> faults(universe.data(), nf);
    for (const std::size_t np : {63u, 64u, 65u}) {
      const PatternSet ps =
          random_patterns(nl.inputs().size(), np, 31 * nf + np);
      const std::string label =
          "faults=" + std::to_string(nf) + " patterns=" + std::to_string(np);
      const auto event = make_fault_sim_backend(nl, FaultSimMode::Event);
      const auto packed = make_fault_sim_backend(nl, FaultSimMode::Packed);
      event->set_patterns(ps);
      packed->set_patterns(ps);
      const auto ematrix = event->detection_matrix(faults);
      const auto pmatrix = packed->detection_matrix(faults);
      EXPECT_EQ(pmatrix, ematrix) << label;
      // No detection bit may land beyond the pattern tail.
      const std::uint64_t tail = ps.tail_mask();
      for (const auto& row : pmatrix) {
        ASSERT_EQ(row.size(), ps.num_words()) << label;
        EXPECT_EQ(row.back() & ~tail, 0u) << label;
      }
      EXPECT_EQ(packed->simulate(faults), event->simulate(faults)) << label;
    }
  }
}

TEST(FaultBackend, ZeroDetectRowsAndAllDroppedBatches) {
  // g = AND(a, b) under all-zero patterns: g stuck-at-0 is never excited
  // (zero detection row), g stuck-at-1 flips every pattern (full row up to
  // the tail). Both backends must agree on both extremes, and a drop_sim
  // where every fault is already dropped must touch nothing.
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(GateType::And, "g", {a, b});
  const NodeId o = nl.add_gate(GateType::Buf, "o", {g});
  nl.mark_output(o);
  const PatternSet zeros(nl.inputs().size(), 70);  // all-zero, 2 words
  const std::vector<Fault> faults = {{g, StuckAt::Zero}, {g, StuckAt::One},
                                     {a, StuckAt::One}, {b, StuckAt::One}};
  for (const FaultSimMode mode : {FaultSimMode::Event, FaultSimMode::Packed}) {
    const auto backend = make_fault_sim_backend(nl, mode);
    backend->set_patterns(zeros);
    const auto matrix = backend->detection_matrix(faults);
    ASSERT_EQ(matrix.size(), faults.size());
    const std::vector<std::uint64_t> zero_row(zeros.num_words(), 0);
    const std::vector<std::uint64_t> full_row = {~std::uint64_t{0},
                                                 zeros.tail_mask()};
    EXPECT_EQ(matrix[0], zero_row) << backend->name();   // g sa0: unexcited
    EXPECT_EQ(matrix[1], full_row) << backend->name();   // g sa1: every TP
    // a/b sa1 are excited but masked by the other AND input staying 0.
    EXPECT_EQ(matrix[2], zero_row) << backend->name();
    EXPECT_EQ(matrix[3], zero_row) << backend->name();

    std::vector<bool> all_dropped(faults.size(), true);
    EXPECT_EQ(backend->drop_sim(faults, all_dropped), 0u) << backend->name();
    EXPECT_EQ(all_dropped, std::vector<bool>(faults.size(), true))
        << backend->name();
  }
}

TEST(FaultBackend, ResyncStructureRefreshesReachability) {
  // Satellite contract: PO reachability is computed once and cached across
  // pattern swaps (structure epoch stable, pattern epoch advancing), and
  // resync_structure is the single invalidation point after a structural
  // edit — here a gate becoming observable by gaining an output marking.
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::Not, "g", {a});
  const NodeId o = nl.add_gate(GateType::Buf, "o", {a});
  nl.mark_output(o);
  for (const FaultSimMode mode : {FaultSimMode::Event, FaultSimMode::Packed}) {
    Netlist work = nl;
    const auto backend = make_fault_sim_backend(work, mode);
    backend->set_patterns(exhaustive_patterns(1));
    const std::uint64_t epoch0 = backend->context().structure_epoch();
    EXPECT_FALSE(backend->po_reachable(g)) << backend->name();
    EXPECT_FALSE(backend->detects(Fault{g, StuckAt::Zero}))
        << backend->name();

    // Pattern swaps must reuse the cached static analyses.
    backend->set_patterns(exhaustive_patterns(1));
    EXPECT_EQ(backend->context().structure_epoch(), epoch0)
        << backend->name();
    EXPECT_GT(backend->context().pattern_epoch(), 1u) << backend->name();

    work.mark_output(g);
    backend->resync_structure();
    backend->set_patterns(exhaustive_patterns(1));
    EXPECT_GT(backend->context().structure_epoch(), epoch0)
        << backend->name();
    EXPECT_TRUE(backend->po_reachable(g)) << backend->name();
    EXPECT_TRUE(backend->detects(Fault{g, StuckAt::Zero})) << backend->name();
  }
}

TEST(TestGen, AtpgBitIdenticalAcrossBackendsAndPlanModes) {
  // The full ATPG flow (bootstrap grading, compaction, PODEM dropping) must
  // produce the same pattern set, golden responses and coverage counters no
  // matter which fault-simulation backend runs it, on both simulation paths.
  const Netlist nl = make_benchmark("c880");
  TestGenOptions opt;
  opt.random_patterns = 64;
  opt.max_patterns = 64;

  opt.fault_mode = FaultSimMode::Event;
  DefenderTestSet base;
  {
    const test::PlanModeGuard legacy(0);
    base = generate_atpg_tests(nl, opt);
  }
  const auto expect_same = [&](const DefenderTestSet& ts,
                               const std::string& label) {
    EXPECT_EQ(ts.patterns.num_patterns(), base.patterns.num_patterns())
        << label;
    EXPECT_TRUE(BitSimulator::responses_equal(ts.patterns, base.patterns))
        << label;
    EXPECT_TRUE(BitSimulator::responses_equal(ts.golden, base.golden))
        << label;
    EXPECT_EQ(ts.coverage.detected, base.coverage.detected) << label;
    EXPECT_EQ(ts.untestable, base.untestable) << label;
    EXPECT_EQ(ts.aborted, base.aborted) << label;
  };
  for (const int plan_mode : {0, 1}) {
    const test::PlanModeGuard guard(plan_mode);
    for (const FaultSimMode mode :
         {FaultSimMode::Event, FaultSimMode::Packed, FaultSimMode::Auto}) {
      opt.fault_mode = mode;
      expect_same(generate_atpg_tests(nl, opt),
                  "plan=" + std::to_string(plan_mode) + " mode=" +
                      std::string(to_string(mode)));
    }
  }
  // The TZ_FAULT_MODE process override must reach the flow when the options
  // leave the mode at Auto.
  opt.fault_mode = FaultSimMode::Auto;
  const test::FaultModeGuard packed(2);
  expect_same(generate_atpg_tests(nl, opt), "TZ_FAULT_MODE override");
}

TEST(FaultSimEngine, DffBlocksPropagationLikeBitSimulator) {
  // A fault feeding only a DFF's d-input cannot reach a PO in one
  // combinational pass, matching BitSimulator's single-pass semantics.
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(GateType::Not, "g", {a});
  const NodeId q = nl.add_gate(GateType::Dff, "q", {g});
  const NodeId o = nl.add_gate(GateType::Buf, "o", {q});
  nl.mark_output(o);
  FaultSimEngine engine(nl, exhaustive_patterns(1));
  EXPECT_FALSE(engine.po_reachable(g));
  EXPECT_FALSE(engine.detects(Fault{g, StuckAt::Zero}));
}

}  // namespace
}  // namespace tz
