// Functional tests for the benchmark circuit generators.
#include <gtest/gtest.h>
#include <cstdint>
#include <random>
#include <stdexcept>

#include "gen/circuits.hpp"
#include "gen/iscas.hpp"
#include "gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"

namespace tz {
namespace {

/// Helper: run one input assignment through a circuit.
std::vector<bool> eval_once(const Netlist& nl, const std::vector<bool>& in) {
  PatternSet ps(nl.inputs().size(), 1);
  for (std::size_t s = 0; s < in.size(); ++s) ps.set(0, s, in[s]);
  const PatternSet out = BitSimulator(nl).outputs(ps);
  std::vector<bool> o(out.num_signals());
  for (std::size_t s = 0; s < o.size(); ++s) o[s] = out.get(0, s);
  return o;
}

std::size_t input_index(const Netlist& nl, const std::string& name) {
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    if (nl.node(nl.inputs()[i]).name == name) return i;
  }
  throw std::out_of_range("no input " + name);
}

TEST(Generators, TableIInterfaceProfiles) {
  for (const BenchmarkSpec& spec : iscas85_specs()) {
    const Netlist nl = make_benchmark(spec.name);
    EXPECT_EQ(nl.inputs().size(), static_cast<std::size_t>(spec.paper_inputs))
        << spec.name;
    EXPECT_GT(nl.gate_count(), 0u);
    nl.check();
  }
}

TEST(Generators, Deterministic) {
  for (const char* name : {"c432", "c880"}) {
    const std::string a = write_bench_string(make_benchmark(name));
    const std::string b = write_bench_string(make_benchmark(name));
    EXPECT_EQ(a, b) << name;
  }
}

TEST(Generators, GateCountOrderingMatchesPaper) {
  // Relative sizes must track Table I: c432 < c499/c880 < c1908 < c3540.
  const auto gates = [](const char* n) {
    return make_benchmark(n).gate_count();
  };
  const auto g432 = gates("c432"), g499 = gates("c499"), g880 = gates("c880"),
             g1908 = gates("c1908"), g3540 = gates("c3540");
  EXPECT_LT(g432, g1908);
  EXPECT_LT(g499, g1908);
  EXPECT_LT(g880, g1908);
  EXPECT_LT(g1908, g3540);
}

TEST(InterruptController, HighestPriorityBusWins) {
  const Netlist nl = gen_interrupt_controller();
  std::vector<bool> in(nl.inputs().size(), false);
  // Enable all channels; request channel 3 on bus A and channel 2 on bus B.
  for (int e = 0; e < 9; ++e) in[input_index(nl, "E" + std::to_string(e))] = true;
  in[input_index(nl, "A3")] = true;
  in[input_index(nl, "B2")] = true;
  const auto out = eval_once(nl, in);
  EXPECT_TRUE(out[0]);   // grant A
  EXPECT_FALSE(out[1]);  // B loses to A
  EXPECT_FALSE(out[2]);
  // Encoded index = 3 (bits 0 and 1 set).
  EXPECT_TRUE(out[3]);
  EXPECT_TRUE(out[4]);
  EXPECT_FALSE(out[5]);
  EXPECT_FALSE(out[6]);
}

TEST(InterruptController, DisabledChannelIgnored) {
  const Netlist nl = gen_interrupt_controller();
  std::vector<bool> in(nl.inputs().size(), false);
  in[input_index(nl, "A4")] = true;  // requested but enable E4 low
  const auto out = eval_once(nl, in);
  EXPECT_FALSE(out[0]);
  EXPECT_FALSE(out[1]);
  EXPECT_FALSE(out[2]);
}

TEST(InterruptController, LowerChannelBeatsHigherWithinBus) {
  const Netlist nl = gen_interrupt_controller();
  std::vector<bool> in(nl.inputs().size(), false);
  for (int e = 0; e < 9; ++e) in[input_index(nl, "E" + std::to_string(e))] = true;
  in[input_index(nl, "C1")] = true;
  in[input_index(nl, "C6")] = true;
  const auto out = eval_once(nl, in);
  EXPECT_TRUE(out[2]);  // grant C
  // Winning index 1: bit0 only.
  EXPECT_TRUE(out[3]);
  EXPECT_FALSE(out[4]);
  EXPECT_FALSE(out[5]);
  EXPECT_FALSE(out[6]);
}

TEST(Sec32, CleanWordPassesThrough) {
  const Netlist nl = gen_sec32();
  std::vector<bool> in(nl.inputs().size(), false);
  // Arbitrary data, checks = recomputed parity. Easiest clean case: all
  // zeros with zero checks is a valid codeword.
  in[input_index(nl, "EN")] = true;
  const auto out = eval_once(nl, in);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_FALSE(out[i]);
}

TEST(Sec32, SingleBitErrorIsCorrected) {
  const Netlist nl = gen_sec32();
  // Flipping one data bit of the all-zero codeword makes the syndrome point
  // exactly at that bit; the decoder flips it back and the output equals
  // the clean word — the defining SEC property.
  std::vector<bool> clean(nl.inputs().size(), false);
  clean[input_index(nl, "EN")] = true;
  std::vector<bool> corrupted = clean;
  corrupted[input_index(nl, "D5")] = true;
  const auto a = eval_once(nl, clean);
  const auto b = eval_once(nl, corrupted);
  EXPECT_EQ(a, b);
}

TEST(Sec32, DisabledCorrectionIsPassthrough) {
  const Netlist nl = gen_sec32();
  std::vector<bool> in(nl.inputs().size(), false);
  in[input_index(nl, "D7")] = true;   // data bit set, EN=0
  in[input_index(nl, "K2")] = true;   // bogus check: would trigger corrector
  const auto out = eval_once(nl, in);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i == 7);  // exact passthrough of data
  }
}

TEST(Alu8, AddsWithCarry) {
  const Netlist nl = gen_alu8();
  std::vector<bool> in(nl.inputs().size(), false);
  // A=0x0F, B=0x01, SEL=0 (add path), CIN=0 -> R=0x10.
  for (int i = 0; i < 4; ++i) in[input_index(nl, "A" + std::to_string(i))] = true;
  in[input_index(nl, "B0")] = true;
  const auto out = eval_once(nl, in);
  // R bus occupies outputs 0..7.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i == 4) << "bit " << i;
}

TEST(Alu8, CarryInPropagates) {
  const Netlist nl = gen_alu8();
  std::vector<bool> base(nl.inputs().size(), false);
  std::vector<bool> with_cin = base;
  with_cin[input_index(nl, "CIN")] = true;
  const auto a = eval_once(nl, base);
  const auto b = eval_once(nl, with_cin);
  EXPECT_FALSE(a[0]);
  EXPECT_TRUE(b[0]);  // 0 + 0 + cin = 1
}

TEST(Alu8, LogicOpsSelectable) {
  const Netlist nl = gen_alu8();
  std::vector<bool> in(nl.inputs().size(), false);
  in[input_index(nl, "A0")] = true;  // A=1, B=0
  in[input_index(nl, "SEL0")] = true;  // select AND result
  const auto and_out = eval_once(nl, in);
  EXPECT_FALSE(and_out[0]);  // 1 AND 0 = 0
  in[input_index(nl, "SEL0")] = false;
  in[input_index(nl, "SEL1")] = true;  // select OR
  const auto or_out = eval_once(nl, in);
  EXPECT_TRUE(or_out[0]);  // 1 OR 0 = 1
}

TEST(Secded16, CleanWordReportsNoError) {
  const Netlist nl = gen_secded16();
  std::vector<bool> in(nl.inputs().size(), false);  // all-zero codeword
  const auto out = eval_once(nl, in);
  const std::size_t n = out.size();
  EXPECT_FALSE(out[n - 3]);  // single_err
  EXPECT_FALSE(out[n - 2]);  // double_err
  EXPECT_TRUE(out[n - 1]);   // no-error flag
}

TEST(Secded16, SingleErrorFlagged) {
  const Netlist nl = gen_secded16();
  std::vector<bool> in(nl.inputs().size(), false);
  in[input_index(nl, "D3")] = true;  // one data bit flipped
  const auto out = eval_once(nl, in);
  const std::size_t n = out.size();
  EXPECT_TRUE(out[n - 3]);
  EXPECT_FALSE(out[n - 2]);
  EXPECT_FALSE(out[n - 1]);
}

TEST(Secded16, DoubleErrorDetectedNotCorrected) {
  const Netlist nl = gen_secded16();
  std::vector<bool> in(nl.inputs().size(), false);
  in[input_index(nl, "D3")] = true;
  in[input_index(nl, "D9")] = true;  // two flips: parity clean, syndrome not
  const auto out = eval_once(nl, in);
  const std::size_t n = out.size();
  EXPECT_FALSE(out[n - 3]);
  EXPECT_TRUE(out[n - 2]);
  EXPECT_FALSE(out[n - 1]);
}

TEST(AluBcd, MultiplierPathComputesProduct) {
  const Netlist nl = gen_alu_bcd();
  std::vector<bool> in(nl.inputs().size(), false);
  // EN=1 selects the multiplier accumulator; A=5, M=3 -> product 15.
  in[input_index(nl, "EN")] = true;
  in[input_index(nl, "A0")] = true;
  in[input_index(nl, "A2")] = true;
  in[input_index(nl, "M0")] = true;
  in[input_index(nl, "M1")] = true;
  const auto out = eval_once(nl, in);
  int r = 0;
  for (int i = 0; i < 8; ++i) r |= out[i] << i;
  EXPECT_EQ(r, 15);
}

TEST(AluBcd, AdderPathAdds) {
  const Netlist nl = gen_alu_bcd();
  std::vector<bool> in(nl.inputs().size(), false);
  // SEL=0 -> A+B; A=0x21, B=0x13 -> 0x34 (no BCD, no shift, EN=0).
  in[input_index(nl, "A0")] = true;
  in[input_index(nl, "A5")] = true;
  in[input_index(nl, "B0")] = true;
  in[input_index(nl, "B1")] = true;
  in[input_index(nl, "B4")] = true;
  const auto out = eval_once(nl, in);
  int r = 0;
  for (int i = 0; i < 8; ++i) r |= out[i] << i;
  EXPECT_EQ(r, 0x21 + 0x13);
}

TEST(Mult16, RandomProductsMatchArithmetic) {
  const Netlist nl = make_benchmark("c6288");
  EXPECT_GT(nl.gate_count(), 2000u);  // the >2k-gate stress profile
  ASSERT_EQ(nl.inputs().size(), 32u);
  ASSERT_EQ(nl.outputs().size(), 32u);
  std::mt19937_64 rng(0xC6288);
  PatternSet ps(32, 128);
  std::vector<std::uint32_t> a(128), b(128);
  for (int p = 0; p < 128; ++p) {
    a[p] = static_cast<std::uint32_t>(rng()) & 0xFFFF;
    b[p] = static_cast<std::uint32_t>(rng()) & 0xFFFF;
    for (int i = 0; i < 16; ++i) {
      ps.set(p, i, (a[p] >> i) & 1);
      ps.set(p, 16 + i, (b[p] >> i) & 1);
    }
  }
  const PatternSet out = BitSimulator(nl).outputs(ps);
  for (int p = 0; p < 128; ++p) {
    std::uint64_t got = 0;
    for (int o = 0; o < 32; ++o) {
      got |= static_cast<std::uint64_t>(out.get(p, o)) << o;
    }
    EXPECT_EQ(got, static_cast<std::uint64_t>(a[p]) * b[p])
        << a[p] << " * " << b[p];
  }
}

TEST(Mult16, EdgeOperands) {
  const Netlist nl = gen_mult16();
  const auto mul = [&](std::uint32_t a, std::uint32_t b) {
    std::vector<bool> in(32, false);
    for (int i = 0; i < 16; ++i) {
      in[i] = (a >> i) & 1;
      in[16 + i] = (b >> i) & 1;
    }
    const auto out = eval_once(nl, in);
    std::uint64_t r = 0;
    for (int o = 0; o < 32; ++o) r |= static_cast<std::uint64_t>(out[o]) << o;
    return r;
  };
  EXPECT_EQ(mul(0, 0), 0u);
  EXPECT_EQ(mul(0xFFFF, 0xFFFF), 0xFFFFull * 0xFFFF);
  EXPECT_EQ(mul(0xFFFF, 1), 0xFFFFull);
  EXPECT_EQ(mul(1, 0x8000), 0x8000ull);
  EXPECT_EQ(mul(0x8000, 0x8000), 0x8000ull * 0x8000);
}

TEST(C432Redundancy, ConsensusTermsAreAbsorbed) {
  // The hazard-cover ANDs must not affect functionality: compare against
  // random stimulus with those gates tied to 0 — identical responses.
  Netlist nl = gen_interrupt_controller();
  const PatternSet ps = random_patterns(nl.inputs().size(), 512, 99);
  const PatternSet before = BitSimulator(nl).outputs(ps);
  // Tie every AND gate that feeds only a single OR and has near-zero
  // probability of being 1 (the consensus covers) — conservative subset:
  // the gates named by the generator after the grant logic.
  // Instead of name-matching, verify via simulation that the circuit has
  // at least one gate whose tie-to-0 leaves all 512 responses unchanged.
  bool found_absorbed = false;
  for (NodeId id = 0; id < nl.raw_size() && !found_absorbed; ++id) {
    if (!nl.is_alive(id) || nl.node(id).type != GateType::And) continue;
    if (nl.is_output(id) || nl.node(id).fanout.size() != 1) continue;
    Netlist trial = nl;
    const NodeId tie = trial.const_node(false);
    trial.rewire_and_remove(id, tie);
    trial.sweep_dead_gates();
    const PatternSet after = BitSimulator(trial).outputs(ps);
    found_absorbed = BitSimulator::responses_equal(before, after);
  }
  EXPECT_TRUE(found_absorbed);
}

TEST(RandomCircuit, RespectsSpec) {
  RandomCircuitSpec spec;
  spec.num_inputs = 6;
  spec.num_gates = 30;
  spec.num_outputs = 3;
  spec.seed = 4;
  const Netlist nl = random_circuit(spec);
  EXPECT_EQ(nl.inputs().size(), 6u);
  EXPECT_EQ(nl.outputs().size(), 3u);
  EXPECT_EQ(nl.gate_count(), 30u);
  nl.check();
}

TEST(RandomCircuit, SeedsDiffer) {
  RandomCircuitSpec a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(write_bench_string(random_circuit(a)),
            write_bench_string(random_circuit(b)));
}

}  // namespace
}  // namespace tz
