// Functional tests for the benchmark circuit generators.
#include <gtest/gtest.h>
#include <cstdint>
#include <random>
#include <stdexcept>

#include "gen/circuits.hpp"
#include "gen/iscas.hpp"
#include "gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"

namespace tz {
namespace {

/// Helper: run one input assignment through a circuit.
std::vector<bool> eval_once(const Netlist& nl, const std::vector<bool>& in) {
  PatternSet ps(nl.inputs().size(), 1);
  for (std::size_t s = 0; s < in.size(); ++s) ps.set(0, s, in[s]);
  const PatternSet out = BitSimulator(nl).outputs(ps);
  std::vector<bool> o(out.num_signals());
  for (std::size_t s = 0; s < o.size(); ++s) o[s] = out.get(0, s);
  return o;
}

std::size_t input_index(const Netlist& nl, const std::string& name) {
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    if (nl.node(nl.inputs()[i]).name == name) return i;
  }
  throw std::out_of_range("no input " + name);
}

TEST(Generators, TableIInterfaceProfiles) {
  for (const BenchmarkSpec& spec : iscas85_specs()) {
    const Netlist nl = make_benchmark(spec.name);
    EXPECT_EQ(nl.inputs().size(), static_cast<std::size_t>(spec.paper_inputs))
        << spec.name;
    EXPECT_GT(nl.gate_count(), 0u);
    nl.check();
  }
}

TEST(Generators, Deterministic) {
  for (const char* name : {"c432", "c880"}) {
    const std::string a = write_bench_string(make_benchmark(name));
    const std::string b = write_bench_string(make_benchmark(name));
    EXPECT_EQ(a, b) << name;
  }
}

TEST(Generators, GateCountOrderingMatchesPaper) {
  // Relative sizes must track Table I: c432 < c499/c880 < c1908 < c3540.
  const auto gates = [](const char* n) {
    return make_benchmark(n).gate_count();
  };
  const auto g432 = gates("c432"), g499 = gates("c499"), g880 = gates("c880"),
             g1908 = gates("c1908"), g3540 = gates("c3540");
  EXPECT_LT(g432, g1908);
  EXPECT_LT(g499, g1908);
  EXPECT_LT(g880, g1908);
  EXPECT_LT(g1908, g3540);
}

TEST(InterruptController, HighestPriorityBusWins) {
  const Netlist nl = gen_interrupt_controller();
  std::vector<bool> in(nl.inputs().size(), false);
  // Enable all channels; request channel 3 on bus A and channel 2 on bus B.
  for (int e = 0; e < 9; ++e) in[input_index(nl, "E" + std::to_string(e))] = true;
  in[input_index(nl, "A3")] = true;
  in[input_index(nl, "B2")] = true;
  const auto out = eval_once(nl, in);
  EXPECT_TRUE(out[0]);   // grant A
  EXPECT_FALSE(out[1]);  // B loses to A
  EXPECT_FALSE(out[2]);
  // Encoded index = 3 (bits 0 and 1 set).
  EXPECT_TRUE(out[3]);
  EXPECT_TRUE(out[4]);
  EXPECT_FALSE(out[5]);
  EXPECT_FALSE(out[6]);
}

TEST(InterruptController, DisabledChannelIgnored) {
  const Netlist nl = gen_interrupt_controller();
  std::vector<bool> in(nl.inputs().size(), false);
  in[input_index(nl, "A4")] = true;  // requested but enable E4 low
  const auto out = eval_once(nl, in);
  EXPECT_FALSE(out[0]);
  EXPECT_FALSE(out[1]);
  EXPECT_FALSE(out[2]);
}

TEST(InterruptController, LowerChannelBeatsHigherWithinBus) {
  const Netlist nl = gen_interrupt_controller();
  std::vector<bool> in(nl.inputs().size(), false);
  for (int e = 0; e < 9; ++e) in[input_index(nl, "E" + std::to_string(e))] = true;
  in[input_index(nl, "C1")] = true;
  in[input_index(nl, "C6")] = true;
  const auto out = eval_once(nl, in);
  EXPECT_TRUE(out[2]);  // grant C
  // Winning index 1: bit0 only.
  EXPECT_TRUE(out[3]);
  EXPECT_FALSE(out[4]);
  EXPECT_FALSE(out[5]);
  EXPECT_FALSE(out[6]);
}

TEST(Sec32, CleanWordPassesThrough) {
  const Netlist nl = gen_sec32();
  std::vector<bool> in(nl.inputs().size(), false);
  // Arbitrary data, checks = recomputed parity. Easiest clean case: all
  // zeros with zero checks is a valid codeword.
  in[input_index(nl, "EN")] = true;
  const auto out = eval_once(nl, in);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_FALSE(out[i]);
}

TEST(Sec32, SingleBitErrorIsCorrected) {
  const Netlist nl = gen_sec32();
  // Flipping one data bit of the all-zero codeword makes the syndrome point
  // exactly at that bit; the decoder flips it back and the output equals
  // the clean word — the defining SEC property.
  std::vector<bool> clean(nl.inputs().size(), false);
  clean[input_index(nl, "EN")] = true;
  std::vector<bool> corrupted = clean;
  corrupted[input_index(nl, "D5")] = true;
  const auto a = eval_once(nl, clean);
  const auto b = eval_once(nl, corrupted);
  EXPECT_EQ(a, b);
}

TEST(Sec32, DisabledCorrectionIsPassthrough) {
  const Netlist nl = gen_sec32();
  std::vector<bool> in(nl.inputs().size(), false);
  in[input_index(nl, "D7")] = true;   // data bit set, EN=0
  in[input_index(nl, "K2")] = true;   // bogus check: would trigger corrector
  const auto out = eval_once(nl, in);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i == 7);  // exact passthrough of data
  }
}

TEST(Alu8, AddsWithCarry) {
  const Netlist nl = gen_alu8();
  std::vector<bool> in(nl.inputs().size(), false);
  // A=0x0F, B=0x01, SEL=0 (add path), CIN=0 -> R=0x10.
  for (int i = 0; i < 4; ++i) in[input_index(nl, "A" + std::to_string(i))] = true;
  in[input_index(nl, "B0")] = true;
  const auto out = eval_once(nl, in);
  // R bus occupies outputs 0..7.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i == 4) << "bit " << i;
}

TEST(Alu8, CarryInPropagates) {
  const Netlist nl = gen_alu8();
  std::vector<bool> base(nl.inputs().size(), false);
  std::vector<bool> with_cin = base;
  with_cin[input_index(nl, "CIN")] = true;
  const auto a = eval_once(nl, base);
  const auto b = eval_once(nl, with_cin);
  EXPECT_FALSE(a[0]);
  EXPECT_TRUE(b[0]);  // 0 + 0 + cin = 1
}

TEST(Alu8, LogicOpsSelectable) {
  const Netlist nl = gen_alu8();
  std::vector<bool> in(nl.inputs().size(), false);
  in[input_index(nl, "A0")] = true;  // A=1, B=0
  in[input_index(nl, "SEL0")] = true;  // select AND result
  const auto and_out = eval_once(nl, in);
  EXPECT_FALSE(and_out[0]);  // 1 AND 0 = 0
  in[input_index(nl, "SEL0")] = false;
  in[input_index(nl, "SEL1")] = true;  // select OR
  const auto or_out = eval_once(nl, in);
  EXPECT_TRUE(or_out[0]);  // 1 OR 0 = 1
}

TEST(Secded16, CleanWordReportsNoError) {
  const Netlist nl = gen_secded16();
  std::vector<bool> in(nl.inputs().size(), false);  // all-zero codeword
  const auto out = eval_once(nl, in);
  const std::size_t n = out.size();
  EXPECT_FALSE(out[n - 3]);  // single_err
  EXPECT_FALSE(out[n - 2]);  // double_err
  EXPECT_TRUE(out[n - 1]);   // no-error flag
}

TEST(Secded16, SingleErrorFlagged) {
  const Netlist nl = gen_secded16();
  std::vector<bool> in(nl.inputs().size(), false);
  in[input_index(nl, "D3")] = true;  // one data bit flipped
  const auto out = eval_once(nl, in);
  const std::size_t n = out.size();
  EXPECT_TRUE(out[n - 3]);
  EXPECT_FALSE(out[n - 2]);
  EXPECT_FALSE(out[n - 1]);
}

TEST(Secded16, DoubleErrorDetectedNotCorrected) {
  const Netlist nl = gen_secded16();
  std::vector<bool> in(nl.inputs().size(), false);
  in[input_index(nl, "D3")] = true;
  in[input_index(nl, "D9")] = true;  // two flips: parity clean, syndrome not
  const auto out = eval_once(nl, in);
  const std::size_t n = out.size();
  EXPECT_FALSE(out[n - 3]);
  EXPECT_TRUE(out[n - 2]);
  EXPECT_FALSE(out[n - 1]);
}

TEST(AluBcd, MultiplierPathComputesProduct) {
  const Netlist nl = gen_alu_bcd();
  std::vector<bool> in(nl.inputs().size(), false);
  // EN=1 selects the multiplier accumulator; A=5, M=3 -> product 15.
  in[input_index(nl, "EN")] = true;
  in[input_index(nl, "A0")] = true;
  in[input_index(nl, "A2")] = true;
  in[input_index(nl, "M0")] = true;
  in[input_index(nl, "M1")] = true;
  const auto out = eval_once(nl, in);
  int r = 0;
  for (int i = 0; i < 8; ++i) r |= out[i] << i;
  EXPECT_EQ(r, 15);
}

TEST(AluBcd, AdderPathAdds) {
  const Netlist nl = gen_alu_bcd();
  std::vector<bool> in(nl.inputs().size(), false);
  // SEL=0 -> A+B; A=0x21, B=0x13 -> 0x34 (no BCD, no shift, EN=0).
  in[input_index(nl, "A0")] = true;
  in[input_index(nl, "A5")] = true;
  in[input_index(nl, "B0")] = true;
  in[input_index(nl, "B1")] = true;
  in[input_index(nl, "B4")] = true;
  const auto out = eval_once(nl, in);
  int r = 0;
  for (int i = 0; i < 8; ++i) r |= out[i] << i;
  EXPECT_EQ(r, 0x21 + 0x13);
}

TEST(Mult16, RandomProductsMatchArithmetic) {
  const Netlist nl = make_benchmark("c6288");
  EXPECT_GT(nl.gate_count(), 2000u);  // the >2k-gate stress profile
  ASSERT_EQ(nl.inputs().size(), 32u);
  ASSERT_EQ(nl.outputs().size(), 32u);
  std::mt19937_64 rng(0xC6288);
  PatternSet ps(32, 128);
  std::vector<std::uint32_t> a(128), b(128);
  for (int p = 0; p < 128; ++p) {
    a[p] = static_cast<std::uint32_t>(rng()) & 0xFFFF;
    b[p] = static_cast<std::uint32_t>(rng()) & 0xFFFF;
    for (int i = 0; i < 16; ++i) {
      ps.set(p, i, (a[p] >> i) & 1);
      ps.set(p, 16 + i, (b[p] >> i) & 1);
    }
  }
  const PatternSet out = BitSimulator(nl).outputs(ps);
  for (int p = 0; p < 128; ++p) {
    std::uint64_t got = 0;
    for (int o = 0; o < 32; ++o) {
      got |= static_cast<std::uint64_t>(out.get(p, o)) << o;
    }
    EXPECT_EQ(got, static_cast<std::uint64_t>(a[p]) * b[p])
        << a[p] << " * " << b[p];
  }
}

TEST(Mult16, EdgeOperands) {
  const Netlist nl = gen_mult16();
  const auto mul = [&](std::uint32_t a, std::uint32_t b) {
    std::vector<bool> in(32, false);
    for (int i = 0; i < 16; ++i) {
      in[i] = (a >> i) & 1;
      in[16 + i] = (b >> i) & 1;
    }
    const auto out = eval_once(nl, in);
    std::uint64_t r = 0;
    for (int o = 0; o < 32; ++o) r |= static_cast<std::uint64_t>(out[o]) << o;
    return r;
  };
  EXPECT_EQ(mul(0, 0), 0u);
  EXPECT_EQ(mul(0xFFFF, 0xFFFF), 0xFFFFull * 0xFFFF);
  EXPECT_EQ(mul(0xFFFF, 1), 0xFFFFull);
  EXPECT_EQ(mul(1, 0x8000), 0x8000ull);
  EXPECT_EQ(mul(0x8000, 0x8000), 0x8000ull * 0x8000);
}

TEST(C432Redundancy, ConsensusTermsAreAbsorbed) {
  // The hazard-cover ANDs must not affect functionality: compare against
  // random stimulus with those gates tied to 0 — identical responses.
  Netlist nl = gen_interrupt_controller();
  const PatternSet ps = random_patterns(nl.inputs().size(), 512, 99);
  const PatternSet before = BitSimulator(nl).outputs(ps);
  // Tie every AND gate that feeds only a single OR and has near-zero
  // probability of being 1 (the consensus covers) — conservative subset:
  // the gates named by the generator after the grant logic.
  // Instead of name-matching, verify via simulation that the circuit has
  // at least one gate whose tie-to-0 leaves all 512 responses unchanged.
  bool found_absorbed = false;
  for (NodeId id = 0; id < nl.raw_size() && !found_absorbed; ++id) {
    if (!nl.is_alive(id) || nl.node(id).type != GateType::And) continue;
    if (nl.is_output(id) || nl.node(id).fanout.size() != 1) continue;
    Netlist trial = nl;
    const NodeId tie = trial.const_node(false);
    trial.rewire_and_remove(id, tie);
    trial.sweep_dead_gates();
    const PatternSet after = BitSimulator(trial).outputs(ps);
    found_absorbed = BitSimulator::responses_equal(before, after);
  }
  EXPECT_TRUE(found_absorbed);
}

TEST(RandomCircuit, RespectsSpec) {
  RandomCircuitSpec spec;
  spec.num_inputs = 6;
  spec.num_gates = 30;
  spec.num_outputs = 3;
  spec.seed = 4;
  const Netlist nl = random_circuit(spec);
  EXPECT_EQ(nl.inputs().size(), 6u);
  EXPECT_EQ(nl.outputs().size(), 3u);
  EXPECT_EQ(nl.gate_count(), 30u);
  nl.check();
}

TEST(RandomCircuit, SeedsDiffer) {
  RandomCircuitSpec a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(write_bench_string(random_circuit(a)),
            write_bench_string(random_circuit(b)));
}

TEST(RandomCircuit, ThrowsOnDegenerateSpec) {
  // Regression: a zero-input spec used to drive
  // uniform_int_distribution(0, -1) — undefined behaviour — and the other
  // degenerate shapes produced unusable "circuits" instead of failing.
  RandomCircuitSpec spec;
  spec.num_inputs = 0;
  EXPECT_THROW(random_circuit(spec), std::invalid_argument);
  spec = {};
  spec.num_gates = 0;
  EXPECT_THROW(random_circuit(spec), std::invalid_argument);
  spec = {};
  spec.num_outputs = -1;
  EXPECT_THROW(random_circuit(spec), std::invalid_argument);
  spec = {};
  spec.max_fanin = 1;
  EXPECT_THROW(random_circuit(spec), std::invalid_argument);
}

TEST(RandomCircuit, NoDuplicateFanins) {
  // Regression: duplicate fanin picks collapsed gates (XOR(a,a) == 0,
  // AND(a,a) == a), folding large random DAGs far below the requested size.
  // A small pool with wide gates is the stressiest shape for the dedup.
  RandomCircuitSpec spec;
  spec.num_inputs = 3;
  spec.num_gates = 500;
  spec.num_outputs = 8;
  spec.max_fanin = 3;
  spec.seed = 77;
  const Netlist nl = random_circuit(spec);
  for (NodeId id : nl.live_nodes()) {
    const Node& n = nl.node(id);
    for (std::size_t i = 0; i < n.fanin.size(); ++i) {
      for (std::size_t j = i + 1; j < n.fanin.size(); ++j) {
        EXPECT_NE(n.fanin[i], n.fanin[j]) << "gate " << n.name;
      }
    }
  }
}

TEST(RandomCircuit, SameSeedSameNetlist) {
  RandomCircuitSpec spec;
  spec.num_gates = 300;
  spec.seed = 1234;
  EXPECT_EQ(write_bench_string(random_circuit(spec)),
            write_bench_string(random_circuit(spec)));
}

// ---- The scalable large-circuit families (mult<W>, wallace<W>,
// aluecc<W>x<S>, rand<N>k) ----

/// Every alive gate must be structurally sound (legal arity, acyclic — both
/// via check()/topo_order()) and in the fanin cone of some output: the
/// make_benchmark sweep deletes unobservable logic, so a generator that
/// leaks dangling gates silently shrinks below its advertised size.
void expect_structural_invariants(const Netlist& nl) {
  nl.check();
  EXPECT_EQ(nl.topo_order().size(), nl.live_nodes().size());
  std::vector<char> in_cone(nl.raw_size(), 0);
  std::vector<NodeId> stack(nl.outputs().begin(), nl.outputs().end());
  for (NodeId id : stack) in_cone[id] = 1;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (NodeId f : nl.node(id).fanin) {
      if (!in_cone[f]) {
        in_cone[f] = 1;
        stack.push_back(f);
      }
    }
  }
  for (NodeId id : nl.live_nodes()) {
    const Node& n = nl.node(id);
    if (is_combinational(n.type)) {
      const Arity ar = arity_of(n.type);
      EXPECT_GE(static_cast<int>(n.fanin.size()), ar.min) << n.name;
      if (ar.max >= 0) {
        EXPECT_LE(static_cast<int>(n.fanin.size()), ar.max) << n.name;
      }
      EXPECT_TRUE(in_cone[id]) << "gate outside every output cone: " << n.name;
    }
  }
}

TEST(LargeCircuits, StructuralInvariants) {
  for (const char* name : {"mult8", "wallace8", "wallace9", "aluecc16x4"}) {
    SCOPED_TRACE(name);
    expect_structural_invariants(make_benchmark(name));
  }
}

/// Shared product check: drive |patterns| random W x W operand pairs and
/// compare against native 64-bit arithmetic.
void expect_products_match(const Netlist& nl, int width, std::uint64_t seed) {
  ASSERT_EQ(nl.inputs().size(), static_cast<std::size_t>(2 * width));
  ASSERT_EQ(nl.outputs().size(), static_cast<std::size_t>(2 * width));
  constexpr int kPatterns = 192;
  std::mt19937_64 rng(seed);
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  PatternSet ps(2 * width, kPatterns);
  std::vector<std::uint64_t> a(kPatterns), b(kPatterns);
  for (int p = 0; p < kPatterns; ++p) {
    // Mix edge operands in with the random ones.
    a[p] = p == 0 ? 0 : p == 1 ? mask : rng() & mask;
    b[p] = p == 0 ? mask : p == 1 ? mask : rng() & mask;
    for (int i = 0; i < width; ++i) {
      ps.set(p, i, (a[p] >> i) & 1);
      ps.set(p, width + i, (b[p] >> i) & 1);
    }
  }
  const PatternSet out = BitSimulator(nl).outputs(ps);
  for (int p = 0; p < kPatterns; ++p) {
    std::uint64_t got = 0;
    for (int o = 0; o < 2 * width; ++o) {
      got |= static_cast<std::uint64_t>(out.get(p, o)) << o;
    }
    EXPECT_EQ(got, a[p] * b[p]) << a[p] << " * " << b[p];
  }
}

TEST(LargeCircuits, MultArrayProductsMatch) {
  // Widths where a*b fits 64 bits; mult16 == c6288 is covered above.
  expect_products_match(make_benchmark("mult8"), 8, 0xA8);
  expect_products_match(make_benchmark("mult24"), 24, 0xA24);
}

TEST(LargeCircuits, WallaceProductsMatch) {
  // An odd width exercises the ragged final compression layers.
  expect_products_match(make_benchmark("wallace8"), 8, 0xB8);
  expect_products_match(make_benchmark("wallace13"), 13, 0xB13);
}

TEST(LargeCircuits, WallaceAgreesWithArray) {
  // Same function, independently structured implementations: random
  // responses must match bit-for-bit.
  const Netlist array = make_benchmark("mult10");
  const Netlist wallace = make_benchmark("wallace10");
  const PatternSet ps = random_patterns(20, 512, 0xAB);
  EXPECT_TRUE(BitSimulator::responses_equal(BitSimulator(array).outputs(ps),
                                            BitSimulator(wallace).outputs(ps)));
}

TEST(LargeCircuits, AluEccChainIsDeepAndDeterministic) {
  const Netlist nl = make_benchmark("aluecc16x8");
  EXPECT_EQ(nl.inputs().size(), 2u * 16 + 4);
  EXPECT_EQ(nl.outputs().size(), 16u + 1);
  expect_structural_invariants(nl);
  EXPECT_EQ(write_bench_string(nl),
            write_bench_string(make_benchmark("aluecc16x8")));
}

TEST(LargeCircuits, SpecGateCountsSurviveSweep) {
  // The registry's approx_gates are measured post-sweep values; a generator
  // regression that lets the dead-gate sweep eat structure (the original
  // rand<N>k failure mode) shows up as a deficit here. rand100k is exact by
  // construction: every gate is in some output cone.
  for (const LargeCircuitSpec& spec : large_circuit_specs()) {
    const Netlist nl = make_benchmark(spec.name);
    const double lo = 0.85 * spec.approx_gates;
    const double hi = 1.15 * spec.approx_gates;
    EXPECT_GE(nl.gate_count(), lo) << spec.name;
    EXPECT_LE(nl.gate_count(), hi) << spec.name;
    if (spec.name == "rand100k") {
      EXPECT_EQ(nl.gate_count(), 100000u);
    }
  }
}

TEST(LargeCircuits, MakeBenchmarkNameParsing) {
  // Unknown or malformed names must fail loudly, not fall through to a
  // generator with a half-parsed parameter.
  EXPECT_THROW(make_benchmark("mult"), std::out_of_range);
  EXPECT_THROW(make_benchmark("mult96x"), std::out_of_range);
  EXPECT_THROW(make_benchmark("wallacex"), std::out_of_range);
  EXPECT_THROW(make_benchmark("aluecc64"), std::out_of_range);
  EXPECT_THROW(make_benchmark("rand100"), std::out_of_range);
  EXPECT_THROW(make_benchmark("nonesuch"), std::out_of_range);
  // In-family but out-of-range parameters throw from the generator itself.
  EXPECT_THROW(make_benchmark("mult1"), std::invalid_argument);
  EXPECT_THROW(make_benchmark("wallace600"), std::invalid_argument);
  EXPECT_THROW(make_benchmark("aluecc64x0"), std::invalid_argument);
  EXPECT_THROW(make_benchmark("rand501k"), std::invalid_argument);
}

}  // namespace
}  // namespace tz
