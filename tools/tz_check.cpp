// tz_check — command-line lint for netlists and their compiled plans.
//
// Each argument is either a path to a .bench file or a generator spec known
// to make_benchmark ("c880", "rand100k", "mult32", ...). For every target the
// tool runs the strict NetlistChecker (orphan gates are findings here, unlike
// the FlowEngine boundary checks) and, when the netlist is clean enough to
// compile, a fresh-plan PlanChecker. All violations are printed with their
// stable kebab-case check ids; the exit status is 1 if any target had
// findings and 0 when everything is clean.
//
// --json switches stdout to one JSON array with an object per target
// ({"target", "ok", "live_nodes"|"error", "report"}), the report embedding
// the stable check-id keys — the machine-readable face CI diffs against.
//
// Usage: tz_check [--allow-unread] [--no-plan] [--json]
//                 <bench-file-or-spec>...
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "gen/iscas.hpp"
#include "netlist/bench_io.hpp"
#include "verify/verify.hpp"

namespace {

bool is_file(const char* path) {
  struct stat st {};
  return ::stat(path, &st) == 0 && S_ISREG(st.st_mode);
}

/// Escape a target name for embedding in the JSON output (paths can carry
/// quotes/backslashes; violation messages are escaped by VerifyReport).
std::string json_escape(const char* s) {
  std::string out;
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

int usage() {
  std::fprintf(stderr,
               "usage: tz_check [--allow-unread] [--no-plan] [--json] "
               "<bench-file-or-spec>...\n"
               "  --allow-unread  accept live gates with no readers\n"
               "  --no-plan       skip compiling and checking an EvalPlan\n"
               "  --json          structured JSON report on stdout\n"
               "targets: a .bench file path, or any make_benchmark spec\n"
               "         (c432, c880, c1908, c3540, c6288, rand100k, "
               "mult32, ...)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  tz::NetlistCheckOptions nopt;
  bool with_plan = true;
  bool json = false;
  std::vector<const char*> targets;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--allow-unread") == 0) {
      nopt.allow_unread_gates = true;
    } else if (std::strcmp(argv[i], "--no-plan") == 0) {
      with_plan = false;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      targets.push_back(argv[i]);
    }
  }
  if (targets.empty()) return usage();

  int dirty = 0;
  bool first = true;
  if (json) std::printf("[");
  for (const char* target : targets) {
    if (json && !first) std::printf(",\n ");
    first = false;
    tz::Netlist nl;
    try {
      nl = is_file(target) ? tz::read_bench_file(target)
                           : tz::make_benchmark(target);
    } catch (const std::exception& e) {
      if (json) {
        std::printf("{\"target\": \"%s\", \"ok\": false, \"error\": \"%s\"}",
                    json_escape(target).c_str(), json_escape(e.what()).c_str());
      } else {
        std::fprintf(stderr, "tz_check: %s: %s\n", target, e.what());
      }
      ++dirty;
      continue;
    }

    tz::VerifyReport report = tz::NetlistChecker::run(nl, nopt);
    // Only compile a plan over a structurally sound netlist: EvalPlan's
    // compiler assumes the invariants the netlist sweep just tested.
    if (with_plan && report.ok()) {
      try {
        const tz::EvalPlan plan(nl);
        report.merge(tz::PlanChecker::run(plan, nl));
      } catch (const std::exception& e) {
        report.add(tz::CheckId::PlanEquivalence,
                   std::string("plan compilation threw: ") + e.what());
      }
    }

    if (json) {
      std::printf(
          "{\"target\": \"%s\", \"ok\": %s, \"live_nodes\": %zu, "
          "\"report\": %s}",
          json_escape(target).c_str(), report.ok() ? "true" : "false",
          nl.live_count(), report.to_json().c_str());
      if (!report.ok()) ++dirty;
    } else if (report.ok()) {
      std::printf("tz_check: %s: OK (%zu live nodes)\n", target,
                  nl.live_count());
    } else {
      std::printf("tz_check: %s: %zu violation(s)\n", target,
                  report.violations.size());
      std::fputs(report.format().c_str(), stdout);
      ++dirty;
    }
  }
  if (json) std::printf("]\n");
  return dirty > 0 ? 1 : 0;
}
