// tz_campaign — the campaign front end: run / merge / status over a sweep
// grid (campaign/driver.hpp).
//
//   tz_campaign run    --grid <preset|file.json> --out <dir>
//                      [--shard i/N] [--threads T] [--job-threads J]
//                      [--max-jobs M] [--verbose]
//   tz_campaign merge  --grid <preset|file.json> --out <dir>
//                      [--shards N] [--output <file>]
//   tz_campaign status --grid <preset|file.json> --out <dir> [--shards N]
//
// `--grid` takes a built-in preset name (table1, fig3, fig7, smoke,
// campaign1k) or a path to a JSON grid description (the same schema
// CampaignGrid::to_json emits). `run` executes this process's shard with
// per-job JSONL checkpointing (restart-safe: completed jobs are skipped,
// a torn trailing line is truncated). `merge` folds all N shard files into
// one canonically-ordered artifact on stdout or --output; its bytes are
// identical for every shard/thread count that produced the inputs. `status`
// prints per-shard completion and exits 0 only when the campaign is done.
//
// Exit status: 0 on success (status: campaign complete), 1 on failure
// (status: incomplete), 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "campaign/driver.hpp"
#include "verify/verify.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: tz_campaign <run|merge|status> --grid <preset|file.json> "
      "--out <dir> [options]\n"
      "  run:    --shard i/N (default 0/1), --threads T, --job-threads J,\n"
      "          --max-jobs M (stop after M new jobs), --verbose\n"
      "  merge:  --shards N (default 1), --output <file> (default stdout)\n"
      "  status: --shards N (default 1)\n"
      "presets: table1, fig3, fig7, smoke, campaign1k\n");
  return 2;
}

bool is_file(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

tz::CampaignGrid load_grid(const std::string& arg) {
  if (is_file(arg)) {
    std::ifstream in(arg, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return tz::CampaignGrid::from_json(tz::Json::parse(ss.str()));
  }
  return tz::CampaignGrid::preset(arg);
}

bool parse_shard(const std::string& arg, std::size_t& index,
                 std::size_t& count) {
  const std::size_t slash = arg.find('/');
  if (slash == std::string::npos) return false;
  try {
    index = std::stoul(arg.substr(0, slash));
    count = std::stoul(arg.substr(slash + 1));
  } catch (const std::exception&) {
    return false;
  }
  return count > 0 && index < count;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd != "run" && cmd != "merge" && cmd != "status") return usage();

  std::string grid_arg, out_dir, output_file;
  tz::CampaignOptions opt;
  std::size_t shards = 1;
  std::size_t job_threads = 0;  // 0 = keep the grid's setting
  bool have_job_threads = false;

  for (int i = 2; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tz_campaign: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--grid") == 0) {
      const char* v = need_value("--grid");
      if (v == nullptr) return usage();
      grid_arg = v;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      const char* v = need_value("--out");
      if (v == nullptr) return usage();
      out_dir = v;
    } else if (std::strcmp(argv[i], "--shard") == 0) {
      const char* v = need_value("--shard");
      if (v == nullptr || !parse_shard(v, opt.shard_index, opt.shard_count)) {
        std::fprintf(stderr, "tz_campaign: --shard expects i/N\n");
        return usage();
      }
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      const char* v = need_value("--shards");
      if (v == nullptr) return usage();
      shards = std::stoul(v);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const char* v = need_value("--threads");
      if (v == nullptr) return usage();
      opt.threads = std::stoul(v);
    } else if (std::strcmp(argv[i], "--job-threads") == 0) {
      const char* v = need_value("--job-threads");
      if (v == nullptr) return usage();
      job_threads = std::stoul(v);
      have_job_threads = true;
    } else if (std::strcmp(argv[i], "--max-jobs") == 0) {
      const char* v = need_value("--max-jobs");
      if (v == nullptr) return usage();
      opt.max_jobs = std::stoul(v);
    } else if (std::strcmp(argv[i], "--output") == 0) {
      const char* v = need_value("--output");
      if (v == nullptr) return usage();
      output_file = v;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      opt.verbose = true;
    } else {
      std::fprintf(stderr, "tz_campaign: unknown flag %s\n", argv[i]);
      return usage();
    }
  }
  if (grid_arg.empty() || out_dir.empty()) return usage();
  opt.out_dir = out_dir;

  try {
    tz::CampaignGrid grid = load_grid(grid_arg);
    if (have_job_threads) grid.job_threads = job_threads;

    if (cmd == "run") {
      const tz::CampaignRunStats stats = tz::run_campaign(grid, opt);
      std::fprintf(stderr,
                   "tz_campaign: shard %zu/%zu: %zu jobs (%zu skipped, "
                   "%zu completed, %zu failed) of %zu total\n",
                   opt.shard_index, opt.shard_count, stats.shard_jobs,
                   stats.skipped, stats.completed, stats.failed,
                   stats.total_jobs);
      return stats.failed == 0 ? 0 : 1;
    }
    if (cmd == "merge") {
      if (output_file.empty()) {
        std::cout << tz::merge_campaign(grid, out_dir, shards);
      } else {
        tz::merge_campaign_to_file(grid, out_dir, shards, output_file);
        std::fprintf(stderr, "tz_campaign: merged %s\n", output_file.c_str());
      }
      return 0;
    }
    // status
    const bool done = tz::campaign_status(grid, out_dir, shards, std::cout);
    return done ? 0 : 1;
  } catch (const tz::VerifyError& e) {
    std::fprintf(stderr, "tz_campaign: invariant check failed at %s:\n%s",
                 std::string(e.phase()).c_str(), e.report().format().c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tz_campaign: %s\n", e.what());
    return 1;
  }
}
