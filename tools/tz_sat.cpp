// tz_sat — randomized miter fuzzing and CNF dumps for the SAT tier.
//
// `fuzz` generates seeded random circuits small enough for an exhaustive
// truth-table oracle, applies a random edit (gate retype, input swap, or
// none), and cross-checks the incremental miter's verdict against the
// oracle in every prepass/structural-matching configuration. A mismatch
// dumps the offending miter CNF next to the report and exits 1, so a CI
// smoke run leaves a reproducer behind.
//
// `dump` writes the miter CNF for two benchmark specs to a DIMACS file via
// the same hook TZ_SAT_DIMACS exposes, for offline debugging with external
// solvers.
//
// Usage: tz_sat fuzz [--runs N] [--seed S] [--dump-dir DIR]
//        tz_sat dump <spec-a> <spec-b> <out.cnf>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "gen/iscas.hpp"
#include "gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "sat/miter.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: tz_sat fuzz [--runs N] [--seed S] [--dump-dir DIR]\n"
               "       tz_sat dump <spec-a> <spec-b> <out.cnf>\n"
               "  fuzz: random small-circuit miters vs an exhaustive oracle,\n"
               "        across the prepass/structural-match option matrix\n"
               "  dump: write the miter CNF for two make_benchmark specs\n");
  return 2;
}

/// Exhaustive oracle: equal iff all outputs agree on all 2^PI vectors
/// (circuits are combinational; DFYs absent by construction).
bool oracle_equal(const tz::Netlist& a, const tz::Netlist& b) {
  const tz::PatternSet ps = tz::exhaustive_patterns(a.inputs().size());
  return tz::BitSimulator::responses_equal(tz::BitSimulator(a).outputs(ps),
                                           tz::BitSimulator(b).outputs(ps));
}

/// One of three edit flavors; returns false when the circuit offered no
/// applicable edit site (the run still checks the identity miter).
bool random_edit(tz::Netlist& nl, std::mt19937_64& rng) {
  const int flavor = static_cast<int>(rng() % 3);
  if (flavor == 0) return false;  // identity: must verify equivalent
  std::vector<tz::NodeId> gates;
  for (tz::NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id)) continue;
    const tz::GateType t = nl.node(id).type;
    if (t == tz::GateType::Input || t == tz::GateType::Dff) continue;
    gates.push_back(id);
  }
  if (gates.empty()) return false;
  const tz::NodeId g = gates[rng() % gates.size()];
  if (flavor == 1) {
    // Retype within the 2+-input families the encoder covers.
    static constexpr tz::GateType kPool[] = {
        tz::GateType::And, tz::GateType::Or, tz::GateType::Nand,
        tz::GateType::Nor, tz::GateType::Xor};
    const tz::GateType to = kPool[rng() % 5];
    if (nl.node(g).type == to || nl.node(g).fanin.size() < 2) return false;
    nl.retype(g, to);
    return true;
  }
  // Flavor 2: negate the gate's function where possible (And<->Nand etc.).
  switch (nl.node(g).type) {
    case tz::GateType::And: nl.retype(g, tz::GateType::Nand); return true;
    case tz::GateType::Nand: nl.retype(g, tz::GateType::And); return true;
    case tz::GateType::Or: nl.retype(g, tz::GateType::Nor); return true;
    case tz::GateType::Nor: nl.retype(g, tz::GateType::Or); return true;
    case tz::GateType::Xor: nl.retype(g, tz::GateType::Xnor); return true;
    case tz::GateType::Xnor: nl.retype(g, tz::GateType::Xor); return true;
    case tz::GateType::Buf: nl.retype(g, tz::GateType::Not); return true;
    case tz::GateType::Not: nl.retype(g, tz::GateType::Buf); return true;
    default: return false;
  }
}

int run_fuzz(int runs, std::uint64_t seed, const std::string& dump_dir) {
  int failures = 0;
  for (int run = 0; run < runs; ++run) {
    std::mt19937_64 rng(seed + static_cast<std::uint64_t>(run) * 7919);
    tz::RandomCircuitSpec spec;
    spec.seed = rng();
    spec.num_inputs = 4 + static_cast<int>(rng() % 9);  // 4..12: oracle-sized
    spec.num_gates = 10 + static_cast<int>(rng() % 70);
    const tz::Netlist original = tz::random_circuit(spec);
    tz::Netlist edited = original;
    random_edit(edited, rng);
    const bool truth = oracle_equal(original, edited);

    for (const bool prepass : {false, true}) {
      for (const bool structural : {false, true}) {
        tz::sat::MiterOptions opts;
        opts.prepass = prepass;
        opts.structural_match = structural;
        tz::sat::IncrementalMiter miter(original, edited, opts);
        const tz::sat::EquivalenceResult res = miter.check();
        if (res.decided && res.equivalent == truth) continue;
        ++failures;
        std::fprintf(stderr,
                     "FAIL run %d (seed %llu, prepass=%d, structural=%d): "
                     "miter says %s, oracle says %s\n",
                     run, static_cast<unsigned long long>(spec.seed),
                     prepass ? 1 : 0, structural ? 1 : 0,
                     !res.decided ? "undecided"
                                  : (res.equivalent ? "equal" : "unequal"),
                     truth ? "equal" : "unequal");
        if (!dump_dir.empty()) {
          const std::string path =
              dump_dir + "/tz_sat_fail_" + std::to_string(run) + ".cnf";
          std::ofstream os(path);
          miter.solver().write_dimacs(os);
          std::fprintf(stderr, "  miter CNF dumped to %s\n", path.c_str());
        }
      }
    }
  }
  if (failures == 0) {
    std::printf("tz_sat fuzz: %d runs x 4 configs clean\n", runs);
    return 0;
  }
  std::fprintf(stderr, "tz_sat fuzz: %d mismatch(es)\n", failures);
  return 1;
}

int run_dump(const char* spec_a, const char* spec_b, const char* out) {
  const tz::Netlist a = tz::make_benchmark(spec_a);
  const tz::Netlist b = tz::make_benchmark(spec_b);
  tz::sat::MiterOptions opts;
  opts.dimacs_path = out;
  tz::sat::IncrementalMiter miter(a, b, opts);
  const tz::sat::EquivalenceResult res = miter.check();
  std::printf("%s vs %s: %s (CNF at %s)\n", spec_a, spec_b,
              !res.decided ? "undecided"
                           : (res.equivalent ? "equivalent" : "inequivalent"),
              out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "fuzz") {
      int runs = 32;
      std::uint64_t seed = 1;
      std::string dump_dir;
      for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
          runs = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
          seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--dump-dir") == 0 && i + 1 < argc) {
          dump_dir = argv[++i];
        } else {
          return usage();
        }
      }
      return run_fuzz(runs, seed, dump_dir);
    }
    if (cmd == "dump" && argc == 5) return run_dump(argv[2], argv[3], argv[4]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tz_sat: %s\n", e.what());
    return 1;
  }
  return usage();
}
