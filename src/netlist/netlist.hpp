// Gate-level netlist IR.
//
// A Netlist is a named DAG of gates (plus DFF cells which break combinational
// cycles). Node storage is index-stable: removing a gate tombstones its slot
// so NodeIds held by analyses stay valid; compact() produces a dense copy.
//
// This is the common substrate for simulation, signal-probability analysis,
// ATPG, SAT encoding, power/area models and the TrojanZero transformations.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate_type.hpp"

namespace tz {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// One cell instance. `fanin` is ordered (matters for MUX); `fanout` is the
/// set of nodes that read this node's output, maintained by Netlist.
struct Node {
  GateType type = GateType::Input;
  std::string name;
  std::vector<NodeId> fanin;
  std::vector<NodeId> fanout;
  bool dead = false;  ///< Tombstone; slot is ignored by all traversals.
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction ----

  /// Add a primary input. Name must be unique.
  NodeId add_input(const std::string& name);

  /// Add a gate with the given fanin. Name must be unique; arity is checked.
  NodeId add_gate(GateType type, const std::string& name,
                  std::span<const NodeId> fanin);
  NodeId add_gate(GateType type, const std::string& name,
                  std::initializer_list<NodeId> fanin);

  /// Mark an existing node as a primary output (idempotent).
  void mark_output(NodeId id);

  // ---- access ----

  std::size_t raw_size() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  bool is_alive(NodeId id) const {
    return id < nodes_.size() && !nodes_[id].dead;
  }

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }
  const std::vector<NodeId>& dffs() const { return dffs_; }

  /// Live node ids in insertion order.
  std::vector<NodeId> live_nodes() const;

  /// Number of live nodes of any type.
  std::size_t live_count() const { return live_count_; }

  /// Number of live combinational gates (excludes PIs, ties and DFFs).
  std::size_t gate_count() const;

  /// Look up a node by name. Returns kNoNode if absent or dead.
  NodeId find(const std::string& name) const;

  /// Derive a node name from `base` that is not yet taken: `base` itself when
  /// free, else `base_1`, `base_2`, ... The single collision-avoidance scheme
  /// shared by every rewrite that materialises new cells.
  std::string unique_name(const std::string& base) const;

  /// Replace the driver recorded at `outputs()[index]` (undo helper for
  /// rewrites that retargeted a primary output). `id` must be alive.
  void restore_output(std::size_t index, NodeId id);

  /// True if `id` is a primary output.
  bool is_output(NodeId id) const;

  // ---- mutation (used by Algorithm 1/2 rewrites) ----

  /// Replace every read of `old_id` with `new_id` and fix fanout sets.
  /// Output markings on `old_id` transfer to `new_id`.
  void replace_uses(NodeId old_id, NodeId new_id);

  /// Tombstone a node. Precondition: fanout empty and not a primary output.
  void remove_node(NodeId id);

  /// Detach and tombstone a node even if it still has readers: every reader's
  /// fanin entry is rewired to `replacement`. Used for constant tying.
  void rewire_and_remove(NodeId id, NodeId replacement);

  /// Resurrect a tombstoned node (undo of remove_node). The tombstone keeps
  /// its fanin list, which must reference live nodes — when undoing a batch
  /// of removals, restore in reverse removal order.
  void restore_node(NodeId id);

  /// Remove gates with no live readers that are not outputs, transitively.
  /// Returns the number of gates removed. PIs and tie cells are never removed
  /// (PIs are part of the interface; orphaned ties are swept). When `removed`
  /// is given, the ids are appended in removal order (the order restore_node
  /// undoes when walked backwards).
  std::size_t sweep_dead_gates(std::vector<NodeId>* removed = nullptr);

  /// Get-or-create a tie cell of the given constant value.
  NodeId const_node(bool value);

  /// Change the type of a gate in place (arity of new type must accept the
  /// current fanin count).
  void retype(NodeId id, GateType t);

  /// Repoint one fanin slot of `id` to `new_src`, fixing both fanout sets.
  void relink_fanin(NodeId id, std::size_t slot, NodeId new_src);

  /// Replace primary-output marking of `old_id` with `new_id`.
  void swap_output(NodeId old_id, NodeId new_id);

  // ---- analysis helpers ----

  /// Topological order over live nodes. DFF outputs are treated as sources
  /// (their d-input edge is ignored), so the order is valid for one
  /// combinational evaluation pass. Throws std::runtime_error on a
  /// combinational cycle.
  std::vector<NodeId> topo_order() const;

  /// Logic depth (max gate count on any PI/DFF -> node path) per node.
  std::vector<int> depths() const;

  /// Transitive fanin cone of `roots` (live ids, includes roots).
  std::vector<NodeId> fanin_cone(std::span<const NodeId> roots) const;

  /// Deep copy with tombstones dropped and ids renumbered densely.
  /// Name->id mapping is preserved; fanin order is preserved.
  Netlist compact() const;

  /// Structural sanity check; throws std::runtime_error with a description
  /// of the first violation found (dangling ids, fanout mismatches, bad
  /// arity, dead references).
  void check() const;

  /// Per-type histogram of live nodes.
  std::vector<std::size_t> type_histogram() const;

 private:
  NodeId new_node(GateType type, const std::string& name);
  void link_fanin(NodeId id, std::span<const NodeId> fanin);

  /// tz::verify needs the raw containers (by_name_, role lists) to audit the
  /// bookkeeping the public API maintains; the test peer corrupts them.
  friend class NetlistChecker;
  friend struct NetlistTestPeer;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<NodeId> dffs_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::size_t live_count_ = 0;
  NodeId const0_ = kNoNode;
  NodeId const1_ = kNoNode;
};

}  // namespace tz
