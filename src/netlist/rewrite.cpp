#include "netlist/rewrite.hpp"

#include <algorithm>
#include <stdexcept>

namespace tz {

TieResult tie_to_constant(Netlist& nl, NodeId target, bool value,
                          TieUndo* undo) {
  if (!nl.is_alive(target)) {
    throw std::runtime_error("tie_to_constant: dead target");
  }
  const Node& t = nl.node(target);
  if (!is_combinational(t.type)) {
    throw std::runtime_error("tie_to_constant: target '" + t.name +
                             "' is not a combinational gate");
  }
  TieResult res;
  const std::size_t size_before = nl.raw_size();
  // A tied primary output keeps its tie cell as the new driver.
  res.tie = nl.const_node(value);
  if (undo) {
    undo->target = target;
    undo->tie = res.tie;
    undo->tie_created = nl.raw_size() > size_before;
    for (NodeId reader : nl.node(target).fanout) {
      const auto& fi = nl.node(reader).fanin;
      for (std::size_t slot = 0; slot < fi.size(); ++slot) {
        if (fi[slot] == target) undo->rewired.emplace_back(reader, slot);
      }
    }
    for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
      if (nl.outputs()[o] == target) undo->output_slots.push_back(o);
    }
    undo->removed.push_back(target);
  }
  nl.rewire_and_remove(target, res.tie);
  res.gates_removed =
      1 + nl.sweep_dead_gates(undo ? &undo->removed : nullptr);
  return res;
}

void undo_tie(Netlist& nl, const TieUndo& undo) {
  // Tombstones keep their fanin, so reverse removal order guarantees every
  // fanin is alive again by the time its reader is resurrected.
  for (auto it = undo.removed.rbegin(); it != undo.removed.rend(); ++it) {
    nl.restore_node(*it);
  }
  for (const auto& [reader, slot] : undo.rewired) {
    nl.relink_fanin(reader, slot, undo.target);
  }
  for (std::size_t o : undo.output_slots) nl.restore_output(o, undo.target);
  if (undo.tie_created && nl.is_alive(undo.tie) &&
      nl.node(undo.tie).fanout.empty() && !nl.is_output(undo.tie)) {
    nl.remove_node(undo.tie);
  }
}

namespace {

/// One constant-folding step on `id`. Returns true if the netlist changed.
bool fold_gate(Netlist& nl, NodeId id) {
  if (!nl.is_alive(id)) return false;
  const Node& n = nl.node(id);
  if (!is_combinational(n.type)) return false;

  auto value_of = [&](NodeId f) -> int {
    const GateType t = nl.node(f).type;
    if (t == GateType::Const0) return 0;
    if (t == GateType::Const1) return 1;
    return -1;
  };

  // Gather constant / non-constant fanin split.
  std::vector<NodeId> live_fanin;
  int zeros = 0, ones = 0;
  for (NodeId f : n.fanin) {
    const int v = value_of(f);
    if (v == 0) ++zeros;
    else if (v == 1) ++ones;
    else live_fanin.push_back(f);
  }
  if (zeros == 0 && ones == 0) return false;

  auto tie_away = [&](bool v) {
    nl.rewire_and_remove(id, nl.const_node(v));
    nl.sweep_dead_gates();
  };
  auto forward = [&](NodeId src, bool invert) {
    if (!invert) {
      nl.rewire_and_remove(id, src);
      nl.sweep_dead_gates();
      return;
    }
    const std::string inv_name = nl.unique_name(nl.node(id).name + "_inv");
    const NodeId inv = nl.add_gate(GateType::Not, inv_name, {src});
    nl.rewire_and_remove(id, inv);
    nl.sweep_dead_gates();
  };

  switch (n.type) {
    case GateType::Buf:
      tie_away(ones > 0);
      return true;
    case GateType::Not:
      tie_away(zeros > 0);
      return true;
    case GateType::And:
    case GateType::Nand: {
      const bool is_nand = n.type == GateType::Nand;
      if (zeros > 0) { tie_away(is_nand); return true; }
      // All remaining constants are 1s: drop them.
      if (live_fanin.empty()) { tie_away(!is_nand); return true; }
      if (live_fanin.size() == 1) { forward(live_fanin[0], is_nand); return true; }
      // Rebuild with trimmed fanin.
      const std::string nm = nl.unique_name(n.name + "_f");
      const NodeId g = nl.add_gate(n.type, nm, live_fanin);
      nl.rewire_and_remove(id, g);
      nl.sweep_dead_gates();
      return true;
    }
    case GateType::Or:
    case GateType::Nor: {
      const bool is_nor = n.type == GateType::Nor;
      if (ones > 0) { tie_away(!is_nor); return true; }
      if (live_fanin.empty()) { tie_away(is_nor); return true; }
      if (live_fanin.size() == 1) { forward(live_fanin[0], is_nor); return true; }
      const std::string nm = nl.unique_name(n.name + "_f");
      const NodeId g = nl.add_gate(n.type, nm, live_fanin);
      nl.rewire_and_remove(id, g);
      nl.sweep_dead_gates();
      return true;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      bool invert = (ones % 2) == 1;
      if (n.type == GateType::Xnor) invert = !invert;
      if (live_fanin.empty()) { tie_away(invert); return true; }
      if (live_fanin.size() == 1) { forward(live_fanin[0], invert); return true; }
      const GateType t = invert ? GateType::Xnor : GateType::Xor;
      const std::string nm = nl.unique_name(n.name + "_f");
      const NodeId g = nl.add_gate(t, nm, live_fanin);
      nl.rewire_and_remove(id, g);
      nl.sweep_dead_gates();
      return true;
    }
    case GateType::Mux: {
      const int sel = value_of(n.fanin[0]);
      if (sel == 0) { forward(n.fanin[1], false); return true; }
      if (sel == 1) { forward(n.fanin[2], false); return true; }
      const int a = value_of(n.fanin[1]);
      const int b = value_of(n.fanin[2]);
      if (a >= 0 && b >= 0 && a == b) { tie_away(a == 1); return true; }
      return false;
    }
    default:
      return false;
  }
}

}  // namespace

std::size_t propagate_constants(Netlist& nl) {
  std::size_t folded = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id = 0; id < nl.raw_size(); ++id) {
      if (fold_gate(nl, id)) {
        ++folded;
        changed = true;
      }
    }
  }
  return folded;
}

std::size_t tie_cell_count(const Netlist& nl) {
  std::size_t n = 0;
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (nl.is_alive(id) && is_const(nl.node(id).type)) ++n;
  }
  return n;
}

}  // namespace tz
