#include "netlist/rewrite.hpp"

#include <algorithm>
#include <stdexcept>

namespace tz {

TieResult tie_to_constant(Netlist& nl, NodeId target, bool value) {
  if (!nl.is_alive(target)) {
    throw std::runtime_error("tie_to_constant: dead target");
  }
  const Node& t = nl.node(target);
  if (!is_combinational(t.type)) {
    throw std::runtime_error("tie_to_constant: target '" + t.name +
                             "' is not a combinational gate");
  }
  TieResult res;
  res.tie = nl.const_node(value);
  if (nl.is_output(target)) {
    // A tied primary output keeps its tie cell as the new driver.
    nl.rewire_and_remove(target, res.tie);
    res.gates_removed = 1 + nl.sweep_dead_gates();
    return res;
  }
  nl.rewire_and_remove(target, res.tie);
  res.gates_removed = 1 + nl.sweep_dead_gates();
  return res;
}

namespace {

/// Derive a fresh node name from `base` that is not yet taken.
std::string unique_name(const Netlist& nl, const std::string& base) {
  if (nl.find(base) == kNoNode) return base;
  int k = 1;
  std::string name = base + "_1";
  while (nl.find(name) != kNoNode) name = base + "_" + std::to_string(++k);
  return name;
}

/// One constant-folding step on `id`. Returns true if the netlist changed.
bool fold_gate(Netlist& nl, NodeId id) {
  if (!nl.is_alive(id)) return false;
  const Node& n = nl.node(id);
  if (!is_combinational(n.type)) return false;

  auto value_of = [&](NodeId f) -> int {
    const GateType t = nl.node(f).type;
    if (t == GateType::Const0) return 0;
    if (t == GateType::Const1) return 1;
    return -1;
  };

  // Gather constant / non-constant fanin split.
  std::vector<NodeId> live_fanin;
  int zeros = 0, ones = 0;
  for (NodeId f : n.fanin) {
    const int v = value_of(f);
    if (v == 0) ++zeros;
    else if (v == 1) ++ones;
    else live_fanin.push_back(f);
  }
  if (zeros == 0 && ones == 0) return false;

  auto tie_away = [&](bool v) {
    nl.rewire_and_remove(id, nl.const_node(v));
    nl.sweep_dead_gates();
  };
  auto forward = [&](NodeId src, bool invert) {
    if (!invert) {
      nl.rewire_and_remove(id, src);
      nl.sweep_dead_gates();
      return;
    }
    const std::string inv_name = unique_name(nl, nl.node(id).name + "_inv");
    const NodeId inv = nl.add_gate(GateType::Not, inv_name, {src});
    nl.rewire_and_remove(id, inv);
    nl.sweep_dead_gates();
  };

  switch (n.type) {
    case GateType::Buf:
      tie_away(ones > 0);
      return true;
    case GateType::Not:
      tie_away(zeros > 0);
      return true;
    case GateType::And:
    case GateType::Nand: {
      const bool is_nand = n.type == GateType::Nand;
      if (zeros > 0) { tie_away(is_nand); return true; }
      // All remaining constants are 1s: drop them.
      if (live_fanin.empty()) { tie_away(!is_nand); return true; }
      if (live_fanin.size() == 1) { forward(live_fanin[0], is_nand); return true; }
      // Rebuild with trimmed fanin.
      const std::string nm = unique_name(nl, n.name + "_f");
      const NodeId g = nl.add_gate(n.type, nm, live_fanin);
      nl.rewire_and_remove(id, g);
      nl.sweep_dead_gates();
      return true;
    }
    case GateType::Or:
    case GateType::Nor: {
      const bool is_nor = n.type == GateType::Nor;
      if (ones > 0) { tie_away(!is_nor); return true; }
      if (live_fanin.empty()) { tie_away(is_nor); return true; }
      if (live_fanin.size() == 1) { forward(live_fanin[0], is_nor); return true; }
      const std::string nm = unique_name(nl, n.name + "_f");
      const NodeId g = nl.add_gate(n.type, nm, live_fanin);
      nl.rewire_and_remove(id, g);
      nl.sweep_dead_gates();
      return true;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      bool invert = (ones % 2) == 1;
      if (n.type == GateType::Xnor) invert = !invert;
      if (live_fanin.empty()) { tie_away(invert); return true; }
      if (live_fanin.size() == 1) { forward(live_fanin[0], invert); return true; }
      const GateType t = invert ? GateType::Xnor : GateType::Xor;
      const std::string nm = unique_name(nl, n.name + "_f");
      const NodeId g = nl.add_gate(t, nm, live_fanin);
      nl.rewire_and_remove(id, g);
      nl.sweep_dead_gates();
      return true;
    }
    case GateType::Mux: {
      const int sel = value_of(n.fanin[0]);
      if (sel == 0) { forward(n.fanin[1], false); return true; }
      if (sel == 1) { forward(n.fanin[2], false); return true; }
      const int a = value_of(n.fanin[1]);
      const int b = value_of(n.fanin[2]);
      if (a >= 0 && b >= 0 && a == b) { tie_away(a == 1); return true; }
      return false;
    }
    default:
      return false;
  }
}

}  // namespace

std::size_t propagate_constants(Netlist& nl) {
  std::size_t folded = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id = 0; id < nl.raw_size(); ++id) {
      if (fold_gate(nl, id)) {
        ++folded;
        changed = true;
      }
    }
  }
  return folded;
}

std::size_t tie_cell_count(const Netlist& nl) {
  std::size_t n = 0;
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (nl.is_alive(id) && is_const(nl.node(id).type)) ++n;
  }
  return n;
}

}  // namespace tz
