#include "netlist/netlist.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdint>
#include <span>
#include <stdexcept>

namespace tz {

std::string_view to_string(GateType t) {
  switch (t) {
    case GateType::Input: return "INPUT";
    case GateType::Const0: return "CONST0";
    case GateType::Const1: return "CONST1";
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Nand: return "NAND";
    case GateType::Or: return "OR";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
    case GateType::Mux: return "MUX";
    case GateType::Dff: return "DFF";
  }
  return "?";
}

std::optional<GateType> gate_type_from_string(std::string_view s) {
  std::string up(s.size(), '\0');
  std::transform(s.begin(), s.end(), up.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  static const std::array<std::pair<std::string_view, GateType>, 14> table{{
      {"INPUT", GateType::Input},
      {"CONST0", GateType::Const0},
      {"CONST1", GateType::Const1},
      {"BUF", GateType::Buf},
      {"BUFF", GateType::Buf},
      {"NOT", GateType::Not},
      {"AND", GateType::And},
      {"NAND", GateType::Nand},
      {"OR", GateType::Or},
      {"NOR", GateType::Nor},
      {"XOR", GateType::Xor},
      {"XNOR", GateType::Xnor},
      {"MUX", GateType::Mux},
      {"DFF", GateType::Dff},
  }};
  for (const auto& [name, type] : table) {
    if (up == name) return type;
  }
  return std::nullopt;
}

Arity arity_of(GateType t) {
  switch (t) {
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1:
      return {0, 0};
    case GateType::Buf:
    case GateType::Not:
    case GateType::Dff:
      return {1, 1};
    case GateType::Mux:
      return {3, 3};
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor:
    case GateType::Xor:
    case GateType::Xnor:
      return {2, -1};
  }
  return {0, 0};
}

NodeId Netlist::new_node(GateType type, const std::string& name) {
  if (name.empty()) throw std::runtime_error("netlist: empty node name");
  if (by_name_.contains(name)) {
    throw std::runtime_error("netlist: duplicate node name '" + name + "'");
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{.type = type, .name = name, .fanin = {}, .fanout = {},
                        .dead = false});
  by_name_.emplace(name, id);
  ++live_count_;
  return id;
}

void Netlist::link_fanin(NodeId id, std::span<const NodeId> fanin) {
  Node& n = nodes_[id];
  n.fanin.assign(fanin.begin(), fanin.end());
  for (NodeId f : n.fanin) {
    if (!is_alive(f)) {
      throw std::runtime_error("netlist: fanin of '" + n.name +
                               "' references a dead or invalid node");
    }
    nodes_[f].fanout.push_back(id);
  }
}

NodeId Netlist::add_input(const std::string& name) {
  const NodeId id = new_node(GateType::Input, name);
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_gate(GateType type, const std::string& name,
                         std::span<const NodeId> fanin) {
  if (type == GateType::Input) {
    throw std::runtime_error("netlist: use add_input for primary inputs");
  }
  const Arity a = arity_of(type);
  const int n = static_cast<int>(fanin.size());
  if (n < a.min || (a.max >= 0 && n > a.max)) {
    throw std::runtime_error(std::string("netlist: bad arity for ") +
                             std::string(to_string(type)) + " gate '" + name +
                             "'");
  }
  const NodeId id = new_node(type, name);
  link_fanin(id, fanin);
  if (type == GateType::Dff) dffs_.push_back(id);
  if (type == GateType::Const0 && const0_ == kNoNode) const0_ = id;
  if (type == GateType::Const1 && const1_ == kNoNode) const1_ = id;
  return id;
}

NodeId Netlist::add_gate(GateType type, const std::string& name,
                         std::initializer_list<NodeId> fanin) {
  return add_gate(type, name, std::span<const NodeId>(fanin.begin(), fanin.size()));
}

void Netlist::mark_output(NodeId id) {
  if (!is_alive(id)) throw std::runtime_error("netlist: mark_output on dead node");
  if (!is_output(id)) outputs_.push_back(id);
}

std::vector<NodeId> Netlist::live_nodes() const {
  std::vector<NodeId> out;
  out.reserve(live_count_);
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].dead) out.push_back(i);
  }
  return out;
}

std::size_t Netlist::gate_count() const {
  std::size_t n = 0;
  for (const Node& nd : nodes_) {
    if (!nd.dead && is_combinational(nd.type)) ++n;
  }
  return n;
}

NodeId Netlist::find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end() || nodes_[it->second].dead) return kNoNode;
  return it->second;
}

std::string Netlist::unique_name(const std::string& base) const {
  if (!by_name_.contains(base)) return base;
  int k = 1;
  std::string name = base + "_1";
  while (by_name_.contains(name)) name = base + "_" + std::to_string(++k);
  return name;
}

void Netlist::restore_output(std::size_t index, NodeId id) {
  if (index >= outputs_.size() || !is_alive(id)) {
    throw std::runtime_error("netlist: bad restore_output");
  }
  outputs_[index] = id;
}

bool Netlist::is_output(NodeId id) const {
  return std::find(outputs_.begin(), outputs_.end(), id) != outputs_.end();
}

void Netlist::replace_uses(NodeId old_id, NodeId new_id) {
  if (!is_alive(old_id) || !is_alive(new_id)) {
    throw std::runtime_error("netlist: replace_uses on dead node");
  }
  if (old_id == new_id) return;
  Node& old_node = nodes_[old_id];
  for (NodeId reader : old_node.fanout) {
    for (NodeId& f : nodes_[reader].fanin) {
      if (f == old_id) f = new_id;
    }
    nodes_[new_id].fanout.push_back(reader);
  }
  old_node.fanout.clear();
  for (NodeId& o : outputs_) {
    if (o == old_id) o = new_id;
  }
}

void Netlist::remove_node(NodeId id) {
  if (!is_alive(id)) throw std::runtime_error("netlist: double remove");
  Node& n = nodes_[id];
  if (!n.fanout.empty()) {
    throw std::runtime_error("netlist: removing node '" + n.name +
                             "' that still has readers");
  }
  if (is_output(id)) {
    throw std::runtime_error("netlist: removing primary output '" + n.name + "'");
  }
  for (NodeId f : n.fanin) {
    auto& fo = nodes_[f].fanout;
    fo.erase(std::remove(fo.begin(), fo.end(), id), fo.end());
  }
  // The fanin list stays in the tombstone so restore_node can undo the
  // removal; every traversal already skips dead nodes.
  n.dead = true;
  --live_count_;
  by_name_.erase(n.name);
  if (n.type == GateType::Dff) {
    dffs_.erase(std::remove(dffs_.begin(), dffs_.end(), id), dffs_.end());
  }
  if (n.type == GateType::Input) {
    inputs_.erase(std::remove(inputs_.begin(), inputs_.end(), id), inputs_.end());
  }
  if (id == const0_) const0_ = kNoNode;
  if (id == const1_) const1_ = kNoNode;
}

void Netlist::rewire_and_remove(NodeId id, NodeId replacement) {
  replace_uses(id, replacement);
  remove_node(id);
}

void Netlist::restore_node(NodeId id) {
  if (id >= nodes_.size() || !nodes_[id].dead) {
    throw std::runtime_error("netlist: restore_node on live or invalid node");
  }
  Node& n = nodes_[id];
  if (by_name_.contains(n.name)) {
    throw std::runtime_error("netlist: restore_node name '" + n.name +
                             "' was retaken");
  }
  for (NodeId f : n.fanin) {
    if (!is_alive(f)) {
      throw std::runtime_error("netlist: restore_node fanin of '" + n.name +
                               "' is dead (restore in reverse removal order)");
    }
  }
  for (NodeId f : n.fanin) nodes_[f].fanout.push_back(id);
  n.dead = false;
  ++live_count_;
  by_name_.emplace(n.name, id);
  if (n.type == GateType::Dff) dffs_.push_back(id);
  if (n.type == GateType::Input) inputs_.push_back(id);
  if (n.type == GateType::Const0 && const0_ == kNoNode) const0_ = id;
  if (n.type == GateType::Const1 && const1_ == kNoNode) const1_ = id;
}

std::size_t Netlist::sweep_dead_gates(std::vector<NodeId>* removed_log) {
  std::size_t removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId i = 0; i < nodes_.size(); ++i) {
      Node& n = nodes_[i];
      if (n.dead || n.fanout.empty() == false) continue;
      if (n.type == GateType::Input || is_output(i)) continue;
      remove_node(i);
      if (removed_log) removed_log->push_back(i);
      ++removed;
      changed = true;
    }
  }
  return removed;
}

NodeId Netlist::const_node(bool value) {
  NodeId& slot = value ? const1_ : const0_;
  if (slot != kNoNode && is_alive(slot)) return slot;
  const GateType t = value ? GateType::Const1 : GateType::Const0;
  std::string base = value ? "tie1" : "tie0";
  std::string name = base;
  int k = 0;
  while (by_name_.contains(name)) name = base + "_" + std::to_string(++k);
  slot = add_gate(t, name, {});
  return slot;
}

void Netlist::retype(NodeId id, GateType t) {
  if (!is_alive(id)) throw std::runtime_error("netlist: retype on dead node");
  const Arity a = arity_of(t);
  const int n = static_cast<int>(nodes_[id].fanin.size());
  if (n < a.min || (a.max >= 0 && n > a.max)) {
    throw std::runtime_error("netlist: retype arity mismatch");
  }
  if (is_sequential(nodes_[id].type) != is_sequential(t)) {
    throw std::runtime_error("netlist: retype cannot change sequential class");
  }
  nodes_[id].type = t;
}

void Netlist::relink_fanin(NodeId id, std::size_t slot, NodeId new_src) {
  if (!is_alive(id) || !is_alive(new_src) || slot >= nodes_[id].fanin.size()) {
    throw std::runtime_error("netlist: bad relink_fanin");
  }
  const NodeId old_src = nodes_[id].fanin[slot];
  auto& fo = nodes_[old_src].fanout;
  fo.erase(std::find(fo.begin(), fo.end(), id));
  nodes_[id].fanin[slot] = new_src;
  nodes_[new_src].fanout.push_back(id);
}

void Netlist::swap_output(NodeId old_id, NodeId new_id) {
  if (!is_alive(new_id)) throw std::runtime_error("netlist: bad swap_output");
  for (NodeId& o : outputs_) {
    if (o == old_id) o = new_id;
  }
}

std::vector<NodeId> Netlist::topo_order() const {
  std::vector<NodeId> order;
  order.reserve(live_count_);
  // In-degree counts only combinational edges: a DFF consumes its d-input but
  // its own output is available at cycle start, so it contributes no edge.
  std::vector<std::uint32_t> indeg(nodes_.size(), 0);
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.dead || is_source(n.type) || is_sequential(n.type)) continue;
    indeg[i] = static_cast<std::uint32_t>(n.fanin.size());
  }
  std::vector<NodeId> ready;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].dead && indeg[i] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (NodeId reader : nodes_[id].fanout) {
      const Node& r = nodes_[reader];
      if (r.dead || is_sequential(r.type) || is_source(r.type)) continue;
      if (--indeg[reader] == 0) ready.push_back(reader);
    }
  }
  if (order.size() != live_count_) {
    throw std::runtime_error("netlist: combinational cycle detected in '" +
                             name_ + "'");
  }
  return order;
}

std::vector<int> Netlist::depths() const {
  std::vector<int> d(nodes_.size(), 0);
  for (NodeId id : topo_order()) {
    const Node& n = nodes_[id];
    if (is_source(n.type) || is_sequential(n.type)) continue;
    int best = 0;
    for (NodeId f : n.fanin) best = std::max(best, d[f]);
    d[id] = best + 1;
  }
  return d;
}

std::vector<NodeId> Netlist::fanin_cone(std::span<const NodeId> roots) const {
  std::vector<char> seen(nodes_.size(), 0);
  std::vector<NodeId> stack(roots.begin(), roots.end());
  std::vector<NodeId> cone;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (id >= nodes_.size() || nodes_[id].dead || seen[id]) continue;
    seen[id] = 1;
    cone.push_back(id);
    for (NodeId f : nodes_[id].fanin) stack.push_back(f);
  }
  return cone;
}

Netlist Netlist::compact() const {
  Netlist out(name_);
  std::vector<NodeId> remap(nodes_.size(), kNoNode);
  // Insertion order respects construction order, and fanin nodes always have
  // smaller ids than their readers except through DFF q-edges; add sources
  // first, then the rest in topological order to be safe.
  for (NodeId id : inputs_) remap[id] = out.add_input(nodes_[id].name);
  // DFFs must exist before their readers; create placeholders first.
  std::vector<NodeId> order = topo_order();
  // DFF nodes are not in "ready set until their d is placed" — topo_order
  // treats them as sinks. Create DFFs after combinational pass; readers of a
  // DFF need its id first, so create DFF shells now with temporary Buf type.
  for (NodeId id : dffs_) {
    // Shell with no fanin yet; fixed up below.
    remap[id] = out.new_node(GateType::Dff, nodes_[id].name);
    out.dffs_.push_back(remap[id]);
  }
  for (NodeId id : order) {
    const Node& n = nodes_[id];
    if (n.type == GateType::Input || n.type == GateType::Dff) continue;
    std::vector<NodeId> fi;
    fi.reserve(n.fanin.size());
    for (NodeId f : n.fanin) fi.push_back(remap[f]);
    remap[id] = out.add_gate(n.type, n.name, fi);
  }
  for (NodeId id : dffs_) {
    const NodeId d_new = remap[nodes_[id].fanin[0]];
    out.link_fanin(remap[id], std::span<const NodeId>(&d_new, 1));
  }
  for (NodeId id : outputs_) out.mark_output(remap[id]);
  return out;
}

void Netlist::check() const {
  std::size_t live = 0;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.dead) continue;
    ++live;
    const Arity a = arity_of(n.type);
    const int nf = static_cast<int>(n.fanin.size());
    if (nf < a.min || (a.max >= 0 && nf > a.max)) {
      throw std::runtime_error("check: arity violation at '" + n.name + "'");
    }
    for (NodeId f : n.fanin) {
      if (f >= nodes_.size() || nodes_[f].dead) {
        throw std::runtime_error("check: dangling fanin at '" + n.name + "'");
      }
      const auto& fo = nodes_[f].fanout;
      if (std::count(fo.begin(), fo.end(), i) <
          std::count(n.fanin.begin(), n.fanin.end(), f)) {
        throw std::runtime_error("check: fanout set out of sync at '" +
                                 nodes_[f].name + "'");
      }
    }
    for (NodeId r : n.fanout) {
      if (r >= nodes_.size() || nodes_[r].dead) {
        throw std::runtime_error("check: dead reader recorded at '" + n.name + "'");
      }
      const auto& fi = nodes_[r].fanin;
      if (std::find(fi.begin(), fi.end(), i) == fi.end()) {
        throw std::runtime_error("check: phantom fanout at '" + n.name + "'");
      }
    }
  }
  if (live != live_count_) throw std::runtime_error("check: live count drift");
  for (NodeId o : outputs_) {
    if (!is_alive(o)) throw std::runtime_error("check: dead primary output");
  }
  (void)topo_order();  // throws on combinational cycles
}

std::vector<std::size_t> Netlist::type_histogram() const {
  std::vector<std::size_t> h(kGateTypeCount, 0);
  for (const Node& n : nodes_) {
    if (!n.dead) ++h[static_cast<std::size_t>(n.type)];
  }
  return h;
}

}  // namespace tz
