#include "netlist/bench_io.hpp"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace tz {
namespace {

std::string strip(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("bench:" + std::to_string(line) + ": " + msg);
}

struct PendingGate {
  std::string name;
  GateType type = GateType::Buf;
  std::vector<std::string> fanin;
  int line = 0;
};

}  // namespace

Netlist read_bench(std::istream& in, std::string circuit_name) {
  Netlist nl(std::move(circuit_name));
  std::vector<std::string> output_names;
  std::vector<PendingGate> gates;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (auto pos = line.find('#'); pos != std::string::npos) line.resize(pos);
    const std::string text = strip(line);
    if (text.empty()) continue;

    const auto eq = text.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      const auto open = text.find('(');
      const auto close = text.rfind(')');
      if (open == std::string::npos || close == std::string::npos || close < open) {
        fail(lineno, "expected INPUT(...)/OUTPUT(...) or assignment");
      }
      const std::string kw = strip(text.substr(0, open));
      const std::string arg = strip(text.substr(open + 1, close - open - 1));
      if (arg.empty()) fail(lineno, "empty signal name");
      if (kw == "INPUT" || kw == "input") {
        nl.add_input(arg);
      } else if (kw == "OUTPUT" || kw == "output") {
        output_names.push_back(arg);
      } else {
        fail(lineno, "unknown directive '" + kw + "'");
      }
      continue;
    }

    PendingGate g;
    g.line = lineno;
    g.name = strip(text.substr(0, eq));
    if (g.name.empty()) fail(lineno, "empty gate name");
    const std::string rhs = strip(text.substr(eq + 1));
    const auto open = rhs.find('(');
    const auto close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open) {
      fail(lineno, "expected GATE(args)");
    }
    const std::string mnemonic = strip(rhs.substr(0, open));
    const auto type = gate_type_from_string(mnemonic);
    if (!type || *type == GateType::Input) {
      fail(lineno, "unknown gate type '" + mnemonic + "'");
    }
    g.type = *type;
    std::string args = rhs.substr(open + 1, close - open - 1);
    std::stringstream ss(args);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      const std::string a = strip(tok);
      if (!a.empty()) g.fanin.push_back(a);
    }
    gates.push_back(std::move(g));
  }

  // Two-pass creation: DFF shells are not needed in .bench combinational
  // files, but gates may be declared before their fanins; resolve iteratively.
  std::map<std::string, const PendingGate*> pending;
  for (const PendingGate& g : gates) {
    if (pending.contains(g.name)) fail(g.line, "redefinition of '" + g.name + "'");
    pending.emplace(g.name, &g);
  }
  // Emit in dependency order with an explicit DFS (bench files can forward
  // reference).
  enum class Mark : char { White, Grey, Black };
  std::map<std::string, Mark> mark;
  std::vector<const PendingGate*> stack;
  auto emit = [&](const PendingGate* root, auto&& self) -> void {
    if (mark[root->name] == Mark::Black) return;
    if (mark[root->name] == Mark::Grey) {
      fail(root->line, "combinational loop through '" + root->name + "'");
    }
    mark[root->name] = Mark::Grey;
    for (const std::string& fi : root->fanin) {
      if (nl.find(fi) != kNoNode) continue;
      auto it = pending.find(fi);
      if (it == pending.end()) {
        fail(root->line, "undeclared signal '" + fi + "'");
      }
      if (root->type != GateType::Dff) self(it->second, self);
    }
    if (root->type == GateType::Dff) {
      // Sequential .bench (ISCAS89 style): treat q as a pseudo-input first if
      // the d-cone is not yet resolvable. We create the DFF after all
      // combinational gates; handled by a second pass below.
      mark[root->name] = Mark::White;  // leave for pass 2
      return;
    }
    std::vector<NodeId> fanin_ids;
    fanin_ids.reserve(root->fanin.size());
    for (const std::string& fi : root->fanin) {
      const NodeId id = nl.find(fi);
      if (id == kNoNode) fail(root->line, "unresolved fanin '" + fi + "'");
      fanin_ids.push_back(id);
    }
    nl.add_gate(root->type, root->name, fanin_ids);
    mark[root->name] = Mark::Black;
  };
  // Pass 1: combinational gates; DFF q-pins become pseudo sources by creating
  // the DFF node eagerly when something reads an as-yet-unemitted DFF.
  // Simpler approach for correctness: create all DFF q nodes as Buf-of-nothing
  // is impossible, so create DFFs last and forbid reading a DFF before its d
  // cone exists only if the file is purely combinational. ISCAS85 files are
  // combinational; our own writer emits DFFs after their fanin. Handle the
  // general case by emitting DFF readers lazily: first try plain DFS and on
  // unresolved DFF references, create the DFF with a temporary self-cycle.
  for (const PendingGate& g : gates) {
    if (g.type == GateType::Dff) continue;
    bool reads_dff = false;
    for (const std::string& fi : g.fanin) {
      auto it = pending.find(fi);
      if (it != pending.end() && it->second->type == GateType::Dff) {
        reads_dff = true;
      }
    }
    if (reads_dff) continue;  // handled in pass 3
    emit(&g, emit);
  }
  // Pass 2a: create every remaining DFF with a placeholder d-input so its
  // q-pin resolves for readers — sequential feedback (q -> logic -> d) is
  // legal and must not deadlock the resolver.
  std::vector<const PendingGate*> dff_fixups;
  NodeId placeholder = kNoNode;
  for (const PendingGate& g : gates) {
    if (g.type != GateType::Dff || mark[g.name] == Mark::Black) continue;
    if (placeholder == kNoNode) placeholder = nl.const_node(false);
    nl.add_gate(GateType::Dff, g.name, {placeholder});
    mark[g.name] = Mark::Black;
    dff_fixups.push_back(&g);
  }
  // Pass 2b: everything else now resolves by iteration.
  bool progress = true;
  while (progress) {
    progress = false;
    for (const PendingGate& g : gates) {
      if (mark[g.name] == Mark::Black) continue;
      bool ready = true;
      for (const std::string& fi : g.fanin) {
        if (nl.find(fi) == kNoNode) { ready = false; break; }
      }
      if (!ready) continue;
      std::vector<NodeId> fanin_ids;
      for (const std::string& fi : g.fanin) fanin_ids.push_back(nl.find(fi));
      nl.add_gate(g.type, g.name, fanin_ids);
      mark[g.name] = Mark::Black;
      progress = true;
    }
  }
  // Pass 2c: relink each placeholder-built DFF to its real d-input.
  for (const PendingGate* g : dff_fixups) {
    const NodeId q = nl.find(g->name);
    const NodeId d = nl.find(g->fanin[0]);
    if (d == kNoNode) fail(g->line, "unresolved DFF input '" + g->fanin[0] + "'");
    nl.relink_fanin(q, 0, d);
  }
  if (placeholder != kNoNode && nl.node(placeholder).fanout.empty() &&
      !nl.is_output(placeholder)) {
    nl.remove_node(placeholder);
  }
  for (const PendingGate& g : gates) {
    if (mark[g.name] != Mark::Black) {
      fail(g.line, "could not resolve gate '" + g.name +
                       "' (cycle without a DFF?)");
    }
  }

  for (const std::string& out_name : output_names) {
    const NodeId id = nl.find(out_name);
    if (id == kNoNode) {
      throw std::runtime_error("bench: OUTPUT(" + out_name + ") never defined");
    }
    nl.mark_output(id);
  }
  nl.check();
  return nl;
}

Netlist read_bench_string(const std::string& text, std::string circuit_name) {
  std::istringstream in(text);
  return read_bench(in, std::move(circuit_name));
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("bench: cannot open '" + path + "'");
  return read_bench(in, path);
}

void write_bench(std::ostream& out, const Netlist& nl) {
  out << "# " << nl.name() << " — " << nl.inputs().size() << " inputs, "
      << nl.outputs().size() << " outputs, " << nl.gate_count() << " gates\n";
  for (NodeId id : nl.inputs()) out << "INPUT(" << nl.node(id).name << ")\n";
  for (NodeId id : nl.outputs()) out << "OUTPUT(" << nl.node(id).name << ")\n";
  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    if ((is_source(n.type) && !is_const(n.type)) || is_sequential(n.type)) {
      continue;  // PIs already declared; DFFs are emitted after their fanin
    }
    out << n.name << " = " << to_string(n.type) << "(";
    for (std::size_t i = 0; i < n.fanin.size(); ++i) {
      if (i) out << ", ";
      out << nl.node(n.fanin[i]).name;
    }
    out << ")\n";
  }
  // DFFs are sinks in topo_order; emit them explicitly.
  for (NodeId id : nl.dffs()) {
    const Node& n = nl.node(id);
    out << n.name << " = DFF(" << nl.node(n.fanin[0]).name << ")\n";
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream out;
  write_bench(out, nl);
  return out.str();
}

}  // namespace tz
