// Reader/writer for the ISCAS85 .bench netlist dialect.
//
// Grammar (as used by the ISCAS85/89 distributions):
//   # comment
//   INPUT(name)
//   OUTPUT(name)
//   name = GATE(a, b, ...)
// We additionally accept CONST0()/CONST1() ties, MUX(sel,a,b) and DFF(d),
// which the TrojanZero transformations introduce.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace tz {

/// Parse a .bench netlist from a stream. Throws std::runtime_error with a
/// line-numbered message on malformed input.
Netlist read_bench(std::istream& in, std::string circuit_name = "bench");

/// Parse from an in-memory string (convenience for embedded circuits).
Netlist read_bench_string(const std::string& text,
                          std::string circuit_name = "bench");

/// Load from a file path.
Netlist read_bench_file(const std::string& path);

/// Serialize to .bench text. Gates are emitted in topological order so the
/// output is directly re-parseable.
void write_bench(std::ostream& out, const Netlist& nl);
std::string write_bench_string(const Netlist& nl);

}  // namespace tz
