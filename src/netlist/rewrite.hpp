// Netlist rewriting passes used by the TrojanZero transformations.
//
// Algorithm 1 replaces a candidate gate's output with a constant tie and then
// removes every preceding gate that became unobservable. These helpers keep
// that surgery structurally sound (fanout bookkeeping, output preservation)
// and additionally provide the constant-propagation clean-up the paper's
// "update circuit to N'" step implies.
#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace tz {

/// Result of one tie-to-constant rewrite.
struct TieResult {
  std::size_t gates_removed = 0;  ///< Gates swept from the dead fanin cone.
  NodeId tie = kNoNode;           ///< The tie cell readers were rewired to.
};

/// Replace `target`'s output with constant `value` (paper: "connect node to
/// logic 0/1"), then sweep the gates whose outputs are no longer read.
/// `target` must be a combinational gate, not a primary output.
TieResult tie_to_constant(Netlist& nl, NodeId target, bool value);

/// Propagate tie cells through the logic: AND(x,0)->0, OR(x,1)->1,
/// AND(x,1)->BUF(x), XOR(x,0)->BUF(x), XOR(x,1)->NOT(x), MUX with constant
/// select, etc. Returns the number of gates simplified away. Outputs are
/// preserved (they may end up driven by ties or buffers).
std::size_t propagate_constants(Netlist& nl);

/// Count of live tie cells currently feeding logic.
std::size_t tie_cell_count(const Netlist& nl);

}  // namespace tz
