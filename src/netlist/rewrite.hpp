// Netlist rewriting passes used by the TrojanZero transformations.
//
// Algorithm 1 replaces a candidate gate's output with a constant tie and then
// removes every preceding gate that became unobservable. These helpers keep
// that surgery structurally sound (fanout bookkeeping, output preservation)
// and additionally provide the constant-propagation clean-up the paper's
// "update circuit to N'" step implies.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"

namespace tz {

/// Result of one tie-to-constant rewrite.
struct TieResult {
  std::size_t gates_removed = 0;  ///< Gates swept from the dead fanin cone.
  NodeId tie = kNoNode;           ///< The tie cell readers were rewired to.
};

/// Undo log of one tie_to_constant: enough to restore the removed cone and
/// the rewired readers without snapshotting the whole netlist. Algorithm 1
/// records one of these per candidate and rolls back on a failed defender
/// check — O(cone) instead of an O(netlist) copy.
struct TieUndo {
  NodeId target = kNoNode;
  NodeId tie = kNoNode;
  bool tie_created = false;  ///< The tie cell was created by this rewrite.
  /// Reader fanin slots that were repointed from `target` to `tie`.
  std::vector<std::pair<NodeId, std::size_t>> rewired;
  /// outputs() indices that were retargeted from `target` to `tie`.
  std::vector<std::size_t> output_slots;
  /// Tombstoned ids in removal order (`target` first, then the swept cone).
  std::vector<NodeId> removed;
};

/// Replace `target`'s output with constant `value` (paper: "connect node to
/// logic 0/1"), then sweep the gates whose outputs are no longer read.
/// `target` must be a combinational gate. When `undo` is given, the rewrite
/// is recorded so undo_tie can revert it exactly.
TieResult tie_to_constant(Netlist& nl, NodeId target, bool value,
                          TieUndo* undo = nullptr);

/// Revert a tie_to_constant recorded in `undo`: resurrect the removed cone
/// (reverse removal order), repoint the rewired readers back to the target
/// and drop the tie cell again if the rewrite created it.
void undo_tie(Netlist& nl, const TieUndo& undo);

/// Propagate tie cells through the logic: AND(x,0)->0, OR(x,1)->1,
/// AND(x,1)->BUF(x), XOR(x,0)->BUF(x), XOR(x,1)->NOT(x), MUX with constant
/// select, etc. Returns the number of gates simplified away. Outputs are
/// preserved (they may end up driven by ties or buffers).
std::size_t propagate_constants(Netlist& nl);

/// Count of live tie cells currently feeding logic.
std::size_t tie_cell_count(const Netlist& nl);

}  // namespace tz
