// Gate alphabet for the TrojanZero netlist IR.
//
// The alphabet covers the ISCAS85 set (AND/NAND/OR/NOR/NOT/BUF/XOR/XNOR),
// constant tie cells produced by Algorithm 1 when a gate is salvaged, and the
// MUX/DFF cells needed to build the counter-based hardware Trojan of Fig. 4.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tz {

enum class GateType : std::uint8_t {
  Input,   ///< Primary input; no fanin.
  Const0,  ///< Tie-low cell (logic 0); no fanin.
  Const1,  ///< Tie-high cell (logic 1); no fanin.
  Buf,     ///< 1-input buffer.
  Not,     ///< 1-input inverter.
  And,     ///< N-input AND, N >= 2.
  Nand,    ///< N-input NAND, N >= 2.
  Or,      ///< N-input OR, N >= 2.
  Nor,     ///< N-input NOR, N >= 2.
  Xor,     ///< N-input XOR (odd parity).
  Xnor,    ///< N-input XNOR (even parity).
  Mux,     ///< 3-input multiplexer: fanin = {sel, a, b}; out = sel ? b : a.
  Dff,     ///< D flip-flop: fanin = {d}; output is the registered state q.
};

/// Number of distinct gate types (for table-driven code).
inline constexpr int kGateTypeCount = 13;

/// True for cells that have no logic fanin (PIs and tie cells).
constexpr bool is_source(GateType t) {
  return t == GateType::Input || t == GateType::Const0 || t == GateType::Const1;
}

/// True for the two constant tie cells.
constexpr bool is_const(GateType t) {
  return t == GateType::Const0 || t == GateType::Const1;
}

/// True for state-holding cells (cycle boundary in simulation).
constexpr bool is_sequential(GateType t) { return t == GateType::Dff; }

/// True for purely combinational logic cells.
constexpr bool is_combinational(GateType t) {
  return !is_source(t) && !is_sequential(t);
}

/// Canonical upper-case mnemonic, as used by the ISCAS85 .bench dialect.
std::string_view to_string(GateType t);

/// Parse a .bench mnemonic (case-insensitive). Returns nullopt on failure.
std::optional<GateType> gate_type_from_string(std::string_view s);

/// Valid fanin arity for a gate type: [min, max] (max = -1 means unbounded).
struct Arity {
  int min;
  int max;
};
Arity arity_of(GateType t);

}  // namespace tz
