// AVX2 stripe kernel. This translation unit is compiled with -mavx2 (see
// CMakeLists) and is only part of the build when the toolchain supports the
// flag; stripe_kernel() guards execution behind a runtime CPUID probe, so
// linking it on a non-AVX2 machine is safe.
#define TZ_STRIPE_FN eval_plan_stripe_avx2
#define TZ_STRIPE_USE_AVX2 1
#include "sim/eval_stripe_impl.hpp"
