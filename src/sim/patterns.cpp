#include "sim/patterns.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "util/debug.hpp"

namespace tz {

PatternSet::PatternSet(std::size_t num_signals, std::size_t num_patterns)
    : num_signals_(num_signals),
      num_patterns_(num_patterns),
      words_per_signal_((num_patterns + 63) / 64),
      capacity_words_(words_per_signal_),
      bits_(num_signals * words_per_signal_, 0) {}

void PatternSet::set(std::size_t pattern, std::size_t signal, bool value) {
  if (pattern >= num_patterns_ || signal >= num_signals_) {
    throw std::out_of_range("PatternSet::set");
  }
  std::uint64_t& w = bits_[signal * capacity_words_ + pattern / 64];
  const std::uint64_t m = std::uint64_t{1} << (pattern % 64);
  if (value) w |= m; else w &= ~m;
}

bool PatternSet::get(std::size_t pattern, std::size_t signal) const {
  if (pattern >= num_patterns_ || signal >= num_signals_) {
    throw std::out_of_range("PatternSet::get");
  }
  const std::uint64_t w = bits_[signal * capacity_words_ + pattern / 64];
  return (w >> (pattern % 64)) & 1;
}

std::span<const std::uint64_t> PatternSet::words(std::size_t signal) const {
  TZ_DBG_ASSERT(signal < num_signals_, "PatternSet::words signal index");
  return {bits_.data() + signal * capacity_words_, words_per_signal_};
}

std::span<std::uint64_t> PatternSet::words(std::size_t signal) {
  TZ_DBG_ASSERT(signal < num_signals_, "PatternSet::words signal index");
  return {bits_.data() + signal * capacity_words_, words_per_signal_};
}

std::uint64_t PatternSet::tail_mask() const {
  return tail_mask_for(num_patterns_);
}

bool PatternSet::operator==(const PatternSet& other) const {
  // Capacity and padding are representation details; equality is over the
  // logical (num_signals x num_patterns) content only. The tail-hygiene
  // invariant (bits past num_patterns_ in the last word are zero) makes the
  // last word directly comparable.
  if (num_signals_ != other.num_signals_ ||
      num_patterns_ != other.num_patterns_) {
    return false;
  }
  for (std::size_t s = 0; s < num_signals_; ++s) {
    const auto a = words(s);
    const auto b = other.words(s);
    if (!std::equal(a.begin(), a.end(), b.begin())) return false;
  }
  return true;
}

void PatternSet::reserve(std::size_t num_patterns) {
  const std::size_t want = (num_patterns + 63) / 64;
  if (want <= capacity_words_) return;
  // Re-layout into the wider stride. Fresh capacity words are zero-filled so
  // the tail-hygiene invariant (everything past the logical width is zero)
  // survives the move.
  std::vector<std::uint64_t> grown(num_signals_ * want, 0);
  for (std::size_t s = 0; s < num_signals_; ++s) {
    std::copy_n(bits_.data() + s * capacity_words_, words_per_signal_,
                grown.data() + s * want);
  }
  bits_ = std::move(grown);
  capacity_words_ = want;
}

PatternSet PatternSet::slice(std::size_t first, std::size_t count) const {
  if (first > num_patterns_ || count > num_patterns_ - first) {
    throw std::out_of_range("PatternSet::slice");
  }
  PatternSet out(num_signals_, count);
  if (count == 0) return out;
  const std::size_t word0 = first / 64;
  const std::size_t shift = first % 64;
  for (std::size_t s = 0; s < num_signals_; ++s) {
    const auto src = words(s);
    auto dst = out.words(s);
    // Word-wise funnel shift instead of per-bit set/get: dst word w is the
    // 64-bit window of src starting at bit `first + 64w`.
    for (std::size_t w = 0; w < dst.size(); ++w) {
      std::uint64_t v = src[word0 + w] >> shift;
      if (shift != 0 && word0 + w + 1 < src.size()) {
        v |= src[word0 + w + 1] << (64 - shift);
      }
      dst[w] = v;
    }
    dst.back() &= out.tail_mask();
  }
  return out;
}

void PatternSet::append(std::span<const bool> bits) {
  if (bits.size() != num_signals_) throw std::invalid_argument("append: width");
  // Amortized O(num_signals): capacity doubles, so the re-layout copy in
  // reserve() runs O(log P) times overall instead of once per pattern.
  if (num_patterns_ + 1 > 64 * capacity_words_) {
    reserve(std::max<std::size_t>(num_patterns_ + 1, 128 * capacity_words_));
  }
  ++num_patterns_;
  words_per_signal_ = (num_patterns_ + 63) / 64;
  for (std::size_t s = 0; s < num_signals_; ++s) {
    set(num_patterns_ - 1, s, bits[s]);
  }
}

void PatternSet::append_all(const PatternSet& other) {
  if (other.num_signals_ != num_signals_) {
    throw std::invalid_argument("append_all: width mismatch");
  }
  if (other.num_patterns_ == 0) return;
  const std::size_t old_patterns = num_patterns_;
  const std::size_t total = num_patterns_ + other.num_patterns_;
  if (total > 64 * capacity_words_) {
    reserve(std::max<std::size_t>(total, 128 * capacity_words_));
  }
  num_patterns_ = total;
  words_per_signal_ = (total + 63) / 64;
  const std::size_t word0 = old_patterns / 64;
  const std::size_t shift = old_patterns % 64;
  for (std::size_t s = 0; s < num_signals_; ++s) {
    auto dst = words(s);
    const auto src = other.words(s);
    // Word-wise splice at the old tail: the incoming words are OR-merged at
    // bit offset `shift` (the old last word's free lanes are zero by the
    // tail-hygiene invariant, so OR is exact).
    for (std::size_t w = 0; w < src.size(); ++w) {
      std::uint64_t v = src[w];
      if (w + 1 == src.size()) v &= tail_mask_for(other.num_patterns_);
      dst[word0 + w] |= v << shift;
      if (shift != 0 && word0 + w + 1 < dst.size()) {
        dst[word0 + w + 1] |= v >> (64 - shift);
      }
    }
  }
}

PatternSet random_patterns(std::size_t num_signals, std::size_t num_patterns,
                           std::uint64_t seed) {
  PatternSet ps(num_signals, num_patterns);
  std::mt19937_64 rng(seed);
  for (std::size_t s = 0; s < num_signals; ++s) {
    for (std::uint64_t& w : ps.words(s)) w = rng();
    // Mask the tail so out-of-range bits are deterministic zeros.
    if (ps.num_words() > 0) ps.words(s).back() &= ps.tail_mask();
  }
  return ps;
}

PatternSet exhaustive_patterns(std::size_t num_signals) {
  if (num_signals > 24) {
    throw std::invalid_argument("exhaustive_patterns: too many signals");
  }
  const std::size_t n = std::size_t{1} << num_signals;
  PatternSet ps(num_signals, n);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t s = 0; s < num_signals; ++s) {
      ps.set(p, s, (p >> s) & 1);
    }
  }
  return ps;
}

PatternSet walking_patterns(std::size_t num_signals) {
  PatternSet ps(num_signals, 2 * num_signals);
  for (std::size_t i = 0; i < num_signals; ++i) {
    for (std::size_t s = 0; s < num_signals; ++s) {
      ps.set(i, s, s == i);                     // walking one
      ps.set(num_signals + i, s, s != i);       // walking zero
    }
  }
  return ps;
}

}  // namespace tz
