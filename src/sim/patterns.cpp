#include "sim/patterns.hpp"

#include <cstdint>
#include <stdexcept>

namespace tz {

PatternSet::PatternSet(std::size_t num_signals, std::size_t num_patterns)
    : num_signals_(num_signals),
      num_patterns_(num_patterns),
      words_per_signal_((num_patterns + 63) / 64),
      bits_(num_signals * words_per_signal_, 0) {}

void PatternSet::set(std::size_t pattern, std::size_t signal, bool value) {
  if (pattern >= num_patterns_ || signal >= num_signals_) {
    throw std::out_of_range("PatternSet::set");
  }
  std::uint64_t& w = bits_[signal * words_per_signal_ + pattern / 64];
  const std::uint64_t m = std::uint64_t{1} << (pattern % 64);
  if (value) w |= m; else w &= ~m;
}

bool PatternSet::get(std::size_t pattern, std::size_t signal) const {
  if (pattern >= num_patterns_ || signal >= num_signals_) {
    throw std::out_of_range("PatternSet::get");
  }
  const std::uint64_t w = bits_[signal * words_per_signal_ + pattern / 64];
  return (w >> (pattern % 64)) & 1;
}

std::span<const std::uint64_t> PatternSet::words(std::size_t signal) const {
  return {bits_.data() + signal * words_per_signal_, words_per_signal_};
}

std::span<std::uint64_t> PatternSet::words(std::size_t signal) {
  return {bits_.data() + signal * words_per_signal_, words_per_signal_};
}

std::uint64_t PatternSet::tail_mask() const {
  return tail_mask_for(num_patterns_);
}

PatternSet PatternSet::slice(std::size_t first, std::size_t count) const {
  if (first > num_patterns_ || count > num_patterns_ - first) {
    throw std::out_of_range("PatternSet::slice");
  }
  PatternSet out(num_signals_, count);
  for (std::size_t p = 0; p < count; ++p) {
    for (std::size_t s = 0; s < num_signals_; ++s) {
      out.set(p, s, get(first + p, s));
    }
  }
  return out;
}

void PatternSet::append(std::span<const bool> bits) {
  if (bits.size() != num_signals_) throw std::invalid_argument("append: width");
  PatternSet grown(num_signals_, num_patterns_ + 1);
  for (std::size_t s = 0; s < num_signals_; ++s) {
    auto dst = grown.words(s);
    auto src = words(s);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  *this = std::move(grown);
  for (std::size_t s = 0; s < num_signals_; ++s) {
    set(num_patterns_ - 1, s, bits[s]);
  }
}

void PatternSet::append_all(const PatternSet& other) {
  if (other.num_signals_ != num_signals_) {
    throw std::invalid_argument("append_all: width mismatch");
  }
  PatternSet grown(num_signals_, num_patterns_ + other.num_patterns_);
  for (std::size_t p = 0; p < num_patterns_; ++p) {
    for (std::size_t s = 0; s < num_signals_; ++s) {
      grown.set(p, s, get(p, s));
    }
  }
  for (std::size_t p = 0; p < other.num_patterns_; ++p) {
    for (std::size_t s = 0; s < num_signals_; ++s) {
      grown.set(num_patterns_ + p, s, other.get(p, s));
    }
  }
  *this = std::move(grown);
}

PatternSet random_patterns(std::size_t num_signals, std::size_t num_patterns,
                           std::uint64_t seed) {
  PatternSet ps(num_signals, num_patterns);
  std::mt19937_64 rng(seed);
  for (std::size_t s = 0; s < num_signals; ++s) {
    for (std::uint64_t& w : ps.words(s)) w = rng();
    // Mask the tail so out-of-range bits are deterministic zeros.
    if (ps.num_words() > 0) ps.words(s).back() &= ps.tail_mask();
  }
  return ps;
}

PatternSet exhaustive_patterns(std::size_t num_signals) {
  if (num_signals > 24) {
    throw std::invalid_argument("exhaustive_patterns: too many signals");
  }
  const std::size_t n = std::size_t{1} << num_signals;
  PatternSet ps(num_signals, n);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t s = 0; s < num_signals; ++s) {
      ps.set(p, s, (p >> s) & 1);
    }
  }
  return ps;
}

PatternSet walking_patterns(std::size_t num_signals) {
  PatternSet ps(num_signals, 2 * num_signals);
  for (std::size_t i = 0; i < num_signals; ++i) {
    for (std::size_t s = 0; s < num_signals; ++s) {
      ps.set(i, s, s == i);                     // walking one
      ps.set(num_signals + i, s, s != i);       // walking zero
    }
  }
  return ps;
}

}  // namespace tz
