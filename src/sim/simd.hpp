// Runtime-dispatched SIMD stripe kernels for the EvalPlan.
//
// EvalPlan::evaluate_striped walks one stripe-major block at a time through a
// kernel that processes 256 bits (four packed words) per operation in the
// two-operand opcodes. The kernel body lives in eval_stripe_impl.hpp and is
// compiled twice with internal-linkage vector types:
//   eval_stripe_generic.cpp  portable 4x64 word ops at the base ISA
//   eval_stripe_avx2.cpp     __m256i intrinsics, built with -mavx2 (present
//                            only when the toolchain supports the flag; see
//                            CMakeLists TZ_AVX2_KERNELS)
// stripe_kernel() picks once per process: AVX2 when the CPU reports it and
// TZ_SIMD is not "0"/"false"/"off", the generic kernel otherwise. Both are
// bit-identical to eval_plan_slot (the parity tests pin all three down).
#pragma once

#include <cstddef>
#include <cstdint>

namespace tz {

class EvalPlan;

namespace detail {

/// Evaluate every non-source slot of one stripe-major block: row of slot s
/// is `stripe + s * bw` (bw = the stripe's word count).
using StripeKernelFn = void (*)(const EvalPlan& plan, std::uint64_t* stripe,
                                std::size_t bw);

void eval_plan_stripe_generic(const EvalPlan& plan, std::uint64_t* stripe,
                              std::size_t bw);
#ifdef TZ_AVX2_KERNELS
void eval_plan_stripe_avx2(const EvalPlan& plan, std::uint64_t* stripe,
                           std::size_t bw);
#endif

/// The kernel for this process (CPUID probe + TZ_SIMD override, cached).
StripeKernelFn stripe_kernel();

}  // namespace detail
}  // namespace tz
