// Runtime-dispatched SIMD stripe kernels for the EvalPlan.
//
// EvalPlan::evaluate_striped walks one stripe-major block at a time through a
// kernel that processes 256 bits (four packed words) per operation in the
// two-operand opcodes. The kernel body lives in eval_stripe_impl.hpp and is
// compiled twice with internal-linkage vector types:
//   eval_stripe_generic.cpp  portable 4x64 word ops at the base ISA
//   eval_stripe_avx2.cpp     __m256i intrinsics, built with -mavx2 (present
//                            only when the toolchain supports the flag; see
//                            CMakeLists TZ_AVX2_KERNELS)
// stripe_kernel() picks once per process: AVX2 when the CPU reports it and
// TZ_SIMD is not "0"/"false"/"off", the generic kernel otherwise. Both are
// bit-identical to eval_plan_slot (the parity tests pin all three down).
#pragma once

#include <cstddef>
#include <cstdint>

namespace tz {

class EvalPlan;

namespace detail {

/// Evaluate the non-source slots in [begin, end) of one stripe-major block:
/// row of slot s is `stripe + s * bw` (bw = the stripe's word count). The
/// full-plan sweep passes [0, num_slots); the packed fault-simulation engine
/// splits the sweep at fault-site slots so it can force the stuck values
/// between ranges before any reader slot evaluates.
using StripeKernelFn = void (*)(const EvalPlan& plan, std::uint64_t* stripe,
                                std::size_t bw, std::uint32_t begin,
                                std::uint32_t end);

void eval_plan_stripe_generic(const EvalPlan& plan, std::uint64_t* stripe,
                              std::size_t bw, std::uint32_t begin,
                              std::uint32_t end);
#ifdef TZ_AVX2_KERNELS
void eval_plan_stripe_avx2(const EvalPlan& plan, std::uint64_t* stripe,
                           std::size_t bw, std::uint32_t begin,
                           std::uint32_t end);
#endif

/// The kernel for this process (CPUID probe + TZ_SIMD override, cached).
StripeKernelFn stripe_kernel();

}  // namespace detail
}  // namespace tz
