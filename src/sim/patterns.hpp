// Bit-packed test-pattern sets.
//
// A PatternSet stores P assignments to I named signals, packed 64 patterns
// per machine word so the simulators evaluate 64 patterns per gate visit.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace tz {

/// Mask with ones for every valid pattern position in the last packed word
/// of a `num_patterns`-bit stream — the single owner of the padding-lane
/// convention (PatternSet::tail_mask and the row-reduction overloads share
/// it).
inline std::uint64_t tail_mask_for(std::size_t num_patterns) {
  const std::size_t rem = num_patterns % 64;
  if (rem == 0) return ~std::uint64_t{0};
  return (std::uint64_t{1} << rem) - 1;
}

class PatternSet {
 public:
  PatternSet() = default;
  PatternSet(std::size_t num_signals, std::size_t num_patterns);

  std::size_t num_signals() const { return num_signals_; }
  std::size_t num_patterns() const { return num_patterns_; }
  std::size_t num_words() const { return words_per_signal_; }

  void set(std::size_t pattern, std::size_t signal, bool value);
  bool get(std::size_t pattern, std::size_t signal) const;

  /// The packed words of one signal (word w holds patterns 64w .. 64w+63).
  std::span<const std::uint64_t> words(std::size_t signal) const;
  std::span<std::uint64_t> words(std::size_t signal);

  /// Mask with ones for every valid pattern position in the last word.
  std::uint64_t tail_mask() const;

  /// Copy `count` consecutive patterns starting at `first` into a new set
  /// (word-wise funnel shifts, not per-bit get/set).
  PatternSet slice(std::size_t first, std::size_t count) const;

  /// Grow the per-signal word capacity to hold `num_patterns` patterns
  /// without re-laying out on every future append. No-op when already big
  /// enough; never shrinks and never changes the logical content.
  void reserve(std::size_t num_patterns);

  /// Append one pattern given per-signal bits (size == num_signals).
  /// Amortized O(num_signals): capacity grows geometrically (ATPG top-up
  /// appends thousands of patterns — a full-matrix copy per pattern would be
  /// O(P^2) in the suite size).
  void append(std::span<const bool> bits);

  /// Concatenate another set with the same signal count (word-wise splice).
  void append_all(const PatternSet& other);

  /// Logical equality: same signal/pattern counts and the same bits.
  /// Capacity and padding representation are ignored.
  bool operator==(const PatternSet& other) const;

 private:
  std::size_t num_signals_ = 0;
  std::size_t num_patterns_ = 0;
  std::size_t words_per_signal_ = 0;  ///< ceil(num_patterns / 64)
  std::size_t capacity_words_ = 0;    ///< row stride of bits_ (>= words)
  std::vector<std::uint64_t> bits_;   // [signal][word], stride capacity_words_
};

/// P uniformly random patterns (deterministic for a given seed).
PatternSet random_patterns(std::size_t num_signals, std::size_t num_patterns,
                           std::uint64_t seed);

/// All 2^I patterns; requires num_signals <= 24.
PatternSet exhaustive_patterns(std::size_t num_signals);

/// Walking-one / walking-zero patterns (2*I patterns), a common bring-up set.
PatternSet walking_patterns(std::size_t num_signals);

}  // namespace tz
