// Bit-packed test-pattern sets.
//
// A PatternSet stores P assignments to I named signals, packed 64 patterns
// per machine word so the simulators evaluate 64 patterns per gate visit.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace tz {

/// Mask with ones for every valid pattern position in the last packed word
/// of a `num_patterns`-bit stream — the single owner of the padding-lane
/// convention (PatternSet::tail_mask and the row-reduction overloads share
/// it).
inline std::uint64_t tail_mask_for(std::size_t num_patterns) {
  const std::size_t rem = num_patterns % 64;
  if (rem == 0) return ~std::uint64_t{0};
  return (std::uint64_t{1} << rem) - 1;
}

class PatternSet {
 public:
  PatternSet() = default;
  PatternSet(std::size_t num_signals, std::size_t num_patterns);

  std::size_t num_signals() const { return num_signals_; }
  std::size_t num_patterns() const { return num_patterns_; }
  std::size_t num_words() const { return words_per_signal_; }

  void set(std::size_t pattern, std::size_t signal, bool value);
  bool get(std::size_t pattern, std::size_t signal) const;

  /// The packed words of one signal (word w holds patterns 64w .. 64w+63).
  std::span<const std::uint64_t> words(std::size_t signal) const;
  std::span<std::uint64_t> words(std::size_t signal);

  /// Mask with ones for every valid pattern position in the last word.
  std::uint64_t tail_mask() const;

  /// Copy `count` consecutive patterns starting at `first` into a new set.
  PatternSet slice(std::size_t first, std::size_t count) const;

  /// Append one pattern given per-signal bits (size == num_signals).
  void append(std::span<const bool> bits);

  /// Concatenate another set with the same signal count.
  void append_all(const PatternSet& other);

  bool operator==(const PatternSet&) const = default;

 private:
  std::size_t num_signals_ = 0;
  std::size_t num_patterns_ = 0;
  std::size_t words_per_signal_ = 0;
  std::vector<std::uint64_t> bits_;  // [signal][word]
};

/// P uniformly random patterns (deterministic for a given seed).
PatternSet random_patterns(std::size_t num_signals, std::size_t num_patterns,
                           std::uint64_t seed);

/// All 2^I patterns; requires num_signals <= 24.
PatternSet exhaustive_patterns(std::size_t num_signals);

/// Walking-one / walking-zero patterns (2*I patterns), a common bring-up set.
PatternSet walking_patterns(std::size_t num_signals);

}  // namespace tz
