// Row-major gate evaluation shared by the bit-parallel engines.
//
// Evaluates one gate over a whole row of packed pattern words so the inner
// word loop is a straight-line bitwise kernel the compiler can vectorize.
// `get` maps NodeId -> const row pointer of `words` machine words; `out`
// receives the gate's row and must not alias any fanin row (combinational
// gates never read themselves), which __restrict passes on to the compiler
// so the accumulation stays in registers.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "netlist/netlist.hpp"

namespace tz {

/// Single-word variant: evaluate one gate over one packed word. `get` maps
/// NodeId -> word value. Accumulates in a register — the fast path for
/// one-word rows and the cycle-accurate simulator.
template <typename Get>
std::uint64_t eval_gate_word(const Node& n, Get&& get) {
  switch (n.type) {
    case GateType::Const0: return 0;
    case GateType::Const1: return ~std::uint64_t{0};
    case GateType::Buf: return get(n.fanin[0]);
    case GateType::Not: return ~get(n.fanin[0]);
    case GateType::And: {
      std::uint64_t v = ~std::uint64_t{0};
      for (NodeId f : n.fanin) v &= get(f);
      return v;
    }
    case GateType::Nand: {
      std::uint64_t v = ~std::uint64_t{0};
      for (NodeId f : n.fanin) v &= get(f);
      return ~v;
    }
    case GateType::Or: {
      std::uint64_t v = 0;
      for (NodeId f : n.fanin) v |= get(f);
      return v;
    }
    case GateType::Nor: {
      std::uint64_t v = 0;
      for (NodeId f : n.fanin) v |= get(f);
      return ~v;
    }
    case GateType::Xor: {
      std::uint64_t v = 0;
      for (NodeId f : n.fanin) v ^= get(f);
      return v;
    }
    case GateType::Xnor: {
      std::uint64_t v = 0;
      for (NodeId f : n.fanin) v ^= get(f);
      return ~v;
    }
    case GateType::Mux: {
      const std::uint64_t s = get(n.fanin[0]);
      return (~s & get(n.fanin[1])) | (s & get(n.fanin[2]));
    }
    case GateType::Input:
    case GateType::Dff:
      throw std::logic_error("eval_gate_word: source node");
  }
  return 0;
}

template <typename GetRow>
void eval_gate_row(const Node& n, std::size_t words, GetRow&& get,
                   std::uint64_t* __restrict out) {
  if (words == 1) {
    // Register accumulation beats the vectorized row loops at one word.
    *out = eval_gate_word(n, [&](NodeId f) { return *get(f); });
    return;
  }
  switch (n.type) {
    case GateType::Const0:
      for (std::size_t w = 0; w < words; ++w) out[w] = 0;
      break;
    case GateType::Const1:
      for (std::size_t w = 0; w < words; ++w) out[w] = ~std::uint64_t{0};
      break;
    case GateType::Buf: {
      const std::uint64_t* a = get(n.fanin[0]);
      for (std::size_t w = 0; w < words; ++w) out[w] = a[w];
      break;
    }
    case GateType::Not: {
      const std::uint64_t* a = get(n.fanin[0]);
      for (std::size_t w = 0; w < words; ++w) out[w] = ~a[w];
      break;
    }
    case GateType::And:
    case GateType::Nand: {
      const std::uint64_t* a = get(n.fanin[0]);
      for (std::size_t w = 0; w < words; ++w) out[w] = a[w];
      for (std::size_t i = 1; i < n.fanin.size(); ++i) {
        const std::uint64_t* b = get(n.fanin[i]);
        for (std::size_t w = 0; w < words; ++w) out[w] &= b[w];
      }
      if (n.type == GateType::Nand) {
        for (std::size_t w = 0; w < words; ++w) out[w] = ~out[w];
      }
      break;
    }
    case GateType::Or:
    case GateType::Nor: {
      const std::uint64_t* a = get(n.fanin[0]);
      for (std::size_t w = 0; w < words; ++w) out[w] = a[w];
      for (std::size_t i = 1; i < n.fanin.size(); ++i) {
        const std::uint64_t* b = get(n.fanin[i]);
        for (std::size_t w = 0; w < words; ++w) out[w] |= b[w];
      }
      if (n.type == GateType::Nor) {
        for (std::size_t w = 0; w < words; ++w) out[w] = ~out[w];
      }
      break;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      const std::uint64_t* a = get(n.fanin[0]);
      for (std::size_t w = 0; w < words; ++w) out[w] = a[w];
      for (std::size_t i = 1; i < n.fanin.size(); ++i) {
        const std::uint64_t* b = get(n.fanin[i]);
        for (std::size_t w = 0; w < words; ++w) out[w] ^= b[w];
      }
      if (n.type == GateType::Xnor) {
        for (std::size_t w = 0; w < words; ++w) out[w] = ~out[w];
      }
      break;
    }
    case GateType::Mux: {
      const std::uint64_t* s = get(n.fanin[0]);
      const std::uint64_t* a = get(n.fanin[1]);
      const std::uint64_t* b = get(n.fanin[2]);
      for (std::size_t w = 0; w < words; ++w) {
        out[w] = (~s[w] & a[w]) | (s[w] & b[w]);
      }
      break;
    }
    case GateType::Input:
    case GateType::Dff:
      throw std::logic_error("eval_gate_row: source node");
  }
}

}  // namespace tz
