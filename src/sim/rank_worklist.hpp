// Min-heap worklist over topological ranks, shared by the event-driven
// engines (fault simulation, the suite oracle, the power tracker, PODEM
// implication). Pops the lowest-rank node first so a DAG cone is evaluated
// fanin-before-reader; the queued flag makes push idempotent between pops.
//
// The rank vector is owned by the caller (it may grow as nodes are added);
// the worklist reads it by index on every comparison, so appending ranks
// between operations is safe as long as ranks for queued ids stay valid.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace tz {

class RankWorklist {
 public:
  explicit RankWorklist(const std::vector<std::uint32_t>& rank)
      : rank_(&rank) {}

  /// Grow the queued-flag array to cover `n` node ids.
  void resize(std::size_t n) { queued_.resize(n, 0); }

  bool empty() const { return heap_.empty(); }

  /// Idempotent between pops: a node already queued is not pushed twice.
  void push(NodeId id) {
    if (queued_[id]) return;
    queued_[id] = 1;
    heap_.push_back(id);
    std::push_heap(heap_.begin(), heap_.end(), Cmp{rank_});
  }

  /// Pops the queued node with the lowest topological rank.
  NodeId pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Cmp{rank_});
    const NodeId id = heap_.back();
    heap_.pop_back();
    queued_[id] = 0;
    return id;
  }

 private:
  struct Cmp {
    const std::vector<std::uint32_t>* rank;
    bool operator()(NodeId a, NodeId b) const {
      return (*rank)[a] > (*rank)[b];  // min-heap on rank
    }
  };
  const std::vector<std::uint32_t>* rank_;
  std::vector<char> queued_;
  std::vector<NodeId> heap_;
};

}  // namespace tz
