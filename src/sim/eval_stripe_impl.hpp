// Stripe kernel body, compiled once per ISA variant.
//
// The including translation unit defines TZ_STRIPE_FN to the exported kernel
// name (and TZ_STRIPE_USE_AVX2 for the __m256i variant) before including
// this file. Everything except the kernel itself sits in an anonymous
// namespace, so the two instantiations cannot collide at link time.
//
// The kernel is the stripe-major counterpart of eval_plan_slot's row loops:
// same opcode semantics, but fanin rows are `stripe + slot * bw` (all rows of
// one cache-blocked stripe are contiguous) and the two-operand bodies run 256
// bits per step with a scalar tail. Bit-identical to the scalar kernels — the
// cross-mode parity tests enforce it.

#ifndef TZ_STRIPE_FN
#error "define TZ_STRIPE_FN before including eval_stripe_impl.hpp"
#endif

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "sim/eval_plan.hpp"
#include "sim/simd.hpp"

#ifdef TZ_STRIPE_USE_AVX2
#include <immintrin.h>
#endif

namespace tz::detail {
namespace {

#ifdef TZ_STRIPE_USE_AVX2

struct V {
  __m256i v;
};
inline V vload(const std::uint64_t* p) {
  return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
}
inline void vstore(std::uint64_t* p, V x) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), x.v);
}
inline V vand(V x, V y) { return {_mm256_and_si256(x.v, y.v)}; }
inline V vor(V x, V y) { return {_mm256_or_si256(x.v, y.v)}; }
inline V vxor(V x, V y) { return {_mm256_xor_si256(x.v, y.v)}; }
inline V vnot(V x) { return {_mm256_xor_si256(x.v, _mm256_set1_epi64x(-1))}; }
/// ~x & y in one instruction.
inline V vandn(V x, V y) { return {_mm256_andnot_si256(x.v, y.v)}; }

#else

/// Portable 256-bit word: four packed 64-bit lanes the optimizer can keep in
/// whatever registers the base ISA offers.
struct V {
  std::uint64_t x[4];
};
inline V vload(const std::uint64_t* p) { return {{p[0], p[1], p[2], p[3]}}; }
inline void vstore(std::uint64_t* p, V a) {
  p[0] = a.x[0];
  p[1] = a.x[1];
  p[2] = a.x[2];
  p[3] = a.x[3];
}
inline V vand(V a, V b) {
  return {{a.x[0] & b.x[0], a.x[1] & b.x[1], a.x[2] & b.x[2],
           a.x[3] & b.x[3]}};
}
inline V vor(V a, V b) {
  return {{a.x[0] | b.x[0], a.x[1] | b.x[1], a.x[2] | b.x[2],
           a.x[3] | b.x[3]}};
}
inline V vxor(V a, V b) {
  return {{a.x[0] ^ b.x[0], a.x[1] ^ b.x[1], a.x[2] ^ b.x[2],
           a.x[3] ^ b.x[3]}};
}
inline V vnot(V a) { return {{~a.x[0], ~a.x[1], ~a.x[2], ~a.x[3]}}; }
inline V vandn(V a, V b) {
  return {{~a.x[0] & b.x[0], ~a.x[1] & b.x[1], ~a.x[2] & b.x[2],
           ~a.x[3] & b.x[3]}};
}

#endif

// Scalar twins so the generic lambdas below cover the tail words too.
inline std::uint64_t vand(std::uint64_t a, std::uint64_t b) { return a & b; }
inline std::uint64_t vor(std::uint64_t a, std::uint64_t b) { return a | b; }
inline std::uint64_t vxor(std::uint64_t a, std::uint64_t b) { return a ^ b; }
inline std::uint64_t vnot(std::uint64_t a) { return ~a; }
inline std::uint64_t vandn(std::uint64_t a, std::uint64_t b) {
  return ~a & b;
}

constexpr std::size_t kLanes = 4;

template <typename F>
inline void map1(std::uint64_t* __restrict out, const std::uint64_t* a,
                 std::size_t n, F f) {
  std::size_t w = 0;
  for (; w + kLanes <= n; w += kLanes) vstore(out + w, f(vload(a + w)));
  for (; w < n; ++w) out[w] = f(a[w]);
}

template <typename F>
inline void map2(std::uint64_t* __restrict out, const std::uint64_t* a,
                 const std::uint64_t* b, std::size_t n, F f) {
  std::size_t w = 0;
  for (; w + kLanes <= n; w += kLanes) {
    vstore(out + w, f(vload(a + w), vload(b + w)));
  }
  for (; w < n; ++w) out[w] = f(a[w], b[w]);
}

template <typename F>
inline void map3(std::uint64_t* __restrict out, const std::uint64_t* a,
                 const std::uint64_t* b, const std::uint64_t* c, std::size_t n,
                 F f) {
  std::size_t w = 0;
  for (; w + kLanes <= n; w += kLanes) {
    vstore(out + w, f(vload(a + w), vload(b + w), vload(c + w)));
  }
  for (; w < n; ++w) out[w] = f(a[w], b[w], c[w]);
}

}  // namespace

void TZ_STRIPE_FN(const EvalPlan& plan, std::uint64_t* stripe, std::size_t bw,
                  std::uint32_t begin, std::uint32_t end) {
  const EvalOp* ops = plan.ops_data();
  const std::uint32_t* offs = plan.fanin_offsets_data();
  const SlotId* fslots = plan.fanin_slots_data();
  const auto f_and = [](auto a, auto b) { return vand(a, b); };
  const auto f_or = [](auto a, auto b) { return vor(a, b); };
  const auto f_xor = [](auto a, auto b) { return vxor(a, b); };
  for (SlotId s = begin; s < end; ++s) {
    const EvalOp op = ops[s];
    if (op == EvalOp::Source || op == EvalOp::Dead) continue;
    const SlotId* f = fslots + offs[s];
    const std::size_t arity = offs[s + 1] - offs[s];
    std::uint64_t* out = stripe + std::size_t{s} * bw;
    const auto row = [&](std::size_t i) {
      return stripe + std::size_t{f[i]} * bw;
    };
    switch (op) {
      case EvalOp::Const0:
        std::fill_n(out, bw, 0);
        break;
      case EvalOp::Const1:
        std::fill_n(out, bw, ~std::uint64_t{0});
        break;
      case EvalOp::Buf:
        std::copy_n(row(0), bw, out);
        break;
      case EvalOp::Not:
        map1(out, row(0), bw, [](auto a) { return vnot(a); });
        break;
      case EvalOp::And2:
        map2(out, row(0), row(1), bw, f_and);
        break;
      case EvalOp::Nand2:
        map2(out, row(0), row(1), bw,
             [](auto a, auto b) { return vnot(vand(a, b)); });
        break;
      case EvalOp::Or2:
        map2(out, row(0), row(1), bw, f_or);
        break;
      case EvalOp::Nor2:
        map2(out, row(0), row(1), bw,
             [](auto a, auto b) { return vnot(vor(a, b)); });
        break;
      case EvalOp::Xor2:
        map2(out, row(0), row(1), bw, f_xor);
        break;
      case EvalOp::Xnor2:
        map2(out, row(0), row(1), bw,
             [](auto a, auto b) { return vnot(vxor(a, b)); });
        break;
      case EvalOp::Mux:
        // out = sel ? b : a, lane-wise: (sel & b) | (~sel & a).
        map3(out, row(0), row(1), row(2), bw, [](auto sel, auto a, auto b) {
          return vor(vand(sel, b), vandn(sel, a));
        });
        break;
      case EvalOp::AndN:
      case EvalOp::NandN:
        map2(out, row(0), row(1), bw, f_and);
        for (std::size_t i = 2; i < arity; ++i) {
          map2(out, out, row(i), bw, f_and);
        }
        if (op == EvalOp::NandN) {
          map1(out, out, bw, [](auto a) { return vnot(a); });
        }
        break;
      case EvalOp::OrN:
      case EvalOp::NorN:
        map2(out, row(0), row(1), bw, f_or);
        for (std::size_t i = 2; i < arity; ++i) {
          map2(out, out, row(i), bw, f_or);
        }
        if (op == EvalOp::NorN) {
          map1(out, out, bw, [](auto a) { return vnot(a); });
        }
        break;
      case EvalOp::XorN:
      case EvalOp::XnorN:
        map2(out, row(0), row(1), bw, f_xor);
        for (std::size_t i = 2; i < arity; ++i) {
          map2(out, out, row(i), bw, f_xor);
        }
        if (op == EvalOp::XnorN) {
          map1(out, out, bw, [](auto a) { return vnot(a); });
        }
        break;
      default:
        throw std::logic_error("eval_plan_stripe: unhandled opcode");
    }
  }
}

}  // namespace tz::detail
