#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>

#include "sim/gate_eval.hpp"

namespace tz {

BitSimulator::BitSimulator(const Netlist& nl) : nl_(&nl), order_(nl.topo_order()) {}

NodeValues BitSimulator::run(const PatternSet& inputs,
                             const std::vector<std::uint64_t>* dff_state) const {
  const auto& nl = *nl_;
  if (inputs.num_signals() != nl.inputs().size()) {
    throw std::invalid_argument("BitSimulator: pattern width != #inputs");
  }
  const std::size_t words = inputs.num_words();
  NodeValues vals(nl.raw_size(), words);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    auto src = inputs.words(i);
    std::uint64_t* dst = vals.row(nl.inputs()[i]);
    std::copy(src.begin(), src.end(), dst);
  }
  if (dff_state) {
    if (dff_state->size() != nl.dffs().size()) {
      throw std::invalid_argument("BitSimulator: dff state size");
    }
    for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
      std::uint64_t* dst = vals.row(nl.dffs()[i]);
      for (std::size_t w = 0; w < words; ++w) dst[w] = (*dff_state)[i];
    }
  }
  // Node-major: one pass over the topological order with the word loop
  // innermost, so each gate is a straight-line bitwise kernel over its rows.
  // At one word the row loops cost more than they save; use the register
  // accumulating scalar kernel directly.
  if (words == 1) {
    for (NodeId id : order_) {
      const Node& n = nl.node(id);
      if (n.type == GateType::Input || n.type == GateType::Dff) continue;
      vals.row(id)[0] =
          eval_gate_word(n, [&](NodeId f) { return vals.row(f)[0]; });
    }
    return vals;
  }
  for (NodeId id : order_) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input || n.type == GateType::Dff) continue;
    eval_gate_row(
        n, words, [&](NodeId f) { return vals.row(f); }, vals.row(id));
  }
  return vals;
}

PatternSet BitSimulator::outputs(const PatternSet& inputs) const {
  const NodeValues vals = run(inputs);
  PatternSet out(nl_->outputs().size(), inputs.num_patterns());
  for (std::size_t o = 0; o < nl_->outputs().size(); ++o) {
    auto dst = out.words(o);
    const std::uint64_t* src = vals.row(nl_->outputs()[o]);
    for (std::size_t w = 0; w < out.num_words(); ++w) dst[w] = src[w];
    if (!dst.empty()) dst.back() &= out.tail_mask();
  }
  return out;
}

bool BitSimulator::responses_equal(const PatternSet& a, const PatternSet& b) {
  if (a.num_signals() != b.num_signals() ||
      a.num_patterns() != b.num_patterns()) {
    return false;
  }
  for (std::size_t s = 0; s < a.num_signals(); ++s) {
    auto wa = a.words(s);
    auto wb = b.words(s);
    for (std::size_t w = 0; w + 1 < wa.size(); ++w) {
      if (wa[w] != wb[w]) return false;
    }
    if (!wa.empty() && ((wa.back() ^ wb.back()) & a.tail_mask()) != 0) {
      return false;
    }
  }
  return true;
}

std::vector<std::uint64_t> count_toggles(const Netlist& nl,
                                         const PatternSet& inputs) {
  BitSimulator sim(nl);
  const NodeValues vals = sim.run(inputs);
  std::vector<std::uint64_t> toggles(nl.raw_size(), 0);
  const std::size_t p_count = inputs.num_patterns();
  const std::size_t words = inputs.num_words();
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id)) continue;
    const std::uint64_t* row = vals.row(id);
    // Transitions between consecutive patterns: XOR the bit stream with a
    // one-position shift of itself and popcount. Bit i of word w pairs
    // pattern 64w+i with 64w+i+1; the shift carries the next word's lowest
    // bit into position 63 so the cross-word pair is counted too.
    std::uint64_t total = 0;
    for (std::size_t w = 0; w < words; ++w) {
      const std::size_t base = 64 * w;
      if (base + 1 >= p_count) break;  // no pair starts in this word
      const std::uint64_t x = row[w];
      const std::uint64_t carry = w + 1 < words ? row[w + 1] << 63 : 0;
      const std::uint64_t shifted = (x >> 1) | carry;
      // Pair i is valid while its second pattern 64w+i+1 < p_count.
      const std::size_t pairs = std::min<std::size_t>(64, p_count - 1 - base);
      const std::uint64_t mask =
          pairs >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << pairs) - 1;
      total += static_cast<std::uint64_t>(std::popcount((x ^ shifted) & mask));
    }
    toggles[id] = total;
  }
  return toggles;
}

std::vector<double> simulated_one_probability(const Netlist& nl,
                                              const PatternSet& inputs) {
  BitSimulator sim(nl);
  const NodeValues vals = sim.run(inputs);
  std::vector<double> prob(nl.raw_size(), 0.0);
  const std::size_t words = inputs.num_words();
  const std::uint64_t tail = inputs.tail_mask();
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id)) continue;
    const std::uint64_t* row = vals.row(id);
    std::uint64_t ones = 0;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t v = row[w];
      if (w + 1 == words) v &= tail;
      ones += static_cast<std::uint64_t>(std::popcount(v));
    }
    prob[id] = inputs.num_patterns() == 0
                   ? 0.0
                   : static_cast<double>(ones) /
                         static_cast<double>(inputs.num_patterns());
  }
  return prob;
}

CycleSimulator::CycleSimulator(const Netlist& nl)
    : nl_(&nl),
      order_(nl.topo_order()),
      value_(nl.raw_size(), 0),
      prev_(nl.raw_size(), 0),
      toggles_(nl.raw_size(), 0) {}

void CycleSimulator::reset() {
  std::fill(value_.begin(), value_.end(), 0);
  std::fill(prev_.begin(), prev_.end(), 0);
  std::fill(toggles_.begin(), toggles_.end(), 0);
  cycles_ = 0;
  has_prev_ = false;
}

std::vector<bool> CycleSimulator::step(const std::vector<bool>& input_bits) {
  const auto& nl = *nl_;
  if (input_bits.size() != nl.inputs().size()) {
    throw std::invalid_argument("CycleSimulator: input width");
  }
  for (std::size_t i = 0; i < input_bits.size(); ++i) {
    value_[nl.inputs()[i]] = input_bits[i] ? ~std::uint64_t{0} : 0;
  }
  // DFF outputs hold state from the previous update; evaluate combinational.
  for (NodeId id : order_) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input || n.type == GateType::Dff) continue;
    value_[id] = eval_gate_word(n, [&](NodeId f) { return value_[f]; });
  }
  // Toggle accounting against the previous settled cycle.
  if (has_prev_) {
    for (NodeId id = 0; id < nl.raw_size(); ++id) {
      if (nl.is_alive(id) && ((value_[id] ^ prev_[id]) & 1)) ++toggles_[id];
    }
  }
  prev_ = value_;
  has_prev_ = true;
  // Clock edge: DFFs capture d.
  std::vector<std::uint64_t> next_state(nl.dffs().size());
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    next_state[i] = value_[nl.node(nl.dffs()[i]).fanin[0]];
  }
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    value_[nl.dffs()[i]] = next_state[i];
  }
  ++cycles_;
  std::vector<bool> out(nl.outputs().size());
  for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
    out[o] = prev_[nl.outputs()[o]] & 1;
  }
  return out;
}

std::vector<bool> CycleSimulator::state() const {
  std::vector<bool> s(nl_->dffs().size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = value_[nl_->dffs()[i]] & 1;
  }
  return s;
}

}  // namespace tz
