#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>

#include "sim/gate_eval.hpp"

namespace tz {

BitSimulator::BitSimulator(const Netlist& nl)
    : nl_(&nl), order_(nl.topo_order()) {
  if (eval_plan_enabled()) plan_ = std::make_shared<EvalPlan>(nl, order_);
}

BitSimulator::BitSimulator(const Netlist& nl,
                           std::shared_ptr<const EvalPlan> plan)
    : nl_(&nl), plan_(std::move(plan)) {
  // The plan's slot order is the topological order; recomputing the sort
  // here would double the construction cost of every plan-sharing owner.
  if (plan_) {
    order_ = plan_->topo_nodes();
  } else {
    order_ = nl.topo_order();
  }
}

NodeValues BitSimulator::run(const PatternSet& inputs,
                             const std::vector<std::uint64_t>* dff_state,
                             ValueLayout layout) const {
  NodeValues vals;
  run_into(vals, inputs, dff_state, layout);
  return vals;
}

void BitSimulator::run_into(NodeValues& vals, const PatternSet& inputs,
                            const std::vector<std::uint64_t>* dff_state,
                            ValueLayout layout) const {
  const auto& nl = *nl_;
  if (inputs.num_signals() != nl.inputs().size()) {
    throw std::invalid_argument("BitSimulator: pattern width != #inputs");
  }
  if (dff_state && dff_state->size() != nl.dffs().size()) {
    throw std::invalid_argument("BitSimulator: dff state size");
  }
  const std::size_t words = inputs.num_words();

  if (plan_) {
    // Reuse is shape-equality: same plan, same width, and the same stripe
    // decision the requested layout would make on a fresh matrix. Every slot
    // row is rewritten by the scatter + evaluate below, so stale values
    // cannot leak.
    const bool want_striped = layout != ValueLayout::Contiguous && words > 1 &&
                              plan_->block_words(words) < words;
    if (vals.plan() != plan_.get() || vals.num_words() != words ||
        vals.striped() != want_striped) {
      vals = NodeValues(plan_, words, layout);
    }
    // Compiled path: scatter the source rows into the slot-major matrix and
    // walk the opcode stream once (blocked over word stripes inside).
    std::uint64_t* base = vals.data();
    const std::vector<SlotId>& in_slots = plan_->input_slots();
    const std::vector<SlotId>& dff_slots = plan_->dff_slots();
    if (vals.striped()) {
      // Stripe-major: source row r of stripe [w0, w0+wb) lives at
      // stripe_base + r * wb. One pass per stripe keeps the writes as
      // sequential as the evaluation that follows.
      const std::size_t sw = vals.stripe_words();
      const std::size_t slots = plan_->num_slots();
      for (std::size_t w0 = 0; w0 < words; w0 += sw) {
        const std::size_t wb = std::min(sw, words - w0);
        std::uint64_t* sb = base + slots * w0;
        for (std::size_t i = 0; i < in_slots.size(); ++i) {
          auto src = inputs.words(i);
          std::copy_n(src.data() + w0, wb, sb + std::size_t{in_slots[i]} * wb);
        }
        for (std::size_t i = 0; i < dff_slots.size(); ++i) {
          std::fill_n(sb + std::size_t{dff_slots[i]} * wb, wb,
                      dff_state ? (*dff_state)[i] : 0);
        }
      }
      plan_->evaluate_striped(base, words);
      return;
    }
    for (std::size_t i = 0; i < in_slots.size(); ++i) {
      auto src = inputs.words(i);
      std::copy(src.begin(), src.end(),
                base + std::size_t{in_slots[i]} * words);
    }
    for (std::size_t i = 0; i < dff_slots.size(); ++i) {
      // The matrix is allocated uninitialized; DFF source rows must be
      // seeded either way (reset state is all-zero).
      std::fill_n(base + std::size_t{dff_slots[i]} * words, words,
                  dff_state ? (*dff_state)[i] : 0);
    }
    plan_->evaluate(base, words);
    return;
  }

  if (vals.plan() != nullptr || vals.num_rows() != nl.raw_size() ||
      vals.num_words() != words || vals.striped()) {
    vals = NodeValues(nl.raw_size(), words);
  }
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    auto src = inputs.words(i);
    std::uint64_t* dst = vals.row(nl.inputs()[i]);
    std::copy(src.begin(), src.end(), dst);
  }
  // DFF rows are seeded unconditionally: a fresh matrix starts zeroed, but a
  // reused one may hold a previous run's state.
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    std::uint64_t* dst = vals.row(nl.dffs()[i]);
    const std::uint64_t v = dff_state ? (*dff_state)[i] : 0;
    for (std::size_t w = 0; w < words; ++w) dst[w] = v;
  }
  // Node-major: one pass over the topological order with the word loop
  // innermost, so each gate is a straight-line bitwise kernel over its rows.
  // At one word the row loops cost more than they save; use the register
  // accumulating scalar kernel directly.
  if (words == 1) {
    for (NodeId id : order_) {
      const Node& n = nl.node(id);
      if (n.type == GateType::Input || n.type == GateType::Dff) continue;
      vals.row(id)[0] =
          eval_gate_word(n, [&](NodeId f) { return vals.row(f)[0]; });
    }
    return;
  }
  for (NodeId id : order_) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input || n.type == GateType::Dff) continue;
    eval_gate_row(
        n, words, [&](NodeId f) { return vals.row(f); }, vals.row(id));
  }
}

PatternSet BitSimulator::outputs(const PatternSet& inputs) const {
  const NodeValues vals = run(inputs);
  PatternSet out(nl_->outputs().size(), inputs.num_patterns());
  for (std::size_t o = 0; o < nl_->outputs().size(); ++o) {
    auto dst = out.words(o);
    // copy_row gathers across stripes when the run came out stripe-major.
    vals.copy_row(nl_->outputs()[o], dst.data());
    if (!dst.empty()) dst.back() &= out.tail_mask();
  }
  return out;
}

bool BitSimulator::responses_equal(const PatternSet& a, const PatternSet& b) {
  if (a.num_signals() != b.num_signals() ||
      a.num_patterns() != b.num_patterns()) {
    return false;
  }
  for (std::size_t s = 0; s < a.num_signals(); ++s) {
    auto wa = a.words(s);
    auto wb = b.words(s);
    for (std::size_t w = 0; w + 1 < wa.size(); ++w) {
      if (wa[w] != wb[w]) return false;
    }
    if (!wa.empty() && ((wa.back() ^ wb.back()) & a.tail_mask()) != 0) {
      return false;
    }
  }
  return true;
}

std::vector<std::uint64_t> count_toggles(const Netlist& nl,
                                         const NodeValues& vals,
                                         std::size_t num_patterns) {
  std::vector<std::uint64_t> toggles(nl.raw_size(), 0);
  const std::size_t words = vals.num_words();
  // The pair counting needs word w and w+1 together; a stripe-major matrix
  // splits rows, so gather each row once (the copy is the same O(words) the
  // count itself costs).
  std::vector<std::uint64_t> scratch(vals.striped() ? words : 0);
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id)) continue;
    const std::uint64_t* row;
    if (vals.striped()) {
      vals.copy_row(id, scratch.data());
      row = scratch.data();
    } else {
      row = vals.row(id);
    }
    // Transitions between consecutive patterns: XOR the bit stream with a
    // one-position shift of itself and popcount. Bit i of word w pairs
    // pattern 64w+i with 64w+i+1; the shift carries the next word's lowest
    // bit into position 63 so the cross-word pair is counted too.
    std::uint64_t total = 0;
    for (std::size_t w = 0; w < words; ++w) {
      const std::size_t base = 64 * w;
      if (base + 1 >= num_patterns) break;  // no pair starts in this word
      const std::uint64_t x = row[w];
      const std::uint64_t carry = w + 1 < words ? row[w + 1] << 63 : 0;
      const std::uint64_t shifted = (x >> 1) | carry;
      // Pair i is valid while its second pattern 64w+i+1 < num_patterns.
      const std::size_t pairs =
          std::min<std::size_t>(64, num_patterns - 1 - base);
      const std::uint64_t mask =
          pairs >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << pairs) - 1;
      total += static_cast<std::uint64_t>(std::popcount((x ^ shifted) & mask));
    }
    toggles[id] = total;
  }
  return toggles;
}

std::vector<std::uint64_t> count_toggles(const Netlist& nl,
                                         const PatternSet& inputs) {
  BitSimulator sim(nl);
  return count_toggles(nl, sim.run(inputs), inputs.num_patterns());
}

std::vector<double> simulated_one_probability(const Netlist& nl,
                                              const NodeValues& vals,
                                              std::size_t num_patterns) {
  std::vector<double> prob(nl.raw_size(), 0.0);
  const std::size_t words = vals.num_words();
  const std::uint64_t tail = tail_mask_for(num_patterns);
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id)) continue;
    std::uint64_t ones = 0;
    // Popcount has no cross-word coupling: walk the row's contiguous
    // segments in place (one whole-row segment on contiguous layouts).
    for (std::size_t w = 0; w < words;) {
      const auto seg = vals.segment(id, w);
      for (std::size_t k = 0; k < seg.size(); ++k) {
        std::uint64_t v = seg[k];
        if (w + k + 1 == words) v &= tail;
        ones += static_cast<std::uint64_t>(std::popcount(v));
      }
      w += seg.size();
    }
    prob[id] = num_patterns == 0
                   ? 0.0
                   : static_cast<double>(ones) /
                         static_cast<double>(num_patterns);
  }
  return prob;
}

std::vector<double> simulated_one_probability(const Netlist& nl,
                                              const PatternSet& inputs) {
  BitSimulator sim(nl);
  return simulated_one_probability(nl, sim.run(inputs),
                                   inputs.num_patterns());
}

CycleSimulator::CycleSimulator(const Netlist& nl)
    : nl_(&nl),
      order_(nl.topo_order()),
      value_(nl.raw_size(), 0),
      prev_(nl.raw_size(), 0),
      toggles_(nl.raw_size(), 0),
      next_state_(nl.dffs().size(), 0),
      out_(nl.outputs().size(), false) {}

void CycleSimulator::reset() {
  std::fill(value_.begin(), value_.end(), 0);
  std::fill(prev_.begin(), prev_.end(), 0);
  std::fill(toggles_.begin(), toggles_.end(), 0);
  cycles_ = 0;
  has_prev_ = false;
}

const std::vector<bool>& CycleSimulator::step(
    const std::vector<bool>& input_bits) {
  const auto& nl = *nl_;
  if (input_bits.size() != nl.inputs().size()) {
    throw std::invalid_argument("CycleSimulator: input width");
  }
  for (std::size_t i = 0; i < input_bits.size(); ++i) {
    value_[nl.inputs()[i]] = input_bits[i] ? ~std::uint64_t{0} : 0;
  }
  // DFF outputs hold state from the previous update; evaluate combinational.
  for (NodeId id : order_) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input || n.type == GateType::Dff) continue;
    value_[id] = eval_gate_word(n, [&](NodeId f) { return value_[f]; });
  }
  // Toggle accounting against the previous settled cycle.
  if (has_prev_) {
    for (NodeId id = 0; id < nl.raw_size(); ++id) {
      if (nl.is_alive(id) && ((value_[id] ^ prev_[id]) & 1)) ++toggles_[id];
    }
  }
  prev_ = value_;
  has_prev_ = true;
  // Clock edge: DFFs capture d.
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    next_state_[i] = value_[nl.node(nl.dffs()[i]).fanin[0]];
  }
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    value_[nl.dffs()[i]] = next_state_[i];
  }
  ++cycles_;
  for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
    out_[o] = prev_[nl.outputs()[o]] & 1;
  }
  return out_;
}

std::vector<bool> CycleSimulator::state() const {
  std::vector<bool> s(nl_->dffs().size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = value_[nl_->dffs()[i]] & 1;
  }
  return s;
}

}  // namespace tz
