#include "sim/simulator.hpp"

#include <bit>
#include <cstdint>
#include <stdexcept>

namespace tz {
namespace {

/// Evaluate one gate over packed words. `get` maps NodeId -> word.
template <typename Get>
std::uint64_t eval_gate(const Node& n, Get&& get) {
  switch (n.type) {
    case GateType::Const0: return 0;
    case GateType::Const1: return ~std::uint64_t{0};
    case GateType::Buf: return get(n.fanin[0]);
    case GateType::Not: return ~get(n.fanin[0]);
    case GateType::And: {
      std::uint64_t v = ~std::uint64_t{0};
      for (NodeId f : n.fanin) v &= get(f);
      return v;
    }
    case GateType::Nand: {
      std::uint64_t v = ~std::uint64_t{0};
      for (NodeId f : n.fanin) v &= get(f);
      return ~v;
    }
    case GateType::Or: {
      std::uint64_t v = 0;
      for (NodeId f : n.fanin) v |= get(f);
      return v;
    }
    case GateType::Nor: {
      std::uint64_t v = 0;
      for (NodeId f : n.fanin) v |= get(f);
      return ~v;
    }
    case GateType::Xor: {
      std::uint64_t v = 0;
      for (NodeId f : n.fanin) v ^= get(f);
      return v;
    }
    case GateType::Xnor: {
      std::uint64_t v = 0;
      for (NodeId f : n.fanin) v ^= get(f);
      return ~v;
    }
    case GateType::Mux: {
      const std::uint64_t s = get(n.fanin[0]);
      return (~s & get(n.fanin[1])) | (s & get(n.fanin[2]));
    }
    case GateType::Input:
    case GateType::Dff:
      throw std::logic_error("eval_gate: source node");
  }
  return 0;
}

}  // namespace

BitSimulator::BitSimulator(const Netlist& nl) : nl_(&nl), order_(nl.topo_order()) {}

NodeValues BitSimulator::run(const PatternSet& inputs,
                             const std::vector<std::uint64_t>* dff_state) const {
  const auto& nl = *nl_;
  if (inputs.num_signals() != nl.inputs().size()) {
    throw std::invalid_argument("BitSimulator: pattern width != #inputs");
  }
  const std::size_t words = inputs.num_words();
  NodeValues vals(nl.raw_size(), words);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    auto src = inputs.words(i);
    std::uint64_t* dst = vals.row(nl.inputs()[i]);
    std::copy(src.begin(), src.end(), dst);
  }
  if (dff_state) {
    if (dff_state->size() != nl.dffs().size()) {
      throw std::invalid_argument("BitSimulator: dff state size");
    }
    for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
      std::uint64_t* dst = vals.row(nl.dffs()[i]);
      for (std::size_t w = 0; w < words; ++w) dst[w] = (*dff_state)[i];
    }
  }
  for (std::size_t w = 0; w < words; ++w) {
    for (NodeId id : order_) {
      const Node& n = nl.node(id);
      if (n.type == GateType::Input || n.type == GateType::Dff) continue;
      vals.row(id)[w] =
          eval_gate(n, [&](NodeId f) { return vals.row(f)[w]; });
    }
  }
  return vals;
}

PatternSet BitSimulator::outputs(const PatternSet& inputs) const {
  const NodeValues vals = run(inputs);
  PatternSet out(nl_->outputs().size(), inputs.num_patterns());
  for (std::size_t o = 0; o < nl_->outputs().size(); ++o) {
    auto dst = out.words(o);
    const std::uint64_t* src = vals.row(nl_->outputs()[o]);
    for (std::size_t w = 0; w < out.num_words(); ++w) dst[w] = src[w];
    if (!dst.empty()) dst.back() &= out.tail_mask();
  }
  return out;
}

bool BitSimulator::responses_equal(const PatternSet& a, const PatternSet& b) {
  if (a.num_signals() != b.num_signals() ||
      a.num_patterns() != b.num_patterns()) {
    return false;
  }
  for (std::size_t s = 0; s < a.num_signals(); ++s) {
    auto wa = a.words(s);
    auto wb = b.words(s);
    for (std::size_t w = 0; w + 1 < wa.size(); ++w) {
      if (wa[w] != wb[w]) return false;
    }
    if (!wa.empty() && ((wa.back() ^ wb.back()) & a.tail_mask()) != 0) {
      return false;
    }
  }
  return true;
}

std::vector<std::uint64_t> count_toggles(const Netlist& nl,
                                         const PatternSet& inputs) {
  BitSimulator sim(nl);
  const NodeValues vals = sim.run(inputs);
  std::vector<std::uint64_t> toggles(nl.raw_size(), 0);
  const std::size_t p_count = inputs.num_patterns();
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id)) continue;
    const std::uint64_t* row = vals.row(id);
    // Transitions between consecutive patterns: XOR the bit stream with a
    // one-position shift of itself and popcount.
    std::uint64_t total = 0;
    bool prev = false;
    bool have_prev = false;
    for (std::size_t p = 0; p < p_count; ++p) {
      const bool cur = (row[p / 64] >> (p % 64)) & 1;
      if (have_prev && cur != prev) ++total;
      prev = cur;
      have_prev = true;
    }
    toggles[id] = total;
  }
  return toggles;
}

std::vector<double> simulated_one_probability(const Netlist& nl,
                                              const PatternSet& inputs) {
  BitSimulator sim(nl);
  const NodeValues vals = sim.run(inputs);
  std::vector<double> prob(nl.raw_size(), 0.0);
  const std::size_t words = inputs.num_words();
  const std::uint64_t tail = inputs.tail_mask();
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id)) continue;
    const std::uint64_t* row = vals.row(id);
    std::uint64_t ones = 0;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t v = row[w];
      if (w + 1 == words) v &= tail;
      ones += static_cast<std::uint64_t>(std::popcount(v));
    }
    prob[id] = inputs.num_patterns() == 0
                   ? 0.0
                   : static_cast<double>(ones) /
                         static_cast<double>(inputs.num_patterns());
  }
  return prob;
}

CycleSimulator::CycleSimulator(const Netlist& nl)
    : nl_(&nl),
      order_(nl.topo_order()),
      value_(nl.raw_size(), 0),
      prev_(nl.raw_size(), 0),
      toggles_(nl.raw_size(), 0) {}

void CycleSimulator::reset() {
  std::fill(value_.begin(), value_.end(), 0);
  std::fill(prev_.begin(), prev_.end(), 0);
  std::fill(toggles_.begin(), toggles_.end(), 0);
  cycles_ = 0;
  has_prev_ = false;
}

std::vector<bool> CycleSimulator::step(const std::vector<bool>& input_bits) {
  const auto& nl = *nl_;
  if (input_bits.size() != nl.inputs().size()) {
    throw std::invalid_argument("CycleSimulator: input width");
  }
  for (std::size_t i = 0; i < input_bits.size(); ++i) {
    value_[nl.inputs()[i]] = input_bits[i] ? ~std::uint64_t{0} : 0;
  }
  // DFF outputs hold state from the previous update; evaluate combinational.
  for (NodeId id : order_) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input || n.type == GateType::Dff) continue;
    value_[id] = eval_gate(n, [&](NodeId f) { return value_[f]; });
  }
  // Toggle accounting against the previous settled cycle.
  if (has_prev_) {
    for (NodeId id = 0; id < nl.raw_size(); ++id) {
      if (nl.is_alive(id) && ((value_[id] ^ prev_[id]) & 1)) ++toggles_[id];
    }
  }
  prev_ = value_;
  has_prev_ = true;
  // Clock edge: DFFs capture d.
  std::vector<std::uint64_t> next_state(nl.dffs().size());
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    next_state[i] = value_[nl.node(nl.dffs()[i]).fanin[0]];
  }
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    value_[nl.dffs()[i]] = next_state[i];
  }
  ++cycles_;
  std::vector<bool> out(nl.outputs().size());
  for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
    out[o] = prev_[nl.outputs()[o]] & 1;
  }
  return out;
}

std::vector<bool> CycleSimulator::state() const {
  std::vector<bool> s(nl_->dffs().size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = value_[nl_->dffs()[i]] & 1;
  }
  return s;
}

}  // namespace tz
