#include "sim/eval_plan.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string_view>

#include "sim/simd.hpp"

namespace tz {

namespace {

/// Env switch helper: "0", "false" and "off" disable, anything else keeps
/// the default (a typo cannot silently flip an A/B run the other way).
bool env_disabled(const char* name) {
  if (const char* env = std::getenv(name)) {
    const std::string_view v(env);
    return v == "0" || v == "false" || v == "FALSE" || v == "off" ||
           v == "OFF";
  }
  return false;
}

int read_env_mode() { return env_disabled("TZ_EVAL_PLAN") ? 0 : 1; }

std::atomic<int>& override_mode() {
  static std::atomic<int> mode{-1};
  return mode;
}

}  // namespace

bool eval_plan_enabled() {
  const int ovr = override_mode().load(std::memory_order_relaxed);
  if (ovr >= 0) return ovr != 0;
  static const int env_mode = read_env_mode();
  return env_mode != 0;
}

void set_eval_plan_enabled(int mode) {
  override_mode().store(mode < 0 ? -1 : (mode != 0), std::memory_order_relaxed);
}

EvalPlan::EvalPlan(const Netlist& nl) { compile(nl, nl.topo_order()); }

EvalPlan::EvalPlan(const Netlist& nl, const std::vector<NodeId>& topo) {
  compile(nl, topo);
}

void EvalPlan::compile(const Netlist& nl, const std::vector<NodeId>& topo) {
  const std::size_t n = topo.size();
  ops_.resize(n);
  node_of_.assign(topo.begin(), topo.end());
  slot_of_.assign(nl.raw_size(), kNoSlot);
  for (SlotId s = 0; s < n; ++s) slot_of_[topo[s]] = s;

  // One pass over the (cache-hostile) Node objects builds both the opcode
  // stream and the fanin CSR. Arity-2 gets the dedicated two-operand kernels
  // (the dominant shape), everything wider the generic accumulating loops.
  fanin_offset_.resize(n + 1);
  fanin_slots_.clear();
  fanin_slots_.reserve(3 * n);
  for (SlotId s = 0; s < n; ++s) {
    fanin_offset_[s] = static_cast<std::uint32_t>(fanin_slots_.size());
    const Node& node = nl.node(node_of_[s]);
    switch (node.type) {
      case GateType::Input:
      case GateType::Dff:
        ops_[s] = EvalOp::Source;
        break;
      case GateType::Const0: ops_[s] = EvalOp::Const0; break;
      case GateType::Const1: ops_[s] = EvalOp::Const1; break;
      case GateType::Buf: ops_[s] = EvalOp::Buf; break;
      case GateType::Not: ops_[s] = EvalOp::Not; break;
      case GateType::Mux: ops_[s] = EvalOp::Mux; break;
      case GateType::And:
        ops_[s] = node.fanin.size() == 2 ? EvalOp::And2 : EvalOp::AndN;
        break;
      case GateType::Nand:
        ops_[s] = node.fanin.size() == 2 ? EvalOp::Nand2 : EvalOp::NandN;
        break;
      case GateType::Or:
        ops_[s] = node.fanin.size() == 2 ? EvalOp::Or2 : EvalOp::OrN;
        break;
      case GateType::Nor:
        ops_[s] = node.fanin.size() == 2 ? EvalOp::Nor2 : EvalOp::NorN;
        break;
      case GateType::Xor:
        ops_[s] = node.fanin.size() == 2 ? EvalOp::Xor2 : EvalOp::XorN;
        break;
      case GateType::Xnor:
        ops_[s] = node.fanin.size() == 2 ? EvalOp::Xnor2 : EvalOp::XnorN;
        break;
    }
    // Source slots carry no fanin edges (a DFF's d-input is a cycle-breaking
    // edge, not a combinational dependency — same as BitSimulator::run).
    if (ops_[s] != EvalOp::Source) {
      for (NodeId f : node.fanin) fanin_slots_.push_back(slot_of_[f]);
    }
  }
  fanin_offset_[n] = static_cast<std::uint32_t>(fanin_slots_.size());

  // CSR fanout restricted to combinational readers: exactly the set the
  // event-driven engines schedule (Input readers cannot exist; DFF readers
  // block propagation across the cycle boundary).
  fanout_offset_.assign(n + 1, 0);
  for (std::size_t k = 0; k < fanin_slots_.size(); ++k) {
    ++fanout_offset_[fanin_slots_[k] + 1];
  }
  for (std::size_t s = 0; s < n; ++s) {
    fanout_offset_[s + 1] += fanout_offset_[s];
  }
  fanout_slots_.resize(fanin_slots_.size());
  std::vector<std::uint32_t> cursor(fanout_offset_.begin(),
                                    fanout_offset_.end() - 1);
  for (SlotId s = 0; s < n; ++s) {
    for (SlotId f : fanins(s)) fanout_slots_[cursor[f]++] = s;
  }

  input_slots_.reserve(nl.inputs().size());
  for (NodeId id : nl.inputs()) input_slots_.push_back(slot_of_[id]);
  dff_slots_.reserve(nl.dffs().size());
  for (NodeId id : nl.dffs()) dff_slots_.push_back(slot_of_[id]);
  output_slots_.reserve(nl.outputs().size());
  for (NodeId id : nl.outputs()) output_slots_.push_back(slot_of_[id]);
}

std::size_t EvalPlan::block_words(std::size_t words) const {
  // Two forces pick the stripe. Wider is better for dispatch: every stripe
  // re-walks the opcode/CSR stream and re-dispatches the per-gate switch, so
  // below ~64 words the walk overhead dominates (measured: 16-word stripes
  // are 2x slower than unblocked on c3540 x 8192 patterns). Narrower is
  // better for cache once the slot-major matrix outgrows the cache
  // hierarchy: then a stripe bounds the working set so fanin reads hit cache
  // instead of streaming from memory. ISCAS-class matrices (a few MB) stay
  // cache-resident, so the budget only kicks in for large netlists.
  constexpr std::size_t kMinStripeWords = 64;
  constexpr std::size_t kCacheBudgetBytes = 4u << 20;
  const std::size_t slots = std::max<std::size_t>(1, ops_.size());
  const std::size_t stripe =
      std::max(kMinStripeWords, kCacheBudgetBytes / (8 * slots));
  // Balance the stripes: splitting into round(words/stripe) near-equal
  // pieces never leaves a ragged near-empty tail stripe whose opcode/CSR
  // walk would be pure overhead, and bounds the overshoot past the cache
  // budget to ~1.5x (a floor division could return almost 2x the budget).
  const std::size_t stripes =
      std::max<std::size_t>(1, (words + stripe / 2) / stripe);
  return (words + stripes - 1) / stripes;
}

void EvalPlan::evaluate(std::uint64_t* values, std::size_t words) const {
  if (words == 0) return;
  if (words == 1) {
    evaluate_scalar(values);
    return;
  }
  const std::size_t block = block_words(words);
  for (std::size_t w0 = 0; w0 < words; w0 += block) {
    evaluate_block(values, words, w0, std::min(block, words - w0));
  }
}

void EvalPlan::evaluate_striped(std::uint64_t* values,
                                std::size_t words) const {
  if (words == 0) return;
  const std::size_t bw = block_words(words);
  const detail::StripeKernelFn kern = detail::stripe_kernel();
  const auto n = static_cast<std::uint32_t>(num_slots());
  for (std::size_t w0 = 0; w0 < words; w0 += bw) {
    kern(*this, values + num_slots() * w0, std::min(bw, words - w0), 0, n);
  }
}

namespace detail {
namespace {

StripeKernelFn pick_stripe_kernel() {
  // TZ_SIMD=0 forces the portable kernel (the SIMD-vs-scalar A/B switch and
  // the escape hatch if an ISA-specific miscompile ever needs ruling out).
  if (env_disabled("TZ_SIMD")) return eval_plan_stripe_generic;
#if defined(TZ_AVX2_KERNELS) && defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) return eval_plan_stripe_avx2;
#endif
  return eval_plan_stripe_generic;
}

}  // namespace

StripeKernelFn stripe_kernel() {
  static const StripeKernelFn fn = pick_stripe_kernel();
  return fn;
}

}  // namespace detail

void EvalPlan::evaluate_scalar(std::uint64_t* values) const {
  // One word per row: the row index IS the value index, and eval_plan_slot's
  // register fast path does the work. Keeping the dispatch here (instead of
  // a third hand-written switch) preserves the single-kernel guarantee the
  // cross-mode bit-parity contract rests on.
  const std::size_t n = ops_.size();
  const auto get = [&](SlotId f) { return values + f; };
  for (SlotId s = 0; s < n; ++s) {
    const EvalOp op = ops_[s];
    if (op == EvalOp::Source || op == EvalOp::Dead) continue;
    eval_plan_slot(*this, s, 1, get, values + s);
  }
}

void EvalPlan::evaluate_block(std::uint64_t* values, std::size_t words,
                              std::size_t w0, std::size_t bw) const {
  // Row pointers stride by the full row width while the kernels run over
  // the stripe's bw words; eval_plan_slot inlines to the same straight-line
  // bitwise loops a hand-specialized switch would produce.
  const std::size_t n = ops_.size();
  const auto row = [&](SlotId f) {
    return values + std::size_t{f} * words + w0;
  };
  for (SlotId s = 0; s < n; ++s) {
    const EvalOp op = ops_[s];
    if (op == EvalOp::Source || op == EvalOp::Dead) continue;
    eval_plan_slot(*this, s, bw, row, row(s));
  }
}

void EvalPlan::ensure_node_capacity(std::size_t raw_size) {
  if (slot_of_.size() < raw_size) slot_of_.resize(raw_size, kNoSlot);
}

SlotId EvalPlan::append_source(NodeId id) {
  ensure_node_capacity(id + 1);
  const SlotId s = static_cast<SlotId>(ops_.size());
  ops_.push_back(EvalOp::Source);
  node_of_.push_back(id);
  slot_of_[id] = s;
  fanin_offset_.push_back(fanin_offset_.back());
  fanout_offset_.push_back(fanout_offset_.back());
  return s;
}

void EvalPlan::kill(SlotId s) { ops_[s] = EvalOp::Dead; }

void EvalPlan::refresh_outputs(const Netlist& nl) {
  output_slots_.clear();
  output_slots_.reserve(nl.outputs().size());
  for (NodeId id : nl.outputs()) output_slots_.push_back(slot_of(id));
}

void EvalPlan::refresh_fanins(SlotId s, const Netlist& nl) {
  const std::vector<NodeId>& fanin = nl.node(node_of_[s]).fanin;
  const std::uint32_t off = fanin_offset_[s];
  if (fanin.size() != fanin_offset_[s + 1] - off) {
    throw std::logic_error("EvalPlan::refresh_fanins: arity changed");
  }
  for (std::size_t k = 0; k < fanin.size(); ++k) {
    fanin_slots_[off + k] = slot_of_[fanin[k]];
  }
}

}  // namespace tz
