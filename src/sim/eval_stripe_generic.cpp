// Base-ISA stripe kernel: portable 4x64 word ops (see eval_stripe_impl.hpp).
#define TZ_STRIPE_FN eval_plan_stripe_generic
#include "sim/eval_stripe_impl.hpp"
