// Compiled flat evaluation plan shared by the bit-parallel engines.
//
// An EvalPlan flattens the alive nodes of a netlist into dense topo-ordered
// slots: a per-slot opcode stream with arity-specialized entries (dedicated
// 2-input AND/NAND/OR/NOR/XOR/XNOR, NOT/BUF/MUX, generic N-ary fallback) and
// CSR fanin/fanout slot arrays in single contiguous allocations. Evaluating a
// netlist becomes a straight walk of the opcode stream over a slot-major
// value matrix — no Node dereferences, no per-node std::vector fanin heaps on
// the hottest loop — and wide pattern sets are processed in word stripes
// sized so the streaming working set stays inside the fast cache levels.
//
// The slot order IS the topological order, so slot ids double as topological
// ranks for the event-driven engines (fault simulation, the suite oracle):
// their rank worklists pop plan slots and evaluate through eval_plan_slot
// instead of walking Node objects. sim/gate_eval.hpp stays as the reference
// kernel; the parity tests check the plan against it bit for bit.
//
// Plans support incremental patching (SuiteOracle::resync_structure): an
// accepted tie appends the tie cell as a source slot, rewrites the readers'
// fanin CSR entries in place and tombstones the swept cone's slots, so
// per-candidate judging never recompiles the plan.
//
// The TZ_EVAL_PLAN environment variable (default on; set 0 to disable)
// selects between the compiled-plan path and the legacy Node-walking path in
// every engine; both produce bit-identical results.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/debug.hpp"

namespace tz {

/// Dense topo-ordered slot index of a compiled plan.
using SlotId = std::uint32_t;
inline constexpr SlotId kNoSlot = static_cast<SlotId>(-1);

/// Opcode stream entries. Arity-2 gates get dedicated opcodes (the dominant
/// case in ISCAS-class netlists); wider gates fall back to the N-ary loops.
enum class EvalOp : std::uint8_t {
  Source,  ///< PI, DFF output or patched-in tie cell: row filled by caller.
  Const0,
  Const1,
  Buf,
  Not,
  And2,
  Nand2,
  Or2,
  Nor2,
  Xor2,
  Xnor2,
  Mux,  ///< fanin = {sel, a, b}; out = sel ? b : a.
  AndN,
  NandN,
  OrN,
  NorN,
  XorN,
  XnorN,
  Dead,  ///< Patched-out slot (swept cone): never evaluated or scheduled.
};

/// Plan path on/off: TZ_EVAL_PLAN env (default on; "0" disables), overridable
/// in-process for A/B tests. Engines capture the mode at construction.
bool eval_plan_enabled();
/// Test hook: 0 = force legacy, 1 = force plan, -1 = back to the env var.
void set_eval_plan_enabled(int mode);

class EvalPlan {
 public:
  /// Compile from the netlist's topological order (computed internally).
  explicit EvalPlan(const Netlist& nl);
  /// Compile reusing an already-computed topo order over the live nodes.
  EvalPlan(const Netlist& nl, const std::vector<NodeId>& topo);

  std::size_t num_slots() const { return ops_.size(); }
  SlotId slot_of(NodeId id) const {
    return id < slot_of_.size() ? slot_of_[id] : kNoSlot;
  }
  NodeId node_of(SlotId s) const {
    TZ_DBG_ASSERT(s < node_of_.size(), "EvalPlan::node_of slot index");
    return node_of_[s];
  }
  EvalOp op(SlotId s) const {
    TZ_DBG_ASSERT(s < ops_.size(), "EvalPlan::op slot index");
    return ops_[s];
  }

  std::span<const SlotId> fanins(SlotId s) const {
    TZ_DBG_ASSERT(s < num_slots(), "EvalPlan::fanins slot index");
    return {fanin_slots_.data() + fanin_offset_[s],
            fanin_offset_[s + 1] - fanin_offset_[s]};
  }
  /// Combinational readers only: Input/DFF readers are compiled out, exactly
  /// matching the engines' scheduling skip.
  std::span<const SlotId> fanout(SlotId s) const {
    TZ_DBG_ASSERT(s < num_slots(), "EvalPlan::fanout slot index");
    return {fanout_slots_.data() + fanout_offset_[s],
            fanout_offset_[s + 1] - fanout_offset_[s]};
  }

  const std::vector<SlotId>& input_slots() const { return input_slots_; }
  const std::vector<SlotId>& dff_slots() const { return dff_slots_; }
  const std::vector<SlotId>& output_slots() const { return output_slots_; }

  /// The compiled slots' nodes in slot order — the topological order the
  /// plan was built from (plus any appended source slots). Lets owners reuse
  /// the sort instead of recomputing it.
  const std::vector<NodeId>& topo_nodes() const { return node_of_; }

  /// Raw accessors for the hot loops (avoid span re-construction per gate).
  const EvalOp* ops_data() const { return ops_.data(); }
  const std::uint32_t* fanin_offsets_data() const {
    return fanin_offset_.data();
  }
  const SlotId* fanin_slots_data() const { return fanin_slots_.data(); }

  /// Full evaluation: walk the opcode stream over the slot-major matrix
  /// `values` (num_slots rows of `words` machine words). Source slot rows
  /// must be pre-filled by the caller; Const slots are filled by the walk.
  /// Every non-source slot row is fully written before any reader reads it,
  /// so the matrix may be allocated uninitialized. Wide rows are processed
  /// in cache-sized word stripes (see block_words).
  void evaluate(std::uint64_t* values, std::size_t words) const;

  /// Stripe-major evaluation: `values` holds ceil(words / block_words(words))
  /// stripe blocks, stripe b covering words [b*bw, ...) with row r at
  /// `values + num_slots*b*bw + r*stripe_width`. Same pre-fill contract as
  /// evaluate() (sources scattered per stripe by the caller — see
  /// BitSimulator::run). Each stripe runs through the runtime-dispatched
  /// SIMD kernel (sim/simd.hpp): the whole working set of a stripe is one
  /// contiguous block, so the walk stays cache- and TLB-resident where the
  /// contiguous layout strides a full row length between consecutive slots.
  void evaluate_striped(std::uint64_t* values, std::size_t words) const;

  /// Stripe width used by evaluate()/evaluate_striped() for a given row
  /// width: the widest stripe whose slot-major working set stays
  /// cache-resident, floored so the per-stripe opcode/CSR walk amortizes
  /// over enough words. NodeValues sizes its stripe-major layout with the
  /// same function, which is what keeps the two in lockstep.
  std::size_t block_words(std::size_t words) const;

  // ---- incremental patching (SuiteOracle::resync_structure) ----

  /// Grow slot_of() coverage to `raw_size` node ids (new ids map to kNoSlot).
  void ensure_node_capacity(std::size_t raw_size);

  /// Append a source slot for a node added after compilation (tie cells).
  /// The slot has no fanin/fanout; its row is filled by the owner.
  SlotId append_source(NodeId id);

  /// Tombstone a slot whose node was removed. Fanin/fanout CSR entries are
  /// left in place; evaluation and scheduling skip Dead opcodes.
  void kill(SlotId s);

  /// Re-read `s`'s fanin list from the netlist after readers were relinked
  /// (arity is unchanged by relink_fanin, so the CSR row is rewritten in
  /// place). Every fanin must already have a slot.
  void refresh_fanins(SlotId s, const Netlist& nl);

  /// Rebuild output_slots() from the netlist's current outputs(). A tie that
  /// retargets a primary output leaves the compiled list pointing at the old
  /// driver's slot; resync_structure calls this after patching.
  void refresh_outputs(const Netlist& nl);

 private:
  void compile(const Netlist& nl, const std::vector<NodeId>& topo);
  void evaluate_block(std::uint64_t* values, std::size_t words,
                      std::size_t w0, std::size_t bw) const;
  void evaluate_scalar(std::uint64_t* values) const;

  std::vector<EvalOp> ops_;
  std::vector<NodeId> node_of_;
  std::vector<SlotId> slot_of_;
  std::vector<std::uint32_t> fanin_offset_;   ///< num_slots + 1 entries
  std::vector<SlotId> fanin_slots_;           ///< one contiguous allocation
  std::vector<std::uint32_t> fanout_offset_;  ///< num_slots + 1 entries
  std::vector<SlotId> fanout_slots_;
  std::vector<SlotId> input_slots_, dff_slots_, output_slots_;

  /// tz::verify audits the CSR arrays and slot maps directly; the test peer
  /// corrupts them to prove each check fires.
  friend class PlanChecker;
  friend struct PlanTestPeer;
};

/// Evaluate one plan slot over a row of `words` packed words — the
/// event-driven engines' kernel. `get` maps SlotId -> const row pointer;
/// `out` must not alias any fanin row. Bit-identical to eval_gate_row on the
/// corresponding Node (the parity tests enforce this).
template <typename GetRow>
inline void eval_plan_slot(const EvalPlan& p, SlotId s, std::size_t words,
                           GetRow&& get, std::uint64_t* __restrict out) {
  const EvalOp op = p.op(s);
  const std::uint32_t* offs = p.fanin_offsets_data();
  const SlotId* f = p.fanin_slots_data() + offs[s];
  const std::size_t arity = offs[s + 1] - offs[s];
  if (words == 1) {
    // Register accumulation beats the vectorized row loops at one word.
    std::uint64_t v;
    switch (op) {
      case EvalOp::Const0: v = 0; break;
      case EvalOp::Const1: v = ~std::uint64_t{0}; break;
      case EvalOp::Buf: v = *get(f[0]); break;
      case EvalOp::Not: v = ~*get(f[0]); break;
      case EvalOp::And2: v = *get(f[0]) & *get(f[1]); break;
      case EvalOp::Nand2: v = ~(*get(f[0]) & *get(f[1])); break;
      case EvalOp::Or2: v = *get(f[0]) | *get(f[1]); break;
      case EvalOp::Nor2: v = ~(*get(f[0]) | *get(f[1])); break;
      case EvalOp::Xor2: v = *get(f[0]) ^ *get(f[1]); break;
      case EvalOp::Xnor2: v = ~(*get(f[0]) ^ *get(f[1])); break;
      case EvalOp::Mux: {
        const std::uint64_t sel = *get(f[0]);
        v = (~sel & *get(f[1])) | (sel & *get(f[2]));
        break;
      }
      case EvalOp::AndN:
      case EvalOp::NandN: {
        v = *get(f[0]);
        for (std::size_t i = 1; i < arity; ++i) v &= *get(f[i]);
        if (op == EvalOp::NandN) v = ~v;
        break;
      }
      case EvalOp::OrN:
      case EvalOp::NorN: {
        v = *get(f[0]);
        for (std::size_t i = 1; i < arity; ++i) v |= *get(f[i]);
        if (op == EvalOp::NorN) v = ~v;
        break;
      }
      case EvalOp::XorN:
      case EvalOp::XnorN: {
        v = *get(f[0]);
        for (std::size_t i = 1; i < arity; ++i) v ^= *get(f[i]);
        if (op == EvalOp::XnorN) v = ~v;
        break;
      }
      default:
        throw std::logic_error("eval_plan_slot: source/dead slot");
    }
    *out = v;
    return;
  }
  switch (op) {
    case EvalOp::Const0:
      for (std::size_t w = 0; w < words; ++w) out[w] = 0;
      break;
    case EvalOp::Const1:
      for (std::size_t w = 0; w < words; ++w) out[w] = ~std::uint64_t{0};
      break;
    case EvalOp::Buf: {
      const std::uint64_t* a = get(f[0]);
      for (std::size_t w = 0; w < words; ++w) out[w] = a[w];
      break;
    }
    case EvalOp::Not: {
      const std::uint64_t* a = get(f[0]);
      for (std::size_t w = 0; w < words; ++w) out[w] = ~a[w];
      break;
    }
    case EvalOp::And2: {
      const std::uint64_t* a = get(f[0]);
      const std::uint64_t* b = get(f[1]);
      for (std::size_t w = 0; w < words; ++w) out[w] = a[w] & b[w];
      break;
    }
    case EvalOp::Nand2: {
      const std::uint64_t* a = get(f[0]);
      const std::uint64_t* b = get(f[1]);
      for (std::size_t w = 0; w < words; ++w) out[w] = ~(a[w] & b[w]);
      break;
    }
    case EvalOp::Or2: {
      const std::uint64_t* a = get(f[0]);
      const std::uint64_t* b = get(f[1]);
      for (std::size_t w = 0; w < words; ++w) out[w] = a[w] | b[w];
      break;
    }
    case EvalOp::Nor2: {
      const std::uint64_t* a = get(f[0]);
      const std::uint64_t* b = get(f[1]);
      for (std::size_t w = 0; w < words; ++w) out[w] = ~(a[w] | b[w]);
      break;
    }
    case EvalOp::Xor2: {
      const std::uint64_t* a = get(f[0]);
      const std::uint64_t* b = get(f[1]);
      for (std::size_t w = 0; w < words; ++w) out[w] = a[w] ^ b[w];
      break;
    }
    case EvalOp::Xnor2: {
      const std::uint64_t* a = get(f[0]);
      const std::uint64_t* b = get(f[1]);
      for (std::size_t w = 0; w < words; ++w) out[w] = ~(a[w] ^ b[w]);
      break;
    }
    case EvalOp::Mux: {
      const std::uint64_t* sel = get(f[0]);
      const std::uint64_t* a = get(f[1]);
      const std::uint64_t* b = get(f[2]);
      for (std::size_t w = 0; w < words; ++w) {
        out[w] = (~sel[w] & a[w]) | (sel[w] & b[w]);
      }
      break;
    }
    case EvalOp::AndN:
    case EvalOp::NandN: {
      const std::uint64_t* a = get(f[0]);
      for (std::size_t w = 0; w < words; ++w) out[w] = a[w];
      for (std::size_t i = 1; i < arity; ++i) {
        const std::uint64_t* b = get(f[i]);
        for (std::size_t w = 0; w < words; ++w) out[w] &= b[w];
      }
      if (op == EvalOp::NandN) {
        for (std::size_t w = 0; w < words; ++w) out[w] = ~out[w];
      }
      break;
    }
    case EvalOp::OrN:
    case EvalOp::NorN: {
      const std::uint64_t* a = get(f[0]);
      for (std::size_t w = 0; w < words; ++w) out[w] = a[w];
      for (std::size_t i = 1; i < arity; ++i) {
        const std::uint64_t* b = get(f[i]);
        for (std::size_t w = 0; w < words; ++w) out[w] |= b[w];
      }
      if (op == EvalOp::NorN) {
        for (std::size_t w = 0; w < words; ++w) out[w] = ~out[w];
      }
      break;
    }
    case EvalOp::XorN:
    case EvalOp::XnorN: {
      const std::uint64_t* a = get(f[0]);
      for (std::size_t w = 0; w < words; ++w) out[w] = a[w];
      for (std::size_t i = 1; i < arity; ++i) {
        const std::uint64_t* b = get(f[i]);
        for (std::size_t w = 0; w < words; ++w) out[w] ^= b[w];
      }
      if (op == EvalOp::XnorN) {
        for (std::size_t w = 0; w < words; ++w) out[w] = ~out[w];
      }
      break;
    }
    default:
      throw std::logic_error("eval_plan_slot: source/dead slot");
  }
}

}  // namespace tz
