// Gate-level simulators.
//
// BitSimulator evaluates a combinational netlist 64 patterns at a time and is
// the workhorse behind functional verification (the paper's ModelSim role),
// fault simulation, Monte-Carlo probability estimation and toggle counting
// for dynamic power. CycleSimulator adds DFF state for circuits carrying the
// counter-based Trojan of Fig. 4.
//
// With the compiled-plan path enabled (TZ_EVAL_PLAN, default on) a
// BitSimulator compiles the netlist into a sim/eval_plan.hpp EvalPlan once
// and every run() is a straight walk of the opcode stream over a dense
// slot-major value matrix; NodeValues::row() translates NodeId -> slot
// transparently, so callers are layout-agnostic. The legacy Node-walking
// evaluator is kept (TZ_EVAL_PLAN=0) and produces bit-identical values.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/eval_plan.hpp"
#include "sim/patterns.hpp"
#include "util/debug.hpp"

namespace tz {

namespace detail {
/// std::allocator that default-initializes on resize: a plan-evaluated value
/// matrix is fully written before it is read (see EvalPlan::evaluate), so
/// the multi-megabyte zero-fill of vector's value-initialization is pure
/// waste on the hot path. Explicit `(n, 0)` construction still zeroes.
template <typename T>
struct DefaultInitAllocator : std::allocator<T> {
  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    if constexpr (sizeof...(Args) == 0) {
      ::new (static_cast<void*>(p)) U;
    } else {
      ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }
  }
};
}  // namespace detail

/// Value-matrix storage layout for plan-backed runs (see NodeValues).
enum class ValueLayout {
  /// Let the plan pick: stripe-major whenever the blocked walk would split
  /// the row width anyway (large matrices), dense slot-major otherwise.
  Auto,
  /// Force one contiguous row per slot. Required by the engines that do raw
  /// `data() + slot * words` pointer arithmetic over whole rows
  /// (FaultSimEngine's good machine, any external row consumer).
  Contiguous,
  /// Stripe-major when the blocked walk splits (same condition as Auto
  /// today; spelled out for callers that specifically want the cache-blocked
  /// layout and should fail loudly if Auto's heuristic ever diverges).
  Striped,
};

/// Per-node simulation values for a block of patterns: value(node, word).
/// Rows are node-major (one row per NodeId slot) unless constructed over an
/// EvalPlan, in which case storage is dense slot-major and row(id) resolves
/// through the plan — reading a row of a dead node is then invalid.
///
/// Under ValueLayout::Auto/Striped a large matrix becomes stripe-major: the
/// words are cut into stripes of stripe_words() (== EvalPlan::block_words),
/// each stripe holding all rows contiguously, so the blocked evaluate walk
/// touches one compact stripe at a time instead of striding row-length gaps
/// (see eval_plan.hpp). A logical row is then split across stripes: row() is
/// invalid (it throws) and readers walk segment()/copy_slot_row() instead.
class NodeValues {
 public:
  NodeValues() = default;
  NodeValues(std::size_t num_nodes, std::size_t num_words)
      : num_rows_(num_nodes),
        num_words_(num_words),
        v_(num_nodes * num_words, 0) {}
  /// Plan layout. The storage is intentionally left uninitialized: the
  /// evaluate() walk writes every slot row (BitSimulator::run zero-fills the
  /// DFF source rows it does not otherwise seed).
  NodeValues(std::shared_ptr<const EvalPlan> plan, std::size_t num_words,
             ValueLayout layout = ValueLayout::Contiguous)
      : plan_(std::move(plan)),
        num_rows_(plan_->num_slots()),
        num_words_(num_words),
        v_(plan_->num_slots() * num_words) {
    if (layout != ValueLayout::Contiguous && num_words > 1) {
      const std::size_t bw = plan_->block_words(num_words);
      if (bw < num_words) stripe_words_ = bw;
    }
  }

  /// Whole-row pointer; contiguous layouts only (throws when striped — use
  /// segment() or copy_slot_row() there).
  std::uint64_t* row(NodeId id) {
    return v_.data() + contiguous_row_offset(row_index(id));
  }
  const std::uint64_t* row(NodeId id) const {
    return v_.data() + contiguous_row_offset(row_index(id));
  }
  std::size_t num_words() const { return num_words_; }
  std::size_t num_rows() const { return num_rows_; }
  bool bit(NodeId id, std::size_t pattern) const {
    TZ_DBG_ASSERT(pattern / 64 < num_words_, "NodeValues::bit pattern index");
    return (v_[word_offset(row_index(id), pattern / 64)] >> (pattern % 64)) &
           1;
  }

  /// True when the matrix is stripe-major (plan layouts over wide rows).
  bool striped() const { return stripe_words_ != 0; }
  /// Stripe width in words (== num_words() when contiguous).
  std::size_t stripe_words() const {
    return stripe_words_ ? stripe_words_ : num_words_;
  }

  /// The contiguous words of row `id` starting at word `w`: up to the next
  /// stripe boundary when striped, the whole row tail when contiguous.
  /// Layout-agnostic readers loop `for (w = 0; w < num_words();
  /// w += segment(id, w).size())`.
  std::span<const std::uint64_t> segment(NodeId id, std::size_t w) const {
    TZ_DBG_ASSERT(w < num_words_, "NodeValues::segment word index");
    return {v_.data() + word_offset(row_index(id), w), segment_len(w)};
  }

  /// Gather the full logical row of plan slot `s` (row `s` in the legacy
  /// node-major layout) into `dst[0 .. num_words())` — the engines that
  /// think in slots skip the NodeId translation.
  void copy_slot_row(std::size_t s, std::uint64_t* dst) const {
    TZ_DBG_ASSERT(s < num_rows_, "NodeValues::copy_slot_row row index");
    for (std::size_t w = 0; w < num_words_;) {
      const std::size_t len = segment_len(w);
      const std::uint64_t* src = v_.data() + word_offset(s, w);
      std::copy_n(src, len, dst + w);
      w += len;
    }
  }
  void copy_row(NodeId id, std::uint64_t* dst) const {
    copy_slot_row(row_index(id), dst);
  }

  /// Slot-major backing store (plan layout) / node-major store (legacy).
  /// Engines that already think in plan slots index this directly; only
  /// valid for whole-row arithmetic when !striped().
  std::uint64_t* data() { return v_.data(); }
  const std::uint64_t* data() const { return v_.data(); }
  const EvalPlan* plan() const { return plan_.get(); }

 private:
  std::size_t row_index(NodeId id) const {
    const std::size_t r = plan_ ? plan_->slot_of(id) : id;
    // Catches reads of a dead node's row on the plan path (slot_of returns
    // kNoSlot) as well as plain out-of-range ids on the legacy layout.
    TZ_DBG_ASSERT(r < num_rows_, "NodeValues: node has no row");
    return r;
  }
  std::size_t contiguous_row_offset(std::size_t r) const {
    if (stripe_words_ != 0) {
      throw std::logic_error(
          "NodeValues::row: stripe-major layout has no contiguous rows; use "
          "segment()/copy_slot_row()");
    }
    return r * num_words_;
  }
  /// Flat index of (row r, word w): stripe b starts at num_rows * b *
  /// stripe_words and holds its rows contiguously at the stripe's width
  /// (the last stripe may be narrower).
  std::size_t word_offset(std::size_t r, std::size_t w) const {
    if (stripe_words_ == 0) return r * num_words_ + w;
    const std::size_t w0 = (w / stripe_words_) * stripe_words_;
    const std::size_t wb = std::min(stripe_words_, num_words_ - w0);
    return num_rows_ * w0 + r * wb + (w - w0);
  }
  std::size_t segment_len(std::size_t w) const {
    if (stripe_words_ == 0) return num_words_ - w;
    const std::size_t w0 = (w / stripe_words_) * stripe_words_;
    return std::min(stripe_words_, num_words_ - w0) - (w - w0);
  }

  std::shared_ptr<const EvalPlan> plan_;
  std::size_t num_rows_ = 0;
  std::size_t num_words_ = 0;
  std::size_t stripe_words_ = 0;  ///< 0 = contiguous rows
  std::vector<std::uint64_t, detail::DefaultInitAllocator<std::uint64_t>> v_;
};

class BitSimulator {
 public:
  /// Captures the topological order (and compiles the evaluation plan when
  /// the plan path is enabled); the netlist must outlive the simulator and
  /// must not be structurally modified while in use.
  explicit BitSimulator(const Netlist& nl);

  /// Run on an externally compiled plan for the same netlist (pass nullptr
  /// to force the legacy evaluator). Lets owners that patch a plan share one
  /// compilation with the simulator used to seed their caches.
  BitSimulator(const Netlist& nl, std::shared_ptr<const EvalPlan> plan);

  /// Evaluate all nodes for the given input patterns. DFF outputs are taken
  /// from `state` when provided (size = dffs().size()), else 0.
  /// `layout` picks the value-matrix layout on the plan path (Auto goes
  /// stripe-major for wide rows — pass Contiguous when you will read whole
  /// rows through row()/data() pointer arithmetic); the legacy path is
  /// always node-major contiguous.
  NodeValues run(const PatternSet& inputs,
                 const std::vector<std::uint64_t>* dff_state = nullptr,
                 ValueLayout layout = ValueLayout::Auto) const;

  /// run() into an existing matrix: when `vals` already has the right shape
  /// (same plan/size/layout — e.g. the previous iteration's result) its
  /// storage is reused, skipping the multi-hundred-MB allocation and the
  /// kernel page-fault zeroing that dominates repeated large-circuit runs
  /// (Monte-Carlo estimation, benchmark loops). Falls back to a fresh
  /// allocation when the shape differs.
  void run_into(NodeValues& vals, const PatternSet& inputs,
                const std::vector<std::uint64_t>* dff_state = nullptr,
                ValueLayout layout = ValueLayout::Auto) const;

  /// Evaluate and extract only primary-output values, one signal per output.
  PatternSet outputs(const PatternSet& inputs) const;

  /// True when both pattern responses are identical on all primary outputs.
  /// `golden` must come from a netlist with the same output count/order.
  static bool responses_equal(const PatternSet& a, const PatternSet& b);

  const Netlist& netlist() const { return *nl_; }

  /// The captured topological order; lets callers that already hold a
  /// simulator reuse the sort instead of recomputing it.
  const std::vector<NodeId>& order() const { return order_; }

  /// The compiled plan, or nullptr on the legacy path.
  const EvalPlan* plan() const { return plan_.get(); }
  std::shared_ptr<const EvalPlan> shared_plan() const { return plan_; }

 private:
  const Netlist* nl_;
  std::vector<NodeId> order_;
  std::shared_ptr<const EvalPlan> plan_;
};

/// Count of 0->1 and 1->0 transitions per node when patterns are applied in
/// sequence (pattern p followed by p+1). Used for simulated switching
/// activity; `toggles[id]` is the total over the sequence.
std::vector<std::uint64_t> count_toggles(const Netlist& nl,
                                         const PatternSet& inputs);

/// Same count over an existing simulation: reuses the captured topo order /
/// compiled plan and the already-evaluated rows instead of re-running the
/// whole suite. `vals` must come from a run of `inputs` on `nl`.
std::vector<std::uint64_t> count_toggles(const Netlist& nl,
                                         const NodeValues& vals,
                                         std::size_t num_patterns);

/// Fraction of patterns for which each node evaluates to 1 (simulated signal
/// probability; Monte-Carlo reference for prob/signal_prob.hpp).
std::vector<double> simulated_one_probability(const Netlist& nl,
                                              const PatternSet& inputs);

/// Overload on an existing run, for callers that also count toggles (or
/// otherwise reuse the rows) on the same patterns.
std::vector<double> simulated_one_probability(const Netlist& nl,
                                              const NodeValues& vals,
                                              std::size_t num_patterns);

/// Cycle-accurate simulator for netlists with DFFs.
class CycleSimulator {
 public:
  explicit CycleSimulator(const Netlist& nl);

  /// Reset all DFFs to 0 and clear toggle counters.
  void reset();

  /// Apply one input vector (64 independent pattern lanes share the same
  /// sequential behaviour only if their inputs agree; for sequential runs use
  /// one lane). Advances state by one clock. Returns the primary-output bits
  /// of lane 0; the reference is into member scratch and is valid until the
  /// next step() or destruction.
  const std::vector<bool>& step(const std::vector<bool>& input_bits);

  /// Total signal transitions observed per node across all steps (includes
  /// the combinational settling between consecutive cycles, one evaluation
  /// per cycle — a zero-delay model).
  const std::vector<std::uint64_t>& toggles() const { return toggles_; }

  std::uint64_t cycles() const { return cycles_; }

  /// Current DFF state bits, in netlist dff order.
  std::vector<bool> state() const;

  /// Settled value of a combinational node after the latest step().
  bool value_of(NodeId id) const { return value_[id] & 1; }

 private:
  const Netlist* nl_;
  std::vector<NodeId> order_;
  std::vector<std::uint64_t> value_;   // one lane, bit 0 used
  std::vector<std::uint64_t> prev_;    // previous-cycle values
  std::vector<std::uint64_t> toggles_;
  // Per-step scratch, hoisted: step() runs once per cycle inside power-trace
  // workloads and must not allocate.
  std::vector<std::uint64_t> next_state_;
  std::vector<bool> out_;
  std::uint64_t cycles_ = 0;
  bool has_prev_ = false;
};

}  // namespace tz
