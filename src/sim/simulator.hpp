// Gate-level simulators.
//
// BitSimulator evaluates a combinational netlist 64 patterns at a time and is
// the workhorse behind functional verification (the paper's ModelSim role),
// fault simulation, Monte-Carlo probability estimation and toggle counting
// for dynamic power. CycleSimulator adds DFF state for circuits carrying the
// counter-based Trojan of Fig. 4.
//
// With the compiled-plan path enabled (TZ_EVAL_PLAN, default on) a
// BitSimulator compiles the netlist into a sim/eval_plan.hpp EvalPlan once
// and every run() is a straight walk of the opcode stream over a dense
// slot-major value matrix; NodeValues::row() translates NodeId -> slot
// transparently, so callers are layout-agnostic. The legacy Node-walking
// evaluator is kept (TZ_EVAL_PLAN=0) and produces bit-identical values.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/eval_plan.hpp"
#include "sim/patterns.hpp"

namespace tz {

namespace detail {
/// std::allocator that default-initializes on resize: a plan-evaluated value
/// matrix is fully written before it is read (see EvalPlan::evaluate), so
/// the multi-megabyte zero-fill of vector's value-initialization is pure
/// waste on the hot path. Explicit `(n, 0)` construction still zeroes.
template <typename T>
struct DefaultInitAllocator : std::allocator<T> {
  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    if constexpr (sizeof...(Args) == 0) {
      ::new (static_cast<void*>(p)) U;
    } else {
      ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }
  }
};
}  // namespace detail

/// Per-node simulation values for a block of patterns: value(node, word).
/// Rows are node-major (one row per NodeId slot) unless constructed over an
/// EvalPlan, in which case storage is dense slot-major and row(id) resolves
/// through the plan — reading a row of a dead node is then invalid.
class NodeValues {
 public:
  NodeValues() = default;
  NodeValues(std::size_t num_nodes, std::size_t num_words)
      : num_words_(num_words), v_(num_nodes * num_words, 0) {}
  /// Plan layout. The storage is intentionally left uninitialized: the
  /// evaluate() walk writes every slot row (BitSimulator::run zero-fills the
  /// DFF source rows it does not otherwise seed).
  NodeValues(std::shared_ptr<const EvalPlan> plan, std::size_t num_words)
      : plan_(std::move(plan)),
        num_words_(num_words),
        v_(plan_->num_slots() * num_words) {}

  std::uint64_t* row(NodeId id) { return v_.data() + row_index(id) * num_words_; }
  const std::uint64_t* row(NodeId id) const {
    return v_.data() + row_index(id) * num_words_;
  }
  std::size_t num_words() const { return num_words_; }
  bool bit(NodeId id, std::size_t pattern) const {
    return (row(id)[pattern / 64] >> (pattern % 64)) & 1;
  }

  /// Slot-major backing store (plan layout) / node-major store (legacy).
  /// Engines that already think in plan slots index this directly.
  std::uint64_t* data() { return v_.data(); }
  const std::uint64_t* data() const { return v_.data(); }
  const EvalPlan* plan() const { return plan_.get(); }

 private:
  std::size_t row_index(NodeId id) const {
    return plan_ ? plan_->slot_of(id) : id;
  }

  std::shared_ptr<const EvalPlan> plan_;
  std::size_t num_words_ = 0;
  std::vector<std::uint64_t, detail::DefaultInitAllocator<std::uint64_t>> v_;
};

class BitSimulator {
 public:
  /// Captures the topological order (and compiles the evaluation plan when
  /// the plan path is enabled); the netlist must outlive the simulator and
  /// must not be structurally modified while in use.
  explicit BitSimulator(const Netlist& nl);

  /// Run on an externally compiled plan for the same netlist (pass nullptr
  /// to force the legacy evaluator). Lets owners that patch a plan share one
  /// compilation with the simulator used to seed their caches.
  BitSimulator(const Netlist& nl, std::shared_ptr<const EvalPlan> plan);

  /// Evaluate all nodes for the given input patterns. DFF outputs are taken
  /// from `state` when provided (size = dffs().size()), else 0.
  NodeValues run(const PatternSet& inputs,
                 const std::vector<std::uint64_t>* dff_state = nullptr) const;

  /// Evaluate and extract only primary-output values, one signal per output.
  PatternSet outputs(const PatternSet& inputs) const;

  /// True when both pattern responses are identical on all primary outputs.
  /// `golden` must come from a netlist with the same output count/order.
  static bool responses_equal(const PatternSet& a, const PatternSet& b);

  const Netlist& netlist() const { return *nl_; }

  /// The captured topological order; lets callers that already hold a
  /// simulator reuse the sort instead of recomputing it.
  const std::vector<NodeId>& order() const { return order_; }

  /// The compiled plan, or nullptr on the legacy path.
  const EvalPlan* plan() const { return plan_.get(); }
  std::shared_ptr<const EvalPlan> shared_plan() const { return plan_; }

 private:
  const Netlist* nl_;
  std::vector<NodeId> order_;
  std::shared_ptr<const EvalPlan> plan_;
};

/// Count of 0->1 and 1->0 transitions per node when patterns are applied in
/// sequence (pattern p followed by p+1). Used for simulated switching
/// activity; `toggles[id]` is the total over the sequence.
std::vector<std::uint64_t> count_toggles(const Netlist& nl,
                                         const PatternSet& inputs);

/// Same count over an existing simulation: reuses the captured topo order /
/// compiled plan and the already-evaluated rows instead of re-running the
/// whole suite. `vals` must come from a run of `inputs` on `nl`.
std::vector<std::uint64_t> count_toggles(const Netlist& nl,
                                         const NodeValues& vals,
                                         std::size_t num_patterns);

/// Fraction of patterns for which each node evaluates to 1 (simulated signal
/// probability; Monte-Carlo reference for prob/signal_prob.hpp).
std::vector<double> simulated_one_probability(const Netlist& nl,
                                              const PatternSet& inputs);

/// Overload on an existing run, for callers that also count toggles (or
/// otherwise reuse the rows) on the same patterns.
std::vector<double> simulated_one_probability(const Netlist& nl,
                                              const NodeValues& vals,
                                              std::size_t num_patterns);

/// Cycle-accurate simulator for netlists with DFFs.
class CycleSimulator {
 public:
  explicit CycleSimulator(const Netlist& nl);

  /// Reset all DFFs to 0 and clear toggle counters.
  void reset();

  /// Apply one input vector (64 independent pattern lanes share the same
  /// sequential behaviour only if their inputs agree; for sequential runs use
  /// one lane). Advances state by one clock. Returns the primary-output bits
  /// of lane 0; the reference is into member scratch and is valid until the
  /// next step() or destruction.
  const std::vector<bool>& step(const std::vector<bool>& input_bits);

  /// Total signal transitions observed per node across all steps (includes
  /// the combinational settling between consecutive cycles, one evaluation
  /// per cycle — a zero-delay model).
  const std::vector<std::uint64_t>& toggles() const { return toggles_; }

  std::uint64_t cycles() const { return cycles_; }

  /// Current DFF state bits, in netlist dff order.
  std::vector<bool> state() const;

  /// Settled value of a combinational node after the latest step().
  bool value_of(NodeId id) const { return value_[id] & 1; }

 private:
  const Netlist* nl_;
  std::vector<NodeId> order_;
  std::vector<std::uint64_t> value_;   // one lane, bit 0 used
  std::vector<std::uint64_t> prev_;    // previous-cycle values
  std::vector<std::uint64_t> toggles_;
  // Per-step scratch, hoisted: step() runs once per cycle inside power-trace
  // workloads and must not allocate.
  std::vector<std::uint64_t> next_state_;
  std::vector<bool> out_;
  std::uint64_t cycles_ = 0;
  bool has_prev_ = false;
};

}  // namespace tz
