// Gate-level simulators.
//
// BitSimulator evaluates a combinational netlist 64 patterns at a time and is
// the workhorse behind functional verification (the paper's ModelSim role),
// fault simulation, Monte-Carlo probability estimation and toggle counting
// for dynamic power. CycleSimulator adds DFF state for circuits carrying the
// counter-based Trojan of Fig. 4.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/patterns.hpp"

namespace tz {

/// Per-node simulation values for a block of patterns: value(node, word).
class NodeValues {
 public:
  NodeValues() = default;
  NodeValues(std::size_t num_nodes, std::size_t num_words)
      : num_words_(num_words), v_(num_nodes * num_words, 0) {}

  std::uint64_t* row(NodeId id) { return v_.data() + id * num_words_; }
  const std::uint64_t* row(NodeId id) const { return v_.data() + id * num_words_; }
  std::size_t num_words() const { return num_words_; }
  bool bit(NodeId id, std::size_t pattern) const {
    return (row(id)[pattern / 64] >> (pattern % 64)) & 1;
  }

 private:
  std::size_t num_words_ = 0;
  std::vector<std::uint64_t> v_;
};

class BitSimulator {
 public:
  /// Captures the topological order; the netlist must outlive the simulator
  /// and must not be structurally modified while in use.
  explicit BitSimulator(const Netlist& nl);

  /// Evaluate all nodes for the given input patterns. DFF outputs are taken
  /// from `state` when provided (size = dffs().size()), else 0.
  NodeValues run(const PatternSet& inputs,
                 const std::vector<std::uint64_t>* dff_state = nullptr) const;

  /// Evaluate and extract only primary-output values, one signal per output.
  PatternSet outputs(const PatternSet& inputs) const;

  /// True when both pattern responses are identical on all primary outputs.
  /// `golden` must come from a netlist with the same output count/order.
  static bool responses_equal(const PatternSet& a, const PatternSet& b);

  const Netlist& netlist() const { return *nl_; }

  /// The captured topological order; lets callers that already hold a
  /// simulator reuse the sort instead of recomputing it.
  const std::vector<NodeId>& order() const { return order_; }

 private:
  const Netlist* nl_;
  std::vector<NodeId> order_;
};

/// Count of 0->1 and 1->0 transitions per node when patterns are applied in
/// sequence (pattern p followed by p+1). Used for simulated switching
/// activity; `toggles[id]` is the total over the sequence.
std::vector<std::uint64_t> count_toggles(const Netlist& nl,
                                         const PatternSet& inputs);

/// Fraction of patterns for which each node evaluates to 1 (simulated signal
/// probability; Monte-Carlo reference for prob/signal_prob.hpp).
std::vector<double> simulated_one_probability(const Netlist& nl,
                                              const PatternSet& inputs);

/// Cycle-accurate simulator for netlists with DFFs.
class CycleSimulator {
 public:
  explicit CycleSimulator(const Netlist& nl);

  /// Reset all DFFs to 0 and clear toggle counters.
  void reset();

  /// Apply one input vector (64 independent pattern lanes share the same
  /// sequential behaviour only if their inputs agree; for sequential runs use
  /// one lane). Advances state by one clock. Returns the primary-output bits
  /// of lane 0.
  std::vector<bool> step(const std::vector<bool>& input_bits);

  /// Total signal transitions observed per node across all steps (includes
  /// the combinational settling between consecutive cycles, one evaluation
  /// per cycle — a zero-delay model).
  const std::vector<std::uint64_t>& toggles() const { return toggles_; }

  std::uint64_t cycles() const { return cycles_; }

  /// Current DFF state bits, in netlist dff order.
  std::vector<bool> state() const;

  /// Settled value of a combinational node after the latest step().
  bool value_of(NodeId id) const { return value_[id] & 1; }

 private:
  const Netlist* nl_;
  std::vector<NodeId> order_;
  std::vector<std::uint64_t> value_;   // one lane, bit 0 used
  std::vector<std::uint64_t> prev_;    // previous-cycle values
  std::vector<std::uint64_t> toggles_;
  std::uint64_t cycles_ = 0;
  bool has_prev_ = false;
};

}  // namespace tz
