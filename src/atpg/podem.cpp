#include "atpg/podem.hpp"

#include <algorithm>
#include <cstdint>

namespace tz {
namespace {

enum class L3 : std::uint8_t { F = 0, T = 1, X = 2 };

L3 l3_not(L3 a) {
  if (a == L3::X) return L3::X;
  return a == L3::T ? L3::F : L3::T;
}

L3 l3_and(L3 a, L3 b) {
  if (a == L3::F || b == L3::F) return L3::F;
  if (a == L3::X || b == L3::X) return L3::X;
  return L3::T;
}

L3 l3_or(L3 a, L3 b) {
  if (a == L3::T || b == L3::T) return L3::T;
  if (a == L3::X || b == L3::X) return L3::X;
  return L3::F;
}

L3 l3_xor(L3 a, L3 b) {
  if (a == L3::X || b == L3::X) return L3::X;
  return a == b ? L3::F : L3::T;
}

L3 eval3(const Node& n, const std::vector<L3>& v) {
  switch (n.type) {
    case GateType::Const0: return L3::F;
    case GateType::Const1: return L3::T;
    case GateType::Buf: return v[n.fanin[0]];
    case GateType::Not: return l3_not(v[n.fanin[0]]);
    case GateType::And:
    case GateType::Nand: {
      L3 acc = L3::T;
      for (NodeId f : n.fanin) acc = l3_and(acc, v[f]);
      return n.type == GateType::Nand ? l3_not(acc) : acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      L3 acc = L3::F;
      for (NodeId f : n.fanin) acc = l3_or(acc, v[f]);
      return n.type == GateType::Nor ? l3_not(acc) : acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      L3 acc = L3::F;
      for (NodeId f : n.fanin) acc = l3_xor(acc, v[f]);
      return n.type == GateType::Xnor ? l3_not(acc) : acc;
    }
    case GateType::Mux: {
      const L3 s = v[n.fanin[0]];
      const L3 a = v[n.fanin[1]];
      const L3 b = v[n.fanin[2]];
      if (s == L3::F) return a;
      if (s == L3::T) return b;
      if (a == b && a != L3::X) return a;  // select is X but branches agree
      return L3::X;
    }
    case GateType::Input:
    case GateType::Dff:
      return L3::X;  // handled by caller
  }
  return L3::X;
}

/// Non-controlling value heuristic for propagating through a gate.
bool noncontrolling(GateType t) {
  switch (t) {
    case GateType::And:
    case GateType::Nand:
      return true;
    case GateType::Or:
    case GateType::Nor:
      return false;
    default:
      return true;
  }
}

/// Does the gate invert the backtraced objective value?
bool inverts(GateType t) {
  return t == GateType::Not || t == GateType::Nand || t == GateType::Nor ||
         t == GateType::Xnor;
}

struct Machine {
  std::vector<L3> good;
  std::vector<L3> faulty;
};

}  // namespace

PodemResult podem(const Netlist& nl, const Fault& fault,
                  const PodemOptions& opt) {
  const std::vector<NodeId> order = nl.topo_order();
  const auto& pis = nl.inputs();
  std::vector<int> pi_assign(nl.raw_size(), -1);  // -1 = X, else 0/1

  Machine m;
  m.good.assign(nl.raw_size(), L3::X);
  m.faulty.assign(nl.raw_size(), L3::X);

  const L3 stuck = fault.value == StuckAt::One ? L3::T : L3::F;
  const L3 activate = l3_not(stuck);

  auto imply = [&] {
    for (NodeId id : order) {
      const Node& n = nl.node(id);
      L3 g, f;
      if (n.type == GateType::Input) {
        g = pi_assign[id] < 0 ? L3::X : (pi_assign[id] ? L3::T : L3::F);
        f = g;
      } else if (n.type == GateType::Dff) {
        g = L3::X;
        f = L3::X;
      } else {
        g = eval3(n, m.good);
        f = eval3(n, m.faulty);
      }
      if (id == fault.node) f = stuck;
      m.good[id] = g;
      m.faulty[id] = f;
    }
  };

  auto error_at_po = [&] {
    for (NodeId po : nl.outputs()) {
      if (m.good[po] != L3::X && m.faulty[po] != L3::X &&
          m.good[po] != m.faulty[po]) {
        return true;
      }
    }
    return false;
  };

  // D-frontier: gates with undetermined output and at least one input where
  // the machines disagree with both values known.
  auto d_frontier_gate = [&]() -> NodeId {
    for (NodeId id : order) {
      const Node& n = nl.node(id);
      if (!is_combinational(n.type)) continue;
      if (m.good[id] != L3::X && m.faulty[id] != L3::X) continue;
      for (NodeId fi : n.fanin) {
        if (m.good[fi] != L3::X && m.faulty[fi] != L3::X &&
            m.good[fi] != m.faulty[fi]) {
          return id;
        }
      }
    }
    return kNoNode;
  };

  // Objective selection. Returns nullopt when no useful objective exists
  // (dead end -> backtrack).
  auto objective = [&]() -> std::optional<std::pair<NodeId, bool>> {
    if (m.good[fault.node] == L3::X) {
      return std::make_pair(fault.node, activate == L3::T);
    }
    if (m.good[fault.node] != activate) return std::nullopt;  // de-activated
    const NodeId g = d_frontier_gate();
    if (g == kNoNode) return std::nullopt;
    const Node& n = nl.node(g);
    for (NodeId fi : n.fanin) {
      if (m.good[fi] == L3::X || m.faulty[fi] == L3::X) {
        return std::make_pair(fi, noncontrolling(n.type));
      }
    }
    return std::nullopt;
  };

  // Backtrace an objective to an unassigned primary input.
  auto backtrace = [&](NodeId node, bool val) -> std::pair<NodeId, bool> {
    while (nl.node(node).type != GateType::Input) {
      const Node& n = nl.node(node);
      if (n.fanin.empty()) break;  // tie cell: cannot backtrace further
      if (inverts(n.type)) val = !val;
      NodeId next = kNoNode;
      for (NodeId fi : n.fanin) {
        if (m.good[fi] == L3::X) { next = fi; break; }
      }
      if (next == kNoNode) next = n.fanin[0];
      node = next;
    }
    return {node, val};
  };

  struct Decision {
    NodeId pi;
    bool value;
    bool tried_both;
  };
  std::vector<Decision> decisions;
  PodemResult result;

  imply();
  while (true) {
    if (error_at_po()) {
      result.status = PodemStatus::Detected;
      result.pattern.resize(pis.size());
      result.assigned.resize(pis.size());
      for (std::size_t i = 0; i < pis.size(); ++i) {
        result.pattern[i] = pi_assign[pis[i]] == 1;
        result.assigned[i] = pi_assign[pis[i]] >= 0 ? 1 : 0;
      }
      return result;
    }
    const auto obj = objective();
    bool need_backtrack = !obj.has_value();
    if (!need_backtrack) {
      const auto [pi, val] = backtrace(obj->first, obj->second);
      if (nl.node(pi).type != GateType::Input || pi_assign[pi] >= 0) {
        // Backtrace hit a tie cell or an already-assigned PI: dead end.
        need_backtrack = true;
      } else {
        decisions.push_back({pi, val, false});
        pi_assign[pi] = val ? 1 : 0;
        imply();
        continue;
      }
    }
    // Backtrack.
    bool flipped = false;
    while (!decisions.empty()) {
      Decision& d = decisions.back();
      if (!d.tried_both) {
        d.tried_both = true;
        d.value = !d.value;
        pi_assign[d.pi] = d.value ? 1 : 0;
        ++result.backtracks;
        flipped = true;
        break;
      }
      pi_assign[d.pi] = -1;
      decisions.pop_back();
    }
    if (!flipped) {
      result.status = PodemStatus::Untestable;
      return result;
    }
    if (result.backtracks > opt.backtrack_limit) {
      result.status = PodemStatus::Aborted;
      return result;
    }
    imply();
  }
}

}  // namespace tz
