#include "atpg/podem.hpp"

#include <algorithm>
#include <cstdint>

namespace tz {
namespace {

// Three-valued logic over the PodemEngine encoding: 0, 1, 2 = X.
using L3 = std::uint8_t;
constexpr L3 kF = 0, kT = 1, kX = 2;

L3 l3_not(L3 a) {
  if (a == kX) return kX;
  return a == kT ? kF : kT;
}

L3 l3_and(L3 a, L3 b) {
  if (a == kF || b == kF) return kF;
  if (a == kX || b == kX) return kX;
  return kT;
}

L3 l3_or(L3 a, L3 b) {
  if (a == kT || b == kT) return kT;
  if (a == kX || b == kX) return kX;
  return kF;
}

L3 l3_xor(L3 a, L3 b) {
  if (a == kX || b == kX) return kX;
  return a == b ? kF : kT;
}

L3 eval3(const Node& n, const std::vector<L3>& v) {
  switch (n.type) {
    case GateType::Const0: return kF;
    case GateType::Const1: return kT;
    case GateType::Buf: return v[n.fanin[0]];
    case GateType::Not: return l3_not(v[n.fanin[0]]);
    case GateType::And:
    case GateType::Nand: {
      L3 acc = kT;
      for (NodeId f : n.fanin) acc = l3_and(acc, v[f]);
      return n.type == GateType::Nand ? l3_not(acc) : acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      L3 acc = kF;
      for (NodeId f : n.fanin) acc = l3_or(acc, v[f]);
      return n.type == GateType::Nor ? l3_not(acc) : acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      L3 acc = kF;
      for (NodeId f : n.fanin) acc = l3_xor(acc, v[f]);
      return n.type == GateType::Xnor ? l3_not(acc) : acc;
    }
    case GateType::Mux: {
      const L3 s = v[n.fanin[0]];
      const L3 a = v[n.fanin[1]];
      const L3 b = v[n.fanin[2]];
      if (s == kF) return a;
      if (s == kT) return b;
      if (a == b && a != kX) return a;  // select is X but branches agree
      return kX;
    }
    case GateType::Input:
    case GateType::Dff:
      return kX;  // handled by caller
  }
  return kX;
}

/// Non-controlling value heuristic for propagating through a gate.
bool noncontrolling(GateType t) {
  switch (t) {
    case GateType::And:
    case GateType::Nand:
      return true;
    case GateType::Or:
    case GateType::Nor:
      return false;
    default:
      return true;
  }
}

/// Does the gate invert the backtraced objective value?
bool inverts(GateType t) {
  return t == GateType::Not || t == GateType::Nand || t == GateType::Nor ||
         t == GateType::Xnor;
}

}  // namespace

PodemEngine::PodemEngine(const Netlist& nl)
    : nl_(&nl),
      order_(nl.topo_order()),
      rank_(nl.raw_size(), 0),
      good_(nl.raw_size(), kX),
      faulty_(nl.raw_size(), kX),
      pi_assign_(nl.raw_size(), -1) {
  for (std::size_t i = 0; i < order_.size(); ++i) {
    rank_[order_[i]] = static_cast<std::uint32_t>(i);
  }
  worklist_.resize(nl.raw_size());
}

PodemResult PodemEngine::run(const Fault& fault, const PodemOptions& opt) {
  const Netlist& nl = *nl_;
  const auto& pis = nl.inputs();
  std::fill(pi_assign_.begin(), pi_assign_.end(), -1);

  const L3 stuck = fault.value == StuckAt::One ? kT : kF;
  const L3 activate = l3_not(stuck);

  // Full implication pass: establishes tie-cell values and the fault site,
  // equivalent to the classic imply() with every PI at X.
  for (NodeId id : order_) {
    const Node& n = nl.node(id);
    L3 g, f;
    if (n.type == GateType::Input || n.type == GateType::Dff) {
      g = kX;
      f = kX;
    } else {
      g = eval3(n, good_);
      f = eval3(n, faulty_);
    }
    if (id == fault.node) f = stuck;
    good_[id] = g;
    faulty_[id] = f;
  }

  // Event-driven implication from a set of changed PIs. The machine state is
  // a pure function of (pi_assign, fault), so re-evaluating exactly the
  // nodes whose fanin changed reproduces the full pass bit for bit.
  const auto imply_from = [&](std::span<const NodeId> seeds) {
    for (NodeId s : seeds) worklist_.push(s);
    while (!worklist_.empty()) {
      const NodeId id = worklist_.pop();
      const Node& n = nl.node(id);
      L3 g, f;
      if (n.type == GateType::Input) {
        g = pi_assign_[id] < 0 ? kX : (pi_assign_[id] ? kT : kF);
        f = g;
      } else if (n.type == GateType::Dff) {
        g = kX;
        f = kX;
      } else {
        g = eval3(n, good_);
        f = eval3(n, faulty_);
      }
      if (id == fault.node) f = stuck;
      if (g == good_[id] && f == faulty_[id]) continue;
      good_[id] = g;
      faulty_[id] = f;
      for (NodeId reader : n.fanout) {
        if (nl.node(reader).type == GateType::Dff) continue;
        worklist_.push(reader);
      }
    }
  };

  auto error_at_po = [&] {
    for (NodeId po : nl.outputs()) {
      if (good_[po] != kX && faulty_[po] != kX && good_[po] != faulty_[po]) {
        return true;
      }
    }
    return false;
  };

  // D-frontier: gates with undetermined output and at least one input where
  // the machines disagree with both values known.
  auto d_frontier_gate = [&]() -> NodeId {
    for (NodeId id : order_) {
      const Node& n = nl.node(id);
      if (!is_combinational(n.type)) continue;
      if (good_[id] != kX && faulty_[id] != kX) continue;
      for (NodeId fi : n.fanin) {
        if (good_[fi] != kX && faulty_[fi] != kX && good_[fi] != faulty_[fi]) {
          return id;
        }
      }
    }
    return kNoNode;
  };

  // Objective selection. Returns nullopt when no useful objective exists
  // (dead end -> backtrack).
  auto objective = [&]() -> std::optional<std::pair<NodeId, bool>> {
    if (good_[fault.node] == kX) {
      return std::make_pair(fault.node, activate == kT);
    }
    if (good_[fault.node] != activate) return std::nullopt;  // de-activated
    const NodeId g = d_frontier_gate();
    if (g == kNoNode) return std::nullopt;
    const Node& n = nl.node(g);
    for (NodeId fi : n.fanin) {
      if (good_[fi] == kX || faulty_[fi] == kX) {
        return std::make_pair(fi, noncontrolling(n.type));
      }
    }
    return std::nullopt;
  };

  // Backtrace an objective to an unassigned primary input.
  auto backtrace = [&](NodeId node, bool val) -> std::pair<NodeId, bool> {
    while (nl.node(node).type != GateType::Input) {
      const Node& n = nl.node(node);
      if (n.fanin.empty()) break;  // tie cell: cannot backtrace further
      if (inverts(n.type)) val = !val;
      NodeId next = kNoNode;
      for (NodeId fi : n.fanin) {
        if (good_[fi] == kX) { next = fi; break; }
      }
      if (next == kNoNode) next = n.fanin[0];
      node = next;
    }
    return {node, val};
  };

  struct Decision {
    NodeId pi;
    bool value;
    bool tried_both;
  };
  std::vector<Decision> decisions;
  std::vector<NodeId> seeds;
  PodemResult result;

  while (true) {
    if (error_at_po()) {
      result.status = PodemStatus::Detected;
      result.pattern.resize(pis.size());
      result.assigned.resize(pis.size());
      for (std::size_t i = 0; i < pis.size(); ++i) {
        result.pattern[i] = pi_assign_[pis[i]] == 1;
        result.assigned[i] = pi_assign_[pis[i]] >= 0 ? 1 : 0;
      }
      return result;
    }
    const auto obj = objective();
    bool need_backtrack = !obj.has_value();
    if (!need_backtrack) {
      const auto [pi, val] = backtrace(obj->first, obj->second);
      if (nl.node(pi).type != GateType::Input || pi_assign_[pi] >= 0) {
        // Backtrace hit a tie cell or an already-assigned PI: dead end.
        need_backtrack = true;
      } else {
        decisions.push_back({pi, val, false});
        pi_assign_[pi] = val ? 1 : 0;
        seeds.assign(1, pi);
        imply_from(seeds);
        continue;
      }
    }
    // Backtrack.
    bool flipped = false;
    seeds.clear();
    while (!decisions.empty()) {
      Decision& d = decisions.back();
      if (!d.tried_both) {
        d.tried_both = true;
        d.value = !d.value;
        pi_assign_[d.pi] = d.value ? 1 : 0;
        seeds.push_back(d.pi);
        ++result.backtracks;
        flipped = true;
        break;
      }
      pi_assign_[d.pi] = -1;
      seeds.push_back(d.pi);
      decisions.pop_back();
    }
    if (!flipped) {
      result.status = PodemStatus::Untestable;
      return result;
    }
    if (result.backtracks > opt.backtrack_limit) {
      result.status = PodemStatus::Aborted;
      return result;
    }
    imply_from(seeds);
  }
}

PodemResult podem(const Netlist& nl, const Fault& fault,
                  const PodemOptions& opt) {
  return PodemEngine(nl).run(fault, opt);
}

}  // namespace tz
