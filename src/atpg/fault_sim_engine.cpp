#include "atpg/fault_sim_engine.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "sim/gate_eval.hpp"

namespace tz {

FaultSimEngine::FaultSimEngine(const Netlist& nl)
    : nl_(&nl), sim_(nl), plan_(sim_.plan()) {
  const std::size_t n = index_count();
  po_reach_.assign(n, 0);
  touched_.assign(n, 0);
  rank_.resize(n);
  if (plan_) {
    // Slot order is the topological order, so the worklist rank is the slot
    // id itself and reachability is one reverse sweep over the fanout CSR
    // (which already excludes DFF readers — they block a single pass exactly
    // as they do in BitSimulator::run).
    std::iota(rank_.begin(), rank_.end(), 0);
    for (SlotId po : plan_->output_slots()) po_reach_[po] = 1;
    for (SlotId s = static_cast<SlotId>(n); s-- > 0;) {
      if (po_reach_[s]) continue;
      for (SlotId reader : plan_->fanout(s)) {
        if (po_reach_[reader]) {
          po_reach_[s] = 1;
          break;
        }
      }
    }
  } else {
    const std::vector<NodeId>& order = sim_.order();
    for (std::size_t i = 0; i < order.size(); ++i) {
      rank_[order[i]] = static_cast<std::uint32_t>(i);
    }
    // Static reachability: a fault effect at node x is observable only if
    // some combinational path leads from x to a primary output; DFFs block a
    // single-pass propagation exactly as they do in BitSimulator::run.
    // Reverse topological order guarantees every combinational reader is
    // resolved before the node itself.
    for (NodeId po : nl.outputs()) po_reach_[po] = 1;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId id = *it;
      if (po_reach_[id]) continue;
      for (NodeId reader : nl.node(id).fanout) {
        if (nl.is_alive(reader) && nl.node(reader).type != GateType::Dff &&
            po_reach_[reader]) {
          po_reach_[id] = 1;
          break;
        }
      }
    }
  }
  worklist_.resize(n);
}

FaultSimEngine::FaultSimEngine(const Netlist& nl, const PatternSet& patterns)
    : FaultSimEngine(nl) {
  set_patterns(patterns);
}

void FaultSimEngine::set_patterns(const PatternSet& patterns) {
  // The cone kernels read whole good-machine rows via data() + ix * words;
  // opt out of the stripe-major layout for this matrix.
  good_ = sim_.run(patterns, nullptr, ValueLayout::Contiguous);
  words_ = patterns.num_words();
  tail_ = patterns.tail_mask();
  faulty_.resize(index_count() * words_);
  bits_.assign(words_, 0);
}

bool FaultSimEngine::simulate_fault(const Fault& f, bool want_bits) {
  if (want_bits) std::fill(bits_.begin(), bits_.end(), 0);
  if (!nl_->is_alive(f.node) || words_ == 0) return false;
  const std::uint32_t site = plan_ ? plan_->slot_of(f.node) : f.node;
  if (!po_reach_[site]) return false;

  // Seed: inject the stuck value at the site. If no pattern excites the
  // fault (good value already equals the stuck value everywhere), nothing
  // can propagate — skip the whole cone.
  const std::uint64_t inject =
      f.value == StuckAt::One ? ~std::uint64_t{0} : 0;
  const std::uint64_t* g = good_row(site);
  std::uint64_t excited = 0;
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t diff = inject ^ g[w];
    if (w + 1 == words_) diff &= tail_;
    excited |= diff;
  }
  if (!excited) return false;

  std::uint64_t* site_row = frow(site);
  for (std::size_t w = 0; w < words_; ++w) site_row[w] = inject;
  // Blend the padding lanes of the last word with the good row so the
  // event cascade below sees no phantom difference past the last pattern.
  site_row[words_ - 1] = (inject & tail_) | (g[words_ - 1] & ~tail_);
  touched_[site] = 1;
  visited_.push_back(site);

  const auto schedule = [&](std::uint32_t src) {
    if (plan_) {
      for (SlotId reader : plan_->fanout(src)) worklist_.push(reader);
      return;
    }
    for (NodeId reader : nl_->node(src).fanout) {
      if (!nl_->is_alive(reader)) continue;
      const GateType t = nl_->node(reader).type;
      if (t == GateType::Dff || t == GateType::Input) continue;
      worklist_.push(reader);
    }
  };
  const auto value_of = [&](std::uint32_t ix) -> const std::uint64_t* {
    return touched_[ix] ? frow(ix) : good_row(ix);
  };

  // Event-driven cone evaluation. The worklist pops in topological order, so
  // by the time a gate is evaluated all of its touched fanins are final; a
  // gate whose faulty row equals the good row generates no further events.
  schedule(site);
  while (!worklist_.empty()) {
    const std::uint32_t ix = worklist_.pop();
    std::uint64_t* out = frow(ix);
    if (plan_) {
      eval_plan_slot(*plan_, ix, words_, value_of, out);
    } else {
      eval_gate_row(nl_->node(ix), words_, value_of, out);
    }
    const std::uint64_t* gr = good_row(ix);
    std::uint64_t changed = 0;
    for (std::size_t w = 0; w < words_; ++w) changed |= out[w] ^ gr[w];
    if (!changed) continue;  // row not marked touched; readers see good_
    touched_[ix] = 1;
    visited_.push_back(ix);
    schedule(ix);
  }

  bool any = false;
  const std::size_t n_po =
      plan_ ? plan_->output_slots().size() : nl_->outputs().size();
  for (std::size_t o = 0; o < n_po; ++o) {
    const std::uint32_t po = plan_ ? plan_->output_slots()[o] : nl_->outputs()[o];
    if (!touched_[po]) continue;
    const std::uint64_t* gp = good_row(po);
    const std::uint64_t* fp = frow(po);
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t diff = gp[w] ^ fp[w];
      if (w + 1 == words_) diff &= tail_;
      if (!diff) continue;
      any = true;
      if (!want_bits) goto done;
      bits_[w] |= diff;
    }
  }
done:
  for (std::uint32_t ix : visited_) touched_[ix] = 0;
  visited_.clear();
  return any;
}

bool FaultSimEngine::detects(const Fault& f) {
  return simulate_fault(f, /*want_bits=*/false);
}

const std::vector<std::uint64_t>& FaultSimEngine::detection_bits(
    const Fault& f) {
  simulate_fault(f, /*want_bits=*/true);
  return bits_;
}

std::vector<bool> FaultSimEngine::simulate(std::span<const Fault> faults) {
  std::vector<bool> detected(faults.size(), false);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    detected[i] = simulate_fault(faults[i], /*want_bits=*/false);
  }
  return detected;
}

std::size_t FaultSimEngine::drop_sim(std::span<const Fault> faults,
                                     std::vector<bool>& detected) {
  std::size_t newly = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (detected[i]) continue;
    if (simulate_fault(faults[i], /*want_bits=*/false)) {
      detected[i] = true;
      ++newly;
    }
  }
  return newly;
}

}  // namespace tz
