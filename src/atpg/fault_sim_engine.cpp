#include "atpg/fault_sim_engine.hpp"

#include <algorithm>
#include <cstdint>

#include "sim/gate_eval.hpp"

namespace tz {

FaultSimEngine::FaultSimEngine(std::shared_ptr<FaultSimContext> ctx)
    : FaultSimBackend(std::move(ctx)), worklist_(ctx_->rank()) {}

FaultSimEngine::FaultSimEngine(const Netlist& nl)
    : FaultSimEngine(std::make_shared<FaultSimContext>(nl)) {}

FaultSimEngine::FaultSimEngine(const Netlist& nl, const PatternSet& patterns)
    : FaultSimEngine(nl) {
  set_patterns(patterns);
}

void FaultSimEngine::sync_scratch() {
  if (synced_structure_ != ctx_->structure_epoch()) {
    const std::size_t n = ctx_->index_count();
    touched_.assign(n, 0);
    worklist_.resize(n);
    synced_structure_ = ctx_->structure_epoch();
  }
  if (synced_patterns_ != ctx_->pattern_epoch()) {
    words_ = ctx_->words();
    tail_ = ctx_->tail_mask();
    faulty_.resize(ctx_->index_count() * words_);
    bits_.assign(words_, 0);
    synced_patterns_ = ctx_->pattern_epoch();
  }
}

bool FaultSimEngine::simulate_fault(const Fault& f, bool want_bits) {
  sync_scratch();
  const Netlist& nl = ctx_->netlist();
  const EvalPlan* plan = ctx_->plan();
  if (want_bits) std::fill(bits_.begin(), bits_.end(), 0);
  if (!nl.is_alive(f.node) || words_ == 0) return false;
  const std::uint32_t site = plan ? plan->slot_of(f.node) : f.node;
  if (!ctx_->po_reachable_ix(site)) return false;

  // Seed: inject the stuck value at the site. If no pattern excites the
  // fault (good value already equals the stuck value everywhere), nothing
  // can propagate — skip the whole cone.
  const std::uint64_t inject =
      f.value == StuckAt::One ? ~std::uint64_t{0} : 0;
  const std::uint64_t* g = ctx_->good_row(site);
  std::uint64_t excited = 0;
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t diff = inject ^ g[w];
    if (w + 1 == words_) diff &= tail_;
    excited |= diff;
  }
  if (!excited) return false;

  std::uint64_t* site_row = frow(site);
  for (std::size_t w = 0; w < words_; ++w) site_row[w] = inject;
  // Blend the padding lanes of the last word with the good row so the
  // event cascade below sees no phantom difference past the last pattern.
  site_row[words_ - 1] = (inject & tail_) | (g[words_ - 1] & ~tail_);
  touched_[site] = 1;
  visited_.push_back(site);

  const auto schedule = [&](std::uint32_t src) {
    if (plan) {
      for (SlotId reader : plan->fanout(src)) worklist_.push(reader);
      return;
    }
    for (NodeId reader : nl.node(src).fanout) {
      if (!nl.is_alive(reader)) continue;
      const GateType t = nl.node(reader).type;
      if (t == GateType::Dff || t == GateType::Input) continue;
      worklist_.push(reader);
    }
  };
  const auto value_of = [&](std::uint32_t ix) -> const std::uint64_t* {
    return touched_[ix] ? frow(ix) : ctx_->good_row(ix);
  };

  // Event-driven cone evaluation. The worklist pops in topological order, so
  // by the time a gate is evaluated all of its touched fanins are final; a
  // gate whose faulty row equals the good row generates no further events.
  schedule(site);
  while (!worklist_.empty()) {
    const std::uint32_t ix = worklist_.pop();
    std::uint64_t* out = frow(ix);
    if (plan) {
      eval_plan_slot(*plan, ix, words_, value_of, out);
    } else {
      eval_gate_row(nl.node(ix), words_, value_of, out);
    }
    const std::uint64_t* gr = ctx_->good_row(ix);
    std::uint64_t changed = 0;
    for (std::size_t w = 0; w < words_; ++w) changed |= out[w] ^ gr[w];
    if (!changed) continue;  // row not marked touched; readers see the good_
    touched_[ix] = 1;
    visited_.push_back(ix);
    schedule(ix);
  }

  bool any = false;
  const std::size_t n_po =
      plan ? plan->output_slots().size() : nl.outputs().size();
  for (std::size_t o = 0; o < n_po; ++o) {
    const std::uint32_t po = plan ? plan->output_slots()[o] : nl.outputs()[o];
    if (!touched_[po]) continue;
    const std::uint64_t* gp = ctx_->good_row(po);
    const std::uint64_t* fp = frow(po);
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t diff = gp[w] ^ fp[w];
      if (w + 1 == words_) diff &= tail_;
      if (!diff) continue;
      any = true;
      if (!want_bits) goto done;
      bits_[w] |= diff;
    }
  }
done:
  for (std::uint32_t ix : visited_) touched_[ix] = 0;
  visited_.clear();
  return any;
}

bool FaultSimEngine::detects(const Fault& f) {
  return simulate_fault(f, /*want_bits=*/false);
}

const std::vector<std::uint64_t>& FaultSimEngine::detection_bits(
    const Fault& f) {
  simulate_fault(f, /*want_bits=*/true);
  return bits_;
}

std::vector<bool> FaultSimEngine::simulate(std::span<const Fault> faults) {
  std::vector<bool> detected(faults.size(), false);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    detected[i] = simulate_fault(faults[i], /*want_bits=*/false);
  }
  return detected;
}

std::size_t FaultSimEngine::drop_sim(std::span<const Fault> faults,
                                     std::vector<bool>& detected) {
  std::size_t newly = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (detected[i]) continue;
    if (simulate_fault(faults[i], /*want_bits=*/false)) {
      detected[i] = true;
      ++newly;
    }
  }
  return newly;
}

std::vector<std::vector<std::uint64_t>> FaultSimEngine::detection_matrix(
    std::span<const Fault> faults) {
  std::vector<std::vector<std::uint64_t>> matrix(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    simulate_fault(faults[i], /*want_bits=*/true);
    matrix[i] = bits_;
  }
  return matrix;
}

}  // namespace tz
