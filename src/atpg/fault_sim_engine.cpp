#include "atpg/fault_sim_engine.hpp"

#include <algorithm>
#include <cstdint>

#include "sim/gate_eval.hpp"

namespace tz {

FaultSimEngine::FaultSimEngine(const Netlist& nl)
    : nl_(&nl),
      sim_(nl),
      rank_(nl.raw_size(), 0),
      po_reach_(nl.raw_size(), 0),
      touched_(nl.raw_size(), 0) {
  const std::vector<NodeId>& order = sim_.order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    rank_[order[i]] = static_cast<std::uint32_t>(i);
  }
  worklist_.resize(nl.raw_size());
  // Static reachability: a fault effect at node x is observable only if some
  // combinational path leads from x to a primary output; DFFs block a
  // single-pass propagation exactly as they do in BitSimulator::run. Reverse
  // topological order guarantees every combinational reader is resolved
  // before the node itself.
  for (NodeId po : nl.outputs()) po_reach_[po] = 1;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    if (po_reach_[id]) continue;
    for (NodeId reader : nl.node(id).fanout) {
      if (nl.is_alive(reader) && nl.node(reader).type != GateType::Dff &&
          po_reach_[reader]) {
        po_reach_[id] = 1;
        break;
      }
    }
  }
}

FaultSimEngine::FaultSimEngine(const Netlist& nl, const PatternSet& patterns)
    : FaultSimEngine(nl) {
  set_patterns(patterns);
}

void FaultSimEngine::set_patterns(const PatternSet& patterns) {
  good_ = sim_.run(patterns);
  words_ = patterns.num_words();
  tail_ = patterns.tail_mask();
  faulty_.resize(nl_->raw_size() * words_);
  bits_.assign(words_, 0);
}

bool FaultSimEngine::simulate_fault(const Fault& f, bool want_bits) {
  if (want_bits) std::fill(bits_.begin(), bits_.end(), 0);
  if (!nl_->is_alive(f.node) || !po_reach_[f.node] || words_ == 0) {
    return false;
  }

  // Seed: inject the stuck value at the site. If no pattern excites the
  // fault (good value already equals the stuck value everywhere), nothing
  // can propagate — skip the whole cone.
  const std::uint64_t inject =
      f.value == StuckAt::One ? ~std::uint64_t{0} : 0;
  const std::uint64_t* g = good_.row(f.node);
  std::uint64_t excited = 0;
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t diff = inject ^ g[w];
    if (w + 1 == words_) diff &= tail_;
    excited |= diff;
  }
  if (!excited) return false;

  std::uint64_t* site = frow(f.node);
  for (std::size_t w = 0; w < words_; ++w) site[w] = inject;
  // Blend the padding lanes of the last word with the good row so the
  // event cascade below sees no phantom difference past the last pattern.
  site[words_ - 1] = (inject & tail_) | (g[words_ - 1] & ~tail_);
  touched_[f.node] = 1;
  visited_.push_back(f.node);

  const auto schedule = [&](NodeId src) {
    for (NodeId reader : nl_->node(src).fanout) {
      if (!nl_->is_alive(reader)) continue;
      const GateType t = nl_->node(reader).type;
      if (t == GateType::Dff || t == GateType::Input) continue;
      worklist_.push(reader);
    }
  };
  const auto value_of = [&](NodeId id) -> const std::uint64_t* {
    return touched_[id] ? frow(id) : good_.row(id);
  };

  // Event-driven cone evaluation. The worklist pops in topological order, so
  // by the time a gate is evaluated all of its touched fanins are final; a
  // gate whose faulty row equals the good row generates no further events.
  schedule(f.node);
  while (!worklist_.empty()) {
    const NodeId id = worklist_.pop();
    std::uint64_t* out = frow(id);
    eval_gate_row(nl_->node(id), words_, value_of, out);
    const std::uint64_t* gr = good_.row(id);
    std::uint64_t changed = 0;
    for (std::size_t w = 0; w < words_; ++w) changed |= out[w] ^ gr[w];
    if (!changed) continue;  // row not marked touched; readers see good_
    touched_[id] = 1;
    visited_.push_back(id);
    schedule(id);
  }

  bool any = false;
  for (NodeId po : nl_->outputs()) {
    if (!touched_[po]) continue;
    const std::uint64_t* gp = good_.row(po);
    const std::uint64_t* fp = frow(po);
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t diff = gp[w] ^ fp[w];
      if (w + 1 == words_) diff &= tail_;
      if (!diff) continue;
      any = true;
      if (!want_bits) goto done;
      bits_[w] |= diff;
    }
  }
done:
  for (NodeId id : visited_) touched_[id] = 0;
  visited_.clear();
  return any;
}

bool FaultSimEngine::detects(const Fault& f) {
  return simulate_fault(f, /*want_bits=*/false);
}

const std::vector<std::uint64_t>& FaultSimEngine::detection_bits(
    const Fault& f) {
  simulate_fault(f, /*want_bits=*/true);
  return bits_;
}

std::vector<bool> FaultSimEngine::simulate(std::span<const Fault> faults) {
  std::vector<bool> detected(faults.size(), false);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    detected[i] = simulate_fault(faults[i], /*want_bits=*/false);
  }
  return detected;
}

std::size_t FaultSimEngine::drop_sim(std::span<const Fault> faults,
                                     std::vector<bool>& detected) {
  std::size_t newly = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (detected[i]) continue;
    if (simulate_fault(faults[i], /*want_bits=*/false)) {
      detected[i] = true;
      ++newly;
    }
  }
  return newly;
}

}  // namespace tz
