#include "atpg/fault_sim_packed.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

#include "sim/simd.hpp"
#include "verify/verify.hpp"

namespace tz {

PackedFaultSimEngine::PackedFaultSimEngine(std::shared_ptr<FaultSimContext> ctx)
    : FaultSimBackend(std::move(ctx)) {}

PackedFaultSimEngine::PackedFaultSimEngine(const Netlist& nl)
    : PackedFaultSimEngine(std::make_shared<FaultSimContext>(nl)) {}

PackedFaultSimEngine::PackedFaultSimEngine(const Netlist& nl,
                                           const PatternSet& patterns)
    : PackedFaultSimEngine(nl) {
  set_patterns(patterns);
}

void PackedFaultSimEngine::sync_scratch() {
  if (synced_structure_ != ctx_->structure_epoch()) {
    plan_ = &ctx_->packed_plan();
    matrix_.assign(plan_->num_slots() * kBlock, 0);
    acc_.assign(kBlock, 0);
    synced_structure_ = ctx_->structure_epoch();
    synced_patterns_ = 0;
  }
  if (synced_patterns_ != ctx_->pattern_epoch()) {
    words_ = ctx_->words();
    num_patterns_ = ctx_->num_patterns();
    tail_ = ctx_->tail_mask();
    source_slots_.clear();
    source_good_.clear();
    output_slots_.clear();
    output_good_.clear();
    if (ctx_->has_patterns()) {
      const NodeValues& good = ctx_->good();
      for (const std::vector<SlotId>* list :
           {&plan_->input_slots(), &plan_->dff_slots()}) {
        for (SlotId s : *list) {
          source_slots_.push_back(s);
          source_good_.push_back(good.row(plan_->node_of(s)));
        }
      }
      for (SlotId s : plan_->output_slots()) {
        output_slots_.push_back(s);
        output_good_.push_back(good.row(plan_->node_of(s)));
      }
    }
    synced_patterns_ = ctx_->pattern_epoch();
  }
}

bool PackedFaultSimEngine::screened_out(const Fault& f) const {
  // The same screens as the event engine, so both backends zero the same
  // rows: dead site, no combinational PO path, or never excited.
  const Netlist& nl = ctx_->netlist();
  if (!nl.is_alive(f.node)) return true;
  if (plan_->slot_of(f.node) == kNoSlot) return true;
  if (!ctx_->po_reachable(f.node)) return true;
  const std::uint64_t inject =
      f.value == StuckAt::One ? ~std::uint64_t{0} : 0;
  const std::uint64_t* g = ctx_->good().row(f.node);
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t diff = inject ^ g[w];
    if (w + 1 == words_) diff &= tail_;
    if (diff) return false;
  }
  return true;
}

std::uint64_t PackedFaultSimEngine::run_batch(
    std::span<const Fault> faults, std::span<const std::size_t> idx,
    std::vector<std::vector<std::uint64_t>>* rows,
    std::span<const char> dropped) {
  const std::size_t lanes = idx.size();
  const std::uint64_t lanes_mask =
      lanes >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;

  // Lane bookkeeping + injection sites merged per slot, ascending. Slot
  // order is topological order, so every reader of a site sits at a higher
  // slot and the ranged sweep below forces the stuck values in time.
  lane_node_.clear();
  lane_fault_.clear();
  std::uint64_t sa1 = 0;
  std::array<std::pair<SlotId, std::uint8_t>, kBlock> by_slot;
  for (std::size_t i = 0; i < lanes; ++i) {
    const Fault& f = faults[idx[i]];
    lane_node_.push_back(f.node);
    lane_fault_.push_back(idx[i]);
    if (f.value == StuckAt::One) sa1 |= std::uint64_t{1} << i;
    by_slot[i] = {plan_->slot_of(f.node), static_cast<std::uint8_t>(i)};
  }
  std::sort(by_slot.begin(), by_slot.begin() + lanes);
  site_slot_.clear();
  site_mask_.clear();
  site_force_one_.clear();
  for (std::size_t i = 0; i < lanes; ++i) {
    const auto [slot, lane] = by_slot[i];
    const std::uint64_t bit = std::uint64_t{1} << lane;
    if (site_slot_.empty() || site_slot_.back() != slot) {
      site_slot_.push_back(slot);
      site_mask_.push_back(0);
      site_force_one_.push_back(0);
    }
    site_mask_.back() |= bit;
    site_force_one_.back() |= bit & sa1;
  }

  if (check_enabled()) {
    FaultPackBatch b;
    b.plan = plan_;
    b.lanes_mask = lanes_mask;
    b.sa1_lanes = sa1;
    b.lane_node = lane_node_;
    b.lane_fault = lane_fault_;
    b.site_slot = site_slot_;
    b.site_mask = site_mask_;
    b.site_force_one = site_force_one_;
    b.dropped = dropped;
    VerifyReport r = FaultPackChecker::run(b);
    if (!r.ok()) throw VerifyError("fault-pack-batch", std::move(r));
  }

  const detail::StripeKernelFn kern = detail::stripe_kernel();
  const auto n = static_cast<std::uint32_t>(plan_->num_slots());
  std::uint64_t* m = matrix_.data();
  std::uint64_t detected = 0;
  for (std::size_t wp = 0; wp < words_; ++wp) {
    const std::size_t nvalid =
        wp + 1 == words_ ? num_patterns_ - kBlock * wp : kBlock;
    // Source rows: broadcast each pattern's good bit across all 64 lanes.
    for (std::size_t k = 0; k < source_slots_.size(); ++k) {
      const std::uint64_t g = source_good_[k][wp];
      std::uint64_t* row = m + std::size_t{source_slots_[k]} * kBlock;
      for (std::size_t j = 0; j < kBlock; ++j) {
        row[j] = std::uint64_t{0} - ((g >> j) & 1);
      }
    }
    // One SoA sweep, split at the injection sites.
    std::uint32_t prev = 0;
    for (std::size_t i = 0; i < site_slot_.size(); ++i) {
      const SlotId s = site_slot_[i];
      kern(*plan_, m, kBlock, prev, s + 1);
      prev = s + 1;
      const std::uint64_t mask = site_mask_[i];
      const std::uint64_t ones = site_force_one_[i];
      std::uint64_t* row = m + std::size_t{s} * kBlock;
      for (std::size_t j = 0; j < kBlock; ++j) {
        row[j] = (row[j] & ~mask) | ones;
      }
    }
    kern(*plan_, m, kBlock, prev, n);
    // Detection: diff every PO row against the broadcast good bit.
    if (rows) {
      std::fill(acc_.begin(), acc_.end(), 0);
      for (std::size_t o = 0; o < output_slots_.size(); ++o) {
        const std::uint64_t g = output_good_[o][wp];
        const std::uint64_t* row = m + std::size_t{output_slots_[o]} * kBlock;
        for (std::size_t j = 0; j < nvalid; ++j) {
          acc_[j] |= (row[j] ^ (std::uint64_t{0} - ((g >> j) & 1)));
        }
      }
      for (std::size_t j = 0; j < nvalid; ++j) {
        std::uint64_t a = acc_[j] & lanes_mask;
        detected |= a;
        while (a) {
          const int lane = std::countr_zero(a);
          a &= a - 1;
          (*rows)[lane_fault_[lane]][wp] |= std::uint64_t{1} << j;
        }
      }
    } else {
      for (std::size_t o = 0; o < output_slots_.size(); ++o) {
        const std::uint64_t g = output_good_[o][wp];
        const std::uint64_t* row = m + std::size_t{output_slots_[o]} * kBlock;
        for (std::size_t j = 0; j < nvalid; ++j) {
          detected |= (row[j] ^ (std::uint64_t{0} - ((g >> j) & 1)));
        }
      }
      detected &= lanes_mask;
      // Early exit: every live lane has already detected — the remaining
      // pattern blocks cannot change any flag.
      if (detected == lanes_mask) break;
    }
  }
  return detected & lanes_mask;
}

std::size_t PackedFaultSimEngine::run_all(
    std::span<const Fault> faults, std::vector<bool>& detected,
    std::vector<std::vector<std::uint64_t>>* rows, bool dropping) {
  sync_scratch();
  if (words_ == 0) return 0;
  std::vector<std::size_t> cand;
  cand.reserve(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (!detected[i] && !screened_out(faults[i])) cand.push_back(i);
  }
  std::span<const char> dsnap;
  if (dropping && check_enabled()) {
    dropped_scratch_.assign(detected.begin(), detected.end());
    dsnap = dropped_scratch_;
  }
  std::size_t newly = 0;
  for (std::size_t b = 0; b < cand.size(); b += kBlock) {
    const std::size_t k = std::min(kBlock, cand.size() - b);
    const std::uint64_t det =
        run_batch(faults, std::span(cand).subspan(b, k), rows, dsnap);
    for (std::size_t i = 0; i < k; ++i) {
      if ((det >> i) & 1) {
        detected[cand[b + i]] = true;
        ++newly;
      }
    }
  }
  return newly;
}

bool PackedFaultSimEngine::detects(const Fault& f) {
  sync_scratch();
  if (words_ == 0 || screened_out(f)) return false;
  const std::size_t zero = 0;
  return run_batch(std::span(&f, 1), std::span(&zero, 1), nullptr, {}) != 0;
}

std::vector<bool> PackedFaultSimEngine::simulate(
    std::span<const Fault> faults) {
  std::vector<bool> detected(faults.size(), false);
  run_all(faults, detected, nullptr, /*dropping=*/false);
  return detected;
}

std::size_t PackedFaultSimEngine::drop_sim(std::span<const Fault> faults,
                                           std::vector<bool>& detected) {
  return run_all(faults, detected, nullptr, /*dropping=*/true);
}

std::vector<std::vector<std::uint64_t>> PackedFaultSimEngine::detection_matrix(
    std::span<const Fault> faults) {
  sync_scratch();
  std::vector<std::vector<std::uint64_t>> m(
      faults.size(), std::vector<std::uint64_t>(words_, 0));
  std::vector<bool> detected(faults.size(), false);
  run_all(faults, detected, &m, /*dropping=*/false);
  return m;
}

}  // namespace tz
