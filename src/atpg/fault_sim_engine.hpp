// Event-driven stuck-at fault-simulation backend.
//
// One fault at a time, 64 patterns per word: per-fault faulty values are
// computed event-driven over an explicit worklist ordered by topological
// rank, touching (and later clearing) only the rows the fault's effect
// actually reaches — no netlist-sized zero-fill per fault. The static
// analyses (ranks, fanout-cone -> PO reachability) and the shared
// good-machine simulation live in FaultSimContext (fault_sim_backend.hpp)
// and are cached across calls, pattern swaps and sibling backends; a masked
// excitation check additionally skips faults the pattern set never
// activates. First-class fault dropping (`drop_sim`) lets callers
// re-simulate only still-undetected faults as patterns accumulate.
//
// On the compiled-plan path (TZ_EVAL_PLAN, default on) the cone walk indexes
// sim/eval_plan.hpp slots: slot ids double as topological ranks, fanout
// scheduling reads the plan's CSR and gates evaluate through the plan's
// arity-specialized kernels instead of dereferencing Node objects. The
// legacy Node-walking path is kept (TZ_EVAL_PLAN=0) and is bit-identical.
//
// This engine wins when fanout cones are sparse relative to the netlist; its
// word-packed sibling (fault_sim_packed.hpp) wins on dense cones. The free
// functions in atpg/fault_sim.hpp route through make_fault_sim_backend.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim_backend.hpp"
#include "sim/eval_plan.hpp"
#include "sim/patterns.hpp"
#include "sim/rank_worklist.hpp"
#include "sim/simulator.hpp"

namespace tz {

class FaultSimEngine final : public FaultSimBackend {
 public:
  /// Binds the netlist and runs the good machine on `patterns`. The netlist
  /// must outlive the engine and stay structurally unchanged while in use
  /// (call resync_structure() after structural edits).
  FaultSimEngine(const Netlist& nl, const PatternSet& patterns);

  /// Netlist-only construction (static analyses run, no good machine yet);
  /// call set_patterns() before simulating any fault.
  explicit FaultSimEngine(const Netlist& nl);

  /// Shares an existing context (static analyses + good machine) instead of
  /// building a private one — the factory/auto-selector path.
  explicit FaultSimEngine(std::shared_ptr<FaultSimContext> ctx);

  std::string_view name() const override { return "event"; }

  /// True iff some pattern propagates fault `f` to a primary output.
  bool detects(const Fault& f) override;

  /// Per-pattern detection bitmap for `f`: bit 64w+b of word w is set iff
  /// pattern 64w+b detects the fault. Valid until the next simulate call.
  const std::vector<std::uint64_t>& detection_bits(const Fault& f);

  /// Detect flags for all `faults`, parallel to the input span.
  std::vector<bool> simulate(std::span<const Fault> faults) override;

  /// Fault dropping: simulate only faults with `!detected[i]`, setting their
  /// flag once detected. Returns the number of newly detected faults.
  /// `detected` must be parallel to `faults`.
  std::size_t drop_sim(std::span<const Fault> faults,
                       std::vector<bool>& detected) override;

  std::vector<std::vector<std::uint64_t>> detection_matrix(
      std::span<const Fault> faults) override;

  std::size_t num_words() const { return ctx_->words(); }
  const NodeValues& good() const { return ctx_->good(); }

 private:
  /// Event-driven faulty-machine evaluation; leaves the detection bitmap in
  /// `bits_` when `want_bits`, else exits early on the first detecting word.
  bool simulate_fault(const Fault& f, bool want_bits);

  /// Lazily resize the per-fault scratch after the context's structure or
  /// pattern epoch moved (shared contexts advance underneath the engine).
  void sync_scratch();

  std::uint64_t* frow(std::uint32_t ix) { return faulty_.data() + ix * words_; }

  // Cached off the context by sync_scratch (hot-loop locals).
  std::size_t words_ = 0;
  std::uint64_t tail_ = 0;
  std::uint64_t synced_structure_ = 0;
  std::uint64_t synced_patterns_ = 0;
  // Per-fault scratch, reset via `visited_` so cost tracks the cone size.
  std::vector<std::uint64_t> faulty_;  ///< rows valid only where touched_
  std::vector<char> touched_;
  std::vector<std::uint32_t> visited_;  ///< touched rows to un-touch
  RankWorklist worklist_;
  std::vector<std::uint64_t> bits_;  ///< detection bitmap of the last fault
};

}  // namespace tz
