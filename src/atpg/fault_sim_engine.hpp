// Reusable bit-parallel stuck-at fault-simulation engine.
//
// A FaultSimEngine is constructed once per (netlist, pattern-set) pair and
// owns all scratch state, so simulating one fault costs O(fanout cone):
//  - the good-machine simulation runs once and is shared by every fault;
//  - per-fault faulty values are computed event-driven over an explicit
//    worklist ordered by topological rank, touching (and later clearing)
//    only the rows the fault's effect actually reaches — no netlist-sized
//    zero-fill per fault;
//  - a static fanout-cone -> primary-output reachability pass skips faults
//    that can never be observed, and a masked excitation check skips faults
//    the pattern set never activates;
//  - first-class fault dropping (`drop_sim`) lets callers re-simulate only
//    still-undetected faults as patterns accumulate, which turns the ATPG
//    deterministic phase from quadratic re-simulation into incremental work.
//
// On the compiled-plan path (TZ_EVAL_PLAN, default on) the cone walk indexes
// sim/eval_plan.hpp slots: slot ids double as topological ranks, fanout
// scheduling reads the plan's CSR and gates evaluate through the plan's
// arity-specialized kernels instead of dereferencing Node objects. The
// legacy Node-walking path is kept (TZ_EVAL_PLAN=0) and is bit-identical.
//
// The free functions in atpg/fault_sim.hpp are thin wrappers over this class.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/fault.hpp"
#include "sim/eval_plan.hpp"
#include "sim/patterns.hpp"
#include "sim/rank_worklist.hpp"
#include "sim/simulator.hpp"

namespace tz {

class FaultSimEngine {
 public:
  /// Binds the netlist and runs the good machine on `patterns`. The netlist
  /// must outlive the engine and stay structurally unchanged while in use.
  FaultSimEngine(const Netlist& nl, const PatternSet& patterns);

  /// Netlist-only construction (static analyses run, no good machine yet);
  /// call set_patterns() before simulating any fault.
  explicit FaultSimEngine(const Netlist& nl);

  /// Re-run the good machine on a new pattern set, keeping the static
  /// netlist analyses (topological ranks, PO reachability). Scratch buffers
  /// are reused when the word count allows.
  void set_patterns(const PatternSet& patterns);

  /// True iff some pattern propagates fault `f` to a primary output.
  bool detects(const Fault& f);

  /// Per-pattern detection bitmap for `f`: bit 64w+b of word w is set iff
  /// pattern 64w+b detects the fault. Valid until the next simulate call.
  const std::vector<std::uint64_t>& detection_bits(const Fault& f);

  /// Detect flags for all `faults`, parallel to the input span.
  std::vector<bool> simulate(std::span<const Fault> faults);

  /// Fault dropping: simulate only faults with `!detected[i]`, setting their
  /// flag once detected. Returns the number of newly detected faults.
  /// `detected` must be parallel to `faults`.
  std::size_t drop_sim(std::span<const Fault> faults,
                       std::vector<bool>& detected);

  std::size_t num_words() const { return words_; }
  const NodeValues& good() const { return good_; }

  /// Static reachability: false means no combinational path from `id` to any
  /// primary output exists, so no fault at `id` is ever detectable.
  bool po_reachable(NodeId id) const {
    if (plan_) {
      const SlotId s = plan_->slot_of(id);
      return s != kNoSlot && po_reach_[s] != 0;
    }
    return po_reach_[id] != 0;
  }

 private:
  /// Event-driven faulty-machine evaluation; leaves the detection bitmap in
  /// `bits_` when `want_bits`, else exits early on the first detecting word.
  bool simulate_fault(const Fault& f, bool want_bits);

  /// Index space of the cone walk: plan slots when compiled, NodeIds else.
  std::size_t index_count() const {
    return plan_ ? plan_->num_slots() : nl_->raw_size();
  }
  std::uint64_t* frow(std::uint32_t ix) { return faulty_.data() + ix * words_; }
  const std::uint64_t* good_row(std::uint32_t ix) const {
    return plan_ ? good_.data() + std::size_t{ix} * words_ : good_.row(ix);
  }

  const Netlist* nl_;
  BitSimulator sim_;
  const EvalPlan* plan_;             ///< sim_'s plan (nullptr = legacy path)
  std::vector<std::uint32_t> rank_;  ///< worklist order (identity over slots)
  std::vector<char> po_reach_;       ///< static cone -> PO reachability
  NodeValues good_;
  std::size_t words_ = 0;
  std::uint64_t tail_ = 0;
  // Per-fault scratch, reset via `visited_` so cost tracks the cone size.
  std::vector<std::uint64_t> faulty_;  ///< rows valid only where touched_
  std::vector<char> touched_;
  std::vector<std::uint32_t> visited_;  ///< touched rows to un-touch
  RankWorklist worklist_{rank_};
  std::vector<std::uint64_t> bits_;  ///< detection bitmap of the last fault
};

}  // namespace tz
