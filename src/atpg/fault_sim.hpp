// Bit-parallel stuck-at fault simulation — convenience wrappers.
//
// Simulates the faulty machine for each fault over 64 patterns per word and
// compares primary outputs against the good machine. Used to grade pattern
// sets (fault coverage), to drop detected faults during ATPG, and by tests
// to prove the defender's patterns still detect all testable faults after a
// TrojanZero insertion. Each call routes through make_fault_sim_backend
// (atpg/fault_sim_backend.hpp), honoring FaultSimMode / TZ_FAULT_MODE;
// callers simulating many pattern sets or dropping faults incrementally
// should hold a backend (or a concrete engine) directly so the static
// analyses and the compiled plan are reused.
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/fault.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"

namespace tz {

/// True iff `patterns` detects fault `f` (some PO differs on some pattern).
bool detects(const Netlist& nl, const Fault& f, const PatternSet& patterns);

/// Simulate all faults; returns a parallel vector of "detected" flags.
std::vector<bool> fault_simulate(const Netlist& nl,
                                 const std::vector<Fault>& faults,
                                 const PatternSet& patterns);

/// Coverage = detected / total, in [0,1].
struct CoverageReport {
  std::size_t total_faults = 0;
  std::size_t detected = 0;
  double coverage() const {
    return total_faults == 0
               ? 1.0
               : static_cast<double>(detected) / static_cast<double>(total_faults);
  }
};

CoverageReport grade_patterns(const Netlist& nl,
                              const std::vector<Fault>& faults,
                              const PatternSet& patterns);

/// Per-fault detection bitmap: word w bit b of entry f is set iff pattern
/// 64w+b detects fault f. Drives static pattern compaction.
std::vector<std::vector<std::uint64_t>> detection_matrix(
    const Netlist& nl, const std::vector<Fault>& faults,
    const PatternSet& patterns);

/// Greedy static compaction: keep only patterns that detect at least one
/// fault no earlier kept pattern detects. Returns kept pattern indices.
std::vector<std::size_t> compact_patterns(
    const std::vector<std::vector<std::uint64_t>>& matrix,
    std::size_t num_patterns);

}  // namespace tz
