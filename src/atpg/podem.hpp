// PODEM automatic test pattern generation (TetraMAX substitute).
//
// Classic PODEM (Goel 1981): decisions are made only on primary inputs, an
// objective/backtrace pair drives the search, and full forward implication
// runs two three-valued machines (good and faulty) in lockstep — the usual
// decomposition of the 5-valued {0,1,X,D,D'} algebra.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/fault.hpp"
#include "sim/patterns.hpp"
#include "sim/rank_worklist.hpp"

namespace tz {

struct PodemOptions {
  int backtrack_limit = 500;  ///< Abort threshold per fault.
};

enum class PodemStatus : std::uint8_t {
  Detected,    ///< Pattern found.
  Untestable,  ///< Search space exhausted: fault is redundant.
  Aborted,     ///< Backtrack limit hit.
};

struct PodemResult {
  PodemStatus status = PodemStatus::Aborted;
  std::vector<bool> pattern;   ///< PI assignment (X filled with 0), PI order.
  std::vector<char> assigned;  ///< 1 where the PI was actually constrained.
  int backtracks = 0;
};

/// Reusable PODEM engine: binds a netlist once (topological order, ranks,
/// three-valued machine scratch) and serves one fault per run() call. The
/// forward implication is event-driven — after a PI decision only the PI's
/// fanout cone is re-evaluated, against full-netlist passes in the classic
/// formulation — but the search (objective, backtrace, backtracking) is
/// unchanged, so run() returns exactly what the free podem() always has.
/// ATPG loops that target many faults on one netlist should hold one engine.
class PodemEngine {
 public:
  /// The netlist must outlive the engine and stay structurally unchanged.
  explicit PodemEngine(const Netlist& nl);

  PodemResult run(const Fault& fault, const PodemOptions& opt = {});

 private:
  const Netlist* nl_;
  std::vector<NodeId> order_;
  std::vector<std::uint32_t> rank_;
  std::vector<std::uint8_t> good_, faulty_;  // three-valued: 0, 1, 2 = X
  std::vector<int> pi_assign_;               // -1 = X, else 0/1
  RankWorklist worklist_{rank_};
};

/// Generate a test for one stuck-at fault on a combinational netlist.
/// One-shot wrapper over PodemEngine.
PodemResult podem(const Netlist& nl, const Fault& fault,
                  const PodemOptions& opt = {});

}  // namespace tz
