// PODEM automatic test pattern generation (TetraMAX substitute).
//
// Classic PODEM (Goel 1981): decisions are made only on primary inputs, an
// objective/backtrace pair drives the search, and full forward implication
// runs two three-valued machines (good and faulty) in lockstep — the usual
// decomposition of the 5-valued {0,1,X,D,D'} algebra.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/fault.hpp"
#include "sim/patterns.hpp"

namespace tz {

struct PodemOptions {
  int backtrack_limit = 500;  ///< Abort threshold per fault.
};

enum class PodemStatus : std::uint8_t {
  Detected,    ///< Pattern found.
  Untestable,  ///< Search space exhausted: fault is redundant.
  Aborted,     ///< Backtrack limit hit.
};

struct PodemResult {
  PodemStatus status = PodemStatus::Aborted;
  std::vector<bool> pattern;   ///< PI assignment (X filled with 0), PI order.
  std::vector<char> assigned;  ///< 1 where the PI was actually constrained.
  int backtracks = 0;
};

/// Generate a test for one stuck-at fault on a combinational netlist.
PodemResult podem(const Netlist& nl, const Fault& fault,
                  const PodemOptions& opt = {});

}  // namespace tz
