#include "atpg/fault_sim_backend.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string_view>

#include "atpg/fault_sim_engine.hpp"
#include "atpg/fault_sim_packed.hpp"

namespace tz {

namespace {

/// TZ_FAULT_MODE: "event"/"1" and "packed"/"2" force a backend, anything
/// else (including unset) means Auto — same read-once shape as TZ_EVAL_PLAN.
int read_env_fault_mode() {
  if (const char* env = std::getenv("TZ_FAULT_MODE")) {
    const std::string_view v(env);
    if (v == "event" || v == "1") return 1;
    if (v == "packed" || v == "2") return 2;
  }
  return 0;
}

std::atomic<int>& fault_mode_override() {
  static std::atomic<int> mode{-1};
  return mode;
}

}  // namespace

std::string_view to_string(FaultSimMode mode) {
  switch (mode) {
    case FaultSimMode::Auto: return "auto";
    case FaultSimMode::Event: return "event";
    case FaultSimMode::Packed: return "packed";
  }
  return "auto";
}

FaultSimMode fault_sim_mode() {
  const int ovr = fault_mode_override().load(std::memory_order_relaxed);
  if (ovr >= 0) return static_cast<FaultSimMode>(ovr);
  static const int env_mode = read_env_fault_mode();
  return static_cast<FaultSimMode>(env_mode);
}

void set_fault_sim_mode(int mode) {
  fault_mode_override().store(mode < 0 ? -1 : std::clamp(mode, 0, 2),
                              std::memory_order_relaxed);
}

FaultSimContext::FaultSimContext(const Netlist& nl)
    : nl_(&nl), sim_(nl), plan_(sim_.plan()) {
  rebuild_static();
}

void FaultSimContext::rebuild_static() {
  const std::size_t n = index_count();
  po_reach_.assign(n, 0);
  rank_.resize(n);
  if (plan_) {
    // Slot order is the topological order, so the worklist rank is the slot
    // id itself and reachability is one reverse sweep over the fanout CSR
    // (which already excludes DFF readers — they block a single pass exactly
    // as they do in BitSimulator::run).
    std::iota(rank_.begin(), rank_.end(), 0);
    for (SlotId po : plan_->output_slots()) po_reach_[po] = 1;
    for (SlotId s = static_cast<SlotId>(n); s-- > 0;) {
      if (po_reach_[s]) continue;
      for (SlotId reader : plan_->fanout(s)) {
        if (po_reach_[reader]) {
          po_reach_[s] = 1;
          break;
        }
      }
    }
  } else {
    const std::vector<NodeId>& order = sim_.order();
    for (std::size_t i = 0; i < order.size(); ++i) {
      rank_[order[i]] = static_cast<std::uint32_t>(i);
    }
    // Static reachability: a fault effect at node x is observable only if
    // some combinational path leads from x to a primary output; DFFs block a
    // single-pass propagation exactly as they do in BitSimulator::run.
    // Reverse topological order guarantees every combinational reader is
    // resolved before the node itself.
    for (NodeId po : nl_->outputs()) po_reach_[po] = 1;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId id = *it;
      if (po_reach_[id]) continue;
      for (NodeId reader : nl_->node(id).fanout) {
        if (nl_->is_alive(reader) && nl_->node(reader).type != GateType::Dff &&
            po_reach_[reader]) {
          po_reach_[id] = 1;
          break;
        }
      }
    }
  }
  mean_cone_ = -1.0;
  eval_slots_ = 0;
}

void FaultSimContext::set_patterns(const PatternSet& patterns) {
  // The cone kernels read whole good-machine rows via data() + ix * words;
  // opt out of the stripe-major layout for this matrix.
  good_ = sim_.run(patterns, nullptr, ValueLayout::Contiguous);
  words_ = patterns.num_words();
  tail_ = patterns.tail_mask();
  num_patterns_ = patterns.num_patterns();
  has_patterns_ = true;
  ++pattern_epoch_;
}

void FaultSimContext::resync_structure() {
  sim_ = BitSimulator(*nl_);
  plan_ = sim_.plan();
  private_plan_.reset();
  rebuild_static();
  good_ = NodeValues();
  words_ = 0;
  tail_ = 0;
  num_patterns_ = 0;
  has_patterns_ = false;
  ++structure_epoch_;
  ++pattern_epoch_;
}

const EvalPlan& FaultSimContext::packed_plan() {
  if (plan_) return *plan_;
  if (!private_plan_) private_plan_ = std::make_unique<EvalPlan>(*nl_);
  return *private_plan_;
}

double FaultSimContext::mean_cone_size() {
  if (mean_cone_ >= 0.0) return mean_cone_;
  // Sample the fanout-cone size from a handful of evenly spaced PO-reachable
  // sites: a bounded BFS over the same edges the event engine walks, giving
  // the Auto selector a static density estimate without simulating anything.
  const std::size_t n = index_count();
  std::vector<std::uint32_t> reachable;
  reachable.reserve(n);
  for (std::uint32_t ix = 0; ix < n; ++ix) {
    if (po_reach_[ix]) reachable.push_back(ix);
  }
  if (reachable.empty()) {
    mean_cone_ = 0.0;
    return mean_cone_;
  }
  constexpr std::size_t kSamples = 24;
  const std::size_t stride = std::max<std::size_t>(1, reachable.size() / kSamples);
  std::vector<std::uint32_t> stamp(n, 0);
  std::vector<std::uint32_t> frontier;
  std::uint32_t epoch = 0;
  std::size_t total = 0;
  std::size_t samples = 0;
  for (std::size_t i = 0; i < reachable.size(); i += stride) {
    ++epoch;
    ++samples;
    frontier.assign(1, reachable[i]);
    stamp[reachable[i]] = epoch;
    std::size_t cone = 0;
    while (!frontier.empty()) {
      const std::uint32_t ix = frontier.back();
      frontier.pop_back();
      ++cone;
      if (plan_) {
        for (SlotId reader : plan_->fanout(ix)) {
          if (stamp[reader] != epoch) {
            stamp[reader] = epoch;
            frontier.push_back(reader);
          }
        }
      } else {
        for (NodeId reader : nl_->node(ix).fanout) {
          if (!nl_->is_alive(reader)) continue;
          const GateType t = nl_->node(reader).type;
          if (t == GateType::Dff || t == GateType::Input) continue;
          if (stamp[reader] != epoch) {
            stamp[reader] = epoch;
            frontier.push_back(reader);
          }
        }
      }
    }
    total += cone;
  }
  mean_cone_ = static_cast<double>(total) / static_cast<double>(samples);
  return mean_cone_;
}

std::size_t FaultSimContext::eval_slot_count() {
  if (eval_slots_ == 0) {
    const EvalPlan& plan = packed_plan();
    std::size_t count = 0;
    for (SlotId s = 0; s < plan.num_slots(); ++s) {
      const EvalOp op = plan.op(s);
      if (op != EvalOp::Source && op != EvalOp::Dead) ++count;
    }
    eval_slots_ = std::max<std::size_t>(1, count);
  }
  return eval_slots_;
}

namespace {

/// The measured auto-selector. Holds both engines lazily over one shared
/// context and routes each call by a word-count cost model:
///
///   event  ~ F * mean_cone * ceil(P/64)      words through the scalar cone
///                                            walk (worklist + change check)
///   packed ~ ceil(F/64) * eval_slots * P     words through the SIMD stripe
///                                            sweep, flag-mode runs usually
///                                            early-exiting after the first
///                                            64-pattern block
///
/// A packed word is much cheaper than an event word (straight-line SIMD vs
/// worklist scheduling and per-gate dispatch), and the static cone size
/// overestimates the event walk (diffs die before filling the cone);
/// kPackedWordCost folds both effects into one measured constant. Calibrated
/// against the two 100k-gate bench extremes, whose decisions it must get
/// right with margin: mult96 dense cones (mean cone ~31k of 109k slots) run
/// ~7.7x faster packed (BM_FaultSimPacked100k same-run A/B), while the
/// sparse rand100k DAG (mean cone ~4k of 100k slots) runs ~2.4x faster
/// event-driven (bench_large_smoke parity section times both).
class AutoFaultSimBackend final : public FaultSimBackend {
 public:
  explicit AutoFaultSimBackend(std::shared_ptr<FaultSimContext> ctx)
      : FaultSimBackend(std::move(ctx)) {}

  std::string_view name() const override { return "auto"; }

  bool detects(const Fault& f) override { return event().detects(f); }

  std::vector<bool> simulate(std::span<const Fault> faults) override {
    return pick(faults.size(), /*matrix=*/false).simulate(faults);
  }

  std::size_t drop_sim(std::span<const Fault> faults,
                       std::vector<bool>& detected) override {
    // Cost tracks the faults still alive, not the span size.
    std::size_t live = 0;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (!detected[i]) ++live;
    }
    return pick(live, /*matrix=*/false).drop_sim(faults, detected);
  }

  std::vector<std::vector<std::uint64_t>> detection_matrix(
      std::span<const Fault> faults) override {
    return pick(faults.size(), /*matrix=*/true).detection_matrix(faults);
  }

 private:
  FaultSimEngine& event() {
    if (!event_) event_ = std::make_unique<FaultSimEngine>(ctx_);
    return *event_;
  }
  PackedFaultSimEngine& packed() {
    if (!packed_) packed_ = std::make_unique<PackedFaultSimEngine>(ctx_);
    return *packed_;
  }

  FaultSimBackend& pick(std::size_t num_faults, bool matrix) {
    // Below one full word of lanes the packed sweep wastes most of its work.
    constexpr std::size_t kMinPackedFaults = 64;
    constexpr double kPackedWordCost = 0.125;
    if (num_faults < kMinPackedFaults || ctx_->words() == 0) return event();
    const double cone = ctx_->mean_cone_size();
    const double slots = static_cast<double>(ctx_->eval_slot_count());
    const double words = static_cast<double>(ctx_->words());
    const double batches =
        static_cast<double>((num_faults + 63) / 64);
    // Flag-mode packed runs early-exit once every live lane has detected —
    // almost always within the first couple of 64-pattern blocks.
    const double packed_blocks = matrix ? words : std::min(words, 2.0);
    const double event_cost = static_cast<double>(num_faults) * cone * words;
    const double packed_cost =
        batches * slots * 64.0 * packed_blocks * kPackedWordCost;
    return packed_cost < event_cost ? static_cast<FaultSimBackend&>(packed())
                                    : event();
  }

  std::unique_ptr<FaultSimEngine> event_;
  std::unique_ptr<PackedFaultSimEngine> packed_;
};

}  // namespace

std::unique_ptr<FaultSimBackend> make_fault_sim_backend(
    std::shared_ptr<FaultSimContext> ctx, FaultSimMode mode) {
  switch (mode) {
    case FaultSimMode::Event:
      return std::make_unique<FaultSimEngine>(std::move(ctx));
    case FaultSimMode::Packed:
      return std::make_unique<PackedFaultSimEngine>(std::move(ctx));
    case FaultSimMode::Auto:
      break;
  }
  return std::make_unique<AutoFaultSimBackend>(std::move(ctx));
}

std::unique_ptr<FaultSimBackend> make_fault_sim_backend(const Netlist& nl,
                                                        FaultSimMode mode) {
  return make_fault_sim_backend(std::make_shared<FaultSimContext>(nl), mode);
}

}  // namespace tz
