#include "atpg/fault_sim.hpp"

#include <cstdint>

namespace tz {
namespace {

/// Forward-evaluate the faulty machine given good-machine values, touching
/// only the fault's transitive fanout (event-driven style but in topological
/// order for simplicity and bit-parallelism). When `bits` is non-null it
/// receives the per-pattern detection bitmap (and no early exit happens).
bool fault_detected(const Netlist& nl, const std::vector<NodeId>& order,
                    const NodeValues& good, const Fault& f,
                    std::size_t words, std::uint64_t tail,
                    std::vector<std::uint64_t>* bits = nullptr) {
  // faulty values initialised lazily: nodes outside the fanout cone equal
  // the good machine.
  std::vector<std::uint64_t> faulty;
  std::vector<char> touched(nl.raw_size(), 0);
  faulty.assign(nl.raw_size() * words, 0);
  auto frow = [&](NodeId id) { return faulty.data() + id * words; };

  const std::uint64_t inject =
      f.value == StuckAt::One ? ~std::uint64_t{0} : 0;
  for (std::size_t w = 0; w < words; ++w) frow(f.node)[w] = inject;
  touched[f.node] = 1;

  auto value_of = [&](NodeId id, std::size_t w) -> std::uint64_t {
    return touched[id] ? frow(id)[w] : good.row(id)[w];
  };

  for (NodeId id : order) {
    if (id == f.node) continue;
    const Node& n = nl.node(id);
    if (n.type == GateType::Input || n.type == GateType::Dff) continue;
    bool any_touched = false;
    for (NodeId fi : n.fanin) {
      if (touched[fi]) { any_touched = true; break; }
    }
    if (!any_touched) continue;
    std::uint64_t* out = frow(id);
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t v = 0;
      switch (n.type) {
        case GateType::Const0: v = 0; break;
        case GateType::Const1: v = ~std::uint64_t{0}; break;
        case GateType::Buf: v = value_of(n.fanin[0], w); break;
        case GateType::Not: v = ~value_of(n.fanin[0], w); break;
        case GateType::And: {
          v = ~std::uint64_t{0};
          for (NodeId fi : n.fanin) v &= value_of(fi, w);
          break;
        }
        case GateType::Nand: {
          v = ~std::uint64_t{0};
          for (NodeId fi : n.fanin) v &= value_of(fi, w);
          v = ~v;
          break;
        }
        case GateType::Or: {
          v = 0;
          for (NodeId fi : n.fanin) v |= value_of(fi, w);
          break;
        }
        case GateType::Nor: {
          v = 0;
          for (NodeId fi : n.fanin) v |= value_of(fi, w);
          v = ~v;
          break;
        }
        case GateType::Xor: {
          v = 0;
          for (NodeId fi : n.fanin) v ^= value_of(fi, w);
          break;
        }
        case GateType::Xnor: {
          v = 0;
          for (NodeId fi : n.fanin) v ^= value_of(fi, w);
          v = ~v;
          break;
        }
        case GateType::Mux: {
          const std::uint64_t s = value_of(n.fanin[0], w);
          v = (~s & value_of(n.fanin[1], w)) | (s & value_of(n.fanin[2], w));
          break;
        }
        case GateType::Input:
        case GateType::Dff:
          break;
      }
      out[w] = v;
    }
    touched[id] = 1;
  }

  if (bits) bits->assign(words, 0);
  bool any = false;
  for (NodeId po : nl.outputs()) {
    if (!touched[po]) continue;
    const std::uint64_t* g = good.row(po);
    const std::uint64_t* fv = frow(po);
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t diff = g[w] ^ fv[w];
      if (w + 1 == words) diff &= tail;
      if (diff) {
        any = true;
        if (!bits) return true;
        (*bits)[w] |= diff;
      }
    }
  }
  return any;
}

}  // namespace

bool detects(const Netlist& nl, const Fault& f, const PatternSet& patterns) {
  BitSimulator sim(nl);
  const NodeValues good = sim.run(patterns);
  return fault_detected(nl, nl.topo_order(), good, f, patterns.num_words(),
                        patterns.tail_mask());
}

std::vector<bool> fault_simulate(const Netlist& nl,
                                 const std::vector<Fault>& faults,
                                 const PatternSet& patterns) {
  BitSimulator sim(nl);
  const NodeValues good = sim.run(patterns);
  const std::vector<NodeId> order = nl.topo_order();
  std::vector<bool> detected(faults.size(), false);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    detected[i] = fault_detected(nl, order, good, faults[i],
                                 patterns.num_words(), patterns.tail_mask());
  }
  return detected;
}

CoverageReport grade_patterns(const Netlist& nl,
                              const std::vector<Fault>& faults,
                              const PatternSet& patterns) {
  const std::vector<bool> det = fault_simulate(nl, faults, patterns);
  CoverageReport r;
  r.total_faults = faults.size();
  for (bool d : det) {
    if (d) ++r.detected;
  }
  return r;
}

std::vector<std::vector<std::uint64_t>> detection_matrix(
    const Netlist& nl, const std::vector<Fault>& faults,
    const PatternSet& patterns) {
  BitSimulator sim(nl);
  const NodeValues good = sim.run(patterns);
  const std::vector<NodeId> order = nl.topo_order();
  std::vector<std::vector<std::uint64_t>> matrix(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    fault_detected(nl, order, good, faults[i], patterns.num_words(),
                   patterns.tail_mask(), &matrix[i]);
  }
  return matrix;
}

std::vector<std::size_t> compact_patterns(
    const std::vector<std::vector<std::uint64_t>>& matrix,
    std::size_t num_patterns) {
  std::vector<std::size_t> kept;
  std::vector<char> covered(matrix.size(), 0);
  for (std::size_t p = 0; p < num_patterns; ++p) {
    const std::size_t w = p / 64;
    const std::uint64_t m = std::uint64_t{1} << (p % 64);
    bool contributes = false;
    for (std::size_t f = 0; f < matrix.size(); ++f) {
      if (!covered[f] && w < matrix[f].size() && (matrix[f][w] & m)) {
        covered[f] = 1;
        contributes = true;
      }
    }
    if (contributes) kept.push_back(p);
  }
  return kept;
}

}  // namespace tz
