#include "atpg/fault_sim.hpp"

#include <cstdint>

#include "atpg/fault_sim_backend.hpp"

namespace tz {

bool detects(const Netlist& nl, const Fault& f, const PatternSet& patterns) {
  const auto backend = make_fault_sim_backend(nl);
  backend->set_patterns(patterns);
  return backend->detects(f);
}

std::vector<bool> fault_simulate(const Netlist& nl,
                                 const std::vector<Fault>& faults,
                                 const PatternSet& patterns) {
  const auto backend = make_fault_sim_backend(nl);
  backend->set_patterns(patterns);
  return backend->simulate(faults);
}

CoverageReport grade_patterns(const Netlist& nl,
                              const std::vector<Fault>& faults,
                              const PatternSet& patterns) {
  const std::vector<bool> det = fault_simulate(nl, faults, patterns);
  CoverageReport r;
  r.total_faults = faults.size();
  for (bool d : det) {
    if (d) ++r.detected;
  }
  return r;
}

std::vector<std::vector<std::uint64_t>> detection_matrix(
    const Netlist& nl, const std::vector<Fault>& faults,
    const PatternSet& patterns) {
  const auto backend = make_fault_sim_backend(nl);
  backend->set_patterns(patterns);
  return backend->detection_matrix(faults);
}

std::vector<std::size_t> compact_patterns(
    const std::vector<std::vector<std::uint64_t>>& matrix,
    std::size_t num_patterns) {
  std::vector<std::size_t> kept;
  std::vector<char> covered(matrix.size(), 0);
  for (std::size_t p = 0; p < num_patterns; ++p) {
    const std::size_t w = p / 64;
    const std::uint64_t m = std::uint64_t{1} << (p % 64);
    bool contributes = false;
    for (std::size_t f = 0; f < matrix.size(); ++f) {
      if (!covered[f] && w < matrix[f].size() && (matrix[f][w] & m)) {
        covered[f] = 1;
        contributes = true;
      }
    }
    if (contributes) kept.push_back(p);
  }
  return kept;
}

}  // namespace tz
