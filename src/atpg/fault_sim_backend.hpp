// Pluggable fault-simulation backend layer.
//
// Fault simulation has two complementary engine shapes: the event-driven
// FaultSimEngine (per fault, pattern-parallel, cost tracks the fanout cone)
// and the word-packed PackedFaultSimEngine (64 faults per word, one SoA
// sweep over the EvalPlan per 64-pattern block). Event-driven wins when
// cones are sparse relative to the netlist; packed wins when cones are dense
// enough that walking them per fault costs more than sweeping every slot
// once for 64 faults at a time.
//
// This header owns the pieces both engines share:
//  - FaultSimMode / TZ_FAULT_MODE: the process-wide backend selector,
//    following the TZ_EVAL_PLAN override idiom (env read once, test hook
//    overrides atomically);
//  - FaultSimContext: the static analyses (topological ranks, fanout-cone ->
//    PO reachability) and the good-machine simulation, computed once per
//    netlist and cached across backend calls — constructing engines per call
//    used to recompute these every time;
//  - FaultSimBackend: the abstract contract (detects / simulate / drop_sim /
//    detection_matrix) every consumer is wired through;
//  - make_fault_sim_backend: the factory, returning the concrete engine for
//    Event/Packed or a measured auto-selector for Auto.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "atpg/fault.hpp"
#include "sim/eval_plan.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"

namespace tz {

enum class FaultSimMode : std::uint8_t { Auto = 0, Event = 1, Packed = 2 };

std::string_view to_string(FaultSimMode mode);

/// Process-wide backend mode. Reads TZ_FAULT_MODE once ("event"/"1",
/// "packed"/"2", anything else or unset = Auto) unless overridden from code.
FaultSimMode fault_sim_mode();

/// Test/bench hook: -1 restores the TZ_FAULT_MODE env behavior, 0/1/2 force
/// Auto/Event/Packed for the whole process.
void set_fault_sim_mode(int mode);

/// Static analyses + good machine shared by every fault-simulation backend.
///
/// Constructed once per netlist and reused across calls and across backends
/// (the Auto selector runs both engines off one context): topological ranks,
/// the fanout-cone -> PO reachability bitset and the compiled plan survive
/// between pattern-set swaps, and `resync_structure()` is the single
/// invalidation point after structural netlist edits.
class FaultSimContext {
 public:
  explicit FaultSimContext(const Netlist& nl);

  /// Re-run the good machine on a new pattern set; static analyses are kept.
  void set_patterns(const PatternSet& patterns);

  /// Recompute every static analysis (plan, ranks, PO reachability, cone
  /// statistics) after the netlist changed structurally. Also drops the good
  /// machine — call set_patterns() again before simulating.
  void resync_structure();

  const Netlist& netlist() const { return *nl_; }
  /// The shared compiled plan (nullptr on the TZ_EVAL_PLAN=0 legacy path).
  const EvalPlan* plan() const { return plan_; }
  /// A compiled plan for the packed engine, which has no legacy path: the
  /// shared plan when compiled, else a lazily compiled private plan.
  const EvalPlan& packed_plan();

  /// Index space of the cone walk: plan slots when compiled, NodeIds else.
  std::size_t index_count() const {
    return plan_ ? plan_->num_slots() : nl_->raw_size();
  }
  const std::vector<std::uint32_t>& rank() const { return rank_; }
  bool po_reachable_ix(std::uint32_t ix) const { return po_reach_[ix] != 0; }
  /// Static reachability: false means no combinational path from `id` to any
  /// primary output exists, so no fault at `id` is ever detectable.
  bool po_reachable(NodeId id) const {
    if (plan_) {
      const SlotId s = plan_->slot_of(id);
      return s != kNoSlot && po_reach_[s] != 0;
    }
    return po_reach_[id] != 0;
  }

  bool has_patterns() const { return has_patterns_; }
  const NodeValues& good() const { return good_; }
  const std::uint64_t* good_row(std::uint32_t ix) const {
    return plan_ ? good_.data() + std::size_t{ix} * words_ : good_.row(ix);
  }
  std::size_t words() const { return words_; }
  std::uint64_t tail_mask() const { return tail_; }
  std::size_t num_patterns() const { return num_patterns_; }

  /// Mean fanout-cone size over sampled PO-reachable sites (lazily computed,
  /// cached until resync_structure). Drives the Auto backend selector.
  double mean_cone_size();
  /// Slots the packed sweep actually evaluates (non-source, non-dead).
  std::size_t eval_slot_count();

  /// Bumped by resync_structure / set_patterns; backends compare these to
  /// lazily refresh per-engine scratch sized off the context.
  std::uint64_t structure_epoch() const { return structure_epoch_; }
  std::uint64_t pattern_epoch() const { return pattern_epoch_; }

 private:
  void rebuild_static();

  const Netlist* nl_;
  BitSimulator sim_;
  const EvalPlan* plan_;             ///< sim_'s plan (nullptr = legacy path)
  std::unique_ptr<EvalPlan> private_plan_;  ///< packed plan on legacy path
  std::vector<std::uint32_t> rank_;  ///< worklist order (identity over slots)
  std::vector<char> po_reach_;       ///< static cone -> PO reachability
  NodeValues good_;
  std::size_t words_ = 0;
  std::uint64_t tail_ = 0;
  std::size_t num_patterns_ = 0;
  bool has_patterns_ = false;
  double mean_cone_ = -1.0;          ///< < 0: not sampled yet
  std::size_t eval_slots_ = 0;       ///< 0: not counted yet
  std::uint64_t structure_epoch_ = 1;
  std::uint64_t pattern_epoch_ = 0;
};

/// The backend contract every fault-simulation consumer is wired through.
/// One backend is bound to one FaultSimContext; patterns are swapped via
/// set_patterns and structural edits signalled via resync_structure.
class FaultSimBackend {
 public:
  virtual ~FaultSimBackend() = default;

  virtual std::string_view name() const = 0;

  /// True iff some pattern propagates fault `f` to a primary output.
  virtual bool detects(const Fault& f) = 0;

  /// Detect flags for all `faults`, parallel to the input span.
  virtual std::vector<bool> simulate(std::span<const Fault> faults) = 0;

  /// Fault dropping: simulate only faults with `!detected[i]`, setting their
  /// flag once detected. Returns the number of newly detected faults.
  virtual std::size_t drop_sim(std::span<const Fault> faults,
                               std::vector<bool>& detected) = 0;

  /// Per-fault detection bitmaps: word w bit b of row f is set iff pattern
  /// 64w+b detects fault f. Rows of undetectable faults are all-zero.
  virtual std::vector<std::vector<std::uint64_t>> detection_matrix(
      std::span<const Fault> faults) = 0;

  FaultSimContext& context() { return *ctx_; }
  const FaultSimContext& context() const { return *ctx_; }
  void set_patterns(const PatternSet& patterns) { ctx_->set_patterns(patterns); }
  void resync_structure() { ctx_->resync_structure(); }
  bool po_reachable(NodeId id) const { return ctx_->po_reachable(id); }

 protected:
  explicit FaultSimBackend(std::shared_ptr<FaultSimContext> ctx)
      : ctx_(std::move(ctx)) {}

  std::shared_ptr<FaultSimContext> ctx_;
};

/// Build a backend over a fresh context for `nl`. Mode Auto returns the
/// measured selector; Event/Packed force the concrete engine. The default
/// mode argument resolves TZ_FAULT_MODE / set_fault_sim_mode.
std::unique_ptr<FaultSimBackend> make_fault_sim_backend(
    const Netlist& nl, FaultSimMode mode = fault_sim_mode());

/// Same, binding an existing (possibly shared) context.
std::unique_ptr<FaultSimBackend> make_fault_sim_backend(
    std::shared_ptr<FaultSimContext> ctx, FaultSimMode mode = fault_sim_mode());

}  // namespace tz
