// Word-packed fault-parallel stuck-at simulation backend.
//
// Where the event-driven engine walks one fault's fanout cone at a time,
// this engine packs 64 fault machines into each 64-bit word — lane i of a
// word simulates fault i of the batch — and evaluates all of them in one
// SoA sweep over the EvalPlan with the PR-6 SIMD stripe kernels:
//
//  - patterns are processed in blocks of 64: for pattern block wp the value
//    matrix holds one 64-word row per plan slot, word j of row s being the
//    64 fault lanes of pattern 64*wp + j;
//  - source rows broadcast the good-machine bit of each pattern across all
//    lanes; lanes beyond the batch's live faults are never forced, so they
//    compute the good machine and padding needs no masking;
//  - stuck values are forced by splitting the ranged stripe-kernel sweep at
//    the fault-site slots (ascending slot order == topological order) and
//    blending per-site lane masks in between: out = (out & ~mask) | ones;
//  - detection diffs each primary-output row against the broadcast good bit;
//    detect-flag runs early-exit a batch once every live lane has detected
//    (the decisive advantage over the event engine on dense cones, which
//    must evaluate the whole cone over all pattern words per fault).
//
// The mask bookkeeping of every batch is validated by
// verify::FaultPackChecker under TZ_CHECK. Results are bit-identical to the
// event engine: the same screens (liveness, PO reachability, excitation)
// zero the same rows, and the per-pattern detection predicate is the same
// XOR against the same good machine.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim_backend.hpp"
#include "sim/eval_plan.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"

namespace tz {

class PackedFaultSimEngine final : public FaultSimBackend {
 public:
  PackedFaultSimEngine(const Netlist& nl, const PatternSet& patterns);
  explicit PackedFaultSimEngine(const Netlist& nl);
  explicit PackedFaultSimEngine(std::shared_ptr<FaultSimContext> ctx);

  std::string_view name() const override { return "packed"; }

  bool detects(const Fault& f) override;
  std::vector<bool> simulate(std::span<const Fault> faults) override;
  std::size_t drop_sim(std::span<const Fault> faults,
                       std::vector<bool>& detected) override;
  std::vector<std::vector<std::uint64_t>> detection_matrix(
      std::span<const Fault> faults) override;

  std::size_t num_words() const { return ctx_->words(); }

 private:
  /// 64 patterns per block: each slot row is 64 words, one word of fault
  /// lanes per pattern.
  static constexpr std::size_t kBlock = 64;

  /// Lazily refresh plan/scratch after the shared context's epochs moved.
  void sync_scratch();

  /// True when the event engine would skip this fault entirely (dead node,
  /// no PO path, never excited) — its detection row is all-zero.
  bool screened_out(const Fault& f) const;

  /// Pack the faults at `idx` (lane i = faults[idx[i]]) and simulate all
  /// pattern blocks. Returns the detected-lane word. When `rows` is non-null
  /// every block is processed (no early exit) and per-pattern detection bits
  /// are written to (*rows)[idx[i]]. `dropped` is the caller's drop-flag
  /// snapshot for the TZ_CHECK bijection invariant (empty = not dropping).
  std::uint64_t run_batch(std::span<const Fault> faults,
                          std::span<const std::size_t> idx,
                          std::vector<std::vector<std::uint64_t>>* rows,
                          std::span<const char> dropped);

  /// Shared screen + batch loop behind simulate/drop_sim/detection_matrix:
  /// simulates every fault with `!detected[i]`, setting flags (and matrix
  /// rows when `rows`). Returns the number of newly detected faults.
  std::size_t run_all(std::span<const Fault> faults,
                      std::vector<bool>& detected,
                      std::vector<std::vector<std::uint64_t>>* rows,
                      bool dropping);

  const EvalPlan* plan_ = nullptr;  ///< the packed evaluation plan
  std::uint64_t synced_structure_ = 0;
  std::uint64_t synced_patterns_ = 0;
  std::size_t words_ = 0;        ///< pattern words (ceil(P/64))
  std::size_t num_patterns_ = 0;
  std::uint64_t tail_ = 0;
  std::vector<std::uint64_t> matrix_;  ///< num_slots x kBlock lane words
  // Source/output slot lists with good-machine row pointers (rebuilt per
  // pattern epoch; pointers alias the context's good matrix).
  std::vector<SlotId> source_slots_;
  std::vector<const std::uint64_t*> source_good_;
  std::vector<SlotId> output_slots_;
  std::vector<const std::uint64_t*> output_good_;
  // Per-batch lane/site scratch (see verify::FaultPackBatch).
  std::vector<NodeId> lane_node_;
  std::vector<std::size_t> lane_fault_;
  std::vector<SlotId> site_slot_;
  std::vector<std::uint64_t> site_mask_;
  std::vector<std::uint64_t> site_force_one_;
  std::vector<std::uint64_t> acc_;  ///< per-pattern detect accumulator
  std::vector<char> dropped_scratch_;
};

}  // namespace tz
