// Single stuck-at fault model (the defender's post-fabrication test model,
// paper Sec. III-A: "ATPG stuck-at model").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace tz {

enum class StuckAt : std::uint8_t { Zero = 0, One = 1 };

struct Fault {
  NodeId node = kNoNode;  ///< Faulty net (gate output or primary input).
  StuckAt value = StuckAt::Zero;

  bool operator==(const Fault&) const = default;
};

std::string to_string(const Netlist& nl, const Fault& f);

/// Full single-stuck-at universe: sa0 and sa1 on every primary input and
/// every combinational gate output.
std::vector<Fault> fault_universe(const Netlist& nl);

/// Structural equivalence collapsing: for inverter/buffer chains the input
/// faults dominate the output faults (sa0 at a NOT input == sa1 at its
/// output), so the output faults are dropped. Returns the collapsed list.
std::vector<Fault> collapse_faults(const Netlist& nl,
                                   const std::vector<Fault>& faults);

}  // namespace tz
