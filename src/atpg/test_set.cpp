#include "atpg/test_set.hpp"

#include <algorithm>
#include <cstdint>
#include <random>

#include "atpg/fault_sim_backend.hpp"
#include "prob/signal_prob.hpp"
#include "sim/simulator.hpp"

namespace tz {

DefenderTestSet generate_atpg_tests(const Netlist& nl,
                                    const TestGenOptions& opt) {
  DefenderTestSet ts;
  ts.name = "atpg-stuck-at";
  std::vector<Fault> faults = fault_universe(nl);
  if (opt.collapse) faults = collapse_faults(nl, faults);
  ts.coverage.total_faults = faults.size();

  // One fault-simulation backend serves both phases: the static netlist
  // analyses and the compiled plan are computed once and carried from the
  // bootstrap detection matrix through deterministic-phase dropping.
  const FaultSimMode mode = opt.fault_mode != FaultSimMode::Auto
                                ? opt.fault_mode
                                : fault_sim_mode();
  const auto backend = make_fault_sim_backend(nl, mode);

  // Phase 1: random bootstrap with static compaction — only patterns that
  // contribute a first detection are kept in the shipped TP set, as a
  // production pattern-compaction flow would do.
  const PatternSet bootstrap =
      random_patterns(nl.inputs().size(), opt.random_patterns, opt.seed);
  backend->set_patterns(bootstrap);
  const auto matrix = backend->detection_matrix(faults);
  const std::vector<std::size_t> kept =
      compact_patterns(matrix, bootstrap.num_patterns());
  PatternSet patterns(nl.inputs().size(), kept.size());
  for (std::size_t k = 0; k < kept.size(); ++k) {
    for (std::size_t s = 0; s < nl.inputs().size(); ++s) {
      patterns.set(k, s, bootstrap.get(kept[k], s));
    }
  }
  std::vector<bool> detected(faults.size(), false);
  for (std::size_t f = 0; f < faults.size(); ++f) {
    for (const std::uint64_t w : matrix[f]) {
      if (w) { detected[f] = true; break; }
    }
  }
  std::size_t covered = 0;
  for (const auto d : detected) covered += d ? 1 : 0;

  // Phase 2: PODEM on survivors, dropping newly covered faults as we go and
  // stopping at the defender's coverage target. The shared backend carries
  // the static netlist analyses across candidate patterns (drop_sim only
  // re-simulates still-undetected faults), and one PODEM engine reuses the
  // topological order and implication scratch across target faults —
  // incremental work per pattern instead of a full fault-universe sweep.
  PodemEngine podem_engine(nl);
  std::vector<std::size_t> order(faults.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (opt.fault_order == TestGenOptions::FaultOrder::Shuffled) {
    std::mt19937_64 shuffle_rng(opt.fault_order_seed);
    std::shuffle(order.begin(), order.end(), shuffle_rng);
  } else {
    // Testability-first: sort by descending excitation probability of the
    // fault site (P of the site holding the activation value).
    const SignalProb sp(nl);
    std::vector<double> excitation(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
      excitation[i] = faults[i].value == StuckAt::Zero
                          ? sp.p1(faults[i].node)
                          : 1.0 - sp.p1(faults[i].node);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return excitation[a] > excitation[b];
                     });
  }
  for (std::size_t i : order) {
    if (detected[i]) continue;
    if (static_cast<double>(covered) >=
        opt.coverage_target * static_cast<double>(faults.size())) {
      break;  // coverage goal met
    }
    if (patterns.num_patterns() >= opt.max_patterns) {
      break;  // tester-time budget exhausted
    }
    const PodemResult r = podem_engine.run(faults[i], opt.podem);
    if (r.status == PodemStatus::Untestable) {
      ++ts.untestable;
      continue;
    }
    if (r.status == PodemStatus::Aborted) {
      ++ts.aborted;
      continue;
    }
    PatternSet one(nl.inputs().size(), 1);
    std::mt19937_64 fill_rng(opt.seed ^ (0x9E3779B97F4A7C15ull * (i + 1)));
    for (std::size_t s = 0; s < r.pattern.size(); ++s) {
      // Random-fill the don't-care inputs, as production ATPG does.
      const bool bit = r.assigned[s] ? r.pattern[s] : (fill_rng() & 1);
      one.set(0, s, bit);
    }
    // Drop every remaining fault this new pattern detects.
    backend->set_patterns(one);
    const std::size_t newly = backend->drop_sim(faults, detected);
    covered += newly;
    if (newly > 0) patterns.append_all(one);
  }

  for (bool d : detected) {
    if (d) ++ts.coverage.detected;
  }
  ts.patterns = std::move(patterns);
  ts.golden = BitSimulator(nl).outputs(ts.patterns);
  return ts;
}

DefenderSuite make_defender_suite(const Netlist& nl,
                                  const TestGenOptions& opt) {
  DefenderSuite suite;
  suite.algorithms.push_back(generate_atpg_tests(nl, opt));

  BitSimulator sim(nl);
  if (opt.with_random_validation) {
    DefenderTestSet rnd;
    rnd.name = "random-validation";
    rnd.patterns = random_patterns(nl.inputs().size(),
                                   opt.validation_patterns, opt.seed ^ 0x5EEDu);
    rnd.golden = sim.outputs(rnd.patterns);
    suite.algorithms.push_back(std::move(rnd));
  }
  if (opt.with_walking) {
    DefenderTestSet walk;
    walk.name = "walking-bits";
    walk.patterns = walking_patterns(nl.inputs().size());
    walk.golden = sim.outputs(walk.patterns);
    suite.algorithms.push_back(std::move(walk));
  }
  return suite;
}

bool functional_test(const Netlist& dut, const DefenderTestSet& ts) {
  if (dut.inputs().size() != ts.patterns.num_signals() ||
      dut.outputs().size() != ts.golden.num_signals()) {
    return false;
  }
  if (dut.dffs().empty()) {
    const PatternSet got = BitSimulator(dut).outputs(ts.patterns);
    return BitSimulator::responses_equal(got, ts.golden);
  }
  // Sequential DUT: stream patterns as consecutive clock cycles from reset.
  CycleSimulator cs(dut);
  std::vector<bool> in(dut.inputs().size());
  for (std::size_t p = 0; p < ts.patterns.num_patterns(); ++p) {
    for (std::size_t s = 0; s < in.size(); ++s) {
      in[s] = ts.patterns.get(p, s);
    }
    const std::vector<bool> out = cs.step(in);
    for (std::size_t o = 0; o < out.size(); ++o) {
      if (out[o] != ts.golden.get(p, o)) return false;
    }
  }
  return true;
}

bool functional_test(const Netlist& dut, const DefenderSuite& suite) {
  for (const DefenderTestSet& ts : suite.algorithms) {
    if (!functional_test(dut, ts)) return false;
  }
  return true;
}

}  // namespace tz
