#include "atpg/fault.hpp"

namespace tz {

std::string to_string(const Netlist& nl, const Fault& f) {
  return nl.node(f.node).name +
         (f.value == StuckAt::Zero ? "/sa0" : "/sa1");
}

std::vector<Fault> fault_universe(const Netlist& nl) {
  std::vector<Fault> faults;
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id)) continue;
    const GateType t = nl.node(id).type;
    if (is_const(t) || is_sequential(t)) continue;
    faults.push_back({id, StuckAt::Zero});
    faults.push_back({id, StuckAt::One});
  }
  return faults;
}

std::vector<Fault> collapse_faults(const Netlist& nl,
                                   const std::vector<Fault>& faults) {
  std::vector<Fault> out;
  out.reserve(faults.size());
  for (const Fault& f : faults) {
    const Node& n = nl.node(f.node);
    // NOT/BUF outputs with a single-fanout driver: equivalent to a fault on
    // the driver net; keep only the driver-side fault.
    if ((n.type == GateType::Not || n.type == GateType::Buf) &&
        nl.node(n.fanin[0]).fanout.size() == 1) {
      continue;
    }
    out.push_back(f);
  }
  return out;
}

}  // namespace tz
