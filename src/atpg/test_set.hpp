// Defender test generation and functional verification.
//
// Models the paper's defender: a set of q testing algorithms with their test
// patterns (TPs) and golden responses, generated on the verified HT-free
// circuit. ATPG patterns come from random-pattern bootstrap plus PODEM for
// the remaining faults, with bit-parallel fault-simulation dropping —
// the standard TetraMAX-style flow.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atpg/fault_sim.hpp"
#include "atpg/fault_sim_backend.hpp"
#include "atpg/podem.hpp"
#include "sim/patterns.hpp"

namespace tz {

struct TestGenOptions {
  std::size_t random_patterns = 128;  ///< Bootstrap phase size.
  std::uint64_t seed = 0xA7Cu;
  PodemOptions podem = {};
  bool collapse = true;               ///< Apply fault collapsing first.
  /// Deterministic-phase stop condition. Production test programs trade
  /// coverage against pattern count and tester time; TrojanZero's premise
  /// (an unstated assumption of the paper) is that the defender's set is
  /// high-but-not-complete — with a 100% single-stuck-at set, tying a node
  /// to a constant is behaviourally a covered stuck-at fault and Algorithm 1
  /// can never accept a removal (see the defender-strength ablation bench).
  double coverage_target = 0.95;
  /// Hard cap on the shipped TP count (tester-time budget). The
  /// deterministic phase stops when either the coverage target or this
  /// pattern budget is reached, whichever comes first.
  std::size_t max_patterns = 96;
  /// Deterministic-phase fault ordering. TestabilityFirst (default) models
  /// SCOAP-guided production ATPG: easily-excitable, high-collateral faults
  /// are targeted first, so a coverage/pattern budget is exhausted before
  /// the rarely-excited faults — the precise gap Algorithm 1 exploits.
  /// Shuffled is the defender-strength ablation (uniformly random order).
  enum class FaultOrder { TestabilityFirst, Shuffled } fault_order =
      FaultOrder::TestabilityFirst;
  std::uint64_t fault_order_seed = 7;  ///< Used by FaultOrder::Shuffled.
  /// Fault-simulation backend for both ATPG phases (bootstrap grading and
  /// deterministic-phase dropping). Auto defers to TZ_FAULT_MODE /
  /// set_fault_sim_mode, falling back to the measured per-workload selector.
  FaultSimMode fault_mode = FaultSimMode::Auto;
  // ---- suite composition (the defender's q algorithms) ----
  bool with_random_validation = true;   ///< Bespoke random vectors.
  std::size_t validation_patterns = 128;
  /// Walking one/zero bring-up vectors. Off by default: such patterns pin
  /// whole buses to a constant and systematically excite wide decodes, a
  /// stronger defender than the paper's ATPG + random model assumes (kept
  /// available for the defender-strength ablation).
  bool with_walking = false;
};

/// One defender testing algorithm: patterns plus expected responses.
struct DefenderTestSet {
  std::string name;
  PatternSet patterns;   ///< Over the circuit's primary inputs.
  PatternSet golden;     ///< Expected primary-output responses.
  CoverageReport coverage;
  std::size_t untestable = 0;  ///< Proven-redundant faults.
  std::size_t aborted = 0;     ///< PODEM aborts (counted as undetected).
};

/// Stuck-at ATPG flow (random bootstrap + PODEM + drop-by-simulation).
DefenderTestSet generate_atpg_tests(const Netlist& nl,
                                    const TestGenOptions& opt = {});

/// The defender's full validation suite (the paper's Algo = {T1..Tq}):
/// stuck-at ATPG, pure random vectors, and walking one/zero bring-up.
struct DefenderSuite {
  std::vector<DefenderTestSet> algorithms;
};

DefenderSuite make_defender_suite(const Netlist& nl,
                                  const TestGenOptions& opt = {});

/// Run one test algorithm against a DUT netlist (same PI/PO interface as the
/// golden circuit). Sequential DUTs (inserted HTs carry DFFs) are clocked
/// pattern-by-pattern from reset, exactly as a tester would stream TPs.
bool functional_test(const Netlist& dut, const DefenderTestSet& ts);

/// All algorithms must pass (Algorithm 1 line 17 / Algorithm 2 line 3).
bool functional_test(const Netlist& dut, const DefenderSuite& suite);

}  // namespace tz
