// Campaign artifact layer: build-once, share-everywhere flow inputs.
//
// A campaign is a (circuit × HT descriptor × seed × defender config) sweep —
// thousands of jobs, but only a handful of distinct circuits and a modest
// number of distinct (circuit, defender config, seed) suites. Before this
// layer every job re-ran make_benchmark, re-analyzed power, regenerated the
// ATPG suite and re-simulated it into SuiteOracle's row cache from scratch;
// all of that is a pure function of the job's key, so the ArtifactStore
// memoizes it at two tiers:
//
//  - Circuit tier (keyed by make_benchmark name): the synthesis-clean
//    netlist exactly as make_benchmark emits it (order-sensitive consumers —
//    suite generation, power summation — see the same bytes as a cold run),
//    its compacted twin (id-identical to the work netlist every job's
//    salvage derives), and the one-time golden power/area totals.
//
//  - Suite tier (keyed by circuit + a TestGenOptions fingerprint): the
//    defender suite and a fully built SuiteOracle on the circuit's netlist —
//    the compiled EvalPlan and the fused golden simulation rows. Jobs clone
//    the oracle copy-on-write (SuiteOracle's seeded constructor deep-copies
//    the plan and rows; the shared entry is never mutated).
//
// Thread safety: any number of jobs may call get_circuit / get_suite
// concurrently. The store uses one mutex for the maps plus a per-entry
// build mutex, so two different keys build in parallel while two racing
// requests for the same key build it exactly once. Handed-out references
// stay valid for the life of the store (entries are never evicted; a
// campaign's working set is its distinct keys, which is small by design).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "atpg/test_set.hpp"
#include "core/flow_engine.hpp"
#include "netlist/netlist.hpp"
#include "tech/power_model.hpp"
#include "util/thread_safety.hpp"

namespace tz {

/// Per-circuit shared artifacts (tier 1).
struct CircuitArtifacts {
  std::string name;
  Netlist netlist;    ///< Exactly make_benchmark(name); jobs copy this as N.
  /// netlist.compact() — id-identical to the work netlist each job's
  /// salvage derives, the basis for the shared oracle's caches.
  Netlist compacted;
  PowerReport golden_totals; ///< P/A of N — salvage baseline + caps.
};

/// Per-(circuit, defender) shared artifacts (tier 2).
struct SuiteArtifacts {
  const CircuitArtifacts* circuit = nullptr;
  DefenderSuite suite;
  /// Oracle built on circuit->netlist + suite: compiled plan + golden rows.
  /// Null when the oracle fell back to sequential mode (DFFs / interface
  /// mismatch) — jobs then build their own.
  std::unique_ptr<SuiteOracle> oracle;
  double atpg_coverage = 0.0;  ///< Front algorithm's coverage.
};

/// The immutable artifact bundle one job consumes (const refs into the
/// store). Assembled by ArtifactStore::get_job_inputs; feed `shared` to
/// FlowEngine::set_shared.
struct SharedArtifacts {
  const CircuitArtifacts* circuit = nullptr;
  const SuiteArtifacts* defender = nullptr;
  const PowerModel* pm = nullptr;  ///< The store's shared model.
  FlowSharedInputs shared;  ///< Points into the two entries above.
};

class ArtifactStore {
 public:
  ArtifactStore();

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// The shared power model (one CellLibrary::tsmc65_like() per store).
  const PowerModel& power_model() const { return pm_; }

  /// Tier-1 lookup: builds the circuit entry on first use, returns the
  /// shared entry afterwards. Throws what make_benchmark throws on an
  /// unknown name.
  const CircuitArtifacts& get_circuit(const std::string& name);

  /// Tier-2 lookup: builds (suite + oracle) for this circuit/defender
  /// fingerprint on first use. `opt` must be the job's fully resolved
  /// TestGenOptions (the key is a fingerprint of every generation-relevant
  /// field, so two jobs share iff their suites would be identical).
  const SuiteArtifacts& get_suite(const std::string& circuit,
                                  const TestGenOptions& opt);

  /// Convenience: both tiers + a wired FlowSharedInputs.
  SharedArtifacts get_job_inputs(const std::string& circuit,
                                 const TestGenOptions& testgen);

  /// Number of built entries (observability + tests).
  std::size_t circuit_count() const;
  std::size_t suite_count() const;

 private:
  struct CircuitEntry {
    Mutex build_mu;
    bool built TZ_GUARDED_BY(build_mu) = false;
    CircuitArtifacts art;
  };
  struct SuiteEntry {
    Mutex build_mu;
    bool built TZ_GUARDED_BY(build_mu) = false;
    SuiteArtifacts art;
  };

  PowerModel pm_;
  mutable Mutex mu_;
  /// node-stable maps: references into entries survive later insertions.
  std::map<std::string, std::unique_ptr<CircuitEntry>> circuits_
      TZ_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<SuiteEntry>> suites_
      TZ_GUARDED_BY(mu_);
};

/// Stable fingerprint of every TestGenOptions field that changes the
/// generated suite — the tier-2 cache key and part of the job id.
std::string testgen_fingerprint(const TestGenOptions& opt);

}  // namespace tz
