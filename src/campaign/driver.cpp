#include "campaign/driver.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "gen/iscas.hpp"
#include "util/thread_pool.hpp"
#include "verify/verify.hpp"

namespace tz {

namespace fs = std::filesystem;

// ------------------------------------------------------------ CampaignGrid

std::vector<JobSpec> CampaignGrid::expand() const {
  std::vector<JobSpec> jobs;
  jobs.reserve(circuits.size() * seeds.size() * counter_bits.size() *
               trigger_widths.size() * defenders.size() * pths.size() *
               orders.size());
  // Fixed nesting order — this IS the canonical campaign order.
  for (const std::string& circuit : circuits) {
    for (const std::uint64_t seed : seeds) {
      for (const int cb : counter_bits) {
        for (const int tw : trigger_widths) {
          for (const std::string& def : defenders) {
            for (const double pth : pths) {
              for (const char ord : orders) {
                JobSpec s;
                s.circuit = circuit;
                s.seed = seed;
                s.counter_bits = cb;
                s.trigger_width = tw;
                s.defender = def;
                s.pth = pth;
                s.order = ord;
                s.threads = job_threads;
                jobs.push_back(std::move(s));
              }
            }
          }
        }
      }
    }
  }
  return jobs;
}

Json CampaignGrid::to_json() const {
  Json j = Json(JsonObject{});
  j.set("name", name);
  JsonArray circ;
  for (const std::string& c : circuits) circ.emplace_back(c);
  j.set("circuits", Json(std::move(circ)));
  JsonArray sd;
  for (const std::uint64_t s : seeds) {
    sd.emplace_back(static_cast<std::int64_t>(s));
  }
  j.set("seeds", Json(std::move(sd)));
  JsonArray cb;
  for (const int b : counter_bits) cb.emplace_back(b);
  j.set("counter_bits", Json(std::move(cb)));
  JsonArray tw;
  for (const int w : trigger_widths) tw.emplace_back(w);
  j.set("trigger_widths", Json(std::move(tw)));
  JsonArray def;
  for (const std::string& d : defenders) def.emplace_back(d);
  j.set("defenders", Json(std::move(def)));
  JsonArray pt;
  for (const double p : pths) pt.emplace_back(p);
  j.set("pths", Json(std::move(pt)));
  JsonArray ord;
  for (const char o : orders) ord.emplace_back(std::string(1, o));
  j.set("orders", Json(std::move(ord)));
  j.set("job_threads", job_threads);
  return j;
}

CampaignGrid CampaignGrid::from_json(const Json& j) {
  CampaignGrid g;
  if (const Json* v = j.find("name")) g.name = v->as_string();
  for (const Json& c : j.get("circuits").as_array()) {
    g.circuits.push_back(c.as_string());
  }
  if (const Json* v = j.find("seeds")) {
    g.seeds.clear();
    for (const Json& s : v->as_array()) {
      g.seeds.push_back(static_cast<std::uint64_t>(s.as_int()));
    }
  }
  if (const Json* v = j.find("counter_bits")) {
    g.counter_bits.clear();
    for (const Json& b : v->as_array()) {
      g.counter_bits.push_back(static_cast<int>(b.as_int()));
    }
  }
  if (const Json* v = j.find("trigger_widths")) {
    g.trigger_widths.clear();
    for (const Json& w : v->as_array()) {
      g.trigger_widths.push_back(static_cast<int>(w.as_int()));
    }
  }
  if (const Json* v = j.find("defenders")) {
    g.defenders.clear();
    for (const Json& d : v->as_array()) {
      g.defenders.push_back(d.as_string());
    }
  }
  if (const Json* v = j.find("pths")) {
    g.pths.clear();
    for (const Json& p : v->as_array()) g.pths.push_back(p.as_double());
  }
  if (const Json* v = j.find("orders")) {
    g.orders.clear();
    for (const Json& o : v->as_array()) {
      const std::string& s = o.as_string();
      g.orders.push_back(s.empty() ? 'p' : s[0]);
    }
  }
  if (const Json* v = j.find("job_threads")) {
    g.job_threads = static_cast<std::size_t>(v->as_int());
  }
  if (g.circuits.empty()) {
    throw std::runtime_error("campaign grid: no circuits");
  }
  return g;
}

CampaignGrid CampaignGrid::preset(const std::string& name) {
  CampaignGrid g;
  g.name = name;
  if (name == "table1" || name == "fig7") {
    // The five Table-I circuits with their per-circuit paper defaults
    // (sentinels resolve inside JobSpec) — exactly what the legacy bench
    // drivers iterate.
    for (const BenchmarkSpec& spec : iscas85_specs()) {
      g.circuits.push_back(spec.name);
    }
    return g;
  }
  if (name == "fig3") {
    g.circuits = {"c499"};
    return g;
  }
  if (name == "smoke") {
    // Small + fast: the CI multi-shard campaign (4 circuits x 2 seeds).
    g.circuits = {"c17", "c432", "c499", "c880"};
    g.seeds = {0, 11};
    return g;
  }
  if (name == "campaign1k") {
    // The reproducible >=1k-job artifact: a mult/wallace/aluecc/rand mix
    // (8 circuits x 32 seeds x {2,3} counter bits x {2,4} trigger widths
    // = 1024 jobs). Every (circuit, seed) pair shares one defender suite
    // across its 4 HT-shape jobs — the artifact layer's briefest showcase.
    g.circuits = {"mult6",    "mult8",    "wallace6", "wallace8",
                  "aluecc8x2", "aluecc16x2", "rand1k",  "rand2k"};
    g.seeds.clear();
    for (std::uint64_t s = 1; s <= 32; ++s) g.seeds.push_back(s);
    g.counter_bits = {2, 3};
    g.trigger_widths = {2, 4};
    return g;
  }
  throw std::runtime_error("unknown campaign preset '" + name + "'");
}

// ----------------------------------------------------------------- shards

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::size_t shard_of(const JobSpec& spec, std::size_t shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<std::size_t>(fnv1a64(spec.circuit) % shard_count);
}

std::string shard_file(const std::string& dir, std::size_t index,
                       std::size_t count) {
  return dir + "/shard-" + std::to_string(index) + "-of-" +
         std::to_string(count) + ".jsonl";
}

// ------------------------------------------------------------- checkpoint

namespace {

struct ShardFileContent {
  std::vector<std::string> row_ids;    ///< "" = unparseable row.
  std::vector<std::string> row_texts;  ///< Raw line per parseable row.
  std::size_t good_bytes = 0;  ///< Prefix length covering intact lines.
  bool torn_tail = false;      ///< Last line incomplete/unparseable.
};

/// Parse one shard checkpoint. Every intact row contributes its id; a
/// malformed or truncated final line sets torn_tail (a killed writer can
/// leave at most one partial row — per-row flush keeps the prefix intact).
/// A malformed line in the middle is recorded with the "" sentinel so the
/// checker can indict the file.
ShardFileContent read_shard_file(const std::string& path) {
  ShardFileContent out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const bool complete = nl != std::string::npos;
    const std::string_view line(text.data() + pos,
                                (complete ? nl : text.size()) - pos);
    const std::size_t line_end = complete ? nl + 1 : text.size();
    bool parsed = false;
    std::string id;
    if (!line.empty()) {
      try {
        const Json row = Json::parse(line);
        id = row.get("id").as_string();
        parsed = true;
      } catch (const std::exception&) {
        parsed = false;
      }
    }
    if (parsed && complete) {
      out.row_ids.push_back(id);
      out.row_texts.emplace_back(line);
      out.good_bytes = line_end;
    } else if (!complete || line_end == text.size()) {
      // Trailing partial/garbled line: the torn tail resume truncates.
      out.torn_tail = true;
    } else {
      // Mid-file garbage is not a torn tail — surface it to the checker.
      out.row_ids.emplace_back();
      out.row_texts.emplace_back();
      out.good_bytes = line_end;
    }
    pos = line_end;
  }
  return out;
}

void build_assignment(const std::vector<JobSpec>& jobs,
                      std::size_t shard_count, std::vector<std::string>& ids,
                      std::vector<std::size_t>& assign) {
  ids.reserve(jobs.size());
  assign.reserve(jobs.size());
  for (const JobSpec& j : jobs) {
    ids.push_back(j.id());
    assign.push_back(shard_of(j, shard_count));
  }
}

}  // namespace

// ------------------------------------------------------------------- run

CampaignRunStats run_campaign(const CampaignGrid& grid,
                              const CampaignOptions& opt) {
  if (opt.out_dir.empty()) {
    throw std::runtime_error("run_campaign: out_dir is required");
  }
  if (opt.shard_count == 0 || opt.shard_index >= opt.shard_count) {
    throw std::runtime_error("run_campaign: bad shard " +
                             std::to_string(opt.shard_index) + "/" +
                             std::to_string(opt.shard_count));
  }

  const std::vector<JobSpec> jobs = grid.expand();
  std::vector<std::string> ids;
  std::vector<std::size_t> assign;
  build_assignment(jobs, opt.shard_count, ids, assign);

  CampaignRunStats stats;
  stats.total_jobs = jobs.size();

  if (check_enabled()) {
    // Partition sanity before any work: the same expansion must yield the
    // same assignment in every process of this campaign.
    CampaignView view;
    view.num_shards = opt.shard_count;
    view.job_ids = ids;
    view.job_shard = assign;
    const VerifyReport report = CampaignChecker::run(view);
    if (!report.ok()) {
      throw VerifyError("campaign shard assignment", report);
    }
  }

  fs::create_directories(opt.out_dir);
  const std::string path =
      shard_file(opt.out_dir, opt.shard_index, opt.shard_count);

  // Resume: collect completed ids; drop a torn trailing line so the file
  // ends on a row boundary before we append.
  ShardFileContent existing = read_shard_file(path);
  if (existing.torn_tail) {
    fs::resize_file(path, existing.good_bytes);
  }
  std::unordered_set<std::string> done(existing.row_ids.begin(),
                                       existing.row_ids.end());
  done.erase(std::string());

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (assign[i] != opt.shard_index) continue;
    ++stats.shard_jobs;
    if (done.count(ids[i]) != 0) {
      ++stats.skipped;
      continue;
    }
    pending.push_back(i);
  }
  if (opt.max_jobs != 0 && pending.size() > opt.max_jobs) {
    pending.resize(opt.max_jobs);
  }

  // Open (and thereby create) the checkpoint file even when nothing is
  // pending: circuit-affinity sharding routinely leaves a shard with zero
  // jobs, and the merge requires every shard file to exist.
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    throw std::runtime_error("run_campaign: cannot open " + path);
  }
  if (pending.empty()) return stats;

  ArtifactStore store;
  Mutex io_mu;
  ThreadPool pool(opt.threads);
  pool.parallel_for(
      pending.size(), [&](std::size_t k, std::size_t /*worker*/) {
        const JobSpec& spec = jobs[pending[k]];
        const std::string& id = ids[pending[k]];
        Json row = Json(JsonObject{});
        row.set("id", id);
        row.set("spec", spec.to_json());
        bool failed = false;
        try {
          const FlowResult r = run_flow_job(spec, store);
          row.set("result", flow_result_to_json(r));
        } catch (const std::exception& e) {
          row.set("error", std::string(e.what()));
          failed = true;
        }
        const std::string line = row.dump();
        MutexLock lk(io_mu);
        // Checkpoint durability: one whole row per write, flushed, so an
        // interrupt can tear at most the line being written right now.
        out << line << '\n';
        out.flush();
        failed ? ++stats.failed : ++stats.completed;
        if (opt.verbose) {
          std::cerr << "[shard " << opt.shard_index << "/" << opt.shard_count
                    << "] " << (failed ? "FAIL " : "done ") << id << "\n";
        }
      });
  return stats;
}

// ------------------------------------------------------------------ merge

std::string merge_campaign(const CampaignGrid& grid, const std::string& dir,
                           std::size_t shard_count) {
  const std::vector<JobSpec> jobs = grid.expand();
  std::vector<std::string> ids;
  std::vector<std::size_t> assign;
  build_assignment(jobs, shard_count, ids, assign);

  std::vector<std::vector<std::string>> shard_row_ids(shard_count);
  std::unordered_map<std::string, std::string> row_by_id;
  row_by_id.reserve(jobs.size());
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::string path = shard_file(dir, s, shard_count);
    if (!fs::exists(path)) {
      throw std::runtime_error("merge: missing shard file " + path);
    }
    ShardFileContent content = read_shard_file(path);
    if (content.torn_tail) {
      // A torn tail means that shard's campaign is still incomplete (or was
      // killed); report it as an unparseable row for the checker.
      content.row_ids.emplace_back();
    }
    for (std::size_t r = 0; r < content.row_texts.size(); ++r) {
      if (content.row_ids[r].empty()) continue;
      // Canonicalize: re-parse and zero the volatile wall-time so merged
      // bytes do not depend on how fast this particular run was.
      Json row = Json::parse(content.row_texts[r]);
      if (Json* res = row.find("result")) {
        if (Json* meta = res->find("meta")) {
          if (Json* wall = meta->find("wall_ms")) *wall = Json(0.0);
        }
      }
      row_by_id.emplace(content.row_ids[r], row.dump());
    }
    shard_row_ids[s] = std::move(content.row_ids);
  }

  // Canonical artifact: header + rows in grid-expansion order.
  std::string text;
  Json header = Json(JsonObject{});
  header.set("campaign", grid.to_json());
  header.set("jobs", jobs.size());
  text += header.dump();
  text.push_back('\n');

  std::vector<std::string> merged_ids;
  merged_ids.reserve(jobs.size());
  for (const std::string& id : ids) {
    const auto it = row_by_id.find(id);
    if (it == row_by_id.end()) continue;  // flagged below
    merged_ids.push_back(id);
    text += it->second;
    text.push_back('\n');
  }

  // The merge always enforces the campaign invariants — an artifact with
  // duplicate or missing rows must never be produced silently.
  CampaignView view;
  view.num_shards = shard_count;
  view.job_ids = ids;
  view.job_shard = assign;
  view.shard_rows = shard_row_ids;
  view.merged_ids = merged_ids;
  view.check_merged = true;
  const VerifyReport report = CampaignChecker::run(view);
  if (!report.ok()) {
    throw VerifyError("campaign merge", report);
  }
  return text;
}

void merge_campaign_to_file(const CampaignGrid& grid, const std::string& dir,
                            std::size_t shard_count,
                            const std::string& out_file) {
  const std::string text = merge_campaign(grid, dir, shard_count);
  const std::string tmp = out_file + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("merge: cannot write " + tmp);
    }
    out << text;
  }
  fs::rename(tmp, out_file);
}

// ----------------------------------------------------------------- status

bool campaign_status(const CampaignGrid& grid, const std::string& dir,
                     std::size_t shard_count, std::ostream& os) {
  const std::vector<JobSpec> jobs = grid.expand();
  std::vector<std::string> ids;
  std::vector<std::size_t> assign;
  build_assignment(jobs, shard_count, ids, assign);

  bool all_done = true;
  for (std::size_t s = 0; s < shard_count; ++s) {
    std::size_t expected = 0;
    for (const std::size_t a : assign) expected += a == s ? 1 : 0;
    const std::string path = shard_file(dir, s, shard_count);
    const ShardFileContent content = read_shard_file(path);
    const std::unordered_set<std::string> present(content.row_ids.begin(),
                                                  content.row_ids.end());
    std::size_t done_count = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (assign[i] == s && present.count(ids[i]) != 0) ++done_count;
    }
    os << "shard " << s << "/" << shard_count << ": " << done_count << "/"
       << expected << " jobs"
       << (content.torn_tail ? " (torn tail pending truncation)" : "")
       << "\n";
    if (done_count != expected) all_done = false;
  }
  return all_done;
}

// -------------------------------------------------------------- in-memory

std::vector<FlowResult> run_campaign_in_memory(const CampaignGrid& grid,
                                               std::size_t threads) {
  const std::vector<JobSpec> jobs = grid.expand();
  std::vector<FlowResult> results(jobs.size());
  ArtifactStore store;
  ThreadPool pool(threads);
  pool.parallel_for(jobs.size(), [&](std::size_t i, std::size_t /*worker*/) {
    const FlowResult r = run_flow_job(jobs[i], store);
    // Round-trip through the wire format: the benches print exactly what a
    // merged campaign artifact reproduces.
    results[i] = flow_result_from_json(Json::parse(flow_result_to_json(r).dump()));
  });
  return results;
}

std::vector<CampaignRow> parse_campaign_artifact(std::string_view text) {
  std::vector<CampaignRow> rows;
  std::size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    const Json row = Json::parse(line);
    if (first) {
      first = false;
      if (row.find("campaign") != nullptr) continue;  // header line
    }
    CampaignRow out;
    out.id = row.get("id").as_string();
    out.spec = JobSpec::from_json(row.get("spec"));
    if (const Json* err = row.find("error")) {
      out.error = err->as_string();
    } else {
      out.result = flow_result_from_json(row.get("result"));
    }
    rows.push_back(std::move(out));
  }
  return rows;
}

}  // namespace tz
