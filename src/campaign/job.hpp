// Campaign job layer: one flow run as a pure, serializable unit of work.
//
// A JobSpec is the complete, explicit input of one TrojanZero flow — the
// circuit, the HT shape, the defender configuration, the RNG seed and the
// salvage order. run_flow_job(spec, artifacts) is the pure function the
// scheduler layer (campaign/driver.hpp) fans out: same spec + same artifact
// content => bit-identical FlowResult, at every thread count, shard count
// and TZ_EVAL_PLAN / TZ_FAULT_MODE setting that the engine stack already
// guarantees bit-identity for.
//
// FlowResult rows travel as JSON (flow_result_to_json / _from_json): every
// scalar and record field round-trips; the two Netlist members (original,
// salvage.modified, insertion.infected) are intentionally NOT serialized —
// a deserialized result carries empty netlists plus the FlowMeta stamp, and
// the report printers read only serialized fields, so a row loaded from a
// JSONL checkpoint prints exactly like a freshly computed one.
#pragma once

#include <cstdint>
#include <string>

#include "campaign/artifacts.hpp"
#include "campaign/json.hpp"
#include "core/report.hpp"

namespace tz {

/// Explicit input of one flow job. Zero/negative sentinel fields resolve to
/// the Table-I per-circuit defaults (resolved()); `threads` steers intra-job
/// parallelism and is deliberately NOT part of the identity (id()) — results
/// are bit-identical at every thread count.
struct JobSpec {
  std::string circuit;        ///< make_benchmark name.
  double pth = 0.0;           ///< 0 = Table-I spec (0.992 for unknown names).
  int counter_bits = -1;      ///< -1 = Table-I spec (3 for unknown names).
  int trigger_width = 2;      ///< Rare nets ANDed into the trigger.
  std::uint64_t seed = 0;     ///< Defender testgen seed; 0 = default 0xA7C.
  std::string defender = "atpg";  ///< "atpg" | "atpg+rand" | "full".
  char order = 'p';           ///< 'p' ByProbability | 'l' ByLeakage.
  std::size_t threads = 1;    ///< Intra-job scan threads (0 = TZ_THREADS).

  /// Copy with every sentinel field replaced by its resolved default.
  JobSpec resolved() const;

  /// Canonical job identity: resolved fields, fixed order, to_chars
  /// doubles. The checkpoint/merge key and the shard-assignment input.
  std::string id() const;

  /// The defender suite configuration this spec resolves to (the tier-2
  /// artifact key).
  TestGenOptions testgen() const;

  /// The FlowOptions run_flow_job hands the engine (explicit HT ladder,
  /// resolved thresholds, per-job threads).
  FlowOptions flow_options() const;

  Json to_json() const;       ///< Resolved fields, canonical member order.
  static JobSpec from_json(const Json& j);
};

/// Run one flow job against shared artifacts. Pure: reads `arts` const-only
/// (the oracle seed is deep-copied by the engine), stamps FlowResult::meta
/// (circuit, seed, gate counts, engine modes, wall time) and never touches
/// global state. Bit-identical to the legacy run_trojanzero_flow for the
/// same resolved options.
FlowResult run_flow_job(const JobSpec& spec, const SharedArtifacts& arts);

/// Convenience: resolve the spec's artifacts from `store`, then run.
FlowResult run_flow_job(const JobSpec& spec, ArtifactStore& store);

/// FlowResult wire format. Netlists are not serialized (see file comment);
/// everything else round-trips exactly, including the FlowMeta stamp.
Json flow_result_to_json(const FlowResult& r);
FlowResult flow_result_from_json(const Json& j);

}  // namespace tz
