// Campaign scheduler layer: grid expansion, sharding, checkpointed JSONL
// streaming, resume and canonical merge.
//
// A CampaignGrid is the cross product (circuits × seeds × counter_bits ×
// trigger_widths × defenders × pths × orders), expanded in one fixed
// nesting order — that order IS the canonical campaign order every merged
// artifact uses, independent of which shard or thread computed a row.
//
// Sharding is two-level:
//  - Across processes: job -> shard by FNV-1a(circuit) % shard_count, so a
//    whole circuit (and its shared ArtifactStore entries) lands in one
//    process; `tz_campaign run --shard i/N` runs one shard.
//  - Across threads: within a shard, jobs fan out on the ThreadPool
//    (TZ_THREADS-aware); each job runs with job_threads internal threads
//    (default 1 — parallelism lives at the job level).
//
// Checkpointing: each shard appends one JSONL row per finished job to
// <dir>/shard-<i>-of-<N>.jsonl and flushes per row. On restart the driver
// parses the file, truncates a torn trailing line (a killed process can
// leave at most one partial row), and skips every job already recorded —
// resume-after-interrupt yields the same merged bytes as an uninterrupted
// run, which tests/campaign_test.cpp proves.
//
// Merge: rows are re-emitted in canonical grid order with volatile fields
// (wall_ms) zeroed, prefixed by one header line describing the grid — the
// merged artifact is byte-identical across shard counts {1..N}, thread
// counts and interruptions. CampaignChecker (tz::verify) validates the
// partition / append-consistency / bijection invariants; the driver's run
// path gates its checks under TZ_CHECK, the merge always enforces them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/job.hpp"

namespace tz {

/// Sweep definition: the cross product of every axis. Single-element axes
/// keep the sentinel defaults (resolved per circuit by JobSpec).
struct CampaignGrid {
  std::string name = "custom";  ///< Preset name; recorded in the header.
  std::vector<std::string> circuits;
  std::vector<std::uint64_t> seeds{0};      ///< 0 = default testgen seed.
  std::vector<int> counter_bits{-1};        ///< -1 = Table-I default.
  std::vector<int> trigger_widths{2};
  std::vector<std::string> defenders{"atpg"};
  std::vector<double> pths{0.0};            ///< 0 = Table-I default.
  std::vector<char> orders{'p'};
  std::size_t job_threads = 1;  ///< Intra-job threads for every job.

  /// Canonical expansion: circuits outermost, then seeds, counter_bits,
  /// trigger_widths, defenders, pths, orders. This order is the merge
  /// order.
  std::vector<JobSpec> expand() const;

  Json to_json() const;
  static CampaignGrid from_json(const Json& j);

  /// Built-in grids: "table1" / "fig7" (the five Table-I circuits),
  /// "fig3" (c499), "smoke" (c17+c432, two seeds), "campaign1k" (the
  /// committed >=1k-job mult/wallace/aluecc/rand mix). Throws on unknown
  /// names.
  static CampaignGrid preset(const std::string& name);
};

struct CampaignOptions {
  std::string out_dir;          ///< Checkpoint directory (created).
  std::size_t shard_index = 0;  ///< This process's shard (< shard_count).
  std::size_t shard_count = 1;
  std::size_t threads = 0;      ///< Job-level pool (0 = TZ_THREADS/CPUs).
  std::size_t max_jobs = 0;     ///< Stop after N new jobs (0 = all) — the
                                ///< interrupt hook for resume tests.
  bool verbose = false;         ///< Per-job progress lines on stderr.
};

struct CampaignRunStats {
  std::size_t total_jobs = 0;  ///< Expanded grid size.
  std::size_t shard_jobs = 0;  ///< Jobs assigned to this shard.
  std::size_t skipped = 0;     ///< Already checkpointed on entry.
  std::size_t completed = 0;   ///< Newly run this invocation.
  std::size_t failed = 0;      ///< Rows recorded as errors this invocation.
};

/// FNV-1a 64-bit over bytes — the deterministic shard hash.
std::uint64_t fnv1a64(std::string_view s);

/// Deterministic job->shard assignment: FNV-1a of the circuit name, so all
/// jobs of one circuit share a shard (and its artifact cache).
std::size_t shard_of(const JobSpec& spec, std::size_t shard_count);

/// Shard checkpoint path: <dir>/shard-<i>-of-<N>.jsonl.
std::string shard_file(const std::string& dir, std::size_t index,
                       std::size_t count);

/// Run this process's shard of the campaign: expand, skip checkpointed
/// jobs, fan the rest out on the thread pool, append one JSONL row per job.
/// A job that throws is recorded as an error row (and counted in `failed`)
/// rather than aborting the shard.
CampaignRunStats run_campaign(const CampaignGrid& grid,
                              const CampaignOptions& opt);

/// Merge all shard files into the canonical artifact text (header line +
/// one row per job in expansion order, wall_ms zeroed). Enforces the
/// CampaignChecker invariants (throws VerifyError on violation) and throws
/// std::runtime_error when a shard file is missing entirely.
std::string merge_campaign(const CampaignGrid& grid, const std::string& dir,
                           std::size_t shard_count);

/// merge_campaign + atomic write (temp file + rename) to `out_file`.
void merge_campaign_to_file(const CampaignGrid& grid, const std::string& dir,
                            std::size_t shard_count,
                            const std::string& out_file);

/// Per-shard completion summary ("shard 0/4: 12/31 jobs") to `os`; returns
/// true when every job of every shard is checkpointed.
bool campaign_status(const CampaignGrid& grid, const std::string& dir,
                     std::size_t shard_count, std::ostream& os);

/// In-memory campaign for the bench front-ends: run every job single-
/// process on `threads`, round-trip each result through the JSON wire
/// format (so the benches print what a merged artifact would reproduce),
/// and return the results in canonical grid order.
std::vector<FlowResult> run_campaign_in_memory(const CampaignGrid& grid,
                                               std::size_t threads = 0);

/// Parse a merged campaign artifact back into (spec, result) rows in
/// artifact order. Error rows come back with a default FlowResult and the
/// message in `error`.
struct CampaignRow {
  std::string id;
  JobSpec spec;
  FlowResult result;
  std::string error;  ///< Non-empty when the job failed.
};
std::vector<CampaignRow> parse_campaign_artifact(std::string_view text);

}  // namespace tz
