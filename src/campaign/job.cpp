#include "campaign/job.hpp"

#include <charconv>
#include <chrono>
#include <iostream>
#include <optional>

#include "atpg/fault_sim_backend.hpp"
#include "core/flow_engine.hpp"
#include "core/ht_library.hpp"
#include "core/trigger_prob.hpp"
#include "gen/iscas.hpp"
#include "sim/eval_plan.hpp"
#include "util/thread_pool.hpp"
#include "verify/verify.hpp"

namespace tz {

namespace {

const BenchmarkSpec* try_spec(const std::string& name) {
  for (const BenchmarkSpec& s : iscas85_specs()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

/// Flow-boundary diagnostics: name the corrupted invariant on stderr before
/// the VerifyError unwinds, so a broken structure surfaces at the mutation
/// that caused it instead of as a bit-mismatch deep inside an engine.
[[noreturn]] void report_and_rethrow(const VerifyError& e) {
  std::cerr << "trojanzero: invariant check failed at " << e.phase() << ":\n"
            << e.report().format();
  throw;
}

/// The complete flow (Fig. 2) over either cold inputs (arts == nullptr:
/// build netlist, suite and power model in place — the legacy
/// run_trojanzero_flow behaviour) or a shared artifact bundle. Results are
/// bit-identical between the two paths: the artifacts cache pure functions
/// of the same inputs, and the oracle-seed clone carries the exact rows a
/// fresh build would recompute.
FlowResult run_flow_common(const std::string& benchmark_name,
                           const FlowOptions& options,
                           const SharedArtifacts* arts) {
  const auto t0 = std::chrono::steady_clock::now();
  FlowResult r;
  r.benchmark = benchmark_name;

  std::optional<PowerModel> own_pm;
  const PowerModel* pm = nullptr;
  if (arts != nullptr) {
    r.original = arts->circuit->netlist;
    pm = arts->pm;
  } else {
    r.original = make_benchmark(benchmark_name);
    own_pm.emplace(CellLibrary::tsmc65_like());
    pm = &*own_pm;
  }
  if (check_enabled()) {
    // Gate the flow on a clean input: a generator/parser defect is reported
    // here, not attributed to the first salvage commit downstream.
    verify_or_throw(r.original, nullptr, "flow input");
  }

  // Phase (a): defender test patterns + HT-free thresholds.
  if (arts != nullptr) {
    r.suite = arts->defender->suite;
    r.atpg_coverage = arts->defender->atpg_coverage;
    r.p_n = arts->circuit->golden_totals;
  } else {
    r.suite = make_defender_suite(r.original, options.testgen);
    r.atpg_coverage = r.suite.algorithms.front().coverage.coverage();
    r.p_n = pm->analyze(r.original).totals;
  }

  FlowEngine engine(r.original, r.suite, *pm);
  if (arts != nullptr) engine.set_shared(&arts->shared);

  // Phase (b): Algorithm 1.
  SalvageOptions sopt;
  sopt.pth = options.pth;
  sopt.order = options.order;
  sopt.threads = options.threads;
  try {
    r.salvage = engine.salvage(sopt);
  } catch (const VerifyError& e) {
    report_and_rethrow(e);
  }
  r.p_np = r.salvage.power_after;

  // Phase (c): Algorithm 2. The library starts with the Table I counter for
  // this circuit and falls back to smaller HTs when the salvaged budget
  // cannot fund it (Algorithm 2 line 16: "selecting another HT").
  InsertionOptions iopt = options.insertion;
  if (iopt.library.empty()) {
    for (int bits = options.counter_bits; bits >= 2; --bits) {
      iopt.library.push_back(counter_trojan(bits));
    }
    iopt.library.push_back(counter_trojan(0));  // comparator trigger
  }
  if (iopt.threads == 0) iopt.threads = options.threads;
  try {
    r.insertion = engine.insert(r.salvage, iopt);
  } catch (const VerifyError& e) {
    report_and_rethrow(e);
  }
  r.p_npp = r.insertion.power;

  // Pft over the defender's total pattern count — only when an HT was
  // actually placed; a failed insertion reports zero exposure instead of a
  // row fabricated from a default-constructed descriptor.
  if (r.insertion.success) {
    std::size_t test_len = 0;
    for (const DefenderTestSet& ts : r.suite.algorithms) {
      test_len += ts.patterns.num_patterns();
    }
    r.pft = analytic_pft(r.insertion.trigger_p1, test_len, 0);
    r.pft_payload = analytic_pft(r.insertion.trigger_p1, test_len,
                                 r.insertion.ht_desc.counter_bits);
  }

  // Self-describing stamp: what ran and with which engine modes. These are
  // the fields the wire format keeps; printers read nothing else.
  r.meta.circuit = benchmark_name;
  r.meta.seed = options.testgen.seed;
  r.meta.gates = r.original.gate_count();
  r.meta.inputs = r.original.inputs().size();
  r.meta.outputs = r.original.outputs().size();
  for (const DefenderTestSet& ts : r.suite.algorithms) {
    r.meta.suite_patterns.push_back(ts.patterns.num_patterns());
  }
  r.meta.eval_plan = eval_plan_enabled();
  r.meta.fault_mode = std::string(to_string(fault_sim_mode()));
  r.meta.threads = resolve_threads(options.threads);
  r.meta.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

}  // namespace

// ------------------------------------------------------------------ JobSpec

JobSpec JobSpec::resolved() const {
  JobSpec out = *this;
  if (out.pth <= 0.0 || out.counter_bits < 0) {
    const BenchmarkSpec* spec = try_spec(circuit);
    if (out.pth <= 0.0) {
      out.pth = spec != nullptr ? spec->pth : (circuit == "c17" ? 0.9 : 0.992);
    }
    if (out.counter_bits < 0) {
      out.counter_bits =
          spec != nullptr ? spec->counter_bits : (circuit == "c17" ? 2 : 3);
    }
  }
  if (out.seed == 0) out.seed = TestGenOptions{}.seed;
  if (out.trigger_width <= 0) out.trigger_width = 2;
  if (out.order != 'l') out.order = 'p';
  return out;
}

std::string JobSpec::id() const {
  const JobSpec r = resolved();
  std::string id;
  id.reserve(64);
  id += r.circuit;
  id += "|pth=";
  append_double(id, r.pth);
  id += "|cb=" + std::to_string(r.counter_bits);
  id += "|tw=" + std::to_string(r.trigger_width);
  id += "|seed=" + std::to_string(r.seed);
  id += "|def=" + r.defender;
  id += "|ord=";
  id.push_back(r.order);
  return id;
}

TestGenOptions JobSpec::testgen() const {
  const JobSpec r = resolved();
  TestGenOptions t;
  if (r.defender == "atpg") {
    t = FlowOptions::atpg_only_defender();
  } else if (r.defender == "atpg+rand") {
    t.with_random_validation = true;
    t.with_walking = false;
  } else if (r.defender == "full") {
    t.with_random_validation = true;
    t.with_walking = true;
  } else {
    throw std::runtime_error("JobSpec: unknown defender config '" +
                             r.defender + "'");
  }
  t.seed = r.seed;
  return t;
}

FlowOptions JobSpec::flow_options() const {
  const JobSpec r = resolved();
  FlowOptions opt;
  opt.pth = r.pth;
  opt.counter_bits = r.counter_bits;
  opt.testgen = testgen();
  opt.order = r.order == 'l' ? SalvageOptions::Order::ByLeakage
                             : SalvageOptions::Order::ByProbability;
  opt.threads = r.threads;
  // Explicit HT ladder with this spec's trigger width; trigger_width 2
  // matches the legacy counter_trojan(bits) default exactly.
  for (int bits = r.counter_bits; bits >= 2; --bits) {
    opt.insertion.library.push_back(counter_trojan(bits, r.trigger_width));
  }
  opt.insertion.library.push_back(counter_trojan(0, r.trigger_width));
  opt.insertion.threads = r.threads;
  return opt;
}

Json JobSpec::to_json() const {
  const JobSpec r = resolved();
  Json j = Json(JsonObject{});
  j.set("circuit", r.circuit);
  j.set("pth", r.pth);
  j.set("counter_bits", r.counter_bits);
  j.set("trigger_width", r.trigger_width);
  j.set("seed", static_cast<std::int64_t>(r.seed));
  j.set("defender", r.defender);
  j.set("order", std::string(1, r.order));
  return j;
}

JobSpec JobSpec::from_json(const Json& j) {
  JobSpec s;
  s.circuit = j.get("circuit").as_string();
  s.pth = j.get("pth").as_double();
  s.counter_bits = static_cast<int>(j.get("counter_bits").as_int());
  s.trigger_width = static_cast<int>(j.get("trigger_width").as_int());
  s.seed = static_cast<std::uint64_t>(j.get("seed").as_int());
  s.defender = j.get("defender").as_string();
  const std::string& ord = j.get("order").as_string();
  s.order = ord.empty() ? 'p' : ord[0];
  return s;
}

// ------------------------------------------------------------ run_flow_job

FlowResult run_flow_job(const JobSpec& spec, const SharedArtifacts& arts) {
  const JobSpec r = spec.resolved();
  return run_flow_common(r.circuit, r.flow_options(), &arts);
}

FlowResult run_flow_job(const JobSpec& spec, ArtifactStore& store) {
  const JobSpec r = spec.resolved();
  const SharedArtifacts arts = store.get_job_inputs(r.circuit, r.testgen());
  return run_flow_common(r.circuit, r.flow_options(), &arts);
}

// ---------------------------------------------------- legacy entry points

FlowResult run_trojanzero_flow(const std::string& benchmark_name,
                               FlowOptions options) {
  return run_flow_common(benchmark_name, options, nullptr);
}

FlowResult run_trojanzero_flow(const std::string& benchmark_name) {
  FlowOptions opt;
  if (benchmark_name != "c17") {
    const BenchmarkSpec& spec = spec_for(benchmark_name);
    opt.pth = spec.pth;
    opt.counter_bits = spec.counter_bits;
  } else {
    opt.pth = 0.9;
    opt.counter_bits = 2;
  }
  return run_trojanzero_flow(benchmark_name, opt);
}

// ------------------------------------------------------- FlowResult wire

namespace {

Json power_to_json(const PowerReport& p) {
  Json j = Json(JsonObject{});
  j.set("dynamic_uw", p.dynamic_uw);
  j.set("leakage_uw", p.leakage_uw);
  j.set("area_ge", p.area_ge);
  return j;
}

PowerReport power_from_json(const Json& j) {
  PowerReport p;
  p.dynamic_uw = j.get("dynamic_uw").as_double();
  p.leakage_uw = j.get("leakage_uw").as_double();
  p.area_ge = j.get("area_ge").as_double();
  return p;
}

}  // namespace

Json flow_result_to_json(const FlowResult& r) {
  Json j = Json(JsonObject{});
  j.set("benchmark", r.benchmark);

  Json meta = Json(JsonObject{});
  meta.set("circuit", r.meta.circuit);
  meta.set("seed", static_cast<std::int64_t>(r.meta.seed));
  meta.set("gates", r.meta.gates);
  meta.set("inputs", r.meta.inputs);
  meta.set("outputs", r.meta.outputs);
  JsonArray pats;
  for (const std::size_t p : r.meta.suite_patterns) pats.emplace_back(p);
  meta.set("suite_patterns", Json(std::move(pats)));
  meta.set("eval_plan", r.meta.eval_plan);
  meta.set("fault_mode", r.meta.fault_mode);
  meta.set("threads", r.meta.threads);
  meta.set("wall_ms", r.meta.wall_ms);
  j.set("meta", std::move(meta));

  Json sal = Json(JsonObject{});
  sal.set("candidates", r.salvage.candidates);
  JsonArray acc;
  for (const SalvageRecord& a : r.salvage.accepted) {
    Json rec = Json(JsonObject{});
    rec.set("node", a.node_name);
    rec.set("tie", a.tie_value);
    rec.set("p", a.probability);
    rec.set("removed", a.gates_removed);
    acc.push_back(std::move(rec));
  }
  sal.set("accepted", Json(std::move(acc)));
  sal.set("rejected", r.salvage.rejected);
  sal.set("expendable", r.salvage.expendable_gates);
  sal.set("power_before", power_to_json(r.salvage.power_before));
  sal.set("power_after", power_to_json(r.salvage.power_after));
  j.set("salvage", std::move(sal));

  Json ins = Json(JsonObject{});
  ins.set("success", r.insertion.success);
  Json desc = Json(JsonObject{});
  desc.set("name", r.insertion.ht_desc.name);
  desc.set("counter_bits", r.insertion.ht_desc.counter_bits);
  desc.set("trigger_width", r.insertion.ht_desc.trigger_width);
  ins.set("ht", std::move(desc));
  ins.set("ht_name", r.insertion.ht_name);
  ins.set("victim", r.insertion.victim_name);
  ins.set("tried_hts", r.insertion.tried_hts);
  ins.set("tried_locations", r.insertion.tried_locations);
  ins.set("fail_build", r.insertion.fail_build);
  ins.set("fail_test", r.insertion.fail_test);
  ins.set("fail_caps", r.insertion.fail_caps);
  ins.set("dummy_gates", r.insertion.dummy_gates);
  ins.set("power", power_to_json(r.insertion.power));
  ins.set("threshold", power_to_json(r.insertion.threshold));
  ins.set("trigger_p1", r.insertion.trigger_p1);
  j.set("insertion", std::move(ins));

  j.set("p_n", power_to_json(r.p_n));
  j.set("p_np", power_to_json(r.p_np));
  j.set("p_npp", power_to_json(r.p_npp));
  j.set("pft_payload", r.pft_payload);
  j.set("pft", r.pft);
  j.set("atpg_coverage", r.atpg_coverage);
  return j;
}

FlowResult flow_result_from_json(const Json& j) {
  FlowResult r;
  r.benchmark = j.get("benchmark").as_string();

  const Json& meta = j.get("meta");
  r.meta.circuit = meta.get("circuit").as_string();
  r.meta.seed = static_cast<std::uint64_t>(meta.get("seed").as_int());
  r.meta.gates = static_cast<std::size_t>(meta.get("gates").as_int());
  r.meta.inputs = static_cast<std::size_t>(meta.get("inputs").as_int());
  r.meta.outputs = static_cast<std::size_t>(meta.get("outputs").as_int());
  for (const Json& p : meta.get("suite_patterns").as_array()) {
    r.meta.suite_patterns.push_back(static_cast<std::size_t>(p.as_int()));
  }
  r.meta.eval_plan = meta.get("eval_plan").as_bool();
  r.meta.fault_mode = meta.get("fault_mode").as_string();
  r.meta.threads = static_cast<std::size_t>(meta.get("threads").as_int());
  r.meta.wall_ms = meta.get("wall_ms").as_double();

  const Json& sal = j.get("salvage");
  r.salvage.candidates =
      static_cast<std::size_t>(sal.get("candidates").as_int());
  for (const Json& a : sal.get("accepted").as_array()) {
    SalvageRecord rec;
    rec.node_name = a.get("node").as_string();
    rec.tie_value = a.get("tie").as_bool();
    rec.probability = a.get("p").as_double();
    rec.gates_removed = static_cast<std::size_t>(a.get("removed").as_int());
    r.salvage.accepted.push_back(std::move(rec));
  }
  r.salvage.rejected = static_cast<std::size_t>(sal.get("rejected").as_int());
  r.salvage.expendable_gates =
      static_cast<std::size_t>(sal.get("expendable").as_int());
  r.salvage.power_before = power_from_json(sal.get("power_before"));
  r.salvage.power_after = power_from_json(sal.get("power_after"));

  const Json& ins = j.get("insertion");
  r.insertion.success = ins.get("success").as_bool();
  const Json& desc = ins.get("ht");
  r.insertion.ht_desc.name = desc.get("name").as_string();
  r.insertion.ht_desc.counter_bits =
      static_cast<int>(desc.get("counter_bits").as_int());
  r.insertion.ht_desc.trigger_width =
      static_cast<int>(desc.get("trigger_width").as_int());
  r.insertion.ht_name = ins.get("ht_name").as_string();
  r.insertion.victim_name = ins.get("victim").as_string();
  r.insertion.tried_hts = static_cast<int>(ins.get("tried_hts").as_int());
  r.insertion.tried_locations =
      static_cast<int>(ins.get("tried_locations").as_int());
  r.insertion.fail_build = static_cast<int>(ins.get("fail_build").as_int());
  r.insertion.fail_test = static_cast<int>(ins.get("fail_test").as_int());
  r.insertion.fail_caps = static_cast<int>(ins.get("fail_caps").as_int());
  r.insertion.dummy_gates =
      static_cast<std::size_t>(ins.get("dummy_gates").as_int());
  r.insertion.power = power_from_json(ins.get("power"));
  r.insertion.threshold = power_from_json(ins.get("threshold"));
  r.insertion.trigger_p1 = ins.get("trigger_p1").as_double();

  r.p_n = power_from_json(j.get("p_n"));
  r.p_np = power_from_json(j.get("p_np"));
  r.p_npp = power_from_json(j.get("p_npp"));
  r.pft_payload = j.get("pft_payload").as_double();
  r.pft = j.get("pft").as_double();
  r.atpg_coverage = j.get("atpg_coverage").as_double();
  return r;
}

}  // namespace tz
