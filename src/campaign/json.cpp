#include "campaign/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <system_error>

namespace tz {

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  throw std::runtime_error(std::string("json: expected ") + want +
                           ", got type " +
                           std::to_string(static_cast<int>(got)));
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::Bool) type_error("bool", type_);
  return bool_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::Int) type_error("int", type_);
  return int_;
}

double Json::as_double() const {
  if (type_ == Type::Int) return static_cast<double>(int_);
  if (type_ != Type::Double) type_error("number", type_);
  return dbl_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) type_error("string", type_);
  return str_;
}

const JsonArray& Json::as_array() const {
  if (type_ != Type::Array) type_error("array", type_);
  return arr_;
}

const JsonObject& Json::as_object() const {
  if (type_ != Type::Object) type_error("object", type_);
  return obj_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::Object) type_error("object", type_);
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json* Json::find(std::string_view key) {
  return const_cast<Json*>(static_cast<const Json*>(this)->find(key));
}

const Json& Json::get(std::string_view key) const {
  if (const Json* v = find(key)) return *v;
  throw std::runtime_error("json: missing key '" + std::string(key) + "'");
}

void Json::set(std::string key, Json value) {
  if (type_ == Type::Null) type_ = Type::Object;
  if (type_ != Type::Object) type_error("object", type_);
  obj_.emplace_back(std::move(key), std::move(value));
}

// ------------------------------------------------------------------- dump

void json_escape_to(std::string_view s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void json_number_to(double v, std::string& out) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::Null:
      out += "null";
      return;
    case Type::Bool:
      out += bool_ ? "true" : "false";
      return;
    case Type::Int: {
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof buf, int_);
      out.append(buf, res.ptr);
      return;
    }
    case Type::Double:
      json_number_to(dbl_, out);
      return;
    case Type::String:
      json_escape_to(str_, out);
      return;
    case Type::Array: {
      out.push_back('[');
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) out.push_back(',');
        first = false;
        v.dump_to(out);
      }
      out.push_back(']');
      return;
    }
    case Type::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        json_escape_to(k, out);
        out.push_back(':');
        v.dump_to(out);
      }
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  out.reserve(64);
  dump_to(out);
  return out;
}

// ------------------------------------------------------------------ parse

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return Json(std::move(obj));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return Json(std::move(arr));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Campaign payloads only ever escape control bytes; emit the code
          // point as UTF-8 (surrogate pairs unsupported by design).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty()) fail("expected a value");
    const bool integral =
        tok.find('.') == std::string_view::npos &&
        tok.find('e') == std::string_view::npos &&
        tok.find('E') == std::string_view::npos;
    if (integral) {
      std::int64_t v = 0;
      const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) {
        return Json(v);
      }
      // fall through: out-of-range integer parses as a double
    }
    double d = 0.0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size()) {
      fail("malformed number");
    }
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace tz
