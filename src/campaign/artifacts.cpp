#include "campaign/artifacts.hpp"

#include <charconv>

#include "gen/iscas.hpp"

namespace tz {

namespace {

void append_number(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

}  // namespace

std::string testgen_fingerprint(const TestGenOptions& opt) {
  // Every field that changes generate_atpg_tests / make_defender_suite
  // output, in a fixed order. Compact key=value text — readable in a job id
  // and stable across runs (to_chars for the one double).
  std::string fp;
  fp += "rp=" + std::to_string(opt.random_patterns);
  fp += ",seed=" + std::to_string(opt.seed);
  fp += ",bt=" + std::to_string(opt.podem.backtrack_limit);
  fp += ",col=" + std::string(opt.collapse ? "1" : "0");
  fp += ",cov=";
  append_number(fp, opt.coverage_target);
  fp += ",mp=" + std::to_string(opt.max_patterns);
  fp += ",ord=";
  fp += opt.fault_order == TestGenOptions::FaultOrder::Shuffled ? "s" : "t";
  fp += ",os=" + std::to_string(opt.fault_order_seed);
  fp += ",rv=" + std::string(opt.with_random_validation ? "1" : "0");
  fp += ",vp=" + std::to_string(opt.validation_patterns);
  fp += ",wk=" + std::string(opt.with_walking ? "1" : "0");
  return fp;
}

ArtifactStore::ArtifactStore() : pm_(CellLibrary::tsmc65_like()) {}

const CircuitArtifacts& ArtifactStore::get_circuit(const std::string& name) {
  CircuitEntry* entry = nullptr;
  {
    MutexLock lk(mu_);
    std::unique_ptr<CircuitEntry>& slot = circuits_[name];
    if (!slot) slot = std::make_unique<CircuitEntry>();
    entry = slot.get();
  }
  MutexLock build(entry->build_mu);
  if (!entry->built) {
    CircuitArtifacts& art = entry->art;
    art.name = name;
    // The shared netlist must be byte-for-byte what the legacy cold path
    // uses (suite generation and power analysis are order-sensitive), so it
    // is NOT compacted here. The compacted twin mirrors exactly what every
    // job's salvage derives via `original_->compact()` — compact() is
    // deterministic, so the oracle seed built on it is id-identical to the
    // job's work netlist.
    art.netlist = make_benchmark(name);
    art.compacted = art.netlist.compact();
    art.golden_totals = pm_.analyze(art.netlist).totals;
    entry->built = true;
  }
  return entry->art;
}

const SuiteArtifacts& ArtifactStore::get_suite(const std::string& circuit,
                                               const TestGenOptions& opt) {
  // Resolve tier 1 first (outside this entry's build lock: circuit and
  // suite entries use different mutexes, and get_circuit is idempotent).
  const CircuitArtifacts& cart = get_circuit(circuit);

  const std::string key = circuit + "|" + testgen_fingerprint(opt);
  SuiteEntry* entry = nullptr;
  {
    MutexLock lk(mu_);
    std::unique_ptr<SuiteEntry>& slot = suites_[key];
    if (!slot) slot = std::make_unique<SuiteEntry>();
    entry = slot.get();
  }
  MutexLock build(entry->build_mu);
  if (!entry->built) {
    SuiteArtifacts& art = entry->art;
    art.circuit = &cart;
    art.suite = make_defender_suite(cart.netlist, opt);
    if (!art.suite.algorithms.empty()) {
      art.atpg_coverage = art.suite.algorithms.front().coverage.coverage();
    }
    // The shared oracle: compiled plan + fused golden rows, built once, on
    // the compacted twin so its slot-major caches line up node-for-node
    // with the `original_->compact()` every job's salvage performs.
    // Sequential circuits (DFFs) get no oracle — the flow's functional_test
    // fallback has nothing to share.
    auto oracle = std::make_unique<SuiteOracle>(cart.compacted, art.suite);
    if (!oracle->sequential()) art.oracle = std::move(oracle);
    entry->built = true;
  }
  return entry->art;
}

SharedArtifacts ArtifactStore::get_job_inputs(const std::string& circuit,
                                              const TestGenOptions& testgen) {
  SharedArtifacts out;
  const SuiteArtifacts& suite = get_suite(circuit, testgen);
  out.circuit = suite.circuit;
  out.defender = &suite;
  out.pm = &pm_;
  out.shared.salvage_oracle = suite.oracle.get();
  out.shared.golden_totals = &suite.circuit->golden_totals;
  return out;
}

std::size_t ArtifactStore::circuit_count() const {
  MutexLock lk(mu_);
  return circuits_.size();
}

std::size_t ArtifactStore::suite_count() const {
  MutexLock lk(mu_);
  return suites_.size();
}

}  // namespace tz
