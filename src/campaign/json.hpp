// Minimal deterministic JSON value, parser and serializer for the campaign
// wire format (src/campaign/).
//
// The campaign engine needs a durable, diffable result format: per-shard
// JSONL checkpoint files and a canonically-ordered merged artifact whose
// bytes are identical regardless of shard count or thread count. That byte
// contract rules out any serializer with unspecified member order or
// locale-dependent number formatting, and the no-new-dependencies rule rules
// out vendoring one — so this is a deliberately small, deterministic JSON:
//
//  - Objects are insertion-ordered vectors of (key, value) pairs; dump()
//    emits members exactly in insertion order. parse() preserves input
//    order, so parse→dump round-trips byte-identically for the documents we
//    produce.
//  - Numbers are either Int64 (emitted as decimal integers) or Double
//    (emitted via std::to_chars shortest round-trip, locale-independent;
//    from_chars parses them back exactly).
//  - Strings escape the two mandatory characters plus control bytes; no
//    \uXXXX generation for non-ASCII (payloads are ASCII identifiers).
//
// This is not a general-purpose JSON library: no comments, no trailing
// commas, UTF-16 surrogate escapes are passed through as raw \u text. It is
// exactly what the campaign layer's own writers emit.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace tz {

class Json;

/// Insertion-ordered object representation: dump order == append order.
using JsonObject = std::vector<std::pair<std::string, Json>>;
using JsonArray = std::vector<Json>;

class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  /// One constrained template covers every integer width (int, unsigned,
  /// int64_t, size_t, ...) without the overload ambiguities fixed-width
  /// constructors hit across platforms. bool has its own overload above.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  Json(T v) : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
  Json(double v) : type_(Type::Double), dbl_(v) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::String), str_(s) {}
  Json(JsonArray a) : type_(Type::Array), arr_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::Object), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_object() const { return type_ == Type::Object; }
  bool is_array() const { return type_ == Type::Array; }

  /// Typed accessors; throw std::runtime_error on a type mismatch so a
  /// malformed checkpoint row fails loudly instead of decaying to zeros.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;  ///< Accepts Int too (JSON has one number type).
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member lookup; throws when absent (get) or returns nullptr
  /// (find). The mutable overload is how writers patch a parsed row in
  /// place (e.g. the merge normalizing wall_ms) without disturbing member
  /// order.
  const Json& get(std::string_view key) const;
  const Json* find(std::string_view key) const;
  Json* find(std::string_view key);

  /// Object append (creates/overwrites nothing — campaign writers never
  /// write a key twice; duplicate appends would serialize both).
  void set(std::string key, Json value);

  /// Deterministic serialization: insertion-ordered members, to_chars
  /// numbers, no whitespace.
  std::string dump() const;
  void dump_to(std::string& out) const;

  /// Strict recursive-descent parse of one JSON document; throws
  /// std::runtime_error with a byte offset on malformed input.
  static Json parse(std::string_view text);

 private:
  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

/// Escape + quote one JSON string (the dump() primitive, exposed for
/// streaming writers that emit rows without building a Json tree).
void json_escape_to(std::string_view s, std::string& out);

/// Deterministic double formatting: std::to_chars shortest round-trip, with
/// non-finite values mapped to null (JSON has no Inf/NaN).
void json_number_to(double v, std::string& out);

}  // namespace tz
