// Synthetic standard-cell library (65nm class).
//
// Substitutes for the TSMC 65nm library + Synopsys Design Compiler reports
// used in the paper. Each gate type has area (in NAND2 gate equivalents),
// per-input pin capacitance, internal switching energy and leakage, with
// linear scaling in fanin beyond two inputs — the usual shape of standard-
// cell datasheets. Absolute values are calibrated so that HT-free ISCAS85-
// class circuits land in the paper's µW / GE ranges (Table I).
#pragma once

#include <array>
#include <string>

#include "netlist/netlist.hpp"

namespace tz {

struct CellSpec {
  double area_ge = 1.0;         ///< Area of the 2-input (or only) variant.
  double area_per_extra = 0.5;  ///< Additional GE per input beyond two.
  double input_cap_ff = 1.5;    ///< Capacitance per input pin (fF).
  double internal_energy_fj = 2.0;  ///< Energy per output toggle (fJ).
  double leakage_nw = 15.0;     ///< Leakage of the 2-input variant (nW).
  double leakage_per_extra = 6.0;   ///< Extra leakage per input (nW).
};

class CellLibrary {
 public:
  /// The default 65nm-class library used throughout the reproduction.
  static CellLibrary tsmc65_like();

  const std::string& name() const { return name_; }
  double vdd() const { return vdd_; }
  double clock_hz() const { return clock_hz_; }
  double wire_cap_ff() const { return wire_cap_ff_; }
  /// Clock-pin energy charged to every DFF each cycle (fJ).
  double dff_clock_energy_fj() const { return dff_clock_energy_fj_; }

  const CellSpec& spec(GateType t) const {
    return specs_[static_cast<std::size_t>(t)];
  }
  CellSpec& spec(GateType t) { return specs_[static_cast<std::size_t>(t)]; }

  /// Arity-aware area of a node in gate equivalents.
  double area_ge(const Node& n) const;

  /// Arity-aware leakage of a node in nanowatts.
  double leakage_nw(const Node& n) const;

  /// Input pin capacitance a reader presents on one of its fanin nets (fF).
  double pin_cap_ff(const Node& reader) const {
    return spec(reader.type).input_cap_ff;
  }

  /// Energy dissipated inside the cell per output toggle (fJ).
  double internal_energy_fj(const Node& n) const {
    return spec(n.type).internal_energy_fj;
  }

  void set_name(std::string n) { name_ = std::move(n); }
  void set_vdd(double v) { vdd_ = v; }
  void set_clock_hz(double f) { clock_hz_ = f; }
  void set_wire_cap_ff(double c) { wire_cap_ff_ = c; }
  void set_dff_clock_energy_fj(double e) { dff_clock_energy_fj_ = e; }

 private:
  std::string name_ = "generic";
  double vdd_ = 1.2;             // volts
  double clock_hz_ = 100.0e6;    // evaluation rate for dynamic power
  double wire_cap_ff_ = 1.2;     // per-fanout-branch wire load
  double dff_clock_energy_fj_ = 9.0;
  std::array<CellSpec, kGateTypeCount> specs_{};
};

}  // namespace tz
