#include "tech/variation.hpp"

#include <cmath>

namespace tz {

DieSample VariationModel::sample_die(std::size_t raw_size) {
  DieSample die;
  die.leakage_scale.resize(raw_size);
  die.dynamic_scale.resize(raw_size);
  std::normal_distribution<double> g01(0.0, 1.0);
  die.die_scale = std::exp(spec_.die_sigma * g01(rng_));
  for (std::size_t i = 0; i < raw_size; ++i) {
    die.leakage_scale[i] = std::exp(spec_.leakage_sigma * g01(rng_));
    die.dynamic_scale[i] = 1.0 + spec_.dynamic_sigma * g01(rng_);
    if (die.dynamic_scale[i] < 0.5) die.dynamic_scale[i] = 0.5;
  }
  return die;
}

PowerReport VariationModel::measure(const Netlist& nl,
                                    const PowerBreakdown& nominal,
                                    const DieSample& die) {
  PowerReport r;
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id)) continue;
    r.dynamic_uw += nominal.dynamic_uw[id] * die.dynamic_scale[id];
    r.leakage_uw += nominal.leakage_uw[id] * die.leakage_scale[id];
    r.area_ge += nominal.area_ge[id];
  }
  r.dynamic_uw *= die.die_scale;
  r.leakage_uw *= die.die_scale;
  std::normal_distribution<double> noise(1.0, spec_.measurement_sigma);
  r.dynamic_uw *= noise(rng_);
  r.leakage_uw *= noise(rng_);
  return r;
}

std::vector<double> VariationModel::noisy_leakage(const Netlist& nl,
                                                  const PowerBreakdown& nominal,
                                                  const DieSample& die) {
  std::vector<double> leak(nl.raw_size(), 0.0);
  std::normal_distribution<double> noise(1.0, spec_.measurement_sigma);
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id)) continue;
    leak[id] = nominal.leakage_uw[id] * die.leakage_scale[id] *
               die.die_scale * noise(rng_);
  }
  return leak;
}

}  // namespace tz
