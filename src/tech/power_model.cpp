#include "tech/power_model.hpp"

#include <cstdint>

#include "sim/simulator.hpp"

namespace tz {

double PowerModel::load_cap_ff(const Netlist& nl, NodeId id) const {
  const Node& n = nl.node(id);
  double cap = 0.0;
  for (NodeId reader : n.fanout) {
    cap += lib_.pin_cap_ff(nl.node(reader)) + lib_.wire_cap_ff();
  }
  return cap;
}

PowerBreakdown PowerModel::analyze_with_activity(
    const Netlist& nl, const std::vector<double>& activity) const {
  PowerBreakdown b;
  b.dynamic_uw.assign(nl.raw_size(), 0.0);
  b.leakage_uw.assign(nl.raw_size(), 0.0);
  b.area_ge.assign(nl.raw_size(), 0.0);
  const double vdd = lib_.vdd();
  const double f = lib_.clock_hz();
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id)) continue;
    const Node& n = nl.node(id);
    b.area_ge[id] = lib_.area_ge(n);
    b.leakage_uw[id] = lib_.leakage_nw(n) * 1e-3;  // nW -> µW
    const double alpha = activity[id];
    // Energy per toggle in femtojoules.
    double energy_fj =
        lib_.internal_energy_fj(n) +
        0.5 * load_cap_ff(nl, id) * vdd * vdd;
    double p_dyn_w = alpha * f * energy_fj * 1e-15;
    if (n.type == GateType::Dff) {
      // Clock pin switches every cycle regardless of data activity.
      p_dyn_w += f * lib_.dff_clock_energy_fj() * 1e-15;
    }
    b.dynamic_uw[id] = p_dyn_w * 1e6;  // W -> µW
    b.totals.dynamic_uw += b.dynamic_uw[id];
    b.totals.leakage_uw += b.leakage_uw[id];
    b.totals.area_ge += b.area_ge[id];
  }
  return b;
}

PowerBreakdown PowerModel::analyze(const Netlist& nl,
                                   const SignalProb& sp) const {
  std::vector<double> activity(nl.raw_size(), 0.0);
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (nl.is_alive(id)) activity[id] = sp.activity(id);
  }
  return analyze_with_activity(nl, activity);
}

PowerBreakdown PowerModel::analyze(const Netlist& nl) const {
  const SignalProb sp(nl);
  return analyze(nl, sp);
}

PowerBreakdown PowerModel::analyze_simulated(const Netlist& nl,
                                             const PatternSet& stimulus) const {
  const std::vector<std::uint64_t> toggles = count_toggles(nl, stimulus);
  std::vector<double> activity(nl.raw_size(), 0.0);
  const double steps =
      stimulus.num_patterns() > 1
          ? static_cast<double>(stimulus.num_patterns() - 1)
          : 1.0;
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (nl.is_alive(id)) {
      activity[id] = static_cast<double>(toggles[id]) / steps;
    }
  }
  return analyze_with_activity(nl, activity);
}

}  // namespace tz
