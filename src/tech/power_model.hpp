// Power and area analysis (the paper's "Power and Area Computation" boxes).
//
// Dynamic power per node:  P_dyn = alpha * f * (E_internal + 1/2 C_load V^2)
// where alpha is the switching activity (toggles per clock), C_load the sum
// of reader pin capacitances plus per-branch wire load, and E_internal the
// cell's own short-circuit/internal energy. Leakage is a per-cell constant.
// Area is reported in NAND2 gate equivalents (GE), matching Table I.
//
// Activity comes from either the analytic signal-probability model
// (alpha = 2 P1 P0, the paper's switching-activity-aware estimate) or from
// counted toggles of a simulation run.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "prob/signal_prob.hpp"
#include "sim/patterns.hpp"
#include "tech/cell_library.hpp"

namespace tz {

/// Aggregate report, in the paper's units (µW and GE).
struct PowerReport {
  double dynamic_uw = 0.0;
  double leakage_uw = 0.0;
  double area_ge = 0.0;
  double total_uw() const { return dynamic_uw + leakage_uw; }
};

/// Per-node breakdown; index by NodeId (dead slots are zero).
struct PowerBreakdown {
  std::vector<double> dynamic_uw;
  std::vector<double> leakage_uw;
  std::vector<double> area_ge;
  PowerReport totals;
};

class PowerModel {
 public:
  /// The library is copied: a PowerModel is self-contained and safe to build
  /// from a temporary like CellLibrary::tsmc65_like().
  explicit PowerModel(CellLibrary lib) : lib_(std::move(lib)) {}

  /// Analytic analysis using signal-probability switching activity
  /// (the flow's default; used for thresholds and all Table I numbers).
  PowerBreakdown analyze(const Netlist& nl, const SignalProb& sp) const;

  /// Convenience: builds the SignalProb internally.
  PowerBreakdown analyze(const Netlist& nl) const;

  /// Simulation-based analysis: activity = toggles / (patterns - 1) counted
  /// while applying `stimulus` in sequence.
  PowerBreakdown analyze_simulated(const Netlist& nl,
                                   const PatternSet& stimulus) const;

  /// Load capacitance seen by a node's output (fF).
  double load_cap_ff(const Netlist& nl, NodeId id) const;

  const CellLibrary& library() const { return lib_; }

 private:
  PowerBreakdown analyze_with_activity(
      const Netlist& nl, const std::vector<double>& activity) const;

  CellLibrary lib_;
};

}  // namespace tz
