#include "tech/power_tracker.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "prob/signal_prob.hpp"

namespace tz {

PowerTracker::PowerTracker(const Netlist& nl, const PowerModel& pm)
    : nl_(&nl), pm_(&pm) {
  const SignalProb sp(nl);
  const PowerBreakdown b = pm.analyze(nl, sp);
  p1_ = sp.all_p1();
  dyn_ = b.dynamic_uw;
  leak_ = b.leakage_uw;
  area_ = b.area_ge;
  rank_.assign(nl.raw_size(), 0);
  const std::vector<NodeId> order = nl.topo_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    rank_[order[i]] = static_cast<std::uint32_t>(i);
  }
  next_rank_ = static_cast<std::uint32_t>(order.size());
  worklist_.resize(nl.raw_size());
  touched_.assign(nl.raw_size(), 0);
}

void PowerTracker::grow() {
  const std::size_t n = nl_->raw_size();
  if (p1_.size() >= n) return;
  // New nodes are appended by Netlist::add_gate reading only already-present
  // nodes, so id order extends the topological rank order.
  for (std::size_t id = p1_.size(); id < n; ++id) {
    rank_.push_back(next_rank_++);
  }
  p1_.resize(n, 0.0);
  dyn_.resize(n, 0.0);
  leak_.resize(n, 0.0);
  area_.resize(n, 0.0);
  worklist_.resize(n);
  touched_.resize(n, 0);
}

void PowerTracker::touch(NodeId id) {
  if (!txn_ || touched_[id]) return;
  touched_[id] = 1;
  undo_.push_back({id, p1_[id], dyn_[id], leak_[id], area_[id]});
}

void PowerTracker::refresh_rows(NodeId id) {
  touch(id);
  if (!nl_->is_alive(id)) {
    dyn_[id] = leak_[id] = area_[id] = 0.0;
    return;
  }
  // Mirrors PowerModel::analyze_with_activity term for term so the rows stay
  // bit-identical with a from-scratch analysis.
  const Node& n = nl_->node(id);
  const CellLibrary& lib = pm_->library();
  area_[id] = lib.area_ge(n);
  leak_[id] = lib.leakage_nw(n) * 1e-3;
  const double alpha = 2.0 * p1_[id] * (1.0 - p1_[id]);
  const double vdd = lib.vdd();
  const double f = lib.clock_hz();
  double energy_fj =
      lib.internal_energy_fj(n) + 0.5 * pm_->load_cap_ff(*nl_, id) * vdd * vdd;
  double p_dyn_w = alpha * f * energy_fj * 1e-15;
  if (n.type == GateType::Dff) {
    p_dyn_w += f * lib.dff_clock_energy_fj() * 1e-15;
  }
  dyn_[id] = p_dyn_w * 1e6;
}

void PowerTracker::run_dff_fixpoint(std::vector<NodeId>& rows_dirty) {
  // Replays SignalProb's sequential solve on the DFF-reachable region only:
  // every DFF restarts from the reset state and the damped iteration runs
  // with the same order, damping and epsilon, so the converged values equal
  // a from-scratch SignalProb of the current netlist.
  const SignalProbOptions opt;
  const std::vector<NodeId>& dffs = nl_->dffs();
  std::vector<NodeId> domain;
  std::vector<char> seen(nl_->raw_size(), 0);
  std::vector<NodeId> stack;
  for (NodeId q : dffs) {
    touch(q);
    p1_[q] = 0.0;
    stack.push_back(q);
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (NodeId reader : nl_->node(id).fanout) {
      if (seen[reader] || !nl_->is_alive(reader)) continue;
      const GateType t = nl_->node(reader).type;
      if (t == GateType::Dff || t == GateType::Input) continue;
      seen[reader] = 1;
      domain.push_back(reader);
      stack.push_back(reader);
    }
  }
  // Order the domain topologically over its internal edges. Ranks are not
  // enough here: a splice can make low-rank readers consume a high-rank new
  // node, and the fixpoint's per-pass evaluation must match a full topo pass
  // (any valid order does — every fanin is final before its reader runs).
  {
    std::vector<std::uint32_t> indeg(nl_->raw_size(), 0);
    for (NodeId id : domain) {
      for (NodeId f : nl_->node(id).fanin) {
        if (seen[f]) ++indeg[id];
      }
    }
    std::vector<NodeId> ready;
    for (NodeId id : domain) {
      if (indeg[id] == 0) ready.push_back(id);
    }
    std::vector<NodeId> order;
    order.reserve(domain.size());
    while (!ready.empty()) {
      const NodeId id = ready.back();
      ready.pop_back();
      order.push_back(id);
      for (NodeId reader : nl_->node(id).fanout) {
        if (reader < seen.size() && seen[reader] && --indeg[reader] == 0) {
          ready.push_back(reader);
        }
      }
    }
    domain = std::move(order);
  }
  auto propagate = [&] {
    for (NodeId id : domain) {
      const double next = gate_p1(nl_->node(id), p1_);
      if (next != p1_[id]) {
        touch(id);
        p1_[id] = next;
      }
    }
  };
  propagate();
  for (int it = 0; it < opt.dff_max_iters; ++it) {
    double delta = 0.0;
    for (NodeId q : dffs) {
      const double next = 0.5 * (p1_[q] + p1_[nl_->node(q).fanin[0]]);
      delta = std::max(delta, std::abs(next - p1_[q]));
      touch(q);
      p1_[q] = next;
    }
    propagate();
    if (delta < opt.dff_epsilon) break;
  }
  rows_dirty.insert(rows_dirty.end(), dffs.begin(), dffs.end());
  rows_dirty.insert(rows_dirty.end(), domain.begin(), domain.end());
}

void PowerTracker::resync(std::span<const NodeId> fresh,
                          std::span<const NodeId> cap_changed) {
  grow();
  std::vector<NodeId> rows_dirty(fresh.begin(), fresh.end());
  rows_dirty.insert(rows_dirty.end(), cap_changed.begin(), cap_changed.end());

  bool dff_dirty = false;
  for (NodeId id : fresh) {
    if (nl_->is_alive(id) && nl_->node(id).type == GateType::Dff) {
      dff_dirty = true;
    }
    worklist_.push(id);
  }
  // Event-driven P1 propagation; a node whose recomputed P1 is unchanged
  // generates no further events. Re-queued nodes converge to the same pure
  // function of the final fanin values regardless of pop order.
  while (!worklist_.empty()) {
    const NodeId id = worklist_.pop();
    if (!nl_->is_alive(id)) {
      // Tombstoned seed: zero its contribution; it has no readers.
      touch(id);
      p1_[id] = 0.0;
      continue;
    }
    const GateType t = nl_->node(id).type;
    if (t == GateType::Input || t == GateType::Dff) continue;
    const double next = gate_p1(nl_->node(id), p1_);
    if (next == p1_[id]) continue;
    touch(id);
    p1_[id] = next;
    rows_dirty.push_back(id);
    for (NodeId reader : nl_->node(id).fanout) {
      if (!nl_->is_alive(reader)) continue;
      if (nl_->node(reader).type == GateType::Dff) {
        dff_dirty = true;
        continue;
      }
      worklist_.push(reader);
    }
  }
  if (dff_dirty && !nl_->dffs().empty()) {
    run_dff_fixpoint(rows_dirty);
  }
  for (NodeId id : rows_dirty) refresh_rows(id);
}

PowerReport PowerTracker::totals() const {
  // NodeId-order accumulation: dead rows hold +0.0, so the sums equal the
  // live-only accumulation PowerModel::analyze performs.
  PowerReport t;
  for (std::size_t id = 0; id < p1_.size(); ++id) {
    t.dynamic_uw += dyn_[id];
    t.leakage_uw += leak_[id];
    t.area_ge += area_[id];
  }
  return t;
}

PowerBreakdown PowerTracker::breakdown() const {
  PowerBreakdown b;
  b.dynamic_uw = dyn_;
  b.leakage_uw = leak_;
  b.area_ge = area_;
  b.totals = totals();
  return b;
}

void PowerTracker::begin() {
  if (txn_) throw std::logic_error("PowerTracker: nested transaction");
  txn_ = true;
  txn_old_size_ = p1_.size();
  txn_old_next_rank_ = next_rank_;
}

void PowerTracker::rollback() {
  if (!txn_) throw std::logic_error("PowerTracker: rollback without begin");
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    if (it->id < txn_old_size_) {
      p1_[it->id] = it->p1;
      dyn_[it->id] = it->dyn;
      leak_[it->id] = it->leak;
      area_[it->id] = it->area;
    }
    touched_[it->id] = 0;
  }
  undo_.clear();
  p1_.resize(txn_old_size_);
  dyn_.resize(txn_old_size_);
  leak_.resize(txn_old_size_);
  area_.resize(txn_old_size_);
  rank_.resize(txn_old_size_);
  worklist_.resize(txn_old_size_);
  touched_.resize(txn_old_size_);
  next_rank_ = txn_old_next_rank_;
  txn_ = false;
}

void PowerTracker::commit() {
  if (!txn_) throw std::logic_error("PowerTracker: commit without begin");
  for (const Saved& s : undo_) touched_[s.id] = 0;
  undo_.clear();
  txn_ = false;
}

}  // namespace tz
