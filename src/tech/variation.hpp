// Process-variation and measurement-noise model.
//
// Post-silicon power-based HT detection ([10]-[12]) has to see through die-
// to-die and within-die process variation plus measurement noise; detectors
// in src/detect/ are therefore evaluated on populations of "fabricated"
// chips whose per-gate leakage and switching energy are perturbed by this
// model. Lognormal leakage variation follows the standard Vth-shift model;
// dynamic energy gets a smaller Gaussian spread.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "netlist/netlist.hpp"
#include "tech/power_model.hpp"

namespace tz {

struct VariationSpec {
  double leakage_sigma = 0.08;     ///< Within-die lognormal sigma on leakage.
  double dynamic_sigma = 0.03;     ///< Within-die Gaussian sigma on energy.
  double die_sigma = 0.04;         ///< Die-to-die global scale sigma.
  double measurement_sigma = 0.01; ///< Per-measurement instrument noise.
};

/// One fabricated die: per-node multiplicative scale factors.
struct DieSample {
  std::vector<double> leakage_scale;
  std::vector<double> dynamic_scale;
  double die_scale = 1.0;
};

class VariationModel {
 public:
  VariationModel(VariationSpec spec, std::uint64_t seed)
      : spec_(spec), rng_(seed) {}

  const VariationSpec& spec() const { return spec_; }

  /// Draw one die for a netlist with `raw_size` node slots.
  DieSample sample_die(std::size_t raw_size);

  /// Apply a die's factors to a nominal per-node breakdown and return the
  /// noisy observed totals (one "measurement" of the whole chip).
  PowerReport measure(const Netlist& nl, const PowerBreakdown& nominal,
                      const DieSample& die);

  /// Per-node observed leakage for gate-level characterization experiments.
  std::vector<double> noisy_leakage(const Netlist& nl,
                                    const PowerBreakdown& nominal,
                                    const DieSample& die);

 private:
  VariationSpec spec_;
  std::mt19937_64 rng_;
};

}  // namespace tz
