// Incremental power/area tracking for netlist rewrites.
//
// A PowerTracker mirrors PowerModel::analyze as persistent per-node rows
// (P1, dynamic, leakage, area) and applies structural edits as deltas: after
// an add-gate / remove-gate / tie / splice, only the edit's fanout cone is
// re-evaluated (event-driven over a topological-rank worklist) plus the rows
// whose load capacitance changed. Every per-node computation reuses the exact
// kernels of the full analysis (prob/signal_prob.hpp gate_p1, the cell
// library formulas), so a resynced tracker reports the same doubles a
// from-scratch PowerModel::analyze would — which is what lets the Algorithm 2
// cap checks and the dummy-balancing loop drop their per-trial
// analyze->SignalProb fixpoint without changing a single accept decision.
//
// Transactions make speculative edits cheap: begin(), mutate the netlist,
// resync(), inspect totals(), then rollback() (restoring the recorded rows
// bit-exactly) or commit().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/rank_worklist.hpp"
#include "tech/power_model.hpp"

namespace tz {

class PowerTracker {
 public:
  /// Seeds the rows with a full analysis. The netlist and model must outlive
  /// the tracker; structural edits must be reported through resync().
  PowerTracker(const Netlist& nl, const PowerModel& pm);

  /// Re-sync after a structural edit.
  ///  - `fresh`: nodes added, removed (tombstoned) or whose fanin changed —
  ///    their P1 is recomputed and propagated through the fanout cone.
  ///  - `cap_changed`: nodes whose reader set changed — their dynamic row is
  ///    refreshed for the new load capacitance.
  /// If the netlist carries DFFs and the edit reaches one, the sequential
  /// fixpoint is re-run exactly as SignalProb does (all DFFs reset to the
  /// same initial state), keeping parity with a from-scratch analysis.
  void resync(std::span<const NodeId> fresh,
              std::span<const NodeId> cap_changed);

  /// Current totals, accumulated in NodeId order — the same summation order
  /// as PowerModel::analyze, so a synced tracker matches it bit-for-bit.
  PowerReport totals() const;

  /// Snapshot of the per-node rows as a PowerBreakdown — the same vectors a
  /// from-scratch PowerModel::analyze of the current netlist would return
  /// (bit-for-bit; refresh_rows mirrors the analysis term for term). Lets
  /// detector sweeps that mutate a DUT one gate at a time feed the per-die
  /// variation sampling without re-running analyze -> SignalProb.
  PowerBreakdown breakdown() const;

  double p1(NodeId id) const { return id < p1_.size() ? p1_[id] : 0.0; }
  double dynamic_uw(NodeId id) const {
    return id < dyn_.size() ? dyn_[id] : 0.0;
  }

  // ---- transactions (one level) ----
  void begin();     ///< Start recording rows for rollback.
  void rollback();  ///< Restore every row touched since begin().
  void commit();    ///< Keep the edits, drop the undo log.

 private:
  void grow();
  void touch(NodeId id);
  void refresh_rows(NodeId id);
  void run_dff_fixpoint(std::vector<NodeId>& rows_dirty);

  const Netlist* nl_;
  const PowerModel* pm_;
  std::vector<double> p1_, dyn_, leak_, area_;
  std::vector<std::uint32_t> rank_;
  std::uint32_t next_rank_ = 0;
  RankWorklist worklist_{rank_};

  // Transaction state.
  struct Saved {
    NodeId id;
    double p1, dyn, leak, area;
  };
  bool txn_ = false;
  std::size_t txn_old_size_ = 0;
  std::uint32_t txn_old_next_rank_ = 0;
  std::vector<char> touched_;
  std::vector<Saved> undo_;
};

}  // namespace tz
