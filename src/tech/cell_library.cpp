#include "tech/cell_library.hpp"

#include <algorithm>

namespace tz {

CellLibrary CellLibrary::tsmc65_like() {
  CellLibrary lib;
  lib.set_name("tz65");
  lib.set_vdd(1.2);
  lib.set_clock_hz(100.0e6);
  lib.set_wire_cap_ff(1.2);
  lib.set_dff_clock_energy_fj(4.0);

  auto set = [&](GateType t, CellSpec s) { lib.spec(t) = s; };
  // Sources occupy no standard-cell area and leak nothing (PIs are pads,
  // ties are negligible feed-through cells).
  set(GateType::Input, {0.0, 0.0, 0.0, 0.0, 0.0, 0.0});
  set(GateType::Const0, {0.0, 0.0, 0.0, 0.0, 0.3, 0.0});
  set(GateType::Const1, {0.0, 0.0, 0.0, 0.0, 0.3, 0.0});
  set(GateType::Buf, {0.75, 0.0, 1.2, 1.6, 9.0, 0.0});
  set(GateType::Not, {0.5, 0.0, 1.0, 1.2, 7.0, 0.0});
  set(GateType::Nand, {1.0, 0.5, 1.4, 1.8, 14.0, 6.0});
  set(GateType::And, {1.25, 0.5, 1.4, 2.2, 17.0, 6.0});
  set(GateType::Nor, {1.0, 0.5, 1.5, 1.9, 15.0, 7.0});
  set(GateType::Or, {1.25, 0.5, 1.5, 2.3, 18.0, 7.0});
  set(GateType::Xor, {2.25, 1.0, 2.0, 3.6, 26.0, 12.0});
  set(GateType::Xnor, {2.25, 1.0, 2.0, 3.6, 26.0, 12.0});
  set(GateType::Mux, {2.0, 0.0, 1.8, 3.0, 24.0, 0.0});
  set(GateType::Dff, {4.5, 0.0, 2.2, 7.5, 42.0, 0.0});
  return lib;
}

double CellLibrary::area_ge(const Node& n) const {
  const CellSpec& s = spec(n.type);
  const int extra =
      std::max(0, static_cast<int>(n.fanin.size()) - 2);
  return s.area_ge + extra * s.area_per_extra;
}

double CellLibrary::leakage_nw(const Node& n) const {
  const CellSpec& s = spec(n.type);
  const int extra =
      std::max(0, static_cast<int>(n.fanin.size()) - 2);
  return s.leakage_nw + extra * s.leakage_per_extra;
}

}  // namespace tz
