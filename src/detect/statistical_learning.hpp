// Statistical-learning HT detection (Chen et al. [12]).
//
// A one-class classifier trained on the golden population's side-channel
// feature vectors (dynamic power, leakage power): a die is flagged when its
// Mahalanobis distance from the golden centroid exceeds the learned
// threshold (the maximum golden-training distance plus margin).
#pragma once

#include "detect/power_trace.hpp"

namespace tz {

struct LearningDetectOptions {
  PowerDetectOptions base;
  double margin = 1.25;  ///< Threshold = margin * max training distance.
};

/// Train on golden dies, classify the DUT population; detected when the
/// majority of DUT dies fall outside the learned boundary.
DetectionResult detect_statistical_learning(
    const Netlist& golden_nl, const Netlist& dut_nl, const PowerModel& pm,
    const LearningDetectOptions& opt = {});

/// Overload on precomputed nominal breakdowns (see detect_dynamic_power):
/// skips the per-call analyze -> SignalProb when the caller maintains the
/// DUT rows incrementally. Bit-identical when the breakdowns match.
DetectionResult detect_statistical_learning(
    const Netlist& golden_nl, const Netlist& dut_nl,
    const PowerBreakdown& golden_nom, const PowerBreakdown& dut_nom,
    const LearningDetectOptions& opt = {});

/// Fig. 3 support: smallest additive-HT *area* overhead (%) whose power
/// signature this classifier reliably flags.
double min_detectable_area_overhead(const Netlist& golden_nl,
                                    const PowerModel& pm,
                                    const LearningDetectOptions& opt = {});

}  // namespace tz
