// Gate-level characterization detection (Potkonjak et al. [11]).
//
// The defender calibrates a per-die global leakage scale from many per-gate
// leakage observations (non-destructive gate-level characterization), then
// checks whether the die's *total* leakage is consistent with the claimed
// netlist. Extra malicious gates leak even when dormant, so the residual
// between measured and reconstructed leakage exposes additive HTs.
#pragma once

#include "detect/power_trace.hpp"

namespace tz {

/// Leakage-residual test: characterize per-die scale on the golden model,
/// then flag the DUT population when its scale-normalized leakage exceeds
/// the golden population by the confidence threshold.
DetectionResult detect_leakage_glc(const Netlist& golden_nl,
                                   const Netlist& dut_nl,
                                   const PowerModel& pm,
                                   const PowerDetectOptions& opt = {});

/// Overload on precomputed nominal breakdowns (see detect_dynamic_power):
/// skips the per-call analyze -> SignalProb when the caller maintains the
/// DUT rows incrementally. Bit-identical when the breakdowns match.
DetectionResult detect_leakage_glc(const Netlist& golden_nl,
                                   const Netlist& dut_nl,
                                   const PowerBreakdown& golden_nom,
                                   const PowerBreakdown& dut_nom,
                                   const PowerDetectOptions& opt = {});

/// Fig. 3 support: smallest additive-HT leakage overhead (%) this detector
/// reliably flags.
double min_detectable_leakage_overhead(const Netlist& golden_nl,
                                       const PowerModel& pm,
                                       const PowerDetectOptions& opt = {});

}  // namespace tz
