#include "detect/statistical_learning.hpp"

#include <array>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/ht_library.hpp"
#include "tech/power_tracker.hpp"

namespace tz {
namespace {

using Feature = std::array<double, 2>;  // {dynamic_uw, leakage_uw}

Feature measure_die(const Netlist& nl, const PowerBreakdown& nom,
                    VariationModel& vm) {
  const DieSample die = vm.sample_die(nl.raw_size());
  const PowerReport r = vm.measure(nl, nom, die);
  return {r.dynamic_uw, r.leakage_uw};
}

struct Gaussian2 {
  Feature mean{};
  // Inverse covariance (2x2 symmetric).
  double ixx = 0, ixy = 0, iyy = 0;

  double mahalanobis2(const Feature& f) const {
    const double dx = f[0] - mean[0];
    const double dy = f[1] - mean[1];
    return dx * dx * ixx + 2 * dx * dy * ixy + dy * dy * iyy;
  }
};

/// Requires xs.size() >= 2: the sample covariance divides by n - 1, so a
/// single-die training set would produce an inf/NaN inverse covariance.
/// detect_statistical_learning validates the option before calling.
Gaussian2 fit(const std::vector<Feature>& xs) {
  if (xs.size() < 2) {
    throw std::invalid_argument(
        "fit: need at least 2 training dies for a sample covariance");
  }
  Gaussian2 g;
  const double n = static_cast<double>(xs.size());
  for (const Feature& f : xs) {
    g.mean[0] += f[0] / n;
    g.mean[1] += f[1] / n;
  }
  double cxx = 0, cxy = 0, cyy = 0;
  for (const Feature& f : xs) {
    const double dx = f[0] - g.mean[0];
    const double dy = f[1] - g.mean[1];
    cxx += dx * dx;
    cxy += dx * dy;
    cyy += dy * dy;
  }
  cxx /= n - 1;
  cxy /= n - 1;
  cyy /= n - 1;
  const double det = std::max(1e-12, cxx * cyy - cxy * cxy);
  g.ixx = cyy / det;
  g.ixy = -cxy / det;
  g.iyy = cxx / det;
  return g;
}

}  // namespace

DetectionResult detect_statistical_learning(
    const Netlist& golden_nl, const Netlist& dut_nl, const PowerModel& pm,
    const LearningDetectOptions& opt) {
  return detect_statistical_learning(golden_nl, dut_nl,
                                     pm.analyze(golden_nl),
                                     pm.analyze(dut_nl), opt);
}

DetectionResult detect_statistical_learning(
    const Netlist& golden_nl, const Netlist& dut_nl,
    const PowerBreakdown& golden_nom, const PowerBreakdown& dut_nom,
    const LearningDetectOptions& opt) {
  // Degenerate populations used to flow NaN into the result: golden_dies < 2
  // breaks the covariance fit, dut_dies == 0 divides the per-die averages by
  // zero. Fail loudly instead.
  if (opt.base.golden_dies < 2) {
    throw std::invalid_argument(
        "detect_statistical_learning: golden_dies must be >= 2 to train");
  }
  if (opt.base.dut_dies == 0) {
    throw std::invalid_argument(
        "detect_statistical_learning: dut_dies must be >= 1");
  }
  VariationModel vm(opt.base.variation, opt.base.seed);

  std::vector<Feature> train;
  for (std::size_t i = 0; i < opt.base.golden_dies; ++i) {
    train.push_back(measure_die(golden_nl, golden_nom, vm));
  }
  const Gaussian2 g = fit(train);
  const double golden_power = g.mean[0] + g.mean[1];
  if (!(golden_power > 0.0)) {
    // A zero-power golden centroid has no meaningful overhead percentage
    // (and used to divide into NaN); every real cell library leaks, so this
    // is a configuration error, not a measurement.
    throw std::invalid_argument(
        "detect_statistical_learning: golden population has zero mean power");
  }
  double max_train = 0.0;
  for (const Feature& f : train) {
    max_train = std::max(max_train, g.mahalanobis2(f));
  }
  const double boundary = opt.margin * max_train;

  std::size_t outside = 0;
  double mean_overhead = 0.0;
  double mean_dist = 0.0;
  for (std::size_t i = 0; i < opt.base.dut_dies; ++i) {
    const Feature f = measure_die(dut_nl, dut_nom, vm);
    const double d2 = g.mahalanobis2(f);
    mean_dist += d2 / opt.base.dut_dies;
    if (d2 > boundary) ++outside;
    mean_overhead += 100.0 * ((f[0] + f[1]) - golden_power) /
                     (golden_power * opt.base.dut_dies);
  }
  DetectionResult r;
  r.threshold = boundary;
  r.statistic = mean_dist;
  r.detected = outside * 2 > opt.base.dut_dies;  // majority vote
  r.overhead_percent = mean_overhead;
  return r;
}

double min_detectable_area_overhead(const Netlist& golden_nl,
                                    const PowerModel& pm,
                                    const LearningDetectOptions& opt) {
  if (golden_nl.inputs().empty()) {
    throw std::invalid_argument(
        "min_detectable_area_overhead: netlist has no primary inputs to "
        "attach additive gates to");
  }
  // Golden analysis once, DUT rows via incremental PowerTracker deltas
  // (bit-parity with a from-scratch analyze) — the sweep no longer pays two
  // full analyze -> SignalProb passes per candidate gate count.
  Netlist dut = golden_nl;
  const PowerBreakdown golden_nom = pm.analyze(golden_nl);
  const double base = golden_nom.totals.area_ge;
  PowerTracker tracker(dut, pm);
  for (int gates = 1; gates <= 256; ++gates) {
    const NodeId pi = dut.inputs()[gates % dut.inputs().size()];
    add_swept_gate(dut, tracker, pi, GateType::Xor);
    LearningDetectOptions o = opt;
    o.base.seed = opt.base.seed + static_cast<std::uint64_t>(gates);
    const DetectionResult r = detect_statistical_learning(
        golden_nl, dut, golden_nom, tracker.breakdown(), o);
    if (r.detected) {
      const double now = tracker.totals().area_ge;
      return 100.0 * (now - base) / base;
    }
  }
  return 100.0;
}

}  // namespace tz
