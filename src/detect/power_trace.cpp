#include "detect/power_trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/ht_library.hpp"
#include "tech/power_tracker.hpp"

namespace tz {
namespace {

struct Population {
  double mean = 0.0;
  double stddev = 0.0;
};

Population stats(const std::vector<double>& xs) {
  Population p;
  if (xs.empty()) return p;
  p.mean = std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - p.mean) * (x - p.mean);
  var /= std::max<std::size_t>(1, xs.size() - 1);
  p.stddev = std::sqrt(var);
  return p;
}

DetectionResult population_test(const Netlist& golden_nl,
                                const Netlist& dut_nl,
                                const PowerBreakdown& golden_nom,
                                const PowerBreakdown& dut_nom,
                                const PowerDetectOptions& opt, bool total) {
  if (opt.golden_dies == 0 || opt.dut_dies == 0) {
    // 0/0 die populations used to divide through the SEM into NaN, and a NaN
    // statistic silently compared as "not detected".
    throw std::invalid_argument(
        "population_test: golden_dies and dut_dies must be >= 1");
  }
  VariationModel vm(opt.variation, opt.seed);

  auto draw = [&](const Netlist& nl, const PowerBreakdown& nom,
                  std::size_t dies) {
    std::vector<double> xs;
    xs.reserve(dies);
    for (std::size_t i = 0; i < dies; ++i) {
      const DieSample die = vm.sample_die(nl.raw_size());
      const PowerReport m = vm.measure(nl, nom, die);
      xs.push_back(total ? m.total_uw() : m.dynamic_uw);
    }
    return xs;
  };

  const Population g = stats(draw(golden_nl, golden_nom, opt.golden_dies));
  const Population d = stats(draw(dut_nl, dut_nom, opt.dut_dies));

  DetectionResult r;
  r.threshold = opt.confidence_sigma;
  // Standard error of the DUT-mean vs golden-mean difference. The old code
  // collapsed the statistic to 0.0 on sem == 0, reporting even a blatant
  // trojan as undetected on a zero-variation population.
  const double sem =
      std::sqrt(g.stddev * g.stddev / static_cast<double>(opt.golden_dies) +
                d.stddev * d.stddev / static_cast<double>(opt.dut_dies));
  apply_population_statistic(r, g.mean, d.mean, sem);
  r.overhead_percent = g.mean > 0.0 ? 100.0 * (d.mean - g.mean) / g.mean : 0.0;
  return r;
}

}  // namespace

void apply_population_statistic(DetectionResult& r, double golden_mean,
                                double dut_mean, double sem) {
  // With identical-but-summed measurements sem is not exactly zero but a few
  // ulps of the mean, which would turn the statistic into accumulation noise
  // of either sign — so "degenerate" is a relative epsilon, not == 0.
  const double tol =
      1e-12 * std::max({std::abs(golden_mean), std::abs(dut_mean), 1e-300});
  if (sem > tol) {
    r.statistic = (dut_mean - golden_mean) / sem;
    r.detected = r.statistic > r.threshold;
  } else {
    r.detected = dut_mean - golden_mean > tol;
    r.statistic = r.detected ? std::numeric_limits<double>::infinity() : 0.0;
  }
}

DetectionResult detect_dynamic_power(const Netlist& golden_nl,
                                     const Netlist& dut_nl,
                                     const PowerModel& pm,
                                     const PowerDetectOptions& opt) {
  return population_test(golden_nl, dut_nl, pm.analyze(golden_nl),
                         pm.analyze(dut_nl), opt, /*total=*/false);
}

DetectionResult detect_dynamic_power(const Netlist& golden_nl,
                                     const Netlist& dut_nl,
                                     const PowerBreakdown& golden_nom,
                                     const PowerBreakdown& dut_nom,
                                     const PowerDetectOptions& opt) {
  return population_test(golden_nl, dut_nl, golden_nom, dut_nom, opt,
                         /*total=*/false);
}

DetectionResult detect_total_power(const Netlist& golden_nl,
                                   const Netlist& dut_nl,
                                   const PowerModel& pm,
                                   const PowerDetectOptions& opt) {
  return population_test(golden_nl, dut_nl, pm.analyze(golden_nl),
                         pm.analyze(dut_nl), opt, /*total=*/true);
}

DetectionResult detect_total_power(const Netlist& golden_nl,
                                   const Netlist& dut_nl,
                                   const PowerBreakdown& golden_nom,
                                   const PowerBreakdown& dut_nom,
                                   const PowerDetectOptions& opt) {
  return population_test(golden_nl, dut_nl, golden_nom, dut_nom, opt,
                         /*total=*/true);
}

void add_swept_gate(Netlist& dut, PowerTracker& tracker, NodeId src,
                    GateType type) {
  const std::size_t size_before = dut.raw_size();
  add_dummy_gate(dut, src, type, "add_ht");
  std::vector<NodeId> fresh;
  for (NodeId id = static_cast<NodeId>(size_before); id < dut.raw_size();
       ++id) {
    fresh.push_back(id);
  }
  tracker.resync(fresh, {{src}});
}

double min_detectable_dynamic_overhead(const Netlist& golden_nl,
                                       const PowerModel& pm,
                                       const PowerDetectOptions& opt) {
  if (golden_nl.inputs().empty()) {
    throw std::invalid_argument(
        "min_detectable_dynamic_overhead: netlist has no primary inputs to "
        "attach additive gates to");
  }
  // Attach additive always-on gates (classic additive HT model) one at a
  // time until the detector flags the die population. The golden analysis is
  // computed once and the DUT rows are maintained incrementally by a
  // PowerTracker (bit-parity with a from-scratch analyze), so each step of
  // the sweep costs one gate delta instead of two full analyses.
  Netlist dut = golden_nl;
  const PowerBreakdown golden_nom = pm.analyze(golden_nl);
  const double base = golden_nom.totals.dynamic_uw;
  PowerTracker tracker(dut, pm);
  for (int gates = 1; gates <= 256; ++gates) {
    const NodeId pi = dut.inputs()[gates % dut.inputs().size()];
    add_swept_gate(dut, tracker, pi, GateType::Xor);
    PowerDetectOptions o = opt;
    o.seed = opt.seed + static_cast<std::uint64_t>(gates);
    const DetectionResult r =
        detect_dynamic_power(golden_nl, dut, golden_nom, tracker.breakdown(), o);
    if (r.detected) {
      const double now = tracker.totals().dynamic_uw;
      return 100.0 * (now - base) / base;
    }
  }
  return 100.0;  // never detected within the sweep
}

}  // namespace tz
