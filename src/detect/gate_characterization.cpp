#include "detect/gate_characterization.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/ht_library.hpp"
#include "tech/power_tracker.hpp"

namespace tz {
namespace {

/// Per-die leakage observation normalized by the least-squares global scale
/// fitted against the claimed (golden) per-gate nominal leakages. For an
/// HT-free die the normalized residual is ~1; extra gates push it up by the
/// HT's leakage share regardless of the die's own process corner — this is
/// what gate-level characterization buys over a raw total-leakage test.
double normalized_leakage(const Netlist& nl, const PowerBreakdown& nominal,
                          VariationModel& vm, double claimed_total) {
  const DieSample die = vm.sample_die(nl.raw_size());
  const std::vector<double> leak = vm.noisy_leakage(nl, nominal, die);
  const double measured =
      std::accumulate(leak.begin(), leak.end(), 0.0);
  // GLC estimate of the die's global corner: median per-gate ratio against
  // claimed nominals over the gates the defender can observe (all claimed
  // gates; HT gates are unknown to the defender so they are not in the fit).
  std::vector<double> ratios;
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id)) continue;
    if (nominal.leakage_uw[id] <= 0.0) continue;
    ratios.push_back(leak[id] / nominal.leakage_uw[id]);
  }
  if (ratios.empty()) return 1.0;
  std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                   ratios.end());
  const double scale = ratios[ratios.size() / 2];
  return measured / (scale * claimed_total);
}

}  // namespace

DetectionResult detect_leakage_glc(const Netlist& golden_nl,
                                   const Netlist& dut_nl,
                                   const PowerModel& pm,
                                   const PowerDetectOptions& opt) {
  return detect_leakage_glc(golden_nl, dut_nl, pm.analyze(golden_nl),
                            pm.analyze(dut_nl), opt);
}

DetectionResult detect_leakage_glc(const Netlist& golden_nl,
                                   const Netlist& dut_nl,
                                   const PowerBreakdown& golden_nom,
                                   const PowerBreakdown& dut_nom,
                                   const PowerDetectOptions& opt) {
  if (opt.golden_dies == 0 || opt.dut_dies == 0) {
    // 0-die populations used to divide into NaN means, and a NaN statistic
    // silently compared as "not detected".
    throw std::invalid_argument(
        "detect_leakage_glc: golden_dies and dut_dies must be >= 1");
  }
  const double claimed = golden_nom.totals.leakage_uw;
  VariationModel vm(opt.variation, opt.seed);

  auto population = [&](const Netlist& nl, const PowerBreakdown& nom,
                        std::size_t dies) {
    std::vector<double> xs;
    for (std::size_t i = 0; i < dies; ++i) {
      xs.push_back(normalized_leakage(nl, nom, vm, claimed));
    }
    return xs;
  };
  const std::vector<double> g = population(golden_nl, golden_nom,
                                           opt.golden_dies);
  const std::vector<double> d = population(dut_nl, dut_nom, opt.dut_dies);

  const double gm = std::accumulate(g.begin(), g.end(), 0.0) / g.size();
  double gv = 0.0;
  for (double x : g) gv += (x - gm) * (x - gm);
  gv /= std::max<std::size_t>(1, g.size() - 1);
  const double dm = std::accumulate(d.begin(), d.end(), 0.0) / d.size();

  DetectionResult r;
  r.threshold = opt.confidence_sigma;
  // Same degenerate-population policy as population_test: the old
  // `sem > 0 ? ... : 0.0` reported a blatant trojan as undetected on a
  // zero-variation population.
  const double sem = std::sqrt(gv / d.size() + gv / g.size());
  apply_population_statistic(r, gm, dm, sem);
  r.overhead_percent = gm > 0.0 ? 100.0 * (dm - gm) / gm : 0.0;
  return r;
}

double min_detectable_leakage_overhead(const Netlist& golden_nl,
                                       const PowerModel& pm,
                                       const PowerDetectOptions& opt) {
  if (golden_nl.inputs().empty()) {
    throw std::invalid_argument(
        "min_detectable_leakage_overhead: netlist has no primary inputs to "
        "attach additive gates to");
  }
  // Golden analysis once, DUT rows via incremental PowerTracker deltas
  // (bit-parity with a from-scratch analyze) — the sweep no longer pays two
  // full analyze -> SignalProb passes per candidate gate count.
  Netlist dut = golden_nl;
  const PowerBreakdown golden_nom = pm.analyze(golden_nl);
  const double base = golden_nom.totals.leakage_uw;
  PowerTracker tracker(dut, pm);
  for (int gates = 1; gates <= 256; ++gates) {
    const NodeId pi = dut.inputs()[gates % dut.inputs().size()];
    add_swept_gate(dut, tracker, pi, GateType::Nand);
    PowerDetectOptions o = opt;
    o.seed = opt.seed + static_cast<std::uint64_t>(gates);
    const DetectionResult r =
        detect_leakage_glc(golden_nl, dut, golden_nom, tracker.breakdown(), o);
    if (r.detected) {
      const double now = tracker.totals().leakage_uw;
      return 100.0 * (now - base) / base;
    }
  }
  return 100.0;
}

}  // namespace tz
