// Power-trace statistical HT detection (Rad / Plusquellic / Tehranipoor-style
// [10]): compare a population of measured DUT dynamic-power traces against a
// trusted golden population under process variation; flag the DUT when its
// mean exceeds the golden mean by a confidence multiple of the golden spread.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"
#include "tech/power_model.hpp"
#include "tech/variation.hpp"

namespace tz {

class PowerTracker;

struct DetectionResult {
  bool detected = false;
  double statistic = 0.0;   ///< Normalized test statistic (sigmas).
  double threshold = 0.0;   ///< Decision threshold (sigmas).
  double overhead_percent = 0.0;  ///< Observed mean overhead vs golden (%).
};

struct PowerDetectOptions {
  std::size_t golden_dies = 64;
  std::size_t dut_dies = 16;
  double confidence_sigma = 3.0;  ///< 3-sigma decision rule.
  VariationSpec variation;
  std::uint64_t seed = 99;
};

/// Shared two-population decision policy for the power-side detectors: a
/// sigma test on the standard error when the populations carry real spread,
/// falling back to a direct mean-difference test when `sem` is below a
/// relative noise floor of the means. Degenerate populations (zero process
/// variation) measure bit-identical dies, so the residue of the
/// floating-point mean accumulation must not masquerade as spread — a
/// genuine excess is infinitely many sigmas out, rounding noise is not.
/// Reads `r.threshold` (sigmas); sets `r.statistic` and `r.detected`.
void apply_population_statistic(DetectionResult& r, double golden_mean,
                                double dut_mean, double sem);

/// Dynamic-power population test. `golden_nl` is the signed-off netlist the
/// defender trusts; `dut_nl` is what actually got fabricated.
DetectionResult detect_dynamic_power(const Netlist& golden_nl,
                                     const Netlist& dut_nl,
                                     const PowerModel& pm,
                                     const PowerDetectOptions& opt = {});

/// Overload on precomputed nominal breakdowns (exactly what
/// PowerModel::analyze would return for each netlist): the die population is
/// sampled from the cached per-node rows, so sweeps that perturb a DUT one
/// gate at a time (min_detectable_* with an incremental PowerTracker) skip
/// the per-step analyze -> SignalProb fixpoint. Bit-identical to the
/// analyzing overload when the breakdowns match.
DetectionResult detect_dynamic_power(const Netlist& golden_nl,
                                     const Netlist& dut_nl,
                                     const PowerBreakdown& golden_nom,
                                     const PowerBreakdown& dut_nom,
                                     const PowerDetectOptions& opt = {});

/// Same machinery on total power (dynamic + leakage).
DetectionResult detect_total_power(const Netlist& golden_nl,
                                   const Netlist& dut_nl,
                                   const PowerModel& pm,
                                   const PowerDetectOptions& opt = {});

DetectionResult detect_total_power(const Netlist& golden_nl,
                                   const Netlist& dut_nl,
                                   const PowerBreakdown& golden_nom,
                                   const PowerBreakdown& dut_nom,
                                   const PowerDetectOptions& opt = {});

/// One step of a min_detectable_* sweep, shared by all three detectors:
/// attach one additive always-on dummy gate of `type` fed by `src` to `dut`
/// and resync `tracker` over the appended node range.
void add_swept_gate(Netlist& dut, PowerTracker& tracker, NodeId src,
                    GateType type);

/// Fig. 3 support: smallest additive-HT dynamic-power overhead (in % of the
/// golden total) this detector reliably flags. Determined by sweeping
/// additive always-on gate bundles attached to the circuit.
double min_detectable_dynamic_overhead(const Netlist& golden_nl,
                                       const PowerModel& pm,
                                       const PowerDetectOptions& opt = {});

}  // namespace tz
