// SCOAP testability metrics (Goldstein 1979).
//
// Combinational controllability CC0/CC1 (number of decisions needed to set
// a net to 0/1) and observability CO (decisions to propagate a net to a
// primary output). These are the classical measures behind the
// testability-first fault ordering of the defender model (test_set.hpp) and
// give the attacker an independent, simulation-free ranking of how hard a
// candidate's tie would be to expose: high CC1 + high CO == a net whose
// rare value is both hard to produce and hard to observe.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace tz {

/// Saturating "infinite" testability cost (unreachable / uncontrollable).
inline constexpr std::uint32_t kScoapInf = 1u << 30;

class Scoap {
 public:
  explicit Scoap(const Netlist& nl);

  std::uint32_t cc0(NodeId id) const { return cc0_[id]; }
  std::uint32_t cc1(NodeId id) const { return cc1_[id]; }
  std::uint32_t co(NodeId id) const { return co_[id]; }

  /// Cost of *detecting* stuck-at-v at a net: control it to the opposite
  /// value and observe it (CCv̄ + CO).
  std::uint32_t detect_cost(NodeId id, bool stuck_at_one) const {
    const std::uint32_t c = stuck_at_one ? cc0_[id] : cc1_[id];
    return sat_add(c, co_[id]);
  }

  static std::uint32_t sat_add(std::uint32_t a, std::uint32_t b) {
    const std::uint64_t s = static_cast<std::uint64_t>(a) + b;
    return s > kScoapInf ? kScoapInf : static_cast<std::uint32_t>(s);
  }

 private:
  std::vector<std::uint32_t> cc0_, cc1_, co_;
};

}  // namespace tz
