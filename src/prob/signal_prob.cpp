#include "prob/signal_prob.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "sim/patterns.hpp"
#include "sim/simulator.hpp"

namespace tz {

double gate_p1(const Node& n, const std::vector<double>& p) {
  switch (n.type) {
    case GateType::Const0: return 0.0;
    case GateType::Const1: return 1.0;
    case GateType::Buf: return p[n.fanin[0]];
    case GateType::Not: return 1.0 - p[n.fanin[0]];
    case GateType::And: {
      double v = 1.0;
      for (NodeId f : n.fanin) v *= p[f];
      return v;
    }
    case GateType::Nand: {
      double v = 1.0;
      for (NodeId f : n.fanin) v *= p[f];
      return 1.0 - v;
    }
    case GateType::Or: {
      double v = 1.0;
      for (NodeId f : n.fanin) v *= 1.0 - p[f];
      return 1.0 - v;
    }
    case GateType::Nor: {
      double v = 1.0;
      for (NodeId f : n.fanin) v *= 1.0 - p[f];
      return v;
    }
    case GateType::Xor: {
      double v = 0.0;  // probability accumulated parity is 1
      for (NodeId f : n.fanin) v = v * (1.0 - p[f]) + (1.0 - v) * p[f];
      return v;
    }
    case GateType::Xnor: {
      double v = 0.0;
      for (NodeId f : n.fanin) v = v * (1.0 - p[f]) + (1.0 - v) * p[f];
      return 1.0 - v;
    }
    case GateType::Mux: {
      const double s = p[n.fanin[0]];
      return (1.0 - s) * p[n.fanin[1]] + s * p[n.fanin[2]];
    }
    case GateType::Input:
    case GateType::Dff:
      // Sources are seeded by the caller, never evaluated here.
      throw std::logic_error("gate_p1: source node");
  }
  return 0.0;
}

SignalProb::SignalProb(const Netlist& nl, SignalProbOptions opt)
    : p1_(nl.raw_size(), 0.0) {
  for (NodeId id : nl.inputs()) p1_[id] = opt.input_p1;
  // DFF q starts at 0 (reset state) and is iterated to a fixpoint.
  const std::vector<NodeId> order = nl.topo_order();
  auto propagate = [&] {
    for (NodeId id : order) {
      const Node& n = nl.node(id);
      if (n.type == GateType::Input || n.type == GateType::Dff) continue;
      p1_[id] = gate_p1(n, p1_);
    }
  };
  propagate();
  if (!nl.dffs().empty()) {
    dff_converged_ = false;
    for (int it = 0; it < opt.dff_max_iters; ++it) {
      double delta = 0.0;
      for (NodeId q : nl.dffs()) {
        // Damped update: plain iteration oscillates on toggle loops
        // (q' = NOT q); averaging converges to the steady-state mean.
        const double next = 0.5 * (p1_[q] + p1_[nl.node(q).fanin[0]]);
        delta = std::max(delta, std::abs(next - p1_[q]));
        p1_[q] = next;
      }
      propagate();
      if (delta < opt.dff_epsilon) {
        dff_converged_ = true;
        break;
      }
    }
  }
}

std::vector<Candidate> find_candidates(const Netlist& nl, const SignalProb& sp,
                                       double pth, bool include_outputs) {
  std::vector<Candidate> cands;
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id)) continue;
    const Node& n = nl.node(id);
    if (!is_combinational(n.type) || is_const(n.type)) continue;
    if (!include_outputs && nl.is_output(id)) continue;
    const double p1 = sp.p1(id);
    if (p1 >= pth) {
      cands.push_back({id, true, p1});
    } else if (1.0 - p1 >= pth) {
      cands.push_back({id, false, 1.0 - p1});
    }
  }
  std::stable_sort(cands.begin(), cands.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.probability > b.probability;
                   });
  return cands;
}

std::vector<double> monte_carlo_p1(const Netlist& nl, std::size_t patterns,
                                   std::uint64_t seed) {
  const PatternSet ps = random_patterns(nl.inputs().size(), patterns, seed);
  return simulated_one_probability(nl, ps);
}

}  // namespace tz
