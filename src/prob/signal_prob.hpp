// Signal-probability analysis (the paper's "Probability Computation Program").
//
// Computes P(node = 1) for every node by propagating probabilities through
// the gate library in topological order, assuming (a) every primary input is
// 1 with probability 0.5 and (b) gate inputs are statistically independent —
// exactly the model of Sec. II-B.2. DFF state probabilities are solved by
// fixpoint iteration. Switching activity follows the standard temporal-
// independence estimate alpha = 2 * P1 * (1 - P1).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace tz {

struct SignalProbOptions {
  double input_p1 = 0.5;     ///< P(PI = 1); the paper assumes 0.5.
  int dff_max_iters = 64;    ///< Fixpoint iterations for sequential loops.
  double dff_epsilon = 1e-9; ///< Convergence threshold on DFF probabilities.
};

/// P(output = 1) of one combinational gate given fanin probabilities `p`
/// (independence assumption). The single evaluation kernel shared by
/// SignalProb's global pass and the incremental PowerTracker — both must
/// produce bit-identical doubles. Throws on source nodes (Input/Dff).
double gate_p1(const Node& n, const std::vector<double>& p);

class SignalProb {
 public:
  explicit SignalProb(const Netlist& nl, SignalProbOptions opt = {});

  /// P(node = 1). Index by NodeId; dead slots hold 0.
  double p1(NodeId id) const { return p1_[id]; }
  double p0(NodeId id) const { return 1.0 - p1_[id]; }
  const std::vector<double>& all_p1() const { return p1_; }

  /// Switching activity per evaluation: alpha = 2 * p1 * p0.
  double activity(NodeId id) const {
    return 2.0 * p1_[id] * (1.0 - p1_[id]);
  }

  bool dff_converged() const { return dff_converged_; }

 private:
  std::vector<double> p1_;
  bool dff_converged_ = true;
};

/// Candidate gates for Algorithm 1: combinational, non-output nodes whose
/// output probability satisfies P1 >= pth (tie-to-1 candidates, the paper's
/// set Y) or P0 >= pth (tie-to-0 candidates, set X).
struct Candidate {
  NodeId node = kNoNode;
  bool tie_value = false;  ///< Constant the node would be replaced with.
  double probability = 0;  ///< max(P0, P1) at the node.
};

/// Extract the candidate set C = X ∪ Y (Algorithm 1 lines 4-10), ordered by
/// decreasing probability so the most-certain nodes are tried first.
std::vector<Candidate> find_candidates(const Netlist& nl, const SignalProb& sp,
                                       double pth,
                                       bool include_outputs = false);

/// Monte-Carlo estimate of P1 per node over `patterns` random vectors
/// (cross-check for the analytic model; exact as patterns -> inf for
/// combinational circuits).
std::vector<double> monte_carlo_p1(const Netlist& nl, std::size_t patterns,
                                   std::uint64_t seed);

}  // namespace tz
