#include "prob/scoap.hpp"

#include <algorithm>
#include <cstdint>

namespace tz {
namespace {

using U = std::uint32_t;

U min_of(const std::vector<NodeId>& xs, const std::vector<U>& v) {
  U m = kScoapInf;
  for (NodeId x : xs) m = std::min(m, v[x]);
  return m;
}

U sum_of(const std::vector<NodeId>& xs, const std::vector<U>& v) {
  U s = 0;
  for (NodeId x : xs) s = Scoap::sat_add(s, v[x]);
  return s;
}

}  // namespace

Scoap::Scoap(const Netlist& nl)
    : cc0_(nl.raw_size(), kScoapInf),
      cc1_(nl.raw_size(), kScoapInf),
      co_(nl.raw_size(), kScoapInf) {
  const std::vector<NodeId> order = nl.topo_order();

  // ---- controllability, forward pass ----
  auto forward_pass = [&](bool seed_dffs) {
    for (NodeId id : order) {
      const Node& n = nl.node(id);
      switch (n.type) {
        case GateType::Input:
          cc0_[id] = 1;
          cc1_[id] = 1;
          break;
        case GateType::Const0:
          cc0_[id] = 0;
          cc1_[id] = kScoapInf;
          break;
        case GateType::Const1:
          cc0_[id] = kScoapInf;
          cc1_[id] = 0;
          break;
        case GateType::Dff:
          // One clock of sequential depth on top of the data input; the
          // d-input may be later in the order, so seed conservatively (as if
          // the d-input were a primary input) and refine in the fixpoint
          // below.
          if (seed_dffs) {
            cc0_[id] = 2;
            cc1_[id] = 2;
          }
          break;
        case GateType::Buf:
          cc0_[id] = sat_add(cc0_[n.fanin[0]], 1);
          cc1_[id] = sat_add(cc1_[n.fanin[0]], 1);
          break;
        case GateType::Not:
          cc0_[id] = sat_add(cc1_[n.fanin[0]], 1);
          cc1_[id] = sat_add(cc0_[n.fanin[0]], 1);
          break;
        case GateType::And:
          cc1_[id] = sat_add(sum_of(n.fanin, cc1_), 1);
          cc0_[id] = sat_add(min_of(n.fanin, cc0_), 1);
          break;
        case GateType::Nand:
          cc0_[id] = sat_add(sum_of(n.fanin, cc1_), 1);
          cc1_[id] = sat_add(min_of(n.fanin, cc0_), 1);
          break;
        case GateType::Or:
          cc0_[id] = sat_add(sum_of(n.fanin, cc0_), 1);
          cc1_[id] = sat_add(min_of(n.fanin, cc1_), 1);
          break;
        case GateType::Nor:
          cc1_[id] = sat_add(sum_of(n.fanin, cc0_), 1);
          cc0_[id] = sat_add(min_of(n.fanin, cc1_), 1);
          break;
        case GateType::Xor:
        case GateType::Xnor: {
          // Cheapest parity assignment: for each polarity take, over all
          // fanins, the cheaper of (even #ones) patterns — approximated by
          // the standard two-input recurrence folded left.
          U c0 = cc0_[n.fanin[0]];
          U c1 = cc1_[n.fanin[0]];
          for (std::size_t i = 1; i < n.fanin.size(); ++i) {
            const U a0 = c0, a1 = c1;
            const U b0 = cc0_[n.fanin[i]], b1 = cc1_[n.fanin[i]];
            c0 = std::min(sat_add(a0, b0), sat_add(a1, b1));
            c1 = std::min(sat_add(a0, b1), sat_add(a1, b0));
          }
          if (n.type == GateType::Xnor) std::swap(c0, c1);
          cc0_[id] = sat_add(c0, 1);
          cc1_[id] = sat_add(c1, 1);
          break;
        }
        case GateType::Mux: {
          const U s0 = cc0_[n.fanin[0]], s1 = cc1_[n.fanin[0]];
          const U a0 = cc0_[n.fanin[1]], a1 = cc1_[n.fanin[1]];
          const U b0 = cc0_[n.fanin[2]], b1 = cc1_[n.fanin[2]];
          cc0_[id] = sat_add(std::min(sat_add(s0, a0), sat_add(s1, b0)), 1);
          cc1_[id] = sat_add(std::min(sat_add(s0, a1), sat_add(s1, b1)), 1);
          break;
        }
      }
    }
  };
  forward_pass(/*seed_dffs=*/true);

  // ---- DFF controllability fixpoint ----
  // Replace each DFF seed with the cost of its d-input plus one clock of
  // depth, then re-propagate; each round resolves one more level of
  // sequential depth (mirroring SignalProb's damped DFF iteration). The
  // iteration count is bounded because feedback loops (q' = NOT q) never
  // stabilise; truncation leaves a finite cost that *under*-estimates flops
  // deeper than the cap (or inside divergent loops), which only flattens
  // the ranking among the very deepest state bits.
  if (!nl.dffs().empty()) {
    const std::size_t max_iters =
        std::min<std::size_t>(nl.dffs().size() + 1, 64);
    for (std::size_t it = 0; it < max_iters; ++it) {
      bool changed = false;
      for (NodeId q : nl.dffs()) {
        const NodeId d = nl.node(q).fanin[0];
        const U n0 = sat_add(cc0_[d], 1);
        const U n1 = sat_add(cc1_[d], 1);
        if (n0 != cc0_[q] || n1 != cc1_[q]) {
          cc0_[q] = n0;
          cc1_[q] = n1;
          changed = true;
        }
      }
      if (!changed) break;
      forward_pass(/*seed_dffs=*/false);
    }
  }

  // ---- observability, backward pass ----
  for (NodeId po : nl.outputs()) co_[po] = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    const Node& n = nl.node(id);
    // Propagate from this gate's output to each of its inputs (PIs receive
    // observability from their readers like any other net).
    for (std::size_t i = 0; i < n.fanin.size(); ++i) {
      const NodeId in = n.fanin[i];
      U through = kScoapInf;
      switch (n.type) {
        case GateType::Buf:
        case GateType::Not:
          through = sat_add(co_[id], 1);
          break;
        case GateType::And:
        case GateType::Nand: {
          U side = 0;  // all other inputs non-controlling (1)
          for (std::size_t j = 0; j < n.fanin.size(); ++j) {
            if (j != i) side = sat_add(side, cc1_[n.fanin[j]]);
          }
          through = sat_add(sat_add(co_[id], side), 1);
          break;
        }
        case GateType::Or:
        case GateType::Nor: {
          U side = 0;  // all other inputs non-controlling (0)
          for (std::size_t j = 0; j < n.fanin.size(); ++j) {
            if (j != i) side = sat_add(side, cc0_[n.fanin[j]]);
          }
          through = sat_add(sat_add(co_[id], side), 1);
          break;
        }
        case GateType::Xor:
        case GateType::Xnor: {
          U side = 0;  // pin the other inputs to their cheaper value
          for (std::size_t j = 0; j < n.fanin.size(); ++j) {
            if (j != i) {
              side = sat_add(side, std::min(cc0_[n.fanin[j]], cc1_[n.fanin[j]]));
            }
          }
          through = sat_add(sat_add(co_[id], side), 1);
          break;
        }
        case GateType::Mux: {
          if (i == 0) {
            // Select observable when the two data inputs differ; cheapest
            // differing assignment.
            const U diff = std::min(
                sat_add(cc0_[n.fanin[1]], cc1_[n.fanin[2]]),
                sat_add(cc1_[n.fanin[1]], cc0_[n.fanin[2]]));
            through = sat_add(sat_add(co_[id], diff), 1);
          } else {
            // Data input observable when the select routes it through.
            const U sel = i == 1 ? cc0_[n.fanin[0]] : cc1_[n.fanin[0]];
            through = sat_add(sat_add(co_[id], sel), 1);
          }
          break;
        }
        case GateType::Dff:
          through = sat_add(co_[id], 1);  // one clock of depth
          break;
        default:
          break;
      }
      co_[in] = std::min(co_[in], through);
    }
  }
}

}  // namespace tz
