// c6288-class: WxW array multipliers. The real c6288 is a 2406-gate
// ripple-carry array of 240 full/half adders over 256 partial products; we
// rebuild the same schoolbook array with NAND-decomposed XORs (the c6288
// cell style), which lands in the same gate-count class and reproduces its
// signature structure: very deep carry chains and partial-product AND rows
// whose one-probability (0.25 and shrinking along the carry diagonals)
// drifts far from 0.5 — the stress shape for signal-probability analysis,
// ATPG and the TrojanZero flow engines. The width is a parameter: W=16 is
// the c6288 reproduction, W=96 is the ~110k-gate EvalPlan scale workload
// (gate count grows as ~12 W^2).
#include <stdexcept>
#include <string>

#include "gen/builder.hpp"
#include "gen/circuits.hpp"

namespace tz {
namespace {

/// XOR from four NANDs: x ^ y = NAND(NAND(x, t), NAND(y, t)), t = NAND(x, y).
NodeId nand_xor(Builder& b, NodeId x, NodeId y) {
  const NodeId t = b.nand_(x, y);
  return b.nand_(b.nand_(x, t), b.nand_(y, t));
}

struct AddBit {
  NodeId sum;
  NodeId carry;
};

/// Full adder, c6288 cell style: two NAND-XOR stages plus a NAND majority.
/// sum = x ^ y ^ z, carry = NAND(NAND(x, y), NAND(x ^ y, z)).
AddBit full_add(Builder& b, NodeId x, NodeId y, NodeId z) {
  const NodeId p = nand_xor(b, x, y);
  const NodeId s = nand_xor(b, p, z);
  const NodeId c = b.nand_(b.nand_(x, y), b.nand_(p, z));
  return {s, c};
}

/// Half adder: NAND-XOR sum, AND carry.
AddBit half_add(Builder& b, NodeId x, NodeId y) {
  return {nand_xor(b, x, y), b.and_(x, y)};
}

Netlist gen_mult_array_named(int width, const std::string& name) {
  const int kW = width;
  Builder b(name);
  const Bus a = b.input_bus("a", kW);
  const Bus y = b.input_bus("b", kW);

  // Partial products pp[j][i] = a_i AND b_j, weight i + j.
  std::vector<Bus> pp(kW, Bus(kW));
  for (int j = 0; j < kW; ++j) {
    for (int i = 0; i < kW; ++i) {
      pp[j][i] = b.and_(a[i], y[j]);
    }
  }

  // Schoolbook array: accumulate row j into a running sum with a ripple of
  // half/full adders per row — the c6288 topology (no Wallace compression),
  // which is what produces its famously deep carry chains.
  Bus acc = pp[0];  // weights 0 .. kW-1
  Bus product;
  product.reserve(2 * kW);
  for (int j = 1; j < kW; ++j) {
    // acc holds weights j-1 upward; its lowest bit is a final product bit.
    product.push_back(acc[0]);
    Bus next(kW);
    NodeId carry = kNoNode;
    for (int i = 0; i < kW; ++i) {
      // Add pp[j][i] (weight j+i) to acc[i+1] (same weight) plus the ripple.
      if (i + 1 < static_cast<int>(acc.size())) {
        const AddBit r = carry == kNoNode
                             ? half_add(b, acc[i + 1], pp[j][i])
                             : full_add(b, acc[i + 1], pp[j][i], carry);
        next[i] = r.sum;
        carry = r.carry;
      } else {
        // Top bit of the first row: no accumulator bit at this weight yet.
        const AddBit r = half_add(b, pp[j][i], carry);
        next[i] = r.sum;
        carry = r.carry;
      }
    }
    next.push_back(carry);  // weight j + kW
    acc = std::move(next);
  }
  // acc holds weights kW-1 .. 2*kW-1 (kW+1 bits after the last row).
  for (NodeId bit : acc) product.push_back(bit);

  b.output_bus(product);
  Netlist nl = std::move(b).take();
  nl.check();
  return nl;
}

}  // namespace

Netlist gen_mult_array(int width) {
  if (width < 2 || width > 512) {
    throw std::invalid_argument("gen_mult_array: width must be in [2, 512]");
  }
  return gen_mult_array_named(width, "mult" + std::to_string(width));
}

Netlist gen_mult16() { return gen_mult_array_named(16, "c6288"); }

}  // namespace tz
