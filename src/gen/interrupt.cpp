// c432-class 27-channel interrupt controller with priority resolution.
//
// Three 9-line request buses A, B, C share nine channel-enable lines. Bus A
// has priority over B, B over C; within a bus, lower channel index wins.
// Outputs: one grant flag per bus plus a 4-bit encoded channel index of the
// winning request. Priority chains (AND of many inverted requests) provide
// the near-certain-0 nodes Algorithm 1 harvests.
#include "gen/builder.hpp"
#include "gen/circuits.hpp"

namespace tz {
namespace {

/// Masked requests for one bus and the per-channel "wins within bus" grants.
struct BusPriority {
  Bus grants;       // channel i wins within this bus
  NodeId any;       // some channel requests on this bus
};

BusPriority bus_priority(Builder& b, const Bus& req, const Bus& enable) {
  BusPriority out;
  Bus masked;
  for (std::size_t i = 0; i < req.size(); ++i) {
    masked.push_back(b.and_(req[i], enable[i]));
  }
  out.any = b.or_n(masked);
  for (std::size_t i = 0; i < masked.size(); ++i) {
    // grant_i = masked_i AND no higher-priority masked request.
    std::vector<NodeId> terms{masked[i]};
    for (std::size_t j = 0; j < i; ++j) terms.push_back(b.not_(masked[j]));
    out.grants.push_back(b.and_n(terms));
  }
  return out;
}

}  // namespace

Netlist gen_interrupt_controller() {
  Builder b("c432_int27");
  const Bus req_a = b.input_bus("A", 9);
  const Bus req_b = b.input_bus("B", 9);
  const Bus req_c = b.input_bus("C", 9);
  const Bus enable = b.input_bus("E", 9);

  const BusPriority pa = bus_priority(b, req_a, enable);
  const BusPriority pb = bus_priority(b, req_b, enable);
  const BusPriority pc = bus_priority(b, req_c, enable);

  // Bus-level priority: A beats B beats C.
  const NodeId grant_a = pa.any;
  const NodeId grant_b = b.and_(pb.any, b.not_(pa.any));
  const NodeId grant_c = b.and_n(std::vector<NodeId>{
      pc.any, b.not_(pa.any), b.not_(pb.any)});

  // Winning channel index: OR together the encoded index of the granted
  // channel on the winning bus.
  std::vector<NodeId> idx_bits[4];
  auto accumulate = [&](const BusPriority& p, NodeId bus_grant) {
    for (std::size_t ch = 0; ch < p.grants.size(); ++ch) {
      const NodeId active = b.and_(p.grants[ch], bus_grant);
      for (int bit = 0; bit < 4; ++bit) {
        if ((ch >> bit) & 1) idx_bits[bit].push_back(active);
      }
    }
  };
  accumulate(pa, grant_a);
  accumulate(pb, grant_b);
  accumulate(pc, grant_c);

  // Hazard-cover redundancy: conservative two-level synthesis keeps
  // consensus terms to suppress static hazards. OR(x, y, x&y) is logically
  // OR(x, y), so these AND terms are absorbed — untestable stuck-at sites,
  // exactly the famously redundant logic of the real c432. They carry
  // near-zero signal probability and are the zero-risk expendable gates
  // Algorithm 1 harvests.
  for (auto& bits : idx_bits) {
    const std::size_t n = bits.size();
    for (std::size_t k = 0; k + 2 < n && k < 9; k += 3) {
      // OR(x, y, z, x&y&z) == OR(x, y, z): the 3-input consensus cover.
      const NodeId cover = b.gate(
          GateType::And, {bits[k], bits[k + 1], bits[k + 2]});
      // A second absorbed level models the deeper redundancy pockets of the
      // real c432 (OR(x, c) with c = x&y&z&e is still absorbed).
      bits.push_back(b.and_(cover, enable[k % 9]));
      bits.push_back(cover);
    }
  }
  b.output(grant_a);
  b.output(grant_b);
  b.output(grant_c);
  for (auto& bits : idx_bits) {
    b.output(bits.empty() ? b.netlist().const_node(false) : b.or_n(bits));
  }
  b.netlist().check();
  return std::move(b).take();
}

}  // namespace tz
