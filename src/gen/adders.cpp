#include <span>
#include <stdexcept>

#include "gen/builder.hpp"

namespace tz {

NodeId Builder::reduce(GateType t, std::span<const NodeId> xs, int max_arity) {
  if (xs.empty()) throw std::invalid_argument("reduce: empty operand list");
  if (xs.size() == 1) return xs[0];
  std::vector<NodeId> layer(xs.begin(), xs.end());
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i < layer.size(); i += max_arity) {
      const std::size_t n = std::min<std::size_t>(max_arity, layer.size() - i);
      if (n == 1) {
        next.push_back(layer[i]);
      } else {
        next.push_back(gate(t, std::span<const NodeId>(layer.data() + i, n)));
      }
    }
    layer = std::move(next);
  }
  return layer[0];
}

NodeId Builder::decode_term(std::span<const NodeId> bus, unsigned value) {
  std::vector<NodeId> terms;
  terms.reserve(bus.size());
  for (std::size_t i = 0; i < bus.size(); ++i) {
    const bool want_one = (value >> i) & 1;
    terms.push_back(want_one ? bus[i] : not_(bus[i]));
  }
  return and_n(terms);
}

AdderResult full_adder(Builder& b, NodeId x, NodeId y, NodeId cin) {
  const NodeId p = b.xor_(x, y);
  const NodeId s = b.xor_(p, cin);
  const NodeId g = b.and_(x, y);
  const NodeId pc = b.and_(p, cin);
  const NodeId c = b.or_(g, pc);
  return {{s}, c};
}

AdderResult ripple_adder(Builder& b, const Bus& a, const Bus& bb, NodeId cin) {
  if (a.size() != bb.size()) throw std::invalid_argument("adder: width");
  AdderResult r;
  NodeId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    AdderResult bit = full_adder(b, a[i], bb[i], carry);
    r.sum.push_back(bit.sum[0]);
    carry = bit.carry_out;
  }
  r.carry_out = carry;
  return r;
}

AdderResult subtractor(Builder& b, const Bus& a, const Bus& bb) {
  Bus nb;
  nb.reserve(bb.size());
  for (NodeId x : bb) nb.push_back(b.not_(x));
  const NodeId one = b.netlist().const_node(true);
  return ripple_adder(b, a, nb, one);
}

NodeId equals(Builder& b, const Bus& a, const Bus& bb) {
  if (a.size() != bb.size()) throw std::invalid_argument("equals: width");
  std::vector<NodeId> eq;
  eq.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) eq.push_back(b.xnor_(a[i], bb[i]));
  return b.and_n(eq);
}

Bus mux_bus(Builder& b, NodeId sel, const Bus& a, const Bus& bb) {
  if (a.size() != bb.size()) throw std::invalid_argument("mux_bus: width");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(b.mux(sel, a[i], bb[i]));
  return out;
}

}  // namespace tz
