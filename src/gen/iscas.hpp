// Benchmark registry: the five Table I circuits plus the real ISCAS c17.
//
// Each entry carries the paper's reported reference values so bench binaries
// and EXPERIMENTS.md can print paper-vs-measured rows side by side.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace tz {

/// One row of the paper's Table I.
struct BenchmarkSpec {
  std::string name;       ///< ISCAS85 name (c432, ...).
  int paper_gates = 0;    ///< Gate count reported in Table I.
  int paper_inputs = 0;   ///< Primary input count (I/P column).
  double pth = 0.0;       ///< Attacker threshold probability used.
  int paper_candidates = 0;  ///< |C|.
  int paper_expendable = 0;  ///< Eg.
  int counter_bits = 0;   ///< HT counter width.
  double paper_power_n = 0, paper_power_np = 0, paper_power_npp = 0;  // µW
  double paper_area_n = 0, paper_area_np = 0, paper_area_npp = 0;     // GE
  double paper_pft = 0;   ///< Trigger probability under random testing.
};

/// Table I rows, in paper order.
const std::vector<BenchmarkSpec>& iscas85_specs();

/// Find a spec by name; throws std::out_of_range when unknown.
const BenchmarkSpec& spec_for(const std::string& name);

/// Instantiate the functional reproduction of a benchmark by name
/// (c432, c499, c880, c1908, c3540, c17).
Netlist make_benchmark(const std::string& name);

/// The genuine ISCAS c17 netlist (6 NAND gates), parsed from its .bench text.
Netlist gen_c17();

}  // namespace tz
