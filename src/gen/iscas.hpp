// Benchmark registry: the five Table I circuits plus the real ISCAS c17.
//
// Each entry carries the paper's reported reference values so bench binaries
// and EXPERIMENTS.md can print paper-vs-measured rows side by side.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace tz {

/// One row of the paper's Table I.
struct BenchmarkSpec {
  std::string name;       ///< ISCAS85 name (c432, ...).
  int paper_gates = 0;    ///< Gate count reported in Table I.
  int paper_inputs = 0;   ///< Primary input count (I/P column).
  double pth = 0.0;       ///< Attacker threshold probability used.
  int paper_candidates = 0;  ///< |C|.
  int paper_expendable = 0;  ///< Eg.
  int counter_bits = 0;   ///< HT counter width.
  double paper_power_n = 0, paper_power_np = 0, paper_power_npp = 0;  // µW
  double paper_area_n = 0, paper_area_np = 0, paper_area_npp = 0;     // GE
  double paper_pft = 0;   ///< Trigger probability under random testing.
};

/// Table I rows, in paper order.
const std::vector<BenchmarkSpec>& iscas85_specs();

/// Find a spec by name; throws std::out_of_range when unknown.
const BenchmarkSpec& spec_for(const std::string& name);

/// Instantiate the functional reproduction of a benchmark by name
/// (c432, c499, c880, c1908, c3540, c17), or one of the scalable
/// large-circuit families (see gen/circuits.hpp):
///   "mult<W>"          WxW schoolbook array multiplier (~12 W^2 gates)
///   "wallace<W>"       WxW Wallace-tree multiplier (~7 W^2 gates)
///   "aluecc<W>x<S>"    S chained W-bit ALU/ECC stages
///   "rand<N>k"         fixed-seed random DAG with N*1000 gates
/// Every netlist goes through the same synthesis-clean pipeline
/// (constant folding, dead-gate sweep, compact); throws std::out_of_range
/// on unknown names and std::invalid_argument on out-of-range parameters.
Netlist make_benchmark(const std::string& name);

/// One scalable large-circuit workload: a make_benchmark name plus the gate
/// count the instantiated netlist is expected to land near (pre-measured,
/// +-15% after the dead-gate sweep) — the registry the 100k-gate tests,
/// benches and the CI smoke iterate over.
struct LargeCircuitSpec {
  std::string name;        ///< make_benchmark name ("mult96", ...).
  int approx_gates = 0;    ///< Expected combinational gate count.
};

/// The curated large workloads, smallest first (~10k .. ~120k gates).
const std::vector<LargeCircuitSpec>& large_circuit_specs();

/// The genuine ISCAS c17 netlist (6 NAND gates), parsed from its .bench text.
Netlist gen_c17();

}  // namespace tz
