// Structural netlist builder.
//
// Thin fluent layer over Netlist used by the circuit generators: automatic
// unique naming, n-ary gate helpers that decompose into library arities, and
// bus utilities. All generators in src/gen/ are deterministic functions of
// their parameters, so every experiment is exactly reproducible.
#pragma once

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace tz {

using Bus = std::vector<NodeId>;

class Builder {
 public:
  explicit Builder(std::string circuit_name) : nl_(std::move(circuit_name)) {}

  Netlist take() && { return std::move(nl_); }
  Netlist& netlist() { return nl_; }

  NodeId input(const std::string& name) { return nl_.add_input(name); }

  Bus input_bus(const std::string& prefix, int width) {
    Bus b;
    b.reserve(width);
    for (int i = 0; i < width; ++i) {
      b.push_back(input(prefix + std::to_string(i)));
    }
    return b;
  }

  void output(NodeId id) { nl_.mark_output(id); }
  void output_bus(const Bus& b) {
    for (NodeId id : b) nl_.mark_output(id);
  }

  NodeId gate(GateType t, std::span<const NodeId> fanin) {
    return nl_.add_gate(t, fresh(std::string(to_string(t))), fanin);
  }
  NodeId gate(GateType t, std::initializer_list<NodeId> fanin) {
    return gate(t, std::span<const NodeId>(fanin.begin(), fanin.size()));
  }

  NodeId not_(NodeId a) { return gate(GateType::Not, {a}); }
  NodeId buf(NodeId a) { return gate(GateType::Buf, {a}); }
  NodeId and_(NodeId a, NodeId b) { return gate(GateType::And, {a, b}); }
  NodeId or_(NodeId a, NodeId b) { return gate(GateType::Or, {a, b}); }
  NodeId nand_(NodeId a, NodeId b) { return gate(GateType::Nand, {a, b}); }
  NodeId nor_(NodeId a, NodeId b) { return gate(GateType::Nor, {a, b}); }
  NodeId xor_(NodeId a, NodeId b) { return gate(GateType::Xor, {a, b}); }
  NodeId xnor_(NodeId a, NodeId b) { return gate(GateType::Xnor, {a, b}); }
  NodeId mux(NodeId sel, NodeId a, NodeId b) {
    return gate(GateType::Mux, {sel, a, b});
  }
  NodeId dff(NodeId d) { return gate(GateType::Dff, {d}); }

  /// N-ary reduction built from gates of at most `max_arity` inputs.
  NodeId reduce(GateType t, std::span<const NodeId> xs, int max_arity = 4);
  NodeId and_n(std::span<const NodeId> xs) { return reduce(GateType::And, xs); }
  NodeId or_n(std::span<const NodeId> xs) { return reduce(GateType::Or, xs); }
  NodeId xor_n(std::span<const NodeId> xs) { return reduce(GateType::Xor, xs); }

  /// Wide AND where input i is inverted when mask bit i is 0 — the classic
  /// one-hot decode term (rare node when the bus is near-uniform).
  NodeId decode_term(std::span<const NodeId> bus, unsigned value);

 private:
  std::string fresh(const std::string& base) {
    return base + "_" + std::to_string(counter_++);
  }

  Netlist nl_;
  unsigned counter_ = 0;
};

// ---- shared arithmetic blocks (defined in adders.cpp) ----

struct AdderResult {
  Bus sum;
  NodeId carry_out = kNoNode;
};

/// sum = a + b + cin, ripple-carry, |a| == |b|.
AdderResult ripple_adder(Builder& b, const Bus& a, const Bus& bb, NodeId cin);

/// One-bit full adder (returns {sum, carry}).
AdderResult full_adder(Builder& b, NodeId x, NodeId y, NodeId cin);

/// Two's-complement subtractor built on the adder: a - b.
AdderResult subtractor(Builder& b, const Bus& a, const Bus& bb);

/// Equality comparator over two buses.
NodeId equals(Builder& b, const Bus& a, const Bus& bb);

/// Bitwise mux between two buses.
Bus mux_bus(Builder& b, NodeId sel, const Bus& a, const Bus& bb);

}  // namespace tz
