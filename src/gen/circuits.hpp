// ISCAS85-class benchmark circuit generators.
//
// The original ISCAS85 netlist files are not redistributable in this offline
// environment, so each benchmark is rebuilt as a structural design of the
// circuit's documented *function* with matching primary-I/O profile and a
// comparable gate count (see DESIGN.md, substitution table). The functional
// structure — wide decodes, deep parity trees, priority chains — is what
// produces the skewed signal probabilities TrojanZero exploits, and it is
// faithfully present here.
#pragma once

#include "netlist/netlist.hpp"

namespace tz {

/// c432-class: 27-channel interrupt controller with priority resolution.
/// 36 inputs (27 requests in three 9-bit buses + 9 enables), 7 outputs.
Netlist gen_interrupt_controller();

/// c499-class: 32-bit single-error-correcting (SEC) decoder. 41 inputs
/// (32 data + 8 check + 1 correction enable), 32 outputs.
Netlist gen_sec32();

/// c880-class: 8-bit ALU with ripple carry, logic unit, wide mode decodes
/// and parity. 60 inputs, 26 outputs.
Netlist gen_alu8();

/// c1908-class: 16-bit SEC/DED (single-error-correct, double-error-detect)
/// with deep syndrome logic. 33 inputs, 25 outputs.
Netlist gen_secded16();

/// c3540-class: 8-bit ALU with BCD-correct stage, barrel shifter, partial
/// multiplier array and wide control decode. 50 inputs, 22 outputs.
Netlist gen_alu_bcd();

/// c6288-class: 16x16 schoolbook array multiplier with NAND-decomposed
/// adder cells (>2k gates, the flow-engine stress benchmark). 32 inputs,
/// 32 outputs.
Netlist gen_mult16();

}  // namespace tz
