// ISCAS85-class benchmark circuit generators.
//
// The original ISCAS85 netlist files are not redistributable in this offline
// environment, so each benchmark is rebuilt as a structural design of the
// circuit's documented *function* with matching primary-I/O profile and a
// comparable gate count (see DESIGN.md, substitution table). The functional
// structure — wide decodes, deep parity trees, priority chains — is what
// produces the skewed signal probabilities TrojanZero exploits, and it is
// faithfully present here.
#pragma once

#include "netlist/netlist.hpp"

namespace tz {

/// c432-class: 27-channel interrupt controller with priority resolution.
/// 36 inputs (27 requests in three 9-bit buses + 9 enables), 7 outputs.
Netlist gen_interrupt_controller();

/// c499-class: 32-bit single-error-correcting (SEC) decoder. 41 inputs
/// (32 data + 8 check + 1 correction enable), 32 outputs.
Netlist gen_sec32();

/// c880-class: 8-bit ALU with ripple carry, logic unit, wide mode decodes
/// and parity. 60 inputs, 26 outputs.
Netlist gen_alu8();

/// c1908-class: 16-bit SEC/DED (single-error-correct, double-error-detect)
/// with deep syndrome logic. 33 inputs, 25 outputs.
Netlist gen_secded16();

/// c3540-class: 8-bit ALU with BCD-correct stage, barrel shifter, partial
/// multiplier array and wide control decode. 50 inputs, 22 outputs.
Netlist gen_alu_bcd();

/// c6288-class: 16x16 schoolbook array multiplier with NAND-decomposed
/// adder cells (>2k gates, the flow-engine stress benchmark). 32 inputs,
/// 32 outputs.
Netlist gen_mult16();

// ---- scalable large-circuit generators (10k .. 500k gates) ----
//
// The Table-I reproductions top out at ~2.8k gates; these generators produce
// the netlists two orders of magnitude bigger that the SoA EvalPlan and the
// stripe-major value layout are built for. All are deterministic functions
// of their parameters. Registered by name via make_benchmark
// ("mult<W>", "wallace<W>", "aluecc<W>x<S>", "rand<G>k" — see gen/iscas.hpp).

/// WxW schoolbook array multiplier in the c6288 NAND cell style (deep carry
/// chains, skewed partial-product probabilities). ~12*W^2 gates: W=16 is
/// exactly the c6288-class circuit, W=96 lands at ~100k gates.
/// 2W inputs, 2W outputs. Throws std::invalid_argument unless 2 <= W <= 512.
Netlist gen_mult_array(int width);

/// WxW Wallace-tree multiplier: 3:2 compressor layers over the partial-
/// product columns, then one final carry ripple — the shallow counterpart to
/// the array multiplier (~9.5*W^2 gates, O(log W) compression depth).
/// 2W inputs, 2W outputs. Throws std::invalid_argument unless 2 <= W <= 512.
Netlist gen_wallace_mult(int width);

/// Chain of S ALU/ECC stages over a W-bit accumulator: each stage adds a
/// rotated key bus (ripple carry chained into the next stage), computes a
/// logic arm, folds a Hamming-style parity syndrome of the sum back in and
/// selects per-bit via MUX — a deep, wide pipeline-shaped block where every
/// gate sits in the final accumulator's cone. ~(8W + W*log2(W)/2) gates per
/// stage; W=64, S=160 lands at ~100k gates. 2W+4 inputs, W+1 outputs.
/// Throws std::invalid_argument unless 2 <= W <= 1024 and 1 <= S <= 4096.
Netlist gen_alu_ecc_chain(int width, int stages);

}  // namespace tz
