// ALU benchmark generators (c880 / c3540 class).
#include "gen/builder.hpp"
#include "gen/circuits.hpp"

namespace tz {
namespace {

/// Per-bit logic unit: returns {AND, OR, XOR} of the operands.
struct LogicUnit {
  Bus and_r, or_r, xor_r;
};

LogicUnit logic_unit(Builder& b, const Bus& a, const Bus& bb) {
  LogicUnit u;
  for (std::size_t i = 0; i < a.size(); ++i) {
    u.and_r.push_back(b.and_(a[i], bb[i]));
    u.or_r.push_back(b.or_(a[i], bb[i]));
    u.xor_r.push_back(b.xor_(a[i], bb[i]));
  }
  return u;
}

/// 4-way result select from two select lines.
Bus select4(Builder& b, NodeId s0, NodeId s1, const Bus& r0, const Bus& r1,
            const Bus& r2, const Bus& r3) {
  const Bus lo = mux_bus(b, s0, r0, r1);
  const Bus hi = mux_bus(b, s0, r2, r3);
  return mux_bus(b, s1, lo, hi);
}

/// BCD correction for one nibble: add 6 when value > 9 or nibble carry set.
Bus bcd_correct(Builder& b, const Bus& nibble, NodeId carry, NodeId enable,
                NodeId* carry_out) {
  // detect = n3 & (n2 | n1)  (value in 10..15) or incoming carry.
  const NodeId gt9 = b.and_(nibble[3], b.or_(nibble[2], nibble[1]));
  const NodeId need = b.and_(b.or_(gt9, carry), enable);
  // Add 0110 when needed.
  const NodeId zero = b.netlist().const_node(false);
  const Bus six{zero, need, need, zero};
  const AdderResult r = ripple_adder(b, nibble, six, zero);
  if (carry_out) *carry_out = b.or_(carry, b.and_(gt9, enable));
  return r.sum;
}

}  // namespace

Netlist gen_alu8() {
  Builder b("c880_alu8");
  const Bus a = b.input_bus("A", 8);
  const Bus bb = b.input_bus("B", 8);
  const Bus c = b.input_bus("C", 8);
  const Bus mask = b.input_bus("MASK", 8);
  const Bus mode = b.input_bus("MODE", 8);
  const Bus status = b.input_bus("ST", 8);
  const Bus sel = b.input_bus("SEL", 4);
  const NodeId cin = b.input("CIN");  // the c880 carry-in (paper's N261 role)
  const Bus en = b.input_bus("EN", 3);
  const Bus te = b.input_bus("TE", 4);

  // Arithmetic core.
  const AdderResult add = ripple_adder(b, a, bb, cin);
  const AdderResult sub = subtractor(b, a, bb);
  const LogicUnit lu = logic_unit(b, a, bb);

  // Masked third-operand path (c880 processes a second operand pair).
  Bus cm;
  for (int i = 0; i < 8; ++i) cm.push_back(b.and_(c[i], mask[i]));
  const AdderResult addc = ripple_adder(b, cm, c, sel[3]);

  // Result select.
  const Bus r_arith = mux_bus(b, sel[3], add.sum, sub.sum);
  const Bus r_main = select4(b, sel[0], sel[1], r_arith, lu.and_r, lu.or_r,
                             lu.xor_r);
  const Bus r_final = mux_bus(b, sel[2], r_main, addc.sum);

  // Wide mode decodes: AND terms across the full 8-bit MODE word. With
  // near-uniform inputs these nodes sit at P1 = 2^-8, i.e. P0 = 0.996 — the
  // c880 candidates of Fig. 5 (P0 = 0.997).
  std::vector<NodeId> decode_flags;
  for (unsigned v : {0xFFu, 0x00u, 0xA5u, 0x5Au, 0x0Fu, 0xF0u}) {
    decode_flags.push_back(b.decode_term(mode, v));
  }
  // Decoded modes gate an auxiliary status update (keeps decodes observable).
  Bus stx;
  for (int i = 0; i < 8; ++i) {
    const NodeId gated = b.and_(status[i], decode_flags[i % 6]);
    stx.push_back(b.xor_(gated, r_final[i]));
  }

  // Status priority encoder: lowest asserted status line wins (the c880
  // interrupt-style section); gives a chain of increasingly-rare AND terms.
  std::vector<NodeId> prio;
  for (int i = 0; i < 8; ++i) {
    std::vector<NodeId> terms{status[i]};
    for (int j = 0; j < i; ++j) terms.push_back(b.not_(status[j]));
    prio.push_back(b.and_n(terms));
  }
  std::vector<NodeId> prio_idx_bits[3];
  for (int ch = 0; ch < 8; ++ch) {
    for (int bit = 0; bit < 3; ++bit) {
      if ((ch >> bit) & 1) prio_idx_bits[bit].push_back(prio[ch]);
    }
  }

  // Flags.
  const NodeId parity = b.xor_n(r_final);
  const NodeId par_a = b.xor_n(a);
  const NodeId par_b = b.xor_n(bb);
  const NodeId par_in = b.xor_(par_a, par_b);
  const NodeId zero_flag = b.not_(b.or_n(r_final));
  const NodeId neg_flag = b.buf(r_final[7]);
  const NodeId ovf = b.xor_(add.carry_out, b.xor_(a[7], bb[7]));
  const NodeId a_eq_b = equals(b, a, bb);
  const NodeId test_any = b.and_(b.or_n(te), b.and_n(en));

  b.output_bus(r_final);   // 8
  b.output_bus(stx);       // 8
  b.output(add.carry_out);
  b.output(b.xor_(par_in, parity));
  b.output(zero_flag);
  b.output(neg_flag);
  b.output(ovf);
  b.output(b.or_(a_eq_b, test_any));
  b.output(addc.carry_out);
  for (auto& bits : prio_idx_bits) b.output(b.or_n(bits));  // 3 — total 26
  b.netlist().check();
  return std::move(b).take();
}

Netlist gen_alu_bcd() {
  Builder b("c3540_alu_bcd");
  const Bus a = b.input_bus("A", 8);
  const Bus bb = b.input_bus("B", 8);
  const Bus d = b.input_bus("D", 8);
  const Bus m = b.input_bus("M", 8);
  const Bus ctrl = b.input_bus("CTRL", 8);
  const Bus sel = b.input_bus("SEL", 4);
  const Bus sh = b.input_bus("SH", 3);
  const NodeId cin = b.input("CIN");
  const NodeId bcd_en = b.input("BCD");
  const NodeId en = b.input("EN");

  // --- ALU slice 1: A op B ---
  const AdderResult add1 = ripple_adder(b, a, bb, cin);
  const AdderResult sub1 = subtractor(b, a, bb);
  const LogicUnit lu1 = logic_unit(b, a, bb);
  const Bus alu1 = select4(b, sel[0], sel[1], add1.sum, sub1.sum, lu1.and_r,
                           lu1.xor_r);

  // --- BCD correction on both nibbles of the adder result ---
  const Bus lo_nib{add1.sum[0], add1.sum[1], add1.sum[2], add1.sum[3]};
  const Bus hi_nib{add1.sum[4], add1.sum[5], add1.sum[6], add1.sum[7]};
  NodeId bcd_carry = kNoNode;
  const Bus lo_bcd = bcd_correct(b, lo_nib, b.netlist().const_node(false),
                                 bcd_en, &bcd_carry);
  NodeId bcd_carry2 = kNoNode;
  const Bus hi_bcd = bcd_correct(b, hi_nib, bcd_carry, bcd_en, &bcd_carry2);
  Bus bcd_result = lo_bcd;
  bcd_result.insert(bcd_result.end(), hi_bcd.begin(), hi_bcd.end());

  // --- ALU slice 2: D op M (second operand pair) ---
  const AdderResult add2 = ripple_adder(b, d, m, b.netlist().const_node(false));
  const LogicUnit lu2 = logic_unit(b, d, m);
  const Bus alu2 = select4(b, sel[2], sel[3], add2.sum, lu2.or_r, lu2.and_r,
                           lu2.xor_r);

  // --- Full 8x8 partial-product multiplier array over A and M ---
  const NodeId mzero = b.netlist().const_node(false);
  Bus prod(16, mzero);
  for (int i = 0; i < 8; ++i) prod[i] = b.and_(a[i], m[0]);
  for (int row = 1; row < 8; ++row) {
    Bus shifted(16, mzero);
    for (int i = 0; i < 8; ++i) shifted[i + row] = b.and_(a[i], m[row]);
    const AdderResult s = ripple_adder(b, prod, shifted, mzero);
    prod = s.sum;
  }
  Bus acc(prod.begin(), prod.begin() + 8);
  Bus prod_hi(prod.begin() + 8, prod.end());
  const NodeId spill_parity = b.xor_n(prod_hi);

  // --- Barrel shifter on ALU1 result ---
  Bus shift_stage = alu1;
  const NodeId zero = b.netlist().const_node(false);
  for (int stage = 0; stage < 3; ++stage) {
    const int amount = 1 << stage;
    Bus next;
    for (int i = 0; i < 8; ++i) {
      const NodeId from = i + amount < 8 ? shift_stage[i + amount] : zero;
      next.push_back(b.mux(sh[stage], shift_stage[i], from));
    }
    shift_stage = next;
  }

  // --- Wide control decode bank (16 one-hot terms over 8 control lines) ---
  std::vector<NodeId> decode;
  for (unsigned v = 0; v < 16; ++v) {
    decode.push_back(b.decode_term(ctrl, v * 17u));  // spread across 0..255
  }
  // Decode-gated auxiliary parity network keeps every decode observable.
  std::vector<NodeId> gated;
  for (int i = 0; i < 16; ++i) {
    gated.push_back(b.and_(decode[i], alu2[i % 8]));
  }
  const NodeId decode_parity = b.xor_n(gated);

  // --- Final result path ---
  const Bus with_bcd = mux_bus(b, bcd_en, alu1, bcd_result);
  const Bus with_shift = mux_bus(b, sh[0], with_bcd, shift_stage);
  Bus result;
  for (int i = 0; i < 8; ++i) {
    result.push_back(b.mux(en, with_shift[i], acc[i]));
  }

  // --- Flags ---
  const NodeId carry = b.or_(add1.carry_out, bcd_carry2);
  const NodeId zero_flag = b.not_(b.or_n(result));
  const NodeId neg = b.buf(result[7]);
  const NodeId par = b.xor_n(result);
  const NodeId cmp = equals(b, a, bb);
  const NodeId alu2_any = b.or_n(alu2);

  b.output_bus(result);   // 8
  b.output_bus(Bus{alu2[0], alu2[1], alu2[2], alu2[3],
                   alu2[4], alu2[5], alu2[6], alu2[7]});  // 8
  b.output(carry);
  b.output(zero_flag);
  b.output(neg);
  b.output(par);
  b.output(cmp);
  b.output(b.and_(b.xor_(decode_parity, spill_parity), alu2_any));  // 22nd
  b.netlist().check();
  return std::move(b).take();
}

}  // namespace tz
