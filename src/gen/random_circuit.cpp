#include "gen/random_circuit.hpp"

#include <random>
#include <stdexcept>

namespace tz {

Netlist random_circuit(const RandomCircuitSpec& spec) {
  // An empty input pool would make the fanin draw below sample from
  // uniform_int_distribution(0, -1) — undefined behaviour — and a gateless
  // "circuit" has no observable logic; reject both up front.
  if (spec.num_inputs <= 0) {
    throw std::invalid_argument("random_circuit: num_inputs must be positive");
  }
  if (spec.num_gates <= 0) {
    throw std::invalid_argument("random_circuit: num_gates must be positive");
  }
  if (spec.num_outputs <= 0) {
    throw std::invalid_argument("random_circuit: num_outputs must be positive");
  }
  if (spec.max_fanin < 2) {
    throw std::invalid_argument("random_circuit: max_fanin must be >= 2");
  }
  std::mt19937_64 rng(spec.seed);
  Netlist nl("rand_" + std::to_string(spec.seed));
  std::vector<NodeId> pool;
  pool.reserve(static_cast<std::size_t>(spec.num_inputs) +
               static_cast<std::size_t>(spec.num_gates));
  for (int i = 0; i < spec.num_inputs; ++i) {
    pool.push_back(nl.add_input("in" + std::to_string(i)));
  }
  static constexpr GateType kTypes[] = {
      GateType::And, GateType::Nand, GateType::Or,  GateType::Nor,
      GateType::Xor, GateType::Xnor, GateType::Not, GateType::Buf,
  };
  std::uniform_int_distribution<int> type_dist(0, 7);
  std::vector<NodeId> fanin;
  for (int g = 0; g < spec.num_gates; ++g) {
    const GateType t = kTypes[type_dist(rng)];
    const Arity ar = arity_of(t);
    int fanin_count = ar.min;
    if (ar.max != ar.min) {
      std::uniform_int_distribution<int> fd(ar.min,
                                            std::max(ar.min, spec.max_fanin));
      fanin_count = fd(rng);
    }
    // More fanins than distinct pool nodes can never be deduplicated, but
    // the arity floor is a hard legality bound — never clamp below it (a
    // 1-input pool keeps its unavoidable duplicate on the very first gates).
    fanin_count = std::max<int>(
        ar.min, std::min<int>(fanin_count, static_cast<int>(pool.size())));
    fanin.clear();
    // Bias toward recent nodes to get realistic logic depth.
    std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
    for (int i = 0; i < fanin_count; ++i) {
      std::size_t idx = std::max(pick(rng), pick(rng));
      // Redraw duplicate picks: a gate reading the same node twice collapses
      // (XOR(a,a) ≡ 0, AND(a,a) ≡ a, ...) and skews rare-value statistics.
      // The retry cap keeps termination deterministic even in degenerate
      // pools; past it, probe linearly for the nearest unused node.
      const auto used = [&](std::size_t c) {
        for (NodeId f : fanin) {
          if (f == pool[c]) return true;
        }
        return false;
      };
      if (static_cast<std::size_t>(i) < pool.size()) {
        for (int tries = 0; used(idx) && tries < 64; ++tries) {
          idx = std::max(pick(rng), pick(rng));
        }
        while (used(idx)) idx = (idx + pool.size() - 1) % pool.size();
      }
      fanin.push_back(pool[idx]);
    }
    pool.push_back(nl.add_gate(t, "g" + std::to_string(g), fanin));
  }
  const int outs = std::min<int>(spec.num_outputs,
                                 static_cast<int>(pool.size()));
  for (int i = 0; i < outs; ++i) {
    nl.mark_output(pool[pool.size() - 1 - i]);
  }
  nl.check();
  return nl;
}

}  // namespace tz
