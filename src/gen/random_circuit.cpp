#include "gen/random_circuit.hpp"

#include <random>

namespace tz {

Netlist random_circuit(const RandomCircuitSpec& spec) {
  std::mt19937_64 rng(spec.seed);
  Netlist nl("rand_" + std::to_string(spec.seed));
  std::vector<NodeId> pool;
  for (int i = 0; i < spec.num_inputs; ++i) {
    pool.push_back(nl.add_input("in" + std::to_string(i)));
  }
  static constexpr GateType kTypes[] = {
      GateType::And, GateType::Nand, GateType::Or,  GateType::Nor,
      GateType::Xor, GateType::Xnor, GateType::Not, GateType::Buf,
  };
  std::uniform_int_distribution<int> type_dist(0, 7);
  for (int g = 0; g < spec.num_gates; ++g) {
    const GateType t = kTypes[type_dist(rng)];
    const Arity ar = arity_of(t);
    int fanin_count = ar.min;
    if (ar.max != ar.min) {
      std::uniform_int_distribution<int> fd(ar.min,
                                            std::max(ar.min, spec.max_fanin));
      fanin_count = fd(rng);
    }
    std::vector<NodeId> fanin;
    // Bias toward recent nodes to get realistic logic depth.
    std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
    for (int i = 0; i < fanin_count; ++i) {
      std::size_t idx = std::max(pick(rng), pick(rng));
      fanin.push_back(pool[idx]);
    }
    pool.push_back(nl.add_gate(t, "g" + std::to_string(g), fanin));
  }
  const int outs = std::min<int>(spec.num_outputs,
                                 static_cast<int>(pool.size()));
  for (int i = 0; i < outs; ++i) {
    nl.mark_output(pool[pool.size() - 1 - i]);
  }
  nl.check();
  return nl;
}

}  // namespace tz
