// Deterministic random DAG circuits for property-based testing.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace tz {

struct RandomCircuitSpec {
  int num_inputs = 8;
  int num_gates = 50;
  int num_outputs = 4;
  int max_fanin = 3;
  std::uint64_t seed = 1;
};

/// A random combinational netlist over the full gate alphabet (minus MUX and
/// DFF unless enabled). Every gate reads previously created nodes, so the
/// result is acyclic by construction; outputs are drawn from the last gates
/// so most of the circuit is observable. Fanin picks are recency-biased for
/// realistic depth and deduplicated per gate (no gate reads the same node
/// twice, so XOR/XNOR gates never collapse to constants). Throws
/// std::invalid_argument on non-positive inputs/gates/outputs or
/// max_fanin < 2. Deterministic for a given spec: same seed, same netlist.
Netlist random_circuit(const RandomCircuitSpec& spec);

}  // namespace tz
