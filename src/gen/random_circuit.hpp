// Deterministic random DAG circuits for property-based testing.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace tz {

struct RandomCircuitSpec {
  int num_inputs = 8;
  int num_gates = 50;
  int num_outputs = 4;
  int max_fanin = 3;
  std::uint64_t seed = 1;
};

/// A random combinational netlist over the full gate alphabet (minus MUX and
/// DFF unless enabled). Every gate reads previously created nodes, so the
/// result is acyclic by construction; outputs are drawn from the last gates
/// so most of the circuit is observable.
Netlist random_circuit(const RandomCircuitSpec& spec);

}  // namespace tz
