// Error-correcting-code benchmark generators (c499 / c1908 class).
#include "gen/builder.hpp"
#include "gen/circuits.hpp"

namespace tz {
namespace {

/// Hamming-style parity groups for `data_bits` data lines and `k` syndrome
/// bits: data bit d participates in group g when bit g of (d+1)'s expanded
/// position is set. Deterministic and decodable.
bool in_group(int data_bit, int group) {
  // Position of data bit in a Hamming code layout: skip power-of-two slots.
  int pos = 0, placed = -1;
  while (placed < data_bit) {
    ++pos;
    if ((pos & (pos - 1)) != 0) ++placed;  // non-power-of-two slot
  }
  return (pos >> group) & 1;
}

}  // namespace

Netlist gen_sec32() {
  Builder b("c499_sec32");
  const Bus data = b.input_bus("D", 32);
  const Bus check = b.input_bus("K", 8);
  const NodeId enable = b.input("EN");

  // Syndrome: parity of each data group XOR the stored check bit.
  constexpr int kSyn = 8;
  Bus syndrome;
  for (int g = 0; g < kSyn; ++g) {
    std::vector<NodeId> members;
    for (int d = 0; d < 32; ++d) {
      if (in_group(d, g % 6)) members.push_back(data[d]);
    }
    // Two interleaved layers widen the tree like c499's 5-level XOR fabric.
    if (g >= 6) {
      for (int d = g - 6; d < 32; d += 3) members.push_back(data[d]);
    }
    members.push_back(check[g]);
    syndrome.push_back(b.xor_n(members));
  }

  // Error indicator: syndrome non-zero AND correction enabled.
  const NodeId any_error = b.or_n(syndrome);
  const NodeId correcting = b.and_(any_error, enable);

  // Correction decode: one wide AND term per data bit. These terms are the
  // rare nodes (P1 ~= 2^-8) whose complements exceed the paper's Pth=0.993.
  for (int d = 0; d < 32; ++d) {
    unsigned code = 0;
    for (int g = 0; g < 6; ++g) {
      if (in_group(d, g)) code |= 1u << g;
    }
    // Upper two syndrome bits act as parity confirmation for this half.
    if (d % 2 == 0) code |= 1u << 6;
    if ((d / 2) % 2 == 0) code |= 1u << 7;
    const NodeId term = b.decode_term(syndrome, code);
    const NodeId flip = b.and_(term, correcting);
    const NodeId corrected = b.xor_(data[d], flip);
    b.output(corrected);
  }
  b.netlist().check();
  return std::move(b).take();
}

Netlist gen_secded16() {
  Builder b("c1908_secded16");
  const Bus data = b.input_bus("D", 16);
  const Bus check = b.input_bus("K", 6);
  const NodeId parity_in = b.input("P");
  const Bus mode = b.input_bus("M", 10);

  // Six syndrome bits over Hamming groups, built as deep two-input trees.
  Bus syndrome;
  for (int g = 0; g < 6; ++g) {
    std::vector<NodeId> members;
    for (int d = 0; d < 16; ++d) {
      if (in_group(d, g % 5)) members.push_back(data[d]);
    }
    if (g == 5) {
      for (int d = 0; d < 16; d += 2) members.push_back(data[d]);
    }
    members.push_back(check[g]);
    syndrome.push_back(b.reduce(GateType::Xor, members, 2));
  }
  // Overall parity across data, checks and the stored parity bit.
  std::vector<NodeId> all;
  all.insert(all.end(), data.begin(), data.end());
  all.insert(all.end(), check.begin(), check.end());
  all.push_back(parity_in);
  const NodeId overall = b.reduce(GateType::Xor, all, 2);

  const NodeId syn_nonzero = b.or_n(syndrome);
  // SEC/DED classification:
  //   single error  : syndrome != 0 and overall parity flipped
  //   double error  : syndrome != 0 and overall parity clean
  const NodeId single_err = b.and_(syn_nonzero, overall);
  const NodeId double_err = b.and_(syn_nonzero, b.not_(overall));

  // Mode validation: the 10-bit mode bus must match armed patterns for the
  // corrector to run — wide decodes giving very rare internal nodes, the
  // analogue of c1908's Pth = 0.9986 candidates (P0 = 1 - 2^-10 = 0.9990).
  std::vector<NodeId> armed_terms;
  for (unsigned v : {0x3FFu, 0x000u, 0x155u}) {
    armed_terms.push_back(b.decode_term(mode, v));
  }
  const NodeId armed = b.or_n(armed_terms);
  const NodeId correcting = b.and_(single_err, armed);

  // Correction decode bank.
  Bus corrected;
  for (int d = 0; d < 16; ++d) {
    unsigned code = 0;
    for (int g = 0; g < 5; ++g) {
      if (in_group(d, g)) code |= 1u << g;
    }
    if (d % 2 == 0) code |= 1u << 5;
    const NodeId term = b.decode_term(syndrome, code);
    const NodeId flip = b.and_(term, correcting);
    corrected.push_back(b.xor_(data[d], flip));
  }
  b.output_bus(corrected);  // 16

  // Scrub pipeline: recompute the syndrome over the *corrected* word and
  // verify it cancels — the self-checking bank that gives c1908 its ~2x
  // logic volume over c499.
  Bus resyndrome;
  for (int g = 0; g < 6; ++g) {
    std::vector<NodeId> members;
    for (int d = 0; d < 16; ++d) {
      if (in_group(d, g % 5)) members.push_back(corrected[d]);
    }
    if (g == 5) {
      for (int d = 0; d < 16; d += 2) members.push_back(corrected[d]);
    }
    members.push_back(check[g]);
    resyndrome.push_back(b.reduce(GateType::Xor, members, 2));
  }
  std::vector<NodeId> resyn_clear;
  for (NodeId s : resyndrome) resyn_clear.push_back(b.not_(s));
  // The scrub result must be clean unless an uncorrectable double error hit.
  const NodeId scrub_ok = b.or_(b.and_n(resyn_clear), double_err);

  // Double-error localization hints: a second wide-decode bank over the
  // 7-bit {syndrome, overall} word (deepest rare nodes in the circuit).
  std::vector<NodeId> hint_bus = syndrome;
  hint_bus.push_back(overall);
  std::vector<NodeId> hints;
  for (unsigned v = 0; v < 16; ++v) {
    hints.push_back(b.decode_term(hint_bus, (v * 37u) & 0x7Fu));
  }
  std::vector<NodeId> gated_hints;
  for (int i = 0; i < 16; ++i) {
    gated_hints.push_back(b.and_(hints[i], double_err));
  }
  const NodeId hint_parity = b.xor_n(gated_hints);

  // Recomputed check bits for write-back.
  for (int g = 0; g < 6; ++g) {
    std::vector<NodeId> members;
    for (int d = 0; d < 16; ++d) {
      if (in_group(d, g % 5)) members.push_back(corrected[d]);
    }
    members.push_back(g == 0 ? hint_parity : single_err);
    b.output(b.reduce(GateType::Xor, members, 2));  // 6
  }
  b.output(single_err);
  b.output(double_err);
  b.output(b.and_(b.nor_(single_err, double_err), scrub_ok));  // 25 outputs
  b.netlist().check();
  return std::move(b).take();
}

}  // namespace tz
