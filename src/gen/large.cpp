// Scalable large-circuit generators (10k .. 500k gates): the Wallace-tree
// multiplier and the chained ALU/ECC pipeline. Together with the
// parameterized array multiplier (multiplier.cpp) and the fixed-seed random
// DAGs (random_circuit.cpp) these provide the 100k-gate-class workloads the
// stripe-major EvalPlan layout is benchmarked on. Both are deterministic
// functions of their parameters, and every gate they emit sits in the cone
// of some primary output (provably-zero overflow signals are folded into the
// MSB via XOR identity instead of being left dangling).
#include <stdexcept>
#include <string>
#include <vector>

#include "gen/builder.hpp"
#include "gen/circuits.hpp"

namespace tz {
namespace {

/// Half adder in AOI style: sum = x ^ y, carry = x & y.
AdderResult half_adder(Builder& b, NodeId x, NodeId y) {
  AdderResult r;
  r.sum.push_back(b.xor_(x, y));
  r.carry_out = b.and_(x, y);
  return r;
}

}  // namespace

Netlist gen_wallace_mult(int width) {
  if (width < 2 || width > 512) {
    throw std::invalid_argument("gen_wallace_mult: width must be in [2, 512]");
  }
  const int w = width;
  Builder b("wallace" + std::to_string(w));
  const Bus a = b.input_bus("a", w);
  const Bus y = b.input_bus("b", w);

  // Column stacks: col[c] holds every not-yet-summed signal of weight 2^c.
  // One extra column catches structural carries out of weight 2w-1; the
  // product is < 2^(2w) so those signals are provably zero.
  std::vector<Bus> col(2 * w + 1);
  for (int j = 0; j < w; ++j) {
    for (int i = 0; i < w; ++i) {
      col[i + j].push_back(b.and_(a[i], y[j]));
    }
  }

  // 3:2 compression layers: every layer replaces triples with a full adder
  // (sum stays, carry moves up one column) and pairs with a half adder,
  // shrinking the tallest column by ~2/3 per layer — O(log w) layers total.
  auto needs_layer = [&] {
    for (const Bus& c : col) {
      if (c.size() > 2) return true;
    }
    return false;
  };
  while (needs_layer()) {
    std::vector<Bus> next(col.size());
    for (std::size_t c = 0; c < col.size(); ++c) {
      const Bus& v = col[c];
      std::size_t i = 0;
      for (; i + 3 <= v.size(); i += 3) {
        const AdderResult fa = full_adder(b, v[i], v[i + 1], v[i + 2]);
        next[c].push_back(fa.sum[0]);
        next[std::min(c + 1, col.size() - 1)].push_back(fa.carry_out);
      }
      if (i + 2 == v.size()) {
        const AdderResult ha = half_adder(b, v[i], v[i + 1]);
        next[c].push_back(ha.sum[0]);
        next[std::min(c + 1, col.size() - 1)].push_back(ha.carry_out);
      } else if (i + 1 == v.size()) {
        next[c].push_back(v[i]);
      }
    }
    col = std::move(next);
  }

  // Final carry-propagate ripple over the two remaining rows.
  Bus product;
  product.reserve(2 * w);
  NodeId carry = kNoNode;
  for (int c = 0; c < 2 * w; ++c) {
    Bus v = col[c];
    if (carry != kNoNode) v.push_back(carry);
    carry = kNoNode;
    NodeId bit;
    if (v.empty()) {
      // Unreachable for w >= 2 (every weight below 2w is expressible), but
      // keep the generator total: an explicit tie-low bit.
      bit = b.netlist().const_node(false);
    } else if (v.size() == 1) {
      bit = v[0];
    } else if (v.size() == 2) {
      const AdderResult ha = half_adder(b, v[0], v[1]);
      bit = ha.sum[0];
      carry = ha.carry_out;
    } else {
      const AdderResult fa = full_adder(b, v[0], v[1], v[2]);
      bit = fa.sum[0];
      carry = fa.carry_out;
    }
    product.push_back(bit);
  }
  // Weight-2w signals (final ripple carry + anything compression pushed into
  // the guard column) are provably zero; XOR them into the MSB — a functional
  // identity that keeps their whole cones observable.
  Bus zeros = col[2 * w];
  if (carry != kNoNode) zeros.push_back(carry);
  for (NodeId z : zeros) product.back() = b.xor_(product.back(), z);

  b.output_bus(product);
  Netlist nl = std::move(b).take();
  nl.check();
  return nl;
}

Netlist gen_alu_ecc_chain(int width, int stages) {
  if (width < 2 || width > 1024) {
    throw std::invalid_argument("gen_alu_ecc_chain: width must be in [2, 1024]");
  }
  if (stages < 1 || stages > 4096) {
    throw std::invalid_argument(
        "gen_alu_ecc_chain: stages must be in [1, 4096]");
  }
  const int w = width;
  Builder b("aluecc" + std::to_string(w) + "x" + std::to_string(stages));
  Bus acc = b.input_bus("a", w);
  const Bus key = b.input_bus("k", w);
  // A small select bus reused cyclically across stages keeps the input count
  // independent of depth (the pipeline shape: narrow control, wide data).
  const Bus sel = b.input_bus("s", 4);

  // Syndrome group count: ceil(log2(w)) Hamming parity positions.
  int groups = 0;
  while ((1 << groups) < w) ++groups;

  NodeId carry = sel[0];  // stage 0 carry-in; later stages chain carries
  for (int st = 0; st < stages; ++st) {
    // Rotate the key by the stage index so no two stages compute the same
    // function (and the constant folder can't collapse the chain).
    Bus rk(w);
    for (int i = 0; i < w; ++i) rk[i] = key[(i + st) % w];

    // Arithmetic arm: acc + rot(key), carry chained from the previous stage
    // so every stage's carry-out is observable through the next stage.
    const AdderResult sum = ripple_adder(b, acc, rk, carry);
    carry = sum.carry_out;

    // Logic arm: acc ^ rot(key).
    Bus lx(w);
    for (int i = 0; i < w; ++i) lx[i] = b.xor_(acc[i], rk[i]);

    // Hamming-style syndrome over the sum: parity group g covers every bit
    // whose index has bit g set — the deep XOR trees of the ECC benchmarks.
    Bus syn(groups);
    Bus members;
    for (int g = 0; g < groups; ++g) {
      members.clear();
      for (int i = 0; i < w; ++i) {
        if ((i >> g) & 1) members.push_back(sum.sum[i]);
      }
      syn[g] = b.xor_n(members);
    }

    // Mix: select per-bit between the arms, then fold the syndrome back in.
    const NodeId pick = sel[(st + 1) % static_cast<int>(sel.size())];
    Bus next(w);
    for (int i = 0; i < w; ++i) {
      next[i] = b.xor_(b.mux(pick, sum.sum[i], lx[i]), syn[i % groups]);
    }
    acc = std::move(next);
  }

  b.output_bus(acc);
  b.output(carry);
  Netlist nl = std::move(b).take();
  nl.check();
  return nl;
}

}  // namespace tz
