#include "gen/iscas.hpp"

#include <stdexcept>

#include "gen/circuits.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/rewrite.hpp"

namespace tz {

const std::vector<BenchmarkSpec>& iscas85_specs() {
  static const std::vector<BenchmarkSpec> specs = {
      // name    gates  I/P   Pth    |C|  Eg  ctr   P(N)  P(N') P(N'')  A(N)  A(N') A(N'')  Pft
      {"c432", 160, 36, 0.975, 8, 5, 2, 35.6, 20.83, 27.7, 186.8, 136.0,
       163.0, 0.9e-4},
      {"c499", 202, 41, 0.993, 12, 7, 3, 181.9, 173.4, 177.4, 463.4, 396.4,
       451.5, 6.1e-6},
      {"c880", 383, 60, 0.992, 27, 11, 3, 77.2, 70.2, 76.4, 365.4, 329.7,
       362.8, 8.0e-6},
      {"c1908", 880, 33, 0.9986, 43, 45, 5, 160.9, 151.6, 157.4, 454.7, 446.4,
       453.6, 6.1e-8},
      {"c3540", 1669, 50, 0.992, 41, 57, 5, 248.5, 187.2, 241.7, 986.8, 944.3,
       980.0, 2.0e-6},
      // c6288 is not a Table I row (the paper stops at c3540); it is carried
      // as the >2k-gate stress benchmark for the flow engines, so the paper_*
      // reference columns are zero. Gates/inputs are the real c6288 profile.
      {"c6288", 2406, 32, 0.992, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0},
  };
  return specs;
}

const BenchmarkSpec& spec_for(const std::string& name) {
  for (const BenchmarkSpec& s : iscas85_specs()) {
    if (s.name == name) return s;
  }
  throw std::out_of_range("unknown benchmark '" + name + "'");
}

Netlist make_benchmark(const std::string& name) {
  Netlist nl = [&] {
    if (name == "c17") return gen_c17();
    if (name == "c432") return gen_interrupt_controller();
    if (name == "c499") return gen_sec32();
    if (name == "c880") return gen_alu8();
    if (name == "c1908") return gen_secded16();
    if (name == "c3540") return gen_alu_bcd();
    if (name == "c6288") return gen_mult16();
    throw std::out_of_range("unknown benchmark '" + name + "'");
  }();
  // The paper's circuits come out of Design Compiler; fold the constants the
  // structural builders introduce so the HT-free baseline is synthesis-clean.
  propagate_constants(nl);
  nl.sweep_dead_gates();
  nl.check();
  return nl.compact();
}

Netlist gen_c17() {
  // The genuine ISCAS c17 netlist (public domain, 6 NAND gates).
  static const char* kC17 = R"(
# c17 — smallest ISCAS85 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
  return read_bench_string(kC17, "c17");
}

}  // namespace tz
