#include "gen/iscas.hpp"

#include <charconv>
#include <optional>
#include <stdexcept>
#include <string_view>

#include "gen/circuits.hpp"
#include "gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/rewrite.hpp"

namespace tz {
namespace {

/// Parse the integer tail of `name` after `prefix`; nullopt unless the whole
/// remainder is digits ("mult96" -> 96, "mult96x" -> nullopt).
std::optional<int> parse_suffix(const std::string& name,
                                std::string_view prefix) {
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix)) {
    return std::nullopt;
  }
  int v = 0;
  const char* first = name.data() + prefix.size();
  const char* last = name.data() + name.size();
  const auto [p, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || p != last) return std::nullopt;
  return v;
}

/// The scalable families: "mult<W>", "wallace<W>", "aluecc<W>x<S>",
/// "rand<N>k". Returns nullopt when `name` is not a large-circuit name (the
/// classic registry handles it then).
std::optional<Netlist> make_large_circuit(const std::string& name) {
  if (const auto w = parse_suffix(name, "mult")) return gen_mult_array(*w);
  if (const auto w = parse_suffix(name, "wallace")) {
    return gen_wallace_mult(*w);
  }
  if (name.starts_with("aluecc")) {
    const auto x = name.find('x', 6);
    if (x == std::string::npos) return std::nullopt;
    const auto w = parse_suffix(name.substr(0, x), "aluecc");
    const auto s = parse_suffix(name, name.substr(0, x + 1));
    if (!w || !s) return std::nullopt;
    return gen_alu_ecc_chain(*w, *s);
  }
  if (name.starts_with("rand") && name.ends_with("k")) {
    const auto kilo = parse_suffix(name.substr(0, name.size() - 1), "rand");
    if (!kilo) return std::nullopt;
    if (*kilo < 1 || *kilo > 500) {
      throw std::invalid_argument("make_benchmark: rand size must be 1k-500k");
    }
    RandomCircuitSpec spec;
    spec.num_inputs = 256;
    spec.num_gates = *kilo * 1000;
    spec.num_outputs = 128;
    spec.max_fanin = 4;
    spec.seed = 0xC0FFEE + static_cast<std::uint64_t>(*kilo);
    Netlist nl = random_circuit(spec);
    // random_circuit only marks the newest gates as outputs; promote every
    // remaining fanout-free gate too so the advertised gate count survives
    // the dead-gate sweep (dangling nets become observation points).
    for (NodeId id : nl.live_nodes()) {
      const Node& n = nl.node(id);
      if (is_combinational(n.type) && n.fanout.empty() && !nl.is_output(id)) {
        nl.mark_output(id);
      }
    }
    nl.set_name(name);
    return nl;
  }
  return std::nullopt;
}

}  // namespace

const std::vector<BenchmarkSpec>& iscas85_specs() {
  static const std::vector<BenchmarkSpec> specs = {
      // name    gates  I/P   Pth    |C|  Eg  ctr   P(N)  P(N') P(N'')  A(N)  A(N') A(N'')  Pft
      {"c432", 160, 36, 0.975, 8, 5, 2, 35.6, 20.83, 27.7, 186.8, 136.0,
       163.0, 0.9e-4},
      {"c499", 202, 41, 0.993, 12, 7, 3, 181.9, 173.4, 177.4, 463.4, 396.4,
       451.5, 6.1e-6},
      {"c880", 383, 60, 0.992, 27, 11, 3, 77.2, 70.2, 76.4, 365.4, 329.7,
       362.8, 8.0e-6},
      {"c1908", 880, 33, 0.9986, 43, 45, 5, 160.9, 151.6, 157.4, 454.7, 446.4,
       453.6, 6.1e-8},
      {"c3540", 1669, 50, 0.992, 41, 57, 5, 248.5, 187.2, 241.7, 986.8, 944.3,
       980.0, 2.0e-6},
      // c6288 is not a Table I row (the paper stops at c3540); it is carried
      // as the >2k-gate stress benchmark for the flow engines, so the paper_*
      // reference columns are zero. Gates/inputs are the real c6288 profile.
      {"c6288", 2406, 32, 0.992, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0},
  };
  return specs;
}

const BenchmarkSpec& spec_for(const std::string& name) {
  for (const BenchmarkSpec& s : iscas85_specs()) {
    if (s.name == name) return s;
  }
  throw std::out_of_range("unknown benchmark '" + name + "'");
}

const std::vector<LargeCircuitSpec>& large_circuit_specs() {
  // Gate counts measured post-sweep; see gen_test.cpp LargeCircuits suite.
  static const std::vector<LargeCircuitSpec> specs = {
      {"mult32", 11744},      // array multiplier, ~12 W^2
      {"wallace64", 38840},   // Wallace tree, ~9.5 W^2
      {"aluecc64x160", 92480},   // 160 chained 64-bit ALU/ECC stages
      {"rand100k", 100000},   // fixed-seed random DAG
      {"mult96", 108960},     // the 100k-gate array-multiplier proof circuit
  };
  return specs;
}

Netlist make_benchmark(const std::string& name) {
  Netlist nl = [&] {
    if (name == "c17") return gen_c17();
    if (name == "c432") return gen_interrupt_controller();
    if (name == "c499") return gen_sec32();
    if (name == "c880") return gen_alu8();
    if (name == "c1908") return gen_secded16();
    if (name == "c3540") return gen_alu_bcd();
    if (name == "c6288") return gen_mult16();
    if (auto large = make_large_circuit(name)) return std::move(*large);
    throw std::out_of_range("unknown benchmark '" + name + "'");
  }();
  // The paper's circuits come out of Design Compiler; fold the constants the
  // structural builders introduce so the HT-free baseline is synthesis-clean.
  propagate_constants(nl);
  nl.sweep_dead_gates();
  nl.check();
  return nl.compact();
}

Netlist gen_c17() {
  // The genuine ISCAS c17 netlist (public domain, 6 NAND gates).
  static const char* kC17 = R"(
# c17 — smallest ISCAS85 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
  return read_bench_string(kC17, "c17");
}

}  // namespace tz
