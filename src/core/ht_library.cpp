#include "core/ht_library.hpp"

#include <span>
#include <stdexcept>

namespace tz {

std::vector<TrojanDesc> default_ht_library() {
  return {
      {"cmp-trigger", 0, 4},
      {"counter-2bit", 2, 2},
      {"counter-3bit", 3, 2},
      {"counter-4bit", 4, 2},
      {"counter-5bit", 5, 2},
  };
}

TrojanDesc counter_trojan(int bits, int trigger_width) {
  if (bits == 0) return {"cmp-trigger", 0, trigger_width};
  return {"counter-" + std::to_string(bits) + "bit", bits, trigger_width};
}

InsertedHT build_trojan(Netlist& nl, const TrojanDesc& desc,
                        std::span<const NodeId> rare_nets, NodeId victim) {
  if (!nl.is_alive(victim) || nl.node(victim).fanout.empty()) {
    throw std::invalid_argument("build_trojan: victim must drive logic");
  }
  if (rare_nets.size() < static_cast<std::size_t>(desc.trigger_width)) {
    throw std::invalid_argument("build_trojan: not enough rare nets");
  }
  InsertedHT ht;
  ht.name = desc.name;
  ht.victim = victim;
  auto add = [&](GateType t, const std::string& base,
                 std::initializer_list<NodeId> fanin) {
    const NodeId id = nl.add_gate(t, nl.unique_name(base), fanin);
    ht.added_nodes.push_back(id);
    return id;
  };

  // Trigger: AND over the chosen rare nets (pairwise tree).
  std::vector<NodeId> layer(rare_nets.begin(),
                            rare_nets.begin() + desc.trigger_width);
  int t = 0;
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(add(GateType::And, "ht_trig" + std::to_string(t++),
                         {layer[i], layer[i + 1]}));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  ht.trigger_in = layer[0];

  if (desc.counter_bits == 0) {
    ht.fire = ht.trigger_in;
  } else {
    // Synchronous counter with enable: increments whenever the trigger is 1
    //   carry_0 = trigger;  d_i = q_i XOR carry_i;  carry_{i+1} = q_i AND c_i
    // The d-logic reads the DFF outputs, so the DFFs are created first with
    // a tie-cell placeholder d-input and relinked once the logic exists.
    std::vector<NodeId> q(desc.counter_bits);
    std::vector<NodeId> d(desc.counter_bits);
    const NodeId tie0 = nl.const_node(false);
    for (int i = 0; i < desc.counter_bits; ++i) {
      q[i] = add(GateType::Dff, "ht_q" + std::to_string(i), {tie0});
    }
    NodeId carry = ht.trigger_in;
    for (int i = 0; i < desc.counter_bits; ++i) {
      d[i] = add(GateType::Xor, "ht_d" + std::to_string(i), {q[i], carry});
      if (i + 1 < desc.counter_bits) {
        carry = add(GateType::And, "ht_c" + std::to_string(i), {q[i], carry});
      }
    }
    // Relink each DFF's d-input from the tie to the real next-state logic.
    for (int i = 0; i < desc.counter_bits; ++i) {
      nl.relink_fanin(q[i], 0, d[i]);
    }
    // Fire when the counter is saturated (all ones).
    NodeId full = q[0];
    for (int i = 1; i < desc.counter_bits; ++i) {
      full = add(GateType::And, "ht_full" + std::to_string(i), {full, q[i]});
    }
    ht.fire = full;
  }

  // Payload: S' = MUX(fire, S, ~S); rewire S's original readers to S'.
  const std::vector<NodeId> readers = nl.node(victim).fanout;
  const NodeId inv = add(GateType::Not, "ht_inv", {victim});
  const NodeId mux = add(GateType::Mux, "ht_payload", {ht.fire, victim, inv});
  for (NodeId r : readers) {
    for (std::size_t slot = 0; slot < nl.node(r).fanin.size(); ++slot) {
      if (nl.node(r).fanin[slot] == victim) nl.relink_fanin(r, slot, mux);
    }
  }
  // Transfer a primary-output marking of the victim to the payload.
  if (nl.is_output(victim)) nl.swap_output(victim, mux);
  ht.payload_mux = mux;
  nl.check();
  return ht;
}

NodeId add_dummy_gate(Netlist& nl, NodeId primary_input, GateType type,
                      const std::string& name_hint) {
  if (!nl.is_alive(primary_input)) {
    throw std::invalid_argument("add_dummy_gate: dead input");
  }
  if (type == GateType::Not || type == GateType::Buf) {
    return nl.add_gate(type, nl.unique_name(name_hint), {primary_input});
  }
  return nl.add_gate(type, nl.unique_name(name_hint),
                     {primary_input, primary_input});
}

}  // namespace tz
