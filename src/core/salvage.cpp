#include "core/salvage.hpp"

#include <algorithm>

#include "netlist/rewrite.hpp"

namespace tz {

SalvageResult salvage_power_area(const Netlist& original,
                                 const DefenderSuite& suite,
                                 const PowerModel& pm,
                                 const SalvageOptions& opt) {
  SalvageResult result;
  result.power_before = pm.analyze(original).totals;

  Netlist work = original.compact();
  const SignalProb sp(work);
  std::vector<Candidate> cands =
      find_candidates(work, sp, opt.pth, opt.include_outputs);
  result.candidates = cands.size();

  if (opt.order == SalvageOptions::Order::ByLeakage) {
    const CellLibrary& lib = pm.library();
    std::stable_sort(cands.begin(), cands.end(),
                     [&](const Candidate& a, const Candidate& b) {
                       return lib.leakage_nw(work.node(a.node)) >
                              lib.leakage_nw(work.node(b.node));
                     });
  }

  for (const Candidate& c : cands) {
    if (!work.is_alive(c.node)) continue;  // removed with an earlier cone
    const std::string name = work.node(c.node).name;
    // Plain copy keeps NodeIds stable so later candidates stay valid after a
    // revert (compact() would renumber them).
    Netlist snapshot = work;
    const TieResult tie = tie_to_constant(work, c.node, c.tie_value);
    if (functional_test(work, suite)) {
      result.accepted.push_back(
          {name, c.tie_value, c.probability, tie.gates_removed});
      result.expendable_gates += tie.gates_removed;
    } else {
      work = std::move(snapshot);  // revert (Algorithm 1 line 20)
      ++result.rejected;
    }
  }

  work = work.compact();
  result.power_after = pm.analyze(work).totals;
  result.modified = std::move(work);
  return result;
}

}  // namespace tz
