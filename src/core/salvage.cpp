#include "core/salvage.hpp"

#include "core/flow_engine.hpp"

namespace tz {

SalvageResult salvage_power_area(const Netlist& original,
                                 const DefenderSuite& suite,
                                 const PowerModel& pm,
                                 const SalvageOptions& opt) {
  return FlowEngine(original, suite, pm).salvage(opt);
}

}  // namespace tz
