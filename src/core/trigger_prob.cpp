#include "core/trigger_prob.hpp"

#include <cmath>
#include <cstdint>
#include <random>
#include <stdexcept>

#include "sim/simulator.hpp"

namespace tz {

double analytic_pft(double q, std::size_t test_length, int counter_bits) {
  // Saturation count in 64 bits: the old `(1 << counter_bits) - 1` computed
  // in int was undefined behaviour from counter_bits == 31 up.
  if (counter_bits < 0 || counter_bits > 63) {
    throw std::invalid_argument("analytic_pft: counter_bits must be in [0,63]");
  }
  if (q <= 0.0) return 0.0;
  if (q >= 1.0) return 1.0;
  const std::size_t L = test_length;
  const std::uint64_t need =
      counter_bits == 0 ? 1 : (std::uint64_t{1} << counter_bits) - 1;
  if (need > L) return 0.0;  // counter cannot saturate within the stream
  // P[X >= need] = 1 - sum_{k<need} C(L,k) q^k (1-q)^(L-k), in log space.
  double tail = 0.0;
  double log_comb = 0.0;  // log C(L,0)
  const double lq = std::log(q), l1q = std::log1p(-q);
  for (std::uint64_t k = 0; k < need; ++k) {
    if (k > 0) {
      log_comb += std::log(static_cast<double>(L - k + 1)) -
                  std::log(static_cast<double>(k));
    }
    tail += std::exp(log_comb + static_cast<double>(k) * lq +
                     static_cast<double>(L - k) * l1q);
  }
  return std::max(0.0, 1.0 - tail);
}

double monte_carlo_pft(const Netlist& infected, NodeId fire_node,
                       std::size_t test_length, std::size_t trials,
                       std::uint64_t seed) {
  if (!infected.is_alive(fire_node)) {
    throw std::invalid_argument("monte_carlo_pft: bad fire node");
  }
  if (trials == 0) {
    throw std::invalid_argument("monte_carlo_pft: zero trials");
  }
  std::mt19937_64 rng(seed);
  std::size_t hits = 0;
  std::vector<bool> in(infected.inputs().size());
  for (std::size_t t = 0; t < trials; ++t) {
    CycleSimulator cs(infected);
    bool fired = false;
    for (std::size_t cycle = 0; cycle < test_length && !fired; ++cycle) {
      for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng() & 1;
      cs.step(in);
      // Inspect the fire node after combinational settling: the payload was
      // live this cycle if fire evaluated to 1.
      fired = cs.value_of(fire_node);
    }
    if (fired) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

double sampled_untargeted_probability(const Netlist& original,
                                      const Netlist& modified,
                                      std::size_t samples,
                                      std::uint64_t seed) {
  if (samples == 0) {
    throw std::invalid_argument("sampled_untargeted_probability: zero samples");
  }
  const PatternSet ps =
      random_patterns(original.inputs().size(), samples, seed);
  const PatternSet a = BitSimulator(original).outputs(ps);
  const PatternSet b = BitSimulator(modified).outputs(ps);
  std::size_t diff = 0;
  for (std::size_t p = 0; p < samples; ++p) {
    for (std::size_t o = 0; o < a.num_signals(); ++o) {
      if (a.get(p, o) != b.get(p, o)) {
        ++diff;
        break;
      }
    }
  }
  return static_cast<double>(diff) / static_cast<double>(samples);
}

double exact_untargeted_probability(const Netlist& original,
                                    const Netlist& modified) {
  const std::size_t n = original.inputs().size();
  if (n > 20) {
    throw std::invalid_argument("exact_untargeted_probability: too wide");
  }
  const PatternSet ps = exhaustive_patterns(n);
  const PatternSet a = BitSimulator(original).outputs(ps);
  const PatternSet b = BitSimulator(modified).outputs(ps);
  std::size_t nu = 0;
  for (std::size_t p = 0; p < ps.num_patterns(); ++p) {
    for (std::size_t o = 0; o < a.num_signals(); ++o) {
      if (a.get(p, o) != b.get(p, o)) {
        ++nu;
        break;
      }
    }
  }
  return static_cast<double>(nu) /
         static_cast<double>(std::size_t{1} << n);
}

}  // namespace tz
