// Hardware-Trojan library.
//
// The paper's Algorithm 2 draws from a library {HT1..HTn}. The flagship
// design is the asynchronous-counter HT of Fig. 4 [Liu et al. 2011]: an
// n-bit counter advances whenever a trigger condition — an AND over
// rarely-activated nets — is observed; when the counter saturates, a MUX
// swaps the victim net S for its negation (the payload). We additionally
// provide purely combinational comparator-trigger variants.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace tz {

struct TrojanDesc {
  std::string name;
  int counter_bits = 0;   ///< 0 = combinational (comparator) trigger.
  int trigger_width = 4;  ///< Number of rare nets ANDed into the trigger.
};

/// The default library, ordered small to large (Algorithm 2 walks it).
std::vector<TrojanDesc> default_ht_library();

/// The counter size Table I uses for each benchmark.
TrojanDesc counter_trojan(int bits, int trigger_width = 2);

/// Handle to an HT embedded in a netlist.
struct InsertedHT {
  std::string name;
  std::vector<NodeId> added_nodes;  ///< Every cell the insertion created.
  NodeId trigger_in = kNoNode;      ///< AND of the rare trigger nets.
  NodeId fire = kNoNode;            ///< Payload-enable (counter full).
  NodeId payload_mux = kNoNode;     ///< MUX output now driving S's readers.
  NodeId victim = kNoNode;          ///< The original net S.
};

/// Embed `desc` into `nl`: trigger from `rare_nets` (first trigger_width
/// used), payload on `victim` (its readers are rewired to the MUX).
/// The victim must be a live non-output node with at least one reader.
InsertedHT build_trojan(Netlist& nl, const TrojanDesc& desc,
                        std::span<const NodeId> rare_nets, NodeId victim);

/// Dummy gate for power/area balancing (paper Sec. IV-4): a buffer reading a
/// primary input with its output unconnected. Returns the new node.
NodeId add_dummy_gate(Netlist& nl, NodeId primary_input, GateType type,
                      const std::string& name_hint);

}  // namespace tz
