// Trigger-probability analysis (Table I's Pft column and Eq. 1's Pu).
//
// Pft: probability that the counter HT's payload activates at least once
// while the defender streams L random test vectors. The trigger condition
// fires per cycle with probability q (product of the rare-net probabilities)
// and the n-bit counter must accumulate 2^n - 1 hits, so
//   Pft = P[ Binomial(L, q) >= 2^n - 1 ].
// Pu (Eq. 1): for untargeted HTs (the functional changes Algorithm 1 leaves
// behind), Pu = Nu / 2^I, estimated by sampling or computed exactly for
// small input counts.
#pragma once

#include <cstdint>

#include "core/insertion.hpp"
#include "netlist/netlist.hpp"

namespace tz {

/// Closed-form Pft as defined above. `q` in [0,1], L >= 0, counter_bits >= 0
/// (0 = combinational trigger: Pft = 1 - (1-q)^L).
double analytic_pft(double q, std::size_t test_length, int counter_bits);

/// Monte-Carlo Pft: stream `trials` random test sessions of `test_length`
/// cycles each through the infected circuit and count sessions in which the
/// HT fire signal asserted. Exact but slow; used to validate analytic_pft.
double monte_carlo_pft(const Netlist& infected, NodeId fire_node,
                       std::size_t test_length, std::size_t trials,
                       std::uint64_t seed);

/// Eq. 1 by sampling: fraction of `samples` random vectors on which the two
/// circuits' outputs differ (modified circuit N' vs HT-free N).
double sampled_untargeted_probability(const Netlist& original,
                                      const Netlist& modified,
                                      std::size_t samples, std::uint64_t seed);

/// Eq. 1 exactly (requires inputs <= 20): Nu / 2^n.
double exact_untargeted_probability(const Netlist& original,
                                    const Netlist& modified);

}  // namespace tz
