#include "core/insertion.hpp"

#include <algorithm>
#include <cmath>

namespace tz {

std::vector<NodeId> payload_locations(const Netlist& nl, std::size_t limit) {
  const std::vector<int> depth = nl.depths();
  std::vector<NodeId> cands;
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id)) continue;
    const Node& n = nl.node(id);
    if (!is_combinational(n.type) || is_const(n.type)) continue;
    if (n.fanout.empty() || nl.is_output(id)) continue;
    cands.push_back(id);
  }
  // Deep nets first: their fanout cone is small, which leaves most of the
  // circuit available as trigger sources (the payload must not loop through
  // its own trigger), yet a fired payload still corrupts primary outputs.
  std::stable_sort(cands.begin(), cands.end(), [&](NodeId a, NodeId b) {
    if (depth[a] != depth[b]) return depth[a] > depth[b];
    return nl.node(a).fanout.size() > nl.node(b).fanout.size();
  });
  if (cands.size() > limit) cands.resize(limit);
  return cands;
}

std::vector<NodeId> trigger_pool(const Netlist& nl, const SignalProb& sp,
                                 double rare_p1, NodeId victim) {
  // Exclude the victim's transitive fanout (payload rewiring must not create
  // a combinational loop through the trigger).
  std::vector<char> downstream(nl.raw_size(), 0);
  std::vector<NodeId> stack{victim};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (downstream[id]) continue;
    downstream[id] = 1;
    for (NodeId r : nl.node(id).fanout) stack.push_back(r);
  }
  std::vector<NodeId> pool;
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id) || downstream[id]) continue;
    const Node& n = nl.node(id);
    if (!is_combinational(n.type) || is_const(n.type)) continue;
    if (sp.p1(id) <= rare_p1) pool.push_back(id);
  }
  std::stable_sort(pool.begin(), pool.end(), [&](NodeId a, NodeId b) {
    return sp.p1(a) < sp.p1(b);
  });
  return pool;
}

namespace {

/// Greedy dummy-gate balancing: add unconnected-output gates until the
/// remaining total-power / leakage / area differentials all sit inside the
/// slack band. Two flavours are used: PI-fed dummies contribute dynamic
/// power, leakage and area; tie-fed dummies see no transitions and
/// contribute leakage and area only — the knob for topping up leakage when
/// the total-power budget is already tight (the paper's dummy gates "in
/// parallel to the primary inputs with outputs unconnected").
std::size_t balance_with_dummies(Netlist& nl, const PowerModel& pm,
                                 const PowerReport& threshold,
                                 const InsertionOptions& opt) {
  std::size_t added = 0;
  if (nl.inputs().empty()) return 0;
  struct MenuItem {
    GateType type;
    bool tie_fed;
  };
  // Two flavours, two deficits. Leakage is a component of total power, so
  // the deficits decompose: `dl` is leakage-shaped (fill with tie-fed
  // gates, which burn no dynamic power) and `dp - dl` is dynamic-shaped
  // (fill with PI-fed gates, which burn little leakage headroom per
  // microwatt). Picking the flavour by the dominant deficit avoids
  // saturating one cap while the other still has a visible gap — which is
  // what a two-feature detector like [12] would catch.
  static constexpr MenuItem kDynamicMenu[] = {
      {GateType::Buf, false}, {GateType::Xor, false}, {GateType::Not, false},
      {GateType::Xor, true},  {GateType::Nand, true}, {GateType::Not, true},
  };
  static constexpr MenuItem kLeakageMenu[] = {
      {GateType::Xor, true},  {GateType::Nand, true}, {GateType::Not, true},
      {GateType::Buf, false}, {GateType::Xor, false}, {GateType::Not, false},
  };
  while (added < opt.max_dummy_gates) {
    const PowerReport now = pm.analyze(nl).totals;
    const double dp = threshold.total_uw() - now.total_uw();
    const double dl = threshold.leakage_uw - now.leakage_uw;
    const double da = threshold.area_ge - now.area_ge;
    const bool power_ok = dp <= opt.power_slack_rel * threshold.total_uw();
    const bool leak_ok = dl <= opt.power_slack_rel * threshold.leakage_uw;
    const bool area_ok = da <= opt.area_slack_rel * threshold.area_ge;
    if (power_ok && leak_ok && area_ok) break;
    const bool want_dynamic =
        (dp - dl) > 0.5 * opt.power_slack_rel * threshold.total_uw();
    const auto& menu = want_dynamic ? kDynamicMenu : kLeakageMenu;
    bool placed = false;
    for (const MenuItem& item : menu) {
      Netlist trial = nl;
      const NodeId src = item.tie_fed
                             ? trial.const_node(false)
                             : trial.inputs()[added % trial.inputs().size()];
      add_dummy_gate(trial, src, item.type, "tz_dummy");
      const PowerReport after = pm.analyze(trial).totals;
      if (after.total_uw() <= threshold.total_uw() &&
          after.leakage_uw <= threshold.leakage_uw &&
          after.area_ge <= threshold.area_ge) {
        nl = std::move(trial);
        placed = true;
        break;
      }
    }
    if (!placed) break;  // every gate overshoots: differential already tiny
    ++added;
  }
  return added;
}

}  // namespace

InsertionResult insert_trojan(const Netlist& original,
                              const SalvageResult& salvaged,
                              const DefenderSuite& suite,
                              const PowerModel& pm,
                              const InsertionOptions& opt) {
  InsertionResult result;
  result.threshold = pm.analyze(original).totals;

  std::vector<TrojanDesc> library =
      opt.library.empty() ? default_ht_library() : opt.library;

  const Netlist& nprime = salvaged.modified;
  const SignalProb sp(nprime);
  const std::vector<NodeId> locations =
      payload_locations(nprime, opt.max_locations);

  for (const TrojanDesc& desc : library) {
    ++result.tried_hts;
    for (NodeId victim : locations) {
      ++result.tried_locations;
      const std::vector<NodeId> pool =
          trigger_pool(nprime, sp, opt.rare_p1, victim);
      if (pool.size() < static_cast<std::size_t>(desc.trigger_width)) {
        ++result.fail_build;
        continue;
      }

      Netlist work = nprime;  // ids shared with nprime's numbering
      InsertedHT ht;
      try {
        ht = build_trojan(work, desc, pool, victim);
      } catch (const std::exception&) {
        ++result.fail_build;
        continue;  // structural rejection (loop, arity, ...)
      }
      // Defender validation (Algorithm 2 line 3-7).
      if (!functional_test(work, suite)) {
        ++result.fail_test;
        continue;
      }

      // Power/area caps (lines 11-13); balance a negative differential.
      PowerReport p = pm.analyze(work).totals;
      if (p.total_uw() > result.threshold.total_uw() ||
          p.leakage_uw > result.threshold.leakage_uw * 1.02 ||
          p.area_ge > result.threshold.area_ge) {
        ++result.fail_caps;
        continue;  // this HT at this location breaks a cap -> next location
      }
      const std::size_t dummies =
          balance_with_dummies(work, pm, result.threshold, opt);
      p = pm.analyze(work).totals;

      result.success = true;
      result.infected = std::move(work);
      result.ht = ht;
      result.ht_desc = desc;
      result.ht_name = desc.name;
      result.victim_name = nprime.node(victim).name;
      result.dummy_gates = dummies;
      result.power = p;
      {
        // Analytic per-cycle trigger probability: product over trigger nets.
        double q = 1.0;
        int used = 0;
        for (NodeId r : pool) {
          if (used++ >= desc.trigger_width) break;
          q *= sp.p1(r);
        }
        result.trigger_p1 = q;
      }
      return result;
    }
  }
  return result;  // success = false
}

}  // namespace tz
