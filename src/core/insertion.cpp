#include "core/insertion.hpp"

#include <algorithm>

#include "core/flow_engine.hpp"

namespace tz {

std::vector<NodeId> payload_locations(const Netlist& nl, std::size_t limit) {
  const std::vector<int> depth = nl.depths();
  std::vector<NodeId> cands;
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id)) continue;
    const Node& n = nl.node(id);
    if (!is_combinational(n.type) || is_const(n.type)) continue;
    if (n.fanout.empty() || nl.is_output(id)) continue;
    cands.push_back(id);
  }
  // Deep nets first: their fanout cone is small, which leaves most of the
  // circuit available as trigger sources (the payload must not loop through
  // its own trigger), yet a fired payload still corrupts primary outputs.
  std::stable_sort(cands.begin(), cands.end(), [&](NodeId a, NodeId b) {
    if (depth[a] != depth[b]) return depth[a] > depth[b];
    return nl.node(a).fanout.size() > nl.node(b).fanout.size();
  });
  if (cands.size() > limit) cands.resize(limit);
  return cands;
}

std::vector<NodeId> rare_net_list(const Netlist& nl, const SignalProb& sp,
                                  double rare_p1) {
  std::vector<NodeId> pool;
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (!nl.is_alive(id)) continue;
    const Node& n = nl.node(id);
    if (!is_combinational(n.type) || is_const(n.type)) continue;
    if (sp.p1(id) <= rare_p1) pool.push_back(id);
  }
  std::stable_sort(pool.begin(), pool.end(), [&](NodeId a, NodeId b) {
    return sp.p1(a) < sp.p1(b);
  });
  return pool;
}

std::vector<char> downstream_mask(const Netlist& nl, NodeId victim) {
  std::vector<char> downstream(nl.raw_size(), 0);
  std::vector<NodeId> stack{victim};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (downstream[id]) continue;
    downstream[id] = 1;
    for (NodeId r : nl.node(id).fanout) stack.push_back(r);
  }
  return downstream;
}

std::vector<NodeId> trigger_pool(const Netlist& nl, const SignalProb& sp,
                                 double rare_p1, NodeId victim) {
  // Exclude the victim's transitive fanout (payload rewiring must not create
  // a combinational loop through the trigger). Filtering the sorted rare
  // list preserves the lowest-P1-first order.
  const std::vector<char> down = downstream_mask(nl, victim);
  std::vector<NodeId> pool;
  for (NodeId id : rare_net_list(nl, sp, rare_p1)) {
    if (!down[id]) pool.push_back(id);
  }
  return pool;
}

InsertionResult insert_trojan(const Netlist& original,
                              const SalvageResult& salvaged,
                              const DefenderSuite& suite,
                              const PowerModel& pm,
                              const InsertionOptions& opt) {
  return FlowEngine(original, suite, pm).insert(salvaged, opt);
}

}  // namespace tz
