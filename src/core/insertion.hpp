// Algorithm 2: HT insertion using the TrojanZero methodology.
//
// Walks the HT library and the candidate payload locations; after each
// placement the defender's full suite must pass and the infected circuit's
// power (total, dynamic, leakage) and area must not exceed the HT-free
// thresholds. A perceptible *negative* differential is topped up with
// dummy gates so that ΔP(TZ) ≈ 0 and ΔA(TZ) ≈ 0.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "atpg/test_set.hpp"
#include "core/ht_library.hpp"
#include "core/salvage.hpp"
#include "netlist/netlist.hpp"
#include "tech/power_model.hpp"

namespace tz {

struct InsertionOptions {
  /// HTs to try, in order; empty = default_ht_library().
  std::vector<TrojanDesc> library;
  /// Rare-net pool: nets with P1 <= rare_p1 (or >= 1-rare_p1 are inverted
  /// conceptually by choosing the AND polarity; we keep it simple and use
  /// low-P1 nets directly).
  double rare_p1 = 0.05;
  std::size_t max_locations = 8;       ///< m in Algorithm 2.
  double power_slack_rel = 0.02;       ///< Allowed |ΔP|/P(N) after balancing.
  double area_slack_rel = 0.02;        ///< Allowed |ΔA|/A(N).
  std::size_t max_dummy_gates = 256;
  /// Worker threads for the per-victim screening scan (0 = TZ_THREADS env
  /// variable, else hardware concurrency). Results are bit-identical at
  /// every thread count — see FlowEngine::insert.
  std::size_t threads = 0;
};

struct InsertionResult {
  bool success = false;
  Netlist infected;           ///< N'' (valid only when success).
  InsertedHT ht;              ///< Node handles into `infected`.
  TrojanDesc ht_desc;
  std::string ht_name;
  std::string victim_name;
  int tried_hts = 0;
  int tried_locations = 0;
  int fail_build = 0;  ///< Structural rejections (loops, pool too small).
  int fail_test = 0;   ///< Defender suite caught the HT.
  int fail_caps = 0;   ///< Power/area cap exceeded.
  std::size_t dummy_gates = 0;
  PowerReport power;          ///< P/A of N''.
  PowerReport threshold;      ///< P/A of N (the caps).
  double trigger_p1 = 0.0;    ///< Analytic per-cycle trigger probability.

  double delta_power_uw() const { return threshold.total_uw() - power.total_uw(); }
  double delta_area_ge() const { return threshold.area_ge - power.area_ge; }
};

/// Run Algorithm 2 on the salvaged circuit N' with thresholds from N.
/// Success implies `power <= threshold` component-wise: total, dynamic and
/// leakage power and area never exceed the HT-free circuit.
/// (Thin wrapper over FlowEngine::insert — see core/flow_engine.hpp.)
InsertionResult insert_trojan(const Netlist& original,
                              const SalvageResult& salvaged,
                              const DefenderSuite& suite,
                              const PowerModel& pm,
                              const InsertionOptions& opt = {});

/// Candidate payload locations: internal nets that feed primary-output
/// cones, deepest first (the c880 case study targets the ALU carry-in).
std::vector<NodeId> payload_locations(const Netlist& nl, std::size_t limit);

/// Every rare net (P1 <= rare_p1), lowest P1 first — computed once per
/// netlist; trigger_pool filters it per victim.
std::vector<NodeId> rare_net_list(const Netlist& nl, const SignalProb& sp,
                                  double rare_p1);

/// Transitive-fanout membership mask of `victim` (victim included), indexed
/// by NodeId.
std::vector<char> downstream_mask(const Netlist& nl, NodeId victim);

/// Rare-net pool for trigger construction, lowest P1 first. Nets in the
/// transitive fanout of `victim` are excluded to keep the payload loop-free.
std::vector<NodeId> trigger_pool(const Netlist& nl, const SignalProb& sp,
                                 double rare_p1, NodeId victim);

}  // namespace tz
