// End-to-end TrojanZero flow (Fig. 2 / Fig. 6) and reporting helpers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "atpg/test_set.hpp"
#include "core/insertion.hpp"
#include "core/salvage.hpp"
#include "gen/iscas.hpp"
#include "tech/power_model.hpp"

namespace tz {

struct FlowOptions {
  double pth = 0.992;          ///< Algorithm 1 threshold (Table I per circuit).
  int counter_bits = 3;        ///< HT size (Table I per circuit).
  /// Defender configuration. The paper's defender validates with the ATPG TP
  /// set; random-vector exposure is quantified separately (Pft / Eq. 1), so
  /// the flow default is ATPG-only. Enable the extra algorithms for the
  /// defender-strength ablation.
  TestGenOptions testgen = atpg_only_defender();
  InsertionOptions insertion;  ///< Algorithm 2 configuration.
  SalvageOptions::Order order = SalvageOptions::Order::ByProbability;
  /// Worker threads for both candidate scans (0 = TZ_THREADS env, else the
  /// effective CPU count). Campaign jobs pin this to 1 and parallelize
  /// across jobs instead; results are bit-identical either way.
  std::size_t threads = 0;

  static TestGenOptions atpg_only_defender() {
    TestGenOptions t;
    t.with_random_validation = false;
    t.with_walking = false;
    t.random_patterns = 64;
    t.max_patterns = 80;
    return t;
  }
};

/// Self-describing provenance stamped onto every FlowResult: what ran, with
/// which engine modes, and how long it took. These fields (not the Netlist
/// members) are what the campaign wire format serializes, so a JSONL row
/// read back on another machine still prints the same Table-I line.
struct FlowMeta {
  std::string circuit;          ///< make_benchmark name.
  std::uint64_t seed = 0;       ///< Defender testgen seed actually used.
  std::size_t gates = 0;        ///< Gate count of N (post synthesis-clean).
  std::size_t inputs = 0;       ///< Primary inputs of N.
  std::size_t outputs = 0;      ///< Primary outputs of N.
  /// Per-defender-algorithm pattern counts, suite order.
  std::vector<std::size_t> suite_patterns;
  bool eval_plan = true;        ///< TZ_EVAL_PLAN mode the flow ran under.
  std::string fault_mode;       ///< Resolved FaultSimMode ("auto"/...).
  std::size_t threads = 0;      ///< Resolved worker count for the scans.
  double wall_ms = 0.0;         ///< End-to-end job wall time (volatile).

  std::size_t total_patterns() const {
    std::size_t n = 0;
    for (const std::size_t p : suite_patterns) n += p;
    return n;
  }
};

/// Everything one Table I row needs.
struct FlowResult {
  std::string benchmark;
  FlowMeta meta;       ///< Provenance + engine-mode stamp (serialized).
  Netlist original;    ///< N.
  DefenderSuite suite;
  SalvageResult salvage;      ///< Holds N' and Algorithm 1 stats.
  InsertionResult insertion;  ///< Holds N'' and Algorithm 2 stats.
  PowerReport p_n, p_np, p_npp;
  /// P[counter saturates during the defender's pattern stream] — payload
  /// actually fires under test.
  double pft_payload = 0.0;
  /// P[the trigger condition is observed at least once during testing] —
  /// the conservative exposure number Table I's Pft column tracks.
  double pft = 0.0;
  double atpg_coverage = 0.0;
};

/// Run the complete TrojanZero flow per Fig. 2: verify N, compute thresholds,
/// run Algorithm 1 and Algorithm 2, and evaluate Pft. `options.pth` and
/// `counter_bits` default from the Table I spec when the benchmark is known.
/// Since the campaign refactor this is a convenience wrapper over the job
/// layer (campaign/job.hpp): one cold ArtifactStore build + run_flow_job.
/// The definition lives in campaign/job.cpp.
FlowResult run_trojanzero_flow(const std::string& benchmark_name,
                               FlowOptions options);

/// Flow with Table I defaults for the named benchmark.
FlowResult run_trojanzero_flow(const std::string& benchmark_name);

/// Print one Table-I-style row: measured values with the paper's numbers.
void print_table1_row(std::ostream& os, const FlowResult& r,
                      const BenchmarkSpec& paper);

/// Print the paper-vs-measured power/area triple (N, N', N'').
void print_power_triple(std::ostream& os, const FlowResult& r,
                        const BenchmarkSpec& paper);

}  // namespace tz
