// Algorithm 1: Salvaging Power and Area.
//
// Identifies candidate gates whose output signal probability is >= Pth (tie
// to 1) or whose zero-probability is >= Pth (tie to 0), then greedily
// replaces each with a constant and removes the logic cone that became
// unobservable — accepting a change only when every one of the defender's
// testing algorithms still passes on all test patterns, reverting otherwise.
// The freed power/area differential (ΔP, ΔA) funds the Trojan of Algorithm 2.
#pragma once

#include <string>
#include <vector>

#include "atpg/test_set.hpp"
#include "netlist/netlist.hpp"
#include "prob/signal_prob.hpp"
#include "tech/power_model.hpp"

namespace tz {

struct SalvageOptions {
  double pth = 0.992;            ///< Attacker threshold probability.
  bool include_outputs = false;  ///< Allow tying primary outputs.
  /// Candidate visit order — the paper uses most-certain-first; the leakage
  /// ablation visits highest-leakage gates first instead.
  enum class Order { ByProbability, ByLeakage } order = Order::ByProbability;
  /// Worker threads for the speculative candidate screen (0 = TZ_THREADS env
  /// variable, else hardware concurrency). Results are bit-identical at
  /// every thread count — see FlowEngine::salvage.
  std::size_t threads = 0;
};

/// One accepted removal.
struct SalvageRecord {
  std::string node_name;
  bool tie_value = false;
  double probability = 0.0;      ///< Candidate probability (max(P0, P1)).
  std::size_t gates_removed = 0; ///< Candidate gate + dead predecessors.
};

struct SalvageResult {
  Netlist modified;                    ///< N' (tombstones compacted).
  std::size_t candidates = 0;          ///< |C|.
  std::vector<SalvageRecord> accepted; ///< Removals that survived testing.
  std::size_t rejected = 0;            ///< Candidates reverted by testing.
  std::size_t expendable_gates = 0;    ///< Eg: total gates removed.
  PowerReport power_before;            ///< P/A of N.
  PowerReport power_after;             ///< P/A of N'.

  double delta_power_uw() const {
    return power_before.total_uw() - power_after.total_uw();
  }
  double delta_area_ge() const {
    return power_before.area_ge - power_after.area_ge;
  }
};

/// Run Algorithm 1. `suite` must have been generated on `original` (the
/// verified HT-free circuit N).
SalvageResult salvage_power_area(const Netlist& original,
                                 const DefenderSuite& suite,
                                 const PowerModel& pm,
                                 const SalvageOptions& opt = {});

}  // namespace tz
