#include "core/flow_engine.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>

#include "core/ht_library.hpp"
#include "prob/signal_prob.hpp"
#include "sim/gate_eval.hpp"
#include "sim/simulator.hpp"
#include "util/thread_pool.hpp"
#include "verify/verify.hpp"

namespace tz {

// --------------------------------------------------------------- ConeScratch

ConeScratch::ConeScratch(const SuiteOracle& core) : worklist_(core.rank_) {}

// --------------------------------------------------------------- SuiteOracle

SuiteOracle::SuiteOracle(const Netlist& nl, const DefenderSuite& suite)
    : SuiteOracle(nl, suite, nullptr) {}

SuiteOracle::SuiteOracle(const Netlist& nl, const DefenderSuite& suite,
                         const SuiteOracle* seed)
    : nl_(&nl), suite_(&suite) {
  sequential_ = !nl.dffs().empty();
  for (const DefenderTestSet& ts : suite.algorithms) {
    // A suite generated for a different interface can never pass; keep the
    // reference semantics by falling back to functional_test.
    if (ts.patterns.num_signals() != nl.inputs().size() ||
        ts.golden.num_signals() != nl.outputs().size()) {
      sequential_ = true;
    }
  }
  if (sequential_) return;
  if (seed != nullptr && seed_compatible(*seed)) {
    clone_from(*seed);
    seeded_ = true;
    return;
  }
  build_caches();
}

bool SuiteOracle::seed_compatible(const SuiteOracle& seed) const {
  // The caller's contract is that the seed was built on a structurally
  // identical netlist with the same suite; these guards catch the obvious
  // mismatches (different circuit, different suite shape, different
  // TZ_EVAL_PLAN mode mid-campaign) and fall back to a full build rather
  // than serving stale rows.
  if (seed.sequential_) return false;
  if ((seed.plan_ != nullptr) != eval_plan_enabled()) return false;
  if (seed.nl_->raw_size() != nl_->raw_size() ||
      seed.nl_->live_count() != nl_->live_count()) {
    return false;
  }
  if (seed.recorded_po_ != nl_->outputs()) return false;
  if (seed.suite_ != suite_) {
    if (seed.suite_->algorithms.size() != suite_->algorithms.size()) {
      return false;
    }
    for (std::size_t i = 0; i < suite_->algorithms.size(); ++i) {
      if (seed.suite_->algorithms[i].patterns.num_patterns() !=
          suite_->algorithms[i].patterns.num_patterns()) {
        return false;
      }
    }
  }
  return true;
}

void SuiteOracle::clone_from(const SuiteOracle& seed) {
  node_cap_ = seed.node_cap_;
  cap_ = seed.cap_;
  words_ = seed.words_;
  segs_ = seed.segs_;
  valid_ = seed.valid_;
  rows_ = seed.rows_;
  golden_ = seed.golden_;
  recorded_po_ = seed.recorded_po_;
  rank_ = seed.rank_;
  // The plan is patched in place by resync_structure, so every clone gets
  // its own deep copy; the seed's plan stays pristine for the next job.
  if (seed.plan_) plan_ = std::make_shared<EvalPlan>(*seed.plan_);
}

void SuiteOracle::build_caches() {
  const Netlist& nl = *nl_;
  const DefenderSuite& suite = *suite_;
  node_cap_ = nl.raw_size();
  if (eval_plan_enabled()) {
    // Compiled path: one plan shared with the seeding simulator, so cached
    // rows are dense slot-major and slot ids double as topological ranks.
    plan_ = std::make_shared<EvalPlan>(nl);
    cap_ = plan_->num_slots();
    rank_.resize(cap_);
    std::iota(rank_.begin(), rank_.end(), 0);
  } else {
    cap_ = nl.raw_size();
    rank_.assign(cap_, 0);
  }
  BitSimulator sim(nl, plan_);
  if (!plan_) {
    const std::vector<NodeId>& order = sim.order();
    for (std::size_t i = 0; i < order.size(); ++i) {
      rank_[order[i]] = static_cast<std::uint32_t>(i);
    }
  }
  recorded_po_ = nl.outputs();

  // Fused layout: every non-empty set occupies a contiguous word range of
  // one row, so a single cone pass judges the whole suite. Tail bits inside
  // the row (each set's last-word padding) are masked by valid_.
  segs_.reserve(suite.algorithms.size());
  for (const DefenderTestSet& ts : suite.algorithms) {
    if (ts.patterns.num_patterns() == 0) continue;
    SetSegment sg;
    sg.offset = words_;
    sg.words = ts.patterns.num_words();
    sg.patterns = ts.patterns.num_patterns();
    words_ += sg.words;
    segs_.push_back(sg);
  }
  valid_.assign(words_, ~std::uint64_t{0});
  rows_.assign(cap_ * words_, 0);
  golden_.assign(recorded_po_.size() * words_, 0);
  std::size_t seg = 0;
  for (const DefenderTestSet& ts : suite.algorithms) {
    if (ts.patterns.num_patterns() == 0) continue;
    const SetSegment& sg = segs_[seg++];
    valid_[sg.offset + sg.words - 1] = ts.patterns.tail_mask();
    const NodeValues vals = sim.run(ts.patterns);
    if (plan_) {
      // copy_slot_row gathers across stripes when a wide suite made the run
      // come out stripe-major (the fused cache itself stays row-contiguous).
      for (std::size_t s = 0; s < cap_; ++s) {
        vals.copy_slot_row(s, rows_.data() + s * words_ + sg.offset);
      }
    } else {
      for (NodeId id = 0; id < cap_; ++id) {
        if (!nl.is_alive(id)) continue;
        const std::uint64_t* src = vals.row(id);
        std::copy(src, src + sg.words,
                  rows_.data() + static_cast<std::size_t>(id) * words_ +
                      sg.offset);
      }
    }
    for (std::size_t o = 0; o < recorded_po_.size(); ++o) {
      const auto g = ts.golden.words(o);
      std::copy(g.begin(), g.end(), golden_.data() + o * words_ + sg.offset);
    }
  }
}

void SuiteOracle::grow() {
  const std::size_t n = nl_->raw_size();
  if (n <= node_cap_) return;
  if (plan_) {
    // Plan patch: every new alive node becomes a source slot appended to the
    // plan (never scheduled — tie cells are the only new nodes oracle
    // queries ever read; HT and dummy gates are judged before
    // materialisation / have no readers).
    plan_->ensure_node_capacity(n);
    for (NodeId id = static_cast<NodeId>(node_cap_); id < n; ++id) {
      if (!nl_->is_alive(id)) continue;
      const SlotId s = plan_->append_source(id);
      rows_.resize((static_cast<std::size_t>(s) + 1) * words_, 0);
      rank_.push_back(s);
      if (nl_->node(id).type == GateType::Const1) {
        std::fill_n(rows_.data() + static_cast<std::size_t>(s) * words_,
                    words_, ~std::uint64_t{0});
      }
    }
    cap_ = plan_->num_slots();
  } else {
    rows_.resize(n * words_, 0);
    for (NodeId id = static_cast<NodeId>(node_cap_); id < n; ++id) {
      if (nl_->is_alive(id) && nl_->node(id).type == GateType::Const1) {
        std::fill_n(rows_.data() + static_cast<std::size_t>(id) * words_,
                    words_, ~std::uint64_t{0});
      }
    }
    rank_.resize(n, 0);  // new nodes are sources here; never scheduled
    cap_ = n;
  }
  node_cap_ = n;
}

void SuiteOracle::ensure_scratch(ConeScratch& cs) const {
  if (cs.rows_.size() < cap_ * words_) cs.rows_.resize(cap_ * words_, 0);
  if (cs.touched_.size() < cap_) cs.touched_.resize(cap_, 0);
  cs.worklist_.resize(cap_);
}

void SuiteOracle::schedule_readers(std::uint32_t ix, ConeScratch& cs) const {
  if (plan_) {
    for (SlotId r : plan_->fanout(ix)) {
      if (plan_->op(r) != EvalOp::Dead) cs.worklist_.push(r);
    }
    return;
  }
  for (NodeId r : nl_->node(ix).fanout) {
    if (!nl_->is_alive(r)) continue;
    const GateType t = nl_->node(r).type;
    if (t == GateType::Dff || t == GateType::Input) continue;
    cs.worklist_.push(r);
  }
}

bool SuiteOracle::propagate(ConeScratch& cs) const {
  const auto get = [&](std::uint32_t f) -> const std::uint64_t* {
    return cs.touched_[f] ? scratch_row(cs, f) : cached_row(f);
  };
  // The worklist pops in topological order, so every touched fanin is final
  // by the time a gate evaluates; a gate whose row matches the cache on all
  // valid lanes (of every set at once) generates no further events.
  while (!cs.worklist_.empty()) {
    const std::uint32_t id = cs.worklist_.pop();
    std::uint64_t* out = scratch_row(cs, id);
    if (plan_) {
      eval_plan_slot(*plan_, id, words_, get, out);
    } else {
      eval_gate_row(nl_->node(id), words_, get, out);
    }
    const std::uint64_t* cr = cached_row(id);
    std::uint64_t changed = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      changed |= (out[w] ^ cr[w]) & valid_[w];
    }
    if (!changed) continue;
    cs.touched_[id] = 1;
    cs.visited_.push_back(id);
    schedule_readers(id, cs);
  }

  for (std::size_t o = 0; o < recorded_po_.size(); ++o) {
    const NodeId cur = nl_->outputs()[o];
    const std::uint32_t cix = ix(cur);
    if (!cs.touched_[cix] && cur == recorded_po_[o]) continue;
    const std::uint64_t* got =
        cs.touched_[cix] ? scratch_row(cs, cix) : cached_row(cix);
    const std::uint64_t* want = golden_.data() + o * words_;
    for (std::size_t w = 0; w < words_; ++w) {
      if ((got[w] ^ want[w]) & valid_[w]) return true;
    }
  }
  return false;
}

void SuiteOracle::clear_marks(ConeScratch& cs) const {
  for (NodeId id : cs.visited_) cs.touched_[id] = 0;
  cs.visited_.clear();
}

bool SuiteOracle::seed_tie(NodeId target, bool value, ConeScratch& cs) const {
  const std::uint64_t cval = value ? ~std::uint64_t{0} : 0;
  const std::uint32_t tix = ix(target);
  // Excitation fast path: the tied node already evaluated to the constant
  // on every valid lane of every set — nothing downstream can change.
  const std::uint64_t* tr = cached_row(tix);
  std::uint64_t diff = 0;
  for (std::size_t w = 0; w < words_; ++w) diff |= (tr[w] ^ cval) & valid_[w];
  if (!diff) return false;
  // Force the constant at the target and re-evaluate its readers: exactly
  // the function the netlist computes once the tie is applied.
  std::fill_n(scratch_row(cs, tix), words_, cval);
  cs.touched_[tix] = 1;
  cs.visited_.push_back(tix);
  schedule_readers(tix, cs);
  return true;
}

bool SuiteOracle::tie_visible(NodeId target, bool value,
                              ConeScratch& cs) const {
  ensure_scratch(cs);
  if (words_ == 0) return false;
  if (!seed_tie(target, value, cs)) return false;
  const bool any = propagate(cs);
  clear_marks(cs);
  return any;
}

bool SuiteOracle::tie_visible(NodeId target, bool value) {
  grow();
  return static_cast<const SuiteOracle&>(*this).tie_visible(target, value,
                                                            self_);
}

void SuiteOracle::commit_tie(NodeId target, bool value) {
  MutexLock lk(structure_mu_);
  grow();
  // The structural tie_to_constant follows this call; remember the target so
  // resync_structure() can patch the plan (reader fanins, swept cone).
  if (plan_) pending_ties_.push_back(target);
  ConeScratch& cs = self_;
  ensure_scratch(cs);
  if (words_ == 0) return;
  if (!seed_tie(target, value, cs)) return;
  if (!propagate(cs)) {
    // Invisible as promised: fold the deviating rows into the cache so later
    // candidates are judged against the updated netlist.
    for (std::uint32_t id : cs.visited_) {
      std::copy(scratch_row(cs, id), scratch_row(cs, id) + words_,
                rows_.data() + static_cast<std::size_t>(id) * words_);
    }
  }
  clear_marks(cs);
}

void SuiteOracle::resync_structure() {
  if (sequential_) return;
  MutexLock lk(structure_mu_);
  grow();
  if (plan_) {
    // Incremental plan patch for the ties committed since the last resync:
    // the netlist now reads the tie cell (appended as a source slot by
    // grow()) wherever it read the target, and the target plus its
    // newly-unread fanin cone were swept. Rewrite the recorded readers'
    // fanin CSR rows in place and tombstone the dead region — exactly the
    // structure a from-scratch recompile would produce, without paying for
    // one per committed candidate.
    for (NodeId target : pending_ties_) {
      const SlotId ts = plan_->slot_of(target);
      // The fanout CSR still records the pre-tie readers of the target.
      for (SlotId r : plan_->fanout(ts)) {
        if (plan_->op(r) != EvalOp::Dead &&
            nl_->is_alive(plan_->node_of(r))) {
          plan_->refresh_fanins(r, *nl_);
        }
      }
      // The swept cone is the transitive fanin region of the target that
      // lost its last reader: walk fanin edges from the target, tombstoning
      // every node the sweep removed, and stop at survivors.
      std::vector<SlotId> stack{ts};
      while (!stack.empty()) {
        const SlotId s = stack.back();
        stack.pop_back();
        if (plan_->op(s) == EvalOp::Dead) continue;
        if (nl_->is_alive(plan_->node_of(s))) continue;
        for (SlotId f : plan_->fanins(s)) stack.push_back(f);
        plan_->kill(s);
      }
    }
    pending_ties_.clear();
    // A tie that retargeted a primary output leaves the compiled output
    // list pointing at the old driver's slot.
    plan_->refresh_outputs(*nl_);
  }
  recorded_po_ = nl_->outputs();
}

bool SuiteOracle::payload_fires(std::span<const NodeId> trigger_nets,
                                int counter_bits, ConeScratch& cs) const {
  // Trigger condition per pattern: AND over the tapped rare nets.
  cs.trig_.assign(words_, ~std::uint64_t{0});
  for (NodeId r : trigger_nets) {
    const std::uint64_t* row = cached_row(ix(r));
    for (std::size_t w = 0; w < words_; ++w) cs.trig_[w] &= row[w];
  }
  for (std::size_t w = 0; w < words_; ++w) cs.trig_[w] &= valid_[w];
  // Payload-enable per pattern. A comparator HT fires with the trigger; a
  // counter HT is replayed cycle by cycle from reset — once per test set,
  // exactly as the defender's tester streams each algorithm's patterns
  // (functional_test's CycleSimulator semantics: S' = S + trigger, fire when
  // saturated).
  if (counter_bits == 0) {
    cs.fire_ = cs.trig_;
  } else {
    cs.fire_.assign(words_, 0);
    const std::uint64_t full = (std::uint64_t{1} << counter_bits) - 1;
    for (const SetSegment& sg : segs_) {
      std::uint64_t state = 0;
      for (std::size_t p = 0; p < sg.patterns; ++p) {
        const std::size_t w = sg.offset + (p >> 6);
        if (state == full) cs.fire_[w] |= std::uint64_t{1} << (p & 63);
        if ((cs.trig_[w] >> (p & 63)) & 1) state = (state + 1) & full;
      }
    }
  }
  std::uint64_t any_fire = 0;
  for (std::uint64_t w : cs.fire_) any_fire |= w;
  return any_fire != 0;
}

bool SuiteOracle::ht_visible(std::span<const NodeId> trigger_nets,
                             int counter_bits, NodeId victim,
                             ConeScratch& cs) const {
  if (counter_bits < 0 || counter_bits > 63) {
    // Same shift-UB class analytic_pft guards against: payload_fires
    // computes the saturation count in 64 bits. Checked before the
    // empty-suite early return so the contract holds on every suite.
    throw std::invalid_argument(
        "SuiteOracle::ht_visible: counter_bits must be in [0,63]");
  }
  ensure_scratch(cs);
  if (words_ == 0) return false;
  // Dormant throughout every pattern stream: undetectable.
  if (!payload_fires(trigger_nets, counter_bits, cs)) return false;
  // The payload MUX rewires the victim's readers to v XOR fire; propagate
  // the masked deviation through the victim's fanout cone.
  const std::uint32_t vix = ix(victim);
  std::uint64_t* fr = scratch_row(cs, vix);
  const std::uint64_t* vr = cached_row(vix);
  for (std::size_t w = 0; w < words_; ++w) fr[w] = vr[w] ^ cs.fire_[w];
  cs.touched_[vix] = 1;
  cs.visited_.push_back(vix);
  schedule_readers(vix, cs);
  const bool any = propagate(cs);
  clear_marks(cs);
  return any;
}

bool SuiteOracle::ht_visible(std::span<const NodeId> trigger_nets,
                             int counter_bits, NodeId victim) {
  grow();
  return static_cast<const SuiteOracle&>(*this).ht_visible(
      trigger_nets, counter_bits, victim, self_);
}

// ---------------------------------------------------------------- FlowEngine

SalvageResult FlowEngine::salvage(const SalvageOptions& opt) {
  SalvageResult result;
  result.power_before = (shared_ != nullptr && shared_->golden_totals)
                            ? *shared_->golden_totals
                            : pm_->analyze(*original_).totals;

  Netlist work = original_->compact();
  const SignalProb sp(work);
  std::vector<Candidate> cands =
      find_candidates(work, sp, opt.pth, opt.include_outputs);
  result.candidates = cands.size();

  if (opt.order == SalvageOptions::Order::ByLeakage) {
    const CellLibrary& lib = pm_->library();
    std::stable_sort(cands.begin(), cands.end(),
                     [&](const Candidate& a, const Candidate& b) {
                       return lib.leakage_nw(work.node(a.node)) >
                              lib.leakage_nw(work.node(b.node));
                     });
  }

  // Campaign path: clone the shared per-circuit oracle instead of
  // re-simulating the whole suite. `work` is original_->compact(), and the
  // store built its seed on the same deterministic compact() of the same
  // netlist, so the seed's slot-major row cache carries over id-for-id; the
  // clone falls back to a full build when anything disagrees.
  SuiteOracle oracle(work, *suite_,
                     shared_ != nullptr ? shared_->salvage_oracle : nullptr);
  // TZ_CHECK boundary checks: NetlistChecker after every commit/rollback,
  // PlanChecker (with the patched-vs-recompiled equivalence diff) whenever
  // the oracle holds a compiled plan. Captured once — the gate must not
  // flip mid-flow.
  const bool chk = check_enabled();
  const NetlistCheckOptions nopt{.allow_unread_gates = true};

  // Fold one accepted (invisible) candidate into the cache and the netlist.
  const auto accept = [&](const Candidate& c) {
    const std::string name = work.node(c.node).name;
    oracle.commit_tie(c.node, c.tie_value);
    const TieResult tie = tie_to_constant(work, c.node, c.tie_value);
    oracle.resync_structure();
    if (chk) verify_or_throw(work, oracle.plan(), "salvage commit", nopt);
    result.accepted.push_back(
        {name, c.tie_value, c.probability, tie.gates_removed});
    result.expendable_gates += tie.gates_removed;
  };

  if (oracle.sequential()) {
    // Sequential fallback: apply, stream the full suite, revert through
    // the tie's undo log (Algorithm 1 line 20) when caught.
    for (const Candidate& c : cands) {
      if (!work.is_alive(c.node)) continue;  // removed with an earlier cone
      const std::string name = work.node(c.node).name;
      TieUndo undo;
      const TieResult tie = tie_to_constant(work, c.node, c.tie_value, &undo);
      if (functional_test(work, *suite_)) {
        if (chk) verify_or_throw(work, nullptr, "salvage commit", nopt);
        result.accepted.push_back(
            {name, c.tie_value, c.probability, tie.gates_removed});
        result.expendable_gates += tie.gates_removed;
      } else {
        undo_tie(work, undo);
        if (chk) verify_or_throw(work, nullptr, "salvage rollback", nopt);
        ++result.rejected;
      }
    }
  } else if (const std::size_t threads =
                 std::min(resolve_threads(opt.threads), cands.size());
             threads <= 1) {
    // Oracle path: judge each candidate on the cached rows before touching
    // the netlist — a rejected tie costs one fanout-cone re-simulation and
    // leaves no structural trace at all.
    for (const Candidate& c : cands) {
      if (!work.is_alive(c.node)) continue;
      if (oracle.tie_visible(c.node, c.tie_value)) {
        ++result.rejected;
        continue;
      }
      accept(c);
    }
  } else {
    // Parallel speculative screening. Tie verdicts are pure functions of the
    // current netlist, so a batch of upcoming candidates is judged
    // concurrently against the shared core; the verdicts are then consumed
    // in canonical candidate order. Rejects leave the baseline untouched, so
    // their speculative verdicts stay valid; the first accept mutates the
    // netlist, invalidating the rest of the batch, which is re-screened —
    // bit-identical to the sequential scan at any thread count.
    ThreadPool pool(threads);
    std::vector<ConeScratch> scratch;
    scratch.reserve(pool.size());
    for (std::size_t w = 0; w < pool.size(); ++w) scratch.emplace_back(oracle);
    const std::size_t batch_cap = std::max<std::size_t>(pool.size() * 4, 8);
    std::vector<std::size_t> batch;
    std::vector<char> visible;
    std::size_t next = 0;
    while (next < cands.size()) {
      batch.clear();
      std::size_t scan = next;
      while (scan < cands.size() && batch.size() < batch_cap) {
        // Dead candidates (removed with an earlier accepted cone) can never
        // come back during salvage: skipping them here matches the
        // sequential scan's `continue`.
        if (work.is_alive(cands[scan].node)) batch.push_back(scan);
        ++scan;
      }
      if (batch.empty()) break;
      visible.assign(batch.size(), 0);
      pool.parallel_for(
          batch.size(), [&](std::size_t k, std::size_t w) {
            const Candidate& c = cands[batch[k]];
            visible[k] =
                oracle.tie_visible(c.node, c.tie_value, scratch[w]) ? 1 : 0;
          });
      bool accepted = false;
      for (std::size_t k = 0; k < batch.size(); ++k) {
        if (visible[k]) {
          ++result.rejected;
          continue;
        }
        accept(cands[batch[k]]);
        next = batch[k] + 1;
        accepted = true;
        break;
      }
      if (!accepted) next = scan;
    }
  }

  work = work.compact();
  result.power_after = pm_->analyze(work).totals;
  result.modified = std::move(work);
  return result;
}

namespace {

/// Tombstone every node added since `size_before` whose output is unread,
/// repeating until the range is clear (reverse id order resolves most
/// chains in one pass). The shared rollback primitive for rejected HT
/// materialisations and rejected dummy-gate trials.
void remove_added_range(Netlist& nl, std::size_t size_before) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id = static_cast<NodeId>(nl.raw_size());
         id-- > size_before;) {
      if (nl.is_alive(id) && nl.node(id).fanout.empty() &&
          !nl.is_output(id)) {
        nl.remove_node(id);
        changed = true;
      }
    }
  }
}

/// Roll back a materialised (possibly half-built) build_trojan: repoint the
/// victim's readers from the payload MUX back to the victim, break the
/// counter's q<->d cycles and tombstone every node the build created
/// (ids >= `size_before`). Safe to call after build_trojan threw mid-way —
/// every step degrades to a no-op on structure the build never reached.
void unbuild_trojan(Netlist& nl, NodeId victim,
                    std::span<const NodeId> readers, std::size_t size_before) {
  for (NodeId r : readers) {
    const auto& fi = nl.node(r).fanin;
    for (std::size_t slot = 0; slot < fi.size(); ++slot) {
      if (fi[slot] >= size_before) nl.relink_fanin(r, slot, victim);
    }
  }
  for (NodeId id = static_cast<NodeId>(size_before); id < nl.raw_size();
       ++id) {
    if (nl.is_alive(id) && nl.node(id).type == GateType::Dff) {
      nl.relink_fanin(id, 0, victim);  // break q <-> d for removal ordering
    }
  }
  remove_added_range(nl, size_before);
}

bool caps_ok(const PowerReport& p, const PowerReport& threshold) {
  // The TrojanZero contract, enforced strictly: N'' may not exceed the
  // HT-free circuit on any observable — total, dynamic or leakage power, or
  // area. (These are precisely the features detect/'s defenders measure.)
  return p.total_uw() <= threshold.total_uw() &&
         p.dynamic_uw <= threshold.dynamic_uw &&
         p.leakage_uw <= threshold.leakage_uw && p.area_ge <= threshold.area_ge;
}

}  // namespace

std::size_t balance_with_dummies(Netlist& nl, PowerTracker& tracker,
                                 const PowerReport& threshold,
                                 const InsertionOptions& opt) {
  std::size_t added = 0;
  if (nl.inputs().empty()) return 0;
  struct MenuItem {
    GateType type;
    bool tie_fed;
  };
  // Two flavours, two deficits. Leakage is a component of total power, so
  // the deficits decompose: `dl` is leakage-shaped (fill with tie-fed
  // gates, which burn no dynamic power) and `dp - dl` is dynamic-shaped
  // (fill with PI-fed gates, which burn little leakage headroom per
  // microwatt). Picking the flavour by the dominant deficit avoids
  // saturating one cap while the other still has a visible gap — which is
  // what a two-feature detector like [12] would catch.
  static constexpr MenuItem kDynamicMenu[] = {
      {GateType::Buf, false}, {GateType::Xor, false}, {GateType::Not, false},
      {GateType::Xor, true},  {GateType::Nand, true}, {GateType::Not, true},
  };
  static constexpr MenuItem kLeakageMenu[] = {
      {GateType::Xor, true},  {GateType::Nand, true}, {GateType::Not, true},
      {GateType::Buf, false}, {GateType::Xor, false}, {GateType::Not, false},
  };
  std::vector<NodeId> fresh;
  while (added < opt.max_dummy_gates) {
    const PowerReport now = tracker.totals();
    const double dp = threshold.total_uw() - now.total_uw();
    const double dl = threshold.leakage_uw - now.leakage_uw;
    const double da = threshold.area_ge - now.area_ge;
    const bool power_ok = dp <= opt.power_slack_rel * threshold.total_uw();
    const bool leak_ok = dl <= opt.power_slack_rel * threshold.leakage_uw;
    const bool area_ok = da <= opt.area_slack_rel * threshold.area_ge;
    if (power_ok && leak_ok && area_ok) break;
    const bool want_dynamic =
        (dp - dl) > 0.5 * opt.power_slack_rel * threshold.total_uw();
    const auto& menu = want_dynamic ? kDynamicMenu : kLeakageMenu;
    bool placed = false;
    for (const MenuItem& item : menu) {
      const std::size_t size_before = nl.raw_size();
      tracker.begin();
      const NodeId src = item.tie_fed
                             ? nl.const_node(false)
                             : nl.inputs()[added % nl.inputs().size()];
      add_dummy_gate(nl, src, item.type, "tz_dummy");
      fresh.clear();
      for (NodeId id = static_cast<NodeId>(size_before); id < nl.raw_size();
           ++id) {
        fresh.push_back(id);  // the dummy, plus the tie cell if just created
      }
      tracker.resync(fresh, {{src}});
      if (caps_ok(tracker.totals(), threshold)) {
        tracker.commit();
        placed = true;
        break;
      }
      tracker.rollback();
      remove_added_range(nl, size_before);
    }
    if (!placed) break;  // every gate overshoots: differential already tiny
    ++added;
  }
  return added;
}

InsertionResult FlowEngine::insert(const SalvageResult& salvaged,
                                   const InsertionOptions& opt) {
  InsertionResult result;
  result.threshold = (shared_ != nullptr && shared_->golden_totals)
                         ? *shared_->golden_totals
                         : pm_->analyze(*original_).totals;

  std::vector<TrojanDesc> library =
      opt.library.empty() ? default_ht_library() : opt.library;

  // One work netlist for the whole phase: rejected candidates roll back
  // through the added-node range instead of starting from a fresh copy.
  Netlist work = salvaged.modified;
  const SignalProb sp(work);
  const std::vector<NodeId> locations =
      payload_locations(work, opt.max_locations);
  const std::vector<NodeId> rare = rare_net_list(work, sp, opt.rare_p1);
  SuiteOracle oracle(work, *suite_);
  PowerTracker tracker(work, *pm_);
  // TZ_CHECK boundary checks (see salvage). Rollbacks restore the judged
  // baseline, so the patched plan must still match it; the success boundary
  // checks the netlist only — the plan is legitimately stale for the
  // freshly materialised HT/dummy nodes (no oracle call follows them).
  const bool chk = check_enabled();
  const NetlistCheckOptions nopt{.allow_unread_gates = true};

  // Rare-net pool per victim: the once-per-netlist rare list filtered by the
  // victim's transitive-fanout mask (loop freedom). Computed once — the pool
  // only depends on the victim, not on which HT is being tried, and rejected
  // materialisations restore the structure the mask was built from. In the
  // parallel scan the pools for every victim are built concurrently (one
  // victim per slot, so the writes never alias); the sequential scan keeps
  // building them lazily.
  std::vector<std::vector<NodeId>> pools(locations.size());
  std::vector<char> pool_built(locations.size(), 0);
  const auto pool_for = [&](std::size_t v) -> const std::vector<NodeId>& {
    if (!pool_built[v]) {
      const std::vector<char> down = downstream_mask(work, locations[v]);
      for (NodeId id : rare) {
        if (!down[id]) pools[v].push_back(id);
      }
      pool_built[v] = 1;
    }
    return pools[v];
  };

  const std::size_t threads =
      oracle.sequential()
          ? 1
          : std::min(resolve_threads(opt.threads), locations.size());
  std::unique_ptr<ThreadPool> pool;
  std::vector<ConeScratch> scratch;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    scratch.reserve(pool->size());
    for (std::size_t w = 0; w < pool->size(); ++w) scratch.emplace_back(oracle);
  }

  std::vector<NodeId> fresh;
  // One victim trial of the canonical walk (Algorithm 2's inner loop). With
  // `prejudged`, the suite verdict was already computed speculatively and
  // `visible` holds it; otherwise the oracle (or the sequential
  // functional_test fallback) judges inline. Returns true when the HT
  // landed and `result` is complete.
  const auto try_victim = [&](std::size_t v, const TrojanDesc& desc,
                              bool prejudged, bool visible) -> bool {
    const NodeId victim = locations[v];
    ++result.tried_locations;
    const std::vector<NodeId>& vpool = pool_for(v);
    if (vpool.size() < static_cast<std::size_t>(desc.trigger_width)) {
      ++result.fail_build;
      return false;
    }

    // Defender validation (Algorithm 2 lines 3-7) — before materialising
    // when the oracle applies.
    if (prejudged) {
      if (visible) {
        ++result.fail_test;
        return false;
      }
    } else if (!oracle.sequential() &&
               oracle.ht_visible(
                   std::span<const NodeId>(
                       vpool.data(),
                       static_cast<std::size_t>(desc.trigger_width)),
                   desc.counter_bits, victim)) {
      ++result.fail_test;
      return false;
    }

    const std::size_t size_before = work.raw_size();
    const std::vector<NodeId> readers = work.node(victim).fanout;
    InsertedHT ht;
    try {
      ht = build_trojan(work, desc, vpool, victim);
    } catch (const std::exception&) {
      ++result.fail_build;
      // A throw can land after gates were added (work is shared across
      // candidates, unlike the old fresh-copy-per-trial): sweep the
      // half-built structure back out.
      unbuild_trojan(work, victim, readers, size_before);
      if (chk) {
        verify_or_throw(work, oracle.plan(), "insertion rollback", nopt);
      }
      return false;  // structural rejection (loop, arity, ...)
    }
    if (oracle.sequential() && !functional_test(work, *suite_)) {
      ++result.fail_test;
      unbuild_trojan(work, victim, readers, size_before);
      if (chk) verify_or_throw(work, nullptr, "insertion rollback", nopt);
      return false;
    }

    // Power/area caps (lines 11-13) on tracker deltas instead of a
    // from-scratch analyze.
    tracker.begin();
    fresh.clear();
    for (NodeId id = static_cast<NodeId>(size_before); id < work.raw_size();
         ++id) {
      fresh.push_back(id);
    }
    std::vector<NodeId> cap_changed(
        vpool.begin(), vpool.begin() + desc.trigger_width);
    cap_changed.push_back(victim);
    tracker.resync(fresh, cap_changed);
    if (!caps_ok(tracker.totals(), result.threshold)) {
      ++result.fail_caps;
      tracker.rollback();
      unbuild_trojan(work, victim, readers, size_before);
      if (chk) {
        verify_or_throw(work, oracle.plan(), "insertion rollback", nopt);
      }
      return false;  // this HT at this location breaks a cap -> next location
    }
    tracker.commit();
    const std::size_t dummies =
        balance_with_dummies(work, tracker, result.threshold, opt);
    if (chk) verify_or_throw(work, nullptr, "insertion commit", nopt);

    result.success = true;
    result.ht = ht;
    result.ht_desc = desc;
    result.ht_name = desc.name;
    result.victim_name = work.node(victim).name;
    result.dummy_gates = dummies;
    // One full analysis for the report keeps the published numbers
    // bit-identical with PowerModel::analyze of the final netlist.
    result.power = pm_->analyze(work).totals;
    result.infected = std::move(work);
    {
      // Analytic per-cycle trigger probability: product over trigger nets.
      double q = 1.0;
      int used = 0;
      for (NodeId r : vpool) {
        if (used++ >= desc.trigger_width) break;
        q *= sp.p1(r);
      }
      result.trigger_p1 = q;
    }
    return true;
  };

  // Speculative per-victim verdicts, one bounded batch at a time (the
  // common case succeeds at an early victim, so screening everything up
  // front would waste whole cone passes). Visibility is judged before
  // materialisation against the unmutated baseline, and rejected
  // materialisations (caps, build throws) restore that baseline, so a
  // batch's verdicts stay valid for its whole canonical walk. The walk
  // re-derives the pool-size rejection itself, so a too-small pool just
  // skips the oracle call and stays kPass.
  enum : signed char { kPass = 0, kVisible = 1 };
  std::vector<signed char> verdict;

  for (const TrojanDesc& desc : library) {
    ++result.tried_hts;
    if (!pool) {
      for (std::size_t v = 0; v < locations.size(); ++v) {
        if (try_victim(v, desc, /*prejudged=*/false, false)) return result;
      }
      continue;
    }
    const std::size_t batch_cap = std::max<std::size_t>(pool->size() * 2, 4);
    std::size_t v = 0;
    while (v < locations.size()) {
      const std::size_t end = std::min(locations.size(), v + batch_cap);
      oracle.resync_structure();  // cover nodes added by earlier rollbacks
      verdict.assign(end - v, kPass);
      pool->parallel_for(
          end - v, [&](std::size_t k, std::size_t w) {
            const std::vector<NodeId>& p = pool_for(v + k);
            if (p.size() < static_cast<std::size_t>(desc.trigger_width)) {
              return;
            }
            verdict[k] =
                oracle.ht_visible(
                    std::span<const NodeId>(
                        p.data(),
                        static_cast<std::size_t>(desc.trigger_width)),
                    desc.counter_bits, locations[v + k], scratch[w])
                    ? kVisible
                    : kPass;
          });
      for (std::size_t k = 0; v < end; ++v, ++k) {
        if (try_victim(v, desc, /*prejudged=*/true, verdict[k] == kVisible)) {
          return result;
        }
      }
    }
  }
  return result;  // success = false
}

}  // namespace tz
