#include "core/flow_engine.hpp"

#include <algorithm>
#include <exception>

#include "core/ht_library.hpp"
#include "prob/signal_prob.hpp"
#include "sim/gate_eval.hpp"
#include "sim/simulator.hpp"

namespace tz {

// --------------------------------------------------------------- SuiteOracle

SuiteOracle::SuiteOracle(const Netlist& nl, const DefenderSuite& suite)
    : nl_(&nl), suite_(&suite) {
  sequential_ = !nl.dffs().empty();
  for (const DefenderTestSet& ts : suite.algorithms) {
    // A suite generated for a different interface can never pass; keep the
    // reference semantics by falling back to functional_test.
    if (ts.patterns.num_signals() != nl.inputs().size() ||
        ts.golden.num_signals() != nl.outputs().size()) {
      sequential_ = true;
    }
  }
  if (sequential_) return;

  cap_ = nl.raw_size();
  rank_.assign(cap_, 0);
  BitSimulator sim(nl);
  const std::vector<NodeId>& order = sim.order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    rank_[order[i]] = static_cast<std::uint32_t>(i);
  }
  recorded_po_ = nl.outputs();
  sets_.reserve(suite.algorithms.size());
  for (const DefenderTestSet& ts : suite.algorithms) {
    SetCache sc;
    sc.words = ts.patterns.num_words();
    sc.patterns = ts.patterns.num_patterns();
    sc.tail = ts.patterns.tail_mask();
    stride_ = std::max(stride_, sc.words);
    if (sc.patterns > 0) {
      const NodeValues vals = sim.run(ts.patterns);
      sc.rows.assign(cap_ * sc.words, 0);
      for (NodeId id = 0; id < cap_; ++id) {
        if (!nl.is_alive(id)) continue;
        const std::uint64_t* src = vals.row(id);
        std::copy(src, src + sc.words, sc.rows.data() + id * sc.words);
      }
      sc.golden.assign(recorded_po_.size() * sc.words, 0);
      for (std::size_t o = 0; o < recorded_po_.size(); ++o) {
        const auto g = ts.golden.words(o);
        std::copy(g.begin(), g.end(), sc.golden.data() + o * sc.words);
      }
    }
    sets_.push_back(std::move(sc));
  }
  scratch_.assign(cap_ * stride_, 0);
  touched_.assign(cap_, 0);
  worklist_.resize(cap_);
}

void SuiteOracle::grow() {
  const std::size_t n = nl_->raw_size();
  if (n <= cap_) return;
  for (SetCache& sc : sets_) {
    if (sc.patterns == 0) continue;
    sc.rows.resize(n * sc.words, 0);
    for (NodeId id = static_cast<NodeId>(cap_); id < n; ++id) {
      // Tie cells are the only new nodes oracle queries ever read (HT and
      // dummy gates are judged before materialisation / have no readers).
      if (nl_->is_alive(id) && nl_->node(id).type == GateType::Const1) {
        std::fill_n(sc.rows.data() + static_cast<std::size_t>(id) * sc.words,
                    sc.words, ~std::uint64_t{0});
      }
    }
  }
  rank_.resize(n, 0);  // new nodes are sources here; never scheduled
  scratch_.resize(n * stride_, 0);
  touched_.resize(n, 0);
  worklist_.resize(n);
  cap_ = n;
}

void SuiteOracle::schedule(NodeId id) {
  if (!nl_->is_alive(id)) return;
  const GateType t = nl_->node(id).type;
  if (t == GateType::Dff || t == GateType::Input) return;
  worklist_.push(id);
}

bool SuiteOracle::run_cone(SetCache& sc, bool fold) {
  const auto get = [&](NodeId f) -> const std::uint64_t* {
    return touched_[f] ? scratch_row(f) : cached_row(sc, f);
  };
  // The worklist pops in topological order, so every touched fanin is final
  // by the time a gate evaluates; a gate whose row matches the cache on all
  // valid lanes generates no further events.
  while (!worklist_.empty()) {
    const NodeId id = worklist_.pop();
    std::uint64_t* out = scratch_row(id);
    eval_gate_row(nl_->node(id), sc.words, get, out);
    const std::uint64_t* cr = cached_row(sc, id);
    std::uint64_t changed = 0;
    for (std::size_t w = 0; w < sc.words; ++w) {
      std::uint64_t diff = out[w] ^ cr[w];
      if (w + 1 == sc.words) diff &= sc.tail;
      changed |= diff;
    }
    if (!changed) continue;
    touched_[id] = 1;
    visited_.push_back(id);
    for (NodeId r : nl_->node(id).fanout) schedule(r);
  }

  bool any = false;
  for (std::size_t o = 0; o < recorded_po_.size() && !any; ++o) {
    const NodeId cur = nl_->outputs()[o];
    if (!touched_[cur] && cur == recorded_po_[o]) continue;
    const std::uint64_t* got =
        touched_[cur] ? scratch_row(cur) : cached_row(sc, cur);
    const std::uint64_t* want =
        sc.golden.data() + o * sc.words;
    for (std::size_t w = 0; w < sc.words; ++w) {
      std::uint64_t diff = got[w] ^ want[w];
      if (w + 1 == sc.words) diff &= sc.tail;
      if (diff) {
        any = true;
        break;
      }
    }
  }
  if (fold && !any) {
    for (NodeId id : visited_) {
      std::copy(scratch_row(id), scratch_row(id) + sc.words,
                sc.rows.data() + static_cast<std::size_t>(id) * sc.words);
    }
  }
  for (NodeId id : visited_) touched_[id] = 0;
  visited_.clear();
  return any;
}

bool SuiteOracle::check_tie(NodeId target, bool value, bool fold) {
  grow();
  const std::uint64_t cval = value ? ~std::uint64_t{0} : 0;
  for (SetCache& sc : sets_) {
    if (sc.patterns == 0) continue;
    // Excitation fast path: the tied node already evaluated to the constant
    // on every pattern of this set — nothing downstream can change.
    {
      const std::uint64_t* tr = cached_row(sc, target);
      std::uint64_t diff = 0;
      for (std::size_t w = 0; w < sc.words; ++w) {
        std::uint64_t d = tr[w] ^ cval;
        if (w + 1 == sc.words) d &= sc.tail;
        diff |= d;
      }
      if (!diff) continue;
    }
    // Force the constant at the target and re-evaluate its readers: exactly
    // the function the netlist computes once the tie is applied.
    std::uint64_t* fr = scratch_row(target);
    std::fill_n(fr, sc.words, cval);
    touched_[target] = 1;
    visited_.push_back(target);
    for (NodeId r : nl_->node(target).fanout) schedule(r);
    if (run_cone(sc, fold)) return true;
  }
  return false;
}

bool SuiteOracle::tie_visible(NodeId target, bool value) {
  return check_tie(target, value, /*fold=*/false);
}

void SuiteOracle::commit_tie(NodeId target, bool value) {
  check_tie(target, value, /*fold=*/true);
}

void SuiteOracle::resync_structure() {
  if (sequential_) return;
  grow();
  recorded_po_ = nl_->outputs();
}

bool SuiteOracle::ht_visible(std::span<const NodeId> trigger_nets,
                             int counter_bits, NodeId victim) {
  grow();
  for (SetCache& sc : sets_) {
    if (sc.patterns == 0) continue;
    // Trigger condition per pattern: AND over the tapped rare nets.
    trig_.assign(sc.words, ~std::uint64_t{0});
    for (NodeId r : trigger_nets) {
      const std::uint64_t* row = cached_row(sc, r);
      for (std::size_t w = 0; w < sc.words; ++w) trig_[w] &= row[w];
    }
    trig_[sc.words - 1] &= sc.tail;
    // Payload-enable per pattern. A comparator HT fires with the trigger; a
    // counter HT is replayed cycle by cycle from reset, exactly as the
    // defender's tester streams the patterns (functional_test's
    // CycleSimulator semantics: S' = S + trigger, fire when saturated).
    if (counter_bits == 0) {
      fire_ = trig_;
    } else {
      fire_.assign(sc.words, 0);
      unsigned state = 0;
      const unsigned full = (1u << counter_bits) - 1;
      for (std::size_t p = 0; p < sc.patterns; ++p) {
        if (state == full) fire_[p >> 6] |= std::uint64_t{1} << (p & 63);
        if ((trig_[p >> 6] >> (p & 63)) & 1) state = (state + 1) & full;
      }
    }
    std::uint64_t any_fire = 0;
    for (std::uint64_t w : fire_) any_fire |= w;
    if (!any_fire) continue;  // dormant throughout the stream: undetectable
    // The payload MUX rewires the victim's readers to v XOR fire; propagate
    // the masked deviation through the victim's fanout cone.
    std::uint64_t* fr = scratch_row(victim);
    const std::uint64_t* vr = cached_row(sc, victim);
    for (std::size_t w = 0; w < sc.words; ++w) fr[w] = vr[w] ^ fire_[w];
    touched_[victim] = 1;
    visited_.push_back(victim);
    for (NodeId r : nl_->node(victim).fanout) schedule(r);
    if (run_cone(sc, /*fold=*/false)) return true;
  }
  return false;
}

// ---------------------------------------------------------------- FlowEngine

SalvageResult FlowEngine::salvage(const SalvageOptions& opt) {
  SalvageResult result;
  result.power_before = pm_->analyze(*original_).totals;

  Netlist work = original_->compact();
  const SignalProb sp(work);
  std::vector<Candidate> cands =
      find_candidates(work, sp, opt.pth, opt.include_outputs);
  result.candidates = cands.size();

  if (opt.order == SalvageOptions::Order::ByLeakage) {
    const CellLibrary& lib = pm_->library();
    std::stable_sort(cands.begin(), cands.end(),
                     [&](const Candidate& a, const Candidate& b) {
                       return lib.leakage_nw(work.node(a.node)) >
                              lib.leakage_nw(work.node(b.node));
                     });
  }

  SuiteOracle oracle(work, *suite_);
  for (const Candidate& c : cands) {
    if (!work.is_alive(c.node)) continue;  // removed with an earlier cone
    const std::string name = work.node(c.node).name;
    if (oracle.sequential()) {
      // Sequential fallback: apply, stream the full suite, revert through
      // the tie's undo log (Algorithm 1 line 20) when caught.
      TieUndo undo;
      const TieResult tie = tie_to_constant(work, c.node, c.tie_value, &undo);
      if (functional_test(work, *suite_)) {
        result.accepted.push_back(
            {name, c.tie_value, c.probability, tie.gates_removed});
        result.expendable_gates += tie.gates_removed;
      } else {
        undo_tie(work, undo);
        ++result.rejected;
      }
      continue;
    }
    // Oracle path: judge the candidate on the cached rows before touching
    // the netlist — a rejected tie costs one fanout-cone re-simulation and
    // leaves no structural trace at all.
    if (oracle.tie_visible(c.node, c.tie_value)) {
      ++result.rejected;
      continue;
    }
    oracle.commit_tie(c.node, c.tie_value);
    const TieResult tie = tie_to_constant(work, c.node, c.tie_value);
    oracle.resync_structure();
    result.accepted.push_back(
        {name, c.tie_value, c.probability, tie.gates_removed});
    result.expendable_gates += tie.gates_removed;
  }

  work = work.compact();
  result.power_after = pm_->analyze(work).totals;
  result.modified = std::move(work);
  return result;
}

namespace {

/// Tombstone every node added since `size_before` whose output is unread,
/// repeating until the range is clear (reverse id order resolves most
/// chains in one pass). The shared rollback primitive for rejected HT
/// materialisations and rejected dummy-gate trials.
void remove_added_range(Netlist& nl, std::size_t size_before) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id = static_cast<NodeId>(nl.raw_size());
         id-- > size_before;) {
      if (nl.is_alive(id) && nl.node(id).fanout.empty() &&
          !nl.is_output(id)) {
        nl.remove_node(id);
        changed = true;
      }
    }
  }
}

/// Roll back a materialised (possibly half-built) build_trojan: repoint the
/// victim's readers from the payload MUX back to the victim, break the
/// counter's q<->d cycles and tombstone every node the build created
/// (ids >= `size_before`). Safe to call after build_trojan threw mid-way —
/// every step degrades to a no-op on structure the build never reached.
void unbuild_trojan(Netlist& nl, NodeId victim,
                    std::span<const NodeId> readers, std::size_t size_before) {
  for (NodeId r : readers) {
    const auto& fi = nl.node(r).fanin;
    for (std::size_t slot = 0; slot < fi.size(); ++slot) {
      if (fi[slot] >= size_before) nl.relink_fanin(r, slot, victim);
    }
  }
  for (NodeId id = static_cast<NodeId>(size_before); id < nl.raw_size();
       ++id) {
    if (nl.is_alive(id) && nl.node(id).type == GateType::Dff) {
      nl.relink_fanin(id, 0, victim);  // break q <-> d for removal ordering
    }
  }
  remove_added_range(nl, size_before);
}

bool caps_ok(const PowerReport& p, const PowerReport& threshold) {
  // The TrojanZero contract, enforced strictly: N'' may not exceed the
  // HT-free circuit on any observable — total, dynamic or leakage power, or
  // area. (These are precisely the features detect/'s defenders measure.)
  return p.total_uw() <= threshold.total_uw() &&
         p.dynamic_uw <= threshold.dynamic_uw &&
         p.leakage_uw <= threshold.leakage_uw && p.area_ge <= threshold.area_ge;
}

}  // namespace

std::size_t balance_with_dummies(Netlist& nl, PowerTracker& tracker,
                                 const PowerReport& threshold,
                                 const InsertionOptions& opt) {
  std::size_t added = 0;
  if (nl.inputs().empty()) return 0;
  struct MenuItem {
    GateType type;
    bool tie_fed;
  };
  // Two flavours, two deficits. Leakage is a component of total power, so
  // the deficits decompose: `dl` is leakage-shaped (fill with tie-fed
  // gates, which burn no dynamic power) and `dp - dl` is dynamic-shaped
  // (fill with PI-fed gates, which burn little leakage headroom per
  // microwatt). Picking the flavour by the dominant deficit avoids
  // saturating one cap while the other still has a visible gap — which is
  // what a two-feature detector like [12] would catch.
  static constexpr MenuItem kDynamicMenu[] = {
      {GateType::Buf, false}, {GateType::Xor, false}, {GateType::Not, false},
      {GateType::Xor, true},  {GateType::Nand, true}, {GateType::Not, true},
  };
  static constexpr MenuItem kLeakageMenu[] = {
      {GateType::Xor, true},  {GateType::Nand, true}, {GateType::Not, true},
      {GateType::Buf, false}, {GateType::Xor, false}, {GateType::Not, false},
  };
  std::vector<NodeId> fresh;
  while (added < opt.max_dummy_gates) {
    const PowerReport now = tracker.totals();
    const double dp = threshold.total_uw() - now.total_uw();
    const double dl = threshold.leakage_uw - now.leakage_uw;
    const double da = threshold.area_ge - now.area_ge;
    const bool power_ok = dp <= opt.power_slack_rel * threshold.total_uw();
    const bool leak_ok = dl <= opt.power_slack_rel * threshold.leakage_uw;
    const bool area_ok = da <= opt.area_slack_rel * threshold.area_ge;
    if (power_ok && leak_ok && area_ok) break;
    const bool want_dynamic =
        (dp - dl) > 0.5 * opt.power_slack_rel * threshold.total_uw();
    const auto& menu = want_dynamic ? kDynamicMenu : kLeakageMenu;
    bool placed = false;
    for (const MenuItem& item : menu) {
      const std::size_t size_before = nl.raw_size();
      tracker.begin();
      const NodeId src = item.tie_fed
                             ? nl.const_node(false)
                             : nl.inputs()[added % nl.inputs().size()];
      add_dummy_gate(nl, src, item.type, "tz_dummy");
      fresh.clear();
      for (NodeId id = static_cast<NodeId>(size_before); id < nl.raw_size();
           ++id) {
        fresh.push_back(id);  // the dummy, plus the tie cell if just created
      }
      tracker.resync(fresh, {{src}});
      if (caps_ok(tracker.totals(), threshold)) {
        tracker.commit();
        placed = true;
        break;
      }
      tracker.rollback();
      remove_added_range(nl, size_before);
    }
    if (!placed) break;  // every gate overshoots: differential already tiny
    ++added;
  }
  return added;
}

InsertionResult FlowEngine::insert(const SalvageResult& salvaged,
                                   const InsertionOptions& opt) {
  InsertionResult result;
  result.threshold = pm_->analyze(*original_).totals;

  std::vector<TrojanDesc> library =
      opt.library.empty() ? default_ht_library() : opt.library;

  // One work netlist for the whole phase: rejected candidates roll back
  // through the added-node range instead of starting from a fresh copy.
  Netlist work = salvaged.modified;
  const SignalProb sp(work);
  const std::vector<NodeId> locations =
      payload_locations(work, opt.max_locations);
  const std::vector<NodeId> rare = rare_net_list(work, sp, opt.rare_p1);
  SuiteOracle oracle(work, *suite_);
  PowerTracker tracker(work, *pm_);

  // Rare-net pool per victim: the once-per-netlist rare list filtered by the
  // victim's transitive-fanout mask (loop freedom). Computed lazily, once —
  // the pool only depends on the victim, not on which HT is being tried, and
  // rejected materialisations restore the structure the mask was built from.
  std::vector<std::vector<NodeId>> pools(locations.size());
  std::vector<char> pool_built(locations.size(), 0);
  const auto pool_for = [&](std::size_t v) -> const std::vector<NodeId>& {
    if (!pool_built[v]) {
      const std::vector<char> down = downstream_mask(work, locations[v]);
      for (NodeId id : rare) {
        if (!down[id]) pools[v].push_back(id);
      }
      pool_built[v] = 1;
    }
    return pools[v];
  };

  std::vector<NodeId> fresh;
  for (const TrojanDesc& desc : library) {
    ++result.tried_hts;
    for (std::size_t v = 0; v < locations.size(); ++v) {
      const NodeId victim = locations[v];
      ++result.tried_locations;
      const std::vector<NodeId>& pool = pool_for(v);
      if (pool.size() < static_cast<std::size_t>(desc.trigger_width)) {
        ++result.fail_build;
        continue;
      }

      // Defender validation (Algorithm 2 lines 3-7) — before materialising
      // when the oracle applies.
      if (!oracle.sequential() &&
          oracle.ht_visible(
              std::span<const NodeId>(pool.data(),
                                      static_cast<std::size_t>(
                                          desc.trigger_width)),
              desc.counter_bits, victim)) {
        ++result.fail_test;
        continue;
      }

      const std::size_t size_before = work.raw_size();
      const std::vector<NodeId> readers = work.node(victim).fanout;
      InsertedHT ht;
      try {
        ht = build_trojan(work, desc, pool, victim);
      } catch (const std::exception&) {
        ++result.fail_build;
        // A throw can land after gates were added (work is shared across
        // candidates, unlike the old fresh-copy-per-trial): sweep the
        // half-built structure back out.
        unbuild_trojan(work, victim, readers, size_before);
        continue;  // structural rejection (loop, arity, ...)
      }
      if (oracle.sequential() && !functional_test(work, *suite_)) {
        ++result.fail_test;
        unbuild_trojan(work, victim, readers, size_before);
        continue;
      }

      // Power/area caps (lines 11-13) on tracker deltas instead of a
      // from-scratch analyze.
      tracker.begin();
      fresh.clear();
      for (NodeId id = static_cast<NodeId>(size_before); id < work.raw_size();
           ++id) {
        fresh.push_back(id);
      }
      std::vector<NodeId> cap_changed(
          pool.begin(), pool.begin() + desc.trigger_width);
      cap_changed.push_back(victim);
      tracker.resync(fresh, cap_changed);
      if (!caps_ok(tracker.totals(), result.threshold)) {
        ++result.fail_caps;
        tracker.rollback();
        unbuild_trojan(work, victim, readers, size_before);
        continue;  // this HT at this location breaks a cap -> next location
      }
      tracker.commit();
      const std::size_t dummies =
          balance_with_dummies(work, tracker, result.threshold, opt);

      result.success = true;
      result.ht = ht;
      result.ht_desc = desc;
      result.ht_name = desc.name;
      result.victim_name = work.node(victim).name;
      result.dummy_gates = dummies;
      // One full analysis for the report keeps the published numbers
      // bit-identical with PowerModel::analyze of the final netlist.
      result.power = pm_->analyze(work).totals;
      result.infected = std::move(work);
      {
        // Analytic per-cycle trigger probability: product over trigger nets.
        double q = 1.0;
        int used = 0;
        for (NodeId r : pool) {
          if (used++ >= desc.trigger_width) break;
          q *= sp.p1(r);
        }
        result.trigger_p1 = q;
      }
      return result;
    }
  }
  return result;  // success = false
}

}  // namespace tz
