// Incremental engine behind Algorithm 1 (salvage) and Algorithm 2 (insertion).
//
// The naive flow re-simulates the defender's entire suite and re-runs a full
// power analysis for every candidate edit — O(candidates × netlist). The
// FlowEngine replaces both hot paths with incremental machinery:
//
//  - SuiteOracle caches the per-test-set good-value rows of the current work
//    netlist and re-simulates only the structural fanout cone of an edit
//    (event-driven over a topological-rank worklist, reusing the
//    sim/gate_eval.hpp kernels), comparing just the cone-reachable outputs
//    against the cached golden responses. A tie candidate costs O(cone); an
//    HT candidate is judged *before* it is materialised by replaying its
//    trigger/counter against the cached rows of the rare nets it would tap.
//
//  - PowerTracker (tech/power_tracker.hpp) keeps per-node power/area rows
//    and applies add-gate / remove-gate / splice deltas, so the Algorithm 2
//    cap checks and the dummy-balancing loop stop re-running
//    analyze→SignalProb from scratch.
//
//  - Rejected edits roll back through undo logs (TieUndo for Algorithm 1,
//    the added-node range for Algorithm 2) instead of netlist snapshots.
//
// Results are semantically identical to the reference implementations: the
// same candidates are accepted, the same HT/victim/dummy choices are made
// and the reported power totals match a from-scratch analysis.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/test_set.hpp"
#include "core/insertion.hpp"
#include "core/salvage.hpp"
#include "netlist/netlist.hpp"
#include "netlist/rewrite.hpp"
#include "sim/rank_worklist.hpp"
#include "tech/power_model.hpp"
#include "tech/power_tracker.hpp"

namespace tz {

/// Cached-row defender oracle over one work netlist. The netlist must stay
/// owned by the caller; structural edits are reported through the tie/commit
/// API. Only combinational netlists are cached — construction on a netlist
/// with DFFs sets sequential() and the caller falls back to functional_test.
class SuiteOracle {
 public:
  SuiteOracle(const Netlist& nl, const DefenderSuite& suite);

  bool sequential() const { return sequential_; }

  /// Would tying `target` to constant `value` change any defender response?
  /// Judged BEFORE the structural rewrite by forcing the constant at the
  /// target and propagating through its fanout cone — a rejected candidate
  /// never touches the netlist at all.
  bool tie_visible(NodeId target, bool value);

  /// Fold an accepted (invisible) tie into the cached rows. Call before the
  /// structural tie_to_constant, then resync_structure() after it.
  void commit_tie(NodeId target, bool value);

  /// Refresh structural bookkeeping (node capacity, output drivers) after
  /// the caller mutated the netlist with a committed edit.
  void resync_structure();

  /// Would inserting this HT be caught by the suite? Judged before the HT is
  /// materialised: the trigger AND and counter are replayed against the
  /// cached rows of `trigger_nets`, and when the payload could fire during a
  /// pattern stream, the masked deviation is propagated through the victim's
  /// fanout cone. Exactly equivalent to streaming the infected netlist
  /// through functional_test.
  bool ht_visible(std::span<const NodeId> trigger_nets, int counter_bits,
                  NodeId victim);

 private:
  struct SetCache {
    std::size_t words = 0;
    std::size_t patterns = 0;
    std::uint64_t tail = ~std::uint64_t{0};
    std::vector<std::uint64_t> rows;    ///< node-major cache, stride = words
    std::vector<std::uint64_t> golden;  ///< output-major expected rows
  };

  void grow();
  std::uint64_t* scratch_row(NodeId id) {
    return scratch_.data() + static_cast<std::size_t>(id) * stride_;
  }
  const std::uint64_t* cached_row(const SetCache& sc, NodeId id) const {
    return sc.rows.data() + static_cast<std::size_t>(id) * sc.words;
  }
  void schedule(NodeId id);
  /// Event-driven cone evaluation from the pre-seeded worklist/forced rows;
  /// returns true when a primary-output row deviates from golden. With
  /// `fold`, deviating internal rows are written back into the cache.
  bool run_cone(SetCache& sc, bool fold);
  bool check_tie(NodeId target, bool value, bool fold);

  const Netlist* nl_;
  const DefenderSuite* suite_;
  bool sequential_ = false;
  std::size_t cap_ = 0;     ///< node capacity of rows/scratch
  std::size_t stride_ = 0;  ///< max words over all sets
  std::vector<SetCache> sets_;
  std::vector<NodeId> recorded_po_;  ///< outputs() as of the cached state
  std::vector<std::uint32_t> rank_;
  // Worklist scratch (FaultSimEngine-style touched-row discipline).
  RankWorklist worklist_{rank_};
  std::vector<std::uint64_t> scratch_;
  std::vector<char> touched_;
  std::vector<NodeId> visited_;
  std::vector<std::uint64_t> trig_, fire_;
};

/// One engine per (original netlist, defender suite, power model) triple;
/// runs both algorithms incrementally.
class FlowEngine {
 public:
  FlowEngine(const Netlist& original, const DefenderSuite& suite,
             const PowerModel& pm)
      : original_(&original), suite_(&suite), pm_(&pm) {}

  /// Algorithm 1 on a SuiteOracle: tie, O(cone) recheck, undo-log revert.
  SalvageResult salvage(const SalvageOptions& opt = {});

  /// Algorithm 2 on the oracle + PowerTracker: candidates are rejected
  /// before materialisation where possible; materialised rejects roll back
  /// through the added-node range.
  InsertionResult insert(const SalvageResult& salvaged,
                         const InsertionOptions& opt = {});

 private:
  const Netlist* original_;
  const DefenderSuite* suite_;
  const PowerModel* pm_;
};

/// Greedy dummy-gate balancing on tracker deltas (paper Sec. IV-4). Adds
/// unconnected-output gates until every remaining differential sits inside
/// the slack band, never letting any of total/dynamic/leakage power or area
/// exceed `threshold`. The tracker must be synced to `nl` and not be inside
/// a transaction. Returns the number of gates added.
std::size_t balance_with_dummies(Netlist& nl, PowerTracker& tracker,
                                 const PowerReport& threshold,
                                 const InsertionOptions& opt);

}  // namespace tz
