// Incremental engine behind Algorithm 1 (salvage) and Algorithm 2 (insertion).
//
// The naive flow re-simulates the defender's entire suite and re-runs a full
// power analysis for every candidate edit — O(candidates × netlist). The
// FlowEngine replaces both hot paths with incremental machinery:
//
//  - SuiteOracle caches the good-value rows of the current work netlist for
//    every defender test set in one fused node-major layout (all sets
//    concatenated per row, invalid tail lanes masked), and re-simulates only
//    the structural fanout cone of an edit in a single multi-set pass
//    (event-driven over a topological-rank worklist, reusing the
//    sim/gate_eval.hpp kernels), comparing just the cone-reachable outputs
//    against the cached golden responses. A tie candidate costs O(cone); an
//    HT candidate is judged *before* it is materialised by replaying its
//    trigger/counter against the cached rows of the rare nets it would tap.
//
//    The oracle is split into an immutable shared core (cached rows, golden
//    responses, validity masks, topological ranks) and a per-thread
//    ConeScratch (worklist, forced-value rows, visited marks): the const
//    judging API is safe to call concurrently from many threads as long as
//    each call gets its own scratch and nothing mutates the netlist or the
//    core. Both candidate scans exploit this — tie and HT visibility are
//    judged before any mutation, so FlowEngine screens candidates in
//    parallel on a util/thread_pool.hpp pool and reduces the verdicts in
//    canonical candidate order, which keeps the flow bit-identical to the
//    sequential scan at every thread count.
//
//  - PowerTracker (tech/power_tracker.hpp) keeps per-node power/area rows
//    and applies add-gate / remove-gate / splice deltas, so the Algorithm 2
//    cap checks and the dummy-balancing loop stop re-running
//    analyze→SignalProb from scratch.
//
//  - Rejected edits roll back through undo logs (TieUndo for Algorithm 1,
//    the added-node range for Algorithm 2) instead of netlist snapshots.
//
// Results are semantically identical to the reference implementations: the
// same candidates are accepted, the same HT/victim/dummy choices are made
// and the reported power totals match a from-scratch analysis.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <memory>

#include "atpg/test_set.hpp"
#include "core/insertion.hpp"
#include "core/salvage.hpp"
#include "netlist/netlist.hpp"
#include "netlist/rewrite.hpp"
#include "sim/eval_plan.hpp"
#include "sim/rank_worklist.hpp"
#include "tech/power_model.hpp"
#include "tech/power_tracker.hpp"
#include "util/thread_safety.hpp"

namespace tz {

class SuiteOracle;

/// Per-thread mutable state for SuiteOracle's const judging calls: the rank
/// worklist, forced/re-evaluated scratch rows, touched marks and the
/// trigger/fire replay rows. Construct one per worker from the oracle it
/// will be used with; the oracle grows it on demand at each call.
class ConeScratch {
 public:
  explicit ConeScratch(const SuiteOracle& core);

 private:
  friend class SuiteOracle;
  RankWorklist worklist_;
  std::vector<std::uint64_t> rows_;
  std::vector<char> touched_;
  std::vector<NodeId> visited_;
  std::vector<std::uint64_t> trig_, fire_;
};

/// Cached-row defender oracle over one work netlist. The netlist must stay
/// owned by the caller; structural edits are reported through the tie/commit
/// API. Only combinational netlists are cached — construction on a netlist
/// with DFFs sets sequential() and the caller falls back to functional_test.
///
/// On the compiled-plan path (TZ_EVAL_PLAN, default on) the oracle indexes
/// sim/eval_plan.hpp slots: cached rows are slot-major, slot ids double as
/// topological ranks and the fused cone pass evaluates through the plan's
/// arity-specialized kernels. resync_structure() patches the plan
/// incrementally for committed ties and rolled-back HT/dummy ranges (append
/// the tie cell as a source slot, rewrite the readers' fanin CSR in place,
/// tombstone the swept cone), so per-candidate judging never recompiles the
/// plan. TZ_EVAL_PLAN=0 keeps the legacy Node-walking path; both are
/// bit-identical.
///
/// Thread safety: the const overloads of tie_visible / ht_visible are pure
/// reads of the shared core plus writes into the caller-provided scratch, so
/// any number of threads may judge candidates concurrently, each with its
/// own ConeScratch, provided (a) the netlist is not mutated meanwhile and
/// (b) resync_structure() ran after the last structural edit. commit_tie and
/// resync_structure mutate the core and must be called single-threaded.
class SuiteOracle {
 public:
  SuiteOracle(const Netlist& nl, const DefenderSuite& suite);

  /// Seeded construction for the campaign artifact layer: when `seed` was
  /// built for a structurally identical netlist (same raw node ids, same
  /// recorded outputs, same suite shape and eval-plan mode), the cached rows,
  /// golden responses and compiled plan are cloned from it instead of
  /// re-simulating the whole suite — the copy-on-write handoff from a shared
  /// per-circuit artifact into this job's mutable flow. The clone deep-copies
  /// the plan (resync_structure patches it in place) and all row caches, so
  /// the seed stays const and may be shared by any number of concurrent
  /// clones. Falls back to the full build when the seed does not match or is
  /// null; seeded() reports which path ran.
  SuiteOracle(const Netlist& nl, const DefenderSuite& suite,
              const SuiteOracle* seed);

  // The built-in scratch references this instance's rank vector; a copy or
  // move would leave it pointing into the source object.
  SuiteOracle(const SuiteOracle&) = delete;
  SuiteOracle& operator=(const SuiteOracle&) = delete;

  /// True when this oracle was cloned from a compatible seed.
  bool seeded() const { return seeded_; }

  bool sequential() const { return sequential_; }

  /// Would tying `target` to constant `value` change any defender response?
  /// Judged BEFORE the structural rewrite by forcing the constant at the
  /// target and propagating through its fanout cone — a rejected candidate
  /// never touches the netlist at all. One fused pass covers every test set.
  bool tie_visible(NodeId target, bool value, ConeScratch& cs) const;

  /// Would inserting this HT be caught by the suite? Judged before the HT is
  /// materialised: the trigger AND and counter are replayed against the
  /// cached rows of `trigger_nets`, and when the payload could fire during a
  /// pattern stream, the masked deviation is propagated through the victim's
  /// fanout cone. Exactly equivalent to streaming the infected netlist
  /// through functional_test.
  bool ht_visible(std::span<const NodeId> trigger_nets, int counter_bits,
                  NodeId victim, ConeScratch& cs) const;

  /// Single-threaded conveniences on a built-in scratch; these also refresh
  /// the core's node capacity first (the const overloads do not).
  bool tie_visible(NodeId target, bool value);
  bool ht_visible(std::span<const NodeId> trigger_nets, int counter_bits,
                  NodeId victim);

  /// Fold an accepted (invisible) tie into the cached rows. Call before the
  /// structural tie_to_constant, then resync_structure() after it.
  void commit_tie(NodeId target, bool value);

  /// Refresh structural bookkeeping (node capacity, output drivers) after
  /// the caller mutated the netlist with a committed edit. Must also run
  /// before a parallel screening phase that follows any structural edit.
  void resync_structure();

  /// The compiled plan the oracle judges through, or nullptr on the legacy
  /// path (or before the first grow()). FlowEngine hands it to PlanChecker
  /// at every commit boundary under TZ_CHECK.
  const EvalPlan* plan() const { return plan_.get(); }

 private:
  friend class ConeScratch;

  /// Full construction: simulate every defender set on `nl_` and cache the
  /// fused rows (the expensive path the seeded constructor avoids).
  void build_caches();
  /// True when `seed`'s cached state is valid for nl_/suite_ as-is.
  bool seed_compatible(const SuiteOracle& seed) const;
  /// Deep-copy the seed's cached state (plan cloned, rows copied).
  void clone_from(const SuiteOracle& seed);

  /// One defender test set's lane range inside the fused rows.
  struct SetSegment {
    std::size_t offset = 0;    ///< First fused word of this set.
    std::size_t words = 0;     ///< Packed words in this set.
    std::size_t patterns = 0;  ///< Patterns (bits) in this set.
  };

  void grow();
  void ensure_scratch(ConeScratch& cs) const;
  /// Row index of a node: its plan slot on the compiled path, the NodeId on
  /// the legacy path. Every internal row/mark array is keyed by this.
  std::uint32_t ix(NodeId id) const {
    return plan_ ? plan_->slot_of(id) : id;
  }
  const std::uint64_t* cached_row(std::uint32_t ix) const {
    return rows_.data() + static_cast<std::size_t>(ix) * words_;
  }
  std::uint64_t* scratch_row(ConeScratch& cs, std::uint32_t ix) const {
    return cs.rows_.data() + static_cast<std::size_t>(ix) * words_;
  }
  /// Schedule the combinational readers of row `ix` (plan fanout CSR or
  /// netlist fanout walk).
  void schedule_readers(std::uint32_t ix, ConeScratch& cs) const;
  /// Event-driven fused-cone evaluation from the pre-seeded worklist/forced
  /// rows; returns true when a primary-output row deviates from golden on
  /// any valid lane. Leaves cs touched/visited marks set for the caller.
  bool propagate(ConeScratch& cs) const;
  void clear_marks(ConeScratch& cs) const;
  /// Seed a forced-constant row at `target`. Returns false when the cached
  /// row already equals the constant on every valid lane (nothing to do).
  bool seed_tie(NodeId target, bool value, ConeScratch& cs) const;
  /// Build cs.fire_ (payload-enable per pattern lane) from the trigger AND
  /// over `trigger_nets` plus the per-set counter replay. Returns true when
  /// the payload fires at least once somewhere in the suite.
  bool payload_fires(std::span<const NodeId> trigger_nets, int counter_bits,
                     ConeScratch& cs) const;

  const Netlist* nl_;
  const DefenderSuite* suite_;
  bool sequential_ = false;
  bool seeded_ = false;
  std::shared_ptr<EvalPlan> plan_;  ///< nullptr = legacy Node-walking path
  std::size_t cap_ = 0;       ///< row-index capacity of rows/scratch
  std::size_t node_cap_ = 0;  ///< raw node ids covered by grow()
  std::size_t words_ = 0;     ///< fused row width: sum of set widths
  std::vector<SetSegment> segs_;
  std::vector<std::uint64_t> valid_;   ///< per fused word: valid-lane mask
  std::vector<std::uint64_t> rows_;    ///< row-index-major fused cache
  std::vector<std::uint64_t> golden_;  ///< output-major fused expected rows
  std::vector<NodeId> recorded_po_;    ///< outputs() as of the cached state
  /// Serialises the exclusive structure phase (commit_tie/resync_structure)
  /// against itself. The const judging API deliberately takes no lock — its
  /// safety contract is phase separation (no concurrent structural edits),
  /// which the annotation documents and Clang's analysis enforces for the
  /// guarded member.
  Mutex structure_mu_;
  /// Committed ties awaiting plan patch.
  std::vector<NodeId> pending_ties_ TZ_GUARDED_BY(structure_mu_);
  std::vector<std::uint32_t> rank_;    ///< identity over slots on the plan path
  ConeScratch self_{*this};  ///< scratch for the single-threaded API
};

/// Const references into a shared per-circuit artifact bundle
/// (campaign/artifacts.hpp) that let a FlowEngine skip rebuilding work that
/// is identical for every job on the same circuit. Everything here is
/// optional: a null member means "compute it yourself", and the engine
/// treats every member as immutable — jobs clone what they mutate (the
/// oracle seed is deep-copied by SuiteOracle's seeded constructor).
struct FlowSharedInputs {
  /// Oracle built on the circuit's compacted netlist + this job's suite;
  /// seeds the salvage-phase SuiteOracle clone.
  const SuiteOracle* salvage_oracle = nullptr;
  /// Golden power/area totals of N (the salvage baseline and Algorithm 2
  /// caps), from the store's one-time analysis.
  const PowerReport* golden_totals = nullptr;
};

/// One engine per (original netlist, defender suite, power model) triple;
/// runs both algorithms incrementally.
class FlowEngine {
 public:
  FlowEngine(const Netlist& original, const DefenderSuite& suite,
             const PowerModel& pm)
      : original_(&original), suite_(&suite), pm_(&pm) {}

  /// Attach shared artifacts (campaign path). `shared` must outlive the
  /// engine; pass nullptr to detach. Results are bit-identical with and
  /// without sharing — the A/B test in tests/campaign_test.cpp holds the
  /// engine to that.
  void set_shared(const FlowSharedInputs* shared) { shared_ = shared; }

  /// Algorithm 1 on a SuiteOracle: tie, O(cone) recheck, undo-log revert.
  /// With opt.threads resolving to > 1, upcoming candidates are screened
  /// speculatively in parallel and the verdicts consumed in canonical order
  /// up to the first accept (which invalidates the rest of the batch) —
  /// bit-identical to the sequential scan.
  SalvageResult salvage(const SalvageOptions& opt = {});

  /// Algorithm 2 on the oracle + PowerTracker: candidates are rejected
  /// before materialisation where possible; materialised rejects roll back
  /// through the added-node range. With opt.threads resolving to > 1, the
  /// per-victim trigger pools and suite verdicts for each HT descriptor are
  /// computed in parallel, then the victims are walked in canonical order —
  /// bit-identical to the sequential scan.
  InsertionResult insert(const SalvageResult& salvaged,
                         const InsertionOptions& opt = {});

 private:
  const Netlist* original_;
  const DefenderSuite* suite_;
  const PowerModel* pm_;
  const FlowSharedInputs* shared_ = nullptr;
};

/// Greedy dummy-gate balancing on tracker deltas (paper Sec. IV-4). Adds
/// unconnected-output gates until every remaining differential sits inside
/// the slack band, never letting any of total/dynamic/leakage power or area
/// exceed `threshold`. The tracker must be synced to `nl` and not be inside
/// a transaction. Returns the number of gates added.
std::size_t balance_with_dummies(Netlist& nl, PowerTracker& tracker,
                                 const PowerReport& threshold,
                                 const InsertionOptions& opt);

}  // namespace tz
