#include "core/report.hpp"

#include <iomanip>
#include <iostream>
#include <ostream>

#include "core/flow_engine.hpp"
#include "core/trigger_prob.hpp"
#include "verify/verify.hpp"

namespace tz {

namespace {

/// Flow-boundary diagnostics: name the corrupted invariant on stderr before
/// the VerifyError unwinds, so a broken structure surfaces at the mutation
/// that caused it instead of as a bit-mismatch deep inside an engine.
[[noreturn]] void report_and_rethrow(const VerifyError& e) {
  std::cerr << "trojanzero: invariant check failed at " << e.phase() << ":\n"
            << e.report().format();
  throw;
}

}  // namespace

FlowResult run_trojanzero_flow(const std::string& benchmark_name,
                               FlowOptions options) {
  FlowResult r;
  r.benchmark = benchmark_name;
  r.original = make_benchmark(benchmark_name);
  if (check_enabled()) {
    // Gate the flow on a clean input: a generator/parser defect is reported
    // here, not attributed to the first salvage commit downstream.
    verify_or_throw(r.original, nullptr, "flow input");
  }

  const PowerModel pm(CellLibrary::tsmc65_like());

  // Phase (a): defender test patterns + HT-free thresholds.
  r.suite = make_defender_suite(r.original, options.testgen);
  r.atpg_coverage = r.suite.algorithms.front().coverage.coverage();
  r.p_n = pm.analyze(r.original).totals;

  FlowEngine engine(r.original, r.suite, pm);

  // Phase (b): Algorithm 1.
  SalvageOptions sopt;
  sopt.pth = options.pth;
  sopt.order = options.order;
  try {
    r.salvage = engine.salvage(sopt);
  } catch (const VerifyError& e) {
    report_and_rethrow(e);
  }
  r.p_np = r.salvage.power_after;

  // Phase (c): Algorithm 2. The library starts with the Table I counter for
  // this circuit and falls back to smaller HTs when the salvaged budget
  // cannot fund it (Algorithm 2 line 16: "selecting another HT").
  InsertionOptions iopt = options.insertion;
  if (iopt.library.empty()) {
    for (int bits = options.counter_bits; bits >= 2; --bits) {
      iopt.library.push_back(counter_trojan(bits));
    }
    iopt.library.push_back(counter_trojan(0));  // comparator trigger
  }
  try {
    r.insertion = engine.insert(r.salvage, iopt);
  } catch (const VerifyError& e) {
    report_and_rethrow(e);
  }
  r.p_npp = r.insertion.power;

  // Pft over the defender's total pattern count — only when an HT was
  // actually placed; a failed insertion reports zero exposure instead of a
  // row fabricated from a default-constructed descriptor.
  if (r.insertion.success) {
    std::size_t test_len = 0;
    for (const DefenderTestSet& ts : r.suite.algorithms) {
      test_len += ts.patterns.num_patterns();
    }
    r.pft = analytic_pft(r.insertion.trigger_p1, test_len, 0);
    r.pft_payload = analytic_pft(r.insertion.trigger_p1, test_len,
                                 r.insertion.ht_desc.counter_bits);
  }
  return r;
}

FlowResult run_trojanzero_flow(const std::string& benchmark_name) {
  FlowOptions opt;
  if (benchmark_name != "c17") {
    const BenchmarkSpec& spec = spec_for(benchmark_name);
    opt.pth = spec.pth;
    opt.counter_bits = spec.counter_bits;
  } else {
    opt.pth = 0.9;
    opt.counter_bits = 2;
  }
  return run_trojanzero_flow(benchmark_name, opt);
}

void print_table1_row(std::ostream& os, const FlowResult& r,
                      const BenchmarkSpec& paper) {
  const auto flags = os.flags();
  os << std::left << std::setw(7) << r.benchmark << std::right << std::fixed
     << std::setprecision(1);
  os << " gates " << std::setw(5) << r.original.gate_count() << " (paper "
     << paper.paper_gates << ")";
  os << " | Pth " << std::setprecision(4) << paper.pth;
  os << " | C " << std::setw(3) << r.salvage.candidates << " (paper "
     << paper.paper_candidates << ")";
  os << " | Eg " << std::setw(3) << r.salvage.expendable_gates << " (paper "
     << paper.paper_expendable << ")";
  os << " | HT " << (r.insertion.success ? r.insertion.ht_name : "no HT");
  os << std::setprecision(1);
  os << " | P(N/N'/N'') " << r.p_n.total_uw() << "/" << r.p_np.total_uw()
     << "/" << r.p_npp.total_uw() << " uW (paper " << paper.paper_power_n
     << "/" << paper.paper_power_np << "/" << paper.paper_power_npp << ")";
  os << " | A " << r.p_n.area_ge << "/" << r.p_np.area_ge << "/"
     << r.p_npp.area_ge << " GE (paper " << paper.paper_area_n << "/"
     << paper.paper_area_np << "/" << paper.paper_area_npp << ")";
  os << " | Pft " << std::scientific << std::setprecision(1) << r.pft
     << " (paper " << paper.paper_pft << ")\n";
  os.flags(flags);
}

void print_power_triple(std::ostream& os, const FlowResult& r,
                        const BenchmarkSpec& paper) {
  const auto flags = os.flags();
  os << std::fixed << std::setprecision(2);
  os << r.benchmark << "\n";
  os << "  dynamic uW  N " << std::setw(8) << r.p_n.dynamic_uw << "  N' "
     << std::setw(8) << r.p_np.dynamic_uw << "  N'' " << std::setw(8)
     << r.p_npp.dynamic_uw << "\n";
  os << "  leakage uW  N " << std::setw(8) << r.p_n.leakage_uw << "  N' "
     << std::setw(8) << r.p_np.leakage_uw << "  N'' " << std::setw(8)
     << r.p_npp.leakage_uw << "\n";
  os << "  area    GE  N " << std::setw(8) << r.p_n.area_ge << "  N' "
     << std::setw(8) << r.p_np.area_ge << "  N'' " << std::setw(8)
     << r.p_npp.area_ge << "   (paper totals " << paper.paper_area_n << "/"
     << paper.paper_area_np << "/" << paper.paper_area_npp << ")\n";
  os.flags(flags);
}

}  // namespace tz
