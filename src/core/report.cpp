#include "core/report.hpp"

#include <iomanip>
#include <ostream>

namespace tz {

// run_trojanzero_flow is defined in campaign/job.cpp since the campaign
// refactor: it is a one-job campaign (cold ArtifactStore + run_flow_job).
// This TU keeps the presentation layer, which reads only serializable
// fields (FlowMeta + scalar results) so a FlowResult deserialized from a
// campaign JSONL row prints exactly like a freshly computed one.

void print_table1_row(std::ostream& os, const FlowResult& r,
                      const BenchmarkSpec& paper) {
  const auto flags = os.flags();
  os << std::left << std::setw(7) << r.benchmark << std::right << std::fixed
     << std::setprecision(1);
  os << " gates " << std::setw(5) << r.meta.gates << " (paper "
     << paper.paper_gates << ")";
  os << " | Pth " << std::setprecision(4) << paper.pth;
  os << " | C " << std::setw(3) << r.salvage.candidates << " (paper "
     << paper.paper_candidates << ")";
  os << " | Eg " << std::setw(3) << r.salvage.expendable_gates << " (paper "
     << paper.paper_expendable << ")";
  os << " | HT " << (r.insertion.success ? r.insertion.ht_name : "no HT");
  os << std::setprecision(1);
  os << " | P(N/N'/N'') " << r.p_n.total_uw() << "/" << r.p_np.total_uw()
     << "/" << r.p_npp.total_uw() << " uW (paper " << paper.paper_power_n
     << "/" << paper.paper_power_np << "/" << paper.paper_power_npp << ")";
  os << " | A " << r.p_n.area_ge << "/" << r.p_np.area_ge << "/"
     << r.p_npp.area_ge << " GE (paper " << paper.paper_area_n << "/"
     << paper.paper_area_np << "/" << paper.paper_area_npp << ")";
  os << " | Pft " << std::scientific << std::setprecision(1) << r.pft
     << " (paper " << paper.paper_pft << ")\n";
  os.flags(flags);
}

void print_power_triple(std::ostream& os, const FlowResult& r,
                        const BenchmarkSpec& paper) {
  const auto flags = os.flags();
  os << std::fixed << std::setprecision(2);
  os << r.benchmark << "\n";
  os << "  dynamic uW  N " << std::setw(8) << r.p_n.dynamic_uw << "  N' "
     << std::setw(8) << r.p_np.dynamic_uw << "  N'' " << std::setw(8)
     << r.p_npp.dynamic_uw << "\n";
  os << "  leakage uW  N " << std::setw(8) << r.p_n.leakage_uw << "  N' "
     << std::setw(8) << r.p_np.leakage_uw << "  N'' " << std::setw(8)
     << r.p_npp.leakage_uw << "\n";
  os << "  area    GE  N " << std::setw(8) << r.p_n.area_ge << "  N' "
     << std::setw(8) << r.p_np.area_ge << "  N'' " << std::setw(8)
     << r.p_npp.area_ge << "   (paper totals " << paper.paper_area_n << "/"
     << paper.paper_area_np << "/" << paper.paper_area_npp << ")\n";
  os.flags(flags);
}

}  // namespace tz
