#include "sat/miter.hpp"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <random>
#include <span>
#include <stdexcept>
#include <utility>

#include "sat/tseitin.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"
#include "verify/verify.hpp"

namespace tz::sat {

IncrementalMiter::IncrementalMiter(const Netlist& a, const Netlist& b,
                                   MiterOptions opts)
    : a_(a), b_(b), opts_(std::move(opts)) {
  if (a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size()) {
    throw std::invalid_argument("check_equivalence: interface mismatch");
  }
  va_.assign(a.raw_size(), -1);
  vb_.assign(b.raw_size(), -1);
  vb_repr_.assign(b.raw_size(), -1);
  pi_vars_.assign(a.inputs().size(), -1);
  common_dffs_ = std::min(a.dffs().size(), b.dffs().size());
  dff_vars_.assign(common_dffs_, -1);
  hint_a_.assign(a.raw_size(), -1);
  hint_b_.assign(b.raw_size(), -1);

  const auto build_indexes = [](const Netlist& nl, std::vector<int>& pi_idx,
                                std::vector<int>& dff_idx,
                                std::vector<std::uint32_t>& topo_pos) {
    pi_idx.assign(nl.raw_size(), -1);
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      pi_idx[nl.inputs()[i]] = static_cast<int>(i);
    }
    dff_idx.assign(nl.raw_size(), -1);
    for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
      dff_idx[nl.dffs()[i]] = static_cast<int>(i);
    }
    topo_pos.assign(nl.raw_size(), 0);
    const std::vector<NodeId> order = nl.topo_order();
    for (std::size_t i = 0; i < order.size(); ++i) {
      topo_pos[order[i]] = static_cast<std::uint32_t>(i);
    }
  };
  build_indexes(a_, pi_index_a_, dff_index_a_, topo_pos_a_);
  build_indexes(b_, pi_index_b_, dff_index_b_, topo_pos_b_);
}

Var IncrementalMiter::pi_var(std::size_t i) {
  if (pi_vars_[i] < 0) {
    const Var v = solver_.new_var();
    pi_vars_[i] = v;
    const NodeId ia = a_.inputs()[i];
    const NodeId ib = b_.inputs()[i];
    va_[ia] = v;
    vb_[ib] = v;
    vb_repr_[ib] = v;
    if (hint_a_[ia] >= 0) solver_.set_phase(v, hint_a_[ia] != 0);
  }
  return pi_vars_[i];
}

Var IncrementalMiter::dff_var(std::size_t i) {
  if (dff_vars_[i] < 0) {
    const Var v = solver_.new_var();
    dff_vars_[i] = v;
    const NodeId ia = a_.dffs()[i];
    const NodeId ib = b_.dffs()[i];
    va_[ia] = v;
    vb_[ib] = v;
    vb_repr_[ib] = v;
    if (hint_a_[ia] >= 0) solver_.set_phase(v, hint_a_[ia] != 0);
  }
  return dff_vars_[i];
}

bool IncrementalMiter::sweep_equal(Var x, Var y) {
  const Lit lx = Lit::make(x);
  const Lit ly = Lit::make(y);
  if (solver_.solve({lx, ~ly}, opts_.sweep_conflict_limit) !=
      SolveResult::Unsat) {
    return false;
  }
  if (solver_.solve({~lx, ly}, opts_.sweep_conflict_limit) !=
      SolveResult::Unsat) {
    return false;
  }
  solver_.add_binary(~lx, ly);
  solver_.add_binary(lx, ~ly);
  return true;
}

Var IncrementalMiter::ensure_var(bool side_b, NodeId root) {
  const Netlist& nl = side_b ? b_ : a_;
  std::vector<Var>& vars = side_b ? vb_ : va_;
  if (vars[root] != -1) return vars[root];

  // Cone-of-influence, pruned at already-encoded nodes: a full fanin_cone
  // per output would revisit the whole shared cone for each of the (possibly
  // tens of thousands of) outputs, turning the walk quadratic at 100k-gate
  // scale. Stopping at encoded frontiers keeps the total cone work across
  // all ensure_var calls linear in the circuit's edges.
  std::vector<std::uint32_t>& stamp = side_b ? stamp_b_ : stamp_a_;
  if (stamp.size() < nl.raw_size()) stamp.resize(nl.raw_size(), 0);
  ++epoch_;
  cone_.clear();
  dfs_stack_.assign(1, root);
  while (!dfs_stack_.empty()) {
    const NodeId id = dfs_stack_.back();
    dfs_stack_.pop_back();
    if (stamp[id] == epoch_) continue;
    stamp[id] = epoch_;
    cone_.push_back(id);
    for (const NodeId f : nl.node(id).fanin) {
      if (vars[f] == -1 && stamp[f] != epoch_) dfs_stack_.push_back(f);
    }
  }
  std::vector<NodeId>& cone = cone_;
  const std::vector<std::uint32_t>& pos = side_b ? topo_pos_b_ : topo_pos_a_;
  std::sort(cone.begin(), cone.end(),
            [&pos](NodeId x, NodeId y) { return pos[x] < pos[y]; });

  const std::vector<int>& pi_idx = side_b ? pi_index_b_ : pi_index_a_;
  const std::vector<int>& dff_idx = side_b ? dff_index_b_ : dff_index_a_;
  const std::vector<signed char>& hints = side_b ? hint_b_ : hint_a_;
  std::vector<Lit> ins;
  for (const NodeId id : cone) {
    if (vars[id] != -1) continue;
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) {
      vars[id] = pi_var(static_cast<std::size_t>(pi_idx[id]));
      continue;
    }
    if (n.type == GateType::Dff) {
      const int di = dff_idx[id];
      if (di >= 0 && static_cast<std::size_t>(di) < common_dffs_) {
        vars[id] = dff_var(static_cast<std::size_t>(di));
      } else {
        // A DFF present on one side only (an inserted HT's counter bit):
        // pinned to its reset state, matching the single-frame-at-reset
        // semantics of the original monolithic miter.
        const Var v = solver_.new_var();
        vars[id] = v;
        solver_.add_unit(~Lit::make(v));
      }
      continue;
    }
    // Structural sharing: a b-side gate whose name/type/arity match an
    // encoded a-side gate with variable-identical fanins needs no clauses.
    NodeId twin = kNoNode;
    if (side_b && opts_.structural_match) {
      twin = a_.find(n.name);
      if (twin != kNoNode && va_[twin] != -1) {
        const Node& na = a_.node(twin);
        if (na.type == n.type && na.fanin.size() == n.fanin.size()) {
          bool all = true;
          for (std::size_t k = 0; k < n.fanin.size(); ++k) {
            const Var bf = vb_repr_[n.fanin[k]] != -1 ? vb_repr_[n.fanin[k]]
                                                      : vb_[n.fanin[k]];
            if (bf == -1 || bf != va_[na.fanin[k]]) {
              all = false;
              break;
            }
          }
          if (all) {
            vars[id] = va_[twin];
            vb_repr_[id] = va_[twin];
            ++stats_.shared_nodes;
            continue;
          }
        }
      }
    }
    const Var v = solver_.new_var();
    vars[id] = v;
    if (hints[id] >= 0) solver_.set_phase(v, hints[id] != 0);
    ins.clear();
    ins.reserve(n.fanin.size());
    for (const NodeId f : n.fanin) ins.push_back(Lit::make(vars[f]));
    encode_node(solver_, n.type, Lit::make(v), ins);
    // Near-miss at a rewrite frontier: the a side has a gate of the same
    // name but the cones diverged below it. A bounded sweep query can often
    // prove the pair equal anyway; merging with a biconditional lets the
    // structural matcher resume on the fanout side of the rewrite.
    if (side_b && opts_.structural_match && twin != kNoNode &&
        va_[twin] != -1 && sweep_equal(va_[twin], v)) {
      vb_repr_[id] = va_[twin];
      ++stats_.sweep_merges;
    }
  }
  return vars[root];
}

bool IncrementalMiter::run_prepass(EquivalenceResult& res) {
  const std::size_t num_patterns =
      64 * static_cast<std::size_t>(std::max(1, opts_.prepass_words));
  const PatternSet pats =
      random_patterns(a_.inputs().size(), num_patterns, 0x54505245u);
  std::vector<std::uint64_t> st_a(a_.dffs().size(), 0);
  std::vector<std::uint64_t> st_b(b_.dffs().size(), 0);
  std::mt19937_64 rng(0x5EED5A7Full);
  for (std::size_t i = 0; i < common_dffs_; ++i) st_a[i] = st_b[i] = rng();
  // Extra DFFs stay 0: the SAT miter pins them to reset, and the pre-pass
  // must not report differences the miter would rule out.
  const BitSimulator sim_a(a_);
  const BitSimulator sim_b(b_);
  const NodeValues vals_a =
      sim_a.run(pats, st_a.empty() ? nullptr : &st_a, ValueLayout::Contiguous);
  const NodeValues vals_b =
      sim_b.run(pats, st_b.empty() ? nullptr : &st_b, ValueLayout::Contiguous);

  for (std::size_t o = 0; o < a_.outputs().size(); ++o) {
    const NodeId oa = a_.outputs()[o];
    const NodeId ob = b_.outputs()[o];
    for (std::size_t p = 0; p < num_patterns; ++p) {
      if (vals_a.bit(oa, p) == vals_b.bit(ob, p)) continue;
      // Replayable witness straight from simulation: no SAT call needed.
      res.equivalent = false;
      res.failing_output = static_cast<int>(o);
      res.counterexample.assign(a_.inputs().size(), false);
      for (std::size_t i = 0; i < a_.inputs().size(); ++i) {
        res.counterexample[i] = pats.get(p, i);
      }
      // DFF rows are one state word broadcast across pattern words, so
      // pattern p saw bit (p % 64) of the state word.
      res.dff_values.assign(a_.dffs().size(), false);
      for (std::size_t i = 0; i < common_dffs_; ++i) {
        res.dff_values[i] = ((st_a[i] >> (p % 64)) & 1) != 0;
      }
      stats_.prepass_hit = true;
      return true;
    }
  }
  // Both sides agree on every sampled pattern: seed decision phases with the
  // pattern-0 trace so the solver searches near a consistent assignment.
  for (NodeId id = 0; id < a_.raw_size(); ++id) {
    if (a_.is_alive(id)) hint_a_[id] = vals_a.bit(id, 0) ? 1 : 0;
  }
  for (NodeId id = 0; id < b_.raw_size(); ++id) {
    if (b_.is_alive(id)) hint_b_[id] = vals_b.bit(id, 0) ? 1 : 0;
  }
  return false;
}

void IncrementalMiter::extract_witness(EquivalenceResult& res,
                                       int failing_output) {
  res.equivalent = false;
  res.failing_output = failing_output;
  res.counterexample.assign(a_.inputs().size(), false);
  for (std::size_t i = 0; i < a_.inputs().size(); ++i) {
    // PIs outside every encoded cone are unconstrained: default false.
    if (pi_vars_[i] >= 0) {
      res.counterexample[i] = solver_.model_value(pi_vars_[i]);
    }
  }
  res.dff_values.assign(a_.dffs().size(), false);
  for (std::size_t i = 0; i < common_dffs_; ++i) {
    if (dff_vars_[i] >= 0) {
      res.dff_values[i] = solver_.model_value(dff_vars_[i]);
    }
  }
  // a-side extra DFFs are pinned to 0 (reset) — already false.
}

EquivalenceResult IncrementalMiter::check() {
  EquivalenceResult res;
  stats_.outputs_total = a_.outputs().size();

  const auto finish = [this](EquivalenceResult r) {
    if (!opts_.dimacs_path.empty()) {
      std::ofstream os(opts_.dimacs_path);
      solver_.write_dimacs(os);
    }
    if (check_enabled()) {
      VerifyReport rep = SatChecker::run(solver_);
      if (!rep.ok()) throw VerifyError("sat-miter", std::move(rep));
    }
    return r;
  };

  if (opts_.prepass && run_prepass(res)) return finish(res);

  // Check output pairs in topological order of the a-side cones, so learnt
  // clauses and committed equalities flow from shallow cones to deep ones.
  std::vector<std::size_t> order(a_.outputs().size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [this](std::size_t x, std::size_t y) {
    return topo_pos_a_[a_.outputs()[x]] < topo_pos_a_[a_.outputs()[y]];
  });

  std::int64_t budget = opts_.conflict_limit;
  for (const std::size_t o : order) {
    const Var oa = ensure_var(false, a_.outputs()[o]);
    const Var ob = ensure_var(true, b_.outputs()[o]);
    const Var obr = vb_repr_[b_.outputs()[o]];
    if (oa == ob || oa == obr) {
      ++stats_.outputs_shared;  // proved equal purely structurally
      continue;
    }
    const Lit la = Lit::make(oa);
    const Lit lb = Lit::make(ob);
    const Lit d = Lit::make(solver_.new_var());
    solver_.add_ternary(~d, la, lb);
    solver_.add_ternary(~d, ~la, ~lb);
    solver_.add_ternary(d, ~la, lb);
    solver_.add_ternary(d, la, ~lb);
    ++stats_.sat_calls;
    const SolveResult r = solver_.solve({d}, budget);
    if (budget >= 0) {
      budget = std::max<std::int64_t>(0, budget - solver_.conflicts());
    }
    if (r == SolveResult::Sat) {
      extract_witness(res, static_cast<int>(o));
      return finish(res);
    }
    if (r == SolveResult::Unknown) {
      res.decided = false;
      return finish(res);
    }
    // UNSAT: commit the proved equality so later cones reuse it.
    solver_.add_unit(~d);
    ++stats_.outputs_proved;
  }
  res.equivalent = true;
  return finish(res);
}

}  // namespace tz::sat
