#include "sat/solver.hpp"

#include <algorithm>
#include <cstdint>
#include <ostream>

namespace tz::sat {

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::Undef);
  model_.push_back(LBool::Undef);
  phase_.push_back(0);
  activity_.push_back(0.0);
  reason_.push_back(kNoClause);
  level_.push_back(0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  bin_watches_.emplace_back();
  bin_watches_.emplace_back();
  order_.insert(v);
  return v;
}

bool Solver::add_clause(std::vector<Lit> lits) {
  if (!ok_) return false;
  // The solver is always at level 0 between solves, so level-0 simplification
  // (drop false literals, discard satisfied clauses) is sound here.
  std::sort(lits.begin(), lits.end(), [](Lit a, Lit b) { return a.x < b.x; });
  std::vector<Lit> out;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (i > 0 && lits[i] == lits[i - 1]) continue;
    if (i > 0 && lits[i].var() == lits[i - 1].var()) return true;  // taut
    if (value(lits[i]) == LBool::True) return true;  // already satisfied
    if (value(lits[i]) == LBool::False) continue;    // level-0 false
    out.push_back(lits[i]);
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], kNoClause);
    ok_ = propagate() == kNoClause;
    return ok_;
  }
  const ClauseRef cr = arena_.alloc(out, false);
  clauses_.push_back(cr);
  attach(cr);
  return true;
}

void Solver::attach(ClauseRef cr) {
  const Lit c0 = arena_.lit(cr, 0);
  const Lit c1 = arena_.lit(cr, 1);
  if (arena_.size(cr) == 2) {
    bin_watches_[(~c0).x].push_back(BinWatcher{c1, cr});
    bin_watches_[(~c1).x].push_back(BinWatcher{c0, cr});
  } else {
    watches_[(~c0).x].push_back(Watcher{cr, c1});
    watches_[(~c1).x].push_back(Watcher{cr, c0});
  }
}

void Solver::detach(ClauseRef cr) {
  auto remove_from = [cr](std::vector<Watcher>& ws) {
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].cref == cr) {
        ws[i] = ws.back();
        ws.pop_back();
        return;
      }
    }
  };
  remove_from(watches_[(~arena_.lit(cr, 0)).x]);
  remove_from(watches_[(~arena_.lit(cr, 1)).x]);
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  assigns_[l.var()] = l.neg() ? LBool::False : LBool::True;
  reason_[l.var()] = reason;
  level_[l.var()] = decision_level();
  trail_.push_back(l);
}

ClauseRef Solver::propagate() {
  ClauseRef confl = kNoClause;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];  // p is true; watchers of ~p wake up
    ++stats_.propagations;

    // Binary implications: resolved entirely from the watch list.
    for (const BinWatcher& bw : bin_watches_[p.x]) {
      const LBool v = value(bw.other);
      if (v == LBool::False) {
        qhead_ = trail_.size();
        return bw.cref;
      }
      if (v == LBool::Undef) enqueue(bw.other, bw.cref);
    }

    std::vector<Watcher>& ws = watches_[p.x];
    std::size_t i = 0;
    std::size_t j = 0;
    const Lit false_lit = ~p;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      // Blocker already true: clause satisfied, arena untouched.
      if (value(w.blocker) == LBool::True) {
        ws[j++] = w;
        ++i;
        continue;
      }
      const ClauseRef cr = w.cref;
      std::uint32_t* lits = arena_.raw_lits(cr);
      const std::uint32_t fx = static_cast<std::uint32_t>(false_lit.x);
      if (lits[0] == fx) std::swap(lits[0], lits[1]);
      const Lit first{static_cast<std::int32_t>(lits[0])};
      const Watcher w2{cr, first};
      if (first != w.blocker && value(first) == LBool::True) {
        ws[j++] = w2;
        ++i;
        continue;
      }
      // Look for a new literal to watch.
      const std::uint32_t sz = arena_.size(cr);
      bool moved = false;
      for (std::uint32_t k = 2; k < sz; ++k) {
        const Lit lk{static_cast<std::int32_t>(lits[k])};
        if (value(lk) != LBool::False) {
          lits[1] = lits[k];
          lits[k] = fx;
          watches_[(~lk).x].push_back(w2);
          moved = true;
          break;
        }
      }
      if (moved) {
        ++i;
        continue;
      }
      // Unit or conflicting.
      ws[j++] = w2;
      ++i;
      if (value(first) == LBool::False) {
        confl = cr;
        qhead_ = trail_.size();
        while (i < ws.size()) ws[j++] = ws[i++];
        break;
      }
      enqueue(first, cr);
    }
    ws.resize(j);
    if (confl != kNoClause) break;
  }
  return confl;
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    // Uniform rescale preserves heap order.
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_.increased(v);
}

void Solver::bump_clause(ClauseRef cr) {
  const float a = arena_.activity(cr) + cla_inc_;
  arena_.set_activity(cr, a);
  if (a > 1e20F) {
    for (const ClauseRef lr : learnts_) {
      arena_.set_activity(lr, arena_.activity(lr) * 1e-20F);
    }
    cla_inc_ *= 1e-20F;
  }
}

std::uint32_t Solver::compute_lbd(const std::vector<Lit>& lits) {
  lbd_scratch_.clear();
  for (const Lit l : lits) lbd_scratch_.push_back(level_[l.var()]);
  std::sort(lbd_scratch_.begin(), lbd_scratch_.end());
  std::uint32_t glue = 0;
  for (std::size_t i = 0; i < lbd_scratch_.size(); ++i) {
    if (i == 0 || lbd_scratch_[i] != lbd_scratch_[i - 1]) ++glue;
  }
  return glue;
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& learnt,
                     int& bt_level, std::uint32_t& lbd) {
  learnt.clear();
  learnt.push_back(kLitUndef);  // slot for the asserting literal
  int path = 0;
  Lit p = kLitUndef;
  std::size_t index = trail_.size();
  ClauseRef reason = conflict;
  do {
    if (arena_.learnt(reason)) bump_clause(reason);
    const std::uint32_t sz = arena_.size(reason);
    const std::uint32_t* lits = arena_.raw_lits(reason);
    for (std::uint32_t i = 0; i < sz; ++i) {
      const Lit q{static_cast<std::int32_t>(lits[i])};
      // For a reason clause, skip the implied literal itself. (Binary
      // clauses are propagated from the watch lists without normalizing the
      // arena copy, so the implied literal is not necessarily at slot 0.)
      if (p != kLitUndef && q.var() == p.var()) continue;
      if (!seen_[q.var()] && level_[q.var()] > 0) {
        seen_[q.var()] = 1;
        bump_var(q.var());
        if (level_[q.var()] >= decision_level()) {
          ++path;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Next literal on the trail to resolve on.
    while (!seen_[trail_[index - 1].var()]) --index;
    p = trail_[--index];
    seen_[p.var()] = 0;
    reason = reason_[p.var()];
    --path;
  } while (path > 0);
  learnt[0] = ~p;

  // Recursive (deep) minimization: drop literals implied by the rest of the
  // learnt clause through the implication graph.
  analyze_clear_.assign(learnt.begin() + 1, learnt.end());
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    abstract_levels |= 1U << (level_[learnt[i].var()] & 31);
  }
  std::size_t keep = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (reason_[learnt[i].var()] == kNoClause ||
        !lit_redundant(learnt[i], abstract_levels)) {
      learnt[keep++] = learnt[i];
    }
  }
  stats_.minimized_lits += static_cast<std::int64_t>(learnt.size() - keep);
  learnt.resize(keep);

  // Backtrack level: second-highest decision level in the clause.
  bt_level = 0;
  if (learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[learnt[i].var()] > level_[learnt[max_i].var()]) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    bt_level = level_[learnt[1].var()];
  }
  lbd = compute_lbd(learnt);

  for (const Lit l : analyze_clear_) seen_[l.var()] = 0;
  analyze_clear_.clear();
}

bool Solver::lit_redundant(Lit p, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(p);
  const std::size_t top = analyze_clear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    const ClauseRef cr = reason_[q.var()];
    const std::uint32_t sz = arena_.size(cr);
    const std::uint32_t* lits = arena_.raw_lits(cr);
    for (std::uint32_t i = 0; i < sz; ++i) {
      const Lit l{static_cast<std::int32_t>(lits[i])};
      if (l.var() == q.var()) continue;
      if (seen_[l.var()] || level_[l.var()] == 0) continue;
      if (reason_[l.var()] != kNoClause &&
          ((1U << (level_[l.var()] & 31)) & abstract_levels) != 0) {
        seen_[l.var()] = 1;
        analyze_stack_.push_back(l);
        analyze_clear_.push_back(l);
      } else {
        // Not redundant: unmark everything this probe marked.
        for (std::size_t k = top; k < analyze_clear_.size(); ++k) {
          seen_[analyze_clear_[k].var()] = 0;
        }
        analyze_clear_.resize(top);
        return false;
      }
    }
  }
  return true;
}

void Solver::cancel_until(int target) {
  if (decision_level() <= target) return;
  const std::size_t lim = trail_lim_[target];
  for (std::size_t i = trail_.size(); i > lim; --i) {
    const Var v = trail_[i - 1].var();
    phase_[v] = assigns_[v] == LBool::True ? 1 : 0;
    assigns_[v] = LBool::Undef;
    reason_[v] = kNoClause;
    order_.insert(v);
  }
  trail_.resize(lim);
  trail_lim_.resize(target);
  qhead_ = trail_.size();
}

Lit Solver::pick_branch() {
  while (!order_.empty()) {
    const Var v = order_.remove_max();
    if (assigns_[v] == LBool::Undef) return Lit::make(v, phase_[v] == 0);
  }
  return kLitUndef;
}

void Solver::reduce_db() {
  ++stats_.reduces;
  // Candidates for removal: long, non-glue, not currently a reason.
  std::vector<ClauseRef> cand;
  cand.reserve(learnts_.size());
  for (const ClauseRef cr : learnts_) {
    if (arena_.size(cr) > 2 && arena_.lbd(cr) > 2 && !locked(cr)) {
      cand.push_back(cr);
    }
  }
  // Worst first: highest LBD, then lowest activity.
  std::sort(cand.begin(), cand.end(), [this](ClauseRef a, ClauseRef b) {
    if (arena_.lbd(a) != arena_.lbd(b)) return arena_.lbd(a) > arena_.lbd(b);
    return arena_.activity(a) < arena_.activity(b);
  });
  cand.resize(cand.size() / 2);
  for (const ClauseRef cr : cand) {
    detach(cr);
    arena_.free_clause(cr);
  }
  std::sort(cand.begin(), cand.end());
  std::size_t keep = 0;
  for (const ClauseRef cr : learnts_) {
    if (!std::binary_search(cand.begin(), cand.end(), cr)) {
      learnts_[keep++] = cr;
    }
  }
  stats_.removed_learnts += static_cast<std::int64_t>(learnts_.size() - keep);
  learnts_.resize(keep);
  reduce_cap_ += 512;
  check_garbage();
}

void Solver::check_garbage() {
  if (arena_.size_words() < (1U << 14) ||
      arena_.wasted_words() * 4 < arena_.size_words()) {
    return;
  }
  ++stats_.gc_runs;
  ClauseArena to;
  to.reserve(arena_.size_words() - arena_.wasted_words());
  for (auto& ws : watches_) {
    for (Watcher& w : ws) arena_.reloc(w.cref, to);
  }
  for (auto& ws : bin_watches_) {
    for (BinWatcher& w : ws) arena_.reloc(w.cref, to);
  }
  for (const Lit l : trail_) {
    ClauseRef& r = reason_[l.var()];
    if (r != kNoClause) arena_.reloc(r, to);
  }
  for (ClauseRef& cr : clauses_) arena_.reloc(cr, to);
  for (ClauseRef& cr : learnts_) arena_.reloc(cr, to);
  arena_ = std::move(to);
}

std::int64_t Solver::luby(std::int64_t i) {
  // Luby sequence 1,1,2,1,1,2,4,... (1-indexed lookup for term i).
  std::int64_t k = 1;
  while ((1LL << k) - 1 < i + 1) ++k;
  while ((1LL << k) - 1 != i + 1) {
    --k;
    i %= (1LL << k) - 1;
  }
  return 1LL << (k - 1);
}

SolveResult Solver::solve(const std::vector<Lit>& assumptions,
                          std::int64_t conflict_limit) {
  conflicts_ = 0;
  if (!ok_) return SolveResult::Unsat;
  cancel_until(0);

  std::vector<Lit> learnt;
  std::int64_t curr_restarts = 0;
  std::int64_t restart_budget = 100 * luby(curr_restarts);
  std::int64_t since_restart = 0;

  while (true) {
    const ClauseRef confl = propagate();
    if (confl != kNoClause) {
      ++conflicts_;
      ++stats_.conflicts;
      ++since_restart;
      if (decision_level() == 0) {
        // Latch the refutation: the conflicting clause was consumed from the
        // propagation queue, so without ok_ a later solve would sail past it.
        ok_ = false;
        cancel_until(0);
        return SolveResult::Unsat;
      }
      int bt_level = 0;
      std::uint32_t lbd = 0;
      analyze(confl, learnt, bt_level, lbd);
      // Backtracking may pass assumption levels: the search loop below
      // re-places any assumption that got unassigned, and a unit learnt
      // asserts at level 0 where it persists across the whole solve.
      cancel_until(bt_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoClause);
      } else {
        const ClauseRef cr = arena_.alloc(learnt, true);
        arena_.set_lbd(cr, lbd);
        attach(cr);
        learnts_.push_back(cr);
        bump_clause(cr);
        enqueue(learnt[0], cr);
      }
      var_inc_ /= 0.95;
      cla_inc_ /= 0.999F;
      if (conflict_limit >= 0 && conflicts_ >= conflict_limit) {
        cancel_until(0);
        return SolveResult::Unknown;
      }
      continue;
    }

    if (since_restart >= restart_budget) {
      ++curr_restarts;
      ++stats_.restarts;
      since_restart = 0;
      restart_budget = 100 * luby(curr_restarts);
      cancel_until(0);
    }
    if (learnts_.size() >= reduce_cap_) reduce_db();

    // Place the next unsatisfied assumption as a decision, or branch.
    Lit next = kLitUndef;
    while (decision_level() < static_cast<int>(assumptions.size())) {
      const Lit a = assumptions[decision_level()];
      if (value(a) == LBool::True) {
        new_decision_level();  // dummy level keeps the indexing aligned
      } else if (value(a) == LBool::False) {
        cancel_until(0);
        return SolveResult::Unsat;
      } else {
        next = a;
        break;
      }
    }
    if (next == kLitUndef) {
      next = pick_branch();
      if (next == kLitUndef) {
        model_ = assigns_;
        cancel_until(0);
        return SolveResult::Sat;
      }
      ++stats_.decisions;
    }
    new_decision_level();
    enqueue(next, kNoClause);
  }
}

void Solver::write_dimacs(std::ostream& os) const {
  const auto dimacs = [](Lit l) {
    return (l.var() + 1) * (l.neg() ? -1 : 1);
  };
  // Level-0 facts are emitted as unit clauses (the caller dumps at level 0,
  // where the whole trail is fact).
  std::size_t num = clauses_.size() + trail_.size() + (ok_ ? 0 : 1);
  os << "p cnf " << num_vars() << ' ' << num << '\n';
  for (const Lit l : trail_) os << dimacs(l) << " 0\n";
  for (const ClauseRef cr : clauses_) {
    const std::uint32_t sz = arena_.size(cr);
    for (std::uint32_t i = 0; i < sz; ++i) os << dimacs(arena_.lit(cr, i)) << ' ';
    os << "0\n";
  }
  if (!ok_) os << "0\n";
}

}  // namespace tz::sat
