#include "sat/tseitin.hpp"

#include <stdexcept>

namespace tz::sat {
namespace {

/// out <-> AND(ins): (~out | in_i) for all i; (out | ~in_1 | ... | ~in_k).
void encode_and(Solver& s, Lit out, const std::vector<Lit>& ins) {
  std::vector<Lit> big{out};
  for (Lit in : ins) {
    s.add_binary(~out, in);
    big.push_back(~in);
  }
  s.add_clause(big);
}

void encode_or(Solver& s, Lit out, const std::vector<Lit>& ins) {
  std::vector<Lit> big{~out};
  for (Lit in : ins) {
    s.add_binary(out, ~in);
    big.push_back(in);
  }
  s.add_clause(big);
}

/// out <-> a XOR b.
void encode_xor2(Solver& s, Lit out, Lit a, Lit b) {
  s.add_ternary(~out, a, b);
  s.add_ternary(~out, ~a, ~b);
  s.add_ternary(out, ~a, b);
  s.add_ternary(out, a, ~b);
}

}  // namespace

std::vector<Var> encode_netlist(Solver& solver, const Netlist& nl) {
  std::vector<Var> var(nl.raw_size(), -1);
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (nl.is_alive(id)) var[id] = solver.new_var();
  }
  auto lit = [&](NodeId id) { return Lit::make(var[id]); };

  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    std::vector<Lit> ins;
    ins.reserve(n.fanin.size());
    for (NodeId f : n.fanin) ins.push_back(lit(f));
    const Lit out = lit(id);
    switch (n.type) {
      case GateType::Input:
      case GateType::Dff:
        break;  // free variables
      case GateType::Const0:
        solver.add_unit(~out);
        break;
      case GateType::Const1:
        solver.add_unit(out);
        break;
      case GateType::Buf:
        solver.add_binary(~out, ins[0]);
        solver.add_binary(out, ~ins[0]);
        break;
      case GateType::Not:
        solver.add_binary(~out, ~ins[0]);
        solver.add_binary(out, ins[0]);
        break;
      case GateType::And:
        encode_and(solver, out, ins);
        break;
      case GateType::Nand: {
        const Lit t = Lit::make(solver.new_var());
        encode_and(solver, t, ins);
        solver.add_binary(~out, ~t);
        solver.add_binary(out, t);
        break;
      }
      case GateType::Or:
        encode_or(solver, out, ins);
        break;
      case GateType::Nor: {
        const Lit t = Lit::make(solver.new_var());
        encode_or(solver, t, ins);
        solver.add_binary(~out, ~t);
        solver.add_binary(out, t);
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        // Chain XOR2 through fresh temporaries.
        Lit acc = ins[0];
        for (std::size_t i = 1; i < ins.size(); ++i) {
          const Lit t = (i + 1 == ins.size() && n.type == GateType::Xor)
                            ? out
                            : Lit::make(solver.new_var());
          encode_xor2(solver, t, acc, ins[i]);
          acc = t;
        }
        if (n.type == GateType::Xnor) {
          solver.add_binary(~out, ~acc);
          solver.add_binary(out, acc);
        } else if (ins.size() == 1) {
          solver.add_binary(~out, ins[0]);
          solver.add_binary(out, ~ins[0]);
        }
        break;
      }
      case GateType::Mux: {
        // out <-> (sel ? b : a)
        const Lit sel = ins[0], a = ins[1], b = ins[2];
        solver.add_ternary(~out, sel, a);
        solver.add_ternary(out, sel, ~a);
        solver.add_ternary(~out, ~sel, b);
        solver.add_ternary(out, ~sel, ~b);
        break;
      }
    }
  }
  return var;
}

}  // namespace tz::sat
