// The seed repo's teaching CDCL core, preserved verbatim for same-run A/B
// benchmarking against the arena solver (sat/solver.hpp). One behavioral
// cleanup only: the duplicated unit-learnt branch in solve() is collapsed
// (both arms were identical — the comment about assumption levels described
// a fix that was never written; the arena solver implements it properly via
// in-loop assumption placement).
//
// bench/perf_engines.cpp measures legacy::check_equivalence against the
// incremental miter in the same binary; nothing else should use this.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/types.hpp"

namespace tz::sat::legacy {

class Solver {
 public:
  Var new_var();
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  bool add_clause(std::vector<Lit> lits);
  bool add_unit(Lit a) { return add_clause({a}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  SolveResult solve(const std::vector<Lit>& assumptions = {},
                    std::int64_t conflict_limit = -1);

  bool model_value(Var v) const { return model_[v] == LBool::True; }

  std::int64_t conflicts() const { return conflicts_; }

 private:
  struct Clause {
    std::vector<Lit> lits;
    bool learnt = false;
    double activity = 0.0;
  };
  using ClauseRef = std::int32_t;
  static constexpr ClauseRef kNoClause = -1;

  LBool value(Lit l) const {
    const LBool v = assigns_[l.var()];
    if (v == LBool::Undef) return LBool::Undef;
    return (v == LBool::True) != l.neg() ? LBool::True : LBool::False;
  }

  void attach(ClauseRef cr);
  bool enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& bt_level);
  void backtrack(int level);
  Lit pick_branch();
  void bump_var(Var v);
  void decay_var_activity() { var_inc_ /= 0.95; }
  void reduce_learnts();

  std::vector<Clause> clauses_;
  std::vector<std::vector<ClauseRef>> watches_;  // indexed by lit.x
  std::vector<LBool> assigns_;
  std::vector<LBool> model_;
  std::vector<char> phase_;          // saved polarity per var
  std::vector<double> activity_;
  std::vector<ClauseRef> reason_;
  std::vector<int> level_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;
  double var_inc_ = 1.0;
  bool ok_ = true;
  std::int64_t conflicts_ = 0;
  std::vector<char> seen_;
};

/// The seed's monolithic miter: encode both netlists whole, tie the
/// interfaces with equality clauses, one big OR-of-XORs, one solve. Returns
/// equivalent / not / undecided exactly like the old check_equivalence (the
/// witness is not extracted — the A/B bench only needs the verdict).
struct LegacyEquivalenceResult {
  bool equivalent = false;
  bool decided = true;
};
LegacyEquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                          std::int64_t conflict_limit = -1);

}  // namespace tz::sat::legacy
