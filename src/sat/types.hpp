// Shared SAT literal/result types.
//
// Split out of solver.hpp so the modern arena solver (sat/solver.hpp) and
// the preserved reference core (sat/legacy_solver.hpp) speak the same
// literal encoding and the Tseitin templates work against either.
#pragma once

#include <cstdint>

namespace tz::sat {

using Var = std::int32_t;

/// Literal encoding: lit = 2*var (positive) or 2*var+1 (negated).
struct Lit {
  std::int32_t x = -2;

  static Lit make(Var v, bool neg = false) { return Lit{2 * v + (neg ? 1 : 0)}; }
  Var var() const { return x >> 1; }
  bool neg() const { return x & 1; }
  Lit operator~() const { return Lit{x ^ 1}; }
  bool operator==(const Lit&) const = default;
};

/// The undefined/sentinel literal (never a real variable).
inline constexpr Lit kLitUndef{-2};

enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

enum class SolveResult : std::uint8_t { Sat, Unsat, Unknown };

}  // namespace tz::sat
