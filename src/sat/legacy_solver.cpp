#include "sat/legacy_solver.hpp"

#include <algorithm>
#include <cstdint>

#include "sat/tseitin.hpp"

namespace tz::sat::legacy {

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::Undef);
  model_.push_back(LBool::Undef);
  phase_.push_back(0);
  activity_.push_back(0.0);
  reason_.push_back(kNoClause);
  level_.push_back(0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  return v;
}

bool Solver::add_clause(std::vector<Lit> lits) {
  if (!ok_) return false;
  // Simplify: sort, dedup, drop tautologies and false literals at level 0.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.x < b.x; });
  std::vector<Lit> out;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (i > 0 && lits[i] == lits[i - 1]) continue;
    if (i > 0 && lits[i].var() == lits[i - 1].var()) return true;  // taut
    if (value(lits[i]) == LBool::True) return true;   // already satisfied
    if (value(lits[i]) == LBool::False) continue;     // level-0 false
    out.push_back(lits[i]);
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    if (!enqueue(out[0], kNoClause)) {
      ok_ = false;
      return false;
    }
    ok_ = propagate() == kNoClause;
    return ok_;
  }
  clauses_.push_back(Clause{std::move(out), false, 0.0});
  attach(static_cast<ClauseRef>(clauses_.size() - 1));
  return true;
}

void Solver::attach(ClauseRef cr) {
  const Clause& c = clauses_[cr];
  watches_[(~c.lits[0]).x].push_back(cr);
  watches_[(~c.lits[1]).x].push_back(cr);
}

bool Solver::enqueue(Lit l, ClauseRef reason) {
  if (value(l) != LBool::Undef) return value(l) == LBool::True;
  assigns_[l.var()] = l.neg() ? LBool::False : LBool::True;
  reason_[l.var()] = reason;
  level_[l.var()] = static_cast<int>(trail_lim_.size());
  trail_.push_back(l);
  return true;
}

Solver::ClauseRef Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];  // p is true; clauses watching ~p wake up
    std::vector<ClauseRef>& ws = watches_[p.x];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const ClauseRef cr = ws[i];
      Clause& c = clauses_[cr];
      // Normalize: watched literal being falsified is ~p; put it at [1].
      const Lit false_lit = ~p;
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      if (value(c.lits[0]) == LBool::True) {
        ws[keep++] = cr;  // satisfied by other watch
        continue;
      }
      // Find a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != LBool::False) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).x].push_back(cr);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      ws[keep++] = cr;
      if (value(c.lits[0]) == LBool::False) {
        // Conflict: keep remaining watchers, return.
        for (std::size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
        ws.resize(keep);
        qhead_ = trail_.size();
        return cr;
      }
      enqueue(c.lits[0], cr);
    }
    ws.resize(keep);
  }
  return kNoClause;
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& learnt,
                     int& bt_level) {
  learnt.clear();
  learnt.push_back(Lit{-2});  // placeholder for asserting literal
  int counter = 0;
  Lit p{-2};
  std::size_t index = trail_.size();
  ClauseRef reason = conflict;
  const int current_level = static_cast<int>(trail_lim_.size());
  do {
    const Clause& c = clauses_[reason];
    const std::size_t start = (p.x == -2) ? 0 : 1;
    for (std::size_t i = start; i < c.lits.size(); ++i) {
      const Lit q = c.lits[i];
      if (!seen_[q.var()] && level_[q.var()] > 0) {
        seen_[q.var()] = 1;
        bump_var(q.var());
        if (level_[q.var()] >= current_level) {
          ++counter;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Select next literal from the trail to resolve on.
    while (!seen_[trail_[index - 1].var()]) --index;
    p = trail_[--index];
    seen_[p.var()] = 0;
    reason = reason_[p.var()];
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  // Compute backtrack level (second-highest level in the clause).
  bt_level = 0;
  if (learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[learnt[i].var()] > level_[learnt[max_i].var()]) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    bt_level = level_[learnt[1].var()];
  }
  for (const Lit& l : learnt) seen_[l.var()] = 0;
}

void Solver::backtrack(int target) {
  if (static_cast<int>(trail_lim_.size()) <= target) return;
  const std::size_t lim = trail_lim_[target];
  for (std::size_t i = trail_.size(); i > lim; --i) {
    const Var v = trail_[i - 1].var();
    phase_[v] = assigns_[v] == LBool::True ? 1 : 0;
    assigns_[v] = LBool::Undef;
    reason_[v] = kNoClause;
  }
  trail_.resize(lim);
  trail_lim_.resize(target);
  qhead_ = trail_.size();
}

Lit Solver::pick_branch() {
  Var best = -1;
  double best_act = -1.0;
  for (Var v = 0; v < num_vars(); ++v) {
    if (assigns_[v] == LBool::Undef && activity_[v] > best_act) {
      best = v;
      best_act = activity_[v];
    }
  }
  if (best < 0) return Lit{-2};
  return Lit::make(best, phase_[best] == 0);
}

void Solver::reduce_learnts() {
  // Simple policy: drop the lower-activity half of long learnt clauses.
  // To keep reason bookkeeping simple we only do this when nothing on the
  // trail references learnt clauses (i.e., at level 0).
  if (!trail_lim_.empty()) return;
  std::vector<ClauseRef> learnt;
  for (ClauseRef cr = 0; cr < static_cast<ClauseRef>(clauses_.size()); ++cr) {
    if (clauses_[cr].learnt && clauses_[cr].lits.size() > 2) {
      learnt.push_back(cr);
    }
  }
  if (learnt.size() < 2000) return;
  std::sort(learnt.begin(), learnt.end(), [&](ClauseRef a, ClauseRef b) {
    return clauses_[a].activity < clauses_[b].activity;
  });
  // Detach (lazily: rebuild all watches).
  std::vector<char> drop(clauses_.size(), 0);
  for (std::size_t i = 0; i < learnt.size() / 2; ++i) drop[learnt[i]] = 1;
  std::vector<Clause> kept;
  kept.reserve(clauses_.size());
  std::vector<ClauseRef> remap(clauses_.size(), kNoClause);
  for (ClauseRef cr = 0; cr < static_cast<ClauseRef>(clauses_.size()); ++cr) {
    if (!drop[cr]) {
      remap[cr] = static_cast<ClauseRef>(kept.size());
      kept.push_back(std::move(clauses_[cr]));
    }
  }
  clauses_ = std::move(kept);
  for (auto& w : watches_) w.clear();
  for (ClauseRef cr = 0; cr < static_cast<ClauseRef>(clauses_.size()); ++cr) {
    attach(cr);
  }
  for (Var v = 0; v < num_vars(); ++v) reason_[v] = kNoClause;
}

SolveResult Solver::solve(const std::vector<Lit>& assumptions,
                          std::int64_t conflict_limit) {
  if (!ok_) return SolveResult::Unsat;
  backtrack(0);
  conflicts_ = 0;

  // Apply assumptions as pseudo-decisions at successive levels.
  for (const Lit& a : assumptions) {
    if (value(a) == LBool::True) continue;
    if (value(a) == LBool::False) return SolveResult::Unsat;
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    enqueue(a, kNoClause);
    if (propagate() != kNoClause) {
      backtrack(0);
      return SolveResult::Unsat;
    }
  }
  const int assumption_level = static_cast<int>(trail_lim_.size());

  std::int64_t next_restart = 128;
  while (true) {
    const ClauseRef conflict = propagate();
    if (conflict != kNoClause) {
      ++conflicts_;
      if (trail_lim_.empty() ||
          static_cast<int>(trail_lim_.size()) <= assumption_level) {
        backtrack(0);
        return SolveResult::Unsat;
      }
      std::vector<Lit> learnt;
      int bt_level = 0;
      analyze(conflict, learnt, bt_level);
      backtrack(std::max(bt_level, assumption_level));
      if (learnt.size() == 1) {
        // Note: while assumptions hold this asserts above level 0, so the
        // unit is forgotten by the next backtrack past the assumption
        // levels — the arena solver fixes this structurally.
        enqueue(learnt[0], kNoClause);
      } else {
        clauses_.push_back(Clause{learnt, true, var_inc_});
        attach(static_cast<ClauseRef>(clauses_.size() - 1));
        enqueue(learnt[0], static_cast<ClauseRef>(clauses_.size() - 1));
      }
      decay_var_activity();
      if (conflict_limit >= 0 && conflicts_ >= conflict_limit) {
        backtrack(0);
        return SolveResult::Unknown;
      }
      if (conflicts_ >= next_restart) {
        next_restart += next_restart / 2;
        backtrack(assumption_level);
        reduce_learnts();
      }
      continue;
    }
    const Lit branch = pick_branch();
    if (branch.x == -2) {
      // Full assignment: record model.
      model_ = assigns_;
      backtrack(0);
      return SolveResult::Sat;
    }
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    enqueue(branch, kNoClause);
  }
}

LegacyEquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                          std::int64_t conflict_limit) {
  Solver solver;
  const std::vector<Var> va = encode_netlist(solver, a);
  const std::vector<Var> vb = encode_netlist(solver, b);

  // Tie primary inputs together.
  for (std::size_t i = 0; i < a.inputs().size(); ++i) {
    const Lit la = Lit::make(va[a.inputs()[i]]);
    const Lit lb = Lit::make(vb[b.inputs()[i]]);
    solver.add_binary(~la, lb);
    solver.add_binary(la, ~lb);
  }
  // Tie DFF frame inputs by position when both sides have them.
  const std::size_t common_dffs = std::min(a.dffs().size(), b.dffs().size());
  for (std::size_t i = 0; i < common_dffs; ++i) {
    const Lit la = Lit::make(va[a.dffs()[i]]);
    const Lit lb = Lit::make(vb[b.dffs()[i]]);
    solver.add_binary(~la, lb);
    solver.add_binary(la, ~lb);
  }
  // Extra DFFs on one side pinned to reset state.
  const auto pin_extra = [&](const Netlist& nl, const std::vector<Var>& vars) {
    for (std::size_t i = common_dffs; i < nl.dffs().size(); ++i) {
      solver.add_unit(~Lit::make(vars[nl.dffs()[i]]));
    }
  };
  pin_extra(a, va);
  pin_extra(b, vb);

  // Miter: OR of output XORs must be 1.
  std::vector<Lit> any_diff;
  for (std::size_t o = 0; o < a.outputs().size(); ++o) {
    const Lit la = Lit::make(va[a.outputs()[o]]);
    const Lit lb = Lit::make(vb[b.outputs()[o]]);
    const Lit d = Lit::make(solver.new_var());
    solver.add_ternary(~d, la, lb);
    solver.add_ternary(~d, ~la, ~lb);
    solver.add_ternary(d, ~la, lb);
    solver.add_ternary(d, la, ~lb);
    any_diff.push_back(d);
  }
  solver.add_clause(any_diff);

  LegacyEquivalenceResult res;
  switch (solver.solve({}, conflict_limit)) {
    case SolveResult::Unsat:
      res.equivalent = true;
      break;
    case SolveResult::Unknown:
      res.decided = false;
      break;
    case SolveResult::Sat:
      res.equivalent = false;
      break;
  }
  return res;
}

}  // namespace tz::sat::legacy
