// Indexed binary max-heap over variable activities (the VSIDS order heap).
//
// Replaces the seed solver's O(vars) linear scan in pick_branch. Activities
// only ever increase (global rescaling multiplies every entry by the same
// factor, which preserves heap order), so the only sift direction needed
// after a bump is up. Deletion is lazy: solve() pops until it finds an
// unassigned variable, and backtracking re-inserts unassigned variables.
#pragma once

#include <vector>

#include "sat/types.hpp"

namespace tz::sat {

class VarOrderHeap {
 public:
  explicit VarOrderHeap(const std::vector<double>& activity)
      : activity_(activity) {}

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  bool in_heap(Var v) const {
    return v < static_cast<Var>(indices_.size()) && indices_[v] >= 0;
  }

  void grow(Var v) {
    if (v >= static_cast<Var>(indices_.size())) indices_.resize(v + 1, -1);
  }

  void insert(Var v) {
    grow(v);
    if (indices_[v] >= 0) return;
    indices_[v] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    sift_up(indices_[v]);
  }

  /// Re-establish the heap property for `v` after its activity increased.
  void increased(Var v) {
    if (in_heap(v)) sift_up(indices_[v]);
  }

  Var remove_max() {
    const Var top = heap_[0];
    heap_[0] = heap_.back();
    indices_[heap_[0]] = 0;
    indices_[top] = -1;
    heap_.pop_back();
    if (heap_.size() > 1) sift_down(0);
    return top;
  }

 private:
  bool less(Var a, Var b) const { return activity_[a] < activity_[b]; }

  void sift_up(int i) {
    const Var v = heap_[i];
    while (i > 0) {
      const int parent = (i - 1) >> 1;
      if (!less(heap_[parent], v)) break;
      heap_[i] = heap_[parent];
      indices_[heap_[i]] = i;
      i = parent;
    }
    heap_[i] = v;
    indices_[v] = i;
  }

  void sift_down(int i) {
    const Var v = heap_[i];
    const int n = static_cast<int>(heap_.size());
    while (true) {
      int child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && less(heap_[child], heap_[child + 1])) ++child;
      if (!less(v, heap_[child])) break;
      heap_[i] = heap_[child];
      indices_[heap_[i]] = i;
      i = child;
    }
    heap_[i] = v;
    indices_[v] = i;
  }

  const std::vector<double>& activity_;
  std::vector<Var> heap_;
  std::vector<int> indices_;  ///< per var: position in heap_, -1 if absent
};

}  // namespace tz::sat
