// Tseitin encoding of a netlist into CNF.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"

namespace tz::sat {

/// Encodes every live node of `nl` as one solver variable with the gate
/// semantics as clauses. DFF outputs are encoded as free variables (one
/// combinational frame). Returns the NodeId -> Var map.
std::vector<Var> encode_netlist(Solver& solver, const Netlist& nl);

}  // namespace tz::sat
