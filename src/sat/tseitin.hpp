// Tseitin encoding of netlist gates into CNF.
//
// Header-only templates so the same gate semantics drive the arena solver
// (sat/solver.hpp), the preserved legacy core (sat/legacy_solver.hpp), and
// the incremental miter's per-cone lazy encoder (sat/miter.hpp). A solver
// type only needs new_var / add_unit / add_binary / add_ternary / add_clause.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "sat/types.hpp"

namespace tz::sat {

namespace detail {

/// out <-> AND(ins): (~out | in_i) for all i; (out | ~in_1 | ... | ~in_k).
template <class S>
void encode_and(S& s, Lit out, const std::vector<Lit>& ins) {
  std::vector<Lit> big{out};
  for (const Lit in : ins) {
    s.add_binary(~out, in);
    big.push_back(~in);
  }
  s.add_clause(big);
}

template <class S>
void encode_or(S& s, Lit out, const std::vector<Lit>& ins) {
  std::vector<Lit> big{~out};
  for (const Lit in : ins) {
    s.add_binary(out, ~in);
    big.push_back(in);
  }
  s.add_clause(big);
}

/// out <-> a XOR b.
template <class S>
void encode_xor2(S& s, Lit out, Lit a, Lit b) {
  s.add_ternary(~out, a, b);
  s.add_ternary(~out, ~a, ~b);
  s.add_ternary(out, ~a, b);
  s.add_ternary(out, a, ~b);
}

}  // namespace detail

/// Clauses for one gate: out <-> type(ins). Input/Dff emit nothing (free
/// frame variables); Xor/Xnor chains and inverted forms may allocate fresh
/// auxiliary variables on `s`.
template <class S>
void encode_node(S& s, GateType type, Lit out, const std::vector<Lit>& ins) {
  switch (type) {
    case GateType::Input:
    case GateType::Dff:
      break;  // free variables
    case GateType::Const0:
      s.add_unit(~out);
      break;
    case GateType::Const1:
      s.add_unit(out);
      break;
    case GateType::Buf:
      s.add_binary(~out, ins[0]);
      s.add_binary(out, ~ins[0]);
      break;
    case GateType::Not:
      s.add_binary(~out, ~ins[0]);
      s.add_binary(out, ins[0]);
      break;
    case GateType::And:
      detail::encode_and(s, out, ins);
      break;
    case GateType::Nand: {
      const Lit t = Lit::make(s.new_var());
      detail::encode_and(s, t, ins);
      s.add_binary(~out, ~t);
      s.add_binary(out, t);
      break;
    }
    case GateType::Or:
      detail::encode_or(s, out, ins);
      break;
    case GateType::Nor: {
      const Lit t = Lit::make(s.new_var());
      detail::encode_or(s, t, ins);
      s.add_binary(~out, ~t);
      s.add_binary(out, t);
      break;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      // Chain XOR2 through fresh temporaries.
      Lit acc = ins[0];
      for (std::size_t i = 1; i < ins.size(); ++i) {
        const Lit t = (i + 1 == ins.size() && type == GateType::Xor)
                          ? out
                          : Lit::make(s.new_var());
        detail::encode_xor2(s, t, acc, ins[i]);
        acc = t;
      }
      if (type == GateType::Xnor) {
        s.add_binary(~out, ~acc);
        s.add_binary(out, acc);
      } else if (ins.size() == 1) {
        s.add_binary(~out, ins[0]);
        s.add_binary(out, ~ins[0]);
      }
      break;
    }
    case GateType::Mux: {
      // out <-> (sel ? b : a)
      const Lit sel = ins[0];
      const Lit a = ins[1];
      const Lit b = ins[2];
      s.add_ternary(~out, sel, a);
      s.add_ternary(out, sel, ~a);
      s.add_ternary(~out, ~sel, b);
      s.add_ternary(out, ~sel, ~b);
      break;
    }
  }
}

/// Encodes every live node of `nl` as one solver variable with the gate
/// semantics as clauses. DFF outputs are encoded as free variables (one
/// combinational frame). Returns the NodeId -> Var map.
template <class S>
std::vector<Var> encode_netlist(S& solver, const Netlist& nl) {
  std::vector<Var> var(nl.raw_size(), -1);
  for (NodeId id = 0; id < nl.raw_size(); ++id) {
    if (nl.is_alive(id)) var[id] = solver.new_var();
  }
  std::vector<Lit> ins;
  for (const NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    ins.clear();
    ins.reserve(n.fanin.size());
    for (const NodeId f : n.fanin) ins.push_back(Lit::make(var[f]));
    encode_node(solver, n.type, Lit::make(var[id]), ins);
  }
  return var;
}

}  // namespace tz::sat
