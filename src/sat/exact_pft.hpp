// SAT-exact trigger rarity.
//
// The flow's analytic_pft (core/trigger_prob.hpp) takes the trigger's
// per-cycle activation probability q from SignalProb, which treats
// reconverging rare nets as independent — the paper samples around that
// error. Here q is computed exactly instead: the trigger's fanin cone is
// Tseitin-encoded, the trigger asserted, and every satisfying assignment of
// the cone's PI/DFF support enumerated with blocking clauses. The count m
// over a support of width w gives q = m / 2^w exactly (inputs uniform and
// independent per cycle), which then feeds the same saturating-counter
// binomial tail as the analytic path.
//
// Enumeration is bounded by the support width (a rare trigger over k rare
// nets has a small support by construction) and by a model cap; an
// undecided result reports decided=false rather than an approximate count.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace tz::sat {

struct ExactPftOptions {
  /// Refuse supports wider than this (2^w enumeration denominator; 26 keeps
  /// the worst case under ~67M models even for a pathological cone).
  int max_support = 26;
  /// Give up (decided=false) after this many models.
  std::int64_t max_models = 1 << 22;
  /// Per-solve conflict budget; < 0 = unlimited.
  std::int64_t conflict_limit = -1;
};

struct ExactPftResult {
  bool decided = false;
  double q = 0.0;          ///< exact per-cycle trigger probability
  double pft = 0.0;        ///< analytic_pft(q, test_length, counter_bits)
  std::uint64_t models = 0;
  int support_width = 0;   ///< PIs + DFF frame inputs in the trigger cone
};

/// Exact Pft of a (possibly counter-backed) trigger node: model-enumerates
/// `trigger == 1` over the PI/DFF support of its fanin cone and feeds the
/// exact q into the saturating-counter tail analytic_pft(q, test_length,
/// counter_bits). `trigger` is the per-cycle trigger-condition net (an
/// InsertedHT's trigger_in), not the counter's fire output — the counter is
/// modeled by the binomial tail exactly as in the analytic path, so on
/// independent-support triggers the two agree bit-for-bit.
ExactPftResult exact_trigger_pft(const Netlist& nl, NodeId trigger,
                                 std::size_t test_length, int counter_bits,
                                 const ExactPftOptions& opts = {});

}  // namespace tz::sat
