// Incremental cone-sliced equivalence miter.
//
// One persistent arena Solver for the whole check; each primary-output pair
// becomes one solve-under-assumption of a fresh difference literal:
//
//   d_o <-> (out_a[o] XOR out_b[o]);   solve({d_o})
//
// UNSAT proves the pair equal and ~d_o is committed as a unit, so every
// learnt clause (and the proved equality itself) is reused by later outputs.
// Outputs are visited in topological order of their driving cones, which
// keeps the reused clauses relevant.
//
// Encoding is lazy cone-of-influence: a node is Tseitin-encoded only when an
// output cone that needs it is checked. PIs and position-paired DFFs share
// one variable across both netlists; extra DFFs (an inserted HT's counter)
// are pinned to reset. With structural matching on, netlist-b nodes whose
// name/type/fanins agree with an already-encoded netlist-a node reuse the
// a-side variable outright (no clauses), and near-misses at a rewrite
// frontier are merged by bounded SAT-sweeping queries plus a biconditional,
// so salvaged 100k-gate twins collapse to the rewritten region instead of
// re-proving 100k shared gates.
//
// A BitSimulator pre-pass runs random patterns through both netlists first:
// a differing output short-circuits to a replayable witness without any SAT
// call, and an agreeing run seeds the solver's decision phases so search
// starts near a consistent trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/equivalence.hpp"
#include "sat/solver.hpp"

namespace tz::sat {

struct MiterOptions {
  /// Total conflict budget across all per-output queries; < 0 = unlimited.
  std::int64_t conflict_limit = -1;
  /// BitSimulator random-pattern pre-pass (TZ_SAT_PREPASS=0 turns it off in
  /// the check_equivalence wrapper).
  bool prepass = true;
  /// Pre-pass width in 64-pattern words.
  int prepass_words = 4;
  /// Share variables between structurally matching nodes of the two
  /// netlists, and SAT-sweep near-misses. Off = every node of both netlists
  /// is encoded independently (the honest A/B-bench configuration: a
  /// self-miter would otherwise be free).
  bool structural_match = true;
  /// Per-query conflict cap for sweeping merges (separate from
  /// conflict_limit; sweeping is an optimization, not part of the verdict).
  std::int64_t sweep_conflict_limit = 1000;
  /// When non-empty: dump the final CNF (problem clauses + committed units)
  /// in DIMACS to this path when check() finishes, so a failing instance can
  /// be exported and minimized offline (TZ_SAT_DIMACS in the wrapper).
  std::string dimacs_path;
};

struct MiterStats {
  std::size_t outputs_total = 0;
  std::size_t outputs_shared = 0;  ///< proved equal by sharing one variable
  std::size_t outputs_proved = 0;  ///< proved equal by an UNSAT query
  std::size_t sat_calls = 0;
  std::size_t shared_nodes = 0;    ///< b-nodes mapped onto a-side variables
  std::size_t sweep_merges = 0;    ///< near-miss pairs merged by SAT queries
  bool prepass_hit = false;        ///< pre-pass found the witness by itself
};

class IncrementalMiter {
 public:
  /// Throws std::invalid_argument on PI/PO count mismatch.
  IncrementalMiter(const Netlist& a, const Netlist& b, MiterOptions opts = {});

  /// Run the full check. Callable once per miter instance.
  EquivalenceResult check();

  const MiterStats& stats() const { return stats_; }
  Solver& solver() { return solver_; }

 private:
  Var ensure_var(bool side_b, NodeId root);
  Var pi_var(std::size_t i);
  Var dff_var(std::size_t i);
  bool run_prepass(EquivalenceResult& res);
  void extract_witness(EquivalenceResult& res, int failing_output);
  bool sweep_equal(Var a, Var b);

  const Netlist& a_;
  const Netlist& b_;
  MiterOptions opts_;
  Solver solver_;
  MiterStats stats_;

  std::vector<Var> va_;       ///< NodeId -> Var, netlist a (-1 = not encoded)
  std::vector<Var> vb_;       ///< NodeId -> Var, netlist b
  std::vector<Var> vb_repr_;  ///< b node -> a-side var proven equal (-1 none)
  std::vector<Var> pi_vars_;  ///< shared PI vars by PI index
  std::vector<Var> dff_vars_; ///< shared frame vars by common-dff index
  std::vector<std::uint32_t> topo_pos_a_;  ///< NodeId -> topo rank
  std::vector<std::uint32_t> topo_pos_b_;
  std::vector<int> pi_index_a_, pi_index_b_;    ///< NodeId -> PI index / -1
  std::vector<int> dff_index_a_, dff_index_b_;  ///< NodeId -> dff index / -1
  std::size_t common_dffs_ = 0;
  /// Pre-pass phase hints: node -> simulated bit (lane 0), -1 = none.
  std::vector<signed char> hint_a_, hint_b_;
  /// Scratch for ensure_var's pruned cone walk (epoch-stamped visited marks,
  /// reused across calls so per-output cone collection stays allocation-free).
  std::vector<std::uint32_t> stamp_a_, stamp_b_;
  std::vector<NodeId> cone_, dfs_stack_;
  std::uint32_t epoch_ = 0;
};

}  // namespace tz::sat
