#include "sat/equivalence.hpp"

#include <cstdint>
#include <stdexcept>

#include "sat/tseitin.hpp"

namespace tz::sat {

EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                    std::int64_t conflict_limit) {
  if (a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size()) {
    throw std::invalid_argument("check_equivalence: interface mismatch");
  }
  Solver solver;
  const std::vector<Var> va = encode_netlist(solver, a);
  const std::vector<Var> vb = encode_netlist(solver, b);

  // Tie primary inputs together.
  for (std::size_t i = 0; i < a.inputs().size(); ++i) {
    const Lit la = Lit::make(va[a.inputs()[i]]);
    const Lit lb = Lit::make(vb[b.inputs()[i]]);
    solver.add_binary(~la, lb);
    solver.add_binary(la, ~lb);
  }
  // Tie DFF frame inputs by position when both sides have them.
  const std::size_t common_dffs = std::min(a.dffs().size(), b.dffs().size());
  for (std::size_t i = 0; i < common_dffs; ++i) {
    const Lit la = Lit::make(va[a.dffs()[i]]);
    const Lit lb = Lit::make(vb[b.dffs()[i]]);
    solver.add_binary(~la, lb);
    solver.add_binary(la, ~lb);
  }
  // Extra DFFs on one side (an inserted HT) are constrained to their reset
  // state so the miter asks: "does any input differ at reset?"
  auto pin_extra = [&](const Netlist& nl, const std::vector<Var>& vars) {
    for (std::size_t i = common_dffs; i < nl.dffs().size(); ++i) {
      solver.add_unit(~Lit::make(vars[nl.dffs()[i]]));
    }
  };
  pin_extra(a, va);
  pin_extra(b, vb);

  // Miter: OR of output XORs must be 1.
  std::vector<Lit> any_diff;
  for (std::size_t o = 0; o < a.outputs().size(); ++o) {
    const Lit la = Lit::make(va[a.outputs()[o]]);
    const Lit lb = Lit::make(vb[b.outputs()[o]]);
    const Lit d = Lit::make(solver.new_var());
    // d <-> la XOR lb
    solver.add_ternary(~d, la, lb);
    solver.add_ternary(~d, ~la, ~lb);
    solver.add_ternary(d, ~la, lb);
    solver.add_ternary(d, la, ~lb);
    any_diff.push_back(d);
  }
  solver.add_clause(any_diff);

  EquivalenceResult res;
  switch (solver.solve({}, conflict_limit)) {
    case SolveResult::Unsat:
      res.equivalent = true;
      return res;
    case SolveResult::Unknown:
      res.decided = false;
      return res;
    case SolveResult::Sat: {
      res.equivalent = false;
      res.counterexample.resize(a.inputs().size());
      for (std::size_t i = 0; i < a.inputs().size(); ++i) {
        res.counterexample[i] = solver.model_value(va[a.inputs()[i]]);
      }
      return res;
    }
  }
  return res;
}

}  // namespace tz::sat
