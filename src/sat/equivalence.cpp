#include "sat/equivalence.hpp"

#include <cstdlib>
#include <string_view>

#include "sat/miter.hpp"

namespace tz::sat {

EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                    std::int64_t conflict_limit) {
  MiterOptions opts;
  opts.conflict_limit = conflict_limit;
  if (const char* e = std::getenv("TZ_SAT_PREPASS")) {
    opts.prepass = std::string_view(e) != "0";
  }
  if (const char* e = std::getenv("TZ_SAT_DIMACS")) {
    opts.dimacs_path = e;
  }
  IncrementalMiter miter(a, b, std::move(opts));
  return miter.check();
}

}  // namespace tz::sat
