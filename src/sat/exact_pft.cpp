#include "sat/exact_pft.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/trigger_prob.hpp"
#include "sat/solver.hpp"
#include "sat/tseitin.hpp"

namespace tz::sat {

ExactPftResult exact_trigger_pft(const Netlist& nl, NodeId trigger,
                                 std::size_t test_length, int counter_bits,
                                 const ExactPftOptions& opts) {
  ExactPftResult res;

  // Cone-of-influence encoding: only the trigger's transitive fanin.
  const NodeId roots[1] = {trigger};
  std::vector<NodeId> cone = nl.fanin_cone(roots);
  std::vector<std::uint32_t> topo_pos(nl.raw_size(), 0);
  {
    const std::vector<NodeId> order = nl.topo_order();
    for (std::size_t i = 0; i < order.size(); ++i) {
      topo_pos[order[i]] = static_cast<std::uint32_t>(i);
    }
  }
  std::sort(cone.begin(), cone.end(), [&topo_pos](NodeId x, NodeId y) {
    return topo_pos[x] < topo_pos[y];
  });

  Solver solver;
  std::vector<Var> var(nl.raw_size(), -1);
  std::vector<Var> support;
  std::vector<Lit> ins;
  for (const NodeId id : cone) {
    const Node& n = nl.node(id);
    const Var v = solver.new_var();
    var[id] = v;
    if (n.type == GateType::Input || n.type == GateType::Dff) {
      support.push_back(v);
      continue;
    }
    ins.clear();
    ins.reserve(n.fanin.size());
    for (const NodeId f : n.fanin) ins.push_back(Lit::make(var[f]));
    encode_node(solver, n.type, Lit::make(v), ins);
  }
  res.support_width = static_cast<int>(support.size());
  if (res.support_width > opts.max_support) return res;  // undecided

  solver.add_unit(Lit::make(var[trigger]));

  // Blocking-clause model enumeration over the support. Counting only the
  // support projection is what makes q exact: auxiliary Tseitin variables
  // are functionally determined by the support, so each support assignment
  // corresponds to exactly one model.
  std::vector<Lit> block;
  while (true) {
    const SolveResult r = solver.solve({}, opts.conflict_limit);
    if (r == SolveResult::Unknown) return res;  // undecided
    if (r == SolveResult::Unsat) break;
    if (++res.models > static_cast<std::uint64_t>(opts.max_models)) {
      return res;  // undecided: the trigger is nowhere near rare
    }
    block.clear();
    block.reserve(support.size());
    for (const Var v : support) {
      block.push_back(Lit::make(v, solver.model_value(v)));
    }
    if (block.empty() || !solver.add_clause(block)) break;  // support exhausted
  }

  res.q = std::ldexp(static_cast<double>(res.models), -res.support_width);
  res.pft = analytic_pft(res.q, test_length, counter_bits);
  res.decided = true;
  return res;
}

}  // namespace tz::sat
